// Scenario 2 of the demo: improving the thematic accuracy of the hotspot
// products. The chain's low-resolution SEVIRI inputs produce false
// positives in the sea; the refinement compares hotspot geometries with
// the coastline linked-data layer via stSPARQL UPDATE statements, then an
// enriched fire map is generated. The program prints the updates it
// executes (as the demo shows them to the user) and the accuracy gained,
// measured against the generator's ground truth.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	teleios "repro"
	"repro/internal/geo"
	"repro/internal/noa"
	"repro/internal/scene"
	"repro/internal/strdf"
)

func main() {
	dir, err := os.MkdirTemp("", "teleios-scenario2")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ids, err := teleios.GenerateArchive(dir, 128, 128, 6)
	if err != nil {
		log.Fatal(err)
	}
	obs := teleios.Open(teleios.Options{LoadLinkedData: true})
	if err := obs.AttachRepository(dir); err != nil {
		log.Fatal(err)
	}
	p, err := obs.RunChain(ids[len(ids)-1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-refinement: %d hotspots\n", len(p.Hotspots))
	printAccuracy(obs)

	fmt.Println("\n== the stSPARQL refinement updates ==")
	for i, u := range noa.RefinementUpdates() {
		fmt.Printf("-- update %d --%s\n", i+1, u)
	}

	stats, err := obs.Refine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefinement: %d total, %d rejected (off-land), %d clipped to the coastline\n",
		stats.Total, stats.Rejected, stats.Clipped)
	printAccuracy(obs)

	// Generate the enriched fire map.
	m, err := obs.FireMap(30000)
	if err != nil {
		log.Fatal(err)
	}
	for _, layer := range []string{"hotspots", "towns", "sites", "roads", "forests"} {
		fmt.Printf("fire map layer %-9s: %d feature(s)\n", layer, len(m.Layer(layer)))
	}
	out := filepath.Join(dir, "firemap.geojson")
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteGeoJSON(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(out)
	fmt.Printf("wrote %s (%d bytes)\n", out, info.Size())
}

// printAccuracy measures the product against the seeded ground truth:
// how many of the stored hotspot geometries actually overlap land (true
// detections) versus lie in the sea (false positives).
func printAccuracy(obs *teleios.Observatory) {
	res, err := obs.StSPARQL(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		SELECT ?h ?g WHERE { ?h a mon:Hotspot . ?h noa:hasGeometry ?g }`)
	if err != nil {
		log.Fatal(err)
	}
	land := scene.Landmass()
	onLand, inSea := 0, 0
	for _, b := range res.Bindings {
		v, err := strdf.ParseSpatial(b["g"])
		if err != nil {
			continue
		}
		if geo.Intersects(v.Geom, land) {
			onLand++
		} else {
			inSea++
		}
	}
	total := onLand + inSea
	if total == 0 {
		fmt.Println("thematic accuracy: no hotspots")
		return
	}
	fmt.Printf("thematic accuracy: %d/%d hotspots touch land (%.0f%%), %d false positives in the sea\n",
		onLand, total, 100*float64(onLand)/float64(total), inSea)
}
