// Scenario 1 of the demo: the NOA processing chain. The operator launches
// chain instances over the raw archive, compares two chains with
// different classification submodules, inspects per-stage timings, and
// exports the product as a shapefile. The SciQL form of the chain is also
// shown, as in the demo walkthrough.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	teleios "repro"
	"repro/internal/kdd"
	"repro/internal/noa"
	"repro/internal/sciql"
	"repro/internal/vault"
)

func main() {
	dir, err := os.MkdirTemp("", "teleios-scenario1")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ids, err := teleios.GenerateArchive(dir, 128, 128, 8)
	if err != nil {
		log.Fatal(err)
	}
	obs := teleios.Open(teleios.Options{LoadLinkedData: true})
	if err := obs.AttachRepository(dir); err != nil {
		log.Fatal(err)
	}

	// Run the default chain over every acquisition: the hotspot counts
	// grow as the seeded fires ignite and spread.
	fmt.Println("== chain over the time series ==")
	for _, id := range ids {
		p, err := obs.RunChain(id)
		if err != nil {
			log.Fatal(err)
		}
		pixels := 0
		for _, h := range p.Hotspots {
			pixels += h.PixelCount
		}
		fmt.Printf("%s  hotspots=%d  firePixels=%d\n", id, len(p.Hotspots), pixels)
	}

	// Compare two classification submodules on the latest frame — the
	// demo's "test the efficiency of different processing chains".
	last := ids[len(ids)-1]
	fmt.Println("\n== classifier comparison on", last, "==")
	for _, cfg := range []struct {
		name string
		cls  kdd.HotspotClassifier
	}{
		{"operational (318K, d8)", kdd.DefaultHotspotClassifier()},
		{"conservative (325K, d12)", kdd.HotspotClassifier{AbsoluteK: 325, DeltaK: 12}},
	} {
		c := obs.Chain()
		c.Classifier = cfg.cls
		obs.SetChain(c)
		p, err := obs.RunChain(last)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s -> %d hotspots\n", cfg.name, len(p.Hotspots))
		for stage, d := range p.Timings {
			fmt.Printf("    %-13s %v\n", stage, d)
		}
	}

	// Reset to the default chain and export the shapefile product.
	obs.SetChain(noa.DefaultChain(teleios.Region))
	p, err := obs.RunChain(last)
	if err != nil {
		log.Fatal(err)
	}
	shpPath := filepath.Join(dir, "hotspots.shp")
	f, err := os.Create(shpPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteShapefile(f, p); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(shpPath)
	fmt.Printf("\nwrote %s (%d bytes)\n", shpPath, info.Size())

	// The same chain core expressed as one SciQL statement.
	fmt.Println("\n== the chain as SciQL ==")
	v := vault.New()
	if err := v.Attach(dir); err != nil {
		log.Fatal(err)
	}
	frame, err := v.Frame(last)
	if err != nil {
		log.Fatal(err)
	}
	eng := sciql.NewEngine()
	mask, err := noa.DefaultChain(teleios.Region).RunSciQL(eng, frame)
	if err != nil {
		log.Fatal(err)
	}
	res := eng.MustExec(`SELECT count(*) AS hot FROM hotspot_mask WHERE v = 1`)
	fmt.Printf("declarative mask %v: %d hot pixels\n", mask.Dims, res.Table.Col("hot").Int(0))
}
