// Quickstart: open an Observatory over a synthetic SEVIRI archive, run
// the fire-monitoring chain on the latest acquisition, and ask one
// stSPARQL question — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	teleios "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "teleios-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. The synthetic satellite feed: 6 frames of 25 August 2007,
	//    15 minutes apart (the real MSG feed is proprietary).
	ids, err := teleios.GenerateArchive(dir, 128, 128, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d products, first %s\n", len(ids), ids[0])

	// 2. Open the observatory with the linked open data preloaded and
	//    attach the repository through the Data Vault (metadata only;
	//    pixels load lazily).
	obs := teleios.Open(teleios.Options{LoadLinkedData: true})
	if err := obs.AttachRepository(dir); err != nil {
		log.Fatal(err)
	}

	// 3. Run the NOA hotspot chain on the latest product.
	latest := ids[len(ids)-1]
	product, err := obs.RunChain(latest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain on %s: %d hotspots\n", product.FrameID, len(product.Hotspots))
	for _, h := range product.Hotspots {
		fmt.Printf("  %-30s confidence %.2f (%d px)\n", h.ID, h.Confidence, h.PixelCount)
	}

	// 4. Ask Strabon which towns are near any detected fire.
	res, err := obs.StSPARQL(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		PREFIX gn: <http://sws.geonames.org/teleios/>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT DISTINCT ?name WHERE {
			?h a mon:Hotspot .
			?h noa:hasGeometry ?hg .
			?t a gn:PopulatedPlace .
			?t noa:hasGeometry ?tg .
			?t rdfs:label ?name .
			FILTER(strdf:distance(?hg, ?tg) < 25000)
		} ORDER BY ?name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("towns within 25 km of a fire:")
	for _, b := range res.Bindings {
		fmt.Println("  -", b["name"].Value)
	}
}
