// Discovery: the advanced EOWEB-like catalogue interface of Section 1.
// The paper's flagship information request — "find an image taken by a
// Meteosat second generation satellite on 25 August 2007 which covers the
// area of Peloponnese and contains hotspots corresponding to forest fires
// located within 2 km from a major archaeological site" — expressed as a
// single stSPARQL query, impossible in a conventional EO archive
// interface because "forest fire" and "archaeological site" are not
// archive metadata.
package main

import (
	"fmt"
	"log"
	"os"

	teleios "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "teleios-discovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ids, err := teleios.GenerateArchive(dir, 128, 128, 6)
	if err != nil {
		log.Fatal(err)
	}
	obs := teleios.Open(teleios.Options{LoadLinkedData: true})
	if err := obs.AttachRepository(dir); err != nil {
		log.Fatal(err)
	}
	// Populate the catalogue: metadata for every product, hotspots for
	// the latest, refined.
	for _, id := range ids {
		if _, err := obs.Ingest(id); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := obs.RunChain(ids[len(ids)-1]); err != nil {
		log.Fatal(err)
	}
	if _, err := obs.Refine(); err != nil {
		log.Fatal(err)
	}

	// Classic catalogue search: products by time window and coverage —
	// what EOWEB-NG already offers.
	fmt.Println("== catalogue search (temporal + spatial) ==")
	res, err := obs.StSPARQL(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
		SELECT ?img ?t WHERE {
			?img a noa:Product .
			?img noa:acquiredAt ?t .
			?img noa:coverage ?cov .
			FILTER(?t >= "2007-08-25T12:30:00Z"^^xsd:dateTime)
			FILTER(strdf:intersects(?cov, "POLYGON ((22 37, 25 37, 25 39, 22 39, 22 37))"^^strdf:WKT))
		} ORDER BY ?t`)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range res.Bindings {
		fmt.Printf("  %s  acquired %s\n", b["img"].Value, b["t"].Value)
	}

	// The flagship query: semantics + linked data, beyond any catalogue.
	fmt.Println("\n== flagship query: fires within 2 km of archaeological sites ==")
	flagship := `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		PREFIX gn: <http://sws.geonames.org/teleios/>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT DISTINCT ?img ?siteName (strdf:distance(?hg, ?sg) AS ?meters) WHERE {
			?img a noa:Product .
			?img noa:satellite "Meteosat-9" .
			?h a mon:Hotspot .
			?h noa:derivedFromProduct ?img .
			?h noa:hasGeometry ?hg .
			?site a gn:ArchaeologicalSite .
			?site rdfs:label ?siteName .
			?site noa:hasGeometry ?sg .
			FILTER(strdf:distance(?hg, ?sg) < 2000)
		}`
	fmt.Println(flagship)
	res, err = obs.StSPARQL(flagship)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		fmt.Println("  (no matches)")
	}
	for _, b := range res.Bindings {
		fmt.Printf("  image %s: fire %s m from %s\n",
			b["img"].Value, b["meters"].Value, b["siteName"].Value)
	}

	// Ontology-aware search: anything that is an Observation, via
	// subsumption over the monitoring ontology.
	fmt.Println("\n== ontology-backed search (subsumption) ==")
	res, err = obs.StSPARQL(`
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		SELECT DISTINCT ?class WHERE {
			?x a ?class .
			?class rdfs:subClassOf mon:Observation .
		} ORDER BY ?class`)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range res.Bindings {
		fmt.Println("  instances of", b["class"].Value)
	}
}
