#!/usr/bin/env bash
# replicatest.sh — stand up a live replication topology (1 primary,
# 2 replicas, 1 router) and prove the PR-6 acceptance properties on
# real processes:
#
#   1. writes through the router land on the primary and every replica
#      converges: router /stats lag reaches 0 after writes stop;
#   2. a sample query set answers BIT-IDENTICALLY on the primary, both
#      replicas and through the router;
#   3. read-your-writes: an update's Teleios-Applied-Seq watermark,
#      handed back as Teleios-Min-Version, never reads stale through
#      the router;
#   4. chaos: a replica SIGKILLed mid-stream is ejected, restarts from
#      its own durable dir (no re-bootstrap), catches up, and is
#      readmitted — with zero acknowledged-write loss;
#   5. replicas refuse updates with 403.
#
# Usage: scripts/replicatest.sh [baseport]   (default 18410; uses 4 ports)
# SNAPSHOT_FORMAT=raw|packed selects the checkpoint format all nodes use
# (default packed; replicas bootstrap by mapping the primary's packed
# snapshot in place).
set -u

BASE_PORT="${1:-18410}"
SNAPSHOT_FORMAT="${SNAPSHOT_FORMAT:-packed}"
P_PORT=$BASE_PORT
R1_PORT=$((BASE_PORT + 1))
R2_PORT=$((BASE_PORT + 2))
RT_PORT=$((BASE_PORT + 3))
PRI="http://127.0.0.1:${P_PORT}"
REP1="http://127.0.0.1:${R1_PORT}"
REP2="http://127.0.0.1:${R2_PORT}"
RTR="http://127.0.0.1:${RT_PORT}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "replicatest: FAIL: $*" >&2
    for log in "$WORK"/*.log; do
        echo "--- $log ---" >&2
        tail -40 "$log" >&2 || true
    done
    exit 1
}

wait_healthy() {
    local url="$1" what="$2"
    for _ in $(seq 1 150); do
        if curl -fsS "$url/health" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "$what never became healthy"
}

# applied_seq <base-url> — a node's applied watermark from /stats.
applied_seq() {
    curl -fsS "$1/stats" | jq -r '.store.applied_seq'
}

# wait_converged — poll the router's stats until every healthy backend
# reports lag 0.
wait_converged() {
    for _ in $(seq 1 200); do
        if curl -fsS "$RTR/stats" | jq -e '[.backends[] | select(.healthy)] | all(.lag == 0)' >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "router lag never reached 0: $(curl -fsS "$RTR/stats" | jq -c '.backends')"
}

echo "replicatest: building teleios-server"
go build -o "$WORK/teleios-server" ./cmd/teleios-server || fail "build"

echo "replicatest: starting primary on :$P_PORT (-snapshot-format $SNAPSHOT_FORMAT)"
"$WORK/teleios-server" -addr "127.0.0.1:${P_PORT}" -data-dir "$WORK/primary" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always -linked >"$WORK/primary.log" 2>&1 &
PIDS+=($!)
wait_healthy "$PRI" primary

start_replica() {
    local port="$1" dir="$2" log="$3"
    "$WORK/teleios-server" -addr "127.0.0.1:${port}" -data-dir "$dir" \
        -snapshot-format "$SNAPSHOT_FORMAT" \
        -replicate-from "$PRI" >"$log" 2>&1 &
    echo $!
}

echo "replicatest: starting replicas on :$R1_PORT :$R2_PORT"
R1_PID=$(start_replica "$R1_PORT" "$WORK/replica1" "$WORK/replica1.log")
PIDS+=("$R1_PID")
R2_PID=$(start_replica "$R2_PORT" "$WORK/replica2" "$WORK/replica2.log")
PIDS+=("$R2_PID")
wait_healthy "$REP1" replica1
wait_healthy "$REP2" replica2

echo "replicatest: starting router on :$RT_PORT"
"$WORK/teleios-server" -addr "127.0.0.1:${RT_PORT}" \
    -route-to "$PRI,$REP1,$REP2" >"$WORK/router.log" 2>&1 &
PIDS+=($!)
wait_healthy "$RTR" router

# --- 1. writes through the router; lag converges to 0 ----------------
echo "replicatest: writing 50 updates through the router"
LAST_SEQ=""
for i in $(seq 1 50); do
    hdrs=$(curl -fsS -D - -o /dev/null \
        --data-urlencode "update=INSERT DATA { <http://repl.test/s${i}> <http://repl.test/p> \"v${i}\" }" \
        "$RTR/sparql") || fail "update $i through router"
    LAST_SEQ=$(printf '%s' "$hdrs" | tr -d '\r' | awk -F': ' 'tolower($1)=="teleios-applied-seq"{print $2}')
done
[ -n "$LAST_SEQ" ] || fail "update responses carried no Teleios-Applied-Seq header"
echo "replicatest: last acked watermark $LAST_SEQ"
wait_converged
for node in "$REP1" "$REP2"; do
    seq=$(applied_seq "$node")
    [ "$seq" -ge "$LAST_SEQ" ] || fail "$node watermark $seq below acked $LAST_SEQ after convergence"
done
echo "replicatest: both replicas at or past watermark $LAST_SEQ, router lag 0"

# --- 2. bit-identical sample queries across the whole topology -------
QUERIES=(
    'SELECT ?s ?o WHERE { ?s <http://repl.test/p> ?o } ORDER BY ?s'
    'SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }'
    'SELECT ?s ?n WHERE { ?s a <http://sws.geonames.org/teleios/PopulatedPlace> . ?s rdfs:label ?n } ORDER BY ?n'
)
echo "replicatest: comparing ${#QUERIES[@]} sample queries across primary/replicas/router"
qi=0
for q in "${QUERIES[@]}"; do
    qi=$((qi + 1))
    ref=""
    for node in "$PRI" "$REP1" "$REP2" "$RTR"; do
        out=$(curl -fsS --data-urlencode "query=$q" "$node/sparql?format=csv") \
            || fail "query $qi on $node"
        if [ -z "$ref" ]; then
            ref="$out"
        elif [ "$out" != "$ref" ]; then
            fail "query $qi differs between $PRI and $node"
        fi
    done
done
echo "replicatest: sample queries bit-identical on all nodes"

# --- 3. read-your-writes through the router ---------------------------
echo "replicatest: read-your-writes via Teleios-Min-Version"
hdrs=$(curl -fsS -D - -o /dev/null \
    --data-urlencode 'update=INSERT DATA { <http://repl.test/ryw> <http://repl.test/p> "mine" }' \
    "$RTR/sparql") || fail "ryw update"
W=$(printf '%s' "$hdrs" | tr -d '\r' | awk -F': ' 'tolower($1)=="teleios-applied-seq"{print $2}')
[ -n "$W" ] || fail "ryw update carried no watermark"
ROWS=$(curl -fsS -H "Teleios-Min-Version: $W" \
    --data-urlencode 'query=SELECT ?o WHERE { <http://repl.test/ryw> <http://repl.test/p> ?o }' \
    "$RTR/sparql?format=csv" | tail -n +2 | grep -c .)
[ "$ROWS" -eq 1 ] || fail "watermarked read missed the acked write (rows=$ROWS)"
echo "replicatest: watermarked read saw its own write immediately"

# --- 4. chaos: SIGKILL replica1 mid-stream, restart, reconverge -------
echo "replicatest: SIGKILL replica1 (pid $R1_PID) and keep writing"
kill -9 "$R1_PID"
for i in $(seq 51 80); do
    curl -fsS -o /dev/null \
        --data-urlencode "update=INSERT DATA { <http://repl.test/s${i}> <http://repl.test/p> \"v${i}\" }" \
        "$RTR/sparql" || fail "update $i with replica1 down"
done
# The router must eject the dead replica...
for _ in $(seq 1 100); do
    if curl -fsS "$RTR/stats" | jq -e --arg u "$REP1" \
        '.backends[] | select(.url == $u) | .healthy | not' >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "$RTR/stats" | jq -e --arg u "$REP1" \
    '.backends[] | select(.url == $u) | .healthy | not' >/dev/null \
    || fail "router never ejected the killed replica"
# The ejection is the circuit breaker tripping: the backend's breaker
# must have left the closed state and recorded at least one trip. (With
# no hold-out configured the state oscillates open/half-open as each
# probe fails, so assert on "not closed" + the trip counter, not on a
# single state value.)
curl -fsS "$RTR/stats" | jq -e --arg u "$REP1" \
    '.backends[] | select(.url == $u) | (.breaker != "closed") and (.breaker_trips >= 1)' \
    | grep -q true || fail "killed replica's breaker never tripped: $(curl -fsS "$RTR/stats" | jq -c '.backends')"
# ...while reads keep working.
curl -fsS --data-urlencode 'query=SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }' \
    "$RTR/sparql?format=csv" >/dev/null || fail "reads failed during ejection"
echo "replicatest: replica1 ejected, reads kept flowing"

echo "replicatest: restarting replica1 on its own data dir"
R1_PID=$(start_replica "$R1_PORT" "$WORK/replica1" "$WORK/replica1b.log")
PIDS+=("$R1_PID")
wait_healthy "$REP1" replica1-restarted
grep -q "bootstrapped from snapshot" "$WORK/replica1b.log" \
    && fail "restarted replica re-bootstrapped instead of resuming from local state"
wait_converged
FINAL=$(applied_seq "$PRI")
R1SEQ=$(applied_seq "$REP1")
[ "$R1SEQ" -ge "$FINAL" ] || fail "restarted replica stuck at $R1SEQ, primary at $FINAL"
for _ in $(seq 1 100); do
    if curl -fsS "$RTR/stats" | jq -e --arg u "$REP1" \
        '.backends[] | select(.url == $u) | .healthy' >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "$RTR/stats" | jq -e --arg u "$REP1" \
    '.backends[] | select(.url == $u) | .healthy' >/dev/null \
    || fail "router never readmitted the restarted replica"
# Readmission closes the breaker again; the trip count keeps its history.
curl -fsS "$RTR/stats" | jq -e --arg u "$REP1" \
    '.backends[] | select(.url == $u) | (.breaker == "closed") and (.breaker_trips >= 1)' \
    | grep -q true || fail "readmitted replica's breaker not closed: $(curl -fsS "$RTR/stats" | jq -c '.backends')"
# Zero acked-write loss: every insert must be on the restarted replica.
ROWS=$(curl -fsS --data-urlencode \
    'query=SELECT ?s WHERE { ?s <http://repl.test/p> ?o }' \
    "$REP1/sparql?format=csv" | tail -n +2 | grep -c .)
[ "$ROWS" -ge 81 ] || fail "restarted replica lost acked writes: $ROWS rows, want >= 81"
echo "replicatest: replica1 resumed locally, caught up to $R1SEQ, readmitted"

# --- 5. replicas are read-only ----------------------------------------
CODE=$(curl -s -o /dev/null -w '%{http_code}' \
    --data-urlencode 'update=INSERT DATA { <http://repl.test/x> <http://repl.test/p> "no" }' \
    "$REP2/sparql")
[ "$CODE" = "403" ] || fail "replica accepted an update (status $CODE)"
echo "replicatest: replica refuses updates with 403"

echo "replicatest: PASS (watermark=$FINAL, replicas converged, zero acked-write loss)"
