#!/usr/bin/env bash
# crashtest.sh — SIGKILL a loaded teleios-server mid-write and assert
# clean recovery.
#
# The script starts the server with a durable data dir and -wal-sync
# always, drives a stream of INSERT DATA updates through the endpoint,
# SIGKILLs the process while the stream is running, restarts it on the
# same data dir, and asserts that
#
#   1. the server recovers without error,
#   2. every acknowledged update survived (fsync-before-ack), and
#   3. the recovered store answers queries.
#
# Usage: scripts/crashtest.sh [port]   (default 18321)
# SNAPSHOT_FORMAT=raw|packed selects the checkpoint format under test
# (default packed).
set -u

PORT="${1:-18321}"
SNAPSHOT_FORMAT="${SNAPSHOT_FORMAT:-packed}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="$WORK/data"
ACKED_FILE="$WORK/acked"
SERVER_PID=""
WRITER_PID=""

cleanup() {
    [ -n "$WRITER_PID" ] && kill "$WRITER_PID" 2>/dev/null
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "crashtest: FAIL: $*" >&2
    echo "--- first server log ---" >&2; cat "$WORK/server1.log" >&2 || true
    echo "--- second server log ---" >&2; cat "$WORK/server2.log" >&2 || true
    exit 1
}

wait_healthy() {
    local log="$1"
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/health" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "server never became healthy (log: $log)"
}

echo "crashtest: building teleios-server"
go build -o "$WORK/teleios-server" ./cmd/teleios-server || fail "build"

echo "crashtest: starting server with -data-dir $DATA (-snapshot-format $SNAPSHOT_FORMAT)"
"$WORK/teleios-server" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always -linked >"$WORK/server1.log" 2>&1 &
SERVER_PID=$!
wait_healthy server1.log

BASELINE=$(curl -fsS "$BASE/health" | jq .triples)
echo "crashtest: serving $BASELINE triples; starting update stream"

# Writer: sequential INSERT DATA updates, recording the highest
# acknowledged index. Each update is fsynced before the 200 comes back.
(
    i=0
    while :; do
        i=$((i + 1))
        code=$(curl -s -o /dev/null -w '%{http_code}' \
            --data-urlencode "update=INSERT DATA { <http://crash.test/s${i}> <http://crash.test/p> \"v${i}\" }" \
            "$BASE/sparql")
        if [ "$code" = "200" ]; then
            echo "$i" >"$ACKED_FILE"
        fi
    done
) &
WRITER_PID=$!

# Let the stream run, then kill the server dead mid-write.
sleep 3
[ -s "$ACKED_FILE" ] || fail "no update was acknowledged before the kill"
echo "crashtest: SIGKILL server (pid $SERVER_PID) mid-stream"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
kill "$WRITER_PID" 2>/dev/null
wait "$WRITER_PID" 2>/dev/null
WRITER_PID=""
ACKED=$(cat "$ACKED_FILE")
echo "crashtest: $ACKED updates acknowledged before the kill"

echo "crashtest: restarting on the same data dir"
"$WORK/teleios-server" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always >"$WORK/server2.log" 2>&1 &
SERVER_PID=$!
wait_healthy server2.log
grep -q "recovered" "$WORK/server2.log" || fail "no recovery line in restart log"

# Every acknowledged insert must be answerable.
RECOVERED=$(curl -fsS --data-urlencode \
    'query=SELECT ?s WHERE { ?s <http://crash.test/p> ?o }' \
    "$BASE/sparql?format=csv" | tail -n +2 | grep -c .)
echo "crashtest: recovered $RECOVERED crash-test triples (>= $ACKED acknowledged)"
[ "$RECOVERED" -ge "$ACKED" ] || fail "lost acknowledged updates: recovered $RECOVERED < acked $ACKED"

# At most the one in-flight (unacknowledged) update may appear on top.
[ "$RECOVERED" -le $((ACKED + 1)) ] || fail "recovered more rows than were ever sent: $RECOVERED > $ACKED+1"

# The rest of the dataset survived too, and the endpoint still works.
TOTAL=$(curl -fsS "$BASE/health" | jq .triples)
[ "$TOTAL" -ge $((BASELINE + ACKED)) ] || fail "dataset shrank: $TOTAL < $BASELINE + $ACKED"
curl -fsS "$BASE/stats" | jq -e '.persistence.enabled and .persistence.replayed_records >= 0' >/dev/null \
    || fail "stats missing persistence block"

# Graceful shutdown of the recovered server must checkpoint cleanly.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
grep -q "checkpointed" "$WORK/server2.log" || fail "no final checkpoint on shutdown"

echo "crashtest: PASS (acked=$ACKED recovered=$RECOVERED total=$TOTAL)"
