#!/usr/bin/env bash
# crashtest.sh — SIGKILL a loaded teleios-server mid-write and assert
# clean recovery.
#
# The script starts the server with a durable data dir and -wal-sync
# always, drives a stream of INSERT DATA updates through the endpoint,
# SIGKILLs the process while the stream is running, restarts it on the
# same data dir, and asserts that
#
#   1. the server recovers without error,
#   2. every acknowledged update survived (fsync-before-ack), and
#   3. the recovered store answers queries.
#
# Phase 2 repeats the exercise against the group-commit pipeline: four
# CONCURRENT writer streams (so kills land mid-group-commit, with a
# multi-record batch in flight), SIGKILL, restart, and a per-writer
# assertion that every acknowledged update survived.
#
# Usage: scripts/crashtest.sh [port]   (default 18321)
# SNAPSHOT_FORMAT=raw|packed selects the checkpoint format under test
# (default packed).
set -u

PORT="${1:-18321}"
SNAPSHOT_FORMAT="${SNAPSHOT_FORMAT:-packed}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="$WORK/data"
ACKED_FILE="$WORK/acked"
GROUP_WRITERS=4
SERVER_PID=""
WRITER_PID=""
WRITER_PIDS=""

cleanup() {
    [ -n "$WRITER_PID" ] && kill "$WRITER_PID" 2>/dev/null
    for p in $WRITER_PIDS; do kill "$p" 2>/dev/null; done
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "crashtest: FAIL: $*" >&2
    for log in "$WORK"/server*.log; do
        echo "--- $(basename "$log") ---" >&2; cat "$log" >&2 || true
    done
    exit 1
}

wait_healthy() {
    local log="$1"
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/health" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "server never became healthy (log: $log)"
}

echo "crashtest: building teleios-server"
go build -o "$WORK/teleios-server" ./cmd/teleios-server || fail "build"

echo "crashtest: starting server with -data-dir $DATA (-snapshot-format $SNAPSHOT_FORMAT)"
"$WORK/teleios-server" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always -linked >"$WORK/server1.log" 2>&1 &
SERVER_PID=$!
wait_healthy server1.log

BASELINE=$(curl -fsS "$BASE/health" | jq .triples)
echo "crashtest: serving $BASELINE triples; starting update stream"

# Writer: sequential INSERT DATA updates, recording the highest
# acknowledged index. Each update is fsynced before the 200 comes back.
(
    i=0
    while :; do
        i=$((i + 1))
        code=$(curl -s -o /dev/null -w '%{http_code}' \
            --data-urlencode "update=INSERT DATA { <http://crash.test/s${i}> <http://crash.test/p> \"v${i}\" }" \
            "$BASE/sparql")
        if [ "$code" = "200" ]; then
            echo "$i" >"$ACKED_FILE"
        fi
    done
) &
WRITER_PID=$!

# Let the stream run, then kill the server dead mid-write.
sleep 3
[ -s "$ACKED_FILE" ] || fail "no update was acknowledged before the kill"
echo "crashtest: SIGKILL server (pid $SERVER_PID) mid-stream"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
kill "$WRITER_PID" 2>/dev/null
wait "$WRITER_PID" 2>/dev/null
WRITER_PID=""
ACKED=$(cat "$ACKED_FILE")
echo "crashtest: $ACKED updates acknowledged before the kill"

echo "crashtest: restarting on the same data dir"
"$WORK/teleios-server" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always >"$WORK/server2.log" 2>&1 &
SERVER_PID=$!
wait_healthy server2.log
grep -q "recovered" "$WORK/server2.log" || fail "no recovery line in restart log"

# Every acknowledged insert must be answerable.
RECOVERED=$(curl -fsS --data-urlencode \
    'query=SELECT ?s WHERE { ?s <http://crash.test/p> ?o }' \
    "$BASE/sparql?format=csv" | tail -n +2 | grep -c .)
echo "crashtest: recovered $RECOVERED crash-test triples (>= $ACKED acknowledged)"
[ "$RECOVERED" -ge "$ACKED" ] || fail "lost acknowledged updates: recovered $RECOVERED < acked $ACKED"

# At most the one in-flight (unacknowledged) update may appear on top.
[ "$RECOVERED" -le $((ACKED + 1)) ] || fail "recovered more rows than were ever sent: $RECOVERED > $ACKED+1"

# The rest of the dataset survived too, and the endpoint still works.
TOTAL=$(curl -fsS "$BASE/health" | jq .triples)
[ "$TOTAL" -ge $((BASELINE + ACKED)) ] || fail "dataset shrank: $TOTAL < $BASELINE + $ACKED"
curl -fsS "$BASE/stats" | jq -e '.persistence.enabled and .persistence.replayed_records >= 0' >/dev/null \
    || fail "stats missing persistence block"

# Graceful shutdown of the recovered server must checkpoint cleanly.
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
grep -q "checkpointed" "$WORK/server2.log" || fail "no final checkpoint on shutdown"

echo "crashtest: phase 1 OK (acked=$ACKED recovered=$RECOVERED total=$TOTAL)"

# ---------------------------------------------------------------------
# Phase 2: SIGKILL mid-GROUP-commit. Concurrent writer streams keep a
# multi-record batch in flight at all times, so the kill lands while the
# committer has coalesced several acknowledged-pending updates into one
# buffered write — exactly the window where a group-commit bug would
# lose acked writes or resurrect unacked ones.
# ---------------------------------------------------------------------

echo "crashtest: phase 2: restart for the concurrent-writer group-commit crash"
"$WORK/teleios-server" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always >"$WORK/server3.log" 2>&1 &
SERVER_PID=$!
wait_healthy server3.log
PHASE2_BASE=$(curl -fsS "$BASE/health" | jq .triples)

# Each writer stream uses its own predicate so recovery can be asserted
# per writer: recovered_w >= acked_w, and at most one in-flight update
# per writer on top.
for w in $(seq 1 "$GROUP_WRITERS"); do
    (
        i=0
        while :; do
            i=$((i + 1))
            code=$(curl -s -o /dev/null -w '%{http_code}' \
                --data-urlencode "update=INSERT DATA { <http://crash.test/g/w${w}/s${i}> <http://crash.test/gp${w}> \"v${i}\" }" \
                "$BASE/sparql")
            echo "$i $code" >>"$WORK/codes-w${w}"
            if [ "$code" = "200" ]; then
                echo "$i" >"$WORK/acked-w${w}"
            fi
        done
    ) &
    WRITER_PIDS="$WRITER_PIDS $!"
done

sleep 3
for w in $(seq 1 "$GROUP_WRITERS"); do
    if [ ! -s "$WORK/acked-w${w}" ]; then
        echo "crashtest: writer $w status codes:" >&2; tail -5 "$WORK/codes-w${w}" >&2 || true
        fail "phase 2 writer $w never got an ack before the kill"
    fi
done
echo "crashtest: phase 2: SIGKILL server (pid $SERVER_PID) with $GROUP_WRITERS writers in flight"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
for p in $WRITER_PIDS; do kill "$p" 2>/dev/null; wait "$p" 2>/dev/null; done
WRITER_PIDS=""

echo "crashtest: phase 2: restarting on the same data dir"
"$WORK/teleios-server" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
    -snapshot-format "$SNAPSHOT_FORMAT" \
    -wal-sync always >"$WORK/server4.log" 2>&1 &
SERVER_PID=$!
wait_healthy server4.log
grep -q "recovered" "$WORK/server4.log" || fail "no recovery line in phase 2 restart log"

ACKED2_TOTAL=0
RECOVERED2_TOTAL=0
for w in $(seq 1 "$GROUP_WRITERS"); do
    ACKED_W=$(cat "$WORK/acked-w${w}")
    RECOVERED_W=$(curl -fsS --data-urlencode \
        "query=SELECT ?s WHERE { ?s <http://crash.test/gp${w}> ?o }" \
        "$BASE/sparql?format=csv" | tail -n +2 | grep -c .)
    echo "crashtest: phase 2 writer $w: acked=$ACKED_W recovered=$RECOVERED_W"
    [ "$RECOVERED_W" -ge "$ACKED_W" ] || fail "writer $w lost acked updates: recovered $RECOVERED_W < acked $ACKED_W"
    [ "$RECOVERED_W" -le $((ACKED_W + 1)) ] || fail "writer $w: recovered more rows than were ever sent: $RECOVERED_W > $ACKED_W+1"
    ACKED2_TOTAL=$((ACKED2_TOTAL + ACKED_W))
    RECOVERED2_TOTAL=$((RECOVERED2_TOTAL + RECOVERED_W))
done

TOTAL2=$(curl -fsS "$BASE/health" | jq .triples)
[ "$TOTAL2" -ge $((PHASE2_BASE + ACKED2_TOTAL)) ] || fail "phase 2 dataset shrank: $TOTAL2 < $PHASE2_BASE + $ACKED2_TOTAL"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
grep -q "checkpointed" "$WORK/server4.log" || fail "no final checkpoint after phase 2"

echo "crashtest: PASS (phase1 acked=$ACKED recovered=$RECOVERED; phase2 acked=$ACKED2_TOTAL recovered=$RECOVERED2_TOTAL total=$TOTAL2)"
