// Package leakcheck fails a test binary that exits with goroutines
// still running — the in-repo substitute for go.uber.org/goleak (the
// module deliberately has zero dependencies). Wire it into a package
// with:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the tests pass, Main closes idle HTTP connections, then polls
// the runtime's goroutine dump until only known-benign goroutines
// remain (or a grace period expires — goroutines legitimately take a
// moment to unwind after Close/Cleanup). Anything left is printed with
// its full stack and the binary exits non-zero.
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks marks goroutines that are not leaks: the test runner
// itself, signal handling, and the shared HTTP transport's connection
// loops (which exit lazily after CloseIdleConnections).
var ignoredStacks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"created by testing.",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport).dialConn",
}

// Main runs the package's tests and then the leak check.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no unexpected goroutines remain, returning an
// error describing the leaked stacks if grace expires first.
func Check(grace time.Duration) error {
	// Idle keep-alive connections park goroutines by design; flush the
	// shared transports every test in this repo uses implicitly.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(grace)
	var leaked []string
	for {
		leaked = unexpected()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}

// unexpected returns the stacks of goroutines that are neither the
// caller nor on the ignore list.
func unexpected() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := strings.Split(string(buf), "\n\n")
	var out []string
	for i, s := range stacks {
		if i == 0 {
			continue // the goroutine running this check
		}
		if isIgnored(s) {
			continue
		}
		out = append(out, s)
	}
	return out
}

func isIgnored(stack string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}
