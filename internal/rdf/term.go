// Package rdf implements the RDF 1.1 data model used by the stRDF layer:
// IRIs, literals (plain, typed, language-tagged), blank nodes, triples, and
// (de)serialisation in N-Triples and a practical Turtle subset. A Dictionary
// provides the term<->integer encoding the Strabon column layout relies on.
package rdf

import (
	"strconv"
	"strings"
)

// TermKind tags the dynamic kind of a Term.
type TermKind int

// Term kinds.
const (
	KindIRI TermKind = iota + 1
	KindBlank
	KindLiteral
)

// Common XSD and stRDF datatype IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	// StRDFWKT is the stRDF datatype for OGC WKT spatial literals
	// (strdf:WKT in the paper's vocabulary).
	StRDFWKT = "http://strdf.di.uoa.gr/ontology#WKT"
	// StRDFGML is the stRDF datatype for GML spatial literals.
	StRDFGML = "http://strdf.di.uoa.gr/ontology#GML"
	// GeoSPARQLWKT is the OGC GeoSPARQL wktLiteral datatype, accepted as an
	// alias of strdf:WKT (the paper §1 notes GeoSPARQL convergence).
	GeoSPARQLWKT = "http://www.opengis.net/ont/geosparql#wktLiteral"
	// RDFType is rdf:type.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// RDFSSubClassOf is rdfs:subClassOf.
	RDFSSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	// RDFSLabel is rdfs:label.
	RDFSLabel = "http://www.w3.org/2000/01/rdf-schema#label"
)

// Term is an RDF term: IRI, blank node, or literal. The zero Term is
// invalid. Terms are comparable and usable as map keys.
type Term struct {
	Kind TermKind
	// Value is the IRI string, blank node label (without "_:"), or literal
	// lexical form.
	Value string
	// Datatype is the literal datatype IRI ("" means xsd:string / plain).
	Datatype string
	// Lang is the language tag for language-tagged literals.
	Lang string
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Blank returns a blank node term with the given label (no "_:" prefix).
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// Literal returns a plain (xsd:string) literal.
func Literal(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// LangLiteral returns a language-tagged literal.
func LangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: lang}
}

// IntegerLiteral returns an xsd:integer literal.
func IntegerLiteral(v int64) Term {
	return TypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// DoubleLiteral returns an xsd:double literal.
func DoubleLiteral(v float64) Term {
	return TypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// BooleanLiteral returns an xsd:boolean literal.
func BooleanLiteral(v bool) Term {
	return TypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// WKTLiteral returns an stRDF WKT spatial literal. An optional SRID is
// conveyed in-band as "<wkt>;<srid>" per the stRDF literal syntax (e.g.
// "POINT(1 2);4326"); srid 0 means the stRDF default (WGS84).
func WKTLiteral(wkt string, srid int) Term {
	if srid != 0 {
		buf := make([]byte, 0, len(wkt)+8)
		buf = append(buf, wkt...)
		buf = append(buf, ';')
		wkt = string(strconv.AppendInt(buf, int64(srid), 10))
	}
	return TypedLiteral(wkt, StRDFWKT)
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsSpatial reports whether the term is a spatial (WKT/GML) literal.
func (t Term) IsSpatial() bool {
	return t.Kind == KindLiteral &&
		(t.Datatype == StRDFWKT || t.Datatype == GeoSPARQLWKT || t.Datatype == StRDFGML)
}

// IsZero reports whether the term is the invalid zero value.
func (t Term) IsZero() bool { return t.Kind == 0 }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return "?!invalid-term"
	}
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple constructs a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (with trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Graph is an in-memory set of triples preserving insertion order.
type Graph struct {
	triples []Triple
	index   map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[Triple]struct{})}
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.index[t]; ok {
		return false
	}
	g.index[t] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// Remove deletes a triple; it reports whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.index[t]; !ok {
		return false
	}
	delete(g.index, t)
	for i, tr := range g.triples {
		if tr == t {
			g.triples = append(g.triples[:i], g.triples[i+1:]...)
			break
		}
	}
	return true
}

// Has reports membership.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.index[t]
	return ok
}

// Len reports the number of triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order (shared backing array;
// callers must not mutate).
func (g *Graph) Triples() []Triple { return g.triples }

// Match returns the triples matching a pattern where zero Terms are
// wildcards.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	for _, t := range g.triples {
		if !s.IsZero() && t.S != s {
			continue
		}
		if !p.IsZero() && t.P != p {
			continue
		}
		if !o.IsZero() && t.O != o {
			continue
		}
		out = append(out, t)
	}
	return out
}
