package rdf

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Turtle subset parser: @prefix / PREFIX directives, prefixed names, 'a'
// keyword, object lists (','), predicate-object lists (';'), numeric and
// boolean shorthand literals, and long ("""...""") strings. This covers the
// Turtle the TELEIOS linked-data generators and examples emit.

// ParseTurtle parses a Turtle document.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &turtleParser{src: string(data), prefixes: map[string]string{}}
	return p.parse()
}

// ParseTurtleString parses a Turtle document from a string.
func ParseTurtleString(s string) ([]Triple, error) {
	return ParseTurtle(strings.NewReader(s))
}

type turtleParser struct {
	src      string
	pos      int
	line     int
	prefixes map[string]string
	base     string
	out      []Triple
	bnodeSeq int
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) skip() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) parse() ([]Triple, error) {
	for {
		p.skip()
		if p.pos >= len(p.src) {
			return p.out, nil
		}
		if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
			if err := p.prefixDirective(); err != nil {
				return nil, err
			}
			continue
		}
		if p.hasKeyword("@base") || p.hasKeyword("BASE") {
			if err := p.baseDirective(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
}

func (p *turtleParser) hasKeyword(kw string) bool {
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	end := p.pos + len(kw)
	return end >= len(p.src) || p.src[end] == ' ' || p.src[end] == '\t' || p.src[end] == '<' || p.src[end] == '\n'
}

func (p *turtleParser) prefixDirective() error {
	atForm := p.src[p.pos] == '@'
	if atForm {
		p.pos += len("@prefix")
	} else {
		p.pos += len("PREFIX")
	}
	p.skip()
	colon := strings.IndexByte(p.src[p.pos:], ':')
	if colon < 0 {
		return p.errf("prefix directive missing ':'")
	}
	name := strings.TrimSpace(p.src[p.pos : p.pos+colon])
	p.pos += colon + 1
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return p.errf("prefix directive missing IRI")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errf("unterminated prefix IRI")
	}
	p.prefixes[name] = p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	p.skip()
	if atForm {
		if p.pos >= len(p.src) || p.src[p.pos] != '.' {
			return p.errf("@prefix directive missing '.'")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) baseDirective() error {
	atForm := p.src[p.pos] == '@'
	if atForm {
		p.pos += len("@base")
	} else {
		p.pos += len("BASE")
	}
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return p.errf("base directive missing IRI")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errf("unterminated base IRI")
	}
	p.base = p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	p.skip()
	if atForm {
		if p.pos >= len(p.src) || p.src[p.pos] != '.' {
			return p.errf("@base directive missing '.'")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) statement() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	for {
		p.skip()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skip()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.out = append(p.out, Triple{S: subj, P: pred, O: obj})
			p.skip()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == ';' {
			p.pos++
			p.skip()
			// Trailing ';' before '.' is allowed.
			if p.pos < len(p.src) && p.src[p.pos] == '.' {
				p.pos++
				return nil
			}
			continue
		}
		break
	}
	p.skip()
	if p.pos >= len(p.src) || p.src[p.pos] != '.' {
		return p.errf("statement missing '.'")
	}
	p.pos++
	return nil
}

func (p *turtleParser) subject() (Term, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("expected subject")
	}
	switch p.src[p.pos] {
	case '<':
		return p.iriRef()
	case '_':
		return p.blankNode()
	case '[':
		p.pos++
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			p.bnodeSeq++
			return Blank(fmt.Sprintf("anon%d", p.bnodeSeq)), nil
		}
		return Term{}, p.errf("non-empty blank node property lists are unsupported")
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) predicate() (Term, error) {
	if p.pos < len(p.src) && p.src[p.pos] == 'a' {
		next := p.pos + 1
		if next >= len(p.src) || p.src[next] == ' ' || p.src[next] == '\t' || p.src[next] == '<' {
			p.pos++
			return IRI(RDFType), nil
		}
	}
	if p.pos < len(p.src) && p.src[p.pos] == '<' {
		return p.iriRef()
	}
	return p.prefixedName()
}

func (p *turtleParser) object() (Term, error) {
	if p.pos >= len(p.src) {
		return Term{}, p.errf("expected object")
	}
	switch c := p.src[p.pos]; {
	case c == '<':
		return p.iriRef()
	case c == '_':
		return p.blankNode()
	case c == '"':
		return p.literalTerm()
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.numericLiteral()
	case strings.HasPrefix(p.src[p.pos:], "true") && p.boundaryAt(p.pos+4):
		p.pos += 4
		return BooleanLiteral(true), nil
	case strings.HasPrefix(p.src[p.pos:], "false") && p.boundaryAt(p.pos+5):
		p.pos += 5
		return BooleanLiteral(false), nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) boundaryAt(i int) bool {
	if i >= len(p.src) {
		return true
	}
	c := p.src[i]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '.' || c == ',' || c == ';'
}

func (p *turtleParser) iriRef() (Term, error) {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = p.base + iri
	}
	return IRI(iri), nil
}

func (p *turtleParser) blankNode() (Term, error) {
	if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
		return Term{}, p.errf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.src) && isBlankLabelChar(p.src[i]) {
		i++
	}
	// A trailing '.' is a statement terminator, not part of the label.
	for i > start && p.src[i-1] == '.' {
		i--
	}
	if i == start {
		return Term{}, p.errf("empty blank node label")
	}
	label := p.src[start:i]
	p.pos = i
	return Blank(label), nil
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	i := p.pos
	for i < len(p.src) && isPNameChar(p.src[i]) {
		i++
	}
	colon := -1
	for j := start; j < i; j++ {
		if p.src[j] == ':' {
			colon = j
			break
		}
	}
	if colon < 0 {
		return Term{}, p.errf("expected prefixed name at %q", excerpt(p.src[start:]))
	}
	prefix := p.src[start:colon]
	local := p.src[colon+1 : i]
	// A trailing '.' terminates the statement rather than the local name.
	for len(local) > 0 && local[len(local)-1] == '.' {
		local = local[:len(local)-1]
		i--
	}
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("unknown prefix %q", prefix)
	}
	p.pos = i
	return IRI(ns + local), nil
}

func isPNameChar(c byte) bool {
	return isAlnum(c) || c == ':' || c == '_' || c == '-' || c == '.' || c == '%'
}

func excerpt(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

func (p *turtleParser) literalTerm() (Term, error) {
	// Long string?
	if strings.HasPrefix(p.src[p.pos:], `"""`) {
		end := strings.Index(p.src[p.pos+3:], `"""`)
		if end < 0 {
			return Term{}, p.errf("unterminated long string")
		}
		lex := p.src[p.pos+3 : p.pos+3+end]
		p.line += strings.Count(lex, "\n")
		p.pos += end + 6
		return p.literalSuffix(lex)
	}
	tp := &termParser{src: p.src[p.pos:]}
	t, err := tp.literal()
	if err != nil {
		return Term{}, p.errf("%v", err)
	}
	p.pos += tp.pos
	return t, nil
}

func (p *turtleParser) literalSuffix(lex string) (Term, error) {
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		start := p.pos + 1
		i := start
		for i < len(p.src) && (p.src[i] == '-' || isAlnum(p.src[i])) {
			i++
		}
		lang := p.src[start:i]
		p.pos = i
		return LangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		if p.pos < len(p.src) && p.src[p.pos] == '<' {
			dt, err := p.iriRef()
			if err != nil {
				return Term{}, err
			}
			return TypedLiteral(lex, dt.Value), nil
		}
		dt, err := p.prefixedName()
		if err != nil {
			return Term{}, err
		}
		return TypedLiteral(lex, dt.Value), nil
	}
	return Literal(lex), nil
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.pos
	i := p.pos
	if i < len(p.src) && (p.src[i] == '+' || p.src[i] == '-') {
		i++
	}
	hasDot, hasExp := false, false
	for i < len(p.src) {
		c := p.src[i]
		if c >= '0' && c <= '9' {
			i++
			continue
		}
		if c == '.' && !hasDot && i+1 < len(p.src) && p.src[i+1] >= '0' && p.src[i+1] <= '9' {
			hasDot = true
			i++
			continue
		}
		if (c == 'e' || c == 'E') && !hasExp {
			hasExp = true
			i++
			if i < len(p.src) && (p.src[i] == '+' || p.src[i] == '-') {
				i++
			}
			continue
		}
		break
	}
	lex := p.src[start:i]
	p.pos = i
	switch {
	case hasExp:
		return TypedLiteral(lex, XSDDouble), nil
	case hasDot:
		return TypedLiteral(lex, XSDDecimal), nil
	default:
		return TypedLiteral(lex, XSDInteger), nil
	}
}

// WriteTurtle serialises triples as Turtle grouped by subject, using the
// provided prefix map (name -> namespace IRI).
func WriteTurtle(w io.Writer, triples []Triple, prefixes map[string]string) error {
	names := make([]string, 0, len(prefixes))
	for n := range prefixes {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", n, prefixes[n])
	}
	if len(names) > 0 {
		b.WriteByte('\n')
	}
	abbr := func(t Term) string {
		if t.Kind == KindIRI {
			if t.Value == RDFType {
				return "a"
			}
			for _, n := range names {
				ns := prefixes[n]
				if strings.HasPrefix(t.Value, ns) {
					local := t.Value[len(ns):]
					if local != "" && isSafeLocal(local) {
						return n + ":" + local
					}
				}
			}
		}
		return t.String()
	}
	// Group consecutive triples by subject.
	for i := 0; i < len(triples); {
		s := triples[i].S
		j := i
		for j < len(triples) && triples[j].S == s {
			j++
		}
		b.WriteString(abbr(s))
		group := triples[i:j]
		for k, t := range group {
			if k == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(" ;\n    ")
			}
			b.WriteString(abbr(t.P))
			b.WriteByte(' ')
			b.WriteString(abbr(t.O))
		}
		b.WriteString(" .\n")
		i = j
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func isSafeLocal(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !isAlnum(c) && c != '_' && c != '-' {
			return false
		}
	}
	return true
}
