package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Dictionary maps RDF terms to dense uint64 identifiers and back. Strabon
// stores triples as three integer columns over this dictionary — the same
// layout MonetDB uses underneath the paper's Strabon deployment. ID 0 is
// reserved (never assigned) so stores can use it as "unbound".
type Dictionary struct {
	mu      sync.RWMutex
	byTerm  map[Term]uint64
	byID    []Term // byID[i] holds the term for id i+1
	spatial map[uint64]struct{}
	// bytes tracks the string bytes held across byID for
	// EstimateBytes; maintained by Encode.
	bytes int64
}

// NewDictionary returns an empty dictionary. The term map is presized
// for a small catalogue so bulk encoding does not rehash from zero.
func NewDictionary() *Dictionary {
	return &Dictionary{
		byTerm:  make(map[Term]uint64, 512),
		spatial: make(map[uint64]struct{}, 64),
	}
}

// Encode returns the ID for t, assigning a fresh one if necessary.
func (d *Dictionary) Encode(t Term) uint64 {
	d.mu.RLock()
	id, ok := d.byTerm[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byTerm[t]; ok {
		return id
	}
	d.byID = append(d.byID, t)
	id = uint64(len(d.byID))
	d.byTerm[t] = id
	d.bytes += int64(len(t.Value) + len(t.Datatype) + len(t.Lang))
	if t.IsSpatial() {
		d.spatial[id] = struct{}{}
	}
	return id
}

// Lookup returns the ID for t without assigning; ok is false when t has
// no ID yet.
func (d *Dictionary) Lookup(t Term) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byTerm[t]
	return id, ok
}

// Decode returns the term for id; ok is false for unknown ids (including 0).
func (d *Dictionary) Decode(id uint64) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || id > uint64(len(d.byID)) {
		return Term{}, false
	}
	return d.byID[id-1], true
}

// DecodeAll decodes ids[i] into out[i] under a single lock acquisition —
// the batch counterpart of Decode for vectorized readers. Unknown ids
// (including 0) decode to the zero Term. out must have len(ids) capacity;
// the filled prefix is returned.
func (d *Dictionary) DecodeAll(ids []uint64, out []Term) []Term {
	out = out[:len(ids)]
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := uint64(len(d.byID))
	for i, id := range ids {
		if id == 0 || id > n {
			out[i] = Term{}
			continue
		}
		out[i] = d.byID[id-1]
	}
	return out
}

// IsSpatialID reports whether id encodes a spatial literal.
func (d *Dictionary) IsSpatialID(id uint64) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.spatial[id]
	return ok
}

// Len reports the number of assigned IDs.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// EstimateBytes approximates the heap bytes the dictionary holds: the
// term string bytes plus fixed per-entry overhead for the two maps'
// entries and the Term structs themselves (counted twice — byTerm keys
// and byID values share strings but not headers).
func (d *Dictionary) EstimateBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	const perEntry = 2*termHeaderBytes + mapEntryOverhead
	return d.bytes + int64(len(d.byID))*perEntry
}

const (
	// termHeaderBytes is the size of a Term value: three string headers
	// (16 bytes each) plus the kind byte, padded.
	termHeaderBytes = 56
	// mapEntryOverhead is a rough per-entry charge for byTerm's bucket
	// storage (key already counted) and the uint64 value.
	mapEntryOverhead = 16
)

// SpatialIDs returns all ids of spatial literals, in unspecified order.
func (d *Dictionary) SpatialIDs() []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]uint64, 0, len(d.spatial))
	for id := range d.spatial {
		out = append(out, id)
	}
	return out
}

// dictMagic identifies the dictionary binary snapshot format.
const dictMagic = "TELDICT1"

// WriteTo serialises the dictionary (terms in ID order) in a compact
// length-prefixed binary format.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(dictMagic)); err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(d.byID)))
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	writeStr := func(s string) error {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
		if err := write(l[:]); err != nil {
			return err
		}
		return write([]byte(s))
	}
	for _, t := range d.byID {
		if err := write([]byte{byte(t.Kind)}); err != nil {
			return n, err
		}
		if err := writeStr(t.Value); err != nil {
			return n, err
		}
		if err := writeStr(t.Datatype); err != nil {
			return n, err
		}
		if err := writeStr(t.Lang); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDictionary deserialises a dictionary snapshot written by WriteTo.
func ReadDictionary(r io.Reader) (*Dictionary, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dictMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rdf: reading dictionary magic: %w", err)
	}
	if string(magic) != dictMagic {
		return nil, fmt.Errorf("rdf: bad dictionary magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	d := NewDictionary()
	readStr := func() (string, error) {
		var l [4]byte
		if _, err := io.ReadFull(br, l[:]); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint32(l[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	for i := uint64(0); i < count; i++ {
		var kind [1]byte
		if _, err := io.ReadFull(br, kind[:]); err != nil {
			return nil, err
		}
		value, err := readStr()
		if err != nil {
			return nil, err
		}
		datatype, err := readStr()
		if err != nil {
			return nil, err
		}
		lang, err := readStr()
		if err != nil {
			return nil, err
		}
		t := Term{Kind: TermKind(kind[0]), Value: value, Datatype: datatype, Lang: lang}
		d.Encode(t)
	}
	return d, nil
}
