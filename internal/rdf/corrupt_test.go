package rdf

import (
	"bytes"
	"testing"
)

// Truncation fuzzing for the dictionary snapshot.
func TestReadDictionaryTruncated(t *testing.T) {
	d := NewDictionary()
	d.Encode(IRI("http://example.org/a"))
	d.Encode(LangLiteral("hello", "en"))
	d.Encode(WKTLiteral("POINT (1 2)", 4326))
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadDictionary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("ReadDictionary succeeded on %d/%d byte prefix", cut, len(data))
		}
	}
	got, err := ReadDictionary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip len = %d", got.Len())
	}
}

func TestReadDictionaryGarbageAfterMagic(t *testing.T) {
	// Valid magic, corrupt count: must not allocate unboundedly or panic.
	data := append([]byte("TELDICT1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadDictionary(bytes.NewReader(data)); err == nil {
		t.Fatal("huge count should error when terms are missing")
	}
}
