package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	iri := IRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatal("IRI kind")
	}
	b := Blank("n1")
	if !b.IsBlank() {
		t.Fatal("blank kind")
	}
	l := Literal("hello")
	if !l.IsLiteral() || l.Datatype != "" {
		t.Fatal("plain literal")
	}
	if IntegerLiteral(42).Value != "42" || IntegerLiteral(42).Datatype != XSDInteger {
		t.Fatal("integer literal")
	}
	if BooleanLiteral(true).Value != "true" {
		t.Fatal("bool literal")
	}
	if DoubleLiteral(2.5).Datatype != XSDDouble {
		t.Fatal("double literal")
	}
	var zero Term
	if !zero.IsZero() {
		t.Fatal("zero term")
	}
}

func TestWKTLiteral(t *testing.T) {
	w := WKTLiteral("POINT(23.5 37.9)", 4326)
	if !w.IsSpatial() {
		t.Fatal("WKT literal should be spatial")
	}
	if w.Value != "POINT(23.5 37.9);4326" {
		t.Fatalf("value = %q", w.Value)
	}
	noSRID := WKTLiteral("POINT(1 2)", 0)
	if noSRID.Value != "POINT(1 2)" {
		t.Fatalf("value = %q", noSRID.Value)
	}
	gml := TypedLiteral("<gml:Point/>", StRDFGML)
	if !gml.IsSpatial() {
		t.Fatal("GML literal should be spatial")
	}
	geosparql := TypedLiteral("POINT(1 2)", GeoSPARQLWKT)
	if !geosparql.IsSpatial() {
		t.Fatal("GeoSPARQL wktLiteral should be spatial")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{IRI("http://a/b"), "<http://a/b>"},
		{Blank("x"), "_:x"},
		{Literal("hi"), `"hi"`},
		{LangLiteral("hi", "en"), `"hi"@en`},
		{TypedLiteral("5", XSDInteger), `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{Literal("a\"b\nc\\d"), `"a\"b\nc\\d"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestGraphOps(t *testing.T) {
	g := NewGraph()
	tr := NewTriple(IRI("s"), IRI("p"), Literal("o"))
	if !g.Add(tr) {
		t.Fatal("first add")
	}
	if g.Add(tr) {
		t.Fatal("duplicate add should report false")
	}
	if g.Len() != 1 || !g.Has(tr) {
		t.Fatal("membership")
	}
	g.Add(NewTriple(IRI("s"), IRI("p2"), Literal("o2")))
	g.Add(NewTriple(IRI("s2"), IRI("p"), Literal("o")))
	if got := g.Match(IRI("s"), Term{}, Term{}); len(got) != 2 {
		t.Fatalf("Match(s,*,*) = %d", len(got))
	}
	if got := g.Match(Term{}, IRI("p"), Term{}); len(got) != 2 {
		t.Fatalf("Match(*,p,*) = %d", len(got))
	}
	if got := g.Match(Term{}, Term{}, Literal("o")); len(got) != 2 {
		t.Fatalf("Match(*,*,o) = %d", len(got))
	}
	if !g.Remove(tr) || g.Has(tr) || g.Len() != 2 {
		t.Fatal("remove")
	}
	if g.Remove(tr) {
		t.Fatal("double remove")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(IRI("http://ex/s"), IRI("http://ex/p"), IRI("http://ex/o")),
		NewTriple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("plain")),
		NewTriple(IRI("http://ex/s"), IRI("http://ex/p"), LangLiteral("γεια", "el")),
		NewTriple(IRI("http://ex/s"), IRI("http://ex/p"), TypedLiteral("12", XSDInteger)),
		NewTriple(Blank("b0"), IRI("http://ex/p"), WKTLiteral("POINT(23 37)", 4326)),
		NewTriple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("line1\nline2\t\"q\"")),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, triples); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(triples) {
		t.Fatalf("count = %d, want %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("triple %d: %v != %v", i, got[i], triples[i])
		}
	}
}

func TestNTriplesCommentsAndBlanks(t *testing.T) {
	src := `# a comment

<http://ex/s> <http://ex/p> "v" .
# another
`
	got, err := ParseNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("count = %d", len(got))
	}
}

func TestNTriplesErrors(t *testing.T) {
	for _, src := range []string{
		`<http://ex/s> <http://ex/p> "v"`,              // no dot
		`"lit" <http://ex/p> "v" .`,                    // literal subject
		`<http://ex/s> _:b "v" .`,                      // blank predicate
		`<http://ex/s> <http://ex/p> "open .`,          // unterminated literal
		`<http://ex/s> <http://ex/p> <unclosed .`,      // unterminated IRI
		`<http://ex/s> <http://ex/p> "v" . extra`,      // trailing garbage
		`<http://ex/s> <http://ex/p> "bad\q" .`,        // bad escape
		`<http://ex/s> <http://ex/p> "v"^^"notiri" .`,  // datatype not IRI
		`<http://ex/s> <http://ex/p> "v"@ .`,           // empty lang
		`<http://ex/s> <http://ex/p> "v" ^ extra . x.`, // junk
	} {
		if _, err := ParseNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("ParseNTriples(%q) succeeded, want error", src)
		}
	}
}

func TestNTriplesUnicodeEscape(t *testing.T) {
	src := `<http://ex/s> <http://ex/p> "café" .`
	got, err := ParseNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].O.Value != "café" {
		t.Fatalf("value = %q", got[0].O.Value)
	}
}

func TestTurtleBasics(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix noa: <http://teleios.di.uoa.gr/noa#> .

ex:hotspot1 a noa:Hotspot ;
    noa:hasConfidence 0.85 ;
    noa:inSensor "MSG2" ;
    noa:hasGeometry "POINT(23.5 37.9);4326"^^<http://strdf.di.uoa.gr/ontology#WKT> .

ex:hotspot2 a noa:Hotspot , noa:Refined .
<http://example.org/abs> ex:count 42 .
`
	got, err := ParseTurtleString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("count = %d, want 7", len(got))
	}
	if got[0].P.Value != RDFType || got[0].O.Value != "http://teleios.di.uoa.gr/noa#Hotspot" {
		t.Fatalf("first triple = %v", got[0])
	}
	if got[1].O.Datatype != XSDDecimal || got[1].O.Value != "0.85" {
		t.Fatalf("decimal = %v", got[1].O)
	}
	if !got[3].O.IsSpatial() {
		t.Fatalf("spatial literal = %v", got[3].O)
	}
	// Comma object list.
	if got[4].S != got[5].S || got[4].P != got[5].P {
		t.Fatal("object list should share s/p")
	}
	if got[6].O.Datatype != XSDInteger {
		t.Fatalf("integer = %v", got[6].O)
	}
}

func TestTurtlePrefixForms(t *testing.T) {
	src := `PREFIX ex: <http://example.org/>
ex:a ex:b ex:c .
`
	got, err := ParseTurtleString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].S.Value != "http://example.org/a" {
		t.Fatalf("got %v", got)
	}
}

func TestTurtleBooleansAndNegatives(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
ex:x ex:flag true ; ex:neg -5 ; ex:exp 1.5e3 .
`
	got, err := ParseTurtleString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].O.Datatype != XSDBoolean {
		t.Fatalf("bool = %v", got[0].O)
	}
	if got[1].O.Value != "-5" || got[1].O.Datatype != XSDInteger {
		t.Fatalf("neg = %v", got[1].O)
	}
	if got[2].O.Datatype != XSDDouble {
		t.Fatalf("exp = %v", got[2].O)
	}
}

func TestTurtleErrors(t *testing.T) {
	for _, src := range []string{
		`ex:a ex:b ex:c .`,                     // unknown prefix
		`@prefix ex <http://ex/> .`,            // missing colon... actually "ex <" -> colon missing
		`@prefix ex: <http://ex/> . ex:a ex:b`, // missing object/dot
		`@prefix ex: <http://ex/>
ex:a ex:b "unclosed .`,
	} {
		if _, err := ParseTurtleString(src); err == nil {
			t.Errorf("ParseTurtleString(%q) succeeded, want error", src)
		}
	}
}

func TestTurtleWriteRead(t *testing.T) {
	triples := []Triple{
		NewTriple(IRI("http://ex/s1"), IRI(RDFType), IRI("http://ex/Class")),
		NewTriple(IRI("http://ex/s1"), IRI("http://ex/p"), Literal("v")),
		NewTriple(IRI("http://ex/s2"), IRI("http://ex/p"), TypedLiteral("3", XSDInteger)),
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, triples, map[string]string{"ex": "http://ex/"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@prefix ex:") || !strings.Contains(out, "ex:s1 a ex:Class") {
		t.Fatalf("turtle output:\n%s", out)
	}
	back, err := ParseTurtleString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(back) != len(triples) {
		t.Fatalf("reparse count = %d", len(back))
	}
	for i := range triples {
		if back[i] != triples[i] {
			t.Errorf("triple %d: %v != %v", i, back[i], triples[i])
		}
	}
}

func TestDictionaryEncodeDecode(t *testing.T) {
	d := NewDictionary()
	a := IRI("http://ex/a")
	b := Literal("b")
	idA := d.Encode(a)
	idB := d.Encode(b)
	if idA == 0 || idB == 0 {
		t.Fatal("ID 0 is reserved")
	}
	if idA == idB {
		t.Fatal("distinct terms, same ID")
	}
	if again := d.Encode(a); again != idA {
		t.Fatal("re-encode changed ID")
	}
	got, ok := d.Decode(idA)
	if !ok || got != a {
		t.Fatalf("Decode = %v, %v", got, ok)
	}
	if _, ok := d.Decode(0); ok {
		t.Fatal("Decode(0) should fail")
	}
	if _, ok := d.Decode(999); ok {
		t.Fatal("Decode(unknown) should fail")
	}
	if id, ok := d.Lookup(a); !ok || id != idA {
		t.Fatal("Lookup")
	}
	if _, ok := d.Lookup(IRI("http://ex/missing")); ok {
		t.Fatal("Lookup missing")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDictionarySpatialTracking(t *testing.T) {
	d := NewDictionary()
	w := d.Encode(WKTLiteral("POINT(1 2)", 4326))
	p := d.Encode(Literal("plain"))
	if !d.IsSpatialID(w) {
		t.Fatal("spatial ID not tracked")
	}
	if d.IsSpatialID(p) {
		t.Fatal("plain literal tracked as spatial")
	}
	ids := d.SpatialIDs()
	if len(ids) != 1 || ids[0] != w {
		t.Fatalf("SpatialIDs = %v", ids)
	}
}

func TestDictionaryPersistence(t *testing.T) {
	d := NewDictionary()
	terms := []Term{
		IRI("http://ex/a"),
		Literal("plain"),
		LangLiteral("x", "en"),
		TypedLiteral("5", XSDInteger),
		WKTLiteral("POINT(1 2)", 4326),
		Blank("node1"),
	}
	ids := make([]uint64, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", d2.Len(), d.Len())
	}
	for i, tm := range terms {
		got, ok := d2.Decode(ids[i])
		if !ok || got != tm {
			t.Errorf("Decode(%d) = %v, want %v", ids[i], got, tm)
		}
	}
	if !d2.IsSpatialID(ids[4]) {
		t.Fatal("spatial flag lost in round trip")
	}
}

func TestReadDictionaryBadMagic(t *testing.T) {
	if _, err := ReadDictionary(strings.NewReader("NOTMAGIC")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestDictionaryConcurrentEncode(t *testing.T) {
	d := NewDictionary()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				d.Encode(IRI(strings.Repeat("x", i%7) + "shared"))
				d.Encode(IntegerLiteral(int64(i)))
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	// "shared"-suffixed IRIs: 7 distinct; integers: 200 distinct.
	if d.Len() != 207 {
		t.Fatalf("Len = %d, want 207", d.Len())
	}
}

func TestNTriplesPropertyRoundTrip(t *testing.T) {
	f := func(s, o string) bool {
		tr := NewTriple(IRI("http://ex/"+sanitize(s)), IRI("http://ex/p"), Literal(o))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, []Triple{tr}); err != nil {
			return false
		}
		got, err := ParseNTriples(&buf)
		return err == nil && len(got) == 1 && got[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// sanitize strips characters not legal inside an IRI ref for the property
// test (the writer does not escape IRIs, matching N-Triples which forbids
// them).
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r != '<' && r != '>' && r != '"' && r != '\\' && r < 0x7f {
			b.WriteRune(r)
		}
	}
	return b.String()
}
