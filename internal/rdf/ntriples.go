package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// N-Triples and Turtle-subset (de)serialisation. Semantic annotations in
// TELEIOS are exchanged as linked data; N-Triples is the canonical dump
// format, Turtle the human-facing one (prefixes, 'a', comma/semicolon
// abbreviations).

// WriteNTriples serialises triples to w, one statement per line.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseNTriples reads N-Triples statements from r. Blank lines and #
// comment lines are skipped. Errors carry the 1-based line number.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseTripleLine parses a single N-Triples statement (trailing '.'
// required).
func ParseTripleLine(line string) (Triple, error) {
	p := &termParser{src: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '.' {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	p.pos++
	p.skipSpace()
	if p.pos != len(p.src) {
		return Triple{}, fmt.Errorf("trailing content after '.'")
	}
	if !s.IsIRI() && !s.IsBlank() {
		return Triple{}, fmt.Errorf("subject must be IRI or blank node")
	}
	if !pr.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be IRI")
	}
	return Triple{S: s, P: pr, O: o}, nil
}

type termParser struct {
	src string
	pos int
}

func (p *termParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// term parses one N-Triples term at the cursor.
func (p *termParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.src[p.pos] {
	case '<':
		return p.iriRef()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", string(p.src[p.pos]))
	}
}

func (p *termParser) iriRef() (Term, error) {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	return IRI(iri), nil
}

func (p *termParser) blank() (Term, error) {
	if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.src) && isBlankLabelChar(p.src[i]) {
		i++
	}
	if i == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	label := p.src[start:i]
	p.pos = i
	return Blank(label), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func (p *termParser) literal() (Term, error) {
	// Opening quote at p.pos.
	i := p.pos + 1
	var b strings.Builder
	for {
		if i >= len(p.src) {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.src[i]
		if c == '\\' {
			if i+1 >= len(p.src) {
				return Term{}, fmt.Errorf("dangling escape")
			}
			switch p.src[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u':
				if i+6 > len(p.src) {
					return Term{}, fmt.Errorf("short \\u escape")
				}
				var r rune
				if _, err := fmt.Sscanf(p.src[i+2:i+6], "%04x", &r); err != nil {
					return Term{}, fmt.Errorf("bad \\u escape: %v", err)
				}
				b.WriteRune(r)
				i += 6
				continue
			default:
				return Term{}, fmt.Errorf("unknown escape \\%c", p.src[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			break
		}
		b.WriteByte(c)
		i++
	}
	lex := b.String()
	p.pos = i + 1
	// Optional language tag or datatype.
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		start := p.pos + 1
		j := start
		for j < len(p.src) && (p.src[j] == '-' || isAlnum(p.src[j])) {
			j++
		}
		if j == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		lang := p.src[start:j]
		p.pos = j
		return LangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.src) || p.src[p.pos] != '<' {
			return Term{}, fmt.Errorf("datatype must be an IRI")
		}
		dt, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return TypedLiteral(lex, dt.Value), nil
	}
	return Literal(lex), nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
