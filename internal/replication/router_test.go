package replication

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a scripted /sparql + /stats server: /sparql answers
// with the backend's name (so tests can see where a query landed) and
// /stats reports a configurable applied-seq or, when marked down,
// fails health checks with 500s.
type fakeBackend struct {
	name string
	seq  atomic.Uint64
	down atomic.Bool
	ts   *httptest.Server
}

func newFakeBackend(t *testing.T, name string, seq uint64) *fakeBackend {
	t.Helper()
	b := &fakeBackend{name: name}
	b.seq.Store(seq)
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", func(w http.ResponseWriter, r *http.Request) {
		if b.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.name)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if b.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `{"store":{"applied_seq":%d}}`, b.seq.Load())
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

// newTestRouter stands up a router over the given backends with a fast
// health loop, waiting for the first health pass so tests start from a
// settled view.
func newTestRouter(t *testing.T, primary *fakeBackend, replicas ...*fakeBackend) *Router {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, b := range replicas {
		urls[i] = b.ts.URL
	}
	rt, err := NewRouter(RouterOptions{
		Primary:     primary.ts.URL,
		Replicas:    urls,
		HealthEvery: 5 * time.Millisecond,
		FailAfter:   2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	// Backends start optimistically healthy before the first probe, so
	// "N healthy" alone doesn't mean the router has seen them. Every
	// fake backend reports applied-seq >= 1, so a populated AppliedSeq
	// is the proof the first health pass actually landed.
	waitHealth(t, rt, func(s RouterStats) bool {
		for _, b := range s.Backends {
			if !b.Healthy || b.AppliedSeq == 0 {
				return false
			}
		}
		return len(s.Backends) == len(replicas)+1
	})
	return rt
}

// routerGet runs one read through the router and returns (body, status).
func routerGet(t *testing.T, rt *Router, query string, hdr map[string]string) (string, int) {
	t.Helper()
	mux := http.NewServeMux()
	rt.Register(mux)
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(query), nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Body.String(), rec.Code
}

// waitHealth blocks until pred holds over the router's stats view.
func waitHealth(t *testing.T, rt *Router, pred func(RouterStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred(rt.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("router never reached expected health state: %+v", rt.Stats())
}

func healthyCount(s RouterStats) int {
	n := 0
	for _, b := range s.Backends {
		if b.Healthy {
			n++
		}
	}
	return n
}

// TestRouterHashStableAcrossEjection: ejecting a replica must divert
// ONLY the keys it owned (spilling them to ring successors), and
// readmitting it must restore the exact original mapping — the ring's
// membership never changes, only health does.
func TestRouterHashStableAcrossEjection(t *testing.T) {
	primary := newFakeBackend(t, "primary", 100)
	r1 := newFakeBackend(t, "r1", 100)
	r2 := newFakeBackend(t, "r2", 100)
	r3 := newFakeBackend(t, "r3", 100)
	rt := newTestRouter(t, primary, r1, r2, r3)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 4 })

	queries := make([]string, 60)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT * WHERE { ?s ?p ?o } LIMIT %d", i+1)
	}
	route := func() map[string]string {
		m := map[string]string{}
		for _, q := range queries {
			body, code := routerGet(t, rt, q, nil)
			if code != http.StatusOK {
				t.Fatalf("query %q: status %d", q, code)
			}
			m[q] = body
		}
		return m
	}
	before := route()
	owners := map[string]int{}
	for _, b := range before {
		owners[b]++
	}
	if len(owners) < 3 {
		t.Fatalf("60 queries landed on only %d replicas: %v", len(owners), owners)
	}
	if owners["primary"] > 0 {
		t.Fatalf("healthy ring should not fall through to the primary: %v", owners)
	}

	// Eject r2: its keys must move, everyone else's must not.
	r2.down.Store(true)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 3 })
	during := route()
	for q, owner := range before {
		switch {
		case owner == "r2" && during[q] == "r2":
			t.Fatalf("query %q still routed to the ejected replica", q)
		case owner != "r2" && during[q] != owner:
			t.Fatalf("query %q moved %s -> %s though its owner stayed healthy", q, owner, during[q])
		}
	}

	// Readmit: the mapping must return to exactly the original.
	r2.down.Store(false)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 4 })
	after := route()
	for q, owner := range before {
		if after[q] != owner {
			t.Fatalf("query %q: owner %s before ejection, %s after readmission", q, owner, after[q])
		}
	}
}

// TestRouterWatermarkFallthrough: a read demanding a watermark no
// replica has reached must fall through to the primary; once a replica
// catches up it takes the read back.
func TestRouterWatermarkFallthrough(t *testing.T) {
	primary := newFakeBackend(t, "primary", 50)
	r1 := newFakeBackend(t, "r1", 10)
	rt := newTestRouter(t, primary, r1)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 2 })

	const q = "SELECT * WHERE { ?s ?p ?o }"
	if body, code := routerGet(t, rt, q, map[string]string{HeaderMinVersion: "5"}); code != 200 || body != "r1" {
		t.Fatalf("satisfied watermark: got %q/%d, want r1/200", body, code)
	}
	if body, code := routerGet(t, rt, q, map[string]string{HeaderMinVersion: "30"}); code != 200 || body != "primary" {
		t.Fatalf("unsatisfied watermark: got %q/%d, want primary/200", body, code)
	}
	if rt.Stats().Fallthroughs == 0 {
		t.Fatal("fall-through counter never moved")
	}

	// Replica catches up; the health loop notices; reads return to it.
	r1.seq.Store(60)
	waitHealth(t, rt, func(s RouterStats) bool {
		for _, b := range s.Backends {
			if b.URL == r1.ts.URL && b.AppliedSeq >= 60 {
				return true
			}
		}
		return false
	})
	if body, code := routerGet(t, rt, q, map[string]string{HeaderMinVersion: "30"}); code != 200 || body != "r1" {
		t.Fatalf("caught-up watermark: got %q/%d, want r1/200", body, code)
	}

	// A garbage watermark is the client's bug: 400, not a stale read.
	if _, code := routerGet(t, rt, q, map[string]string{HeaderMinVersion: "not-a-number"}); code != http.StatusBadRequest {
		t.Fatalf("bad watermark header: status %d, want 400", code)
	}
}

// TestRouterAllBackendsLagging503: when every replica is behind the
// demanded watermark AND the primary is down, the router must refuse
// with 503 — serving a stale read would silently break read-your-writes.
func TestRouterAllBackendsLagging503(t *testing.T) {
	primary := newFakeBackend(t, "primary", 50)
	r1 := newFakeBackend(t, "r1", 10)
	rt := newTestRouter(t, primary, r1)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 2 })

	primary.down.Store(true)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 1 })
	if _, code := routerGet(t, rt, "SELECT * WHERE { ?s ?p ?o }",
		map[string]string{HeaderMinVersion: "30"}); code != http.StatusServiceUnavailable {
		t.Fatalf("all-lagging read: status %d, want 503", code)
	}
	if rt.Stats().Unavailable == 0 {
		t.Fatal("503 counter never moved")
	}
}

// TestRouterUpdatesGoToPrimary: updates (and unparseable statements)
// never touch the ring.
func TestRouterUpdatesGoToPrimary(t *testing.T) {
	primary := newFakeBackend(t, "primary", 1)
	r1 := newFakeBackend(t, "r1", 1)
	rt := newTestRouter(t, primary, r1)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 2 })

	mux := http.NewServeMux()
	rt.Register(mux)
	for _, stmt := range []string{
		`INSERT DATA { <http://ex/s> <http://ex/p> <http://ex/o> }`,
		`THIS IS NOT SPARQL AT ALL`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/sparql", newFormBody(stmt))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Body.String() != "primary" {
			t.Fatalf("statement %q landed on %q, want primary", stmt, rec.Body.String())
		}
	}
	if rt.Stats().RoutedUpdates == 0 {
		t.Fatal("update counter never moved")
	}
}

// TestRouterTenantPinning: the tenant header overrides query-text
// hashing, so one tenant's whole (distinct-query) workload lands on one
// replica.
func TestRouterTenantPinning(t *testing.T) {
	primary := newFakeBackend(t, "primary", 1)
	r1 := newFakeBackend(t, "r1", 1)
	r2 := newFakeBackend(t, "r2", 1)
	r3 := newFakeBackend(t, "r3", 1)
	rt := newTestRouter(t, primary, r1, r2, r3)
	waitHealth(t, rt, func(s RouterStats) bool { return healthyCount(s) == 4 })

	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf("SELECT * WHERE { ?s ?p ?o } LIMIT %d", i+1)
		body, code := routerGet(t, rt, q, map[string]string{HeaderTenant: "acme"})
		if code != http.StatusOK {
			t.Fatalf("tenant query: status %d", code)
		}
		seen[body] = true
	}
	if len(seen) != 1 {
		t.Fatalf("tenant acme's queries spread over %d replicas: %v", len(seen), seen)
	}
}

// newFormBody renders one statement as an update= form body.
func newFormBody(stmt string) io.Reader {
	return strings.NewReader("update=" + url.QueryEscape(stmt))
}
