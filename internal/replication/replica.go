package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/fsx"
	"repro/internal/persist"
	"repro/internal/resilience"
	"repro/internal/strabon"
)

// ReplicaOptions configures OpenReplica. Zero values select the
// documented defaults.
type ReplicaOptions struct {
	// Primary is the primary's base URL (e.g. http://db0:8080). Required.
	Primary string
	// Dir is the replica's own durable data directory. Required: it is
	// what lets a SIGKILLed replica restart from local state instead of
	// re-downloading the dataset.
	Dir string
	// SyncMode is the local WAL fsync policy (default SyncNone: the
	// primary is the durability authority, the local log is a catch-up
	// cache — anything it loses is re-shipped).
	SyncMode persist.SyncMode
	// HasSyncMode marks SyncMode as deliberately set (SyncAlways is the
	// zero value, but replicas default to SyncNone).
	HasSyncMode bool
	// CheckpointBytes / CheckpointEvery bound the local WAL exactly as
	// on a primary (defaults: persist's own).
	CheckpointBytes int64
	CheckpointEvery time.Duration
	// NoCheckpointOnClose skips the final checkpoint in Close (tests use
	// it to force WAL-replay resume paths).
	NoCheckpointOnClose bool
	// SnapshotFormat selects what the replica's own checkpoints write
	// (default persist.FormatPacked). Bootstrap is format-agnostic: the
	// snapshot downloaded from the primary is verified and recovered by
	// its file magic, so a packed-primary snapshot maps in place with
	// zero replay even under a raw-configured replica.
	SnapshotFormat string
	// PollWait is the long-poll duration requested from /tail (default
	// DefaultLongPoll).
	PollWait time.Duration
	// RetryMin/RetryMax bound the reconnect backoff after a failed or
	// torn tail stream (defaults 100ms / 5s).
	RetryMin, RetryMax time.Duration
	// Client is the HTTP client for snapshot and tail requests (default:
	// a client with no overall timeout — tail responses are long-polls).
	Client *http.Client
	// Logf receives replication diagnostics (default: discard).
	Logf func(format string, args ...any)
}

func (o *ReplicaOptions) withDefaults() (ReplicaOptions, error) {
	opts := *o
	if opts.Primary == "" {
		return opts, errors.New("replication: ReplicaOptions.Primary is required")
	}
	if opts.Dir == "" {
		return opts, errors.New("replication: ReplicaOptions.Dir is required")
	}
	if !opts.HasSyncMode {
		opts.SyncMode = persist.SyncNone
	}
	if opts.PollWait <= 0 {
		opts.PollWait = DefaultLongPoll
	}
	if opts.RetryMin <= 0 {
		opts.RetryMin = 100 * time.Millisecond
	}
	if opts.RetryMax < opts.RetryMin {
		opts.RetryMax = 5 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return opts, nil
}

// Replica tails a primary's WAL into its own store and data directory.
// The store it exposes is read-only from the application's point of
// view (the endpoint enforces 403 on updates); the only writer is the
// tail loop.
type Replica struct {
	opts ReplicaOptions
	// state bundles the manager and store so a re-bootstrap (which
	// replaces both) swaps them in one atomic publish: readers — query
	// serving, /stats, watermark polls — either see the old pair or the
	// new pair, never a torn mix, and never race the tail loop's swap.
	state atomic.Pointer[replicaState]

	cancel context.CancelFunc
	wg     sync.WaitGroup

	primarySeq    atomic.Uint64 // newest seq the primary reported
	lastContactMs atomic.Int64  // unix ms of the last successful primary response
	records       atomic.Uint64 // records applied since open
	reconnects    atomic.Uint64
	tornDrops     atomic.Uint64 // torn stream fragments discarded
	bootstrapped  atomic.Bool   // this open downloaded a snapshot
	rebootstraps  atomic.Uint64 // 410-triggered full re-bootstraps
	lastErr       atomic.Pointer[string]

	closeOnce sync.Once
	closeErr  error
}

// OpenReplica boots a replica. If dir already holds persisted state the
// replica resumes from it — recovery replays the local snapshot+WAL
// exactly as on a primary, and tailing continues from the local last
// sequence number; nothing is re-downloaded. A fresh directory is
// bootstrapped from the primary's newest snapshot (or empty, plus a
// full WAL tail, if the primary has never checkpointed).
func OpenReplica(o ReplicaOptions) (*Replica, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Replica{opts: opts}
	if err := r.open(context.Background()); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.wg.Add(1)
	go r.tailLoop(ctx)
	return r, nil
}

// open bootstraps (if needed) and recovers the local data directory.
func (r *Replica) open(ctx context.Context) error {
	has, err := persist.HasState(r.opts.Dir)
	if err != nil {
		return err
	}
	if !has {
		if err := r.bootstrap(ctx); err != nil {
			return fmt.Errorf("replication: bootstrap from %s: %w", r.opts.Primary, err)
		}
	}
	mgr, st, err := persist.Open(persist.Options{
		Dir:                 r.opts.Dir,
		SyncMode:            r.opts.SyncMode,
		CheckpointBytes:     r.opts.CheckpointBytes,
		CheckpointEvery:     r.opts.CheckpointEvery,
		SnapshotFormat:      r.opts.SnapshotFormat,
		NoCheckpointOnClose: r.opts.NoCheckpointOnClose,
		NoJournal:           true, // records arrive pre-assigned; see ApplyReplicated
		Logf:                r.opts.Logf,
	})
	if err != nil {
		return err
	}
	r.state.Store(&replicaState{mgr: mgr, st: st})
	return nil
}

// replicaState is the manager/store pair published by open().
type replicaState struct {
	mgr *persist.Manager
	st  *strabon.Store
}

// bootstrap downloads the primary's newest snapshot into the (empty)
// local directory. A 404 means the primary has never checkpointed; the
// replica then starts empty and replays the full WAL via the tail.
// Transient fetch failures retry with jittered backoff before giving
// up: bootstrap runs at process start and after a 410, both moments
// when the primary may be briefly unreachable.
func (r *Replica) bootstrap(ctx context.Context) error {
	if err := os.MkdirAll(r.opts.Dir, 0o755); err != nil {
		return err
	}
	bo := resilience.Backoff{Min: r.opts.RetryMin, Max: r.opts.RetryMax, Jitter: 0.5}
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(bo.Delay(attempt - 1)):
			}
		}
		if err = r.fetchSnapshot(ctx); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		r.opts.Logf("replication: snapshot fetch attempt %d: %v", attempt+1, err)
	}
	return err
}

// fetchSnapshot performs one snapshot download, verify included.
func (r *Replica) fetchSnapshot(ctx context.Context) error {
	if err := faults.Eval("replica/fetch-snapshot"); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.Primary+"/replication/v1/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		r.opts.Logf("replication: primary has no snapshot yet; starting empty and tailing from 0")
		return nil
	default:
		return fmt.Errorf("snapshot fetch: %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	if err != nil {
		return fmt.Errorf("snapshot fetch: bad %s header: %w", HeaderSnapshotSeq, err)
	}
	path := filepath.Join(r.opts.Dir, persist.SnapshotFileName(seq))
	if err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	}); err != nil {
		return err
	}
	// Trust nothing that crossed the network unverified: the snapshot
	// carries a whole-file CRC, check it before recovery would.
	if _, err := persist.VerifySnapshot(path); err != nil {
		os.Remove(path)
		return err
	}
	r.bootstrapped.Store(true)
	r.opts.Logf("replication: bootstrapped from snapshot seq %d (%s)", seq, filepath.Base(path))
	return nil
}

// tailLoop streams records from the primary until Close. Errors —
// connection drops, torn records, primary restarts — back off and
// reconnect from the local WAL position; a 410 (the primary pruned past
// our cursor) wipes the directory and re-bootstraps.
func (r *Replica) tailLoop(ctx context.Context) {
	defer r.wg.Done()
	// Jittered backoff: when a primary restarts under a fleet of
	// replicas, pure exponential delays would reconnect them all in
	// lockstep; the jitter spreads the stampede.
	bo := resilience.Backoff{Min: r.opts.RetryMin, Max: r.opts.RetryMax, Jitter: 0.5}
	attempt := 0
	for ctx.Err() == nil {
		applied, err := r.tailOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		switch {
		case err == nil:
			attempt = 0
			continue // long-poll pacing happens server-side
		case errors.Is(err, errRebootstrap):
			r.opts.Logf("replication: primary pruned past our cursor; re-bootstrapping")
			if rbErr := r.rebootstrap(ctx); rbErr != nil {
				r.setErr(rbErr)
				r.opts.Logf("replication: re-bootstrap failed: %v", rbErr)
			} else {
				r.rebootstraps.Add(1)
				attempt = 0
				continue
			}
		default:
			r.setErr(err)
			r.reconnects.Add(1)
			if applied > 0 {
				attempt = 0 // progress was made; retry promptly
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(bo.Delay(attempt)):
		}
		attempt++
	}
}

// errRebootstrap signals a 410 from /tail.
var errRebootstrap = errors.New("replication: tail returned 410 Gone")

// tailOnce runs one /tail request and applies every validated record,
// returning how many were applied. A torn trailing record (the primary
// died mid-send) is counted, discarded, and NOT treated as an error for
// backoff purposes beyond the reconnect itself: everything before it
// was applied, so the next request resumes exactly past the last good
// record.
func (r *Replica) tailOnce(ctx context.Context) (int, error) {
	if err := faults.Eval("replica/tail"); err != nil {
		return 0, err
	}
	mgr := r.state.Load().mgr
	from := mgr.LastSeq()
	url := fmt.Sprintf("%s/replication/v1/tail?from=%d&wait=%s", r.opts.Primary, from, r.opts.PollWait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return 0, errRebootstrap
	default:
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("tail: %s", resp.Status)
	}
	r.lastContactMs.Store(time.Now().UnixMilli())
	if ps, err := strconv.ParseUint(resp.Header.Get(HeaderPrimarySeq), 10, 64); err == nil {
		r.primarySeq.Store(ps)
	}
	applied := 0
	sc := persist.NewRecordScanner(resp.Body, from)
	for {
		seq, op, body, err := sc.Next()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			return applied, nil // clean batch end
		case errors.Is(err, persist.ErrTornRecord):
			// The stream died mid-record (SIGKILLed primary, dropped
			// connection). The fragment is discarded — nothing of it was
			// applied or logged — and the next request's from= cursor
			// re-fetches the whole record.
			r.tornDrops.Add(1)
			return applied, fmt.Errorf("replication: tail stream torn after seq %d; reconnecting", mgr.LastSeq())
		default:
			return applied, err
		}
		if err := mgr.ApplyReplicated(seq, op, body); err != nil {
			return applied, err
		}
		applied++
		r.records.Add(1)
	}
}

// rebootstrap discards the local directory and bootstraps afresh — the
// recovery path for a replica so far behind that the primary's WAL no
// longer reaches its cursor.
func (r *Replica) rebootstrap(ctx context.Context) error {
	old := r.state.Load().mgr
	if err := old.Close(); err != nil {
		r.opts.Logf("replication: closing stale manager: %v", err)
	}
	if err := os.RemoveAll(r.opts.Dir); err != nil {
		return err
	}
	return r.open(ctx)
}

func (r *Replica) setErr(err error) {
	s := err.Error()
	r.lastErr.Store(&s)
}

// Store exposes the replica's store for query serving. The caller must
// treat it as read-only. A 410-triggered re-bootstrap publishes a NEW
// store object (the old one keeps answering but freezes at its last
// watermark); long-lived embedders should re-resolve Store() when
// Stats().Rebootstraps moves, or watch the applied-seq stall via the
// router's lag view.
func (r *Replica) Store() *strabon.Store { return r.state.Load().st }

// Manager exposes the replica's persistence layer (for /stats and for
// chaining: a replica can itself serve /replication/v1 to downstreams).
func (r *Replica) Manager() *persist.Manager { return r.state.Load().mgr }

// AppliedSeq reports the newest primary-assigned sequence number whose
// mutation is visible in the replica's store.
func (r *Replica) AppliedSeq() uint64 { return r.state.Load().st.AppliedSeq() }

// ReplicaStats is the replica telemetry block for /stats.
type ReplicaStats struct {
	Primary        string `json:"primary"`
	AppliedSeq     uint64 `json:"applied_seq"`
	PrimarySeq     uint64 `json:"primary_seq"`
	Lag            uint64 `json:"lag"`
	RecordsApplied uint64 `json:"records_applied"`
	Reconnects     uint64 `json:"reconnects"`
	TornDrops      uint64 `json:"torn_drops"`
	Bootstrapped   bool   `json:"bootstrapped"`
	Rebootstraps   uint64 `json:"rebootstraps"`
	LastContactMs  int64  `json:"last_contact_unix_ms,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// Stats reports tailing telemetry.
func (r *Replica) Stats() ReplicaStats {
	s := ReplicaStats{
		Primary:        r.opts.Primary,
		AppliedSeq:     r.AppliedSeq(),
		PrimarySeq:     r.primarySeq.Load(),
		RecordsApplied: r.records.Load(),
		Reconnects:     r.reconnects.Load(),
		TornDrops:      r.tornDrops.Load(),
		Bootstrapped:   r.bootstrapped.Load(),
		Rebootstraps:   r.rebootstraps.Load(),
		LastContactMs:  r.lastContactMs.Load(),
	}
	if s.PrimarySeq > s.AppliedSeq {
		s.Lag = s.PrimarySeq - s.AppliedSeq
	}
	if e := r.lastErr.Load(); e != nil {
		s.LastError = *e
	}
	return s
}

// Close stops the tail loop and closes the local persistence layer
// (checkpointing per options, so a graceful restart boots from the
// snapshot instead of a long replay).
func (r *Replica) Close() error {
	r.closeOnce.Do(func() {
		r.cancel()
		r.wg.Wait()
		r.closeErr = r.state.Load().mgr.Close()
	})
	return r.closeErr
}
