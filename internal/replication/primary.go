// Package replication turns the single-node TELEIOS engine into a
// horizontally scalable serving tier: one writable primary ships its
// write-ahead log over HTTP to any number of read-only replicas, and a
// thin consistent-hash router spreads read queries across them.
//
// The design leans entirely on the existing persistence layer
// (internal/persist): a replica bootstraps by downloading the primary's
// newest binary snapshot, then tails the live WAL — each shipped record
// is applied to the replica's store and appended verbatim to the
// replica's own WAL, so a restarted replica resumes from its local
// snapshot+log without re-bootstrapping, exactly like a restarted
// primary. Sequence numbers are assigned once, by the primary, and mean
// the same thing everywhere; the applied-seq watermark they induce
// (strabon.Store.AppliedSeq) is what read-your-writes routing, replica
// lag reporting and result-cache keying are built on.
//
// Wire protocol (all under /replication/v1/, all GET):
//
//	/snapshot            newest binary snapshot, verbatim
//	                     (Teleios-Snapshot-Seq header; 404 before the
//	                     first checkpoint)
//	/segments            JSON: WAL segment list, last seq, snapshot seq
//	/tail?from=N&wait=D  records with seq > N in the segment-file
//	                     encoding; long-polls up to D (capped) when the
//	                     log has nothing newer, returning an empty body
//	                     on timeout (Teleios-Primary-Seq carries the
//	                     newest seq either way)
package replication

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/persist"
)

// Version headers shared by the replication protocol, the endpoint and
// the router.
const (
	// HeaderAppliedSeq carries a server's applied-seq watermark on
	// /sparql responses: for updates, the seq the write was journalled
	// under (the client's read-your-writes token); for reads, the
	// watermark the result reflects.
	HeaderAppliedSeq = "Teleios-Applied-Seq"
	// HeaderMinVersion carries a client's read-your-writes demand: the
	// response must reflect WAL records through at least this sequence
	// number, or fail with 503 rather than serve a stale read.
	HeaderMinVersion = "Teleios-Min-Version"
	// HeaderPrimarySeq reports the primary's newest WAL seq on tail
	// responses so replicas can report their own lag.
	HeaderPrimarySeq = "Teleios-Primary-Seq"
	// HeaderSnapshotSeq reports which WAL seq a shipped snapshot covers.
	HeaderSnapshotSeq = "Teleios-Snapshot-Seq"
)

const (
	// DefaultLongPoll caps how long /tail parks a caught-up replica.
	DefaultLongPoll = 25 * time.Second
	// DefaultBatchBytes caps one /tail response body, so a far-behind
	// replica catches up in bounded chunks instead of one giant reply.
	DefaultBatchBytes = 4 << 20
)

// Primary serves a persist.Manager's WAL and snapshots to replicas. It
// adds no new process: the handlers mount into the existing
// teleios-server mux. The manager is swappable (atomically) so a test —
// or a supervisor restarting the durability layer — can replace it
// without tearing down the HTTP server.
type Primary struct {
	mgr atomic.Pointer[persist.Manager]
	// LongPoll caps the ?wait= long-poll duration (default
	// DefaultLongPoll); BatchBytes caps one tail response's record bytes
	// (default DefaultBatchBytes).
	LongPoll   time.Duration
	BatchBytes int64

	tailRequests     atomic.Uint64
	recordsShipped   atomic.Uint64
	snapshotsServed  atomic.Uint64
	trimmedResponses atomic.Uint64
}

// NewPrimary wraps a manager for serving.
func NewPrimary(m *persist.Manager) *Primary {
	p := &Primary{}
	p.mgr.Store(m)
	return p
}

// SetManager swaps the served manager — used when the durability layer
// is reopened (e.g. across a simulated primary crash in tests).
func (p *Primary) SetManager(m *persist.Manager) { p.mgr.Store(m) }

// Manager returns the currently served manager.
func (p *Primary) Manager() *persist.Manager { return p.mgr.Load() }

// Register mounts the replication handlers on mux.
func (p *Primary) Register(mux *http.ServeMux) {
	mux.HandleFunc("/replication/v1/snapshot", p.handleSnapshot)
	mux.HandleFunc("/replication/v1/segments", p.handleSegments)
	mux.HandleFunc("/replication/v1/tail", p.handleTail)
}

// PrimaryStats is the shipping telemetry block for /stats.
type PrimaryStats struct {
	LastSeq          uint64 `json:"last_seq"`
	SnapshotSeq      uint64 `json:"snapshot_seq"`
	TailRequests     uint64 `json:"tail_requests"`
	RecordsShipped   uint64 `json:"records_shipped"`
	SnapshotsServed  uint64 `json:"snapshots_served"`
	TrimmedResponses uint64 `json:"trimmed_responses"`
}

// Stats reports shipping counters.
func (p *Primary) Stats() PrimaryStats {
	m := p.mgr.Load()
	s := PrimaryStats{
		TailRequests:     p.tailRequests.Load(),
		RecordsShipped:   p.recordsShipped.Load(),
		SnapshotsServed:  p.snapshotsServed.Load(),
		TrimmedResponses: p.trimmedResponses.Load(),
	}
	if m != nil {
		s.LastSeq = m.LastSeq()
		s.SnapshotSeq = m.SnapshotSeq()
	}
	return s
}

func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	m := p.mgr.Load()
	if m == nil {
		http.Error(w, "replication is not enabled (no data dir)", http.StatusServiceUnavailable)
		return
	}
	path, seq, ok := m.NewestSnapshot()
	if !ok {
		// No checkpoint yet: the replica bootstraps empty and replays
		// the WAL from seq 0 instead.
		http.Error(w, "no snapshot yet; tail from 0", http.StatusNotFound)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "snapshot vanished; retry", http.StatusServiceUnavailable)
		return
	}
	// The open fd keeps serving even if a checkpoint prunes this
	// generation mid-transfer.
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(seq, 10))
	w.Header().Set(HeaderPrimarySeq, strconv.FormatUint(m.LastSeq(), 10))
	p.snapshotsServed.Add(1)
	io.Copy(w, f)
}

func (p *Primary) handleSegments(w http.ResponseWriter, r *http.Request) {
	m := p.mgr.Load()
	if m == nil {
		http.Error(w, "replication is not enabled (no data dir)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	segs := m.Segments()
	fmt.Fprintf(w, `{"last_seq":%d,"snapshot_seq":%d,"segments":[`, m.LastSeq(), m.SnapshotSeq())
	for i, s := range segs {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, `{"first_seq":%d,"size":%d}`, s.FirstSeq, s.Size)
	}
	io.WriteString(w, "]}\n")
}

func (p *Primary) handleTail(w http.ResponseWriter, r *http.Request) {
	m := p.mgr.Load()
	if m == nil {
		http.Error(w, "replication is not enabled (no data dir)", http.StatusServiceUnavailable)
		return
	}
	p.tailRequests.Add(1)
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil && q.Get("from") != "" {
		http.Error(w, "bad 'from' parameter", http.StatusBadRequest)
		return
	}
	maxPoll := p.LongPoll
	if maxPoll <= 0 {
		maxPoll = DefaultLongPoll
	}
	wait := maxPoll
	if ws := q.Get("wait"); ws != "" {
		if d, err := time.ParseDuration(ws); err == nil && d >= 0 && d < wait {
			wait = d
		}
	}
	batch := p.BatchBytes
	if batch <= 0 {
		batch = DefaultBatchBytes
	}

	// Park until the log outgrows the cursor (or the poll expires); a
	// dropped client cancels the wait via the request context.
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	last := m.WaitSeq(ctx, from)
	w.Header().Set("Content-Type", "application/x-teleios-wal")
	w.Header().Set(HeaderPrimarySeq, strconv.FormatUint(m.LastSeq(), 10))
	if last <= from {
		w.WriteHeader(http.StatusOK) // long-poll timeout: empty batch
		return
	}

	// Stream the records. The status line must be decided before the
	// first body byte, so probe the error cases (trimmed log) by
	// delaying WriteHeader until the first record arrives.
	var buf []byte
	wrote := false
	_, err = m.ReadWAL(from, batch, func(seq uint64, op byte, body []byte) error {
		buf = persist.AppendRecord(buf[:0], seq, op, body)
		if ferr := faults.Eval("primary/tail-serve"); ferr != nil {
			if allow, ok := faults.AsTorn(ferr); ok && allow < len(buf) {
				// Ship the torn record fragment a primary dying mid-send
				// would, then cut the stream.
				if !wrote {
					wrote = true
					w.WriteHeader(http.StatusOK)
				}
				w.Write(buf[:allow])
			}
			return ferr
		}
		if !wrote {
			wrote = true
			w.WriteHeader(http.StatusOK)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		p.recordsShipped.Add(1)
		return nil
	})
	if err != nil && !wrote {
		if err == persist.ErrWALTrimmed {
			p.trimmedResponses.Add(1)
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !wrote {
		w.WriteHeader(http.StatusOK)
	}
}
