package replication

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/stsparql"
	"repro/internal/stsparql/corpus"
)

// Failpoint-driven chaos for the replication pipeline: bootstrap fetch
// failures, tail connection faults, and a primary that tears the
// record stream mid-send. Every test ends with the replica converged
// and bit-identical to the primary. Failpoints are process-global, so
// none of these run in parallel.

func armReplFaults(t *testing.T, spec string) {
	t.Helper()
	t.Cleanup(faults.Reset)
	if err := faults.EnableFromSpec(spec); err != nil {
		t.Fatalf("EnableFromSpec(%q): %v", spec, err)
	}
}

// TestBootstrapRetriesThroughFetchFaults: two injected snapshot-fetch
// failures must be absorbed by the jittered-backoff retry loop — the
// replica still comes up on the third attempt and only one real HTTP
// fetch ever reaches the primary.
func TestBootstrapRetriesThroughFetchFaults(t *testing.T) {
	tp := newTestPrimary(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:20])
	if err := tp.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	armReplFaults(t, "replica/fetch-snapshot=2*error(connection refused)->off")
	rep := newReplica(t, tp, "")
	if faults.Hits("replica/fetch-snapshot") < 3 {
		t.Fatalf("fetch-snapshot hit %d times, want >= 3 (two failures, one pass)",
			faults.Hits("replica/fetch-snapshot"))
	}
	if got := tp.snapshotFetches.Load(); got != 1 {
		t.Fatalf("%d snapshot requests reached the primary, want 1", got)
	}
	if !rep.Stats().Bootstrapped {
		t.Fatal("replica should have bootstrapped despite the injected failures")
	}
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("replica has %d triples, primary %d", got, want)
	}
}

// TestBootstrapGivesUpWhenPrimaryStaysDown: a permanently failing fetch
// exhausts the retry budget and surfaces the injected error from
// OpenReplica instead of hanging or panicking.
func TestBootstrapGivesUpWhenPrimaryStaysDown(t *testing.T) {
	tp := newTestPrimary(t)
	armReplFaults(t, "replica/fetch-snapshot=error(primary unreachable)")

	_, err := OpenReplica(ReplicaOptions{
		Primary:  tp.ts.URL,
		Dir:      t.TempDir(),
		RetryMin: 1,
		RetryMax: 2,
		Logf:     t.Logf,
	})
	if err == nil {
		t.Fatal("OpenReplica succeeded with every fetch failing")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want the injected fetch error", err)
	}
	if !strings.Contains(err.Error(), "bootstrap") {
		t.Fatalf("err = %v, want it labelled as a bootstrap failure", err)
	}
	if got := faults.Hits("replica/fetch-snapshot"); got != 4 {
		t.Fatalf("fetch-snapshot hit %d times, want the full 4-attempt budget", got)
	}
}

// TestTailFaultsReconnectAndConverge: injected tail-request failures
// force reconnects but never lose records — the replica backs off,
// retries from its local cursor, and converges bit-identically.
func TestTailFaultsReconnectAndConverge(t *testing.T) {
	tp := newTestPrimary(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:20])

	rep := newReplica(t, tp, "")
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())

	// The replica is parked in a long poll that already passed the
	// failpoint check, so arm and then wait for all three injections to
	// land on subsequent reconnect attempts before writing more.
	armReplFaults(t, "replica/tail=3*error(connection reset)->off")
	waitApplied(t, func() uint64 { return faults.Hits("replica/tail") }, 3)
	tp.st.AddAll(triples[20:])
	tp.st.Remove(triples[0])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())

	if got := rep.Stats().Reconnects; got < 3 {
		t.Fatalf("reconnects = %d, want >= 3 (one per injected failure)", got)
	}
	assertReplicaEquivalent(t, tp, rep, rng, 100)
}

// TestTornTailStreamDroppedAndResumed: the primary tears the record
// stream mid-send (process death between two writes of one record).
// The replica must apply the clean prefix, count and discard the torn
// fragment, reconnect past the last good record, and converge without
// a re-bootstrap.
func TestTornTailStreamDroppedAndResumed(t *testing.T) {
	tp := newTestPrimary(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:20])

	rep := newReplica(t, tp, "")
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	fetches := tp.snapshotFetches.Load()

	// 12 bytes is inside the record header+payload of every op in this
	// stream: the replica sees a short, CRC-less fragment.
	armReplFaults(t, "primary/tail-serve=1*torn(12)->off")
	tp.st.AddAll(triples[20:40])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())

	if got := rep.Stats().TornDrops; got < 1 {
		t.Fatalf("torn_drops = %d, want >= 1", got)
	}
	if got := tp.snapshotFetches.Load(); got != fetches {
		t.Fatalf("torn stream triggered a re-bootstrap (%d fetches, was %d)", got, fetches)
	}
	assertReplicaEquivalent(t, tp, rep, rng, 100)
}

// assertReplicaEquivalent runs n randomized corpus queries against both
// stores and requires bit-identical results (rows AND row order).
func assertReplicaEquivalent(t *testing.T, tp *testPrimary, rep *Replica, rng *rand.Rand, n int) {
	t.Helper()
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("replica has %d triples, primary %d", got, want)
	}
	peng, reng := stsparql.New(tp.st), stsparql.New(rep.Store())
	for qi := 0; qi < n; qi++ {
		query := corpus.RandQuery(rng)
		pres, perr := peng.Query(query)
		rres, rerr := reng.Query(query)
		if (perr == nil) != (rerr == nil) {
			t.Fatalf("query #%d error mismatch:\nprimary=%v\nreplica=%v\nquery:\n%s", qi, perr, rerr, query)
		}
		if perr != nil {
			continue
		}
		pr, rr := orderedRows(pres), orderedRows(rres)
		if len(pr) != len(rr) {
			t.Fatalf("query #%d row count: primary=%d replica=%d\nquery:\n%s", qi, len(pr), len(rr), query)
		}
		for i := range pr {
			if pr[i] != rr[i] {
				t.Fatalf("query #%d row %d differs:\nprimary: %s\nreplica: %s\nquery:\n%s",
					qi, i, pr[i], rr[i], query)
			}
		}
	}
}
