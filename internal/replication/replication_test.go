package replication

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// testPrimary is an in-process primary: a durable store plus the
// replication handlers on an httptest server. The mux wrapper counts
// snapshot fetches so chaos tests can prove a restarted replica did NOT
// re-bootstrap.
type testPrimary struct {
	t    *testing.T
	dir  string
	mgr  *persist.Manager
	st   *strabon.Store
	prim *Primary
	ts   *httptest.Server

	snapshotFetches atomic.Uint64
	tailResponses   atomic.Uint64
}

func newTestPrimary(t *testing.T) *testPrimary {
	t.Helper()
	tp := &testPrimary{t: t, dir: t.TempDir()}
	tp.open()
	mux := http.NewServeMux()
	tp.prim.Register(mux)
	tp.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/replication/v1/snapshot":
			tp.snapshotFetches.Add(1)
		case "/replication/v1/tail":
			tp.tailResponses.Add(1)
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		tp.ts.Close()
		tp.mgr.Close()
	})
	return tp
}

// open (re)opens the durable layer on tp.dir, pointing the Primary at
// the fresh manager. Calling it after crash() models a primary restart
// behind a long-lived listener.
func (tp *testPrimary) open() {
	tp.t.Helper()
	mgr, st, err := persist.Open(persist.Options{
		Dir:                 tp.dir,
		SyncMode:            persist.SyncNone,
		NoCheckpointOnClose: true,
	})
	if err != nil {
		tp.t.Fatal(err)
	}
	tp.mgr, tp.st = mgr, st
	if tp.prim == nil {
		tp.prim = NewPrimary(mgr)
		tp.prim.LongPoll = 250 * time.Millisecond
	} else {
		tp.prim.SetManager(mgr)
	}
}

// crash closes the durability layer without a final checkpoint — the
// nearest in-process stand-in for SIGKILL: recovery must come from the
// snapshot + WAL already on disk.
func (tp *testPrimary) crash() {
	tp.t.Helper()
	if err := tp.mgr.Close(); err != nil {
		tp.t.Fatal(err)
	}
}

// waitApplied blocks until fn (a watermark getter) reaches at least
// seq, failing the test after a generous deadline.
func waitApplied(t *testing.T, fn func() uint64, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if fn() >= seq {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("watermark stuck at %d, want >= %d", fn(), seq)
}

// orderedRows renders a result's bindings as canonical strings in
// result order — the bit-identical comparison used by the equivalence
// suites (row order included).
func orderedRows(res *stsparql.Result) []string {
	out := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%s|", k, b[k].String())
		}
		out = append(out, sb.String())
	}
	return out
}

// newReplica opens a replica of tp in its own temp dir with fast retry
// settings, cleaning it up with the test.
func newReplica(t *testing.T, tp *testPrimary, dir string) *Replica {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	rep, err := OpenReplica(ReplicaOptions{
		Primary:             tp.ts.URL,
		Dir:                 dir,
		PollWait:            250 * time.Millisecond,
		RetryMin:            5 * time.Millisecond,
		RetryMax:            100 * time.Millisecond,
		NoCheckpointOnClose: true,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}
