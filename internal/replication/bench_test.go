package replication

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/rdf"
)

// benchRecord is one shipped WAL record captured off a real primary.
type benchRecord struct {
	op   byte
	body []byte
}

// captureRecords journals n single-triple adds through a real durable
// primary and reads its WAL back — the exact bytes a tail stream would
// carry.
func captureRecords(b *testing.B, n int) []benchRecord {
	b.Helper()
	mgr, st, err := persist.Open(persist.Options{
		Dir:                 b.TempDir(),
		SyncMode:            persist.SyncNone,
		NoCheckpointOnClose: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	batch := make([]rdf.Triple, 0, 64)
	for i := 0; i < n; i++ {
		batch = append(batch, rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://bench/s%d", i)),
			rdf.IRI("http://bench/p"),
			rdf.IntegerLiteral(int64(i)),
		))
		if len(batch) == cap(batch) || i == n-1 {
			st.AddAll(batch)
			batch = batch[:0]
		}
	}
	var recs []benchRecord
	if _, err := mgr.ReadWAL(0, 1<<40, func(seq uint64, op byte, body []byte) error {
		cp := append([]byte(nil), body...)
		recs = append(recs, benchRecord{op: op, body: cp})
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return recs
}

// BenchmarkTailApply measures the replica-side apply path: shipped WAL
// records (64-triple add batches) going through ApplyReplicated into the
// store and the local WAL — the per-record cost that bounds how fast a
// replica can drain its tail. Reported per RECORD; triples/sec is
// ~64x the record rate.
func BenchmarkTailApply(b *testing.B) {
	recs := captureRecords(b, 64*256) // 256 records of 64 triples
	mgr, _, err := persist.Open(persist.Options{
		Dir:                 b.TempDir(),
		SyncMode:            persist.SyncNone,
		NoJournal:           true,
		NoCheckpointOnClose: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	b.ReportAllocs()
	b.ResetTimer()
	seq := uint64(0)
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		seq++
		if err := mgr.ApplyReplicated(seq, r.op, r.body); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*64/elapsed.Seconds(), "triples/s")
	}
}

// BenchmarkReplicaBootstrap measures a cold replica boot against a
// checkpointed primary: snapshot fetch over HTTP, atomic install,
// CRC verification, recovery open, and catching up to the primary's
// watermark. One iteration = one full bootstrap into a fresh dir.
func BenchmarkReplicaBootstrap(b *testing.B) {
	tp := newBenchPrimary(b, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := OpenReplica(ReplicaOptions{
			Primary:             tp.ts.URL,
			Dir:                 b.TempDir(),
			PollWait:            50 * time.Millisecond,
			NoCheckpointOnClose: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		want := tp.mgr.LastSeq()
		for rep.AppliedSeq() < want {
			time.Sleep(200 * time.Microsecond)
		}
		if !rep.Stats().Bootstrapped {
			b.Fatal("bootstrap bench replica did not bootstrap")
		}
		b.StopTimer()
		rep.Close()
		b.StartTimer()
	}
}

// newBenchPrimary stands up a checkpointed primary carrying n synthetic
// triples for the bootstrap bench.
func newBenchPrimary(b *testing.B, n int) *testPrimary {
	b.Helper()
	tp := &testPrimary{t: nil, dir: b.TempDir()}
	mgr, st, err := persist.Open(persist.Options{
		Dir:                 tp.dir,
		SyncMode:            persist.SyncNone,
		NoCheckpointOnClose: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	tp.mgr, tp.st = mgr, st
	tp.prim = NewPrimary(mgr)
	tp.prim.LongPoll = 100 * time.Millisecond
	mux := http.NewServeMux()
	tp.prim.Register(mux)
	tp.ts = httptest.NewServer(mux)
	b.Cleanup(func() {
		tp.ts.Close()
		tp.mgr.Close()
	})
	batch := make([]rdf.Triple, 0, 512)
	for i := 0; i < n; i++ {
		batch = append(batch, rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://bench/s%d", i)),
			rdf.IRI("http://bench/p"),
			rdf.IntegerLiteral(int64(i)),
		))
		if len(batch) == cap(batch) || i == n-1 {
			st.AddAll(batch)
			batch = batch[:0]
		}
	}
	if err := mgr.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	return tp
}
