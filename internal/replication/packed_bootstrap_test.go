package replication

import (
	"math/rand"
	"testing"

	"repro/internal/stsparql"
	"repro/internal/stsparql/corpus"
)

// TestReplicaBootstrapsPackedWithZeroReplay: with a packed-format
// primary (the default), a fresh replica's bootstrap is fetch + verify
// + mmap — the downloaded snapshot IS the replica's working store, so
// recovery replays nothing and the store serves queries in place.
// Tail catch-up past the snapshot then materialises as usual.
func TestReplicaBootstrapsPackedWithZeroReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp := newTestPrimary(t)
	tp.st.AddAll(triples)
	if err := tp.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rep := newReplica(t, tp, "")
	if !rep.Stats().Bootstrapped {
		t.Fatal("replica should have bootstrapped from the snapshot")
	}
	stats := rep.Manager().Stats()
	if stats.ReplayedRecords != 0 {
		t.Fatalf("bootstrap replayed %d WAL records, want 0 (snapshot covers everything)", stats.ReplayedRecords)
	}
	if stats.StoreMode != "mapped" {
		t.Fatalf("bootstrapped store mode %q, want mapped (packed snapshot served in place)", stats.StoreMode)
	}
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("replica has %d triples, primary %d", got, want)
	}

	// The mapped store must answer real queries without materialising.
	eng := stsparql.New(rep.Store())
	res, err := eng.Query(`SELECT ?s ?o WHERE { ?s <http://example.org/hasConfidence> ?o } LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if mode := rep.Manager().Stats().StoreMode; mode != "mapped" {
		t.Fatalf("read-only query materialised the store (mode %q)", mode)
	}

	// Live tail catch-up is a mutation: it materialises the mapped view
	// and the replica keeps tracking the primary.
	tp.st.AddAll(corpus.Triples(rng)[:50])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("after tail catch-up replica has %d triples, primary %d", got, want)
	}
	if mode := rep.Manager().Stats().StoreMode; mode != "heap" {
		t.Fatalf("post-mutation store mode %q, want heap", mode)
	}
}
