package replication

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
)

// TestReplicationSoakRace is the -race soak: concurrent journalled
// writers and checkpoints on the primary while two replicas tail and
// serve. It asserts the replication invariants end to end:
//
//   - each replica's applied-seq watermark is MONOTONIC (a regression
//     would let a client's read-your-writes token "succeed" against a
//     state that later vanishes);
//   - no stale read below a requested watermark: once a replica reports
//     applied-seq >= w, every triple journalled at or before w is
//     visible in its store;
//   - both replicas converge to the primary's exact triple count and
//     final watermark once writers stop.
func TestReplicationSoakRace(t *testing.T) {
	tp := newTestPrimary(t)
	repA := newReplica(t, tp, "")
	repB := newReplica(t, tp, "")
	replicas := []*Replica{repA, repB}

	// Watermark monitors: sample each replica's applied seq as fast as
	// possible and fail on any regression.
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	var regressions atomic.Uint64
	for _, rep := range replicas {
		monWG.Add(1)
		go func(rep *Replica) {
			defer monWG.Done()
			var prev uint64
			for {
				select {
				case <-stopMon:
					return
				default:
				}
				now := rep.AppliedSeq()
				if now < prev {
					regressions.Add(1)
					return
				}
				prev = now
				time.Sleep(100 * time.Microsecond)
			}
		}(rep)
	}

	// Checkpoint hammer: concurrent snapshots on the primary while it
	// both accepts writes and ships its WAL.
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			case <-time.After(5 * time.Millisecond):
				if err := tp.mgr.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()

	// Writers: journalled batches plus interleaved removes. Each writer
	// records (triple, watermark-after-write) pairs for the staleness
	// check below.
	type ack struct {
		triple rdf.Triple
		seq    uint64
	}
	const writers, batches = 4, 40
	ackCh := make(chan ack, writers*batches)
	var wWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for i := 0; i < batches; i++ {
				batch := make([]rdf.Triple, 0, 3)
				for k := 0; k < 3; k++ {
					batch = append(batch, rdf.NewTriple(
						rdf.IRI(fmt.Sprintf("http://ex/w%d-b%d-%d", w, i, k)),
						rdf.IRI("http://ex/p"),
						rdf.IntegerLiteral(int64(i)),
					))
				}
				tp.st.AddAll(batch)
				// The store watermark AFTER the write is this write's
				// read-your-writes token.
				ackCh <- ack{triple: batch[0], seq: tp.st.AppliedSeq()}
				if i%7 == 0 {
					tp.st.Remove(batch[2])
				}
			}
		}(w)
	}
	wWG.Wait()
	close(ackCh)
	close(stopCkpt)
	ckptWG.Wait()

	// Staleness check: for every acked write, once a replica's watermark
	// reaches the ack's seq the triple must be visible. Dict/Cardinality
	// are read-locked, so probing races harmlessly with the tail loop.
	contains := func(rep *Replica, tr rdf.Triple) bool {
		for _, got := range rep.Store().Triples() {
			if got == tr {
				return true
			}
		}
		return false
	}
	final := tp.mgr.LastSeq()
	for _, rep := range replicas {
		waitApplied(t, rep.AppliedSeq, final)
	}
	for a := range ackCh {
		for ri, rep := range replicas {
			// Watermark already >= a.seq (we waited for `final` above), so
			// visibility must hold NOW — no waiting, no excuses.
			if rep.AppliedSeq() < a.seq {
				t.Fatalf("replica %d watermark %d below acked %d after convergence", ri, rep.AppliedSeq(), a.seq)
			}
			if !contains(rep, a.triple) {
				t.Fatalf("replica %d at watermark %d is missing triple %v acked at seq %d — stale read",
					ri, rep.AppliedSeq(), a.triple, a.seq)
			}
		}
	}

	close(stopMon)
	monWG.Wait()
	if regressions.Load() != 0 {
		t.Fatal("replica applied-seq watermark regressed")
	}
	for ri, rep := range replicas {
		if got, want := rep.Store().Len(), tp.st.Len(); got != want {
			t.Fatalf("replica %d has %d triples, primary %d", ri, got, want)
		}
		s := rep.Stats()
		if s.AppliedSeq != final || s.Lag != 0 {
			t.Fatalf("replica %d stats: applied=%d lag=%d, want applied=%d lag=0", ri, s.AppliedSeq, s.Lag, final)
		}
	}
}
