package replication

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stsparql/corpus"
)

// TestReplicaCrashResumesFromLocalState: a replica killed mid-replay
// must restart from its OWN snapshot + WAL — tailing resumes from the
// local cursor, and the primary's snapshot endpoint is NOT hit again.
func TestReplicaCrashResumesFromLocalState(t *testing.T) {
	tp := newTestPrimary(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:20])
	if err := tp.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rep := newReplica(t, tp, dir)
	tp.st.AddAll(triples[20:40])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	fetchesBeforeKill := tp.snapshotFetches.Load()
	if fetchesBeforeKill != 1 {
		t.Fatalf("first boot should fetch the snapshot exactly once, got %d", fetchesBeforeKill)
	}

	// "SIGKILL": stop the tailer and close the local WAL with no final
	// checkpoint, leaving exactly the on-disk state a crash would.
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes continue while the replica is down.
	tp.st.AddAll(triples[40:])

	rep2 := newReplica(t, tp, dir)
	waitApplied(t, rep2.AppliedSeq, tp.mgr.LastSeq())
	if got := tp.snapshotFetches.Load(); got != fetchesBeforeKill {
		t.Fatalf("restarted replica re-bootstrapped: %d snapshot fetches, want %d",
			got, fetchesBeforeKill)
	}
	if rep2.Stats().Bootstrapped {
		t.Fatal("restart must recover locally, not bootstrap")
	}
	if got, want := rep2.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("after resume replica has %d triples, primary %d", got, want)
	}
}

// tamperProxy forwards to a backend but, while armed, truncates the
// first non-empty tail response partway through its body and drops the
// connection — the wire shape of a primary dying mid-send.
type tamperProxy struct {
	backend string
	armed   atomic.Bool
	cuts    atomic.Uint64
}

func (p *tamperProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get(p.backend + r.URL.RequestURI())
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	body, _ := io.ReadAll(resp.Body)
	if p.armed.Load() && strings.HasSuffix(r.URL.Path, "/tail") && len(body) > 16 {
		p.armed.Store(false)
		p.cuts.Add(1)
		w.Header().Del("Content-Length")
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // slam the connection mid-record
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// TestPrimaryDiesMidTailStream: a tail stream cut mid-record must be
// dropped at the torn fragment and re-fetched cleanly on reconnect — no
// gap, no double-apply, and the replica converges to the primary's
// exact state. The primary is then crash-restarted behind the same URL
// and the replica keeps tailing.
func TestPrimaryDiesMidTailStream(t *testing.T) {
	tp := newTestPrimary(t)
	proxy := &tamperProxy{backend: tp.ts.URL}
	front := httptest.NewServer(proxy)
	defer front.Close()

	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:10])

	rep, err := OpenReplica(ReplicaOptions{
		Primary:             front.URL,
		Dir:                 t.TempDir(),
		PollWait:            100 * time.Millisecond,
		RetryMin:            2 * time.Millisecond,
		RetryMax:            50 * time.Millisecond,
		NoCheckpointOnClose: true,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())

	// Arm the tamper and push a batch big enough that the cut lands
	// inside a record.
	proxy.armed.Store(true)
	tp.st.AddAll(triples[10:40])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	if proxy.cuts.Load() == 0 {
		t.Fatal("tamper proxy never cut a stream; the test proved nothing")
	}
	if rep.Stats().TornDrops == 0 {
		t.Fatal("replica never saw a torn record despite the cut stream")
	}
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("after torn stream replica has %d triples, primary %d", got, want)
	}

	// Crash-restart the primary (no final checkpoint) behind the same
	// listener; the replica's next poll must pick up post-restart writes.
	tp.crash()
	tp.open()
	tp.st.AddAll(triples[40:])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("after primary restart replica has %d triples, primary %d", got, want)
	}
}

// TestReplicaRebootstrapsWhenWALTrimmed: a replica whose cursor falls
// behind the primary's pruned WAL horizon gets 410 Gone and must wipe
// its directory and re-bootstrap from the newest snapshot rather than
// serve a gapped history.
func TestReplicaRebootstrapsWhenWALTrimmed(t *testing.T) {
	tp := newTestPrimary(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:10])

	dir := t.TempDir()
	rep := newReplica(t, tp, dir)
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// While the replica is down, the primary writes more and checkpoints:
	// the WAL the replica's cursor points into is pruned away.
	tp.st.AddAll(triples[10:30])
	if err := tp.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tp.st.AddAll(triples[30:])

	rep2 := newReplica(t, tp, dir)
	waitApplied(t, rep2.AppliedSeq, tp.mgr.LastSeq())
	if rep2.Stats().Rebootstraps == 0 && !rep2.Stats().Bootstrapped {
		t.Fatal("trimmed WAL should have forced a re-bootstrap")
	}
	if got, want := rep2.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("after re-bootstrap replica has %d triples, primary %d", got, want)
	}
}
