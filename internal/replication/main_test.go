package replication

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain verifies no test leaves goroutines behind — tail loops,
// router health loops and long-poll handlers must all unwind on Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
