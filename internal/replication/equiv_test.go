package replication

import (
	"math/rand"
	"testing"

	"repro/internal/stsparql"
	"repro/internal/stsparql/corpus"
)

// TestPrimaryReplicaEquivalence is the replication gate: the shared
// 400-query randomized corpus must return BIT-IDENTICAL results — same
// rows, same row order — from the primary's store and a caught-up
// replica's store, at every -max-query-parallelism level. The replica
// bootstraps from a mid-load snapshot and tails the rest over HTTP, so
// both the snapshot-restore and WAL-replay halves of its state are
// under test.
func TestPrimaryReplicaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp := newTestPrimary(t)

	// First half journalled, then checkpointed: the replica's bootstrap
	// snapshot covers it. Second half ships through the live tail.
	half := len(triples) / 2
	tp.st.AddAll(triples[:half])
	if err := tp.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := newReplica(t, tp, "")
	tp.st.AddAll(triples[half:])
	// A couple of removes so the tail carries more than one op type.
	tp.st.Remove(triples[0])
	tp.st.Remove(triples[half])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())

	if !rep.Stats().Bootstrapped {
		t.Fatal("replica should have bootstrapped from the snapshot")
	}
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("replica has %d triples, primary %d", got, want)
	}

	queries := make([]string, 400)
	for i := range queries {
		queries[i] = corpus.RandQuery(rng)
	}
	for _, workers := range []int{1, 2, 4} {
		peng := stsparql.New(tp.st)
		peng.MaxParallelism = workers
		reng := stsparql.New(rep.Store())
		reng.MaxParallelism = workers
		for qi, query := range queries {
			pres, perr := peng.Query(query)
			rres, rerr := reng.Query(query)
			if (perr == nil) != (rerr == nil) {
				t.Fatalf("workers=%d query #%d error mismatch:\nprimary=%v\nreplica=%v\nquery:\n%s",
					workers, qi, perr, rerr, query)
			}
			if perr != nil {
				continue
			}
			pr, rr := orderedRows(pres), orderedRows(rres)
			if len(pr) != len(rr) {
				t.Fatalf("workers=%d query #%d row count: primary=%d replica=%d\nquery:\n%s",
					workers, qi, len(pr), len(rr), query)
			}
			for i := range pr {
				if pr[i] != rr[i] {
					t.Fatalf("workers=%d query #%d row %d differs:\nprimary: %s\nreplica: %s\nquery:\n%s",
						workers, qi, i, pr[i], rr[i], query)
				}
			}
		}
	}
}

// TestReplicaBootstrapFromEmptyPrimary: before the first checkpoint the
// primary 404s /snapshot; the replica must start empty and replay the
// entire history from the WAL tail alone.
func TestReplicaBootstrapFromEmptyPrimary(t *testing.T) {
	tp := newTestPrimary(t)
	rng := rand.New(rand.NewSource(corpus.Seed))
	triples := corpus.Triples(rng)
	tp.st.AddAll(triples[:10])

	rep := newReplica(t, tp, "")
	if rep.Stats().Bootstrapped {
		t.Fatal("no snapshot existed; replica must not claim a bootstrap")
	}
	tp.st.AddAll(triples[10:])
	waitApplied(t, rep.AppliedSeq, tp.mgr.LastSeq())
	if got, want := rep.Store().Len(), tp.st.Len(); got != want {
		t.Fatalf("replica has %d triples, primary %d", got, want)
	}
}
