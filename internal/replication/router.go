package replication

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/stsparql"
)

// HeaderTenant pins all of one tenant's queries to one replica
// regardless of query text, keeping their working set hot in a single
// result cache. When absent the query text itself is the hash key, so
// identical queries land on the same replica and hit its cache.
const HeaderTenant = "Teleios-Tenant"

// defaultVnodes is the virtual-node count per backend on the hash ring.
// 64 vnodes keeps the load split within a few percent of even for small
// clusters while the ring stays tiny (hundreds of points).
const defaultVnodes = 64

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Primary is the writable backend's base URL. Required. All updates,
	// unparseable queries and watermark fall-throughs go here.
	Primary string
	// Replicas are the read backends' base URLs (the primary may appear
	// here too, to take a share of reads).
	Replicas []string
	// Vnodes per backend on the consistent-hash ring (default 64).
	Vnodes int
	// HealthEvery is the health/lag poll interval (default 1s).
	HealthEvery time.Duration
	// FailAfter ejects a replica after this many consecutive failed
	// health checks (default 2); one success readmits it.
	FailAfter int
	// BreakerOpenFor holds an ejected backend out for at least this
	// long even if its health checks recover sooner — damping for
	// backends that flap. 0 (the default) readmits on the first
	// successful check, the historical behavior.
	BreakerOpenFor time.Duration
	// Client is used for health checks (proxying uses its Transport;
	// default http.DefaultTransport).
	Client *http.Client
	// Logf receives routing diagnostics (default: discard).
	Logf func(format string, args ...any)
}

// backend is one read target on the ring.
type backend struct {
	name string // base URL, the stable ring identity
	url  *url.URL
	// proxy is reused across requests (connection pooling lives in the
	// transport).
	proxy *httputil.ReverseProxy

	// brk is the backend's circuit breaker, driven by the health loop:
	// FailAfter consecutive failed checks trip it (ejecting the backend
	// from routing), successful checks are the half-open probes that
	// readmit it. Routing admits only a Closed breaker — while the
	// backend is down the state oscillates open/half-open as each
	// probe fails, and none of those states serve traffic.
	brk        resilience.Breaker
	appliedSeq atomic.Uint64
	requests   atomic.Uint64
	errors     atomic.Uint64
}

// ok reports whether routing may use this backend.
func (b *backend) ok() bool { return b.brk.State() == resilience.Closed }

// Router proxies /sparql across a primary and a set of replicas.
//
// Reads hash onto a consistent ring of all *configured* replicas —
// membership never changes at runtime, only health does — so when a
// replica is ejected its keys spill to the next ring owner and return
// to the exact same home on readmission. Updates and queries that fail
// to parse go to the primary. A Teleios-Min-Version header routes to a
// backend whose applied-seq watermark has reached that value, falling
// through to the primary (which is by definition current) when no
// replica has caught up.
type Router struct {
	opts     RouterOptions
	primary  *backend
	replicas []*backend
	ring     []ringPoint // sorted by hash
	start    time.Time

	routedReads    atomic.Uint64
	routedUpdates  atomic.Uint64
	fallthroughs   atomic.Uint64 // watermark or health fall-through to primary
	retries        atomic.Uint64 // candidate failed, tried the next one
	unavailable    atomic.Uint64 // 503s issued
	healthStopOnce sync.Once
	healthStop     chan struct{}
	healthDone     chan struct{}
}

type ringPoint struct {
	hash uint64
	b    *backend
}

// NewRouter builds the ring and starts the health loop.
func NewRouter(o RouterOptions) (*Router, error) {
	if o.Primary == "" {
		return nil, fmt.Errorf("replication: RouterOptions.Primary is required")
	}
	if o.Vnodes <= 0 {
		o.Vnodes = defaultVnodes
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	rt := &Router{
		opts:       o,
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
		start:      time.Now(),
	}
	var err error
	if rt.primary, err = newBackend(o.Primary, o.Client); err != nil {
		return nil, err
	}
	rt.primary.brk.FailAfter = o.FailAfter
	rt.primary.brk.OpenFor = o.BreakerOpenFor
	seen := map[string]bool{}
	for _, raw := range o.Replicas {
		if raw == "" || seen[raw] {
			continue
		}
		seen[raw] = true
		b, err := newBackend(raw, o.Client)
		if err != nil {
			return nil, err
		}
		b.brk.FailAfter = o.FailAfter
		b.brk.OpenFor = o.BreakerOpenFor
		rt.replicas = append(rt.replicas, b)
		for v := 0; v < o.Vnodes; v++ {
			rt.ring = append(rt.ring, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", b.name, v)), b: b})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].hash < rt.ring[j].hash })
	go rt.healthLoop()
	return rt, nil
}

func newBackend(raw string, client *http.Client) (*backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("replication: bad backend URL %q: %w", raw, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("replication: backend URL %q needs scheme and host", raw)
	}
	b := &backend{name: raw, url: u}
	b.proxy = httputil.NewSingleHostReverseProxy(u)
	if client.Transport != nil {
		b.proxy.Transport = client.Transport
	}
	// Swallow the default panic-ish logging; errors surface through the
	// retry path's ErrorHandler set per request.
	// The breaker starts Closed: optimistic until the first check.
	return b, nil
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return mix64(h.Sum64())
}

// mix64 is the 64-bit avalanche finalizer from MurmurHash3. FNV-1a
// alone is unusable for ring points: vnode keys differ only in a short
// trailing counter, and FNV's last-byte step leaves such hashes spaced
// by exact multiples of the FNV prime — the entire ring collapses into
// one tiny arc and every query key maps to the same first owner. The
// finalizer spreads those clustered hashes uniformly over 2^64.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Register mounts the router's handlers on mux.
func (rt *Router) Register(mux *http.ServeMux) {
	mux.HandleFunc("/sparql", rt.handleSparql)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/health", rt.handleHealth)
}

// Close stops the health loop.
func (rt *Router) Close() {
	rt.healthStopOnce.Do(func() {
		close(rt.healthStop)
		<-rt.healthDone
	})
}

// healthLoop polls every backend's /stats for liveness and applied-seq.
func (rt *Router) healthLoop() {
	defer close(rt.healthDone)
	t := time.NewTicker(rt.opts.HealthEvery)
	defer t.Stop()
	rt.checkAll() // first pass immediately, not after one interval
	for {
		select {
		case <-rt.healthStop:
			return
		case <-t.C:
			rt.checkAll()
		}
	}
}

func (rt *Router) checkAll() {
	var wg sync.WaitGroup
	for _, b := range append([]*backend{rt.primary}, rt.replicas...) {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.checkOne(b)
		}(b)
	}
	wg.Wait()
}

// statsProbe is the slice of a backend's /stats the router cares about.
type statsProbe struct {
	Store struct {
		AppliedSeq uint64 `json:"applied_seq"`
	} `json:"store"`
}

func (rt *Router) checkOne(b *backend) {
	resp, err := rt.opts.Client.Get(b.name + "/stats")
	ok := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		if ok {
			var probe statsProbe
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&probe) == nil {
				b.appliedSeq.Store(probe.Store.AppliedSeq)
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	before := b.brk.State()
	if ok {
		b.brk.Success()
		if before != resilience.Closed && b.brk.State() == resilience.Closed {
			rt.opts.Logf("replication: router readmitting %s (breaker closed)", b.name)
		}
		return
	}
	trips := b.brk.Trips()
	b.brk.Failure()
	if b.brk.Trips() != trips {
		rt.opts.Logf("replication: router ejecting %s after %d failed checks (breaker open; %v)",
			b.name, rt.opts.FailAfter, err)
	}
}

// routeKey picks the hash key: the tenant header when present (pinning
// a tenant's whole workload to one replica), else the query text.
func routeKey(r *http.Request, query string) string {
	if t := r.Header.Get(HeaderTenant); t != "" {
		return "tenant:" + t
	}
	return "query:" + query
}

// owners walks the ring from the key's position and returns the
// distinct healthy backends in preference order. Ring membership is
// static, so ejection only diverts keys while the owner is out.
func (rt *Router) owners(key string, minSeq uint64) []*backend {
	if len(rt.ring) == 0 {
		return nil
	}
	h := hashKey(key)
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	if i == len(rt.ring) {
		i = 0
	}
	var out []*backend
	seen := map[*backend]bool{}
	for n := 0; n < len(rt.ring) && len(out) < len(rt.replicas); n++ {
		b := rt.ring[(i+n)%len(rt.ring)].b
		if seen[b] {
			continue
		}
		seen[b] = true
		if !b.ok() {
			continue
		}
		if minSeq > 0 && b.appliedSeq.Load() < minSeq {
			continue
		}
		out = append(out, b)
	}
	return out
}

// extractQuery pulls the SPARQL text out of a request without consuming
// the body (the body is restored for proxying).
func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		return r.URL.Query().Get("query"), nil
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
		if err != nil {
			return "", err
		}
		r.Body.Close()
		r.Body = io.NopCloser(strings.NewReader(string(body)))
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
			vals, err := url.ParseQuery(string(body))
			if err != nil {
				return "", err
			}
			if q := vals.Get("query"); q != "" {
				return q, nil
			}
			return vals.Get("update"), nil
		}
		// application/sparql-query or raw body
		return string(body), nil
	default:
		return "", nil
	}
}

// isUpdate reports whether the query mutates the store. Parse errors
// count as updates: the primary is the only backend guaranteed to give
// the same error the client would see without a router in between.
func isUpdate(query string) bool {
	q, err := stsparql.ParseQuery(query)
	if err != nil {
		return true
	}
	switch q.Form {
	case stsparql.FormInsertData, stsparql.FormDeleteData, stsparql.FormModify:
		return true
	}
	return false
}

func (rt *Router) handleSparql(w http.ResponseWriter, r *http.Request) {
	query, err := extractQuery(r)
	if err != nil {
		http.Error(w, "reading request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if isUpdate(query) {
		rt.routedUpdates.Add(1)
		rt.proxyTo(rt.primary, w, r, nil)
		return
	}
	rt.routedReads.Add(1)

	var minSeq uint64
	if mv := r.Header.Get(HeaderMinVersion); mv != "" {
		v, err := strconv.ParseUint(mv, 10, 64)
		if err != nil {
			http.Error(w, "bad "+HeaderMinVersion+" header", http.StatusBadRequest)
			return
		}
		minSeq = v
	}

	candidates := rt.owners(routeKey(r, query), minSeq)
	if len(candidates) == 0 {
		// No replica qualifies (all ejected, or all behind the client's
		// watermark): the primary serves the read itself — it is always
		// at its own watermark. Only an unhealthy primary turns this
		// into a 503.
		rt.fallthroughs.Add(1)
		if !rt.primary.ok() {
			rt.unavailable.Add(1)
			http.Error(w, "no backend can satisfy this read", http.StatusServiceUnavailable)
			return
		}
		rt.proxyTo(rt.primary, w, r, nil)
		return
	}

	// Body was already buffered by extractQuery for POSTs, so retrying
	// the next candidate on transport error is safe.
	body, _ := io.ReadAll(r.Body)
	for i, b := range candidates {
		if i > 0 {
			rt.retries.Add(1)
		}
		r.Body = io.NopCloser(strings.NewReader(string(body)))
		if rt.proxyTo(b, w, r, body) {
			return
		}
	}
	// Every candidate failed at the transport level; last resort is the
	// primary, mirroring the empty-candidate path.
	rt.fallthroughs.Add(1)
	if rt.primary.ok() {
		r.Body = io.NopCloser(strings.NewReader(string(body)))
		if rt.proxyTo(rt.primary, w, r, body) {
			return
		}
	}
	rt.unavailable.Add(1)
	http.Error(w, "no backend can satisfy this read", http.StatusServiceUnavailable)
}

// proxyTo forwards the request to b. It returns false only when the
// transport failed before any response byte reached the client, i.e.
// when retrying another backend is still safe.
func (rt *Router) proxyTo(b *backend, w http.ResponseWriter, r *http.Request, bufferedBody []byte) bool {
	b.requests.Add(1)
	failed := false
	pw := &proxyWriter{ResponseWriter: w}
	proxy := *b.proxy // shallow copy so ErrorHandler is per-request
	proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		failed = true
		b.errors.Add(1)
		rt.opts.Logf("replication: router: %s: %v", b.name, err)
	}
	proxy.ServeHTTP(pw, r)
	if failed && !pw.wroteHeader {
		return false // safe to retry elsewhere
	}
	if failed {
		// Headers already went out; the client sees a truncated
		// response. Nothing to retry.
		return true
	}
	return true
}

// proxyWriter tracks whether any response byte was committed, which
// gates retrying a failed proxy attempt on another backend.
type proxyWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (p *proxyWriter) WriteHeader(code int) {
	p.wroteHeader = true
	p.ResponseWriter.WriteHeader(code)
}

func (p *proxyWriter) Write(b []byte) (int, error) {
	p.wroteHeader = true
	return p.ResponseWriter.Write(b)
}

// RouterBackendStats is one backend's row in the router's /stats.
// Healthy is shorthand for Breaker == "closed"; Breaker/BreakerTrips
// expose the circuit state machine itself so operators (and
// scripts/replicatest.sh) can assert ejection happened via the breaker
// rather than inferring it.
type RouterBackendStats struct {
	URL          string `json:"url"`
	Role         string `json:"role"`
	Healthy      bool   `json:"healthy"`
	Breaker      string `json:"breaker"`
	BreakerTrips uint64 `json:"breaker_trips"`
	AppliedSeq   uint64 `json:"applied_seq"`
	Lag          uint64 `json:"lag"`
	Requests     uint64 `json:"requests"`
	Errors       uint64 `json:"errors"`
}

// RouterStats is the router's /stats document.
type RouterStats struct {
	UptimeSec     int64                `json:"uptime_sec"`
	RoutedReads   uint64               `json:"routed_reads"`
	RoutedUpdates uint64               `json:"routed_updates"`
	Fallthroughs  uint64               `json:"fallthroughs"`
	Retries       uint64               `json:"retries"`
	Unavailable   uint64               `json:"unavailable_503s"`
	Backends      []RouterBackendStats `json:"backends"`
}

// Stats snapshots the router's counters and backend health. Lag is
// relative to the highest applied-seq any backend reports (normally the
// primary's): it converges to 0 on every replica once writes stop.
func (rt *Router) Stats() RouterStats {
	s := RouterStats{
		UptimeSec:     int64(time.Since(rt.start).Seconds()),
		RoutedReads:   rt.routedReads.Load(),
		RoutedUpdates: rt.routedUpdates.Load(),
		Fallthroughs:  rt.fallthroughs.Load(),
		Retries:       rt.retries.Load(),
		Unavailable:   rt.unavailable.Load(),
	}
	all := append([]*backend{rt.primary}, rt.replicas...)
	var top uint64
	for _, b := range all {
		if v := b.appliedSeq.Load(); v > top {
			top = v
		}
	}
	for i, b := range all {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		row := RouterBackendStats{
			URL:          b.name,
			Role:         role,
			Healthy:      b.ok(),
			Breaker:      b.brk.State().String(),
			BreakerTrips: b.brk.Trips(),
			AppliedSeq:   b.appliedSeq.Load(),
			Requests:     b.requests.Load(),
			Errors:       b.errors.Load(),
		}
		if top > row.AppliedSeq {
			row.Lag = top - row.AppliedSeq
		}
		s.Backends = append(s.Backends, row)
	}
	return s
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rt.Stats())
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	healthyReplicas := 0
	for _, b := range rt.replicas {
		if b.ok() {
			healthyReplicas++
		}
	}
	if rt.primary.ok() || healthyReplicas > 0 {
		fmt.Fprintf(w, "ok: primary_healthy=%v replicas_healthy=%d/%d\n",
			rt.primary.ok(), healthyReplicas, len(rt.replicas))
		return
	}
	http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
}
