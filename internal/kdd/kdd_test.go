package kdd

import (
	"testing"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/ontology"
	"repro/internal/raster"
	"repro/internal/scene"
	"repro/internal/strdf"
)

func TestHotspotClassifier(t *testing.T) {
	c := DefaultHotspotClassifier()
	ir39 := array.MustNew("a", array.Dim{Name: "y", Size: 1}, array.Dim{Name: "x", Size: 4})
	ir108 := array.MustNew("b", array.Dim{Name: "y", Size: 1}, array.Dim{Name: "x", Size: 4})
	// Cell 0: cold. Cell 1: hot but low contrast. Cell 2: hot and high
	// contrast (fire). Cell 3: warm contrast but below absolute.
	copy(ir39.Data, []float64{300, 330, 335, 315})
	copy(ir108.Data, []float64{299, 328, 310, 300})
	mask, err := c.Classify(ir39, ir108)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 0}
	for i := range want {
		if mask.Data[i] != want[i] {
			t.Fatalf("mask = %v", mask.Data)
		}
	}
	// Confidence monotone in both margins and bounded.
	weak := c.Confidence(319, 310)
	strong := c.Confidence(350, 310)
	if weak >= strong {
		t.Fatalf("confidence not monotone: %g >= %g", weak, strong)
	}
	if weak < 0.5 || strong >= 1 {
		t.Fatalf("confidence bounds: %g %g", weak, strong)
	}
}

func TestClassifierShapeMismatch(t *testing.T) {
	c := DefaultHotspotClassifier()
	a := array.MustNew("a", array.Dim{Name: "x", Size: 2})
	b := array.MustNew("b", array.Dim{Name: "x", Size: 3})
	if _, err := c.Classify(a, b); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestKNN(t *testing.T) {
	m := NewKNN(3)
	if _, _, err := m.Classify([]float64{1}); err == nil {
		t.Fatal("empty model should error")
	}
	m.Train(
		Example{Features: []float64{0, 0}, Concept: "cold"},
		Example{Features: []float64{0, 1}, Concept: "cold"},
		Example{Features: []float64{10, 10}, Concept: "hot"},
		Example{Features: []float64{10, 11}, Concept: "hot"},
		Example{Features: []float64{11, 10}, Concept: "hot"},
	)
	if m.Len() != 5 {
		t.Fatal("train count")
	}
	concept, conf, err := m.Classify([]float64{10.5, 10.5})
	if err != nil {
		t.Fatal(err)
	}
	if concept != "hot" || conf != 1 {
		t.Fatalf("classify = %s %g", concept, conf)
	}
	concept, conf, err = m.Classify([]float64{0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if concept != "cold" {
		t.Fatalf("classify = %s", concept)
	}
	if conf < 0.6 {
		t.Fatalf("conf = %g", conf)
	}
	// k larger than examples.
	big := NewKNN(100)
	big.Train(Example{Features: []float64{0}, Concept: "only"})
	c2, _, err := big.Classify([]float64{5})
	if err != nil || c2 != "only" {
		t.Fatal("k > n")
	}
}

func TestKNNDeterministicTieBreak(t *testing.T) {
	m := NewKNN(2)
	m.Train(
		Example{Features: []float64{0}, Concept: "b-concept"},
		Example{Features: []float64{2}, Concept: "a-concept"},
	)
	// Equidistant: tie broken by IRI order, deterministically.
	c1, _, _ := m.Classify([]float64{1})
	c2, _, _ := m.Classify([]float64{1})
	if c1 != c2 || c1 != "a-concept" {
		t.Fatalf("tie break = %s, %s", c1, c2)
	}
}

func TestAnnotationTriples(t *testing.T) {
	a := Annotation{
		Product:    "http://ex/product1",
		Concept:    ontology.LandCover + "Forest",
		Confidence: 0.8,
		Region:     geo.Rect(23, 38, 24, 39),
	}
	triples := a.Triples(7)
	if len(triples) != 4 {
		t.Fatalf("triples = %d", len(triples))
	}
	if triples[0].S.Value != "http://ex/product1" || triples[0].P.Value != PropAnnotated {
		t.Fatalf("link triple = %v", triples[0])
	}
	// Geometry literal decodes.
	var sawRegion bool
	for _, tr := range triples {
		if tr.P.Value == PropRegion {
			if _, err := strdf.ParseSpatial(tr.O); err != nil {
				t.Fatal(err)
			}
			sawRegion = true
		}
	}
	if !sawRegion {
		t.Fatal("region missing")
	}
}

func TestAnnotatePatchesOnScene(t *testing.T) {
	f := raster.Generate(raster.GenOptions{Width: 64, Height: 64, Steps: 4})[3]
	img := f.Bands[raster.BandIR39]
	model := TrainLandCoverModel()
	anns, err := AnnotatePatches("http://ex/p1", img, f.GeoRef, 8, model, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
	// Sea patches (bottom-left corner of the region is sea) classify Sea.
	counts := map[string]int{}
	for _, a := range anns {
		counts[a.Concept]++
		if a.Confidence < 0.5 {
			t.Fatalf("confidence %g below threshold", a.Confidence)
		}
		if a.Region.IsEmpty() {
			t.Fatal("empty region")
		}
	}
	if counts[ontology.LandCover+"Sea"] == 0 {
		t.Fatalf("no sea annotations: %v", counts)
	}
	if counts[ontology.LandCover+"Vegetation"] == 0 {
		t.Fatalf("no vegetation annotations: %v", counts)
	}
	// Hotspot patches appear (PineFire burns from step 0).
	if counts[ontology.Monitoring+"Hotspot"] == 0 {
		t.Fatalf("no hotspot annotations: %v", counts)
	}
	// Sea annotations sit over the sea.
	land := scene.Landmass()
	seaHits, seaTotal := 0, 0
	for _, a := range anns {
		if a.Concept == ontology.LandCover+"Sea" {
			seaTotal++
			if !geo.Within(geo.Centroid(a.Region), land) {
				seaHits++
			}
		}
	}
	if seaHits*2 < seaTotal {
		t.Fatalf("sea annotations mostly on land: %d/%d off-land", seaHits, seaTotal)
	}
}

func TestEuclideanDimensionMismatch(t *testing.T) {
	d1 := euclidean([]float64{0, 0}, []float64{0, 0, 5})
	d2 := euclidean([]float64{0, 0}, []float64{0, 0})
	if d1 <= d2 {
		t.Fatal("extra dimensions should penalise distance")
	}
}
