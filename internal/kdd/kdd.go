// Package kdd implements the knowledge-discovery tier of the paper
// (Datcu et al., deliverable 3.1): classifiers that map image content to
// domain-ontology concepts, and semantic annotation that publishes those
// concepts as stRDF linked data, closing the "semantic gap" between
// archive metadata and user concepts like "forest fire".
package kdd

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/ontology"
	"repro/internal/parallel"
	"repro/internal/raster"
	"repro/internal/rdf"
	"repro/internal/strdf"
)

// HotspotClassifier is the contextual threshold classifier of the NOA
// fire product: a pixel is a hotspot when the 3.9um brightness temperature
// is high in absolute terms AND elevated against the 10.8um background.
// This is the classic bi-spectral (Dozier-style) test.
type HotspotClassifier struct {
	// AbsoluteK is the minimum IR 3.9um brightness temperature (kelvin).
	AbsoluteK float64
	// DeltaK is the minimum (T3.9 - T10.8) contrast.
	DeltaK float64
}

// DefaultHotspotClassifier returns thresholds tuned to the synthetic
// SEVIRI scene (day-time fire test).
func DefaultHotspotClassifier() HotspotClassifier {
	return HotspotClassifier{AbsoluteK: 318, DeltaK: 8}
}

// Classify produces a binary hotspot mask from the two thermal bands.
func (c HotspotClassifier) Classify(ir39, ir108 *array.Array) (*array.Array, error) {
	return array.Combine(ir39, ir108, func(t39, t108 float64) float64 {
		if t39 >= c.AbsoluteK && t39-t108 >= c.DeltaK {
			return 1
		}
		return 0
	})
}

// Confidence scores a detected pixel in [0.5, 1) by how far it clears the
// thresholds.
func (c HotspotClassifier) Confidence(t39, t108 float64) float64 {
	excess := math.Min((t39-c.AbsoluteK)/20, 1) + math.Min((t39-t108-c.DeltaK)/20, 1)
	conf := 0.5 + 0.25*excess
	if conf > 0.99 {
		conf = 0.99
	}
	if conf < 0.5 {
		conf = 0.5
	}
	return conf
}

// Example is one labelled feature vector for the kNN classifier.
type Example struct {
	Features []float64
	// Concept is the ontology class IRI the example is labelled with.
	Concept string
}

// KNNClassifier maps patch feature vectors to ontology concepts by
// majority vote among the k nearest labelled examples — the image
// information mining component that annotates patches with land-cover
// concepts.
type KNNClassifier struct {
	K        int
	examples []Example
}

// NewKNN returns a classifier with the given k (3 when k <= 0).
func NewKNN(k int) *KNNClassifier {
	if k <= 0 {
		k = 3
	}
	return &KNNClassifier{K: k}
}

// Train adds labelled examples.
func (c *KNNClassifier) Train(examples ...Example) {
	c.examples = append(c.examples, examples...)
}

// Len reports the number of training examples.
func (c *KNNClassifier) Len() int { return len(c.examples) }

// Classify returns the majority concept among the k nearest examples and
// the fraction of votes it received. It runs a bounded k-best selection
// over the examples — no full sort, no per-call allocation — so the
// patch annotation fan-out can call it from every worker.
func (c *KNNClassifier) Classify(features []float64) (string, float64, error) {
	if len(c.examples) == 0 {
		return "", 0, fmt.Errorf("kdd: classifier has no training examples")
	}
	k := c.K
	if k > len(c.examples) {
		k = len(c.examples)
	}
	if k <= 0 {
		// A directly-constructed classifier can carry K <= 0; the legacy
		// sort-based selection degraded to zero votes ("", NaN).
		return "", math.NaN(), nil
	}
	const maxStack = 16
	var distBuf [maxStack]float64
	var conceptBuf [maxStack]string
	dist, concept := distBuf[:0], conceptBuf[:0]
	if k > maxStack {
		dist = make([]float64, 0, k)
		concept = make([]string, 0, k)
	}
	// Insertion keeps the list ascending; ties keep the earlier example
	// (stable in training order).
	for _, ex := range c.examples {
		d := euclidean(features, ex.Features)
		if len(dist) == k && d >= dist[k-1] {
			continue
		}
		pos := len(dist)
		if len(dist) < k {
			dist = append(dist, 0)
			concept = append(concept, "")
		} else {
			pos = k - 1
		}
		for pos > 0 && dist[pos-1] > d {
			dist[pos], concept[pos] = dist[pos-1], concept[pos-1]
			pos--
		}
		dist[pos], concept[pos] = d, ex.Concept
	}
	// Majority vote; ties resolve to the lexicographically smallest
	// concept IRI, the legacy tie-break.
	best, bestN := "", 0
	for i, ci := range concept {
		seen := false
		for _, cj := range concept[:i] {
			if cj == ci {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		n := 0
		for _, cj := range concept {
			if cj == ci {
				n++
			}
		}
		if n > bestN || n == bestN && ci < best {
			best, bestN = ci, n
		}
	}
	return best, float64(bestN) / float64(k), nil
}

func euclidean(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	// Dimension mismatch penalises distance.
	sum += float64(len(a)-n) + float64(len(b)-n)
	return math.Sqrt(sum)
}

// Annotation vocabulary.
const (
	PropAnnotated  = ontology.NOA + "hasAnnotation"
	PropConcept    = ontology.NOA + "annotationConcept"
	PropConfidence = ontology.NOA + "annotationConfidence"
	PropRegion     = ontology.NOA + "annotationRegion"
)

// Annotation links an image region to an ontology concept.
type Annotation struct {
	// Product is the annotated product IRI.
	Product string
	// Concept is the ontology class IRI.
	Concept string
	// Confidence in [0, 1].
	Confidence float64
	// Region is the annotated region (WGS84).
	Region geo.Geometry
}

// Triples serialises the annotation as stRDF (one blank-node-free
// annotation resource per region).
func (a Annotation) Triples(seq int) []rdf.Triple {
	buf := make([]byte, 0, len(ontology.NOA)+40)
	buf = append(buf, ontology.NOA...)
	buf = append(buf, "annotation/"...)
	buf = strconv.AppendUint(buf, hashName(a.Product), 16)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, int64(seq), 10)
	ann := rdf.IRI(string(buf))
	return []rdf.Triple{
		rdf.NewTriple(rdf.IRI(a.Product), rdf.IRI(PropAnnotated), ann),
		rdf.NewTriple(ann, rdf.IRI(PropConcept), rdf.IRI(a.Concept)),
		rdf.NewTriple(ann, rdf.IRI(PropConfidence), rdf.DoubleLiteral(a.Confidence)),
		rdf.NewTriple(ann, rdf.IRI(PropRegion), strdf.Literal(a.Region, geo.SRIDWGS84)),
	}
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// AnnotatePatches classifies every patch of a band with the kNN model and
// emits annotations whose regions are the patch ground footprints. Patches
// with vote share below minConfidence are skipped. Classification fans
// out over the shared tile worker pool (the model is read-only), with
// output order preserved.
func AnnotatePatches(productIRI string, img *array.Array, gr raster.GeoRef, patchSize int,
	model *KNNClassifier, minConfidence float64) ([]Annotation, error) {
	patches, err := ingest.ExtractPatches(img, patchSize)
	if err != nil {
		return nil, err
	}
	results := make([]Annotation, len(patches))
	keep := make([]bool, len(patches))
	errs := make([]error, len(patches))
	parallel.Range(len(patches), func(lo, hi int) {
		var feat [13]float64
		for i := lo; i < hi; i++ {
			p := patches[i]
			concept, conf, err := model.Classify(p.AppendVector(feat[:0]))
			if err != nil {
				errs[i] = err
				continue
			}
			if conf < minConfidence {
				continue
			}
			y0 := p.Row * patchSize
			x0 := p.Col * patchSize
			tl := gr.PixelEnvelope(y0, x0)
			br := gr.PixelEnvelope(y0+patchSize-1, x0+patchSize-1)
			results[i] = Annotation{
				Product:    productIRI,
				Concept:    concept,
				Confidence: conf,
				Region:     tl.Extend(br).ToPolygon(),
			}
			keep[i] = true
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]Annotation, 0, len(patches))
	for i, k := range keep {
		if k {
			out = append(out, results[i])
		}
	}
	return out, nil
}

// TrainLandCoverModel builds a small training set from the synthetic
// scene's physics: sea patches are cold and flat, land warm, fires very
// hot with strong texture. The features follow ingest.PatchFeatures.Vector
// ordering (mean, stddev, min, max, texture, 8 histogram bins).
func TrainLandCoverModel() *KNNClassifier {
	m := NewKNN(3)
	lc := func(s string) string { return ontology.LandCover + s }
	mon := func(s string) string { return ontology.Monitoring + s }
	vec := func(mean, std, min, max, tex float64, peak int) []float64 {
		v := []float64{mean, std, min, max, tex}
		h := make([]float64, 8)
		h[peak] = 1
		return append(v, h...)
	}
	m.Train(
		Example{Features: vec(290, 1.0, 288, 292, 0.5, 0), Concept: lc("Sea")},
		Example{Features: vec(291, 1.2, 289, 293, 0.6, 0), Concept: lc("Sea")},
		Example{Features: vec(302, 2.5, 298, 306, 1.5, 3), Concept: lc("Vegetation")},
		Example{Features: vec(305, 2.0, 300, 309, 1.2, 4), Concept: lc("Vegetation")},
		Example{Features: vec(330, 12, 305, 360, 8, 7), Concept: mon("Hotspot")},
		Example{Features: vec(345, 15, 310, 380, 10, 7), Concept: mon("Hotspot")},
	)
	return m
}
