// Package resilience provides the small, reusable primitives a server
// needs to stay up under partial failure and overload: jittered
// exponential backoff, token-bucket rate limiting (global and
// per-client), and a circuit breaker with half-open probing. All
// three take injectable clocks/randomness so their behavior is
// deterministic under test.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes jittered exponential retry delays. The zero value
// is unusable; fill in Min and Max. Delay(0) is the first retry.
type Backoff struct {
	Min    time.Duration // first delay (required)
	Max    time.Duration // cap (required)
	Factor float64       // growth per attempt; default 2
	// Jitter in [0,1] randomizes each delay downward: the returned
	// delay is uniform in [d*(1-Jitter), d]. 0 disables jitter.
	Jitter float64
	// Rand returns a float64 in [0,1); defaults to a shared
	// locked source. Inject for deterministic tests.
	Rand func() float64
}

var (
	randMu     sync.Mutex
	sharedRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func lockedFloat() float64 {
	randMu.Lock()
	defer randMu.Unlock()
	return sharedRand.Float64()
}

// Delay returns the delay before retry number attempt (0-based),
// exponentially grown from Min, capped at Max, with jitter applied.
func (b Backoff) Delay(attempt int) time.Duration {
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(b.Min)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		rnd := b.Rand
		if rnd == nil {
			rnd = lockedFloat
		}
		d *= 1 - b.Jitter*rnd()
	}
	if d < float64(b.Min) && b.Jitter == 0 {
		d = float64(b.Min)
	}
	return time.Duration(d)
}
