package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: traffic is refused until the cooldown elapses.
	Open
	// HalfOpen: cooldown elapsed; probe traffic is admitted and the
	// next outcome decides between Closed and Open.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker with half-open
// probing. FailAfter consecutive Failure calls open the circuit; after
// OpenFor it admits probes, and ProbeSuccesses consecutive Success
// calls close it again. A Failure during probing re-opens immediately.
//
// With OpenFor == 0 the cooldown is instantaneous: the breaker still
// opens (so observers see the state and can shed), but the very next
// probe is admitted — matching health checkers that want a single
// success to readmit a backend.
type Breaker struct {
	FailAfter      int           // consecutive failures to open; default 3
	OpenFor        time.Duration // cooldown before probing; 0 = probe immediately
	ProbeSuccesses int           // successes needed to close; default 1
	Clock          func() time.Time

	mu        sync.Mutex
	state     BreakerState
	fails     int
	successes int
	openedAt  time.Time
	trips     uint64
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) failAfter() int {
	if b.FailAfter <= 0 {
		return 3
	}
	return b.FailAfter
}

func (b *Breaker) probeSuccesses() int {
	if b.ProbeSuccesses <= 0 {
		return 1
	}
	return b.ProbeSuccesses
}

// cooled reports whether the open cooldown has elapsed. Callers hold b.mu.
func (b *Breaker) cooled() bool {
	return !b.now().Before(b.openedAt.Add(b.OpenFor))
}

// Allow reports whether a request may proceed, transitioning
// Open→HalfOpen once the cooldown elapses.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		if b.cooled() {
			b.state = HalfOpen
			b.successes = 0
			return true
		}
		return false
	}
}

// Success records a successful call. In half-open (or open past its
// cooldown) it counts toward closing; while still cooling down it is
// ignored — the breaker insists on its pause.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails = 0
	case Open:
		if !b.cooled() {
			return
		}
		b.state = HalfOpen
		b.successes = 0
		fallthrough
	case HalfOpen:
		b.successes++
		if b.successes >= b.probeSuccesses() {
			b.state = Closed
			b.fails = 0
			b.successes = 0
		}
	}
}

// Failure records a failed call. FailAfter consecutive failures open
// the circuit; any failure while probing re-opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.failAfter() {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	case Open:
		// Already open; the cooldown keeps running from the original trip.
	}
}

func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.fails = 0
	b.successes = 0
	b.trips++
}

// State reports the effective state: an open breaker whose cooldown
// has elapsed reads as half-open (probes would be admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cooled() {
		return HalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
