package resilience

import (
	"container/list"
	"math"
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter: capacity Burst,
// refilled at Rate tokens per second. Take either consumes a token or
// reports how long the caller should wait before retrying.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket builds a full bucket. rate must be > 0; burst < 1 is
// raised to 1 so a full bucket always admits at least one request.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	tb := &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
	tb.last = tb.now()
	return tb
}

// SetClock injects a clock for deterministic tests. Call before use.
func (tb *TokenBucket) SetClock(now func() time.Time) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.now = now
	tb.last = now()
}

// Take consumes one token if available. When the bucket is empty it
// returns ok=false and the duration until a token will be available.
func (tb *TokenBucket) Take() (ok bool, retryAfter time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.takeLocked()
}

func (tb *TokenBucket) takeLocked() (bool, time.Duration) {
	now := tb.now()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = math.Min(tb.burst, tb.tokens+dt*tb.rate)
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	need := (1 - tb.tokens) / tb.rate
	return false, time.Duration(need * float64(time.Second))
}

type keyedBucket struct {
	key    string
	tokens float64
	last   time.Time
	elem   *list.Element
}

// PerKey maintains an independent token bucket per client key with
// LRU eviction so a spoofed key space cannot grow memory without
// bound. The zero value is unusable; use NewPerKey.
type PerKey struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	maxKeys int
	buckets map[string]*keyedBucket
	lru     *list.List // front = most recent
	now     func() time.Time
	evicted uint64
}

// NewPerKey builds a per-key limiter: each key gets a bucket of
// capacity burst refilled at rate tokens/second; at most maxKeys
// buckets are retained (least recently used evicted first).
func NewPerKey(rate float64, burst, maxKeys int) *PerKey {
	if burst < 1 {
		burst = 1
	}
	if maxKeys < 1 {
		maxKeys = 1
	}
	return &PerKey{
		rate:    rate,
		burst:   float64(burst),
		maxKeys: maxKeys,
		buckets: make(map[string]*keyedBucket),
		lru:     list.New(),
		now:     time.Now,
	}
}

// SetClock injects a clock for deterministic tests. Call before use.
func (p *PerKey) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
}

// Take consumes one token from key's bucket, creating it (full) on
// first sight. Returns ok=false plus a retry hint when exhausted.
func (p *PerKey) Take(key string) (ok bool, retryAfter time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	b := p.buckets[key]
	if b == nil {
		b = &keyedBucket{key: key, tokens: p.burst, last: now}
		p.buckets[key] = b
		b.elem = p.lru.PushFront(b)
		if len(p.buckets) > p.maxKeys {
			oldest := p.lru.Back().Value.(*keyedBucket)
			p.lru.Remove(oldest.elem)
			delete(p.buckets, oldest.key)
			p.evicted++
		}
	} else {
		p.lru.MoveToFront(b.elem)
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(p.burst, b.tokens+dt*p.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / p.rate
	return false, time.Duration(need * float64(time.Second))
}

// Len reports how many client buckets are currently retained.
func (p *PerKey) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buckets)
}

// Evicted reports how many buckets the LRU bound has discarded.
func (p *PerKey) Evicted() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evicted
}
