package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock shared by the deterministic
// limiter and breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: 5 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
		5 * time.Second, 5 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// A huge attempt number must not overflow past Max.
	if got := b.Delay(200); got != 5*time.Second {
		t.Errorf("Delay(200) = %v, want cap", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// Rand pinned at extremes: 0 → no reduction, just-under-1 → full
	// Jitter reduction.
	b := Backoff{Min: time.Second, Max: time.Minute, Jitter: 0.5, Rand: func() float64 { return 0 }}
	if got := b.Delay(1); got != 2*time.Second {
		t.Errorf("jitter(rand=0) Delay(1) = %v, want 2s", got)
	}
	b.Rand = func() float64 { return 0.999999 }
	got := b.Delay(1)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("jitter(rand→1) Delay(1) = %v, want ≈1s", got)
	}
	// Default shared rand must stay within [d*(1-J), d].
	b.Rand = nil
	for i := 0; i < 100; i++ {
		d := b.Delay(2)
		if d < 2*time.Second || d > 4*time.Second {
			t.Fatalf("jittered Delay(2) = %v outside [2s, 4s]", d)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(2, 3) // 2 tokens/s, burst 3
	tb.SetClock(clk.Now)
	for i := 0; i < 3; i++ {
		if ok, _ := tb.Take(); !ok {
			t.Fatalf("take %d refused within burst", i)
		}
	}
	ok, retry := tb.Take()
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms at 2 tokens/s", retry)
	}
	clk.Advance(500 * time.Millisecond)
	if ok, _ := tb.Take(); !ok {
		t.Fatal("refill after retryAfter did not admit")
	}
	// Idle refill caps at burst.
	clk.Advance(time.Hour)
	admitted := 0
	for {
		ok, _ := tb.Take()
		if !ok {
			break
		}
		admitted++
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after idle, want burst=3", admitted)
	}
}

func TestPerKeyIsolationAndEviction(t *testing.T) {
	clk := newFakeClock()
	p := NewPerKey(1, 2, 2) // burst 2 per key, at most 2 keys
	p.SetClock(clk.Now)
	for i := 0; i < 2; i++ {
		if ok, _ := p.Take("alice"); !ok {
			t.Fatalf("alice take %d refused", i)
		}
	}
	if ok, _ := p.Take("alice"); ok {
		t.Fatal("alice admitted beyond burst")
	}
	// bob is unaffected by alice's exhaustion.
	if ok, _ := p.Take("bob"); !ok {
		t.Fatal("bob refused despite fresh bucket")
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	// Third key evicts the LRU (alice: bob was touched last).
	if ok, _ := p.Take("carol"); !ok {
		t.Fatal("carol refused")
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", p.Len())
	}
	if p.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", p.Evicted())
	}
	// alice was evicted, so she returns with a full bucket.
	if ok, _ := p.Take("alice"); !ok {
		t.Fatal("re-admitted alice should have a fresh bucket")
	}
	// Refill is per key and clock-driven.
	clk.Advance(time.Second)
	if ok, _ := p.Take("alice"); !ok {
		t.Fatal("alice refused after refill")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{FailAfter: 3, OpenFor: 10 * time.Second, Clock: clk.Now}
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Failure()
	b.Failure()
	b.Success() // resets the consecutive count
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("2 consecutive failures should not trip FailAfter=3")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open after 3 consecutive failures", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic during cooldown")
	}
	// Success during cooldown is ignored — the pause is mandatory.
	b.Success()
	if b.State() != Open || b.Allow() {
		t.Fatal("success during cooldown must not close or admit")
	}
	clk.Advance(10 * time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused a probe")
	}
	b.Failure() // probe failed → re-open, fresh cooldown
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe must re-open")
	}
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe window refused")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerProbeSuccesses(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{FailAfter: 1, OpenFor: time.Second, ProbeSuccesses: 2, Clock: clk.Now}
	b.Failure()
	clk.Advance(time.Second)
	b.Success()
	if b.State() == Closed {
		t.Fatal("closed after 1 probe success, want 2")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after 2 probe successes", b.State())
	}
}

func TestBreakerZeroCooldownReadmitsOnOneSuccess(t *testing.T) {
	// The router's health checker uses OpenFor=0: the breaker opens
	// (observable, sheds routing) but a single probe success readmits.
	b := &Breaker{FailAfter: 2}
	b.Failure()
	b.Failure()
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open (open with elapsed cooldown)", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
	if !b.Allow() {
		t.Fatal("zero-cooldown breaker refused probe")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after one success", b.State())
	}
}
