package sciql

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/column"
)

// TestConcurrentQueryVsIngest drives concurrent SELECTs against the
// engine while an ingest goroutine registers new arrays and tables, with
// parallel tile kernels churning the shared worker pool the whole time.
// Run under -race this pins the locking contract: catalog mutation is
// guarded by the engine lock, queries only touch already-registered
// objects, and the worker pool is safe to share across goroutines.
func TestConcurrentQueryVsIngest(t *testing.T) {
	eng := NewEngine()
	eng.MustExec(`CREATE ARRAY base (y INT DIMENSION [64], x INT DIMENSION [64], v DOUBLE)`)
	eng.MustExec(`UPDATE base SET v = y * 64 + x`)
	eng.MustExec(`CREATE TABLE obs (id BIGINT, temp DOUBLE)`)
	tbl, err := eng.Table("obs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tbl.AppendRow(int64(i), 280+float64(i%50)); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 30
	var wg sync.WaitGroup

	// Ingest: register fresh arrays and immediately update them (each
	// goroutine owns the arrays it writes; the catalog map itself is the
	// shared state under test).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("ing%d", i)
			img := array.MustNew("v", array.Dim{Name: "y", Size: 48}, array.Dim{Name: "x", Size: 48})
			if err := eng.RegisterArray(name, img.Dims, map[string]*array.Array{"v": img}); err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.Exec(fmt.Sprintf(`UPDATE %s SET v = y + x WHERE x < 32`, name)); err != nil {
				t.Error(err)
				return
			}
			eng.RegisterTable(column.NewTable(fmt.Sprintf("t%d", i), column.Field{Name: "k", Typ: column.Int64}))
		}
	}()

	// Queries: read only the pre-registered objects.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := eng.Exec(`SELECT count(*) AS n, max(v) AS m FROM base WHERE v > 100 AND y BETWEEN 1 AND 62`)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Table.Col("n").Int(0) == 0 {
					t.Error("no rows")
					return
				}
				if _, err := eng.Exec(`SELECT id FROM obs WHERE temp > 300 LIMIT 5`); err != nil {
					t.Error(err)
					return
				}
			}
		}(q)
	}

	// Kernel churn: tile-parallel operations on private arrays share the
	// worker pool with the query/ingest goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		img := array.MustNew("k", array.Dim{Name: "y", Size: 256}, array.Dim{Name: "x", Size: 256})
		for i := range img.Data {
			img.Data[i] = float64(i % 97)
		}
		for i := 0; i < rounds/3; i++ {
			if _, err := img.Tile(16, 16, "avg"); err != nil {
				t.Error(err)
				return
			}
			mask := img.Threshold(90)
			if _, err := mask.ConnectedComponents(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
}
