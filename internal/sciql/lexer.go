// Package sciql implements the SciQL query language of the paper (Zhang,
// Kersten, Ivanova, Nes — IDEAS 2011): SQL with multidimensional arrays as
// first-class citizens, executed over the columnar kernel
// (internal/column) and the array engine (internal/array).
//
// The supported subset is the one the TELEIOS demo exercises:
//
//	CREATE TABLE t (c TYPE, ...)
//	CREATE ARRAY a (x INT DIMENSION [N], y INT DIMENSION [M], v DOUBLE)
//	CREATE ARRAY a AS SELECT ...
//	INSERT INTO t VALUES (...), (...)
//	SELECT exprs FROM src [alias] [, src [alias]] [WHERE cond]
//	       [GROUP BY exprs] [ORDER BY exprs] [LIMIT n]
//	UPDATE a SET v = expr [WHERE cond]
//	DROP TABLE t / DROP ARRAY a
//
// with arithmetic, comparisons, AND/OR/NOT, CASE WHEN, BETWEEN, scalar
// functions (abs, sqrt, log, exp, power, floor, ceil, greatest, least) and
// aggregates (count, sum, avg, min, max). Array cells appear as rows with
// their dimension attributes, so dimension predicates express cropping and
// GROUP BY over dimension arithmetic expresses tiling, exactly as SciQL's
// structured grouping does.
package sciql

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words, upper-cased
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"CREATE": true, "TABLE": true, "ARRAY": true, "DIMENSION": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true,
	"DROP":   true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"BETWEEN": true, "IN": true, "IS": true, "NULL": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "LIKE": true,
	"TRUE": true, "FALSE": true, "DEFAULT": true, "DISTINCT": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "DOUBLE": true,
	"FLOAT": true, "VARCHAR": true, "STRING": true, "BOOLEAN": true, "BOOL": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.tokens = append(l.tokens, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.tokens = append(l.tokens, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if op := l.lexOperator(); op == "" {
				return nil, fmt.Errorf("sciql: unexpected character %q at offset %d", string(c), l.pos)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && !seenExp {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && !seenExp && l.pos > start {
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return fmt.Errorf("sciql: unterminated string at offset %d", start)
		}
		c := l.src[l.pos]
		if c == '\'' {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
	return nil
}

func (l *lexer) lexOperator() string {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return two
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '<', '>', '=', '[', ']', ':', ';', '.':
		l.tokens = append(l.tokens, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return string(c)
	}
	return ""
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
