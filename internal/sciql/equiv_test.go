package sciql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/column"
	"repro/internal/parallel"
)

// The legacy-vs-vectorized equivalence suite: randomized SELECT, UPDATE
// and DELETE statements over identical catalogs must behave identically
// (same error-or-success, same rows in the same order, same affected
// counts and post-update state) under the tuple-at-a-time interpreter
// and the columnar kernel executor, at every worker-pool parallelism
// level. Statements the vectorized compiler rejects fall back to the
// legacy interpreter, so any divergence here is a genuine kernel bug.

// equivSetup are the statements that build the shared catalog.
func equivSetup(rng *rand.Rand) []string {
	stmts := []string{
		`CREATE TABLE obs (id BIGINT, sensor VARCHAR, temp DOUBLE, flag BOOLEAN)`,
		`CREATE TABLE sites (k BIGINT, name VARCHAR, score DOUBLE)`,
		`CREATE ARRAY img (y INT DIMENSION [12], x INT DIMENSION [10], v DOUBLE)`,
		`CREATE ARRAY img2 (y INT DIMENSION [12], x INT DIMENSION [10], v DOUBLE)`,
		`CREATE ARRAY cube (z INT DIMENSION [4], y INT DIMENSION [6], x INT DIMENSION [5], v DOUBLE)`,
	}
	var rows []string
	for i := 0; i < 120; i++ {
		id := "NULL"
		if rng.Intn(8) != 0 {
			id = fmt.Sprint(rng.Intn(40))
		}
		sensor := fmt.Sprintf("'s%d'", rng.Intn(5))
		if rng.Intn(9) == 0 {
			sensor = "NULL"
		}
		temp := fmt.Sprintf("%.2f", 270+rng.Float64()*80)
		if rng.Intn(7) == 0 {
			temp = "NULL"
		}
		flag := "true"
		if rng.Intn(2) == 0 {
			flag = "false"
		}
		if rng.Intn(10) == 0 {
			flag = "NULL"
		}
		rows = append(rows, fmt.Sprintf("(%s, %s, %s, %s)", id, sensor, temp, flag))
	}
	stmts = append(stmts, "INSERT INTO obs VALUES "+strings.Join(rows, ", "))
	rows = rows[:0]
	for i := 0; i < 40; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'n%d', %.3f)", rng.Intn(40), rng.Intn(8), rng.Float64()))
	}
	stmts = append(stmts, "INSERT INTO sites VALUES "+strings.Join(rows, ", "))
	stmts = append(stmts,
		`UPDATE img SET v = y * 10 + x`,
		`UPDATE img SET v = NULL WHERE (y + x) % 7 = 3`,
		`UPDATE img2 SET v = (y - 5) * (x - 4)`,
		`UPDATE cube SET v = z * 100 + y * 10 + x`,
		`UPDATE cube SET v = NULL WHERE x = 2 AND y > 3`,
	)
	return stmts
}

func equivPair(t *testing.T, rng *rand.Rand) (legacy, vec *Engine) {
	t.Helper()
	legacy = NewEngine()
	legacy.DisableVectorized = true
	vec = NewEngine()
	vec.DisableVectorized = false
	for _, st := range equivSetup(rng) {
		legacy.MustExec(st)
		vec.MustExec(st)
	}
	return legacy, vec
}

// canonTable renders a result table as one line per row, in result
// order (the vectorized executor reproduces legacy row order exactly,
// so the comparison is order-sensitive on purpose).
func canonTable(tbl *column.Table) []string {
	if tbl == nil {
		return nil
	}
	out := make([]string, 0, tbl.NumRows())
	for i := 0; i < tbl.NumRows(); i++ {
		var sb strings.Builder
		for j, c := range tbl.Cols {
			fmt.Fprintf(&sb, "%s=%v|", tbl.Fields[j].Name, c.Value(i))
		}
		out = append(out, sb.String())
	}
	return out
}

type equivGen struct {
	rng *rand.Rand
}

func (g *equivGen) pick(opts ...string) string { return opts[g.rng.Intn(len(opts))] }

func (g *equivGen) numLit() string {
	if g.rng.Intn(3) == 0 {
		return fmt.Sprintf("%.2f", g.rng.Float64()*100)
	}
	return fmt.Sprint(g.rng.Intn(100))
}

// scalarExpr builds a random numeric expression over the given columns.
func (g *equivGen) scalarExpr(cols []string, depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return g.pick(cols...)
		}
		return g.numLit()
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.scalarExpr(cols, depth-1), g.scalarExpr(cols, depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.scalarExpr(cols, depth-1), g.scalarExpr(cols, depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.scalarExpr(cols, depth-1), g.scalarExpr(cols, depth-1))
	case 3:
		// Division (may legitimately fail on both engines).
		return fmt.Sprintf("(%s / %s)", g.scalarExpr(cols, depth-1), g.scalarExpr(cols, depth-1))
	case 4:
		return fmt.Sprintf("abs(%s - %s)", g.scalarExpr(cols, depth-1), g.numLit())
	case 5:
		return fmt.Sprintf("least(%s, %s)", g.scalarExpr(cols, depth-1), g.scalarExpr(cols, depth-1))
	default:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END",
			g.boolExpr(cols, 1), g.scalarExpr(cols, depth-1), g.scalarExpr(cols, depth-1))
	}
}

func (g *equivGen) boolExpr(cols []string, depth int) string {
	if depth <= 0 || g.rng.Intn(2) == 0 {
		c := g.pick(cols...)
		switch g.rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%s %s %s", c, g.pick("<", "<=", ">", ">=", "=", "<>"), g.numLit())
		case 1:
			return fmt.Sprintf("%s BETWEEN %s AND %s", c, fmt.Sprint(g.rng.Intn(50)), fmt.Sprint(50+g.rng.Intn(60)))
		case 2:
			return fmt.Sprintf("%s IS %sNULL", c, g.pick("", "NOT "))
		case 3:
			return fmt.Sprintf("%s IN (%s, %s, %s)", c, g.numLit(), g.numLit(), g.pick(g.numLit(), "NULL"))
		case 4:
			return fmt.Sprintf("%s %s %s", c, g.pick("<", ">", "="), g.pick(cols...))
		default:
			return fmt.Sprintf("%s NOT BETWEEN %s AND %s", c, g.numLit(), g.numLit())
		}
	}
	op := g.pick("AND", "OR")
	l := g.boolExpr(cols, depth-1)
	r := g.boolExpr(cols, depth-1)
	if g.rng.Intn(5) == 0 {
		return fmt.Sprintf("NOT (%s %s %s)", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

// selectStmt generates one random SELECT.
func (g *equivGen) selectStmt() string {
	type source struct {
		from string
		cols []string
		dims []string
		join string
	}
	sources := []source{
		{from: "obs", cols: []string{"id", "temp"}},
		{from: "sites", cols: []string{"k", "score"}},
		{from: "img", cols: []string{"y", "x", "v"}, dims: []string{"y", "x"}},
		{from: "cube", cols: []string{"z", "y", "x", "v"}, dims: []string{"z", "y", "x"}},
		{from: "img a, img2 b", cols: []string{"a.v", "b.v", "a.y", "a.x"}, dims: []string{"a.y", "b.x"},
			join: "a.y = b.y AND a.x = b.x"},
		{from: "obs, sites", cols: []string{"id", "temp", "score"},
			join: "obs.id = sites.k"},
	}
	src := sources[g.rng.Intn(len(sources))]

	var where []string
	if src.join != "" {
		where = append(where, src.join)
	}
	if g.rng.Intn(4) != 0 {
		where = append(where, g.boolExpr(src.cols, g.rng.Intn(3)))
	}
	// Dimension predicates exercise the pushdown.
	for _, d := range src.dims {
		if g.rng.Intn(3) == 0 {
			if g.rng.Intn(2) == 0 {
				where = append(where, fmt.Sprintf("%s BETWEEN %d AND %d", d, g.rng.Intn(5), 3+g.rng.Intn(8)))
			} else {
				where = append(where, fmt.Sprintf("%s %s %d", d, g.pick("=", "<", "<=", ">", ">="), g.rng.Intn(10)))
			}
		}
	}

	var items []string
	agg := g.rng.Intn(3) == 0
	var groupBy []string
	if agg {
		if g.rng.Intn(2) == 0 && len(src.cols) > 1 {
			ge := g.pick(src.cols...)
			if g.rng.Intn(2) == 0 {
				ge = fmt.Sprintf("%s / %d", ge, 2+g.rng.Intn(3))
			}
			groupBy = append(groupBy, ge)
			items = append(items, ge+" AS gk")
		}
		fn := g.pick("count", "sum", "avg", "min", "max")
		arg := g.scalarExpr(src.cols, 1)
		if fn == "count" && g.rng.Intn(2) == 0 {
			items = append(items, "count(*) AS n")
		} else {
			items = append(items, fmt.Sprintf("%s(%s) AS a1", fn, arg))
		}
		if g.rng.Intn(2) == 0 {
			items = append(items, fmt.Sprintf("%s(%s) AS a2", g.pick("min", "max", "sum"), g.pick(src.cols...)))
		}
	} else {
		if g.rng.Intn(6) == 0 {
			items = append(items, "*")
		} else {
			n := 1 + g.rng.Intn(3)
			for i := 0; i < n; i++ {
				if g.rng.Intn(3) == 0 {
					items = append(items, fmt.Sprintf("%s AS e%d", g.scalarExpr(src.cols, 2), i))
				} else {
					items = append(items, g.pick(src.cols...))
				}
			}
		}
	}

	q := "SELECT "
	if g.rng.Intn(6) == 0 {
		q += "DISTINCT "
	}
	q += strings.Join(items, ", ") + " FROM " + src.from
	if len(where) > 0 {
		q += " WHERE " + strings.Join(where, " AND ")
	}
	if len(groupBy) > 0 {
		q += " GROUP BY " + strings.Join(groupBy, ", ")
	}
	if g.rng.Intn(4) == 0 && !strings.Contains(q, "*") && !agg {
		// ORDER BY a projected alias or bare column name.
		it := items[g.rng.Intn(len(items))]
		name := it
		if i := strings.LastIndex(it, " AS "); i >= 0 {
			name = it[i+4:]
		}
		if !strings.Contains(name, ".") && !strings.Contains(name, "(") && !strings.Contains(name, " ") {
			q += " ORDER BY " + name
			if g.rng.Intn(2) == 0 {
				q += " DESC"
			}
		}
	}
	if g.rng.Intn(4) == 0 {
		q += fmt.Sprintf(" LIMIT %d", g.rng.Intn(12))
	}
	return q
}

func (g *equivGen) updateStmt() string {
	switch g.rng.Intn(4) {
	case 0: // array update, often with dimension predicates (fused path)
		set := fmt.Sprintf("v = %s", g.scalarExpr([]string{"y", "x", "v"}, 2))
		if g.rng.Intn(6) == 0 {
			set = "v = NULL"
		}
		var where []string
		if g.rng.Intn(2) == 0 {
			where = append(where, fmt.Sprintf("y BETWEEN %d AND %d", g.rng.Intn(6), 4+g.rng.Intn(8)))
		}
		if g.rng.Intn(3) == 0 {
			where = append(where, g.boolExpr([]string{"v", "x"}, 1))
		}
		q := "UPDATE img SET " + set
		if len(where) > 0 {
			q += " WHERE " + strings.Join(where, " AND ")
		}
		return q
	case 1: // table update
		sets := []string{fmt.Sprintf("temp = %s", g.scalarExpr([]string{"temp", "id"}, 1))}
		if g.rng.Intn(3) == 0 {
			sets = append(sets, fmt.Sprintf("flag = %s", g.pick("true", "false", "NULL")))
		}
		q := "UPDATE obs SET " + strings.Join(sets, ", ")
		if g.rng.Intn(2) == 0 {
			q += " WHERE " + g.boolExpr([]string{"id", "temp"}, 1)
		}
		return q
	case 2: // delete (bounded so the table never empties out)
		return fmt.Sprintf("DELETE FROM sites WHERE k = %d AND score < %.2f", g.rng.Intn(40), g.rng.Float64())
	default: // rank-3 array update
		return fmt.Sprintf("UPDATE cube SET v = %s WHERE z = %d",
			g.scalarExpr([]string{"z", "y", "x", "v"}, 1), g.rng.Intn(4))
	}
}

func runEquivSuite(t *testing.T, seed int64, nStatements int) {
	rng := rand.New(rand.NewSource(seed))
	legacy, vec := equivPair(t, rng)
	g := &equivGen{rng: rng}
	for i := 0; i < nStatements; i++ {
		var stmt string
		isUpdate := rng.Intn(4) == 0
		if isUpdate {
			stmt = g.updateStmt()
		} else {
			stmt = g.selectStmt()
		}
		lres, lerr := legacy.Exec(stmt)
		vres, verr := vec.Exec(stmt)
		if (lerr == nil) != (verr == nil) {
			t.Fatalf("statement #%d error mismatch:\nlegacy=%v\nvec=%v\nstmt: %s", i, lerr, verr, stmt)
		}
		if lerr != nil {
			continue
		}
		if lres.Affected != vres.Affected {
			t.Fatalf("statement #%d affected: legacy=%d vec=%d\nstmt: %s", i, lres.Affected, vres.Affected, stmt)
		}
		lc, vc := canonTable(lres.Table), canonTable(vres.Table)
		if len(lc) != len(vc) {
			t.Fatalf("statement #%d rows: legacy=%d vec=%d\nstmt: %s", i, len(lc), len(vc), stmt)
		}
		for r := range lc {
			if lc[r] != vc[r] {
				t.Fatalf("statement #%d row %d differs:\nlegacy: %s\nvec:    %s\nstmt: %s", i, r, lc[r], vc[r], stmt)
			}
		}
		if isUpdate {
			// After a mutation, compare the full target state.
			for _, check := range []string{
				`SELECT * FROM obs`, `SELECT * FROM sites`,
				`SELECT y, x, v FROM img`, `SELECT z, y, x, v FROM cube`,
			} {
				lt := canonTable(legacy.MustExec(check).Table)
				vt := canonTable(vec.MustExec(check).Table)
				if strings.Join(lt, "\n") != strings.Join(vt, "\n") {
					t.Fatalf("state diverged after #%d %q (check %q)", i, stmt, check)
				}
			}
		}
	}
}

func TestVectorizedEquivalenceRandomized(t *testing.T) {
	// All ablation modes: the worker pool at 1, 2 and default parallelism
	// (the vectorized-off mode IS the legacy reference itself).
	for _, workers := range []int{1, 2, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := parallel.SetParallelism(workers)
			defer parallel.SetParallelism(prev)
			runEquivSuite(t, 20260729+int64(workers), 260)
		})
	}
}

// TestVectorizedEquivalenceCreateArrayAsSelect pins the CREATE ARRAY AS
// SELECT path (crop + shift, the demo's declarative chain) across both
// executors.
func TestVectorizedEquivalenceCreateArrayAsSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	legacy, vec := equivPair(t, rng)
	stmts := []string{
		`CREATE ARRAY crop AS SELECT y - 2 AS y, x - 1 AS x, v FROM img WHERE y BETWEEN 2 AND 9 AND x BETWEEN 1 AND 8`,
		`CREATE ARRAY mask AS SELECT y, x, CASE WHEN v >= 50 THEN 1.0 ELSE 0.0 END AS v FROM img WHERE v IS NOT NULL`,
	}
	for _, stmt := range stmts {
		legacy.MustExec(stmt)
		vec.MustExec(stmt)
	}
	for _, check := range []string{`SELECT y, x, v FROM crop`, `SELECT count(*) AS n, sum(v) AS s FROM mask`} {
		lt := canonTable(legacy.MustExec(check).Table)
		vt := canonTable(vec.MustExec(check).Table)
		if strings.Join(lt, "\n") != strings.Join(vt, "\n") {
			t.Fatalf("CREATE ARRAY AS SELECT diverged on %q:\nlegacy=%v\nvec=%v", check, lt, vt)
		}
	}
}

// TestVectorizedFallbackShapes spot-checks statements the compiler must
// hand back to the legacy interpreter unchanged.
func TestVectorizedFallbackShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	legacy, vec := equivPair(t, rng)
	for _, stmt := range []string{
		`SELECT 1 + 1 AS two`,                               // no FROM
		`SELECT 'a' || 'b' || sensor AS s FROM obs LIMIT 3`, // concat over column
		`SELECT count(*) + 1 AS n FROM obs`,                 // aggregate in arithmetic
		`SELECT id FROM obs WHERE ghost > 1`,                // unknown column (error)
		`SELECT max(v) - min(v) AS spread FROM img`,         // aggregate arithmetic
	} {
		lres, lerr := legacy.Exec(stmt)
		vres, verr := vec.Exec(stmt)
		if (lerr == nil) != (verr == nil) {
			t.Fatalf("%q error mismatch: legacy=%v vec=%v", stmt, lerr, verr)
		}
		if lerr != nil {
			continue
		}
		lc, vc := canonTable(lres.Table), canonTable(vres.Table)
		if strings.Join(lc, "\n") != strings.Join(vc, "\n") {
			t.Fatalf("%q diverged:\nlegacy=%v\nvec=%v", stmt, lc, vc)
		}
	}
}
