package sciql

import (
	"fmt"
	"testing"
)

func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	e := NewEngine()
	e.MustExec(`CREATE TABLE obs (id BIGINT, sensor VARCHAR, temp DOUBLE)`)
	tbl, err := e.Table("obs")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow(int64(i), fmt.Sprintf("s%d", i%4), 280+float64(i%60)); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func BenchmarkParse(b *testing.B) {
	const q = `SELECT sensor, count(*) AS n, avg(temp) AS m FROM obs WHERE temp BETWEEN 300 AND 320 GROUP BY sensor ORDER BY n DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectFilter(b *testing.B) {
	e := benchEngine(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.MustExec(`SELECT id FROM obs WHERE temp > 330`)
		if res.Table.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	e := benchEngine(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.MustExec(`SELECT sensor, avg(temp) AS m FROM obs GROUP BY sensor`)
		if res.Table.NumRows() != 4 {
			b.Fatal("groups")
		}
	}
}

func BenchmarkArrayUpdateClassify(b *testing.B) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY a (y INT DIMENSION [256], x INT DIMENSION [256], v DOUBLE)`)
	e.MustExec(`UPDATE a SET v = y + x`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.MustExec(`UPDATE a SET v = CASE WHEN v > 255 THEN 1 ELSE 0 END`)
		if res.Affected != 256*256 {
			b.Fatal("affected")
		}
	}
}

func BenchmarkAlignedArrayJoin(b *testing.B) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY p (y INT DIMENSION [128], x INT DIMENSION [128], v DOUBLE)`)
	e.MustExec(`CREATE ARRAY q (y INT DIMENSION [128], x INT DIMENSION [128], v DOUBLE)`)
	e.MustExec(`UPDATE p SET v = y`)
	e.MustExec(`UPDATE q SET v = x`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.MustExec(`SELECT count(*) AS n FROM p, q WHERE p.y = q.y AND p.x = q.x AND p.v > q.v`)
		if res.Table.Col("n").Int(0) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkDimensionPushdownCrop measures the demo's crop idiom: the
// dimension-range WHERE becomes a subarray enumeration instead of a full
// scan plus post-filter.
func BenchmarkDimensionPushdownCrop(b *testing.B) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY img (y INT DIMENSION [512], x INT DIMENSION [512], v DOUBLE)`)
	e.MustExec(`UPDATE img SET v = y + x`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.MustExec(`SELECT count(*) AS n, max(v) AS m FROM img WHERE y BETWEEN 100 AND 131 AND x BETWEEN 200 AND 263`)
		if res.Table.Col("n").Int(0) != 32*64 {
			b.Fatal("crop count")
		}
	}
}

// A6 — ablation: the columnar kernel executor versus the legacy
// tuple-at-a-time interpreter on the three hot SciQL shapes.
func BenchmarkAblationSciQLExecutor(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"vectorized", false}, {"legacy", true}} {
		b.Run("filter/"+mode.name, func(b *testing.B) {
			e := benchEngine(b, 100000)
			e.DisableVectorized = mode.legacy
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.MustExec(`SELECT id FROM obs WHERE temp > 330`); res.Table.NumRows() == 0 {
					b.Fatal("no rows")
				}
			}
		})
		b.Run("update/"+mode.name, func(b *testing.B) {
			e := NewEngine()
			e.DisableVectorized = mode.legacy
			e.MustExec(`CREATE ARRAY a (y INT DIMENSION [256], x INT DIMENSION [256], v DOUBLE)`)
			e.MustExec(`UPDATE a SET v = y + x`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.MustExec(`UPDATE a SET v = CASE WHEN v > 255 THEN 1 ELSE 0 END`); res.Affected != 256*256 {
					b.Fatal("affected")
				}
			}
		})
		b.Run("zipjoin/"+mode.name, func(b *testing.B) {
			e := NewEngine()
			e.DisableVectorized = mode.legacy
			e.MustExec(`CREATE ARRAY p (y INT DIMENSION [128], x INT DIMENSION [128], v DOUBLE)`)
			e.MustExec(`CREATE ARRAY q (y INT DIMENSION [128], x INT DIMENSION [128], v DOUBLE)`)
			e.MustExec(`UPDATE p SET v = y`)
			e.MustExec(`UPDATE q SET v = x`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := e.MustExec(`SELECT count(*) AS n FROM p, q WHERE p.y = q.y AND p.x = q.x AND p.v > q.v`)
				if res.Table.Col("n").Int(0) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}
