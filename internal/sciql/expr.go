package sciql

import (
	"fmt"
	"math"
	"strings"
)

// Scalar expression evaluation. Values are nil (NULL), int64, float64,
// string or bool. NULL propagates through operators and comparisons
// (three-valued logic collapsed to "not true" for filters).

func evalExpr(e Expr, ev *env) (any, error) {
	switch t := e.(type) {
	case *Literal:
		return t.Value, nil
	case *ColRef:
		if ev == nil {
			return nil, fmt.Errorf("sciql: column %q referenced outside a query", t.Name)
		}
		v, found, err := ev.lookup(t.Table, t.Name)
		if err != nil {
			return nil, err
		}
		if !found {
			if t.Table != "" {
				return nil, fmt.Errorf("sciql: unknown column %q.%q", t.Table, t.Name)
			}
			return nil, fmt.Errorf("sciql: unknown column %q", t.Name)
		}
		return v, nil
	case *BinaryExpr:
		if t.Op == "AND" || t.Op == "OR" {
			return evalLogical(t, ev)
		}
		l, err := evalExpr(t.Left, ev)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(t.Right, ev)
		if err != nil {
			return nil, err
		}
		return applyBinary(t.Op, l, r)
	case *UnaryExpr:
		v, err := evalExpr(t.X, ev)
		if err != nil {
			return nil, err
		}
		return applyUnary(t.Op, v)
	case *CallExpr:
		args := make([]any, len(t.Args))
		for i, a := range t.Args {
			v, err := evalExpr(a, ev)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return applyScalar(t.Name, args)
	case *BetweenExpr:
		x, err := evalExpr(t.X, ev)
		if err != nil {
			return nil, err
		}
		lo, err := evalExpr(t.Lo, ev)
		if err != nil {
			return nil, err
		}
		hi, err := evalExpr(t.Hi, ev)
		if err != nil {
			return nil, err
		}
		if x == nil || lo == nil || hi == nil {
			return nil, nil
		}
		geLo, err := applyBinary(">=", x, lo)
		if err != nil {
			return nil, err
		}
		leHi, err := applyBinary("<=", x, hi)
		if err != nil {
			return nil, err
		}
		result := geLo == true && leHi == true
		if t.Not {
			result = !result
		}
		return result, nil
	case *CaseExpr:
		for _, w := range t.Whens {
			ok, err := evalBool(w.Cond, ev)
			if err != nil {
				return nil, err
			}
			if ok {
				return evalExpr(w.Then, ev)
			}
		}
		if t.Else != nil {
			return evalExpr(t.Else, ev)
		}
		return nil, nil
	case *IsNullExpr:
		v, err := evalExpr(t.X, ev)
		if err != nil {
			return nil, err
		}
		isNull := v == nil
		if t.Not {
			return !isNull, nil
		}
		return isNull, nil
	case *InExpr:
		x, err := evalExpr(t.X, ev)
		if err != nil {
			return nil, err
		}
		if x == nil {
			return nil, nil
		}
		for _, le := range t.List {
			v, err := evalExpr(le, ev)
			if err != nil {
				return nil, err
			}
			eq, err := applyBinary("=", x, v)
			if err != nil {
				return nil, err
			}
			if eq == true {
				return !t.Not, nil
			}
		}
		return t.Not, nil
	}
	return nil, fmt.Errorf("sciql: unsupported expression %T", e)
}

// evalBool evaluates a predicate; NULL counts as false.
func evalBool(e Expr, ev *env) (bool, error) {
	v, err := evalExpr(e, ev)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	return ok && b, nil
}

func evalLogical(t *BinaryExpr, ev *env) (any, error) {
	l, err := evalBool(t.Left, ev)
	if err != nil {
		return nil, err
	}
	// Short-circuit.
	if t.Op == "AND" && !l {
		return false, nil
	}
	if t.Op == "OR" && l {
		return true, nil
	}
	r, err := evalBool(t.Right, ev)
	if err != nil {
		return nil, err
	}
	return r, nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

func applyBinary(op string, l, r any) (any, error) {
	if l == nil || r == nil {
		return nil, nil
	}
	if op == "||" {
		return fmt.Sprint(l) + fmt.Sprint(r), nil
	}
	// String comparisons.
	ls, lIsStr := l.(string)
	rs, rIsStr := r.(string)
	if lIsStr && rIsStr {
		switch op {
		case "=":
			return ls == rs, nil
		case "<>":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
		return nil, fmt.Errorf("sciql: operator %q not defined on strings", op)
	}
	// Bool equality.
	lb, lIsBool := l.(bool)
	rb, rIsBool := r.(bool)
	if lIsBool && rIsBool {
		switch op {
		case "=":
			return lb == rb, nil
		case "<>":
			return lb != rb, nil
		}
		return nil, fmt.Errorf("sciql: operator %q not defined on booleans", op)
	}
	// Integer arithmetic stays integer.
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("sciql: division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("sciql: modulo by zero")
			}
			return li % ri, nil
		case "=":
			return li == ri, nil
		case "<>":
			return li != ri, nil
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("sciql: operator %q not defined on %T and %T", op, l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("sciql: division by zero")
		}
		return lf / rf, nil
	case "%":
		if rf == 0 {
			return nil, fmt.Errorf("sciql: modulo by zero")
		}
		return math.Mod(lf, rf), nil
	case "=":
		return lf == rf, nil
	case "<>":
		return lf != rf, nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return nil, fmt.Errorf("sciql: unknown operator %q", op)
}

func applyUnary(op string, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch op {
	case "-":
		switch x := v.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		}
		return nil, fmt.Errorf("sciql: unary minus on %T", v)
	case "NOT":
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("sciql: NOT on %T", v)
		}
		return !b, nil
	}
	return nil, fmt.Errorf("sciql: unknown unary operator %q", op)
}

func applyScalar(name string, args []any) (any, error) {
	// NULL in, NULL out.
	for _, a := range args {
		if a == nil {
			return nil, nil
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sciql: %s takes %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	f1 := func() (float64, error) {
		if err := need(1); err != nil {
			return 0, err
		}
		f, ok := toFloat(args[0])
		if !ok {
			return 0, fmt.Errorf("sciql: %s expects a numeric argument, got %T", name, args[0])
		}
		return f, nil
	}
	switch name {
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		if i, ok := args[0].(int64); ok {
			if i < 0 {
				return -i, nil
			}
			return i, nil
		}
		f, ok := toFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("sciql: abs expects a number")
		}
		return math.Abs(f), nil
	case "sqrt":
		f, err := f1()
		if err != nil {
			return nil, err
		}
		if f < 0 {
			return nil, fmt.Errorf("sciql: sqrt of negative value")
		}
		return math.Sqrt(f), nil
	case "log":
		f, err := f1()
		if err != nil {
			return nil, err
		}
		if f <= 0 {
			return nil, fmt.Errorf("sciql: log of non-positive value")
		}
		return math.Log(f), nil
	case "exp":
		f, err := f1()
		if err != nil {
			return nil, err
		}
		return math.Exp(f), nil
	case "floor":
		f, err := f1()
		if err != nil {
			return nil, err
		}
		return int64(math.Floor(f)), nil
	case "ceil", "ceiling":
		f, err := f1()
		if err != nil {
			return nil, err
		}
		return int64(math.Ceil(f)), nil
	case "round":
		f, err := f1()
		if err != nil {
			return nil, err
		}
		return int64(math.Round(f)), nil
	case "power", "pow":
		if err := need(2); err != nil {
			return nil, err
		}
		x, xok := toFloat(args[0])
		y, yok := toFloat(args[1])
		if !xok || !yok {
			return nil, fmt.Errorf("sciql: power expects numbers")
		}
		return math.Pow(x, y), nil
	case "mod":
		if err := need(2); err != nil {
			return nil, err
		}
		return applyBinary("%", args[0], args[1])
	case "greatest", "least":
		if len(args) < 1 {
			return nil, fmt.Errorf("sciql: %s needs at least one argument", name)
		}
		best, ok := toFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("sciql: %s expects numbers", name)
		}
		allInt := isInt(args[0])
		for _, a := range args[1:] {
			f, ok := toFloat(a)
			if !ok {
				return nil, fmt.Errorf("sciql: %s expects numbers", name)
			}
			allInt = allInt && isInt(a)
			if name == "greatest" && f > best || name == "least" && f < best {
				best = f
			}
		}
		if allInt {
			return int64(best), nil
		}
		return best, nil
	case "lower":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sciql: lower expects a string")
		}
		return strings.ToLower(s), nil
	case "upper":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sciql: upper expects a string")
		}
		return strings.ToUpper(s), nil
	case "length":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sciql: length expects a string")
		}
		return int64(len(s)), nil
	}
	return nil, fmt.Errorf("sciql: unknown function %q", name)
}

func isInt(v any) bool {
	_, ok := v.(int64)
	return ok
}
