package sciql

import "repro/internal/column"

// Statement is any parsed SciQL statement.
type Statement interface{ stmt() }

// Expr is any parsed expression.
type Expr interface{ expr() }

// CreateTableStmt declares a relational table.
type CreateTableStmt struct {
	Name   string
	Fields []column.Field
}

// DimSpec declares one array dimension with extent [0, Size).
type DimSpec struct {
	Name string
	Size int
}

// CreateArrayStmt declares a dense array with dimensions and one or more
// value attributes (default value 0).
type CreateArrayStmt struct {
	Name   string
	Dims   []DimSpec
	Values []string // value attribute names (all DOUBLE)
	// AsSelect, when non-nil, fills the array from a query whose first
	// len(Dims) output columns are the dimension coordinates.
	AsSelect *SelectStmt
}

// InsertStmt appends literal rows to a table.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// SelectItem is one projection: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Star marks "SELECT *".
	Star bool
}

// TableRef names a FROM source with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a query block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

func (*SelectStmt) stmt() {}

// UpdateStmt updates array cells or table rows.
type UpdateStmt struct {
	Target string
	Set    map[string]Expr
	Where  Expr
}

// DeleteStmt removes table rows matching Where (all rows when nil).
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// DropStmt removes a table or array.
type DropStmt struct {
	Name    string
	IsArray bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateArrayStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DropStmt) stmt()        {}

// Literal is a constant: int64, float64, string, bool, or nil.
type Literal struct{ Value any }

// ColRef references a column or array attribute, optionally qualified.
type ColRef struct{ Table, Name string }

// BinaryExpr applies an infix operator: + - * / % = <> < <= > >= AND OR ||.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies - or NOT.
type UnaryExpr struct {
	Op string
	X  Expr
}

// CallExpr invokes a scalar function or aggregate.
type CallExpr struct {
	Name string // lower-cased
	Args []Expr
	Star bool // count(*)
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// CaseExpr is CASE WHEN c THEN v ... [ELSE e] END.
type CaseExpr struct {
	Whens []struct{ Cond, Then Expr }
	Else  Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*Literal) expr()     {}
func (*ColRef) expr()      {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*CallExpr) expr()    {}
func (*BetweenExpr) expr() {}
func (*CaseExpr) expr()    {}
func (*IsNullExpr) expr()  {}
func (*InExpr) expr()      {}
