package sciql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/column"
)

// Parse parses a single SciQL statement (a trailing ';' is tolerated).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sciql: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.cur().pos, excerpt(p.src))
}

func excerpt(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		t := p.cur()
		p.pos++
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(tokKeyword, "CREATE"):
		if p.accept(tokKeyword, "TABLE") {
			return p.createTable()
		}
		if p.accept(tokKeyword, "ARRAY") {
			return p.createArray()
		}
		return nil, p.errf("expected TABLE or ARRAY after CREATE")
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "UPDATE"):
		return p.update()
	case p.accept(tokKeyword, "DELETE"):
		if err := p.expect(tokKeyword, "FROM"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &DeleteStmt{Table: name}
		if p.accept(tokKeyword, "WHERE") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.Where = e
		}
		return st, nil
	case p.accept(tokKeyword, "DROP"):
		isArray := false
		if p.accept(tokKeyword, "ARRAY") {
			isArray = true
		} else if !p.accept(tokKeyword, "TABLE") {
			return nil, p.errf("expected TABLE or ARRAY after DROP")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropStmt{Name: name, IsArray: isArray}, nil
	default:
		return nil, p.errf("expected statement, found %q", p.cur().text)
	}
}

func (p *parser) typeName() (column.Type, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return 0, p.errf("expected type name, found %q", t.text)
	}
	p.pos++
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		return column.Int64, nil
	case "DOUBLE", "FLOAT":
		return column.Float64, nil
	case "VARCHAR", "STRING":
		return column.String, nil
	case "BOOLEAN", "BOOL":
		return column.Bool, nil
	}
	return 0, p.errf("unknown type %q", t.text)
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name}
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		st.Fields = append(st.Fields, column.Field{Name: cname, Typ: typ})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createArray() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreateArrayStmt{Name: name}
	if p.accept(tokKeyword, "AS") {
		// CREATE ARRAY a AS SELECT: shape inferred by the evaluator.
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.AsSelect = sel.(*SelectStmt)
		return st, nil
	}
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		aname, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ := p.cur()
		if typ.kind != tokKeyword {
			return nil, p.errf("expected type for attribute %q", aname)
		}
		p.pos++
		if p.accept(tokKeyword, "DIMENSION") {
			if typ.text != "INT" && typ.text != "INTEGER" && typ.text != "BIGINT" {
				return nil, p.errf("dimension %q must be integer typed", aname)
			}
			if err := p.expect(tokSymbol, "["); err != nil {
				return nil, err
			}
			if !p.at(tokNumber, "") {
				return nil, p.errf("expected dimension size")
			}
			size, err := strconv.Atoi(p.cur().text)
			if err != nil || size <= 0 {
				return nil, p.errf("bad dimension size %q", p.cur().text)
			}
			p.pos++
			if err := p.expect(tokSymbol, "]"); err != nil {
				return nil, err
			}
			st.Dims = append(st.Dims, DimSpec{Name: aname, Size: size})
		} else {
			switch typ.text {
			case "DOUBLE", "FLOAT":
			default:
				return nil, p.errf("array value attribute %q must be DOUBLE", aname)
			}
			// Optional DEFAULT literal (value recorded but arrays always
			// initialise to 0, SciQL's default for numeric cells).
			if p.accept(tokKeyword, "DEFAULT") {
				if _, err := p.primary(); err != nil {
					return nil, err
				}
			}
			st.Values = append(st.Values, aname)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(st.Dims) == 0 {
		return nil, p.errf("array %q has no dimensions", name)
	}
	if len(st.Values) == 0 {
		return nil, p.errf("array %q has no value attribute", name)
	}
	return st, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	for {
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Target: name, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Set[col] = e
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		if p.accept(tokSymbol, "*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.at(tokIdent, "") {
				item.Alias = p.cur().text
				p.pos++
			}
			st.Items = append(st.Items, item)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "FROM") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref := TableRef{Name: name}
			if p.accept(tokKeyword, "AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				ref.Alias = alias
			} else if p.at(tokIdent, "") {
				ref.Alias = p.cur().text
				p.pos++
			}
			st.From = append(st.From, ref)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if !p.at(tokNumber, "") {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", p.cur().text)
		}
		p.pos++
		st.Limit = n
	}
	return st, nil
}

// Expression grammar, lowest to highest precedence:
// OR -> AND -> NOT -> comparison/BETWEEN/IN/IS -> additive -> multiplicative -> unary -> primary.

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Not: not}, nil
	}
	// [NOT] BETWEEN / IN
	not := false
	if p.at(tokKeyword, "NOT") && p.pos+1 < len(p.toks) &&
		(p.toks[p.pos+1].text == "BETWEEN" || p.toks[p.pos+1].text == "IN") {
		p.pos++
		not = true
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	}
	if p.accept(tokKeyword, "IN") {
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, List: list, Not: not}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.additive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) additive() (Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		case p.accept(tokSymbol, "||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		case p.accept(tokSymbol, "%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	p.accept(tokSymbol, "+")
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Value: n}, nil
	case t.kind == tokString:
		p.pos++
		return &Literal{Value: t.text}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return &Literal{Value: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return &Literal{Value: false}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return &Literal{Value: nil}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.caseExpr()
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		name := t.text
		// Function call.
		if p.accept(tokSymbol, "(") {
			call := &CallExpr{Name: strings.ToLower(name)}
			if p.accept(tokSymbol, "*") {
				call.Star = true
				if err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.accept(tokSymbol, ")") {
				return call, nil
			}
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column reference.
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errf("expected expression, found %q", t.text)
}

func (p *parser) caseExpr() (Expr, error) {
	if err := p.expect(tokKeyword, "CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.expression()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, struct{ Cond, Then Expr }{cond, then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}
