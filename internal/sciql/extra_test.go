package sciql

import "testing"

func TestMoreScalarFunctions(t *testing.T) {
	e := NewEngine()
	tbl := e.MustExec(`SELECT mod(10, 3) m, round(2.6) r, lower('FiRe') lo, log(exp(1.0)) ln, abs(-2.5) a`).Table
	if tbl.Col("m").Int(0) != 1 {
		t.Fatal("mod")
	}
	if tbl.Col("r").Int(0) != 3 {
		t.Fatal("round")
	}
	if tbl.Col("lo").Str(0) != "fire" {
		t.Fatal("lower")
	}
	if v := tbl.Col("ln").Float(0); v < 0.999 || v > 1.001 {
		t.Fatalf("log(exp(1)) = %g", v)
	}
	if tbl.Col("a").Float(0) != 2.5 {
		t.Fatal("abs float")
	}
	// Error paths.
	for _, q := range []string{
		`SELECT log(0)`,
		`SELECT sqrt('a')`,
		`SELECT power(1)`,
		`SELECT mod(1, 0)`,
		`SELECT lower(5)`,
		`SELECT greatest('a', 'b')`,
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestUpdateSetNull(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE t (x BIGINT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2)`)
	e.MustExec(`UPDATE t SET x = NULL WHERE x = 1`)
	tbl := e.MustExec(`SELECT x FROM t WHERE x IS NULL`).Table
	if tbl.NumRows() != 1 {
		t.Fatalf("null rows = %d", tbl.NumRows())
	}
	// Array cells can be blanked too.
	e.MustExec(`CREATE ARRAY a (i INT DIMENSION [4], v DOUBLE)`)
	e.MustExec(`UPDATE a SET v = 5`)
	e.MustExec(`UPDATE a SET v = NULL WHERE i = 2`)
	res := e.MustExec(`SELECT count(v) AS n FROM a`).Table
	if res.Col("n").Int(0) != 3 {
		t.Fatalf("non-null cells = %d", res.Col("n").Int(0))
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE t (a BIGINT, b BIGINT)`)
	e.MustExec(`INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)`)
	tbl := e.MustExec(`SELECT a, b FROM t ORDER BY a, b DESC`).Table
	if tbl.Col("a").Int(0) != 0 {
		t.Fatal("primary key order")
	}
	if tbl.Col("b").Int(1) != 2 || tbl.Col("b").Int(2) != 1 {
		t.Fatalf("secondary desc order: %v", tbl.Col("b").Ints())
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE a (k BIGINT)`)
	e.MustExec(`CREATE TABLE b (k BIGINT)`)
	e.MustExec(`CREATE TABLE c (k BIGINT)`)
	e.MustExec(`INSERT INTO a VALUES (1), (2)`)
	e.MustExec(`INSERT INTO b VALUES (2), (3)`)
	e.MustExec(`INSERT INTO c VALUES (2), (4)`)
	// Three sources fall back to the nested-loop path with the full
	// predicate as a residual filter.
	tbl := e.MustExec(`SELECT a.k FROM a, b, c WHERE a.k = b.k AND b.k = c.k`).Table
	if tbl.NumRows() != 1 || tbl.Col("k").Int(0) != 2 {
		t.Fatalf("3-way join = %v", tbl.Col("k").Ints())
	}
}

func TestCaseInExpressionPositions(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE t (x BIGINT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (5), (9)`)
	// CASE in WHERE and in aggregates.
	tbl := e.MustExec(`SELECT sum(CASE WHEN x > 4 THEN 1 ELSE 0 END) AS hot FROM t`).Table
	if tbl.Col("hot").Int(0) != 2 {
		t.Fatalf("conditional sum = %d", tbl.Col("hot").Int(0))
	}
	tbl2 := e.MustExec(`SELECT x FROM t WHERE CASE WHEN x > 4 THEN true ELSE false END`).Table
	if tbl2.NumRows() != 2 {
		t.Fatal("CASE in WHERE")
	}
}

func TestDistinctMultiColumn(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE t (a BIGINT, b VARCHAR)`)
	e.MustExec(`INSERT INTO t VALUES (1, 'x'), (1, 'x'), (1, 'y')`)
	tbl := e.MustExec(`SELECT DISTINCT a, b FROM t`).Table
	if tbl.NumRows() != 2 {
		t.Fatalf("distinct rows = %d", tbl.NumRows())
	}
}
