package sciql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/array"
	"repro/internal/column"
)

// ArrayObject is a catalogued SciQL array: shared dimensions plus one
// dense float64 plane per value attribute.
type ArrayObject struct {
	Name   string
	Dims   []array.Dim
	Values map[string]*array.Array
	// order preserves value-attribute declaration order.
	order []string
}

// ValueNames returns the value attribute names in declaration order.
func (a *ArrayObject) ValueNames() []string { return a.order }

// Size reports the cell count.
func (a *ArrayObject) Size() int {
	n := 1
	for _, d := range a.Dims {
		n *= d.Size
	}
	return n
}

// Engine executes SciQL statements against an in-memory catalog of tables
// and arrays. Safe for concurrent reads; writes (CREATE/INSERT/UPDATE/DROP)
// must be externally serialised with reads, as in the single-writer
// ingestion pipeline of the Earth Observatory.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*column.Table
	arrays map[string]*ArrayObject

	// DisableVectorized forces the legacy tuple-at-a-time interpreter
	// instead of the columnar kernel executor (vexec.go) — the ablation
	// baseline, also reachable via `teleios-server -legacy-sciql` and
	// `sciql-shell -legacy`.
	DisableVectorized bool
}

// DefaultDisableVectorized is the DisableVectorized value NewEngine
// installs on new engines; command-line front ends set it from their
// -legacy-sciql flags so every engine built in-process follows suit.
var DefaultDisableVectorized bool

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		tables:            map[string]*column.Table{},
		arrays:            map[string]*ArrayObject{},
		DisableVectorized: DefaultDisableVectorized,
	}
}

// RegisterTable adds (or replaces) a table in the catalog.
func (e *Engine) RegisterTable(t *column.Table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[t.Name] = t
}

// RegisterArray adds (or replaces) an array with one value plane per
// entry of values; all planes must share the dims shape.
func (e *Engine) RegisterArray(name string, dims []array.Dim, values map[string]*array.Array) error {
	obj := &ArrayObject{Name: name, Dims: dims, Values: map[string]*array.Array{}}
	n := 1
	for _, d := range dims {
		n *= d.Size
	}
	names := make([]string, 0, len(values))
	for vn := range values {
		names = append(names, vn)
	}
	sort.Strings(names)
	for _, vn := range names {
		img := values[vn]
		if img.Size() != n {
			return fmt.Errorf("sciql: value plane %q has %d cells, dims imply %d", vn, img.Size(), n)
		}
		obj.Values[vn] = img
		obj.order = append(obj.order, vn)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.arrays[name] = obj
	return nil
}

// Table returns a catalogued table.
func (e *Engine) Table(name string) (*column.Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("sciql: unknown table %q", name)
	}
	return t, nil
}

// Array returns a catalogued array.
func (e *Engine) Array(name string) (*ArrayObject, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	a, ok := e.arrays[name]
	if !ok {
		return nil, fmt.Errorf("sciql: unknown array %q", name)
	}
	return a, nil
}

// Result is the outcome of a statement: a result table for SELECT, or an
// affected-row count for DML/DDL.
type Result struct {
	Table    *column.Table
	Affected int
}

// Exec parses and executes one statement.
func (e *Engine) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st)
}

// MustExec is Exec that panics on error; for tests and fixtures.
func (e *Engine) MustExec(src string) *Result {
	r, err := e.Exec(src)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(st Statement) (*Result, error) {
	switch s := st.(type) {
	case *CreateTableStmt:
		e.RegisterTable(column.NewTable(s.Name, s.Fields...))
		return &Result{}, nil
	case *CreateArrayStmt:
		return e.execCreateArray(s)
	case *InsertStmt:
		return e.execInsert(s)
	case *SelectStmt:
		t, err := e.execSelect(s)
		if err != nil {
			return nil, err
		}
		return &Result{Table: t}, nil
	case *UpdateStmt:
		return e.execUpdate(s)
	case *DeleteStmt:
		return e.execDelete(s)
	case *DropStmt:
		e.mu.Lock()
		defer e.mu.Unlock()
		if s.IsArray {
			if _, ok := e.arrays[s.Name]; !ok {
				return nil, fmt.Errorf("sciql: unknown array %q", s.Name)
			}
			delete(e.arrays, s.Name)
		} else {
			if _, ok := e.tables[s.Name]; !ok {
				return nil, fmt.Errorf("sciql: unknown table %q", s.Name)
			}
			delete(e.tables, s.Name)
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sciql: unsupported statement %T", st)
}

func (e *Engine) execCreateArray(s *CreateArrayStmt) (*Result, error) {
	if s.AsSelect == nil {
		dims := make([]array.Dim, len(s.Dims))
		for i, d := range s.Dims {
			dims[i] = array.Dim{Name: d.Name, Size: d.Size}
		}
		values := map[string]*array.Array{}
		obj := &ArrayObject{Name: s.Name, Dims: dims, Values: values}
		for _, vn := range s.Values {
			img, err := array.New(vn, dims...)
			if err != nil {
				return nil, err
			}
			values[vn] = img
			obj.order = append(obj.order, vn)
		}
		e.mu.Lock()
		e.arrays[s.Name] = obj
		e.mu.Unlock()
		return &Result{}, nil
	}
	// CREATE ARRAY a AS SELECT: all result columns except the last are
	// integer dimension coordinates; the last is the value.
	res, err := e.execSelect(s.AsSelect)
	if err != nil {
		return nil, err
	}
	if len(res.Fields) < 2 {
		return nil, fmt.Errorf("sciql: CREATE ARRAY AS SELECT needs at least 2 result columns")
	}
	nd := len(res.Fields) - 1
	dims := make([]array.Dim, nd)
	for i := 0; i < nd; i++ {
		c := res.Cols[i]
		if c.Typ != column.Int64 {
			return nil, fmt.Errorf("sciql: dimension column %q must be integer", res.Fields[i].Name)
		}
		max := int64(-1)
		for j := 0; j < c.Len(); j++ {
			if v := c.Int(j); v > max {
				max = v
			}
			if c.Int(j) < 0 {
				return nil, fmt.Errorf("sciql: negative dimension coordinate in %q", res.Fields[i].Name)
			}
		}
		dims[i] = array.Dim{Name: res.Fields[i].Name, Size: int(max + 1)}
	}
	valName := res.Fields[nd].Name
	img, err := array.New(valName, dims...)
	if err != nil {
		return nil, err
	}
	// Cells not covered by the query stay null, matching SciQL's sparse
	// fill semantics for array construction.
	img.Null = make([]bool, img.Size())
	for i := range img.Null {
		img.Null[i] = true
	}
	vcol := res.Cols[nd]
	idx := make([]int, nd)
	for j := 0; j < res.NumRows(); j++ {
		for i := 0; i < nd; i++ {
			idx[i] = int(res.Cols[i].Int(j))
		}
		var v float64
		switch vcol.Typ {
		case column.Float64:
			v = vcol.Float(j)
		case column.Int64:
			v = float64(vcol.Int(j))
		default:
			return nil, fmt.Errorf("sciql: value column %q must be numeric", valName)
		}
		if err := img.Set(v, idx...); err != nil {
			return nil, err
		}
	}
	obj := &ArrayObject{Name: s.Name, Dims: dims, Values: map[string]*array.Array{valName: img}, order: []string{valName}}
	e.mu.Lock()
	e.arrays[s.Name] = obj
	e.mu.Unlock()
	return &Result{Affected: res.NumRows()}, nil
}

func (e *Engine) execInsert(s *InsertStmt) (*Result, error) {
	t, err := e.Table(s.Table)
	if err != nil {
		return nil, err
	}
	for _, row := range s.Rows {
		vals := make([]any, len(row))
		for i, expr := range row {
			v, err := evalExpr(expr, nil)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

// relation is the evaluator's uniform row source: named, typed columns of
// values with a row accessor.
type relation struct {
	alias string
	names []string
	// get(row, col) returns the value (nil for NULL).
	get  func(row, col int) any
	rows int
	// arr is non-nil when this relation wraps an array (enables the
	// aligned-zip join fast path).
	arr *ArrayObject
}

func (e *Engine) resolve(ref TableRef) (*relation, error) {
	e.mu.RLock()
	t, isTable := e.tables[ref.Name]
	a, isArray := e.arrays[ref.Name]
	e.mu.RUnlock()
	alias := ref.Alias
	if alias == "" {
		alias = ref.Name
	}
	switch {
	case isTable:
		names := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			names[i] = f.Name
		}
		return &relation{
			alias: alias,
			names: names,
			rows:  t.NumRows(),
			get:   func(row, col int) any { return t.Cols[col].Value(row) },
		}, nil
	case isArray:
		var names []string
		for _, d := range a.Dims {
			names = append(names, d.Name)
		}
		names = append(names, a.order...)
		nd := len(a.Dims)
		// Precompute strides for coordinate recovery.
		strides := make([]int, nd)
		s := 1
		for i := nd - 1; i >= 0; i-- {
			strides[i] = s
			s *= a.Dims[i].Size
		}
		return &relation{
			alias: alias,
			names: names,
			rows:  a.Size(),
			arr:   a,
			get: func(row, col int) any {
				if col < nd {
					return int64(row / strides[col] % a.Dims[col].Size)
				}
				img := a.Values[a.order[col-nd]]
				if img.IsNull(row) {
					return nil
				}
				return img.Data[row]
			},
		}, nil
	default:
		return nil, fmt.Errorf("sciql: unknown table or array %q", ref.Name)
	}
}

// env binds column references during expression evaluation.
type env struct {
	rels []*relation
	rows []int // current row per relation
}

func (ev *env) lookup(table, name string) (any, bool, error) {
	found := false
	var val any
	for ri, r := range ev.rels {
		if table != "" && r.alias != table {
			continue
		}
		for ci, n := range r.names {
			if n == name {
				if found {
					return nil, false, fmt.Errorf("sciql: ambiguous column %q", name)
				}
				val = r.get(ev.rows[ri], ci)
				found = true
			}
		}
	}
	return val, found, nil
}

func (e *Engine) execSelect(s *SelectStmt) (*column.Table, error) {
	if !e.DisableVectorized {
		if t, ok, err := e.vexecSelect(s); ok {
			return t, err
		}
	}
	// Resolve sources.
	rels := make([]*relation, len(s.From))
	for i, ref := range s.From {
		r, err := e.resolve(ref)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	// No FROM: single empty-environment row (SELECT 1+1).
	if len(rels) == 0 {
		rels = []*relation{{alias: "", rows: 1, get: func(int, int) any { return nil }}}
	}

	// Enumerate joined row combinations.
	combos, residual, err := joinRows(rels, s.Where)
	if err != nil {
		return nil, err
	}

	ev := &env{rels: rels, rows: make([]int, len(rels))}

	// Apply residual WHERE.
	var rowIDs [][]int
	for _, combo := range combos {
		copy(ev.rows, combo)
		if residual != nil {
			ok, err := evalBool(residual, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		keep := make([]int, len(combo))
		copy(keep, combo)
		rowIDs = append(rowIDs, keep)
	}

	// Expand stars.
	items, err := expandStars(s.Items, rels)
	if err != nil {
		return nil, err
	}

	hasAgg := len(s.GroupBy) > 0
	for _, it := range items {
		if containsAggregate(it.Expr) {
			hasAgg = true
		}
	}

	var out *column.Table
	if hasAgg {
		out, err = evalAggregateSelect(items, s.GroupBy, rels, rowIDs)
	} else {
		out, err = evalPlainSelect(items, rels, rowIDs)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		out = distinctTable(out)
	}
	if len(s.OrderBy) > 0 {
		if err := orderTable(out, s.OrderBy, items); err != nil {
			return nil, err
		}
	}
	if s.Limit >= 0 {
		out = out.Head(s.Limit)
	}
	return out, nil
}

// joinRows enumerates the surviving row combinations across relations,
// using (a) an aligned zip when two same-shaped arrays are equated on all
// dimensions, (b) a hash join on the first equi-join conjunct, or (c) a
// nested-loop cross product. It returns the combinations plus the residual
// predicate still to apply.
func joinRows(rels []*relation, where Expr) ([][]int, Expr, error) {
	if len(rels) == 1 {
		combos := make([][]int, rels[0].rows)
		for i := range combos {
			combos[i] = []int{i}
		}
		return combos, where, nil
	}
	if len(rels) == 2 {
		conj := conjuncts(where)
		// Aligned-zip fast path for co-registered arrays.
		if rels[0].arr != nil && rels[1].arr != nil && sameShape(rels[0].arr, rels[1].arr) {
			matched, residual := dimEqualityConjuncts(conj, rels[0], rels[1])
			if matched == len(rels[0].arr.Dims) {
				combos := make([][]int, rels[0].rows)
				for i := range combos {
					combos[i] = []int{i, i}
				}
				return combos, andAll(residual), nil
			}
		}
		// Hash join on the first equi conjunct.
		if lcol, rcol, rest, ok := equiJoinColumns(conj, rels[0], rels[1]); ok {
			combos := hashJoin(rels[0], lcol, rels[1], rcol)
			return combos, andAll(rest), nil
		}
	}
	// Nested loop cross product (guard against blow-ups). The bound is
	// checked by division before each multiply so oversized products are
	// rejected instead of wrapping int.
	total := 1
	for _, r := range rels {
		if r.rows != 0 && total > 50_000_000/r.rows {
			return nil, nil, fmt.Errorf("sciql: cross product too large (%d relations, over 50M rows); add an equality join predicate", len(rels))
		}
		total *= r.rows
	}
	combos := make([][]int, 0, total)
	cur := make([]int, len(rels))
	var rec func(i int)
	rec = func(i int) {
		if i == len(rels) {
			c := make([]int, len(cur))
			copy(c, cur)
			combos = append(combos, c)
			return
		}
		for r := 0; r < rels[i].rows; r++ {
			cur[i] = r
			rec(i + 1)
		}
	}
	rec(0)
	return combos, where, nil
}

func sameShape(a, b *ArrayObject) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i].Size != b.Dims[i].Size {
			return false
		}
	}
	return true
}

// conjuncts flattens an AND tree.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []Expr{e}
}

func andAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: "AND", Left: out, Right: e}
		}
	}
	return out
}

// dimEqualityConjuncts counts how many of a's dimensions are equated with
// the same-named dimension of b, returning the residual conjuncts.
func dimEqualityConjuncts(conj []Expr, a, b *relation) (int, []Expr) {
	matched := map[string]bool{}
	var residual []Expr
	for _, c := range conj {
		be, ok := c.(*BinaryExpr)
		if ok && be.Op == "=" {
			l, lok := be.Left.(*ColRef)
			r, rok := be.Right.(*ColRef)
			if lok && rok {
				// a.x = b.x (either side order) over dimension columns.
				if isDimOf(l, a) && isDimOf(r, b) && l.Name == r.Name {
					matched[l.Name] = true
					continue
				}
				if isDimOf(l, b) && isDimOf(r, a) && l.Name == r.Name {
					matched[l.Name] = true
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return len(matched), residual
}

func isDimOf(c *ColRef, r *relation) bool {
	if r.arr == nil {
		return false
	}
	if c.Table != "" && c.Table != r.alias {
		return false
	}
	for _, d := range r.arr.Dims {
		if d.Name == c.Name {
			return true
		}
	}
	return false
}

// equiJoinColumns finds a conjunct of the form a.c1 = b.c2 (both sides
// column refs bound to different relations), returning the column indices.
func equiJoinColumns(conj []Expr, a, b *relation) (int, int, []Expr, bool) {
	colIndex := func(r *relation, c *ColRef) int {
		if c.Table != "" && c.Table != r.alias {
			return -1
		}
		for i, n := range r.names {
			if n == c.Name {
				return i
			}
		}
		return -1
	}
	for i, c := range conj {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		l, lok := be.Left.(*ColRef)
		r, rok := be.Right.(*ColRef)
		if !lok || !rok {
			continue
		}
		// Require explicit or unambiguous binding to distinct relations.
		la, ra := colIndex(a, l), colIndex(a, r)
		lb, rb := colIndex(b, l), colIndex(b, r)
		var ca, cb int = -1, -1
		switch {
		case la >= 0 && rb >= 0 && (l.Table != "" || lb < 0) && (r.Table != "" || ra < 0):
			ca, cb = la, rb
		case lb >= 0 && ra >= 0 && (l.Table != "" || la < 0) && (r.Table != "" || rb < 0):
			ca, cb = ra, lb
		}
		if ca >= 0 && cb >= 0 {
			rest := append(append([]Expr{}, conj[:i]...), conj[i+1:]...)
			return ca, cb, rest, true
		}
	}
	return 0, 0, conj, false
}

func hashJoin(a *relation, ca int, b *relation, cb int) [][]int {
	// Build on the smaller side.
	build, probe := a, b
	cBuild, cProbe := ca, cb
	swapped := false
	if b.rows < a.rows {
		build, probe = b, a
		cBuild, cProbe = cb, ca
		swapped = true
	}
	ht := make(map[any][]int, build.rows)
	for i := 0; i < build.rows; i++ {
		v := build.get(i, cBuild)
		if v == nil {
			continue
		}
		ht[v] = append(ht[v], i)
	}
	var combos [][]int
	for j := 0; j < probe.rows; j++ {
		v := probe.get(j, cProbe)
		if v == nil {
			continue
		}
		for _, i := range ht[v] {
			if swapped {
				combos = append(combos, []int{j, i})
			} else {
				combos = append(combos, []int{i, j})
			}
		}
	}
	return combos
}

func expandStars(items []SelectItem, rels []*relation) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, r := range rels {
			for _, n := range r.names {
				out = append(out, SelectItem{
					Expr:  &ColRef{Table: r.alias, Name: n},
					Alias: n,
				})
			}
		}
	}
	return out, nil
}

func containsAggregate(e Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *CallExpr:
		switch t.Name {
		case "count", "sum", "avg", "min", "max":
			return true
		}
		for _, a := range t.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return containsAggregate(t.Left) || containsAggregate(t.Right)
	case *UnaryExpr:
		return containsAggregate(t.X)
	case *BetweenExpr:
		return containsAggregate(t.X) || containsAggregate(t.Lo) || containsAggregate(t.Hi)
	case *CaseExpr:
		for _, w := range t.Whens {
			if containsAggregate(w.Cond) || containsAggregate(w.Then) {
				return true
			}
		}
		return containsAggregate(t.Else)
	case *IsNullExpr:
		return containsAggregate(t.X)
	case *InExpr:
		if containsAggregate(t.X) {
			return true
		}
		for _, e := range t.List {
			if containsAggregate(e) {
				return true
			}
		}
	}
	return false
}

func itemName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColRef); ok {
		return c.Name
	}
	if c, ok := it.Expr.(*CallExpr); ok {
		return c.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

func evalPlainSelect(items []SelectItem, rels []*relation, rowIDs [][]int) (*column.Table, error) {
	ev := &env{rels: rels, rows: make([]int, len(rels))}
	cols := make([][]any, len(items))
	for _, combo := range rowIDs {
		copy(ev.rows, combo)
		for i, it := range items {
			v, err := evalExpr(it.Expr, ev)
			if err != nil {
				return nil, err
			}
			cols[i] = append(cols[i], v)
		}
	}
	return buildResult(items, cols)
}

func evalAggregateSelect(items []SelectItem, groupBy []Expr, rels []*relation, rowIDs [][]int) (*column.Table, error) {
	ev := &env{rels: rels, rows: make([]int, len(rels))}
	type group struct {
		key  string
		rows [][]int
	}
	var groups []*group
	byKey := map[string]*group{}
	for _, combo := range rowIDs {
		copy(ev.rows, combo)
		var key strings.Builder
		for _, ge := range groupBy {
			v, err := evalExpr(ge, ev)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&key, "%v|", v)
		}
		k := key.String()
		g, ok := byKey[k]
		if !ok {
			g = &group{key: k}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, combo)
	}
	// Global aggregate with no rows still yields one row (count = 0).
	if len(groupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &group{})
	}
	cols := make([][]any, len(items))
	for _, g := range groups {
		for i, it := range items {
			v, err := evalAggExpr(it.Expr, ev, g.rows)
			if err != nil {
				return nil, err
			}
			cols[i] = append(cols[i], v)
		}
	}
	return buildResult(items, cols)
}

// evalAggExpr evaluates an expression that may contain aggregates over a
// group of row combinations; non-aggregate subexpressions use the group's
// first row (the SQL semantics for grouped columns).
func evalAggExpr(e Expr, ev *env, rows [][]int) (any, error) {
	switch t := e.(type) {
	case *CallExpr:
		switch t.Name {
		case "count", "sum", "avg", "min", "max":
			return evalAggregate(t, ev, rows)
		}
		args := make([]any, len(t.Args))
		for i, a := range t.Args {
			v, err := evalAggExpr(a, ev, rows)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return applyScalar(t.Name, args)
	case *BinaryExpr:
		l, err := evalAggExpr(t.Left, ev, rows)
		if err != nil {
			return nil, err
		}
		r, err := evalAggExpr(t.Right, ev, rows)
		if err != nil {
			return nil, err
		}
		return applyBinary(t.Op, l, r)
	case *UnaryExpr:
		v, err := evalAggExpr(t.X, ev, rows)
		if err != nil {
			return nil, err
		}
		return applyUnary(t.Op, v)
	default:
		if len(rows) > 0 {
			copy(ev.rows, rows[0])
		}
		return evalExpr(e, ev)
	}
}

func evalAggregate(call *CallExpr, ev *env, rows [][]int) (any, error) {
	if call.Name == "count" && call.Star {
		return int64(len(rows)), nil
	}
	if len(call.Args) != 1 {
		return nil, fmt.Errorf("sciql: %s takes exactly one argument", call.Name)
	}
	var count int64
	var sum float64
	min, max := math.Inf(1), math.Inf(-1)
	allInt := true
	for _, combo := range rows {
		copy(ev.rows, combo)
		v, err := evalExpr(call.Args[0], ev)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		var f float64
		switch x := v.(type) {
		case int64:
			f = float64(x)
		case float64:
			f = x
			allInt = false
		case bool:
			allInt = false
			if x {
				f = 1
			}
		default:
			return nil, fmt.Errorf("sciql: %s over non-numeric value %T", call.Name, v)
		}
		count++
		sum += f
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	switch call.Name {
	case "count":
		return count, nil
	case "sum":
		if count == 0 {
			return nil, nil
		}
		if allInt {
			return int64(sum), nil
		}
		return sum, nil
	case "avg":
		if count == 0 {
			return nil, nil
		}
		return sum / float64(count), nil
	case "min":
		if count == 0 {
			return nil, nil
		}
		if allInt {
			return int64(min), nil
		}
		return min, nil
	case "max":
		if count == 0 {
			return nil, nil
		}
		if allInt {
			return int64(max), nil
		}
		return max, nil
	}
	return nil, fmt.Errorf("sciql: unknown aggregate %q", call.Name)
}

func buildResult(items []SelectItem, cols [][]any) (*column.Table, error) {
	t := &column.Table{Name: "result"}
	for i, it := range items {
		typ := column.Float64
		for _, v := range cols[i] {
			if v == nil {
				continue
			}
			switch v.(type) {
			case int64:
				typ = column.Int64
			case float64:
				typ = column.Float64
			case string:
				typ = column.String
			case bool:
				typ = column.Bool
			}
			break
		}
		c := column.NewEmpty(typ)
		for _, v := range cols[i] {
			if err := c.AppendValue(v); err != nil {
				// Mixed types in one output column: degrade to string.
				return nil, fmt.Errorf("sciql: column %q: %w", itemName(it, i), err)
			}
		}
		t.Fields = append(t.Fields, column.Field{Name: itemName(it, i), Typ: typ})
		t.Cols = append(t.Cols, c)
	}
	return t, nil
}

func distinctTable(t *column.Table) *column.Table {
	seen := map[string]bool{}
	var keep []int
	for i := 0; i < t.NumRows(); i++ {
		var key strings.Builder
		for _, c := range t.Cols {
			fmt.Fprintf(&key, "%v|", c.Value(i))
		}
		if !seen[key.String()] {
			seen[key.String()] = true
			keep = append(keep, i)
		}
	}
	return t.Gather(keep)
}

func orderTable(t *column.Table, orderBy []OrderItem, items []SelectItem) error {
	// ORDER BY expressions must reference result columns (by alias/name).
	keyCols := make([]*column.Column, len(orderBy))
	for i, oi := range orderBy {
		cr, ok := oi.Expr.(*ColRef)
		if !ok {
			return fmt.Errorf("sciql: ORDER BY supports result column references only")
		}
		c := t.Col(cr.Name)
		if c == nil {
			return fmt.Errorf("sciql: ORDER BY column %q not in result", cr.Name)
		}
		keyCols[i] = c
	}
	perm := make([]int, t.NumRows())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		for k, c := range keyCols {
			cmp := compareValues(c.Value(perm[a]), c.Value(perm[b]))
			if cmp == 0 {
				continue
			}
			if orderBy[k].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	sorted := t.Gather(perm)
	t.Cols = sorted.Cols
	return nil
}

func compareValues(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	af, aIsNum := toFloat(a)
	bf, bIsNum := toFloat(b)
	if aIsNum && bIsNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs)
	}
	return strings.Compare(fmt.Sprint(a), fmt.Sprint(b))
}

func (e *Engine) execUpdate(s *UpdateStmt) (*Result, error) {
	if !e.DisableVectorized {
		if r, ok, err := e.vexecUpdate(s); ok {
			return r, err
		}
	}
	e.mu.RLock()
	tbl, isTable := e.tables[s.Target]
	arr, isArray := e.arrays[s.Target]
	e.mu.RUnlock()
	switch {
	case isArray:
		return e.updateArray(arr, s)
	case isTable:
		return e.updateTable(tbl, s)
	default:
		return nil, fmt.Errorf("sciql: unknown table or array %q", s.Target)
	}
}

func (e *Engine) updateArray(a *ArrayObject, s *UpdateStmt) (*Result, error) {
	for col := range s.Set {
		if _, ok := a.Values[col]; !ok {
			return nil, fmt.Errorf("sciql: %q is not a value attribute of array %q", col, a.Name)
		}
	}
	rel, err := e.resolve(TableRef{Name: a.Name})
	if err != nil {
		return nil, err
	}
	ev := &env{rels: []*relation{rel}, rows: []int{0}}
	affected := 0
	// Evaluate all new values first, then assign, so self-referencing
	// updates (v = v + 1) read consistent pre-update state.
	type pending struct {
		cell int
		col  string
		val  float64
		null bool
	}
	var writes []pending
	for cell := 0; cell < rel.rows; cell++ {
		ev.rows[0] = cell
		if s.Where != nil {
			ok, err := evalBool(s.Where, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		for col, expr := range s.Set {
			v, err := evalExpr(expr, ev)
			if err != nil {
				return nil, err
			}
			if v == nil {
				writes = append(writes, pending{cell: cell, col: col, null: true})
				continue
			}
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("sciql: cannot assign %T to array attribute %q", v, col)
			}
			writes = append(writes, pending{cell: cell, col: col, val: f})
		}
		affected++
	}
	for _, w := range writes {
		img := a.Values[w.col]
		if w.null {
			if img.Null == nil {
				img.Null = make([]bool, len(img.Data))
			}
			img.Null[w.cell] = true
			continue
		}
		img.Data[w.cell] = w.val
		if img.Null != nil {
			img.Null[w.cell] = false
		}
	}
	return &Result{Affected: affected}, nil
}

// execDelete removes matching rows from a table (arrays are dense; use
// UPDATE ... SET v = NULL to blank array cells instead).
func (e *Engine) execDelete(s *DeleteStmt) (*Result, error) {
	if !e.DisableVectorized {
		if r, ok, err := e.vexecDelete(s); ok {
			return r, err
		}
	}
	e.mu.RLock()
	_, isArray := e.arrays[s.Table]
	t, isTable := e.tables[s.Table]
	e.mu.RUnlock()
	if isArray {
		return nil, fmt.Errorf("sciql: DELETE applies to tables; blank array cells with UPDATE %s SET <attr> = NULL", s.Table)
	}
	if !isTable {
		return nil, fmt.Errorf("sciql: unknown table %q", s.Table)
	}
	rel, err := e.resolve(TableRef{Name: s.Table})
	if err != nil {
		return nil, err
	}
	ev := &env{rels: []*relation{rel}, rows: []int{0}}
	var keep []int
	deleted := 0
	for row := 0; row < rel.rows; row++ {
		ev.rows[0] = row
		match := true
		if s.Where != nil {
			match, err = evalBool(s.Where, ev)
			if err != nil {
				return nil, err
			}
		}
		if match {
			deleted++
		} else {
			keep = append(keep, row)
		}
	}
	compacted := t.Gather(keep)
	e.mu.Lock()
	t.Cols = compacted.Cols
	e.mu.Unlock()
	return &Result{Affected: deleted}, nil
}

func (e *Engine) updateTable(t *column.Table, s *UpdateStmt) (*Result, error) {
	for col := range s.Set {
		if t.Col(col) == nil {
			return nil, fmt.Errorf("sciql: table %q has no column %q", t.Name, col)
		}
	}
	rel, err := e.resolve(TableRef{Name: t.Name})
	if err != nil {
		return nil, err
	}
	ev := &env{rels: []*relation{rel}, rows: []int{0}}
	affected := 0
	type pending struct {
		row int
		col string
		val any
	}
	var writes []pending
	for row := 0; row < rel.rows; row++ {
		ev.rows[0] = row
		if s.Where != nil {
			ok, err := evalBool(s.Where, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		for col, expr := range s.Set {
			v, err := evalExpr(expr, ev)
			if err != nil {
				return nil, err
			}
			writes = append(writes, pending{row: row, col: col, val: v})
		}
		affected++
	}
	// Apply by rebuilding the affected columns (columns are append-only
	// vectors; in-place mutation is fine for same-type scalars).
	for _, w := range writes {
		c := t.Col(w.col)
		if err := setColumnValue(c, w.row, w.val); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: affected}, nil
}

func setColumnValue(c *column.Column, row int, v any) error {
	if v == nil {
		c.SetNull(row)
		return nil
	}
	switch c.Typ {
	case column.Int64:
		switch x := v.(type) {
		case int64:
			c.Ints()[row] = x
		case float64:
			c.Ints()[row] = int64(x)
		default:
			return fmt.Errorf("sciql: cannot assign %T to BIGINT", v)
		}
	case column.Float64:
		f, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("sciql: cannot assign %T to DOUBLE", v)
		}
		c.Floats()[row] = f
	case column.String:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("sciql: cannot assign %T to VARCHAR", v)
		}
		c.Strs()[row] = s
	case column.Bool:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("sciql: cannot assign %T to BOOLEAN", v)
		}
		c.Bools()[row] = b
	}
	return nil
}
