package sciql

import "testing"

func TestDeleteFrom(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustExec(`DELETE FROM products WHERE temp < 305`)
	if res.Affected != 2 {
		t.Fatalf("deleted = %d", res.Affected)
	}
	left := e.MustExec(`SELECT id FROM products ORDER BY id`).Table
	if left.NumRows() != 2 || left.Col("id").Int(0) != 1 || left.Col("id").Int(1) != 3 {
		t.Fatalf("remaining = %v", left.Col("id").Ints())
	}
	// Delete everything.
	resAll := e.MustExec(`DELETE FROM products`)
	if resAll.Affected != 2 {
		t.Fatalf("delete all = %d", resAll.Affected)
	}
	if e.MustExec(`SELECT count(*) AS n FROM products`).Table.Col("n").Int(0) != 0 {
		t.Fatal("table should be empty")
	}
	// The table still accepts inserts after compaction.
	e.MustExec(`INSERT INTO products VALUES (9, 'new', 300.0, false)`)
	if e.MustExec(`SELECT count(*) AS n FROM products`).Table.Col("n").Int(0) != 1 {
		t.Fatal("insert after delete")
	}
}

func TestDeleteErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Exec(`DELETE FROM ghost`); err == nil {
		t.Fatal("unknown table")
	}
	e.MustExec(`CREATE ARRAY arr (x INT DIMENSION [4], v DOUBLE)`)
	if _, err := e.Exec(`DELETE FROM arr`); err == nil {
		t.Fatal("delete from array should be rejected")
	}
	if _, err := e.Exec(`DELETE products`); err == nil {
		t.Fatal("missing FROM")
	}
	if _, err := e.Exec(`DELETE FROM products WHERE ghost = 1`); err == nil {
		t.Fatal("unknown column in WHERE")
	}
}
