package sciql

import (
	"strings"
	"testing"

	"repro/internal/column"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	e.MustExec(`CREATE TABLE products (id BIGINT, name VARCHAR, temp DOUBLE, hot BOOLEAN)`)
	e.MustExec(`INSERT INTO products VALUES
		(1, 'alpha', 311.5, true),
		(2, 'bravo', 290.0, false),
		(3, 'charlie', 320.25, true),
		(4, 'delta', 300.0, false)`)
	return e
}

func TestCreateInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustExec(`SELECT id, name FROM products WHERE temp > 305 ORDER BY id`)
	tbl := res.Table
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Col("name").Str(0) != "alpha" || tbl.Col("name").Str(1) != "charlie" {
		t.Fatalf("names = %v", tbl.Col("name").Strs())
	}
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	tbl := e.MustExec(`SELECT * FROM products`).Table
	if len(tbl.Fields) != 4 || tbl.NumRows() != 4 {
		t.Fatalf("shape = %dx%d", tbl.NumRows(), len(tbl.Fields))
	}
}

func TestExpressionsAndAliases(t *testing.T) {
	e := newTestEngine(t)
	tbl := e.MustExec(`SELECT id * 2 AS double_id, temp - 273.15 celsius FROM products WHERE id = 1`).Table
	if tbl.Col("double_id").Int(0) != 2 {
		t.Fatal("arith alias")
	}
	if c := tbl.Col("celsius").Float(0); c < 38 || c > 39 {
		t.Fatalf("celsius = %g", c)
	}
}

func TestWhereOperators(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		where string
		want  int
	}{
		{`temp >= 300 AND temp <= 315`, 2},
		{`temp BETWEEN 300 AND 315`, 2},
		{`temp NOT BETWEEN 300 AND 315`, 2},
		{`NOT hot`, 2},
		{`hot = true`, 2},
		{`name = 'alpha' OR name = 'delta'`, 2},
		{`name <> 'alpha'`, 3},
		{`id IN (1, 3)`, 2},
		{`id NOT IN (1, 3)`, 2},
		{`name LIKE 'a'`, 0}, // LIKE unsupported -> parse/eval error expected instead
	}
	for _, c := range cases[:9] {
		tbl := e.MustExec(`SELECT id FROM products WHERE ` + c.where).Table
		if tbl.NumRows() != c.want {
			t.Errorf("WHERE %s: rows = %d, want %d", c.where, tbl.NumRows(), c.want)
		}
	}
	if _, err := e.Exec(`SELECT id FROM products WHERE name LIKE 'a%'`); err == nil {
		t.Error("LIKE should be rejected")
	}
}

func TestAggregates(t *testing.T) {
	e := newTestEngine(t)
	tbl := e.MustExec(`SELECT count(*) AS n, avg(temp) AS m, min(temp) AS lo, max(temp) AS hi, sum(id) AS s FROM products`).Table
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Col("n").Int(0) != 4 {
		t.Fatal("count")
	}
	if m := tbl.Col("m").Float(0); m < 305 || m > 306 {
		t.Fatalf("avg = %g", m)
	}
	if tbl.Col("lo").Float(0) != 290 || tbl.Col("hi").Float(0) != 320.25 {
		t.Fatal("min/max")
	}
	if tbl.Col("s").Int(0) != 10 {
		t.Fatal("sum int stays int")
	}
}

func TestGroupBy(t *testing.T) {
	e := newTestEngine(t)
	tbl := e.MustExec(`SELECT hot, count(*) AS n, avg(temp) AS m FROM products GROUP BY hot ORDER BY n`).Table
	if tbl.NumRows() != 2 {
		t.Fatalf("groups = %d", tbl.NumRows())
	}
	// Both groups have 2 members.
	if tbl.Col("n").Int(0) != 2 || tbl.Col("n").Int(1) != 2 {
		t.Fatalf("counts = %v", tbl.Col("n").Ints())
	}
}

func TestEmptyAggregate(t *testing.T) {
	e := newTestEngine(t)
	tbl := e.MustExec(`SELECT count(*) AS n, sum(temp) AS s FROM products WHERE id > 100`).Table
	if tbl.NumRows() != 1 || tbl.Col("n").Int(0) != 0 {
		t.Fatal("empty count")
	}
	if !tbl.Col("s").IsNull(0) {
		t.Fatal("empty sum should be NULL")
	}
}

func TestDistinctLimitOrder(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`INSERT INTO products VALUES (5, 'alpha', 311.5, true)`)
	tbl := e.MustExec(`SELECT DISTINCT name FROM products ORDER BY name`).Table
	if tbl.NumRows() != 4 {
		t.Fatalf("distinct rows = %d", tbl.NumRows())
	}
	if tbl.Col("name").Str(0) != "alpha" {
		t.Fatal("order")
	}
	lim := e.MustExec(`SELECT id FROM products ORDER BY id DESC LIMIT 2`).Table
	if lim.NumRows() != 2 || lim.Col("id").Int(0) != 5 {
		t.Fatalf("limit/desc = %v", lim.Col("id").Ints())
	}
}

func TestCaseExpr(t *testing.T) {
	e := newTestEngine(t)
	tbl := e.MustExec(`SELECT id, CASE WHEN temp > 310 THEN 'hot' WHEN temp > 295 THEN 'warm' ELSE 'cold' END AS class FROM products ORDER BY id`).Table
	want := []string{"hot", "cold", "hot", "warm"}
	for i, w := range want {
		if got := tbl.Col("class").Str(i); got != w {
			t.Errorf("row %d: %q, want %q", i, got, w)
		}
	}
	// CASE without ELSE yields NULL.
	tbl2 := e.MustExec(`SELECT CASE WHEN id > 100 THEN 1 END AS x FROM products LIMIT 1`).Table
	if !tbl2.Cols[0].IsNull(0) {
		t.Fatal("missing ELSE should be NULL")
	}
}

func TestScalarFunctions(t *testing.T) {
	e := NewEngine()
	tbl := e.MustExec(`SELECT abs(-5) a, sqrt(16.0) b, floor(2.7) c, ceil(2.1) d, power(2, 10) p, greatest(3, 9, 5) g, least(3, 9, 5) l, upper('fire') u, length('abc') n`).Table
	if tbl.Col("a").Int(0) != 5 {
		t.Fatal("abs")
	}
	if tbl.Col("b").Float(0) != 4 {
		t.Fatal("sqrt")
	}
	if tbl.Col("c").Int(0) != 2 || tbl.Col("d").Int(0) != 3 {
		t.Fatal("floor/ceil")
	}
	if tbl.Col("p").Float(0) != 1024 {
		t.Fatal("power")
	}
	if tbl.Col("g").Int(0) != 9 || tbl.Col("l").Int(0) != 3 {
		t.Fatal("greatest/least")
	}
	if tbl.Col("u").Str(0) != "FIRE" || tbl.Col("n").Int(0) != 3 {
		t.Fatal("string funcs")
	}
}

func TestErrorCases(t *testing.T) {
	e := newTestEngine(t)
	for _, q := range []string{
		`SELECT ghost FROM products`,
		`SELECT id FROM ghost_table`,
		`SELECT id FROM products WHERE temp / 0 > 1`,
		`SELECT sqrt(-1) FROM products`,
		`INSERT INTO ghost VALUES (1)`,
		`SELECT`,
		`SELECT id FROM products WHERE`,
		`CREATE TABLE t2 (x NOTATYPE)`,
		`SELECT unknown_func(id) FROM products`,
		`UPDATE ghost SET x = 1`,
		`DROP TABLE ghost`,
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestUpdateTable(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustExec(`UPDATE products SET temp = temp + 10 WHERE hot`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	tbl := e.MustExec(`SELECT temp FROM products WHERE id = 1`).Table
	if tbl.Col("temp").Float(0) != 321.5 {
		t.Fatalf("temp = %g", tbl.Col("temp").Float(0))
	}
	// Multi-column set.
	e.MustExec(`UPDATE products SET name = 'renamed', hot = false WHERE id = 1`)
	tbl2 := e.MustExec(`SELECT name, hot FROM products WHERE id = 1`).Table
	if tbl2.Col("name").Str(0) != "renamed" || tbl2.Col("hot").BoolAt(0) {
		t.Fatal("multi-set")
	}
}

func TestDrop(t *testing.T) {
	e := newTestEngine(t)
	e.MustExec(`DROP TABLE products`)
	if _, err := e.Exec(`SELECT * FROM products`); err == nil {
		t.Fatal("dropped table should be gone")
	}
}

func TestArrayCreateAndScan(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY img (y INT DIMENSION [4], x INT DIMENSION [4], v DOUBLE DEFAULT 0)`)
	a, err := e.Array("img")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 16 || len(a.Dims) != 2 {
		t.Fatal("shape")
	}
	// Cells scan as rows with dimension attributes.
	tbl := e.MustExec(`SELECT count(*) AS n FROM img`).Table
	if tbl.Col("n").Int(0) != 16 {
		t.Fatalf("cells = %d", tbl.Col("n").Int(0))
	}
	// Dimension coordinates are correct.
	tbl2 := e.MustExec(`SELECT y, x FROM img WHERE y = 2 AND x = 3`).Table
	if tbl2.NumRows() != 1 || tbl2.Col("y").Int(0) != 2 || tbl2.Col("x").Int(0) != 3 {
		t.Fatalf("coords = %v", tbl2.Row(0))
	}
}

func TestArrayUpdateAndDimensionPredicates(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY img (y INT DIMENSION [8], x INT DIMENSION [8], v DOUBLE)`)
	// Paint a gradient.
	e.MustExec(`UPDATE img SET v = y * 10 + x`)
	a, _ := e.Array("img")
	if a.Values["v"].At2(3, 4) != 34 {
		t.Fatalf("cell = %g", a.Values["v"].At2(3, 4))
	}
	// Cropping via dimension predicates (SciQL's demo "crop" step).
	crop := e.MustExec(`SELECT count(*) n, min(v) lo, max(v) hi FROM img WHERE y BETWEEN 2 AND 3 AND x BETWEEN 4 AND 6`).Table
	if crop.Col("n").Int(0) != 6 {
		t.Fatalf("crop cells = %d", crop.Col("n").Int(0))
	}
	if crop.Col("lo").Float(0) != 24 || crop.Col("hi").Float(0) != 36 {
		t.Fatalf("crop range = %g..%g", crop.Col("lo").Float(0), crop.Col("hi").Float(0))
	}
	// Conditional update (classification step).
	res := e.MustExec(`UPDATE img SET v = 1 WHERE v >= 50`)
	if res.Affected != 24 { // rows y=5,6,7: 8 cells each, plus y<5? no: v>=50 means y*10+x>=50 -> y>=5
		t.Fatalf("affected = %d", res.Affected)
	}
	// Self-referencing update reads pre-update values.
	e.MustExec(`UPDATE img SET v = v + 1`)
	if a.Values["v"].At2(0, 0) != 1 {
		t.Fatal("self-ref update")
	}
}

func TestArrayTiling(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY img (y INT DIMENSION [4], x INT DIMENSION [4], v DOUBLE)`)
	e.MustExec(`UPDATE img SET v = y * 4 + x`)
	// 2x2 tiling via GROUP BY on dimension arithmetic — SciQL structured
	// grouping (the feature-extraction patch step).
	tbl := e.MustExec(`SELECT y / 2 AS ty, x / 2 AS tx, avg(v) AS m FROM img GROUP BY y / 2, x / 2 ORDER BY ty, tx`).Table
	if tbl.NumRows() != 4 {
		t.Fatalf("tiles = %d", tbl.NumRows())
	}
	// Tile (0,0) holds {0,1,4,5}: mean 2.5.
	if tbl.Col("m").Float(0) != 2.5 {
		t.Fatalf("tile mean = %g", tbl.Col("m").Float(0))
	}
	// Tile (1,1) holds {10,11,14,15}: mean 12.5.
	if tbl.Col("m").Float(3) != 12.5 {
		t.Fatalf("tile mean = %g", tbl.Col("m").Float(3))
	}
}

func TestArrayJoinAlignedZip(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY a (y INT DIMENSION [16], x INT DIMENSION [16], v DOUBLE)`)
	e.MustExec(`CREATE ARRAY b (y INT DIMENSION [16], x INT DIMENSION [16], v DOUBLE)`)
	e.MustExec(`UPDATE a SET v = y + x`)
	e.MustExec(`UPDATE b SET v = y`)
	// Band-difference query (the hotspot detection idiom: IR39 - IR108).
	tbl := e.MustExec(`SELECT count(*) AS n, max(a.v - b.v) AS d FROM a, b WHERE a.y = b.y AND a.x = b.x`).Table
	if tbl.Col("n").Int(0) != 256 {
		t.Fatalf("zip rows = %d", tbl.Col("n").Int(0))
	}
	if tbl.Col("d").Float(0) != 15 {
		t.Fatalf("max diff = %g", tbl.Col("d").Float(0))
	}
}

func TestTableJoinHash(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE a (k BIGINT, name VARCHAR)`)
	e.MustExec(`CREATE TABLE b (k BIGINT, score DOUBLE)`)
	e.MustExec(`INSERT INTO a VALUES (1, 'x'), (2, 'y'), (3, 'z')`)
	e.MustExec(`INSERT INTO b VALUES (2, 0.5), (3, 0.7), (3, 0.9), (4, 0.1)`)
	tbl := e.MustExec(`SELECT a.name, b.score FROM a, b WHERE a.k = b.k ORDER BY score`).Table
	if tbl.NumRows() != 3 {
		t.Fatalf("join rows = %d", tbl.NumRows())
	}
	if tbl.Col("name").Str(0) != "y" || tbl.Col("score").Float(2) != 0.9 {
		t.Fatalf("join contents: %v %v", tbl.Col("name").Strs(), tbl.Col("score").Floats())
	}
	// Join with residual filter.
	tbl2 := e.MustExec(`SELECT a.name FROM a, b WHERE a.k = b.k AND b.score > 0.6`).Table
	if tbl2.NumRows() != 2 {
		t.Fatalf("residual join rows = %d", tbl2.NumRows())
	}
}

func TestCrossJoinGuard(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY big1 (y INT DIMENSION [4000], x INT DIMENSION [4000], v DOUBLE)`)
	e.MustExec(`CREATE ARRAY big2 (y INT DIMENSION [4000], x INT DIMENSION [4000], v DOUBLE)`)
	if _, err := e.Exec(`SELECT count(*) FROM big1, big2`); err == nil {
		t.Fatal("unbounded cross product should be rejected")
	}
}

func TestCreateArrayAsSelect(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE ARRAY src (y INT DIMENSION [4], x INT DIMENSION [4], v DOUBLE)`)
	e.MustExec(`UPDATE src SET v = y * 4 + x`)
	// Crop into a new array: dimension coords shifted to start at 0.
	e.MustExec(`CREATE ARRAY crop AS SELECT y - 1 AS y, x - 1 AS x, v FROM src WHERE y BETWEEN 1 AND 2 AND x BETWEEN 1 AND 2`)
	a, err := e.Array("crop")
	if err != nil {
		t.Fatal(err)
	}
	if a.Dims[0].Size != 2 || a.Dims[1].Size != 2 {
		t.Fatalf("crop dims = %v", a.Dims)
	}
	if a.Values["v"].At2(0, 0) != 5 || a.Values["v"].At2(1, 1) != 10 {
		t.Fatalf("crop cells = %g %g", a.Values["v"].At2(0, 0), a.Values["v"].At2(1, 1))
	}
	// Errors: non-integer dims, negative coords.
	if _, err := e.Exec(`CREATE ARRAY bad AS SELECT v, v FROM src`); err == nil {
		t.Fatal("non-integer dimension should fail")
	}
	if _, err := e.Exec(`CREATE ARRAY bad AS SELECT y - 10 AS y, v FROM src`); err == nil {
		t.Fatal("negative coordinate should fail")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := NewEngine()
	tbl := e.MustExec(`SELECT 1 + 1 AS two, 'fire' AS s, true AS b`).Table
	if tbl.Col("two").Int(0) != 2 || tbl.Col("s").Str(0) != "fire" || !tbl.Col("b").BoolAt(0) {
		t.Fatal("constant select")
	}
}

func TestNullHandling(t *testing.T) {
	e := NewEngine()
	e.MustExec(`CREATE TABLE t (x BIGINT, y DOUBLE)`)
	e.MustExec(`INSERT INTO t VALUES (1, 2.0), (2, NULL), (NULL, 4.0)`)
	// NULL never matches comparisons.
	if got := e.MustExec(`SELECT x FROM t WHERE y > 0`).Table.NumRows(); got != 2 {
		t.Fatalf("rows = %d", got)
	}
	// IS NULL / IS NOT NULL.
	if got := e.MustExec(`SELECT x FROM t WHERE y IS NULL`).Table.NumRows(); got != 1 {
		t.Fatal("IS NULL")
	}
	if got := e.MustExec(`SELECT x FROM t WHERE x IS NOT NULL`).Table.NumRows(); got != 2 {
		t.Fatal("IS NOT NULL")
	}
	// Aggregates skip NULLs.
	tbl := e.MustExec(`SELECT count(y) AS c, avg(y) AS m FROM t`).Table
	if tbl.Col("c").Int(0) != 2 || tbl.Col("m").Float(0) != 3 {
		t.Fatalf("agg over nulls = %v %v", tbl.Col("c").Int(0), tbl.Col("m").Float(0))
	}
	// NULL propagates through arithmetic.
	tbl2 := e.MustExec(`SELECT y + 1 AS z FROM t WHERE x = 2`).Table
	if !tbl2.Col("z").IsNull(0) {
		t.Fatal("null arithmetic")
	}
}

func TestStringConcat(t *testing.T) {
	e := NewEngine()
	tbl := e.MustExec(`SELECT 'a' || 'b' || 'c' AS s`).Table
	if tbl.Col("s").Str(0) != "abc" {
		t.Fatal("concat")
	}
}

func TestRegisterExternalTable(t *testing.T) {
	e := NewEngine()
	tbl := column.NewTable("ext", column.Field{Name: "id", Typ: column.Int64})
	if err := tbl.AppendRow(int64(7)); err != nil {
		t.Fatal(err)
	}
	e.RegisterTable(tbl)
	got := e.MustExec(`SELECT id FROM ext`).Table
	if got.Col("id").Int(0) != 7 {
		t.Fatal("registered table")
	}
}

func TestParseErrorMessagesMentionOffset(t *testing.T) {
	_, err := Parse(`SELECT FROM x`)
	if err == nil || !strings.Contains(err.Error(), "sciql:") {
		t.Fatalf("err = %v", err)
	}
}

func TestComments(t *testing.T) {
	e := NewEngine()
	tbl := e.MustExec("SELECT 1 AS x -- trailing comment\n").Table
	if tbl.Col("x").Int(0) != 1 {
		t.Fatal("comment handling")
	}
}
