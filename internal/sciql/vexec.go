package sciql

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"repro/internal/array"
	"repro/internal/column"
)

// Vectorized SciQL execution. Mirroring the stSPARQL id-space executor
// (PR 2), statements are compiled into typed kernels that run over
// columnar data — table columns, array value planes and virtual dimension
// columns — guided by selection vectors, instead of boxing every cell
// into `any` and dispatching through per-row environment lookups.
//
// Core ideas:
//
//   - A solution space: for a single relation it is the row (cell) range
//     itself; for an aligned array zip both arrays share the index; for a
//     hash join it is the pair list (lpos, rpos). No [][]int combination
//     materialisation.
//   - Selection vectors: WHERE conjuncts filter an implicit [0, n) range
//     (or the previous conjunct's survivors) left to right, preserving
//     the legacy evaluator's short-circuit semantics row for row.
//   - Dimension predicate pushdown: `y BETWEEN`, `x =` and friends over
//     array dimensions become subarray index ranges enumerated directly,
//     never scanned and post-filtered.
//   - Fused UPDATE: array and table updates evaluate the SET kernels
//     over the surviving selection and write in place in one pass
//     (buffered per statement so an evaluation error leaves the target
//     untouched, exactly like the legacy two-phase writer).
//
// Anything the compiler cannot prove equivalent (ambiguous columns,
// dynamic type mixes, cross products, >2 relations, exotic expressions)
// falls back to the legacy interpreter, which remains the semantic
// reference; the randomized equivalence suite pins the two against each
// other.

type vkind uint8

const (
	kInt vkind = iota + 1
	kFloat
	kStr
	kBool
)

func kindOfType(t column.Type) vkind {
	switch t {
	case column.Int64:
		return kInt
	case column.Float64:
		return kFloat
	case column.String:
		return kStr
	case column.Bool:
		return kBool
	}
	return 0
}

func (k vkind) columnType() column.Type {
	switch k {
	case kInt:
		return column.Int64
	case kStr:
		return column.String
	case kBool:
		return column.Bool
	default:
		return column.Float64
	}
}

// vec is a typed value vector produced by a kernel; exactly one data
// slice is populated. null[i] marks NULL (nil = no nulls).
type vec struct {
	kind vkind
	i    []int64
	f    []float64
	s    []string
	b    []bool
	null []bool
}

func newVec(kind vkind, n int) *vec {
	v := &vec{kind: kind}
	switch kind {
	case kInt:
		v.i = make([]int64, n)
	case kFloat:
		v.f = make([]float64, n)
	case kStr:
		v.s = make([]string, n)
	case kBool:
		v.b = make([]bool, n)
	}
	return v
}

func (v *vec) len() int {
	switch v.kind {
	case kInt:
		return len(v.i)
	case kFloat:
		return len(v.f)
	case kStr:
		return len(v.s)
	case kBool:
		return len(v.b)
	}
	return 0
}

func (v *vec) isNull(i int) bool { return v.null != nil && v.null[i] }

func (v *vec) setNull(i int) {
	if v.null == nil {
		v.null = make([]bool, v.len())
	}
	v.null[i] = true
}

// numAt returns the numeric value at i as float64 (kInt/kFloat only).
func (v *vec) numAt(i int) float64 {
	if v.kind == kInt {
		return float64(v.i[i])
	}
	return v.f[i]
}

// vrel is a resolved FROM source for the vectorized executor.
type vrel struct {
	alias   string
	names   []string
	rows    int
	tbl     *column.Table
	arr     *ArrayObject
	strides []int // arrays: row-major stride per dimension
}

func (r *vrel) nd() int {
	if r.arr == nil {
		return 0
	}
	return len(r.arr.Dims)
}

func (e *Engine) resolveV(ref TableRef) (*vrel, bool) {
	e.mu.RLock()
	t, isTable := e.tables[ref.Name]
	a, isArray := e.arrays[ref.Name]
	e.mu.RUnlock()
	alias := ref.Alias
	if alias == "" {
		alias = ref.Name
	}
	switch {
	case isTable:
		names := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			names[i] = f.Name
		}
		return &vrel{alias: alias, names: names, rows: t.NumRows(), tbl: t}, true
	case isArray:
		var names []string
		for _, d := range a.Dims {
			names = append(names, d.Name)
		}
		names = append(names, a.order...)
		nd := len(a.Dims)
		strides := make([]int, nd)
		s := 1
		for i := nd - 1; i >= 0; i-- {
			strides[i] = s
			s *= a.Dims[i].Size
		}
		return &vrel{alias: alias, names: names, rows: a.Size(), arr: a, strides: strides}, true
	default:
		return nil, false
	}
}

// bindCol resolves a column reference across the relations with the
// legacy lookup rules (a qualifier restricts to matching aliases; an
// unqualified name must be unique across all relations).
func bindCol(rels []*vrel, c *ColRef) (relIdx, colIdx int, ok bool) {
	relIdx, colIdx = -1, -1
	for ri, r := range rels {
		if c.Table != "" && r.alias != c.Table {
			continue
		}
		for ci, n := range r.names {
			if n == c.Name {
				if relIdx >= 0 {
					return 0, 0, false // ambiguous
				}
				relIdx, colIdx = ri, ci
			}
		}
	}
	if relIdx < 0 {
		return 0, 0, false
	}
	return relIdx, colIdx, true
}

// colAcc reads one bound column: a table column, a virtual array
// dimension, or an array value plane.
type colAcc struct {
	kind   vkind
	rel    int
	col    *column.Column // table columns
	img    *array.Array   // array value planes
	stride int            // virtual dims: value = base/stride % size
	size   int
}

func mkAcc(rels []*vrel, relIdx, colIdx int) *colAcc {
	r := rels[relIdx]
	if r.tbl != nil {
		c := r.tbl.Cols[colIdx]
		return &colAcc{kind: kindOfType(c.Typ), rel: relIdx, col: c}
	}
	nd := r.nd()
	if colIdx < nd {
		return &colAcc{kind: kInt, rel: relIdx, stride: r.strides[colIdx], size: r.arr.Dims[colIdx].Size}
	}
	img := r.arr.Values[r.arr.order[colIdx-nd]]
	return &colAcc{kind: kFloat, rel: relIdx, img: img}
}

// vctx is the execution context: relations plus the solution-to-base-row
// mapping (nil mapping = identity).
type vctx struct {
	rels []*vrel
	pos  [][]int32
	n    int
	// ident caches the materialized identity selection.
	ident []int32
}

// full materializes sel (nil meaning the whole solution range).
func (x *vctx) full(sel []int32) []int32 {
	if sel != nil {
		return sel
	}
	if x.ident == nil {
		x.ident = make([]int32, x.n)
		for i := range x.ident {
			x.ident[i] = int32(i)
		}
	}
	return x.ident
}

func (x *vctx) selLen(sel []int32) int {
	if sel == nil {
		return x.n
	}
	return len(sel)
}

// base maps a solution id to the accessor's relation base row.
func (a *colAcc) base(x *vctx, sol int32) int32 {
	if p := x.pos[a.rel]; p != nil {
		return p[sol]
	}
	return sol
}

// load evaluates the column over sel into a fresh vec.
func (a *colAcc) load(x *vctx, sel []int32) *vec {
	sel = x.full(sel)
	out := newVec(a.kind, len(sel))
	switch {
	case a.col != nil:
		c := a.col
		switch a.kind {
		case kInt:
			src := c.Ints()
			for i, sol := range sel {
				out.i[i] = src[a.base(x, sol)]
			}
		case kFloat:
			src := c.Floats()
			for i, sol := range sel {
				out.f[i] = src[a.base(x, sol)]
			}
		case kStr:
			src := c.Strs()
			for i, sol := range sel {
				out.s[i] = src[a.base(x, sol)]
			}
		case kBool:
			src := c.Bools()
			for i, sol := range sel {
				out.b[i] = src[a.base(x, sol)]
			}
		}
		// NULL slots hold the zero value (legacy columns are built with
		// AppendNull, so downstream raw readers see zeros either way).
		for i, sol := range sel {
			if c.IsNull(int(a.base(x, sol))) {
				out.setNull(i)
				switch a.kind {
				case kInt:
					out.i[i] = 0
				case kFloat:
					out.f[i] = 0
				case kStr:
					out.s[i] = ""
				case kBool:
					out.b[i] = false
				}
			}
		}
	case a.img != nil:
		img := a.img
		for i, sol := range sel {
			b := a.base(x, sol)
			if img.IsNull(int(b)) {
				out.setNull(i)
				continue
			}
			out.f[i] = img.Data[b]
		}
	default: // virtual dimension
		stride, size := int32(a.stride), int32(a.size)
		for i, sol := range sel {
			out.i[i] = int64(a.base(x, sol) / stride % size)
		}
	}
	return out
}

// intBase returns the exact int64 value and validity at a base row
// (kInt accessors only).
func (a *colAcc) intBase(b int32) (int64, bool) {
	if a.col != nil {
		if a.col.IsNull(int(b)) {
			return 0, false
		}
		return a.col.Int(int(b)), true
	}
	return int64(b / int32(a.stride) % int32(a.size)), true
}

// numBase returns the numeric value and validity at a base row without
// materialising a vec (numeric accessors only).
func (a *colAcc) numBase(b int32) (float64, bool) {
	switch {
	case a.col != nil:
		if a.col.IsNull(int(b)) {
			return 0, false
		}
		if a.kind == kInt {
			return float64(a.col.Int(int(b))), true
		}
		return a.col.Float(int(b)), true
	case a.img != nil:
		if a.img.IsNull(int(b)) {
			return 0, false
		}
		return a.img.Data[b], true
	default:
		return float64(b / int32(a.stride) % int32(a.size)), true
	}
}

// kernel evaluates one expression over a selection.
type kernel struct {
	kind      vkind
	isConst   bool
	constNull bool
	ci        int64
	cf        float64
	cs        string
	cb        bool
	acc       *colAcc // set for bare column references
	eval      func(x *vctx, sel []int32) (*vec, error)
}

// pfilter evaluates a predicate over sel (nil = full range), returning
// the INDICES within sel of the rows where it is true (NULL and false
// rows are dropped, matching evalBool).
type pfilter func(x *vctx, sel []int32) ([]int32, error)

// gatherSel maps filter result indices back to solution ids, reusing
// the index slice.
func gatherSel(sel, idx []int32) []int32 {
	if sel == nil {
		return idx
	}
	for i, ix := range idx {
		idx[i] = sel[ix]
	}
	return idx
}

// complementIdx returns the indices of [0, n) not present in sorted idx.
func complementIdx(idx []int32, n int) []int32 {
	out := make([]int32, 0, n-len(idx))
	k := 0
	for i := int32(0); i < int32(n); i++ {
		if k < len(idx) && idx[k] == i {
			k++
			continue
		}
		out = append(out, i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Expression compilation

type vcompiler struct {
	rels []*vrel
}

var errVFallback = fmt.Errorf("sciql: vectorized compile fallback")

func (vc *vcompiler) kernel(e Expr) (*kernel, error) {
	switch t := e.(type) {
	case *Literal:
		return constKernel(t.Value)
	case *ColRef:
		ri, ci, ok := bindCol(vc.rels, t)
		if !ok {
			return nil, errVFallback
		}
		acc := mkAcc(vc.rels, ri, ci)
		return &kernel{
			kind: acc.kind,
			acc:  acc,
			eval: func(x *vctx, sel []int32) (*vec, error) { return acc.load(x, sel), nil },
		}, nil
	case *BinaryExpr:
		return vc.binary(t)
	case *UnaryExpr:
		inner, err := vc.kernel(t.X)
		if err != nil {
			return nil, err
		}
		return vc.unary(t.Op, inner)
	case *CallExpr:
		return vc.call(t)
	case *BetweenExpr:
		return vc.between(t)
	case *CaseExpr:
		return vc.caseExpr(t)
	case *IsNullExpr:
		inner, err := vc.kernel(t.X)
		if err != nil {
			return nil, err
		}
		not := t.Not
		return &kernel{kind: kBool, eval: func(x *vctx, sel []int32) (*vec, error) {
			iv, err := inner.eval(x, sel)
			if err != nil {
				return nil, err
			}
			out := newVec(kBool, iv.len())
			for i := range out.b {
				out.b[i] = iv.isNull(i) != not
			}
			return out, nil
		}}, nil
	case *InExpr:
		return vc.inExpr(t)
	}
	return nil, errVFallback
}

func constKernel(val any) (*kernel, error) {
	k := &kernel{isConst: true}
	switch v := val.(type) {
	case nil:
		k.kind, k.constNull = kFloat, true
	case int64:
		k.kind, k.ci = kInt, v
	case float64:
		k.kind, k.cf = kFloat, v
	case string:
		k.kind, k.cs = kStr, v
	case bool:
		k.kind, k.cb = kBool, v
	default:
		return nil, errVFallback
	}
	k.eval = func(x *vctx, sel []int32) (*vec, error) {
		n := x.selLen(sel)
		out := newVec(k.kind, n)
		switch {
		case k.constNull:
			out.null = make([]bool, n)
			for i := range out.null {
				out.null[i] = true
			}
		case k.kind == kInt:
			for i := range out.i {
				out.i[i] = k.ci
			}
		case k.kind == kFloat:
			for i := range out.f {
				out.f[i] = k.cf
			}
		case k.kind == kStr:
			for i := range out.s {
				out.s[i] = k.cs
			}
		case k.kind == kBool:
			for i := range out.b {
				out.b[i] = k.cb
			}
		}
		return out, nil
	}
	return k, nil
}

func isNumKind(k vkind) bool { return k == kInt || k == kFloat }

func (vc *vcompiler) binary(t *BinaryExpr) (*kernel, error) {
	if t.Op == "AND" || t.Op == "OR" {
		return vc.logicalValue(t)
	}
	l, err := vc.kernel(t.Left)
	if err != nil {
		return nil, err
	}
	r, err := vc.kernel(t.Right)
	if err != nil {
		return nil, err
	}
	op := t.Op
	switch op {
	case "||":
		// Legacy stringifies anything; only the all-string case is
		// compiled, the rest falls back.
		if l.kind != kStr || r.kind != kStr {
			return nil, errVFallback
		}
		return &kernel{kind: kStr, eval: func(x *vctx, sel []int32) (*vec, error) {
			lv, rv, err := evalPair(l, r, x, sel)
			if err != nil {
				return nil, err
			}
			out := newVec(kStr, lv.len())
			for i := range out.s {
				if lv.isNull(i) || rv.isNull(i) {
					out.setNull(i)
					continue
				}
				out.s[i] = lv.s[i] + rv.s[i]
			}
			return out, nil
		}}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return compareKernel(op, l, r)
	case "+", "-", "*", "/", "%":
		return arithKernel(op, l, r)
	}
	return nil, errVFallback
}

func evalPair(l, r *kernel, x *vctx, sel []int32) (*vec, *vec, error) {
	lv, err := l.eval(x, sel)
	if err != nil {
		return nil, nil, err
	}
	rv, err := r.eval(x, sel)
	if err != nil {
		return nil, nil, err
	}
	return lv, rv, nil
}

func compareKernel(op string, l, r *kernel) (*kernel, error) {
	// Static type admissibility mirrors applyBinary.
	switch {
	case isNumKind(l.kind) && isNumKind(r.kind):
	case l.kind == kStr && r.kind == kStr:
	case l.kind == kBool && r.kind == kBool:
		if op != "=" && op != "<>" {
			return nil, errVFallback
		}
	default:
		// Mixed types: legacy errors per evaluated row; a NULL literal
		// operand however compares as NULL with anything.
		if !(l.isConst && l.constNull) && !(r.isConst && r.constNull) {
			return nil, errVFallback
		}
	}
	nullConst := (l.isConst && l.constNull) || (r.isConst && r.constNull)
	return &kernel{kind: kBool, eval: func(x *vctx, sel []int32) (*vec, error) {
		n := x.selLen(sel)
		out := newVec(kBool, n)
		// Operands always evaluate (their errors surface even when the
		// comparison result is forced NULL by a NULL literal).
		lv, rv, err := evalPair(l, r, x, sel)
		if err != nil {
			return nil, err
		}
		if nullConst {
			out.null = make([]bool, n)
			for i := range out.null {
				out.null[i] = true
			}
			return out, nil
		}
		bothInt := lv.kind == kInt && rv.kind == kInt
		for i := 0; i < n; i++ {
			if lv.isNull(i) || rv.isNull(i) {
				out.setNull(i)
				continue
			}
			var c int
			switch {
			case bothInt:
				c = cmp3Int(lv.i[i], rv.i[i])
			case lv.kind == kStr:
				c = strings.Compare(lv.s[i], rv.s[i])
			case lv.kind == kBool:
				c = cmp3Bool(lv.b[i], rv.b[i])
			default:
				c = cmp3Float(lv.numAt(i), rv.numAt(i))
			}
			out.b[i] = cmpOpHolds(op, c)
		}
		return out, nil
	}}, nil
}

func cmp3Int(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmp3Float(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	return 2 // NaN: no comparison holds except <>
}

func cmp3Bool(a, b bool) int {
	if a == b {
		return 0
	}
	return 1
}

func cmpOpHolds(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c == -1
	case "<=":
		return c == -1 || c == 0
	case ">":
		return c == 1
	case ">=":
		return c == 1 || c == 0
	}
	return false
}

func arithKernel(op string, l, r *kernel) (*kernel, error) {
	if !isNumKind(l.kind) || !isNumKind(r.kind) {
		if (l.isConst && l.constNull) || (r.isConst && r.constNull) {
			// NULL arithmetic yields NULL regardless of the other side,
			// but the other side still evaluates (its errors surface).
			return nullPropKernel(l, r), nil
		}
		return nil, errVFallback
	}
	bothInt := l.kind == kInt && r.kind == kInt
	kind := kFloat
	if bothInt {
		kind = kInt
	}
	return &kernel{kind: kind, eval: func(x *vctx, sel []int32) (*vec, error) {
		lv, rv, err := evalPair(l, r, x, sel)
		if err != nil {
			return nil, err
		}
		n := lv.len()
		out := newVec(kind, n)
		for i := 0; i < n; i++ {
			if lv.isNull(i) || rv.isNull(i) {
				out.setNull(i)
				continue
			}
			if bothInt {
				a, b := lv.i[i], rv.i[i]
				switch op {
				case "+":
					out.i[i] = a + b
				case "-":
					out.i[i] = a - b
				case "*":
					out.i[i] = a * b
				case "/":
					if b == 0 {
						return nil, fmt.Errorf("sciql: division by zero")
					}
					out.i[i] = a / b
				case "%":
					if b == 0 {
						return nil, fmt.Errorf("sciql: modulo by zero")
					}
					out.i[i] = a % b
				}
				continue
			}
			a, b := lv.numAt(i), rv.numAt(i)
			switch op {
			case "+":
				out.f[i] = a + b
			case "-":
				out.f[i] = a - b
			case "*":
				out.f[i] = a * b
			case "/":
				if b == 0 {
					return nil, fmt.Errorf("sciql: division by zero")
				}
				out.f[i] = a / b
			case "%":
				if b == 0 {
					return nil, fmt.Errorf("sciql: modulo by zero")
				}
				out.f[i] = math.Mod(a, b)
			}
		}
		return out, nil
	}}, nil
}

// nullPropKernel yields all-NULL results after evaluating operands for
// their side effects (errors).
func nullPropKernel(operands ...*kernel) *kernel {
	k := &kernel{kind: kFloat, isConst: true, constNull: true}
	k.eval = func(x *vctx, sel []int32) (*vec, error) {
		for _, op := range operands {
			if _, err := op.eval(x, sel); err != nil {
				return nil, err
			}
		}
		n := x.selLen(sel)
		out := newVec(kFloat, n)
		out.null = make([]bool, n)
		for i := range out.null {
			out.null[i] = true
		}
		return out, nil
	}
	return k
}

func (vc *vcompiler) unary(op string, inner *kernel) (*kernel, error) {
	switch op {
	case "-":
		if !isNumKind(inner.kind) {
			if inner.isConst && inner.constNull {
				return nullPropKernel(inner), nil
			}
			return nil, errVFallback
		}
		kind := inner.kind
		return &kernel{kind: kind, eval: func(x *vctx, sel []int32) (*vec, error) {
			iv, err := inner.eval(x, sel)
			if err != nil {
				return nil, err
			}
			out := newVec(kind, iv.len())
			out.null = iv.null
			if kind == kInt {
				for i, v := range iv.i {
					out.i[i] = -v
				}
			} else {
				for i, v := range iv.f {
					out.f[i] = -v
				}
			}
			return out, nil
		}}, nil
	case "NOT":
		if inner.kind != kBool {
			if inner.isConst && inner.constNull {
				return nullPropKernel(inner), nil
			}
			return nil, errVFallback
		}
		return &kernel{kind: kBool, eval: func(x *vctx, sel []int32) (*vec, error) {
			iv, err := inner.eval(x, sel)
			if err != nil {
				return nil, err
			}
			out := newVec(kBool, iv.len())
			out.null = iv.null
			for i, v := range iv.b {
				out.b[i] = !v
			}
			return out, nil
		}}, nil
	}
	return nil, errVFallback
}

// logicalValue compiles AND/OR used as a value; like the legacy
// evaluator it collapses NULL to false and short-circuits, so the right
// side only runs on rows the left side did not decide.
func (vc *vcompiler) logicalValue(t *BinaryExpr) (*kernel, error) {
	lf, err := vc.pred(t.Left)
	if err != nil {
		return nil, err
	}
	rf, err := vc.pred(t.Right)
	if err != nil {
		return nil, err
	}
	isAnd := t.Op == "AND"
	return &kernel{kind: kBool, eval: func(x *vctx, sel []int32) (*vec, error) {
		n := x.selLen(sel)
		out := newVec(kBool, n)
		ltrue, err := lf(x, sel)
		if err != nil {
			return nil, err
		}
		sel = x.full(sel)
		if isAnd {
			// Right side evaluated only where the left was true.
			sub := make([]int32, len(ltrue))
			for i, ix := range ltrue {
				sub[i] = sel[ix]
			}
			rtrue, err := rf(x, sub)
			if err != nil {
				return nil, err
			}
			for _, j := range rtrue {
				out.b[ltrue[j]] = true
			}
			return out, nil
		}
		for _, ix := range ltrue {
			out.b[ix] = true
		}
		rest := complementIdx(ltrue, n)
		sub := make([]int32, len(rest))
		for i, ix := range rest {
			sub[i] = sel[ix]
		}
		rtrue, err := rf(x, sub)
		if err != nil {
			return nil, err
		}
		for _, j := range rtrue {
			out.b[rest[j]] = true
		}
		return out, nil
	}}, nil
}

func (vc *vcompiler) between(t *BetweenExpr) (*kernel, error) {
	xk, err := vc.kernel(t.X)
	if err != nil {
		return nil, err
	}
	lok, err := vc.kernel(t.Lo)
	if err != nil {
		return nil, err
	}
	hik, err := vc.kernel(t.Hi)
	if err != nil {
		return nil, err
	}
	ge, err := compareKernel(">=", xk, lok)
	if err != nil {
		return nil, err
	}
	le, err := compareKernel("<=", xk, hik)
	if err != nil {
		return nil, err
	}
	not := t.Not
	return &kernel{kind: kBool, eval: func(x *vctx, sel []int32) (*vec, error) {
		gv, err := ge.eval(x, sel)
		if err != nil {
			return nil, err
		}
		lv, err := le.eval(x, sel)
		if err != nil {
			return nil, err
		}
		out := newVec(kBool, gv.len())
		for i := range out.b {
			// Legacy BETWEEN returns NULL only when an operand is NULL,
			// which surfaces here as a NULL comparison result.
			if gv.isNull(i) || lv.isNull(i) {
				out.setNull(i)
				continue
			}
			res := gv.b[i] && lv.b[i]
			out.b[i] = res != not
		}
		return out, nil
	}}, nil
}

func (vc *vcompiler) caseExpr(t *CaseExpr) (*kernel, error) {
	type arm struct {
		cond pfilter
		then *kernel
	}
	arms := make([]arm, 0, len(t.Whens))
	kind := vkind(0)
	merge := func(k *kernel) bool {
		if k.isConst && k.constNull {
			return true
		}
		if kind == 0 {
			kind = k.kind
			return true
		}
		return k.kind == kind
	}
	for _, w := range t.Whens {
		cf, err := vc.pred(w.Cond)
		if err != nil {
			return nil, err
		}
		th, err := vc.kernel(w.Then)
		if err != nil {
			return nil, err
		}
		if !merge(th) {
			return nil, errVFallback
		}
		arms = append(arms, arm{cond: cf, then: th})
	}
	var elseK *kernel
	if t.Else != nil {
		ek, err := vc.kernel(t.Else)
		if err != nil {
			return nil, err
		}
		if !merge(ek) {
			return nil, errVFallback
		}
		elseK = ek
	}
	if kind == 0 {
		kind = kFloat // all branches NULL
	}
	outKind := kind
	return &kernel{kind: outKind, eval: func(x *vctx, sel []int32) (*vec, error) {
		n := x.selLen(sel)
		out := newVec(outKind, n)
		curSel := x.full(sel)
		// curSlot[i] is the output slot of curSel[i].
		curSlot := make([]int32, n)
		for i := range curSlot {
			curSlot[i] = int32(i)
		}
		scatter := func(k *kernel, subSel []int32, slots []int32) error {
			v, err := k.eval(x, subSel)
			if err != nil {
				return err
			}
			for i, slot := range slots {
				if v.isNull(i) {
					out.setNull(int(slot))
					continue
				}
				switch outKind {
				case kInt:
					out.i[slot] = v.i[i]
				case kFloat:
					out.f[slot] = v.f[i]
				case kStr:
					out.s[slot] = v.s[i]
				case kBool:
					out.b[slot] = v.b[i]
				}
			}
			return nil
		}
		for _, a := range arms {
			if len(curSel) == 0 {
				break
			}
			matched, err := a.cond(x, curSel)
			if err != nil {
				return nil, err
			}
			mSel := make([]int32, len(matched))
			mSlot := make([]int32, len(matched))
			for i, ix := range matched {
				mSel[i], mSlot[i] = curSel[ix], curSlot[ix]
			}
			if err := scatter(a.then, mSel, mSlot); err != nil {
				return nil, err
			}
			rest := complementIdx(matched, len(curSel))
			nSel := make([]int32, len(rest))
			nSlot := make([]int32, len(rest))
			for i, ix := range rest {
				nSel[i], nSlot[i] = curSel[ix], curSlot[ix]
			}
			curSel, curSlot = nSel, nSlot
		}
		if len(curSel) > 0 {
			if elseK != nil {
				if err := scatter(elseK, curSel, curSlot); err != nil {
					return nil, err
				}
			} else {
				for _, slot := range curSlot {
					out.setNull(int(slot))
				}
			}
		}
		return out, nil
	}}, nil
}

// inExpr compiles `x [NOT] IN (list)` for literal-only lists. The legacy
// evaluator short-circuits the list per row (elements after the first
// match never evaluate, NULL x skips the list entirely), which literal
// elements make free to replicate: they cannot fail, so only the
// type-mismatch error of `=` needs the per-row, in-order walk.
func (vc *vcompiler) inExpr(t *InExpr) (*kernel, error) {
	xk, err := vc.kernel(t.X)
	if err != nil {
		return nil, err
	}
	vals := make([]any, len(t.List))
	for i, le := range t.List {
		lit, ok := le.(*Literal)
		if !ok {
			return nil, errVFallback
		}
		vals[i] = lit.Value
	}
	not := t.Not
	return &kernel{kind: kBool, eval: func(x *vctx, sel []int32) (*vec, error) {
		xv, err := xk.eval(x, sel)
		if err != nil {
			return nil, err
		}
		n := xv.len()
		out := newVec(kBool, n)
		decided := make([]bool, n)
		for _, val := range vals {
			if val == nil {
				continue // `x = NULL` is NULL: never a match
			}
			for i := 0; i < n; i++ {
				if decided[i] || xv.isNull(i) {
					continue
				}
				match := false
				switch lv := val.(type) {
				case int64:
					if xv.kind == kInt {
						match = xv.i[i] == lv
					} else if xv.kind == kFloat {
						match = xv.f[i] == float64(lv)
					} else {
						return nil, fmt.Errorf("sciql: operator %q not defined on %s and %T", "=", "column", val)
					}
				case float64:
					if xv.kind == kInt {
						match = float64(xv.i[i]) == lv
					} else if xv.kind == kFloat {
						match = xv.f[i] == lv
					} else {
						return nil, fmt.Errorf("sciql: operator %q not defined on %s and %T", "=", "column", val)
					}
				case string:
					if xv.kind != kStr {
						return nil, fmt.Errorf("sciql: operator %q not defined on %s and %T", "=", "column", val)
					}
					match = xv.s[i] == lv
				case bool:
					if xv.kind != kBool {
						return nil, fmt.Errorf("sciql: operator %q not defined on %s and %T", "=", "column", val)
					}
					match = xv.b[i] == lv
				}
				if match {
					decided[i] = true
				}
			}
		}
		for i := 0; i < n; i++ {
			if xv.isNull(i) {
				out.setNull(i)
				continue
			}
			out.b[i] = decided[i] != not
		}
		return out, nil
	}}, nil
}

func (vc *vcompiler) call(t *CallExpr) (*kernel, error) {
	switch t.Name {
	case "count", "sum", "avg", "min", "max":
		return nil, errVFallback // aggregates are handled by the agg path
	}
	args := make([]*kernel, len(t.Args))
	for i, a := range t.Args {
		k, err := vc.kernel(a)
		if err != nil {
			return nil, err
		}
		args[i] = k
	}
	return scalarCallKernel(t.Name, args)
}

func scalarCallKernel(name string, args []*kernel) (*kernel, error) {
	numArgs := func(n int) bool {
		if len(args) != n {
			return false
		}
		for _, a := range args {
			if !isNumKind(a.kind) && !(a.isConst && a.constNull) {
				return false
			}
		}
		return true
	}
	var kind vkind
	switch name {
	case "abs":
		if !numArgs(1) {
			return nil, errVFallback
		}
		kind = args[0].kind
	case "sqrt", "log", "exp", "power", "pow":
		want := 1
		if name == "power" || name == "pow" {
			want = 2
		}
		if !numArgs(want) {
			return nil, errVFallback
		}
		kind = kFloat
	case "floor", "ceil", "ceiling", "round", "length":
		if name == "length" {
			if len(args) != 1 || args[0].kind != kStr {
				return nil, errVFallback
			}
		} else if !numArgs(1) {
			return nil, errVFallback
		}
		kind = kInt
	case "mod":
		if !numArgs(2) {
			return nil, errVFallback
		}
		if args[0].kind == kInt && args[1].kind == kInt {
			kind = kInt
		} else {
			kind = kFloat
		}
	case "greatest", "least":
		if len(args) < 1 || !numArgs(len(args)) {
			return nil, errVFallback
		}
		kind = kInt
		for _, a := range args {
			if a.kind != kInt {
				kind = kFloat
			}
		}
	case "lower", "upper":
		if len(args) != 1 || args[0].kind != kStr {
			return nil, errVFallback
		}
		kind = kStr
	default:
		return nil, errVFallback
	}
	outKind := kind
	return &kernel{kind: outKind, eval: func(x *vctx, sel []int32) (*vec, error) {
		vecs := make([]*vec, len(args))
		for i, a := range args {
			v, err := a.eval(x, sel)
			if err != nil {
				return nil, err
			}
			vecs[i] = v
		}
		n := x.selLen(sel)
		out := newVec(outKind, n)
	rows:
		for i := 0; i < n; i++ {
			for _, v := range vecs {
				if v.isNull(i) {
					out.setNull(i)
					continue rows
				}
			}
			switch name {
			case "abs":
				if outKind == kInt {
					v := vecs[0].i[i]
					if v < 0 {
						v = -v
					}
					out.i[i] = v
				} else {
					out.f[i] = math.Abs(vecs[0].f[i])
				}
			case "sqrt":
				f := vecs[0].numAt(i)
				if f < 0 {
					return nil, fmt.Errorf("sciql: sqrt of negative value")
				}
				out.f[i] = math.Sqrt(f)
			case "log":
				f := vecs[0].numAt(i)
				if f <= 0 {
					return nil, fmt.Errorf("sciql: log of non-positive value")
				}
				out.f[i] = math.Log(f)
			case "exp":
				out.f[i] = math.Exp(vecs[0].numAt(i))
			case "floor":
				out.i[i] = int64(math.Floor(vecs[0].numAt(i)))
			case "ceil", "ceiling":
				out.i[i] = int64(math.Ceil(vecs[0].numAt(i)))
			case "round":
				out.i[i] = int64(math.Round(vecs[0].numAt(i)))
			case "power", "pow":
				out.f[i] = math.Pow(vecs[0].numAt(i), vecs[1].numAt(i))
			case "mod":
				if outKind == kInt {
					b := vecs[1].i[i]
					if b == 0 {
						return nil, fmt.Errorf("sciql: modulo by zero")
					}
					out.i[i] = vecs[0].i[i] % b
				} else {
					b := vecs[1].numAt(i)
					if b == 0 {
						return nil, fmt.Errorf("sciql: modulo by zero")
					}
					out.f[i] = math.Mod(vecs[0].numAt(i), b)
				}
			case "greatest", "least":
				best := vecs[0].numAt(i)
				for _, v := range vecs[1:] {
					f := v.numAt(i)
					if name == "greatest" && f > best || name == "least" && f < best {
						best = f
					}
				}
				if outKind == kInt {
					out.i[i] = int64(best)
				} else {
					out.f[i] = best
				}
			case "lower":
				out.s[i] = strings.ToLower(vecs[0].s[i])
			case "upper":
				out.s[i] = strings.ToUpper(vecs[0].s[i])
			case "length":
				out.i[i] = int64(len(vecs[0].s[i]))
			}
		}
		return out, nil
	}}, nil
}

// ---------------------------------------------------------------------------
// Predicate compilation (filters over selections)

func (vc *vcompiler) pred(e Expr) (pfilter, error) {
	switch t := e.(type) {
	case *BinaryExpr:
		switch t.Op {
		case "AND":
			lf, err := vc.pred(t.Left)
			if err != nil {
				return nil, err
			}
			rf, err := vc.pred(t.Right)
			if err != nil {
				return nil, err
			}
			return func(x *vctx, sel []int32) ([]int32, error) {
				k1, err := lf(x, sel)
				if err != nil {
					return nil, err
				}
				sel = x.full(sel)
				sub := make([]int32, len(k1))
				for i, ix := range k1 {
					sub[i] = sel[ix]
				}
				k2, err := rf(x, sub)
				if err != nil {
					return nil, err
				}
				out := k2
				for i, j := range k2 {
					out[i] = k1[j]
				}
				return out, nil
			}, nil
		case "OR":
			lf, err := vc.pred(t.Left)
			if err != nil {
				return nil, err
			}
			rf, err := vc.pred(t.Right)
			if err != nil {
				return nil, err
			}
			return func(x *vctx, sel []int32) ([]int32, error) {
				k1, err := lf(x, sel)
				if err != nil {
					return nil, err
				}
				sel = x.full(sel)
				rest := complementIdx(k1, len(sel))
				sub := make([]int32, len(rest))
				for i, ix := range rest {
					sub[i] = sel[ix]
				}
				k2, err := rf(x, sub)
				if err != nil {
					return nil, err
				}
				// Merge (both ascending).
				out := make([]int32, 0, len(k1)+len(k2))
				a, b := 0, 0
				for a < len(k1) || b < len(k2) {
					switch {
					case a == len(k1):
						out = append(out, rest[k2[b]])
						b++
					case b == len(k2):
						out = append(out, k1[a])
						a++
					case k1[a] < rest[k2[b]]:
						out = append(out, k1[a])
						a++
					default:
						out = append(out, rest[k2[b]])
						b++
					}
				}
				return out, nil
			}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			if f, ok, err := vc.fastCmpPred(t); err != nil {
				return nil, err
			} else if ok {
				return f, nil
			}
		}
	case *BetweenExpr:
		if f, ok, err := vc.fastBetweenPred(t); err != nil {
			return nil, err
		} else if ok {
			return f, nil
		}
	case *IsNullExpr:
		if cr, ok := t.X.(*ColRef); ok {
			if ri, ci, ok := bindCol(vc.rels, cr); ok {
				acc := mkAcc(vc.rels, ri, ci)
				not := t.Not
				return func(x *vctx, sel []int32) ([]int32, error) {
					sel = x.full(sel)
					out := make([]int32, 0, len(sel))
					for i, sol := range sel {
						b := acc.base(x, sol)
						var isNull bool
						switch {
						case acc.col != nil:
							isNull = acc.col.IsNull(int(b))
						case acc.img != nil:
							isNull = acc.img.IsNull(int(b))
						}
						if isNull != not {
							out = append(out, int32(i))
						}
					}
					return out, nil
				}, nil
			}
		}
	}
	// Generic: evaluate as a value and keep non-NULL true booleans; any
	// non-boolean value counts as false (evalBool semantics).
	k, err := vc.kernel(e)
	if err != nil {
		return nil, err
	}
	return func(x *vctx, sel []int32) ([]int32, error) {
		v, err := k.eval(x, sel)
		if err != nil {
			return nil, err
		}
		out := make([]int32, 0, v.len())
		if v.kind != kBool {
			return out, nil
		}
		for i, b := range v.b {
			if b && !v.isNull(i) {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}, nil
}

// fastCmpPred compiles colref-vs-literal and colref-vs-colref numeric
// comparisons into direct loops.
func (vc *vcompiler) fastCmpPred(t *BinaryExpr) (pfilter, bool, error) {
	accOf := func(e Expr) *colAcc {
		cr, ok := e.(*ColRef)
		if !ok {
			return nil
		}
		ri, ci, ok := bindCol(vc.rels, cr)
		if !ok {
			return nil
		}
		return mkAcc(vc.rels, ri, ci)
	}
	litOf := func(e Expr) (any, bool) {
		l, ok := e.(*Literal)
		if !ok {
			return nil, false
		}
		return l.Value, true
	}
	op := t.Op
	if la := accOf(t.Left); la != nil {
		if lit, ok := litOf(t.Right); ok {
			return vc.accLitPred(la, op, lit)
		}
		if ra := accOf(t.Right); ra != nil && isNumKind(la.kind) && isNumKind(ra.kind) {
			// Two integer columns compare exactly (the generic kernel and
			// the legacy interpreter both keep int/int comparisons in
			// int64, which diverges from float compares beyond 2^53).
			if la.kind == kInt && ra.kind == kInt {
				return func(x *vctx, sel []int32) ([]int32, error) {
					sel = x.full(sel)
					out := make([]int32, 0, len(sel))
					for i, sol := range sel {
						a, okA := la.intBase(la.base(x, sol))
						b, okB := ra.intBase(ra.base(x, sol))
						if okA && okB && cmpOpHolds(op, cmp3Int(a, b)) {
							out = append(out, int32(i))
						}
					}
					return out, nil
				}, true, nil
			}
			return func(x *vctx, sel []int32) ([]int32, error) {
				sel = x.full(sel)
				out := make([]int32, 0, len(sel))
				for i, sol := range sel {
					a, okA := la.numBase(la.base(x, sol))
					b, okB := ra.numBase(ra.base(x, sol))
					if okA && okB && cmpOpHolds(op, cmp3Float(a, b)) {
						out = append(out, int32(i))
					}
				}
				return out, nil
			}, true, nil
		}
	}
	if ra := accOf(t.Right); ra != nil {
		if lit, ok := litOf(t.Left); ok {
			return vc.accLitPred(ra, flipCmp(op), lit)
		}
	}
	return nil, false, nil
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// accLitPred compiles `col <op> literal`.
func (vc *vcompiler) accLitPred(acc *colAcc, op string, lit any) (pfilter, bool, error) {
	if lit == nil {
		// NULL comparisons never hold.
		return func(x *vctx, sel []int32) ([]int32, error) {
			return []int32{}, nil
		}, true, nil
	}
	switch v := lit.(type) {
	case int64, float64:
		if !isNumKind(acc.kind) {
			return nil, false, nil // mixed types: generic path / fallback
		}
		var fv float64
		iv, isInt := v.(int64)
		if isInt {
			fv = float64(iv)
		} else {
			fv = v.(float64)
		}
		// Integer column vs integer literal keeps exact int compares.
		if acc.kind == kInt && isInt {
			return func(x *vctx, sel []int32) ([]int32, error) {
				sel = x.full(sel)
				out := make([]int32, 0, len(sel))
				switch {
				case acc.col != nil:
					src := acc.col.Ints()
					for i, sol := range sel {
						b := acc.base(x, sol)
						if !acc.col.IsNull(int(b)) && cmpOpHolds(op, cmp3Int(src[b], iv)) {
							out = append(out, int32(i))
						}
					}
				default: // virtual dim
					stride, size := int32(acc.stride), int32(acc.size)
					for i, sol := range sel {
						b := acc.base(x, sol)
						if cmpOpHolds(op, cmp3Int(int64(b/stride%size), iv)) {
							out = append(out, int32(i))
						}
					}
				}
				return out, nil
			}, true, nil
		}
		return func(x *vctx, sel []int32) ([]int32, error) {
			sel = x.full(sel)
			out := make([]int32, 0, len(sel))
			if acc.img != nil && x.pos[acc.rel] == nil {
				// Direct plane scan: the hottest shape (UPDATE/SELECT over
				// a whole array).
				data, null := acc.img.Data, acc.img.Null
				for i, sol := range sel {
					if null != nil && null[sol] {
						continue
					}
					if cmpOpHolds(op, cmp3Float(data[sol], fv)) {
						out = append(out, int32(i))
					}
				}
				return out, nil
			}
			for i, sol := range sel {
				a, okA := acc.numBase(acc.base(x, sol))
				if okA && cmpOpHolds(op, cmp3Float(a, fv)) {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}, true, nil
	case string:
		if acc.kind != kStr || acc.col == nil {
			return nil, false, nil
		}
		return func(x *vctx, sel []int32) ([]int32, error) {
			sel = x.full(sel)
			out := make([]int32, 0, len(sel))
			src := acc.col.Strs()
			for i, sol := range sel {
				b := acc.base(x, sol)
				if !acc.col.IsNull(int(b)) && cmpOpHolds(op, strings.Compare(src[b], v)) {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}, true, nil
	case bool:
		if acc.kind != kBool || acc.col == nil || (op != "=" && op != "<>") {
			return nil, false, nil
		}
		return func(x *vctx, sel []int32) ([]int32, error) {
			sel = x.full(sel)
			out := make([]int32, 0, len(sel))
			src := acc.col.Bools()
			for i, sol := range sel {
				b := acc.base(x, sol)
				if acc.col.IsNull(int(b)) {
					continue
				}
				if (op == "=") == (src[b] == v) {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}, true, nil
	}
	return nil, false, nil
}

func (vc *vcompiler) fastBetweenPred(t *BetweenExpr) (pfilter, bool, error) {
	if t.Not {
		return nil, false, nil
	}
	cr, ok := t.X.(*ColRef)
	if !ok {
		return nil, false, nil
	}
	ri, ci, ok := bindCol(vc.rels, cr)
	if !ok {
		return nil, false, nil
	}
	acc := mkAcc(vc.rels, ri, ci)
	if !isNumKind(acc.kind) {
		return nil, false, nil
	}
	lo, okLo := numLiteral(t.Lo)
	hi, okHi := numLiteral(t.Hi)
	if !okLo || !okHi {
		return nil, false, nil
	}
	// Integer columns take exact int64 compares when both bounds are
	// integer literals; mixed bounds route to the generic BETWEEN kernel,
	// which compares each side with the legacy int/float rules.
	if acc.kind == kInt {
		ilo, iloInt := intLiteral(t.Lo)
		ihi, ihiInt := intLiteral(t.Hi)
		if !iloInt || !ihiInt {
			return nil, false, nil
		}
		return func(x *vctx, sel []int32) ([]int32, error) {
			sel = x.full(sel)
			out := make([]int32, 0, len(sel))
			for i, sol := range sel {
				a, okA := acc.intBase(acc.base(x, sol))
				if okA && a >= ilo && a <= ihi {
					out = append(out, int32(i))
				}
			}
			return out, nil
		}, true, nil
	}
	return func(x *vctx, sel []int32) ([]int32, error) {
		sel = x.full(sel)
		out := make([]int32, 0, len(sel))
		for i, sol := range sel {
			a, okA := acc.numBase(acc.base(x, sol))
			if okA && a >= lo && a <= hi {
				out = append(out, int32(i))
			}
		}
		return out, nil
	}, true, nil
}

func intLiteral(e Expr) (int64, bool) {
	l, ok := e.(*Literal)
	if !ok {
		return 0, false
	}
	v, ok := l.Value.(int64)
	return v, ok
}

func numLiteral(e Expr) (float64, bool) {
	l, ok := e.(*Literal)
	if !ok {
		return 0, false
	}
	switch v := l.Value.(type) {
	case int64:
		return float64(v), true
	case float64:
		return v, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Dimension predicate pushdown

// dimRanges partitions conjuncts into dimension-range constraints over
// the first relation's index space and residual predicates. It returns
// per-dimension inclusive [lo, hi] bounds (initialised to the full
// extents) and whether any constraint was extracted.
func dimRanges(conj []Expr, rels []*vrel) (lo, hi []int, residual []Expr, constrained bool) {
	base := rels[0]
	if base.arr == nil {
		return nil, nil, conj, false
	}
	nd := base.nd()
	lo = make([]int, nd)
	hi = make([]int, nd)
	for d := 0; d < nd; d++ {
		hi[d] = base.arr.Dims[d].Size - 1
	}
	// dimIndexOf binds a ColRef to a dimension of the shared index space.
	dimIndexOf := func(e Expr) int {
		cr, ok := e.(*ColRef)
		if !ok {
			return -1
		}
		ri, ci, ok := bindCol(rels, cr)
		if !ok {
			return -1
		}
		r := rels[ri]
		if r.arr == nil || ci >= r.nd() {
			return -1
		}
		if ri == 0 {
			return ci
		}
		// A partner relation's dimension is usable only when it addresses
		// the shared flat index identically (aligned zip, untransposed).
		if ci < nd && r.strides[ci] == base.strides[ci] && r.arr.Dims[ci].Size == base.arr.Dims[ci].Size {
			return ci
		}
		return -1
	}
	apply := func(d int, op string, f float64) {
		// Clamp far outside any dimension extent before the float→int
		// conversions below (out-of-range conversions are
		// implementation-defined); the comparisons against the existing
		// bounds make the clamped value equivalent.
		if f > 1e15 {
			f = 1e15
		} else if f < -1e15 {
			f = -1e15
		}
		switch op {
		case "=":
			v := int(f)
			if float64(v) != f { // fractional: empty
				lo[d], hi[d] = 1, 0
				return
			}
			if v > lo[d] {
				lo[d] = v
			}
			if v < hi[d] {
				hi[d] = v
			}
		case "<":
			v := int(math.Ceil(f)) - 1
			if math.Ceil(f) != f {
				v = int(math.Floor(f))
			}
			if v < hi[d] {
				hi[d] = v
			}
		case "<=":
			v := int(math.Floor(f))
			if v < hi[d] {
				hi[d] = v
			}
		case ">":
			v := int(math.Floor(f)) + 1
			if math.Floor(f) != f {
				v = int(math.Ceil(f))
			}
			if v > lo[d] {
				lo[d] = v
			}
		case ">=":
			v := int(math.Ceil(f))
			if v > lo[d] {
				lo[d] = v
			}
		}
	}
	// Only a PREFIX of pushable conjuncts is folded into ranges: the
	// legacy interpreter evaluates conjuncts left to right per row, so a
	// dimension predicate may only jump ahead of conjuncts it already
	// preceded — otherwise an erroring residual (1/v, sqrt) would run
	// over fewer rows than the reference and data-dependent errors could
	// vanish. Everything from the first non-pushable conjunct on stays
	// residual, in order (later dim predicates still take the fast
	// comparison filters).
	for ci, c := range conj {
		pushed := false
		switch t := c.(type) {
		case *BinaryExpr:
			switch t.Op {
			case "=", "<", "<=", ">", ">=":
				if d := dimIndexOf(t.Left); d >= 0 {
					if f, ok := numLiteral(t.Right); ok {
						apply(d, t.Op, f)
						pushed = true
					}
				}
				if !pushed {
					if d := dimIndexOf(t.Right); d >= 0 {
						if f, ok := numLiteral(t.Left); ok {
							apply(d, flipCmp(t.Op), f)
							pushed = true
						}
					}
				}
			}
		case *BetweenExpr:
			if !t.Not {
				if d := dimIndexOf(t.X); d >= 0 {
					flo, okLo := numLiteral(t.Lo)
					fhi, okHi := numLiteral(t.Hi)
					if okLo && okHi {
						apply(d, ">=", flo)
						apply(d, "<=", fhi)
						pushed = true
					}
				}
			}
		}
		if !pushed {
			residual = append(residual, conj[ci:]...)
			break
		}
		constrained = true
	}
	return lo, hi, residual, constrained
}

// enumerateRanges produces the ascending selection of flat indices whose
// coordinates fall inside [lo[d], hi[d]] for every dimension.
func enumerateRanges(rel *vrel, lo, hi []int) []int32 {
	count := 1
	for d := range lo {
		if hi[d] < lo[d] {
			return []int32{}
		}
		count *= hi[d] - lo[d] + 1
	}
	if count == rel.rows {
		return nil // unconstrained
	}
	out := make([]int32, 0, count)
	if len(lo) == 2 {
		w := rel.strides[0]
		for y := lo[0]; y <= hi[0]; y++ {
			base := y * w
			for x := lo[1]; x <= hi[1]; x++ {
				out = append(out, int32(base+x))
			}
		}
		return out
	}
	idx := make([]int, len(lo))
	copy(idx, lo)
	for {
		flat := 0
		for d, v := range idx {
			flat += v * rel.strides[d]
		}
		out = append(out, int32(flat))
		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
		}
		if d < 0 {
			return out
		}
	}
}

// ---------------------------------------------------------------------------
// Join planning

// vzipMatched counts dimensions equated between two same-shaped arrays
// (the aligned-zip condition), returning the residual conjuncts.
func vzipMatched(conj []Expr, rels []*vrel) (int, []Expr) {
	a, b := rels[0], rels[1]
	isDimOf := func(c *ColRef, r *vrel) bool {
		if r.arr == nil {
			return false
		}
		if c.Table != "" && c.Table != r.alias {
			return false
		}
		for _, d := range r.arr.Dims {
			if d.Name == c.Name {
				return true
			}
		}
		return false
	}
	matched := map[string]bool{}
	var residual []Expr
	for _, c := range conj {
		if be, ok := c.(*BinaryExpr); ok && be.Op == "=" {
			l, lok := be.Left.(*ColRef)
			r, rok := be.Right.(*ColRef)
			if lok && rok && l.Name == r.Name &&
				(isDimOf(l, a) && isDimOf(r, b) || isDimOf(l, b) && isDimOf(r, a)) {
				matched[l.Name] = true
				continue
			}
		}
		residual = append(residual, c)
	}
	return len(matched), residual
}

// vEquiJoin finds the first `a.c1 = b.c2` conjunct (the legacy planner's
// rule) and returns the bound column indices plus the rest.
func vEquiJoin(conj []Expr, a, b *vrel) (ca, cb int, rest []Expr, ok bool) {
	colIndex := func(r *vrel, c *ColRef) int {
		if c.Table != "" && c.Table != r.alias {
			return -1
		}
		for i, n := range r.names {
			if n == c.Name {
				return i
			}
		}
		return -1
	}
	for i, c := range conj {
		be, isBin := c.(*BinaryExpr)
		if !isBin || be.Op != "=" {
			continue
		}
		l, lok := be.Left.(*ColRef)
		r, rok := be.Right.(*ColRef)
		if !lok || !rok {
			continue
		}
		la, ra := colIndex(a, l), colIndex(a, r)
		lb, rb := colIndex(b, l), colIndex(b, r)
		ca, cb = -1, -1
		switch {
		case la >= 0 && rb >= 0 && (l.Table != "" || lb < 0) && (r.Table != "" || ra < 0):
			ca, cb = la, rb
		case lb >= 0 && ra >= 0 && (l.Table != "" || la < 0) && (r.Table != "" || rb < 0):
			ca, cb = ra, lb
		}
		if ca >= 0 && cb >= 0 {
			rest = append(append([]Expr{}, conj[:i]...), conj[i+1:]...)
			return ca, cb, rest, true
		}
	}
	return 0, 0, conj, false
}

// vhashJoin joins two relations on one column each, reproducing the
// legacy build/probe order exactly (build on the smaller side, probe in
// row order, matches in insertion order).
func vhashJoin(a *vrel, ca int, b *vrel, cb int) (lpos, rpos []int32, ok bool) {
	keyVec := func(r *vrel, ci int) *vec {
		x := &vctx{rels: []*vrel{r}, pos: [][]int32{nil}, n: r.rows}
		return mkAcc([]*vrel{r}, 0, ci).load(x, nil)
	}
	ka := keyVec(a, ca)
	kb := keyVec(b, cb)
	// Legacy hashes `any` values: keys of different dynamic types never
	// match, so a cross-typed join legitimately yields zero rows.
	if ka.kind != kb.kind {
		return nil, nil, true
	}
	build, probe := ka, kb
	swapped := false
	if b.rows < a.rows {
		build, probe = kb, ka
		swapped = true
	}
	emit := func(i, j int32) {
		if swapped {
			lpos = append(lpos, j)
			rpos = append(rpos, i)
		} else {
			lpos = append(lpos, i)
			rpos = append(rpos, j)
		}
	}
	switch ka.kind {
	case kInt:
		ht := make(map[int64][]int32, build.len())
		for i, v := range build.i {
			if !build.isNull(i) {
				ht[v] = append(ht[v], int32(i))
			}
		}
		for j, v := range probe.i {
			if probe.isNull(j) {
				continue
			}
			for _, i := range ht[v] {
				emit(i, int32(j))
			}
		}
	case kFloat:
		ht := make(map[float64][]int32, build.len())
		for i, v := range build.f {
			if !build.isNull(i) {
				ht[v] = append(ht[v], int32(i))
			}
		}
		for j, v := range probe.f {
			if probe.isNull(j) {
				continue
			}
			for _, i := range ht[v] {
				emit(i, int32(j))
			}
		}
	case kStr:
		ht := make(map[string][]int32, build.len())
		for i, v := range build.s {
			if !build.isNull(i) {
				ht[v] = append(ht[v], int32(i))
			}
		}
		for j, v := range probe.s {
			if probe.isNull(j) {
				continue
			}
			for _, i := range ht[v] {
				emit(i, int32(j))
			}
		}
	case kBool:
		ht := map[bool][]int32{}
		for i, v := range build.b {
			if !build.isNull(i) {
				ht[v] = append(ht[v], int32(i))
			}
		}
		for j, v := range probe.b {
			if probe.isNull(j) {
				continue
			}
			for _, i := range ht[v] {
				emit(i, int32(j))
			}
		}
	default:
		return nil, nil, false
	}
	return lpos, rpos, true
}

// ---------------------------------------------------------------------------
// SELECT

// vexecSelect runs a SELECT on the vectorized engine. ok=false means the
// statement shape is not supported and the caller must use the legacy
// interpreter.
func (e *Engine) vexecSelect(s *SelectStmt) (*column.Table, bool, error) {
	rels := make([]*vrel, len(s.From))
	for i, ref := range s.From {
		r, ok := e.resolveV(ref)
		if !ok {
			return nil, false, nil // legacy produces the unknown-source error
		}
		rels[i] = r
	}
	if len(rels) == 0 || len(rels) > 2 {
		return nil, false, nil
	}

	conj := conjuncts(s.Where)
	x := &vctx{rels: rels}
	switch len(rels) {
	case 1:
		x.pos = [][]int32{nil}
		x.n = rels[0].rows
	case 2:
		if rels[0].arr != nil && rels[1].arr != nil && sameShape(rels[0].arr, rels[1].arr) {
			if matched, residual := vzipMatched(conj, rels); matched == len(rels[0].arr.Dims) {
				x.pos = [][]int32{nil, nil}
				x.n = rels[0].rows
				conj = residual
				break
			}
		}
		ca, cb, rest, ok := vEquiJoin(conj, rels[0], rels[1])
		if !ok {
			return nil, false, nil // cross product: legacy guard applies
		}
		lpos, rpos, ok := vhashJoin(rels[0], ca, rels[1], cb)
		if !ok {
			return nil, false, nil
		}
		x.pos = [][]int32{lpos, rpos}
		x.n = len(lpos)
		conj = rest
	}

	vc := &vcompiler{rels: rels}

	// Dimension pushdown applies when the base index space is an array
	// (single array or aligned zip).
	var sel []int32
	if len(rels) == 1 && rels[0].arr != nil || len(rels) == 2 && x.pos[0] == nil {
		lo, hi, residual, constrained := dimRanges(conj, rels)
		if constrained {
			sel = enumerateRanges(rels[0], lo, hi)
			conj = residual
		}
	}

	// Residual WHERE conjuncts, left to right.
	filters := make([]pfilter, 0, len(conj))
	for _, c := range conj {
		f, err := vc.pred(c)
		if err != nil {
			return nil, false, nil
		}
		filters = append(filters, f)
	}

	// Select items.
	items, err := expandStars(s.Items, legacyShapes(rels))
	if err != nil {
		return nil, false, nil
	}
	hasAgg := len(s.GroupBy) > 0
	for _, it := range items {
		if containsAggregate(it.Expr) {
			hasAgg = true
		}
	}

	// Apply WHERE.
	for _, f := range filters {
		idx, err := f(x, sel)
		if err != nil {
			return nil, true, err
		}
		sel = gatherSel(sel, idx)
	}

	var out *column.Table
	var ok bool
	if hasAgg {
		out, ok, err = vexecAggSelect(vc, x, items, s.GroupBy, sel)
	} else {
		out, ok, err = vexecPlainSelect(vc, x, items, sel)
	}
	if err != nil || !ok {
		return nil, ok, err
	}

	if s.Distinct {
		out = distinctTable(out)
	}
	if len(s.OrderBy) > 0 {
		if err := orderTable(out, s.OrderBy, items); err != nil {
			return nil, true, err
		}
	}
	if s.Limit >= 0 {
		out = out.Head(s.Limit)
	}
	return out, true, nil
}

// legacyShapes adapts vrels for expandStars (which needs alias + names).
func legacyShapes(rels []*vrel) []*relation {
	out := make([]*relation, len(rels))
	for i, r := range rels {
		out[i] = &relation{alias: r.alias, names: r.names}
	}
	return out
}

func vexecPlainSelect(vc *vcompiler, x *vctx, items []SelectItem, sel []int32) (*column.Table, bool, error) {
	kernels := make([]*kernel, len(items))
	for i, it := range items {
		k, err := vc.kernel(it.Expr)
		if err != nil {
			return nil, false, nil
		}
		kernels[i] = k
	}
	t := &column.Table{Name: "result"}
	for i, k := range kernels {
		v, err := k.eval(x, sel)
		if err != nil {
			return nil, true, err
		}
		c := vecColumn(v)
		t.Fields = append(t.Fields, column.Field{Name: itemName(items[i], i), Typ: c.Typ})
		t.Cols = append(t.Cols, c)
	}
	return t, true, nil
}

func vecColumn(v *vec) *column.Column {
	var c *column.Column
	switch v.kind {
	case kInt:
		c = column.NewInt64(v.i)
	case kStr:
		c = column.NewString(v.s)
	case kBool:
		c = column.NewBool(v.b)
	default:
		c = column.NewFloat64(v.f)
	}
	if v.null != nil {
		c.AttachNulls(v.null)
	}
	return c
}

// ---------------------------------------------------------------------------
// Aggregation

type aggAcc struct {
	count  int64
	sum    float64
	min    float64
	max    float64
	allInt bool
}

func vexecAggSelect(vc *vcompiler, x *vctx, items []SelectItem, groupBy []Expr, sel []int32) (*column.Table, bool, error) {
	// Classify items: bare aggregate calls or group expressions.
	type itemPlan struct {
		agg  *CallExpr // nil for non-aggregate items
		argK *kernel   // aggregate argument kernel
		k    *kernel   // non-aggregate kernel (evaluated on group reps)
	}
	plans := make([]itemPlan, len(items))
	for i, it := range items {
		if call, ok := it.Expr.(*CallExpr); ok {
			switch call.Name {
			case "count", "sum", "avg", "min", "max":
				p := itemPlan{agg: call}
				if !call.Star {
					if len(call.Args) != 1 {
						return nil, true, fmt.Errorf("sciql: %s takes exactly one argument", call.Name)
					}
					if containsAggregate(call.Args[0]) {
						return nil, false, nil
					}
					k, err := vc.kernel(call.Args[0])
					if err != nil {
						return nil, false, nil
					}
					if k.kind == kStr && !(k.isConst && k.constNull) {
						return nil, false, nil // legacy errors per row; keep its message
					}
					p.argK = k
				}
				plans[i] = p
				continue
			}
		}
		if containsAggregate(it.Expr) {
			return nil, false, nil // aggregate inside arithmetic: legacy path
		}
		k, err := vc.kernel(it.Expr)
		if err != nil {
			return nil, false, nil
		}
		plans[i] = itemPlan{k: k}
	}

	groupKs := make([]*kernel, len(groupBy))
	for i, ge := range groupBy {
		k, err := vc.kernel(ge)
		if err != nil {
			return nil, false, nil
		}
		groupKs[i] = k
	}

	n := x.selLen(sel)
	// Compute group ids in first-appearance order.
	var groupOf []int32
	var reps []int32 // representative solution per group
	var groupRows []int64
	nGroups := 0
	if len(groupBy) == 0 {
		if n > 0 {
			nGroups = 1
			groupRows = []int64{int64(n)}
			if sel == nil {
				reps = []int32{0}
			} else {
				reps = []int32{sel[0]}
			}
		}
	} else {
		keyVecs := make([]*vec, len(groupKs))
		for i, k := range groupKs {
			v, err := k.eval(x, sel)
			if err != nil {
				return nil, true, err
			}
			keyVecs[i] = v
		}
		groupOf = make([]int32, n)
		byKey := make(map[string]int32, 16)
		var buf []byte
		for i := 0; i < n; i++ {
			buf = buf[:0]
			for _, kv := range keyVecs {
				buf = appendGroupKey(buf, kv, i)
			}
			id, ok := byKey[string(buf)]
			if !ok {
				id = int32(nGroups)
				nGroups++
				byKey[string(buf)] = id
				if sel == nil {
					reps = append(reps, int32(i))
				} else {
					reps = append(reps, sel[i])
				}
				groupRows = append(groupRows, 0)
			}
			groupOf[i] = id
			groupRows[id]++
		}
	}
	if len(groupBy) == 0 && nGroups == 0 {
		// A global aggregate over zero rows still yields one row, but any
		// non-aggregate item would need the legacy first-row quirk.
		for _, p := range plans {
			if p.agg == nil {
				return nil, false, nil
			}
		}
		nGroups = 1
		groupRows = []int64{0}
	}

	t := &column.Table{Name: "result"}
	for i, p := range plans {
		var c *column.Column
		switch {
		case p.agg != nil && p.agg.Star: // count(*)
			vals := make([]int64, nGroups)
			copy(vals, groupRows)
			c = column.NewInt64(vals)
		case p.agg != nil:
			accs := make([]aggAcc, nGroups)
			for g := range accs {
				accs[g] = aggAcc{min: math.Inf(1), max: math.Inf(-1), allInt: true}
			}
			if n > 0 {
				av, err := p.argK.eval(x, sel)
				if err != nil {
					return nil, true, err
				}
				isInt := av.kind == kInt
				isBool := av.kind == kBool
				for i := 0; i < n; i++ {
					if av.isNull(i) {
						continue
					}
					var f float64
					switch {
					case isBool:
						if av.b[i] {
							f = 1
						}
					case isInt:
						f = float64(av.i[i])
					default:
						f = av.f[i]
					}
					g := int32(0)
					if groupOf != nil {
						g = groupOf[i]
					}
					a := &accs[g]
					a.count++
					a.sum += f
					if !isInt {
						a.allInt = false
					}
					if f < a.min {
						a.min = f
					}
					if f > a.max {
						a.max = f
					}
				}
			}
			var err error
			c, err = aggColumn(p.agg.Name, accs)
			if err != nil {
				return nil, true, err
			}
		default:
			// reps must stay an explicit (possibly empty) selection: a nil
			// selection means "every solution" to the kernels.
			if reps == nil {
				reps = []int32{}
			}
			v, err := p.k.eval(x, reps)
			if err != nil {
				return nil, true, err
			}
			c = vecColumn(v)
		}
		t.Fields = append(t.Fields, column.Field{Name: itemName(items[i], i), Typ: c.Typ})
		t.Cols = append(t.Cols, c)
	}
	return t, true, nil
}

func aggColumn(name string, accs []aggAcc) (*column.Column, error) {
	switch name {
	case "count":
		vals := make([]int64, len(accs))
		for g, a := range accs {
			vals[g] = a.count
		}
		return column.NewInt64(vals), nil
	case "avg":
		vals := make([]float64, len(accs))
		var nulls []bool
		for g, a := range accs {
			if a.count == 0 {
				if nulls == nil {
					nulls = make([]bool, len(accs))
				}
				nulls[g] = true
				continue
			}
			vals[g] = a.sum / float64(a.count)
		}
		c := column.NewFloat64(vals)
		c.AttachNulls(nulls)
		return c, nil
	case "sum", "min", "max":
		pick := func(a aggAcc) float64 {
			switch name {
			case "min":
				return a.min
			case "max":
				return a.max
			}
			return a.sum
		}
		allInt := true
		anyVal := false
		for _, a := range accs {
			if a.count > 0 {
				anyVal = true
				if !a.allInt {
					allInt = false
				}
			}
		}
		if allInt && anyVal {
			vals := make([]int64, len(accs))
			var nulls []bool
			for g, a := range accs {
				if a.count == 0 {
					if nulls == nil {
						nulls = make([]bool, len(accs))
					}
					nulls[g] = true
					continue
				}
				vals[g] = int64(pick(a))
			}
			c := column.NewInt64(vals)
			c.AttachNulls(nulls)
			return c, nil
		}
		vals := make([]float64, len(accs))
		var nulls []bool
		for g, a := range accs {
			if a.count == 0 {
				if nulls == nil {
					nulls = make([]bool, len(accs))
				}
				nulls[g] = true
				continue
			}
			vals[g] = pick(a)
		}
		c := column.NewFloat64(vals)
		c.AttachNulls(nulls)
		return c, nil
	}
	return nil, fmt.Errorf("sciql: unknown aggregate %q", name)
}

func appendGroupKey(buf []byte, v *vec, i int) []byte {
	if v.isNull(i) {
		return append(buf, 0)
	}
	switch v.kind {
	case kInt:
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.i[i]))
	case kFloat:
		buf = append(buf, 2)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f[i]))
	case kStr:
		buf = append(buf, 3)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.s[i])))
		buf = append(buf, v.s[i]...)
	case kBool:
		buf = append(buf, 4)
		if v.b[i] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE

// vexecUpdate runs an UPDATE through the vectorized engine with the
// fused evaluate-then-write pass. ok=false falls back to legacy.
func (e *Engine) vexecUpdate(s *UpdateStmt) (*Result, bool, error) {
	rel, ok := e.resolveV(TableRef{Name: s.Target})
	if !ok {
		return nil, false, nil
	}
	// Validate SET targets like the legacy path (it errors before
	// evaluating anything).
	if rel.arr != nil {
		for col := range s.Set {
			if _, ok := rel.arr.Values[col]; !ok {
				return nil, true, fmt.Errorf("sciql: %q is not a value attribute of array %q", col, rel.arr.Name)
			}
		}
	} else {
		for col := range s.Set {
			if rel.tbl.Col(col) == nil {
				return nil, true, fmt.Errorf("sciql: table %q has no column %q", rel.tbl.Name, col)
			}
		}
	}

	x := &vctx{rels: []*vrel{rel}, pos: [][]int32{nil}, n: rel.rows}
	vc := &vcompiler{rels: x.rels}

	conj := conjuncts(s.Where)
	var sel []int32
	if rel.arr != nil {
		lo, hi, residual, constrained := dimRanges(conj, x.rels)
		if constrained {
			sel = enumerateRanges(rel, lo, hi)
			conj = residual
		}
	}
	filters := make([]pfilter, 0, len(conj))
	for _, c := range conj {
		f, err := vc.pred(c)
		if err != nil {
			return nil, false, nil
		}
		filters = append(filters, f)
	}

	// Compile SET kernels up front so unsupported expressions fall back
	// before any evaluation.
	type setPlan struct {
		col string
		k   *kernel
	}
	var sets []setPlan
	for col, expr := range s.Set {
		k, err := vc.kernel(expr)
		if err != nil {
			return nil, false, nil
		}
		if rel.arr != nil {
			// Array attributes are DOUBLE; only numeric or NULL sources.
			if !isNumKind(k.kind) && !(k.isConst && k.constNull) {
				return nil, false, nil
			}
		} else {
			ct := rel.tbl.Col(col).Typ
			switch ct {
			case column.Int64, column.Float64:
				if !isNumKind(k.kind) && !(k.isConst && k.constNull) {
					return nil, false, nil
				}
			case column.String:
				if k.kind != kStr && !(k.isConst && k.constNull) {
					return nil, false, nil
				}
			case column.Bool:
				if k.kind != kBool && !(k.isConst && k.constNull) {
					return nil, false, nil
				}
			}
		}
		sets = append(sets, setPlan{col: col, k: k})
	}

	for _, f := range filters {
		idx, err := f(x, sel)
		if err != nil {
			return nil, true, err
		}
		sel = gatherSel(sel, idx)
	}

	affected := x.selLen(sel)
	// Evaluate every SET kernel before writing anything: an evaluation
	// error must leave the target untouched (legacy two-phase contract),
	// and self-referencing updates must read pre-update state.
	newVals := make([]*vec, len(sets))
	for i, sp := range sets {
		v, err := sp.k.eval(x, sel)
		if err != nil {
			return nil, true, err
		}
		newVals[i] = v
	}
	sel = x.full(sel)
	if rel.arr != nil {
		for i, sp := range sets {
			img := rel.arr.Values[sp.col]
			v := newVals[i]
			for j, cell := range sel {
				if v.isNull(j) {
					if img.Null == nil {
						img.Null = make([]bool, len(img.Data))
					}
					img.Null[cell] = true
					continue
				}
				img.Data[cell] = v.numAt(j)
				if img.Null != nil {
					img.Null[cell] = false
				}
			}
		}
		return &Result{Affected: affected}, true, nil
	}
	for i, sp := range sets {
		c := rel.tbl.Col(sp.col)
		v := newVals[i]
		for j, row := range sel {
			if v.isNull(j) {
				c.SetNull(int(row))
				continue
			}
			// Like the legacy writer, a non-NULL store does not clear an
			// existing NULL flag (columns keep their validity bitmap).
			switch c.Typ {
			case column.Int64:
				if v.kind == kInt {
					c.Ints()[row] = v.i[j]
				} else {
					c.Ints()[row] = int64(v.f[j])
				}
			case column.Float64:
				c.Floats()[row] = v.numAt(j)
			case column.String:
				c.Strs()[row] = v.s[j]
			case column.Bool:
				c.Bools()[row] = v.b[j]
			}
		}
	}
	return &Result{Affected: affected}, true, nil
}

// vexecDelete filters the kept rows in one pass.
func (e *Engine) vexecDelete(s *DeleteStmt) (*Result, bool, error) {
	e.mu.RLock()
	_, isArray := e.arrays[s.Table]
	e.mu.RUnlock()
	if isArray {
		return nil, false, nil // legacy produces the array DELETE error
	}
	rel, ok := e.resolveV(TableRef{Name: s.Table})
	if !ok || rel.tbl == nil {
		return nil, false, nil
	}
	x := &vctx{rels: []*vrel{rel}, pos: [][]int32{nil}, n: rel.rows}
	vc := &vcompiler{rels: x.rels}
	var sel []int32
	for _, c := range conjuncts(s.Where) {
		f, err := vc.pred(c)
		if err != nil {
			return nil, false, nil
		}
		idx, err := f(x, sel)
		if err != nil {
			return nil, true, err
		}
		sel = gatherSel(sel, idx)
	}
	matched := x.selLen(sel)
	sel = x.full(sel)
	keep := make([]int, 0, rel.rows-matched)
	k := 0
	for row := 0; row < rel.rows; row++ {
		if k < len(sel) && sel[k] == int32(row) {
			k++
			continue
		}
		keep = append(keep, row)
	}
	compacted := rel.tbl.Gather(keep)
	e.mu.Lock()
	rel.tbl.Cols = compacted.Cols
	e.mu.Unlock()
	return &Result{Affected: matched}, true, nil
}
