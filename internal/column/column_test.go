package column

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestColumnBasics(t *testing.T) {
	c := NewInt64([]int64{3, 1, 4, 1, 5})
	if c.Len() != 5 || c.Typ != Int64 {
		t.Fatal("len/type")
	}
	if c.Int(2) != 4 {
		t.Fatal("Int")
	}
	c.AppendInt(9)
	if c.Len() != 6 || c.Int(5) != 9 {
		t.Fatal("append")
	}
	f := NewFloat64([]float64{1.5})
	f.AppendFloat(2.5)
	if f.Float(1) != 2.5 {
		t.Fatal("float append")
	}
	s := NewString([]string{"a"})
	s.AppendStr("b")
	if s.Str(1) != "b" {
		t.Fatal("string append")
	}
	b := NewBool([]bool{true})
	b.AppendBool(false)
	if b.BoolAt(1) {
		t.Fatal("bool append")
	}
}

func TestTypeString(t *testing.T) {
	if Int64.String() != "BIGINT" || Float64.String() != "DOUBLE" ||
		String.String() != "VARCHAR" || Bool.String() != "BOOLEAN" {
		t.Fatal("type names")
	}
}

func TestNulls(t *testing.T) {
	c := NewEmpty(Int64)
	c.AppendInt(1)
	c.AppendNull()
	c.AppendInt(3)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) {
		t.Fatal("null flags")
	}
	if c.Value(1) != nil {
		t.Fatal("null value should be nil")
	}
	if c.CountNonNull() != 2 {
		t.Fatalf("CountNonNull = %d", c.CountNonNull())
	}
	// Appends after a null keep the bitmap aligned.
	c.AppendInt(4)
	if c.IsNull(3) {
		t.Fatal("appended value marked null")
	}
	// Selections skip nulls.
	if got := c.SelectInt(Ge, 0); len(got) != 3 {
		t.Fatalf("SelectInt over nulls = %v", got)
	}
	// SetNull works on existing rows.
	c.SetNull(0)
	if !c.IsNull(0) {
		t.Fatal("SetNull")
	}
}

func TestAppendValueCoercion(t *testing.T) {
	c := NewEmpty(Int64)
	if err := c.AppendValue(int(7)); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendValue(float64(2.9)); err != nil {
		t.Fatal(err)
	}
	if c.Int(1) != 2 {
		t.Fatalf("truncated float = %d", c.Int(1))
	}
	if err := c.AppendValue("nope"); err == nil {
		t.Fatal("string into int should fail")
	}
	f := NewEmpty(Float64)
	if err := f.AppendValue(int64(3)); err != nil || f.Float(0) != 3 {
		t.Fatal("int into float")
	}
	if err := f.AppendValue(true); err == nil {
		t.Fatal("bool into float should fail")
	}
	s := NewEmpty(String)
	if err := s.AppendValue(1); err == nil {
		t.Fatal("int into string should fail")
	}
	b := NewEmpty(Bool)
	if err := b.AppendValue("x"); err == nil {
		t.Fatal("string into bool should fail")
	}
	if err := b.AppendValue(nil); err != nil || !b.IsNull(0) {
		t.Fatal("nil appends NULL")
	}
}

func TestSelect(t *testing.T) {
	c := NewInt64([]int64{5, 2, 8, 2, 9, 1})
	if got := c.SelectInt(Eq, 2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Eq = %v", got)
	}
	if got := c.SelectInt(Gt, 4); len(got) != 3 {
		t.Fatalf("Gt = %v", got)
	}
	if got := c.SelectInt(Ne, 2); len(got) != 4 {
		t.Fatalf("Ne = %v", got)
	}
	if got := c.SelectRangeInt(2, 5); len(got) != 3 {
		t.Fatalf("Range = %v", got)
	}
	f := NewFloat64([]float64{0.5, 1.5, 2.5})
	if got := f.SelectFloat(Le, 1.5); len(got) != 2 {
		t.Fatalf("FloatLe = %v", got)
	}
	if got := f.SelectRangeFloat(1.0, 3.0); len(got) != 2 {
		t.Fatalf("FloatRange = %v", got)
	}
	s := NewString([]string{"fire", "water", "fire"})
	if got := s.SelectStr(Eq, "fire"); len(got) != 2 {
		t.Fatalf("StrEq = %v", got)
	}
	if got := s.SelectStr(Lt, "g"); len(got) != 2 {
		t.Fatalf("StrLt = %v", got)
	}
}

func TestSelectInCandidateChaining(t *testing.T) {
	// Chained predicates: temp > 310 AND conf >= 0.8 — the MonetDB
	// candidate-list pattern.
	temp := NewFloat64([]float64{300, 315, 320, 305, 330})
	conf := NewFloat64([]float64{0.9, 0.7, 0.85, 0.95, 0.99})
	cands := temp.SelectFloat(Gt, 310)
	got, err := conf.SelectIn(cands, Ge, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("chained = %v", got)
	}
	if _, err := conf.SelectIn(cands, Ge, "bad"); err == nil {
		t.Fatal("type mismatch should error")
	}
}

func TestGather(t *testing.T) {
	c := NewString([]string{"a", "b", "c", "d"})
	g := c.Gather([]int{3, 1})
	if g.Len() != 2 || g.Str(0) != "d" || g.Str(1) != "b" {
		t.Fatalf("gather = %v", g.strs)
	}
	// Gather keeps null flags.
	n := NewEmpty(Int64)
	n.AppendInt(1)
	n.AppendNull()
	gn := n.Gather([]int{1, 0})
	if !gn.IsNull(0) || gn.IsNull(1) {
		t.Fatal("gather nulls")
	}
}

func TestSlice(t *testing.T) {
	c := NewInt64([]int64{0, 1, 2, 3, 4})
	s := c.Slice(1, 4)
	if s.Len() != 3 || s.Int(0) != 1 || s.Int(2) != 3 {
		t.Fatal("slice")
	}
}

func TestSortedPerm(t *testing.T) {
	c := NewInt64([]int64{3, 1, 2})
	p := c.SortedPerm()
	if p[0] != 1 || p[1] != 2 || p[2] != 0 {
		t.Fatalf("perm = %v", p)
	}
	// Nulls sort first, stably.
	n := NewEmpty(String)
	n.AppendStr("b")
	n.AppendNull()
	n.AppendStr("a")
	pn := n.SortedPerm()
	if pn[0] != 1 {
		t.Fatalf("null not first: %v", pn)
	}
	f := NewFloat64([]float64{2.5, 0.5})
	if pf := f.SortedPerm(); pf[0] != 1 {
		t.Fatalf("float perm = %v", pf)
	}
	b := NewBool([]bool{true, false})
	if pb := b.SortedPerm(); pb[0] != 1 {
		t.Fatalf("bool perm = %v", pb)
	}
}

func TestHashJoinInt(t *testing.T) {
	l := NewInt64([]int64{1, 2, 3, 2})
	r := NewInt64([]int64{2, 4, 2})
	lp, rp := HashJoinInt(l, r)
	if len(lp) != len(rp) || len(lp) != 4 {
		t.Fatalf("join produced %d pairs, want 4", len(lp))
	}
	for k := range lp {
		if l.Int(lp[k]) != r.Int(rp[k]) {
			t.Fatalf("pair %d joins %d != %d", k, l.Int(lp[k]), r.Int(rp[k]))
		}
	}
	// Small-left vs small-right symmetry.
	lp2, rp2 := HashJoinInt(r, l)
	if len(lp2) != 4 {
		t.Fatalf("swapped join %d pairs", len(lp2))
	}
	for k := range lp2 {
		if r.Int(lp2[k]) != l.Int(rp2[k]) {
			t.Fatal("swapped pair mismatch")
		}
	}
	// Nulls never join.
	ln := NewEmpty(Int64)
	ln.AppendInt(7)
	ln.AppendNull()
	rn := NewInt64([]int64{7, 0})
	lp3, _ := HashJoinInt(ln, rn)
	if len(lp3) != 1 {
		t.Fatalf("null join pairs = %d", len(lp3))
	}
}

func TestAggregates(t *testing.T) {
	c := NewFloat64([]float64{1, 2, 3, 4})
	if c.SumFloat() != 10 {
		t.Fatal("sum")
	}
	min, max, ok := c.MinMaxFloat()
	if !ok || min != 1 || max != 4 {
		t.Fatalf("minmax = %g %g %v", min, max, ok)
	}
	i := NewInt64([]int64{5, -2})
	if i.SumFloat() != 3 {
		t.Fatal("int sum")
	}
	empty := NewEmpty(Float64)
	if _, _, ok := empty.MinMaxFloat(); ok {
		t.Fatal("empty minmax should report !ok")
	}
	allNull := NewEmpty(Int64)
	allNull.AppendNull()
	if _, _, ok := allNull.MinMaxFloat(); ok {
		t.Fatal("all-null minmax should report !ok")
	}
	if allNull.SumFloat() != 0 {
		t.Fatal("all-null sum")
	}
}

func TestGroupBy(t *testing.T) {
	c := NewString([]string{"fire", "water", "fire", "land", "water"})
	groups, reps := c.GroupBy()
	if len(reps) != 3 {
		t.Fatalf("groups = %d", len(reps))
	}
	if groups[0] != groups[2] || groups[1] != groups[4] || groups[0] == groups[1] {
		t.Fatalf("group assignment = %v", groups)
	}
	i := NewInt64([]int64{1, 1, 2})
	gi, ri := i.GroupBy()
	if len(ri) != 2 || gi[0] != gi[1] {
		t.Fatal("int groups")
	}
	f := NewFloat64([]float64{0.5, 0.5, 1.5})
	if _, rf := f.GroupBy(); len(rf) != 2 {
		t.Fatal("float groups")
	}
	b := NewBool([]bool{true, false, true})
	if _, rb := b.GroupBy(); len(rb) != 2 {
		t.Fatal("bool groups")
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v != %s", op, want)
		}
	}
}

func TestSelectPropertyPartition(t *testing.T) {
	// Property: SelectInt(Lt, v) and SelectInt(Ge, v) partition all rows.
	f := func(vals []int64, v int64) bool {
		c := NewInt64(vals)
		lt := c.SelectInt(Lt, v)
		ge := c.SelectInt(Ge, v)
		return len(lt)+len(ge) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable("products",
		Field{"id", Int64}, Field{"name", String}, Field{"size", Float64})
	if err := tbl.AppendRow(int64(1), "msg1", 12.5); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(int64(2), "msg2", 14.5); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Col("name").Str(1) != "msg2" {
		t.Fatal("Col access")
	}
	if tbl.Col("missing") != nil {
		t.Fatal("missing column should be nil")
	}
	if tbl.ColIndex("size") != 2 || tbl.ColIndex("nope") != -1 {
		t.Fatal("ColIndex")
	}
	row := tbl.Row(0)
	if row[0] != int64(1) || row[1] != "msg1" || row[2] != 12.5 {
		t.Fatalf("Row = %v", row)
	}
	if err := tbl.AppendRow(int64(3)); err == nil {
		t.Fatal("arity mismatch should error")
	}
	g := tbl.Gather([]int{1})
	if g.NumRows() != 1 || g.Col("id").Int(0) != 2 {
		t.Fatal("table gather")
	}
	p, err := tbl.Project("size", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fields) != 2 || p.Fields[0].Name != "size" {
		t.Fatal("project")
	}
	if _, err := tbl.Project("ghost"); err == nil {
		t.Fatal("project missing column should error")
	}
}

func TestTablePersistence(t *testing.T) {
	tbl := NewTable("snapshot",
		Field{"id", Int64}, Field{"temp", Float64},
		Field{"sensor", String}, Field{"hot", Bool})
	if err := tbl.AppendRow(int64(1), 311.5, "SEVIRI", true); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(int64(2), 290.0, "MODIS", false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "snapshot" || got.NumRows() != 3 || len(got.Fields) != 4 {
		t.Fatalf("round trip shape: %q %d %d", got.Name, got.NumRows(), len(got.Fields))
	}
	if got.Col("temp").Float(0) != 311.5 || got.Col("sensor").Str(1) != "MODIS" {
		t.Fatal("values")
	}
	if !got.Col("hot").BoolAt(0) || got.Col("hot").BoolAt(1) {
		t.Fatal("bools")
	}
	for j := range got.Fields {
		if !got.Cols[j].IsNull(2) {
			t.Fatalf("null row lost in column %d", j)
		}
	}
}

func TestReadTableBadMagic(t *testing.T) {
	if _, err := ReadTable(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestRowTableMatchesColumnar(t *testing.T) {
	tbl := NewTable("t", Field{"k", Int64}, Field{"v", Float64})
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow(int64(i%10), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rt := FromTable(tbl)
	if len(rt.Rows) != 100 {
		t.Fatal("conversion")
	}
	// Equality select parity.
	colHits := tbl.Col("k").SelectInt(Eq, 3)
	rowHits := rt.SelectIntEq("k", 3)
	if len(colHits) != len(rowHits) {
		t.Fatalf("select parity: %d vs %d", len(colHits), len(rowHits))
	}
	// Range select parity.
	colR := tbl.Col("v").SelectRangeFloat(10, 20)
	rowR := rt.SelectFloatRange("v", 10, 20)
	if len(colR) != len(rowR) {
		t.Fatalf("range parity: %d vs %d", len(colR), len(rowR))
	}
	// Sum parity.
	if tbl.Col("v").SumFloat() != rt.SumFloat("v") {
		t.Fatal("sum parity")
	}
	// Join parity.
	other := NewTable("o", Field{"k", Int64})
	for i := 0; i < 5; i++ {
		if err := other.AppendRow(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	lp, _ := HashJoinInt(tbl.Col("k"), other.Col("k"))
	rj := rt.HashJoinInt("k", FromTable(other), "k")
	if len(lp) != len(rj) {
		t.Fatalf("join parity: %d vs %d", len(lp), len(rj))
	}
	// Missing columns.
	if rt.SelectIntEq("ghost", 1) != nil || rt.SumFloat("ghost") != 0 {
		t.Fatal("missing column handling")
	}
}
