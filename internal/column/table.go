package column

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Field describes one table column.
type Field struct {
	Name string
	Typ  Type
}

// Table is a named collection of equal-length columns — the relational
// face of the BAT kernel.
type Table struct {
	Name   string
	Fields []Field
	Cols   []*Column
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, fields ...Field) *Table {
	t := &Table{Name: name, Fields: fields}
	for _, f := range fields {
		t.Cols = append(t.Cols, NewEmpty(f.Typ))
	}
	return t
}

// NumRows reports the number of rows.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Col returns the column with the given name, or nil.
func (t *Table) Col(name string) *Column {
	for i, f := range t.Fields {
		if f.Name == name {
			return t.Cols[i]
		}
	}
	return nil
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// AppendRow appends one row; len(vals) must equal the column count.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("column: row has %d values, table %q has %d columns", len(vals), t.Name, len(t.Cols))
	}
	for i, v := range vals {
		if err := t.Cols[i].AppendValue(v); err != nil {
			return fmt.Errorf("column %q: %w", t.Fields[i].Name, err)
		}
	}
	return nil
}

// Row materialises row i as a value slice.
func (t *Table) Row(i int) []any {
	out := make([]any, len(t.Cols))
	for j, c := range t.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// Gather returns a new table with only the given row positions.
func (t *Table) Gather(positions []int) *Table {
	out := &Table{Name: t.Name, Fields: t.Fields}
	for _, c := range t.Cols {
		out.Cols = append(out.Cols, c.Gather(positions))
	}
	return out
}

// Head returns a view of the first n rows (shared column backing
// arrays); the table itself is returned when it has no more than n rows.
func (t *Table) Head(n int) *Table {
	if t.NumRows() <= n {
		return t
	}
	out := &Table{Name: t.Name, Fields: t.Fields}
	for _, c := range t.Cols {
		out.Cols = append(out.Cols, c.Slice(0, n))
	}
	return out
}

// Project returns a new table with only the named columns.
func (t *Table) Project(names ...string) (*Table, error) {
	out := &Table{Name: t.Name}
	for _, n := range names {
		i := t.ColIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("column: table %q has no column %q", t.Name, n)
		}
		out.Fields = append(out.Fields, t.Fields[i])
		out.Cols = append(out.Cols, t.Cols[i])
	}
	return out, nil
}

// tableMagic identifies the table binary snapshot format.
const tableMagic = "TELTBL1\n"

// WriteTo serialises the table in a column-major binary format.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	w32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return write(b[:])
	}
	w64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return write(b[:])
	}
	wstr := func(s string) error {
		if err := w32(uint32(len(s))); err != nil {
			return err
		}
		return write([]byte(s))
	}
	if err := write([]byte(tableMagic)); err != nil {
		return n, err
	}
	if err := wstr(t.Name); err != nil {
		return n, err
	}
	if err := w32(uint32(len(t.Fields))); err != nil {
		return n, err
	}
	if err := w64(uint64(t.NumRows())); err != nil {
		return n, err
	}
	for i, f := range t.Fields {
		if err := wstr(f.Name); err != nil {
			return n, err
		}
		if err := write([]byte{byte(f.Typ)}); err != nil {
			return n, err
		}
		c := t.Cols[i]
		switch f.Typ {
		case Int64:
			for _, v := range c.ints {
				if err := w64(uint64(v)); err != nil {
					return n, err
				}
			}
		case Float64:
			for _, v := range c.flts {
				if err := w64(math.Float64bits(v)); err != nil {
					return n, err
				}
			}
		case String:
			for _, v := range c.strs {
				if err := wstr(v); err != nil {
					return n, err
				}
			}
		case Bool:
			for _, v := range c.bools {
				b := byte(0)
				if v {
					b = 1
				}
				if err := write([]byte{b}); err != nil {
					return n, err
				}
			}
		}
		// Validity bitmap presence flag + bytes.
		if c.nulls == nil {
			if err := write([]byte{0}); err != nil {
				return n, err
			}
		} else {
			if err := write([]byte{1}); err != nil {
				return n, err
			}
			for _, isNull := range c.nulls {
				b := byte(0)
				if isNull {
					b = 1
				}
				if err := write([]byte{b}); err != nil {
					return n, err
				}
			}
		}
	}
	return n, bw.Flush()
}

// ReadTable deserialises a table snapshot written by WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(tableMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("column: reading table magic: %w", err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("column: bad table magic %q", magic)
	}
	r32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	r64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	rstr := func() (string, error) {
		l, err := r32()
		if err != nil {
			return "", err
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	name, err := rstr()
	if err != nil {
		return nil, err
	}
	nCols, err := r32()
	if err != nil {
		return nil, err
	}
	nRows, err := r64()
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name}
	for i := uint32(0); i < nCols; i++ {
		fname, err := rstr()
		if err != nil {
			return nil, err
		}
		var tb [1]byte
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			return nil, err
		}
		typ := Type(tb[0])
		c := NewEmpty(typ)
		switch typ {
		case Int64:
			c.ints = make([]int64, nRows)
			for j := range c.ints {
				v, err := r64()
				if err != nil {
					return nil, err
				}
				c.ints[j] = int64(v)
			}
		case Float64:
			c.flts = make([]float64, nRows)
			for j := range c.flts {
				v, err := r64()
				if err != nil {
					return nil, err
				}
				c.flts[j] = math.Float64frombits(v)
			}
		case String:
			c.strs = make([]string, nRows)
			for j := range c.strs {
				s, err := rstr()
				if err != nil {
					return nil, err
				}
				c.strs[j] = s
			}
		case Bool:
			c.bools = make([]bool, nRows)
			for j := range c.bools {
				var b [1]byte
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, err
				}
				c.bools[j] = b[0] == 1
			}
		default:
			return nil, fmt.Errorf("column: unknown column type %d", tb[0])
		}
		var hasNulls [1]byte
		if _, err := io.ReadFull(br, hasNulls[:]); err != nil {
			return nil, err
		}
		if hasNulls[0] == 1 {
			c.nulls = make([]bool, nRows)
			for j := range c.nulls {
				var b [1]byte
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, err
				}
				c.nulls[j] = b[0] == 1
			}
		}
		t.Fields = append(t.Fields, Field{Name: fname, Typ: typ})
		t.Cols = append(t.Cols, c)
	}
	return t, nil
}
