package column

import (
	"bytes"
	"testing"
)

// Truncation fuzzing for the table snapshot format: every strict prefix
// must error cleanly.
func TestReadTableTruncated(t *testing.T) {
	tbl := NewTable("t",
		Field{"id", Int64}, Field{"v", Float64},
		Field{"s", String}, Field{"b", Bool})
	for i := 0; i < 5; i++ {
		if err := tbl.AppendRow(int64(i), float64(i)/2, "row", i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Cols[2].SetNull(3)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := ReadTable(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("ReadTable succeeded on %d/%d byte prefix", cut, len(data))
		}
	}
	got, err := ReadTable(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cols[2].IsNull(3) {
		t.Fatal("null bitmap lost")
	}
}

func TestReadTableUnknownType(t *testing.T) {
	tbl := NewTable("t", Field{"id", Int64})
	if err := tbl.AppendRow(int64(1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The type byte follows magic(8) + nameLen(4)+name(1) + nCols(4) +
	// nRows(8) + fieldNameLen(4)+fieldName(2): corrupt it.
	idx := 8 + 4 + 1 + 4 + 8 + 4 + 2
	data[idx] = 99
	if _, err := ReadTable(bytes.NewReader(data)); err == nil {
		t.Fatal("unknown column type should error")
	}
}
