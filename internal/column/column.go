// Package column implements the MonetDB-style columnar kernel the TELEIOS
// database tier runs on: typed columns (BATs with a void head — the value
// vector plus implicit dense object identifiers), column-at-a-time
// operators producing materialised intermediate results, tables with
// schemas, and binary persistence.
//
// Both the SciQL array engine (internal/array, internal/sciql) and the
// Strabon triple store (internal/strabon) sit directly on this package,
// mirroring the paper's architecture where SciQL and Strabon share MonetDB
// as their execution substrate.
package column

import (
	"fmt"
	"math"
	"sort"
)

// Type enumerates column value types.
type Type int

// Column types.
const (
	Int64 Type = iota + 1
	Float64
	String
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// Column is a typed value vector — the tail of a MonetDB BAT whose head is
// the implicit dense sequence 0..n-1 (a "void" head). Exactly one of the
// data slices is in use, selected by Typ. Nulls are tracked in an optional
// validity bitmap (nil means all valid).
type Column struct {
	Typ   Type
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
	// nulls[i] set means row i is NULL. Lazily allocated.
	nulls []bool
}

// NewInt64 wraps vs (not copied) as an Int64 column.
func NewInt64(vs []int64) *Column { return &Column{Typ: Int64, ints: vs} }

// NewFloat64 wraps vs as a Float64 column.
func NewFloat64(vs []float64) *Column { return &Column{Typ: Float64, flts: vs} }

// NewString wraps vs as a String column.
func NewString(vs []string) *Column { return &Column{Typ: String, strs: vs} }

// NewBool wraps vs as a Bool column.
func NewBool(vs []bool) *Column { return &Column{Typ: Bool, bools: vs} }

// NewEmpty returns an empty column of type t.
func NewEmpty(t Type) *Column { return &Column{Typ: t} }

// Len reports the number of rows.
func (c *Column) Len() int {
	switch c.Typ {
	case Int64:
		return len(c.ints)
	case Float64:
		return len(c.flts)
	case String:
		return len(c.strs)
	case Bool:
		return len(c.bools)
	}
	return 0
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.nulls != nil && c.nulls[i] }

// SetNull marks row i as NULL.
func (c *Column) SetNull(i int) {
	if c.nulls == nil {
		c.nulls = make([]bool, c.Len())
	}
	c.nulls[i] = true
}

// Int returns the int64 value at row i (column must be Int64).
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Float returns the float64 value at row i (column must be Float64).
func (c *Column) Float(i int) float64 { return c.flts[i] }

// Str returns the string value at row i (column must be String).
func (c *Column) Str(i int) string { return c.strs[i] }

// BoolAt returns the bool value at row i (column must be Bool).
func (c *Column) BoolAt(i int) bool { return c.bools[i] }

// Ints exposes the backing int64 slice (Int64 columns only; nil otherwise).
func (c *Column) Ints() []int64 { return c.ints }

// Floats exposes the backing float64 slice.
func (c *Column) Floats() []float64 { return c.flts }

// Strs exposes the backing string slice.
func (c *Column) Strs() []string { return c.strs }

// Bools exposes the backing bool slice.
func (c *Column) Bools() []bool { return c.bools }

// AppendInt appends v (Int64 columns).
func (c *Column) AppendInt(v int64) {
	c.ints = append(c.ints, v)
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
}

// AppendFloat appends v (Float64 columns).
func (c *Column) AppendFloat(v float64) {
	c.flts = append(c.flts, v)
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
}

// AppendStr appends v (String columns).
func (c *Column) AppendStr(v string) {
	c.strs = append(c.strs, v)
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
}

// AppendBool appends v (Bool columns).
func (c *Column) AppendBool(v bool) {
	c.bools = append(c.bools, v)
	if c.nulls != nil {
		c.nulls = append(c.nulls, false)
	}
}

// AttachNulls installs a validity bitmap wholesale: nulls[i] set marks
// row i NULL. Passing nil (or an all-false mask) clears the bitmap. The
// slice is retained, not copied.
func (c *Column) AttachNulls(nulls []bool) {
	for _, isNull := range nulls {
		if isNull {
			c.nulls = nulls
			return
		}
	}
	c.nulls = nil
}

// AppendNull appends a NULL row.
func (c *Column) AppendNull() {
	switch c.Typ {
	case Int64:
		c.ints = append(c.ints, 0)
	case Float64:
		c.flts = append(c.flts, 0)
	case String:
		c.strs = append(c.strs, "")
	case Bool:
		c.bools = append(c.bools, false)
	}
	if c.nulls == nil {
		c.nulls = make([]bool, c.Len()-1)
	}
	c.nulls = append(c.nulls, true)
}

// Value returns the value at row i as an interface (nil for NULL).
func (c *Column) Value(i int) any {
	if c.IsNull(i) {
		return nil
	}
	switch c.Typ {
	case Int64:
		return c.ints[i]
	case Float64:
		return c.flts[i]
	case String:
		return c.strs[i]
	case Bool:
		return c.bools[i]
	}
	return nil
}

// AppendValue appends v, coercing numerically compatible types; nil appends
// NULL. It returns an error for incompatible values.
func (c *Column) AppendValue(v any) error {
	if v == nil {
		c.AppendNull()
		return nil
	}
	switch c.Typ {
	case Int64:
		switch x := v.(type) {
		case int64:
			c.AppendInt(x)
		case int:
			c.AppendInt(int64(x))
		case float64:
			c.AppendInt(int64(x))
		default:
			return fmt.Errorf("column: cannot append %T to BIGINT", v)
		}
	case Float64:
		switch x := v.(type) {
		case float64:
			c.AppendFloat(x)
		case int64:
			c.AppendFloat(float64(x))
		case int:
			c.AppendFloat(float64(x))
		default:
			return fmt.Errorf("column: cannot append %T to DOUBLE", v)
		}
	case String:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("column: cannot append %T to VARCHAR", v)
		}
		c.AppendStr(s)
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("column: cannot append %T to BOOLEAN", v)
		}
		c.AppendBool(b)
	}
	return nil
}

// Gather materialises the rows of c at the given positions — MonetDB's
// projection (leftfetchjoin) primitive.
func (c *Column) Gather(positions []int) *Column {
	out := &Column{Typ: c.Typ}
	switch c.Typ {
	case Int64:
		out.ints = make([]int64, len(positions))
		for i, p := range positions {
			out.ints[i] = c.ints[p]
		}
	case Float64:
		out.flts = make([]float64, len(positions))
		for i, p := range positions {
			out.flts[i] = c.flts[p]
		}
	case String:
		out.strs = make([]string, len(positions))
		for i, p := range positions {
			out.strs[i] = c.strs[p]
		}
	case Bool:
		out.bools = make([]bool, len(positions))
		for i, p := range positions {
			out.bools[i] = c.bools[p]
		}
	}
	if c.nulls != nil {
		out.nulls = make([]bool, len(positions))
		for i, p := range positions {
			out.nulls[i] = c.nulls[p]
		}
	}
	return out
}

// Slice returns a view of rows [lo, hi) (shared backing arrays).
func (c *Column) Slice(lo, hi int) *Column {
	out := &Column{Typ: c.Typ}
	switch c.Typ {
	case Int64:
		out.ints = c.ints[lo:hi]
	case Float64:
		out.flts = c.flts[lo:hi]
	case String:
		out.strs = c.strs[lo:hi]
	case Bool:
		out.bools = c.bools[lo:hi]
	}
	if c.nulls != nil {
		out.nulls = c.nulls[lo:hi]
	}
	return out
}

// CmpOp is a comparison operator for selections.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// SelectInt scans an Int64 column and returns the positions where
// value <op> v holds (NULLs never match). This is the BAT select operator:
// a full-column scan producing a candidate list.
func (c *Column) SelectInt(op CmpOp, v int64) []int {
	var out []int
	for i, x := range c.ints {
		if c.IsNull(i) {
			continue
		}
		if cmpInt(x, v, op) {
			out = append(out, i)
		}
	}
	return out
}

// SelectFloat scans a Float64 column with predicate value <op> v.
func (c *Column) SelectFloat(op CmpOp, v float64) []int {
	var out []int
	for i, x := range c.flts {
		if c.IsNull(i) {
			continue
		}
		if cmpFloat(x, v, op) {
			out = append(out, i)
		}
	}
	return out
}

// SelectStr scans a String column with predicate value <op> v.
func (c *Column) SelectStr(op CmpOp, v string) []int {
	var out []int
	for i, x := range c.strs {
		if c.IsNull(i) {
			continue
		}
		if cmpStr(x, v, op) {
			out = append(out, i)
		}
	}
	return out
}

// SelectRangeInt returns positions with lo <= value <= hi.
func (c *Column) SelectRangeInt(lo, hi int64) []int {
	var out []int
	for i, x := range c.ints {
		if c.IsNull(i) {
			continue
		}
		if x >= lo && x <= hi {
			out = append(out, i)
		}
	}
	return out
}

// SelectRangeFloat returns positions with lo <= value <= hi.
func (c *Column) SelectRangeFloat(lo, hi float64) []int {
	var out []int
	for i, x := range c.flts {
		if c.IsNull(i) {
			continue
		}
		if x >= lo && x <= hi {
			out = append(out, i)
		}
	}
	return out
}

// SelectIn refines a candidate list: it keeps only the candidate positions
// whose value satisfies <op> v. This is the candidate-list form of select
// that MonetDB chains between predicates.
func (c *Column) SelectIn(cands []int, op CmpOp, v any) ([]int, error) {
	out := cands[:0:0]
	for _, p := range cands {
		if c.IsNull(p) {
			continue
		}
		ok, err := c.cmpAt(p, op, v)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
		}
	}
	return out, nil
}

func (c *Column) cmpAt(i int, op CmpOp, v any) (bool, error) {
	switch c.Typ {
	case Int64:
		switch x := v.(type) {
		case int64:
			return cmpInt(c.ints[i], x, op), nil
		case int:
			return cmpInt(c.ints[i], int64(x), op), nil
		case float64:
			return cmpFloat(float64(c.ints[i]), x, op), nil
		}
	case Float64:
		switch x := v.(type) {
		case float64:
			return cmpFloat(c.flts[i], x, op), nil
		case int64:
			return cmpFloat(c.flts[i], float64(x), op), nil
		case int:
			return cmpFloat(c.flts[i], float64(x), op), nil
		}
	case String:
		if x, ok := v.(string); ok {
			return cmpStr(c.strs[i], x, op), nil
		}
	case Bool:
		if x, ok := v.(bool); ok {
			switch op {
			case Eq:
				return c.bools[i] == x, nil
			case Ne:
				return c.bools[i] != x, nil
			}
		}
	}
	return false, fmt.Errorf("column: cannot compare %s with %T", c.Typ, v)
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

func cmpStr(a, b string, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// SortedPerm returns a permutation of row positions that orders the column
// ascending (NULLs first), implementing the BAT sort operator.
func (c *Column) SortedPerm() []int {
	perm := make([]int, c.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		ni, nj := c.IsNull(i), c.IsNull(j)
		if ni || nj {
			return ni && !nj
		}
		switch c.Typ {
		case Int64:
			return c.ints[i] < c.ints[j]
		case Float64:
			return c.flts[i] < c.flts[j]
		case String:
			return c.strs[i] < c.strs[j]
		case Bool:
			return !c.bools[i] && c.bools[j]
		}
		return false
	})
	return perm
}

// HashJoinInt joins two Int64 columns on equality, returning parallel
// position slices (left positions, right positions) for every match —
// the BAT join returning an (oid, oid) pair list. The smaller column is
// used as the hash build side.
func HashJoinInt(left, right *Column) (lpos, rpos []int) {
	if left.Typ != Int64 || right.Typ != Int64 {
		return nil, nil
	}
	build, probe := left, right
	swapped := false
	if right.Len() < left.Len() {
		build, probe = right, left
		swapped = true
	}
	ht := make(map[int64][]int, build.Len())
	for i, v := range build.ints {
		if build.IsNull(i) {
			continue
		}
		ht[v] = append(ht[v], i)
	}
	for j, v := range probe.ints {
		if probe.IsNull(j) {
			continue
		}
		for _, i := range ht[v] {
			if swapped {
				lpos = append(lpos, j)
				rpos = append(rpos, i)
			} else {
				lpos = append(lpos, i)
				rpos = append(rpos, j)
			}
		}
	}
	return lpos, rpos
}

// Aggregates ---------------------------------------------------------------

// SumFloat sums a numeric column (Int64 or Float64), skipping NULLs.
func (c *Column) SumFloat() float64 {
	var sum float64
	switch c.Typ {
	case Int64:
		for i, v := range c.ints {
			if !c.IsNull(i) {
				sum += float64(v)
			}
		}
	case Float64:
		for i, v := range c.flts {
			if !c.IsNull(i) {
				sum += v
			}
		}
	}
	return sum
}

// MinMaxFloat reports the min and max of a numeric column, skipping NULLs;
// ok is false when all rows are NULL or the column is empty.
func (c *Column) MinMaxFloat() (min, max float64, ok bool) {
	min, max = math.Inf(1), math.Inf(-1)
	get := func(i int) (float64, bool) {
		if c.IsNull(i) {
			return 0, false
		}
		switch c.Typ {
		case Int64:
			return float64(c.ints[i]), true
		case Float64:
			return c.flts[i], true
		}
		return 0, false
	}
	for i := 0; i < c.Len(); i++ {
		if v, valid := get(i); valid {
			ok = true
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max, ok
}

// CountNonNull reports the number of non-NULL rows.
func (c *Column) CountNonNull() int {
	if c.nulls == nil {
		return c.Len()
	}
	n := 0
	for _, isNull := range c.nulls {
		if !isNull {
			n++
		}
	}
	return n
}

// GroupBy computes dense group ids for the column: out[i] is the group of
// row i, and the return values are (groupIDs, representative positions).
// Strings and ints group by value; floats by bit pattern.
func (c *Column) GroupBy() (groups []int, reps []int) {
	groups = make([]int, c.Len())
	next := 0
	switch c.Typ {
	case Int64:
		seen := make(map[int64]int)
		for i, v := range c.ints {
			key := v
			g, ok := seen[key]
			if !ok {
				g = next
				next++
				seen[key] = g
				reps = append(reps, i)
			}
			groups[i] = g
		}
	case String:
		seen := make(map[string]int)
		for i, v := range c.strs {
			g, ok := seen[v]
			if !ok {
				g = next
				next++
				seen[v] = g
				reps = append(reps, i)
			}
			groups[i] = g
		}
	case Float64:
		seen := make(map[uint64]int)
		for i, v := range c.flts {
			key := math.Float64bits(v)
			g, ok := seen[key]
			if !ok {
				g = next
				next++
				seen[key] = g
				reps = append(reps, i)
			}
			groups[i] = g
		}
	case Bool:
		seen := make(map[bool]int)
		for i, v := range c.bools {
			g, ok := seen[v]
			if !ok {
				g = next
				next++
				seen[v] = g
				reps = append(reps, i)
			}
			groups[i] = g
		}
	}
	return groups, reps
}
