package column

// RowTable is a row-at-a-time (N-ary storage) comparator used by the A2
// ablation benchmark: the same relation stored as a slice of row tuples,
// queried with tuple-at-a-time iteration. It exists only to measure the
// column-at-a-time execution advantage the paper's MonetDB substrate
// provides; production code paths always use Table.
type RowTable struct {
	Name   string
	Fields []Field
	Rows   [][]any
}

// NewRowTable creates an empty row-oriented table.
func NewRowTable(name string, fields ...Field) *RowTable {
	return &RowTable{Name: name, Fields: fields}
}

// FromTable converts a columnar table to row layout.
func FromTable(t *Table) *RowTable {
	rt := &RowTable{Name: t.Name, Fields: t.Fields}
	n := t.NumRows()
	rt.Rows = make([][]any, n)
	for i := 0; i < n; i++ {
		rt.Rows[i] = t.Row(i)
	}
	return rt
}

// AppendRow appends one row tuple.
func (rt *RowTable) AppendRow(vals ...any) {
	row := make([]any, len(vals))
	copy(row, vals)
	rt.Rows = append(rt.Rows, row)
}

// colIndex returns the index of the named column, or -1.
func (rt *RowTable) colIndex(name string) int {
	for i, f := range rt.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// SelectIntEq scans tuple-at-a-time for rows where col == v.
func (rt *RowTable) SelectIntEq(col string, v int64) [][]any {
	ci := rt.colIndex(col)
	if ci < 0 {
		return nil
	}
	var out [][]any
	for _, row := range rt.Rows {
		if x, ok := row[ci].(int64); ok && x == v {
			out = append(out, row)
		}
	}
	return out
}

// SelectFloatRange scans tuple-at-a-time for rows with lo <= col <= hi.
func (rt *RowTable) SelectFloatRange(col string, lo, hi float64) [][]any {
	ci := rt.colIndex(col)
	if ci < 0 {
		return nil
	}
	var out [][]any
	for _, row := range rt.Rows {
		if x, ok := row[ci].(float64); ok && x >= lo && x <= hi {
			out = append(out, row)
		}
	}
	return out
}

// SumFloat computes the sum of a float column tuple-at-a-time.
func (rt *RowTable) SumFloat(col string) float64 {
	ci := rt.colIndex(col)
	if ci < 0 {
		return 0
	}
	var sum float64
	for _, row := range rt.Rows {
		switch x := row[ci].(type) {
		case float64:
			sum += x
		case int64:
			sum += float64(x)
		}
	}
	return sum
}

// HashJoinInt performs a tuple-at-a-time hash join on integer columns.
func (rt *RowTable) HashJoinInt(col string, other *RowTable, otherCol string) [][]any {
	ci := rt.colIndex(col)
	cj := other.colIndex(otherCol)
	if ci < 0 || cj < 0 {
		return nil
	}
	ht := make(map[int64][][]any)
	for _, row := range other.Rows {
		if v, ok := row[cj].(int64); ok {
			ht[v] = append(ht[v], row)
		}
	}
	var out [][]any
	for _, row := range rt.Rows {
		v, ok := row[ci].(int64)
		if !ok {
			continue
		}
		for _, m := range ht[v] {
			joined := make([]any, 0, len(row)+len(m))
			joined = append(joined, row...)
			joined = append(joined, m...)
			out = append(out, joined)
		}
	}
	return out
}
