// Package linkeddata generates the auxiliary linked open data the paper
// joins EO products against: GeoNames-style populated places and
// archaeological sites, LinkedGeoData/OpenStreetMap-style roads, a CORINE
// land-cover layer, and the coastline/sea mask used by the refinement
// step. All datasets derive from the shared synthetic scene
// (internal/scene), as stRDF triples ready for a Strabon store.
package linkeddata

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/scene"
	"repro/internal/strdf"
)

// Namespaces of the synthetic datasets.
const (
	GeoNamesNS = "http://sws.geonames.org/teleios/"
	LGDNS      = "http://linkedgeodata.org/teleios/"
	CorineNS   = "http://geo.linkedopendata.gr/corine/"
	CoastNS    = "http://geo.linkedopendata.gr/coastline/"

	// Shared predicates.
	PropGeometry   = "http://teleios.di.uoa.gr/noa#hasGeometry"
	PropName       = "http://www.w3.org/2000/01/rdf-schema#label"
	PropPopulation = GeoNamesNS + "population"

	// Classes.
	ClassSite     = GeoNamesNS + "ArchaeologicalSite"
	ClassTown     = GeoNamesNS + "PopulatedPlace"
	ClassRoad     = LGDNS + "Road"
	ClassSea      = CoastNS + "Sea"
	ClassLandmass = CoastNS + "Landmass"
)

// GeoNames emits archaeological sites and towns as linked data.
func GeoNames() []rdf.Triple {
	var out []rdf.Triple
	for _, s := range scene.ArchaeologicalSites() {
		iri := rdf.IRI(GeoNamesNS + "site/" + s.Name)
		out = append(out,
			rdf.NewTriple(iri, rdf.IRI(rdf.RDFType), rdf.IRI(ClassSite)),
			rdf.NewTriple(iri, rdf.IRI(PropName), rdf.Literal(s.Name)),
			rdf.NewTriple(iri, rdf.IRI(PropGeometry), strdf.Literal(s.Loc, geo.SRIDWGS84)),
		)
	}
	for _, t := range scene.Towns() {
		iri := rdf.IRI(GeoNamesNS + "town/" + t.Name)
		out = append(out,
			rdf.NewTriple(iri, rdf.IRI(rdf.RDFType), rdf.IRI(ClassTown)),
			rdf.NewTriple(iri, rdf.IRI(PropName), rdf.Literal(t.Name)),
			rdf.NewTriple(iri, rdf.IRI(PropGeometry), strdf.Literal(t.Loc, geo.SRIDWGS84)),
			rdf.NewTriple(iri, rdf.IRI(PropPopulation), rdf.IntegerLiteral(int64(t.Population))),
		)
	}
	return out
}

// LinkedGeoData emits the road network.
func LinkedGeoData() []rdf.Triple {
	var out []rdf.Triple
	for _, r := range scene.Roads() {
		iri := rdf.IRI(LGDNS + "road/" + r.Name)
		out = append(out,
			rdf.NewTriple(iri, rdf.IRI(rdf.RDFType), rdf.IRI(ClassRoad)),
			rdf.NewTriple(iri, rdf.IRI(PropName), rdf.Literal(r.Name)),
			rdf.NewTriple(iri, rdf.IRI(PropGeometry), strdf.Literal(r.Path, geo.SRIDWGS84)),
		)
	}
	return out
}

// Corine emits the land-cover polygons typed with the land-cover
// ontology's forest classes.
func Corine() []rdf.Triple {
	var out []rdf.Triple
	for i, f := range scene.Forests() {
		iri := rdf.IRI(fmt.Sprintf("%sarea/%d", CorineNS, i+1))
		out = append(out,
			rdf.NewTriple(iri, rdf.IRI(rdf.RDFType), rdf.IRI(ontology.LandCover+"Forest")),
			rdf.NewTriple(iri, rdf.IRI(PropName), rdf.Literal(f.Name)),
			rdf.NewTriple(iri, rdf.IRI(PropGeometry), strdf.Literal(f.Area, geo.SRIDWGS84)),
			rdf.NewTriple(iri, rdf.IRI(CorineNS+"species"), rdf.Literal(f.Species)),
		)
	}
	return out
}

// Coastline emits the sea mask (the region minus the landmass) and the
// landmass polygon — the geospatial layer the refinement subtracts
// hotspot geometries against.
func Coastline() []rdf.Triple {
	sea := rdf.IRI(CoastNS + "sea")
	land := rdf.IRI(CoastNS + "landmass")
	return []rdf.Triple{
		rdf.NewTriple(sea, rdf.IRI(rdf.RDFType), rdf.IRI(ClassSea)),
		rdf.NewTriple(sea, rdf.IRI(PropGeometry), strdf.Literal(scene.Sea(), geo.SRIDWGS84)),
		rdf.NewTriple(land, rdf.IRI(rdf.RDFType), rdf.IRI(ClassLandmass)),
		rdf.NewTriple(land, rdf.IRI(PropGeometry), strdf.Literal(scene.Landmass(), geo.SRIDWGS84)),
	}
}

// All concatenates every dataset plus the two domain ontologies.
func All() []rdf.Triple {
	var out []rdf.Triple
	out = append(out, GeoNames()...)
	out = append(out, LinkedGeoData()...)
	out = append(out, Corine()...)
	out = append(out, Coastline()...)
	out = append(out, ontology.LandCoverOntology().Triples()...)
	out = append(out, ontology.MonitoringOntology().Triples()...)
	return out
}

// SyntheticSites generates n additional archaeological sites on a
// deterministic grid over the landmass, for catalogue-scaling benchmarks
// (Figure 3 / Q1 sweeps). Sites falling in the sea are skipped, so fewer
// than n may be returned.
func SyntheticSites(n int) []rdf.Triple {
	var out []rdf.Triple
	made := 0
	for i := 0; made < n; i++ {
		// Low-discrepancy-ish placement over the region.
		fx := float64(i%97) / 97
		fy := float64((i*37)%89) / 89
		p := geo.Point{
			X: scene.Region.MinX + fx*scene.Region.Width(),
			Y: scene.Region.MinY + fy*scene.Region.Height(),
		}
		if !scene.OnLandAnalytic(p) {
			if i > n*20 {
				break // landmass saturated; avoid spinning
			}
			continue
		}
		iri := rdf.IRI(fmt.Sprintf("%ssite/synthetic-%d", GeoNamesNS, made))
		out = append(out,
			rdf.NewTriple(iri, rdf.IRI(rdf.RDFType), rdf.IRI(ClassSite)),
			rdf.NewTriple(iri, rdf.IRI(PropName), rdf.Literal(fmt.Sprintf("Synthetic site %d", made))),
			rdf.NewTriple(iri, rdf.IRI(PropGeometry), strdf.Literal(p, geo.SRIDWGS84)),
		)
		made++
	}
	return out
}
