package linkeddata

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/scene"
	"repro/internal/strabon"
	"repro/internal/strdf"
	"repro/internal/stsparql"
)

func TestGeoNames(t *testing.T) {
	triples := GeoNames()
	sites := len(scene.ArchaeologicalSites())
	towns := len(scene.Towns())
	// 3 triples per site, 4 per town.
	if len(triples) != sites*3+towns*4 {
		t.Fatalf("triples = %d", len(triples))
	}
	// Every geometry literal decodes.
	for _, tr := range triples {
		if tr.P.Value == PropGeometry {
			if _, err := strdf.ParseSpatial(tr.O); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCoastlineConsistentWithScene(t *testing.T) {
	triples := Coastline()
	var sea, land geo.Geometry
	for _, tr := range triples {
		if tr.P.Value != PropGeometry {
			continue
		}
		v, err := strdf.ParseSpatial(tr.O)
		if err != nil {
			t.Fatal(err)
		}
		switch tr.S.Value {
		case CoastNS + "sea":
			sea = v.Geom
		case CoastNS + "landmass":
			land = v.Geom
		}
	}
	if sea == nil || land == nil {
		t.Fatal("sea or landmass missing")
	}
	// A point on land is in landmass and not in the sea interior.
	p := geo.NewPoint(24, 38)
	if !geo.Intersects(p, land) {
		t.Fatal("centre should be on land")
	}
	if geo.Within(p, sea) {
		t.Fatal("centre should not be in the sea")
	}
	// A far corner is sea.
	q := geo.NewPoint(26.8, 36.2)
	if !geo.Intersects(q, sea) {
		t.Fatal("corner should be sea")
	}
}

func TestAllLoadsIntoStrabon(t *testing.T) {
	st := strabon.NewStore()
	n := st.AddAll(All())
	if n == 0 {
		t.Fatal("nothing loaded")
	}
	if st.Len() != n {
		t.Fatal("duplicate triples in All()")
	}
	// The data answers a realistic query: towns with population > 20000.
	eng := stsparql.New(st)
	res := eng.MustQuery(`
		PREFIX gn: <http://sws.geonames.org/teleios/>
		SELECT ?t ?p WHERE {
			?t a gn:PopulatedPlace .
			?t gn:population ?p .
			FILTER(?p > 20000)
		}`)
	if len(res.Bindings) != 5 {
		t.Fatalf("big towns = %d", len(res.Bindings))
	}
	// Ontology subsumption data is present.
	ask := eng.MustQuery(`
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		PREFIX lc: <http://teleios.di.uoa.gr/landcover#>
		ASK WHERE { lc:Lake rdfs:subClassOf lc:WaterBody }`)
	if !ask.Bool {
		t.Fatal("land-cover ontology missing")
	}
}

func TestSyntheticSites(t *testing.T) {
	triples := SyntheticSites(50)
	if len(triples) != 150 {
		t.Fatalf("triples = %d (want 50 sites x 3)", len(triples))
	}
	// All on land.
	land := scene.Landmass()
	for _, tr := range triples {
		if tr.P.Value != PropGeometry {
			continue
		}
		v, err := strdf.ParseSpatial(tr.O)
		if err != nil {
			t.Fatal(err)
		}
		if !geo.Intersects(v.Geom, land) {
			t.Errorf("synthetic site off land: %v", v.Geom)
		}
	}
	// Deterministic.
	again := SyntheticSites(50)
	for i := range triples {
		if triples[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	// Zero sites.
	if len(SyntheticSites(0)) != 0 {
		t.Fatal("zero request")
	}
}

func TestCorineTypedWithOntology(t *testing.T) {
	for _, tr := range Corine() {
		if tr.P.Value == rdf.RDFType && tr.O.Value != "http://teleios.di.uoa.gr/landcover#Forest" {
			t.Fatalf("type = %v", tr.O)
		}
	}
}

func TestLinkedGeoDataRoads(t *testing.T) {
	triples := LinkedGeoData()
	if len(triples) != len(scene.Roads())*3 {
		t.Fatalf("triples = %d", len(triples))
	}
	for _, tr := range triples {
		if tr.P.Value == PropGeometry {
			v, err := strdf.ParseSpatial(tr.O)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := v.Geom.(geo.LineString); !ok {
				t.Fatalf("road geometry type %T", v.Geom)
			}
		}
	}
}
