// Package ingest implements the ingestion tier of the Virtual Earth
// Observatory (Figure 2 of the paper): converting external satellite
// products into database arrays the DBMS can optimise over, cropping to
// the area of interest, georeferencing onto a target grid, cutting images
// into square patches with feature vectors, and extracting catalogue
// metadata as stRDF.
package ingest

import (
	"fmt"
	"math"
	"time"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/parallel"
	"repro/internal/raster"
	"repro/internal/rdf"
	"repro/internal/sciql"
	"repro/internal/strdf"
)

// NOA vocabulary IRIs used by the metadata extractor.
const (
	NS            = "http://teleios.di.uoa.gr/noa#"
	ClassProduct  = NS + "Product"
	PropSatellite = NS + "satellite"
	PropSensor    = NS + "sensor"
	PropAcquired  = NS + "acquiredAt"
	PropCoverage  = NS + "coverage"
	PropBand      = NS + "hasBand"
	PropWidth     = NS + "width"
	PropHeight    = NS + "height"
)

// RegisterFrame loads every band of a frame into the SciQL engine as a
// 2D array named "<prefix>_<band>" with dimensions (y, x) and value "v".
// This is the "image as first-class array" step: after registration the
// processing chain manipulates the image declaratively.
func RegisterFrame(eng *sciql.Engine, prefix string, f *raster.Frame) error {
	for band, img := range f.Bands {
		name := fmt.Sprintf("%s_%s", prefix, band)
		plane := img.Clone()
		plane.Name = "v"
		if err := eng.RegisterArray(name, img.Dims, map[string]*array.Array{"v": plane}); err != nil {
			return fmt.Errorf("ingest: registering %s: %w", name, err)
		}
	}
	return nil
}

// Crop cuts a geographic window out of a band, returning the cropped
// image and the georeference of the result. Rows/cols outside the frame
// are clamped.
func Crop(f *raster.Frame, band raster.Band, window geo.Envelope) (*array.Array, raster.GeoRef, error) {
	img, err := f.Band(band)
	if err != nil {
		return nil, raster.GeoRef{}, err
	}
	if !window.Intersects(f.Envelope()) {
		return nil, raster.GeoRef{}, fmt.Errorf("ingest: crop window %+v misses frame %s", window, f.ID)
	}
	gr := f.GeoRef
	r0, c0 := gr.LonLatToPixel(geo.Point{X: window.MinX, Y: window.MaxY})
	r1, c1 := gr.LonLatToPixel(geo.Point{X: window.MaxX, Y: window.MinY})
	h, w := img.Height(), img.Width()
	r0, c0 = clampInt(r0, 0, h-1), clampInt(c0, 0, w-1)
	r1, c1 = clampInt(r1, 0, h-1), clampInt(c1, 0, w-1)
	if r1 < r0 || c1 < c0 {
		return nil, raster.GeoRef{}, fmt.Errorf("ingest: crop window misses the frame")
	}
	out, err := img.Slice([]int{r0, c0}, []int{r1 + 1, c1 + 1})
	if err != nil {
		return nil, raster.GeoRef{}, err
	}
	cropRef := raster.GeoRef{
		OriginX: gr.OriginX + float64(c0)*gr.DX,
		OriginY: gr.OriginY - float64(r0)*gr.DY,
		DX:      gr.DX, DY: gr.DY, SRID: gr.SRID,
	}
	return out, cropRef, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Georeference resamples an image from its source georeference onto a
// target grid (the demo's georeferencing step: SEVIRI geometry onto the
// product grid). Cells whose source location falls outside the input are
// null.
func Georeference(img *array.Array, src raster.GeoRef, dst raster.GeoRef, dstH, dstW int) (*array.Array, error) {
	if len(img.Dims) != 2 {
		return nil, fmt.Errorf("ingest: georeference needs a rank-2 image")
	}
	out := array.MustNew(img.Name,
		array.Dim{Name: "y", Size: dstH},
		array.Dim{Name: "x", Size: dstW})
	h, w := img.Height(), img.Width()
	// Rows resample tile-parallel; the null mask is preallocated so the
	// workers never race on its lazy construction, and dropped again when
	// every destination cell found a source.
	out.Null = make([]bool, len(out.Data))
	parallel.Range(dstH, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < dstW; x++ {
				p := dst.PixelToLonLat(y, x)
				r, c := src.LonLatToPixel(p)
				if r < 0 || r >= h || c < 0 || c >= w {
					out.Null[y*dstW+x] = true
					continue
				}
				out.Data[y*dstW+x] = img.Data[r*w+c]
			}
		}
	})
	anyNull := false
	for _, isNull := range out.Null {
		if isNull {
			anyNull = true
			break
		}
	}
	if !anyNull {
		out.Null = nil
	}
	return out, nil
}

// PatchFeatures is the feature vector of one square image patch — the
// compact multi-element representation the content-extraction components
// produce for image mining.
type PatchFeatures struct {
	// Row and Col locate the patch in patch grid coordinates.
	Row, Col int
	// Mean, StdDev, Min, Max summarise intensities.
	Mean, StdDev, Min, Max float64
	// Texture is a gradient-energy measure (mean absolute difference of
	// horizontal neighbours), a cheap GLCM stand-in.
	Texture float64
	// Histogram is a fixed 8-bin intensity histogram, normalised.
	Histogram [8]float64
}

// Vector flattens the features for distance computations.
func (p PatchFeatures) Vector() []float64 {
	return p.AppendVector(nil)
}

// AppendVector appends the feature layout to buf — the allocation-free
// form of Vector for per-worker buffer reuse. The layout (mean, stddev,
// min, max, texture, 8 histogram bins) is defined only here.
func (p PatchFeatures) AppendVector(buf []float64) []float64 {
	buf = append(buf, p.Mean, p.StdDev, p.Min, p.Max, p.Texture)
	return append(buf, p.Histogram[:]...)
}

// ExtractPatches cuts a rank-2 image into size x size patches and computes
// the feature vector of each. Partial border patches are included. Patch
// rows are processed tile-parallel on the shared worker pool; the output
// order (row-major over the patch grid) is unchanged.
func ExtractPatches(img *array.Array, size int) ([]PatchFeatures, error) {
	if len(img.Dims) != 2 {
		return nil, fmt.Errorf("ingest: patch extraction needs a rank-2 image")
	}
	if size <= 0 {
		return nil, fmt.Errorf("ingest: patch size must be positive")
	}
	h, w := img.Height(), img.Width()
	lo, hi, _ := img.MinMax()
	if hi <= lo {
		hi = lo + 1
	}
	binScale := 8 / (hi - lo)
	rows := (h + size - 1) / size
	cols := (w + size - 1) / size
	grid := make([]PatchFeatures, rows*cols)
	valid := make([]bool, rows*cols)
	parallel.Range(rows, func(py0, py1 int) {
		for py := py0; py < py1; py++ {
			for px := 0; px < cols; px++ {
				pf := PatchFeatures{Row: py, Col: px}
				var sum, sumSq, tex float64
				var n, tn int
				min, max := 1e308, -1e308
				yEnd := (py + 1) * size
				if yEnd > h {
					yEnd = h
				}
				xStart := px * size
				xEnd := xStart + size
				if xEnd > w {
					xEnd = w
				}
				for y := py * size; y < yEnd; y++ {
					seg := img.Data[y*w+xStart : y*w+xEnd]
					if img.Null == nil {
						for i, v := range seg {
							sum += v
							sumSq += v * v
							if v < min {
								min = v
							}
							if v > max {
								max = v
							}
							bin := int((v - lo) * binScale)
							if uint(bin) > 7 {
								if bin < 0 {
									bin = 0
								} else {
									bin = 7
								}
							}
							pf.Histogram[bin]++
							if i+1 < len(seg) {
								d := seg[i+1] - v
								if d < 0 {
									d = -d
								}
								tex += d
							}
						}
						n += len(seg)
						tn += len(seg) - 1
						continue
					}
					nulls := img.Null[y*w+xStart : y*w+xEnd]
					for i, v := range seg {
						if nulls[i] {
							continue
						}
						sum += v
						sumSq += v * v
						n++
						if v < min {
							min = v
						}
						if v > max {
							max = v
						}
						bin := int((v - lo) * binScale)
						if uint(bin) > 7 {
							if bin < 0 {
								bin = 0
							} else {
								bin = 7
							}
						}
						pf.Histogram[bin]++
						if i+1 < len(seg) && !nulls[i+1] {
							d := seg[i+1] - v
							if d < 0 {
								d = -d
							}
							tex += d
							tn++
						}
					}
				}
				if n == 0 {
					continue
				}
				pf.Mean = sum / float64(n)
				variance := sumSq/float64(n) - pf.Mean*pf.Mean
				if variance < 0 {
					variance = 0
				}
				pf.StdDev = math.Sqrt(variance)
				pf.Min, pf.Max = min, max
				if tn > 0 {
					pf.Texture = tex / float64(tn)
				}
				for i := range pf.Histogram {
					pf.Histogram[i] /= float64(n)
				}
				grid[py*cols+px] = pf
				valid[py*cols+px] = true
			}
		}
	})
	out := make([]PatchFeatures, 0, rows*cols)
	for i, ok := range valid {
		if ok {
			out = append(out, grid[i])
		}
	}
	return out, nil
}

// ExtractMetadata produces the stRDF catalogue triples for a frame: type,
// platform, acquisition time, geographic coverage (a WKT polygon), bands
// and grid shape. These are the "image metadata" Strabon serves.
func ExtractMetadata(f *raster.Frame) []rdf.Triple {
	subject := rdf.IRI(NS + "product/" + f.ID)
	env := f.Envelope()
	var out []rdf.Triple
	add := func(p string, o rdf.Term) {
		out = append(out, rdf.NewTriple(subject, rdf.IRI(p), o))
	}
	out = append(out, rdf.NewTriple(subject, rdf.IRI(rdf.RDFType), rdf.IRI(ClassProduct)))
	add(PropSatellite, rdf.Literal(f.Satellite))
	add(PropSensor, rdf.Literal(f.Sensor))
	add(PropAcquired, rdf.TypedLiteral(f.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime))
	add(PropCoverage, strdf.Literal(env.ToPolygon(), geo.SRIDWGS84))
	for band := range f.Bands {
		add(PropBand, rdf.Literal(string(band)))
	}
	for _, img := range f.Bands {
		add(PropWidth, rdf.IntegerLiteral(int64(img.Width())))
		add(PropHeight, rdf.IntegerLiteral(int64(img.Height())))
		break
	}
	return out
}
