package ingest

import (
	"testing"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/raster"
	"repro/internal/rdf"
	"repro/internal/scene"
	"repro/internal/sciql"
	"repro/internal/strdf"
)

func testFrame(t *testing.T) *raster.Frame {
	t.Helper()
	return raster.Generate(raster.GenOptions{Width: 64, Height: 64, Steps: 1})[0]
}

func TestRegisterFrame(t *testing.T) {
	f := testFrame(t)
	eng := sciql.NewEngine()
	if err := RegisterFrame(eng, "img", f); err != nil {
		t.Fatal(err)
	}
	for _, band := range []string{"IR_039", "IR_108", "VIS006"} {
		a, err := eng.Array("img_" + band)
		if err != nil {
			t.Fatalf("band %s: %v", band, err)
		}
		if a.Size() != 64*64 {
			t.Fatalf("band %s size = %d", band, a.Size())
		}
	}
	// The registered array is queryable.
	res := eng.MustExec(`SELECT count(*) AS n FROM img_IR_039 WHERE v > 0`).Table
	if res.Col("n").Int(0) != 64*64 {
		t.Fatal("all temperatures should be positive")
	}
}

func TestCrop(t *testing.T) {
	f := testFrame(t)
	window := geo.Envelope{MinX: 22, MinY: 37, MaxX: 25, MaxY: 39}
	img, gr, err := Crop(f, raster.BandIR39, window)
	if err != nil {
		t.Fatal(err)
	}
	if img.Height() >= 64 || img.Width() >= 64 {
		t.Fatalf("crop did not shrink: %dx%d", img.Height(), img.Width())
	}
	// The crop's georeference covers the window (within a pixel).
	if gr.OriginX > window.MinX+f.GeoRef.DX || gr.OriginY < window.MaxY-f.GeoRef.DY {
		t.Fatalf("crop georef = %+v", gr)
	}
	// Pixel values come from the right place.
	p := gr.PixelToLonLat(0, 0)
	srcR, srcC := f.GeoRef.LonLatToPixel(p)
	src, _ := f.Band(raster.BandIR39)
	if img.At2(0, 0) != src.At2(srcR, srcC) {
		t.Fatal("crop misaligned")
	}
	// A window outside the frame errors.
	if _, _, err := Crop(f, raster.BandIR39, geo.Envelope{MinX: 100, MinY: 100, MaxX: 101, MaxY: 101}); err == nil {
		t.Fatal("miss should error")
	}
	// Unknown band errors.
	if _, _, err := Crop(f, raster.Band("NOPE"), window); err == nil {
		t.Fatal("unknown band should error")
	}
}

func TestGeoreference(t *testing.T) {
	f := testFrame(t)
	src, _ := f.Band(raster.BandIR39)
	// Identity target grid reproduces the source.
	out, err := Georeference(src, f.GeoRef, f.GeoRef, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if !out.IsNull(i) && out.Data[i] != src.Data[i] {
			t.Fatalf("identity georeference changed cell %d", i)
		}
	}
	// A shifted grid marks out-of-source cells null.
	shifted := f.GeoRef
	shifted.OriginX -= 3 // 3 degrees west of the source
	out2, err := Georeference(src, f.GeoRef, shifted, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for i := range out2.Data {
		if out2.IsNull(i) {
			nulls++
		}
	}
	if nulls == 0 {
		t.Fatal("shifted grid should have null border")
	}
	// Rank check.
	bad := array.MustNew("v", array.Dim{Name: "x", Size: 4})
	if _, err := Georeference(bad, f.GeoRef, f.GeoRef, 4, 4); err == nil {
		t.Fatal("rank-1 input should error")
	}
}

func TestExtractPatches(t *testing.T) {
	img := array.MustNew("img", array.Dim{Name: "y", Size: 8}, array.Dim{Name: "x", Size: 8})
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			img.Set2(y, x, float64(y*8+x))
		}
	}
	patches, err := ExtractPatches(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(patches) != 4 {
		t.Fatalf("patches = %d", len(patches))
	}
	// First patch (rows 0-3, cols 0-3): mean of {y*8+x} = mean(y)*8+mean(x)
	// = 1.5*8+1.5 = 13.5.
	if patches[0].Mean != 13.5 {
		t.Fatalf("mean = %g", patches[0].Mean)
	}
	if patches[0].Min != 0 || patches[0].Max != 27 {
		t.Fatalf("min/max = %g/%g", patches[0].Min, patches[0].Max)
	}
	// Horizontal gradient is 1 everywhere.
	if patches[0].Texture != 1 {
		t.Fatalf("texture = %g", patches[0].Texture)
	}
	// Histogram sums to 1.
	var sum float64
	for _, h := range patches[0].Histogram {
		sum += h
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram sum = %g", sum)
	}
	// Vector length is 5 + 8.
	if len(patches[0].Vector()) != 13 {
		t.Fatalf("vector len = %d", len(patches[0].Vector()))
	}
	// Errors.
	if _, err := ExtractPatches(img, 0); err == nil {
		t.Fatal("zero patch size")
	}
	one := array.MustNew("v", array.Dim{Name: "x", Size: 4})
	if _, err := ExtractPatches(one, 2); err == nil {
		t.Fatal("rank-1 input")
	}
}

func TestExtractPatchesRaggedAndNull(t *testing.T) {
	img := array.MustNew("img", array.Dim{Name: "y", Size: 5}, array.Dim{Name: "x", Size: 5})
	patches, err := ExtractPatches(img, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 patch grid despite 5x5 input.
	if len(patches) != 4 {
		t.Fatalf("ragged patches = %d", len(patches))
	}
	// An all-null patch is skipped.
	img2 := array.MustNew("img", array.Dim{Name: "y", Size: 4}, array.Dim{Name: "x", Size: 8})
	for y := 0; y < 4; y++ {
		for x := 4; x < 8; x++ {
			if err := img2.SetNull(y, x); err != nil {
				t.Fatal(err)
			}
		}
	}
	p2, err := ExtractPatches(img2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != 1 {
		t.Fatalf("null patch not skipped: %d", len(p2))
	}
}

func TestExtractMetadata(t *testing.T) {
	f := testFrame(t)
	triples := ExtractMetadata(f)
	if len(triples) == 0 {
		t.Fatal("no metadata")
	}
	var sawType, sawCoverage, sawTime bool
	for _, tr := range triples {
		switch tr.P.Value {
		case rdf.RDFType:
			if tr.O.Value != ClassProduct {
				t.Fatalf("type = %v", tr.O)
			}
			sawType = true
		case PropCoverage:
			v, err := strdf.ParseSpatial(tr.O)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Geom.Envelope().Intersects(scene.Region) {
				t.Fatal("coverage misses region")
			}
			sawCoverage = true
		case PropAcquired:
			if tr.O.Datatype != rdf.XSDDateTime {
				t.Fatal("acquired datatype")
			}
			sawTime = true
		}
	}
	if !sawType || !sawCoverage || !sawTime {
		t.Fatalf("missing metadata: type=%v coverage=%v time=%v", sawType, sawCoverage, sawTime)
	}
	// Bands listed.
	bands := 0
	for _, tr := range triples {
		if tr.P.Value == PropBand {
			bands++
		}
	}
	if bands != 3 {
		t.Fatalf("bands = %d", bands)
	}
}
