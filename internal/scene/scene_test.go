package scene

import (
	"testing"

	"repro/internal/geo"
)

func TestLandmassIsValidAndInsideRegion(t *testing.T) {
	land := Landmass()
	if err := geo.Validate(land); err != nil {
		t.Fatal(err)
	}
	if !Region.Contains(land.Envelope()) {
		t.Fatalf("landmass %+v leaves the region %+v", land.Envelope(), Region)
	}
	if land.Area() <= 0 {
		t.Fatal("landmass area")
	}
	// Sea + land partition the region (areas sum).
	sea := Sea()
	total := geo.Area(sea) + land.Area()
	if regionArea := Region.Area(); total < regionArea*0.999 || total > regionArea*1.001 {
		t.Fatalf("sea+land = %g, region = %g", total, regionArea)
	}
}

func TestOnLandAgreesWithAnalytic(t *testing.T) {
	// Sample a grid; the polygon and the analytic form must agree except
	// within discretisation distance of the coast.
	land := Landmass()
	disagreements := 0
	samples := 0
	for x := Region.MinX; x <= Region.MaxX; x += 0.25 {
		for y := Region.MinY; y <= Region.MaxY; y += 0.25 {
			p := geo.Point{X: x, Y: y}
			samples++
			if geo.Intersects(p, land) != OnLandAnalytic(p) {
				disagreements++
			}
		}
	}
	if disagreements > samples/50 {
		t.Fatalf("polygon vs analytic disagreement: %d/%d", disagreements, samples)
	}
}

func TestFireEventTiming(t *testing.T) {
	for _, fe := range FireEvents() {
		if fe.StartStep < 0 || fe.PeakDT <= 0 || fe.Growth <= 0 {
			t.Errorf("fire %s has degenerate parameters: %+v", fe.Name, fe)
		}
		if !Region.ContainsPoint(fe.Loc.X, fe.Loc.Y) {
			t.Errorf("fire %s outside the region", fe.Name)
		}
	}
}

func TestRoadsWithinRegion(t *testing.T) {
	for _, r := range Roads() {
		if !Region.Contains(r.Path.Envelope()) {
			t.Errorf("road %s leaves the region", r.Name)
		}
		if r.Path.Length() <= 0 {
			t.Errorf("road %s has no length", r.Name)
		}
	}
}

func TestNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range ArchaeologicalSites() {
		if seen[s.Name] {
			t.Errorf("duplicate site %s", s.Name)
		}
		seen[s.Name] = true
	}
	for _, s := range Towns() {
		if seen[s.Name] {
			t.Errorf("duplicate town %s", s.Name)
		}
		seen[s.Name] = true
	}
	for _, f := range Forests() {
		if seen[f.Name] {
			t.Errorf("duplicate forest %s", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestTownsHavePopulation(t *testing.T) {
	for _, town := range Towns() {
		if town.Population <= 0 {
			t.Errorf("town %s has no population", town.Name)
		}
	}
	for _, site := range ArchaeologicalSites() {
		if site.Population != 0 {
			t.Errorf("site %s should have no population", site.Name)
		}
	}
}
