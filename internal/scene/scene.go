// Package scene defines the deterministic synthetic geography that stands
// in for the proprietary data TELEIOS consumed: the MSG/SEVIRI feed, the
// GeoNames/LinkedGeoData auxiliary layers and NOA's GIS data. One shared
// definition keeps the raster generator (internal/raster) and the linked
// data generators (internal/linkeddata) mutually consistent, so that the
// Scenario 2 refinement genuinely removes the sea-side false positives the
// raster generator seeds.
//
// The geography is Greece-shaped in spirit: a landmass with an irregular
// coastline inside lon [21, 27], lat [36, 40] (WGS84), dotted with towns,
// archaeological sites, forests and a road network.
package scene

import (
	"math"

	"repro/internal/geo"
)

// Region is the area of interest of the Virtual Earth Observatory demo.
var Region = geo.Envelope{MinX: 21, MinY: 36, MaxX: 27, MaxY: 40}

// landCenter and land radii parameterise the synthetic coastline.
const (
	landCenterX = 24.0
	landCenterY = 38.0
)

// Landmass returns the synthetic landmass polygon. The coastline is a
// closed radial curve r(theta) with two harmonics, giving bays and
// peninsulas that produce coastal mixed pixels — the false-positive source
// the refinement step corrects.
func Landmass() geo.Polygon {
	const n = 180
	cs := make([]geo.Point, 0, n+1)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / n
		r := 1.55 + 0.35*math.Sin(3*th) + 0.18*math.Sin(7*th+1.3)
		cs = append(cs, geo.Point{
			X: landCenterX + r*math.Cos(th),
			Y: landCenterY + 0.75*r*math.Sin(th),
		})
	}
	cs = append(cs, cs[0])
	return geo.NewPolygon(geo.Ring{Coords: cs})
}

// Sea returns the region minus the landmass, as a polygon with a hole.
func Sea() geo.Geometry {
	sea, err := geo.Difference(Region.ToPolygon(), Landmass())
	if err != nil {
		// The landmass is strictly inside the region; Difference cannot
		// fail on this fixed input.
		panic(err)
	}
	return sea
}

// Site is a named point of interest (archaeological site or town).
type Site struct {
	Name string
	Loc  geo.Point
	// Population is non-zero for towns.
	Population int
}

// ArchaeologicalSites returns the synthetic archaeological sites, all on
// land. The flagship §1 query searches for fires within 2 km of these.
func ArchaeologicalSites() []Site {
	return []Site{
		{Name: "Olympia", Loc: geo.Point{X: 23.05, Y: 37.64}},
		{Name: "Mycenae", Loc: geo.Point{X: 24.32, Y: 37.73}},
		{Name: "Epidaurus", Loc: geo.Point{X: 24.55, Y: 37.60}},
		{Name: "Delphi", Loc: geo.Point{X: 23.52, Y: 38.48}},
		{Name: "Dodona", Loc: geo.Point{X: 23.20, Y: 38.90}},
		{Name: "Eleusis", Loc: geo.Point{X: 24.70, Y: 38.04}},
		{Name: "Tegea", Loc: geo.Point{X: 23.86, Y: 37.46}},
		{Name: "Corinth", Loc: geo.Point{X: 24.52, Y: 37.94}},
	}
}

// Towns returns the synthetic populated places.
func Towns() []Site {
	return []Site{
		{Name: "Alpha", Loc: geo.Point{X: 23.4, Y: 37.9}, Population: 120000},
		{Name: "Bravo", Loc: geo.Point{X: 24.1, Y: 38.3}, Population: 68000},
		{Name: "Charlie", Loc: geo.Point{X: 24.8, Y: 37.8}, Population: 45000},
		{Name: "Delta", Loc: geo.Point{X: 23.0, Y: 38.3}, Population: 31000},
		{Name: "Echo", Loc: geo.Point{X: 24.4, Y: 38.7}, Population: 27000},
		{Name: "Foxtrot", Loc: geo.Point{X: 23.7, Y: 37.4}, Population: 19000},
		{Name: "Golf", Loc: geo.Point{X: 25.0, Y: 38.2}, Population: 15000},
		{Name: "Hotel", Loc: geo.Point{X: 23.2, Y: 38.6}, Population: 12000},
		{Name: "India", Loc: geo.Point{X: 24.6, Y: 38.45}, Population: 9000},
		{Name: "Juliet", Loc: geo.Point{X: 23.9, Y: 38.85}, Population: 7000},
	}
}

// Forest is a named forest polygon (CORINE-style land cover).
type Forest struct {
	Name    string
	Area    geo.Polygon
	Species string
}

// Forests returns the synthetic forest land-cover polygons, all on land.
func Forests() []Forest {
	rect := func(x, y, w, h float64) geo.Polygon { return geo.Rect(x, y, x+w, y+h) }
	return []Forest{
		{Name: "PineForestNorth", Area: rect(23.6, 38.35, 0.45, 0.3), Species: "pinus halepensis"},
		{Name: "OakForestWest", Area: rect(23.1, 37.9, 0.3, 0.3), Species: "quercus"},
		{Name: "FirForestEast", Area: rect(24.4, 38.0, 0.45, 0.3), Species: "abies cephalonica"},
		{Name: "MixedForestSouth", Area: rect(23.85, 37.35, 0.45, 0.25), Species: "mixed"},
	}
}

// Road is a named road polyline.
type Road struct {
	Name string
	Path geo.LineString
}

// Roads returns the synthetic road network (OpenStreetMap stand-in).
func Roads() []Road {
	return []Road{
		{Name: "A1", Path: geo.NewLineString(
			geo.Point{X: 23.4, Y: 37.4}, geo.Point{X: 23.7, Y: 37.9},
			geo.Point{X: 24.1, Y: 38.3}, geo.Point{X: 24.4, Y: 38.7})},
		{Name: "A2", Path: geo.NewLineString(
			geo.Point{X: 23.0, Y: 38.3}, geo.Point{X: 23.6, Y: 38.35},
			geo.Point{X: 24.1, Y: 38.3}, geo.Point{X: 24.8, Y: 38.2})},
		{Name: "E55", Path: geo.NewLineString(
			geo.Point{X: 24.8, Y: 37.8}, geo.Point{X: 24.55, Y: 37.6},
			geo.Point{X: 23.86, Y: 37.46}, geo.Point{X: 23.05, Y: 37.64})},
	}
}

// FireEvent seeds a synthetic fire in the raster generator: a location,
// the frame index when it ignites, its peak intensity in kelvin above
// background, and its pixel radius growth rate per frame.
type FireEvent struct {
	Name      string
	Loc       geo.Point
	StartStep int
	PeakDT    float64
	Growth    float64
	// Spurious marks sea-side false positives (coastal mixed pixels) that
	// the refinement step is expected to remove.
	Spurious bool
}

// FireEvents returns the demo's seeded fire scenario: three real fires on
// land (two near archaeological sites) and two spurious coastal hot pixels
// in the sea.
func FireEvents() []FireEvent {
	return []FireEvent{
		// ~1.5 km east of Olympia: matches the "fire within 2 km of an
		// archaeological site" flagship query.
		{Name: "OlympiaFire", Loc: geo.Point{X: 23.067, Y: 37.64}, StartStep: 1, PeakDT: 40, Growth: 0.8},
		// Inside PineForestNorth.
		{Name: "PineFire", Loc: geo.Point{X: 23.9, Y: 38.6}, StartStep: 0, PeakDT: 55, Growth: 1.2},
		// Open land, far from sites.
		{Name: "RangeFire", Loc: geo.Point{X: 24.9, Y: 38.35}, StartStep: 3, PeakDT: 35, Growth: 0.6},
		// Spurious: in the sea just off the western coast.
		{Name: "GlintWest", Loc: geo.Point{X: 21.9, Y: 37.9}, StartStep: 2, PeakDT: 45, Growth: 0.3, Spurious: true},
		// Spurious: in the sea in a southern bay.
		{Name: "GlintSouth", Loc: geo.Point{X: 24.2, Y: 36.6}, StartStep: 0, PeakDT: 42, Growth: 0.3, Spurious: true},
	}
}

// OnLand reports whether p lies on the synthetic landmass.
func OnLand(p geo.Point) bool { return geo.Intersects(p, Landmass()) }

// OnLandAnalytic evaluates land membership directly from the coastline's
// radial definition, avoiding point-in-polygon work in per-pixel loops.
// It agrees with OnLand up to the polygon's 2-degree discretisation.
func OnLandAnalytic(p geo.Point) bool {
	dx := p.X - landCenterX
	dy := (p.Y - landCenterY) / 0.75
	th := math.Atan2(dy, dx)
	r := 1.55 + 0.35*math.Sin(3*th) + 0.18*math.Sin(7*th+1.3)
	return math.Hypot(dx, dy) <= r
}
