package vault

import (
	"sync"
	"testing"
)

// Concurrent first-touch: many goroutines demanding the same and
// different frames must all succeed, with the cache converging (no more
// loads than products, allowing benign double-loads on races).
func TestConcurrentFrameAccess(t *testing.T) {
	dir := makeRepo(t, 4)
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	ids := v.IDs()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id := ids[(g+i)%len(ids)]
				f, err := v.Frame(id)
				if err != nil {
					errs <- err
					return
				}
				if f.ID != id {
					errs <- errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles, cached reads return stable pointers.
	f1, err := v.Frame(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	f2, err := v.Frame(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("cache not stable")
	}
	s := v.Stats()
	if s.Loads < len(ids) {
		t.Fatalf("loads = %d, need at least %d", s.Loads, len(ids))
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "vault: frame ID mismatch" }
