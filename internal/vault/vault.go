// Package vault implements the Data Vault of the paper (Ivanova, Kersten,
// Manegold, SSDBM 2012): a symbiosis between the DBMS and an external
// scientific file repository. The vault knows external file formats (here
// the synthetic ".sev" SEVIRI format), catalogues the repository's metadata
// eagerly (headers only), and converts file payloads into database arrays
// lazily, on first query touch, caching the result.
//
// The A3 ablation benchmark contrasts this lazy, query-driven ingestion
// against eager whole-repository loading.
package vault

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/column"
	"repro/internal/raster"
)

// Format describes an external file format the vault understands.
type Format struct {
	// Name identifies the format ("sev").
	Name string
	// Extension is the file suffix including the dot (".sev").
	Extension string
	// ReadHeader decodes catalogue metadata without payload.
	ReadHeader func(path string) (*raster.Header, error)
	// Load decodes the full file into a frame.
	Load func(path string) (*raster.Frame, error)
}

// SEVFormat is the built-in synthetic SEVIRI format.
var SEVFormat = Format{
	Name:      "sev",
	Extension: ".sev",
	ReadHeader: func(path string) (*raster.Header, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return raster.ReadHeader(f)
	},
	Load: raster.LoadFrame,
}

// Entry is one catalogued external file.
type Entry struct {
	Path   string
	Format string
	Header *raster.Header
}

// Stats counts vault activity: catalogue size, cache hits, lazy loads.
type Stats struct {
	Entries   int
	CacheHits int
	Loads     int
	Evictions int
}

// Vault is a Data Vault over one repository directory. Safe for concurrent
// readers once attached.
type Vault struct {
	mu      sync.Mutex
	formats map[string]Format
	entries map[string]*Entry // keyed by product ID
	order   []string          // IDs in catalogue order (by time, then ID)
	cache   map[string]*raster.Frame
	stats   Stats
}

// New returns a vault that understands the given formats (SEVFormat when
// none are given).
func New(formats ...Format) *Vault {
	v := &Vault{
		formats: map[string]Format{},
		entries: map[string]*Entry{},
		cache:   map[string]*raster.Frame{},
	}
	if len(formats) == 0 {
		formats = []Format{SEVFormat}
	}
	for _, f := range formats {
		v.formats[f.Extension] = f
	}
	return v
}

// Attach scans a repository directory, cataloguing every file with a known
// extension by reading only its header. Payloads stay on disk.
func (v *Vault) Attach(dir string) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("vault: attaching %s: %w", dir, err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(de.Name()))
		f, ok := v.formats[ext]
		if !ok {
			continue
		}
		path := filepath.Join(dir, de.Name())
		h, err := f.ReadHeader(path)
		if err != nil {
			return fmt.Errorf("vault: cataloguing %s: %w", path, err)
		}
		v.entries[h.ID] = &Entry{Path: path, Format: f.Name, Header: h}
	}
	v.order = v.order[:0]
	for id := range v.entries {
		v.order = append(v.order, id)
	}
	sort.Slice(v.order, func(i, j int) bool {
		a, b := v.entries[v.order[i]], v.entries[v.order[j]]
		if !a.Header.Time.Equal(b.Header.Time) {
			return a.Header.Time.Before(b.Header.Time)
		}
		return a.Header.ID < b.Header.ID
	})
	v.stats.Entries = len(v.entries)
	return nil
}

// IDs returns the catalogued product IDs in time order.
func (v *Vault) IDs() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.order...)
}

// Entry returns the catalogue entry for a product ID.
func (v *Vault) Entry(id string) (*Entry, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.entries[id]
	if !ok {
		return nil, fmt.Errorf("vault: unknown product %q", id)
	}
	return e, nil
}

// Frame returns the decoded frame for a product, loading it lazily on
// first touch and serving the cache afterwards.
func (v *Vault) Frame(id string) (*raster.Frame, error) {
	v.mu.Lock()
	if f, ok := v.cache[id]; ok {
		v.stats.CacheHits++
		v.mu.Unlock()
		return f, nil
	}
	e, ok := v.entries[id]
	if !ok {
		v.mu.Unlock()
		return nil, fmt.Errorf("vault: unknown product %q", id)
	}
	format := v.formats["."+e.Format]
	if format.Load == nil {
		// Formats are keyed by extension; find by name.
		for _, f := range v.formats {
			if f.Name == e.Format {
				format = f
				break
			}
		}
	}
	v.mu.Unlock()
	// Load outside the lock; concurrent first touches may both load, the
	// second store wins harmlessly (frames are immutable once decoded).
	f, err := format.Load(e.Path)
	if err != nil {
		return nil, fmt.Errorf("vault: loading %s: %w", e.Path, err)
	}
	v.mu.Lock()
	v.cache[id] = f
	v.stats.Loads++
	v.mu.Unlock()
	return f, nil
}

// LoadAll eagerly decodes every catalogued file — the non-vault baseline
// of the A3 ablation.
func (v *Vault) LoadAll() error {
	for _, id := range v.IDs() {
		if _, err := v.Frame(id); err != nil {
			return err
		}
	}
	return nil
}

// Evict drops a product's cached frame; it reports whether one was cached.
func (v *Vault) Evict(id string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.cache[id]; !ok {
		return false
	}
	delete(v.cache, id)
	v.stats.Evictions++
	return true
}

// EvictAll drops the whole frame cache.
func (v *Vault) EvictAll() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.stats.Evictions += len(v.cache)
	v.cache = map[string]*raster.Frame{}
}

// Stats returns a snapshot of the vault counters.
func (v *Vault) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// Catalog materialises the catalogue as a relational table, the form the
// database tier exposes to SciQL and the metadata extractor.
func (v *Vault) Catalog() *column.Table {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := column.NewTable("catalog",
		column.Field{Name: "id", Typ: column.String},
		column.Field{Name: "path", Typ: column.String},
		column.Field{Name: "satellite", Typ: column.String},
		column.Field{Name: "sensor", Typ: column.String},
		column.Field{Name: "acquired_unix", Typ: column.Int64},
		column.Field{Name: "width", Typ: column.Int64},
		column.Field{Name: "height", Typ: column.Int64},
		column.Field{Name: "min_lon", Typ: column.Float64},
		column.Field{Name: "min_lat", Typ: column.Float64},
		column.Field{Name: "max_lon", Typ: column.Float64},
		column.Field{Name: "max_lat", Typ: column.Float64},
	)
	for _, id := range v.order {
		e := v.entries[id]
		env := e.Header.Envelope()
		// The schema mirrors the header exactly; AppendRow cannot fail.
		_ = t.AppendRow(e.Header.ID, e.Path, e.Header.Satellite, e.Header.Sensor,
			e.Header.Time.Unix(), int64(e.Header.Width), int64(e.Header.Height),
			env.MinX, env.MinY, env.MaxX, env.MaxY)
	}
	return t
}
