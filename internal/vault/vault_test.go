package vault

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/raster"
)

// makeRepo writes n tiny synthetic frames into a temp repository.
func makeRepo(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	frames := raster.Generate(raster.GenOptions{Width: 8, Height: 8, Steps: n})
	for _, f := range frames {
		if _, err := raster.SaveFrame(dir, f); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestAttachAndCatalog(t *testing.T) {
	dir := makeRepo(t, 4)
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	ids := v.IDs()
	if len(ids) != 4 {
		t.Fatalf("ids = %d", len(ids))
	}
	// Time ordering.
	for i := 1; i < len(ids); i++ {
		a, _ := v.Entry(ids[i-1])
		b, _ := v.Entry(ids[i])
		if a.Header.Time.After(b.Header.Time) {
			t.Fatal("catalogue not time ordered")
		}
	}
	cat := v.Catalog()
	if cat.NumRows() != 4 {
		t.Fatalf("catalog rows = %d", cat.NumRows())
	}
	if cat.Col("sensor").Str(0) != "SEVIRI" {
		t.Fatal("sensor column")
	}
	if cat.Col("width").Int(0) != 8 {
		t.Fatal("width column")
	}
	// Bounding box covers the scene region.
	if cat.Col("min_lon").Float(0) != 21 || cat.Col("max_lat").Float(0) != 40 {
		t.Fatalf("bbox = %g %g", cat.Col("min_lon").Float(0), cat.Col("max_lat").Float(0))
	}
	if s := v.Stats(); s.Entries != 4 || s.Loads != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLazyLoadAndCache(t *testing.T) {
	dir := makeRepo(t, 3)
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	ids := v.IDs()
	// First touch: a load.
	f1, err := v.Frame(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f1.ID != ids[0] {
		t.Fatal("wrong frame")
	}
	if s := v.Stats(); s.Loads != 1 || s.CacheHits != 0 {
		t.Fatalf("after first touch: %+v", s)
	}
	// Second touch: a cache hit, same pointer.
	f2, err := v.Frame(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("cache should return the same frame")
	}
	if s := v.Stats(); s.Loads != 1 || s.CacheHits != 1 {
		t.Fatalf("after cache hit: %+v", s)
	}
	// Untouched products were never decoded.
	if s := v.Stats(); s.Loads != 1 {
		t.Fatalf("lazy violated: %+v", s)
	}
}

func TestEvict(t *testing.T) {
	dir := makeRepo(t, 2)
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	ids := v.IDs()
	if _, err := v.Frame(ids[0]); err != nil {
		t.Fatal(err)
	}
	if !v.Evict(ids[0]) {
		t.Fatal("evict cached")
	}
	if v.Evict(ids[0]) {
		t.Fatal("double evict")
	}
	// Re-touch reloads.
	if _, err := v.Frame(ids[0]); err != nil {
		t.Fatal(err)
	}
	if s := v.Stats(); s.Loads != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if _, err := v.Frame(ids[1]); err != nil {
		t.Fatal(err)
	}
	v.EvictAll()
	if s := v.Stats(); s.Evictions != 3 {
		t.Fatalf("evict all: %+v", s)
	}
}

func TestLoadAll(t *testing.T) {
	dir := makeRepo(t, 3)
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	if err := v.LoadAll(); err != nil {
		t.Fatal(err)
	}
	if s := v.Stats(); s.Loads != 3 {
		t.Fatalf("LoadAll stats = %+v", s)
	}
}

func TestUnknownProduct(t *testing.T) {
	v := New()
	if _, err := v.Frame("ghost"); err == nil {
		t.Fatal("unknown frame should error")
	}
	if _, err := v.Entry("ghost"); err == nil {
		t.Fatal("unknown entry should error")
	}
}

func TestAttachErrors(t *testing.T) {
	v := New()
	if err := v.Attach("/nonexistent/dir"); err == nil {
		t.Fatal("missing dir should error")
	}
	// Corrupt file with the right extension fails cataloguing.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.sev"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := v.Attach(dir); err == nil {
		t.Fatal("corrupt file should error")
	}
}

func TestAttachIgnoresForeignFiles(t *testing.T) {
	dir := makeRepo(t, 1)
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	if len(v.IDs()) != 1 {
		t.Fatalf("ids = %d", len(v.IDs()))
	}
}

func TestHeaderMatchesFrame(t *testing.T) {
	dir := makeRepo(t, 1)
	v := New()
	if err := v.Attach(dir); err != nil {
		t.Fatal(err)
	}
	id := v.IDs()[0]
	e, err := v.Entry(id)
	if err != nil {
		t.Fatal(err)
	}
	f, err := v.Frame(id)
	if err != nil {
		t.Fatal(err)
	}
	if e.Header.ID != f.ID || !e.Header.Time.Equal(f.Time) || e.Header.GeoRef != f.GeoRef {
		t.Fatal("header metadata should match full decode")
	}
	if len(e.Header.BandNames) != len(f.Bands) {
		t.Fatal("band names")
	}
}
