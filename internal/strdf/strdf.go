// Package strdf implements the stRDF data model of the paper (Koubarakis &
// Kyzirakos, ESWC 2010): RDF extended with spatial literals (OGC WKT/GML
// with an optional SRID) and valid-time period literals. It provides the
// parsing, serialisation and computation over those literals that Strabon
// (internal/strabon) and stSPARQL (internal/stsparql) build on.
package strdf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/rdf"
)

// Namespace IRIs of the stRDF vocabulary.
const (
	// NS is the stRDF ontology namespace.
	NS = "http://strdf.di.uoa.gr/ontology#"
	// PeriodDatatype types valid-time period literals.
	PeriodDatatype = NS + "period"
)

// SpatialValue is a decoded spatial literal: geometry plus CRS.
type SpatialValue struct {
	Geom geo.Geometry
	SRID geo.SRID
}

// parseCache interns decoded spatial literals process-wide: the same
// literal text re-ingested by any store (re-processed products, fresh
// stores over shared linked data) decodes once. Geometries are treated
// as immutable everywhere, so sharing the decoded value is safe. The
// cache is dropped wholesale when it fills — cheap, and a full cache
// means the workload's literal set fits comfortably anyway.
var parseCache struct {
	mu sync.RWMutex
	m  map[string]SpatialValue
}

const parseCacheCap = 8192

// ParseSpatial decodes an stRDF/GeoSPARQL spatial literal. The stRDF WKT
// form is "<wkt>[;<srid>]"; the GeoSPARQL form uses a leading CRS IRI
// "<http://www.opengis.net/def/crs/EPSG/0/4326> POINT(...)". Both are
// accepted; the default CRS is WGS84.
func ParseSpatial(t rdf.Term) (SpatialValue, error) {
	if !t.IsSpatial() {
		return SpatialValue{}, fmt.Errorf("strdf: term %s is not a spatial literal", t)
	}
	parseCache.mu.RLock()
	v, ok := parseCache.m[t.Value]
	parseCache.mu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := parseSpatialUncached(t)
	if err != nil {
		return SpatialValue{}, err
	}
	parseCache.mu.Lock()
	if parseCache.m == nil || len(parseCache.m) >= parseCacheCap {
		parseCache.m = make(map[string]SpatialValue, 256)
	}
	parseCache.m[t.Value] = v
	parseCache.mu.Unlock()
	return v, nil
}

func parseSpatialUncached(t rdf.Term) (SpatialValue, error) {
	if t.Datatype == rdf.StRDFGML {
		return SpatialValue{}, fmt.Errorf("strdf: GML literal decoding is not supported; use WKT")
	}
	lex := strings.TrimSpace(t.Value)
	srid := geo.SRIDWGS84
	// GeoSPARQL CRS prefix.
	if strings.HasPrefix(lex, "<") {
		end := strings.IndexByte(lex, '>')
		if end < 0 {
			return SpatialValue{}, fmt.Errorf("strdf: unterminated CRS IRI in %q", lex)
		}
		iri := lex[1:end]
		lex = strings.TrimSpace(lex[end+1:])
		if i := strings.LastIndexByte(iri, '/'); i >= 0 {
			if n, err := strconv.Atoi(iri[i+1:]); err == nil {
				srid = geo.SRID(n)
			}
		}
	}
	// stRDF ";srid" suffix.
	if i := strings.LastIndexByte(lex, ';'); i >= 0 {
		tail := strings.TrimSpace(lex[i+1:])
		if n, err := strconv.Atoi(tail); err == nil {
			srid = geo.SRID(n)
			lex = strings.TrimSpace(lex[:i])
		}
	}
	g, err := geo.ParseWKT(lex)
	if err != nil {
		return SpatialValue{}, fmt.Errorf("strdf: %w", err)
	}
	return SpatialValue{Geom: g, SRID: srid}, nil
}

// Literal encodes a geometry as an stRDF WKT literal term. The WKT text
// and the ";<srid>" suffix build in one buffer (one string allocation —
// this runs once per catalogue geometry).
func Literal(g geo.Geometry, srid geo.SRID) rdf.Term {
	if srid == 0 {
		srid = geo.SRIDWGS84
	}
	buf := make([]byte, 0, 192)
	buf = geo.AppendWKT(buf, g)
	buf = append(buf, ';')
	buf = strconv.AppendInt(buf, int64(srid), 10)
	return rdf.TypedLiteral(string(buf), rdf.StRDFWKT)
}

// ToWGS84 reprojects a spatial value to WGS84.
func (v SpatialValue) ToWGS84() (SpatialValue, error) {
	if v.SRID == geo.SRIDWGS84 || v.SRID == geo.SRIDCRS84 {
		return v, nil
	}
	g, err := geo.Transform(v.Geom, v.SRID, geo.SRIDWGS84)
	if err != nil {
		return SpatialValue{}, err
	}
	return SpatialValue{Geom: g, SRID: geo.SRIDWGS84}, nil
}

// Period is a half-open valid-time interval [Start, End). A zero End means
// an open-ended period ("until changed", stRDF's NOW).
type Period struct {
	Start, End time.Time
}

// ParsePeriod decodes a period literal "[start, end)" (or "[start, NOW)").
func ParsePeriod(t rdf.Term) (Period, error) {
	if t.Kind != rdf.KindLiteral || t.Datatype != PeriodDatatype {
		return Period{}, fmt.Errorf("strdf: term %s is not a period literal", t)
	}
	lex := strings.TrimSpace(t.Value)
	if len(lex) < 2 || lex[0] != '[' || (lex[len(lex)-1] != ')' && lex[len(lex)-1] != ']') {
		return Period{}, fmt.Errorf("strdf: malformed period %q", lex)
	}
	body := lex[1 : len(lex)-1]
	parts := strings.SplitN(body, ",", 2)
	if len(parts) != 2 {
		return Period{}, fmt.Errorf("strdf: malformed period %q", lex)
	}
	start, err := time.Parse(time.RFC3339, strings.TrimSpace(parts[0]))
	if err != nil {
		return Period{}, fmt.Errorf("strdf: bad period start: %w", err)
	}
	p := Period{Start: start.UTC()}
	endStr := strings.TrimSpace(parts[1])
	if !strings.EqualFold(endStr, "NOW") && endStr != "" {
		end, err := time.Parse(time.RFC3339, endStr)
		if err != nil {
			return Period{}, fmt.Errorf("strdf: bad period end: %w", err)
		}
		p.End = end.UTC()
	}
	if !p.End.IsZero() && !p.Start.Before(p.End) {
		return Period{}, fmt.Errorf("strdf: period start %v not before end %v", p.Start, p.End)
	}
	return p, nil
}

// PeriodLiteral encodes a period as an stRDF period literal term.
func PeriodLiteral(p Period) rdf.Term {
	end := "NOW"
	if !p.End.IsZero() {
		end = p.End.UTC().Format(time.RFC3339)
	}
	return rdf.TypedLiteral(
		fmt.Sprintf("[%s, %s)", p.Start.UTC().Format(time.RFC3339), end),
		PeriodDatatype,
	)
}

// Contains reports whether instant t falls inside the period.
func (p Period) Contains(t time.Time) bool {
	if t.Before(p.Start) {
		return false
	}
	return p.End.IsZero() || t.Before(p.End)
}

// Overlaps reports whether two periods share any instant.
func (p Period) Overlaps(q Period) bool {
	startsBeforeQEnds := q.End.IsZero() || p.Start.Before(q.End)
	qStartsBeforePEnds := p.End.IsZero() || q.Start.Before(p.End)
	return startsBeforeQEnds && qStartsBeforePEnds
}

// During reports whether p lies entirely within q.
func (p Period) During(q Period) bool {
	if p.Start.Before(q.Start) {
		return false
	}
	if q.End.IsZero() {
		return true
	}
	if p.End.IsZero() {
		return false
	}
	return !p.End.After(q.End)
}

// Before reports whether p ends at or before q starts.
func (p Period) Before(q Period) bool {
	return !p.End.IsZero() && !p.End.After(q.Start)
}
