package strdf

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rdf"
)

func TestParseSpatialStRDF(t *testing.T) {
	v, err := ParseSpatial(rdf.WKTLiteral("POINT (23.5 37.9)", 4326))
	if err != nil {
		t.Fatal(err)
	}
	if v.SRID != geo.SRIDWGS84 {
		t.Fatalf("srid = %d", v.SRID)
	}
	p, ok := v.Geom.(geo.Point)
	if !ok || p.X != 23.5 {
		t.Fatalf("geom = %v", v.Geom)
	}
	// No SRID suffix defaults to WGS84.
	v2, err := ParseSpatial(rdf.WKTLiteral("POINT (1 2)", 0))
	if err != nil || v2.SRID != geo.SRIDWGS84 {
		t.Fatalf("default srid: %v %v", v2.SRID, err)
	}
	// Greek Grid SRID.
	v3, err := ParseSpatial(rdf.WKTLiteral("POINT (500000 4200000)", 2100))
	if err != nil || v3.SRID != geo.SRIDGreekGrid {
		t.Fatalf("greek grid: %v %v", v3.SRID, err)
	}
}

func TestParseSpatialGeoSPARQL(t *testing.T) {
	lit := rdf.TypedLiteral("<http://www.opengis.net/def/crs/EPSG/0/3857> POINT (100 200)", rdf.GeoSPARQLWKT)
	v, err := ParseSpatial(lit)
	if err != nil {
		t.Fatal(err)
	}
	if v.SRID != geo.SRIDWebMercator {
		t.Fatalf("srid = %d", v.SRID)
	}
}

func TestParseSpatialErrors(t *testing.T) {
	if _, err := ParseSpatial(rdf.Literal("POINT (1 2)")); err == nil {
		t.Fatal("plain literal is not spatial")
	}
	if _, err := ParseSpatial(rdf.WKTLiteral("NOT WKT", 4326)); err == nil {
		t.Fatal("bad WKT")
	}
	if _, err := ParseSpatial(rdf.TypedLiteral("<gml:Point/>", rdf.StRDFGML)); err == nil {
		t.Fatal("GML decode unsupported")
	}
	if _, err := ParseSpatial(rdf.TypedLiteral("<unterminated POINT(1 2)", rdf.GeoSPARQLWKT)); err == nil {
		t.Fatal("unterminated CRS IRI")
	}
}

func TestLiteralRoundTrip(t *testing.T) {
	g := geo.Rect(21, 36, 27, 40)
	lit := Literal(g, geo.SRIDWGS84)
	v, err := ParseSpatial(lit)
	if err != nil {
		t.Fatal(err)
	}
	if !geo.Equals(v.Geom, g) {
		t.Fatal("geometry round trip")
	}
	if v.SRID != geo.SRIDWGS84 {
		t.Fatal("srid round trip")
	}
	// Zero SRID normalises to 4326.
	lit2 := Literal(g, 0)
	v2, _ := ParseSpatial(lit2)
	if v2.SRID != geo.SRIDWGS84 {
		t.Fatal("zero srid")
	}
}

func TestToWGS84(t *testing.T) {
	// A point in Web Mercator projected back.
	merc, err := geo.Transform(geo.NewPoint(23.7, 37.9), geo.SRIDWGS84, geo.SRIDWebMercator)
	if err != nil {
		t.Fatal(err)
	}
	v := SpatialValue{Geom: merc, SRID: geo.SRIDWebMercator}
	w, err := v.ToWGS84()
	if err != nil {
		t.Fatal(err)
	}
	p := w.Geom.(geo.Point)
	if p.X < 23.69 || p.X > 23.71 {
		t.Fatalf("reprojected = %v", p)
	}
	// Already WGS84: identity.
	same := SpatialValue{Geom: geo.NewPoint(1, 2), SRID: geo.SRIDWGS84}
	w2, err := same.ToWGS84()
	if err != nil || w2.Geom.(geo.Point) != (geo.Point{X: 1, Y: 2}) {
		t.Fatal("identity")
	}
}

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	tm, err := time.Parse(time.RFC3339, s)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestPeriodRoundTrip(t *testing.T) {
	p := Period{
		Start: mustTime(t, "2007-08-25T12:00:00Z"),
		End:   mustTime(t, "2007-08-25T14:00:00Z"),
	}
	lit := PeriodLiteral(p)
	got, err := ParsePeriod(lit)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(p.Start) || !got.End.Equal(p.End) {
		t.Fatalf("round trip = %+v", got)
	}
	// Open-ended period.
	open := Period{Start: p.Start}
	gotOpen, err := ParsePeriod(PeriodLiteral(open))
	if err != nil {
		t.Fatal(err)
	}
	if !gotOpen.End.IsZero() {
		t.Fatal("open end lost")
	}
}

func TestParsePeriodErrors(t *testing.T) {
	for _, lex := range []string{
		"2007-08-25T12:00:00Z",                         // no brackets
		"[2007-08-25T12:00:00Z)",                       // one endpoint
		"[nonsense, 2007-08-25T14:00:00Z)",             // bad start
		"[2007-08-25T12:00:00Z, nonsense)",             // bad end
		"[2007-08-25T14:00:00Z, 2007-08-25T12:00:00Z)", // reversed
		"[2007-08-25T12:00:00Z, 2007-08-25T12:00:00Z)", // empty
	} {
		if _, err := ParsePeriod(rdf.TypedLiteral(lex, PeriodDatatype)); err == nil {
			t.Errorf("ParsePeriod(%q) succeeded", lex)
		}
	}
	if _, err := ParsePeriod(rdf.Literal("[a, b)")); err == nil {
		t.Fatal("wrong datatype")
	}
}

func TestPeriodRelations(t *testing.T) {
	mk := func(a, b string) Period {
		p := Period{Start: mustTime(t, a)}
		if b != "" {
			p.End = mustTime(t, b)
		}
		return p
	}
	morning := mk("2007-08-25T06:00:00Z", "2007-08-25T12:00:00Z")
	noonish := mk("2007-08-25T11:00:00Z", "2007-08-25T13:00:00Z")
	evening := mk("2007-08-25T18:00:00Z", "2007-08-25T22:00:00Z")
	allDay := mk("2007-08-25T00:00:00Z", "2007-08-26T00:00:00Z")
	open := mk("2007-08-25T10:00:00Z", "")

	if !morning.Overlaps(noonish) || !noonish.Overlaps(morning) {
		t.Fatal("overlapping periods")
	}
	if morning.Overlaps(evening) {
		t.Fatal("disjoint periods")
	}
	if !noonish.During(allDay) {
		t.Fatal("during")
	}
	if allDay.During(noonish) {
		t.Fatal("not during")
	}
	if !morning.Before(evening) {
		t.Fatal("before")
	}
	if evening.Before(morning) {
		t.Fatal("not before")
	}
	// Open periods.
	if !open.Overlaps(evening) {
		t.Fatal("open overlaps future")
	}
	if !evening.During(open) {
		t.Fatal("bounded during open")
	}
	if open.During(evening) {
		t.Fatal("open not during bounded")
	}
	if open.Before(evening) {
		t.Fatal("open never before")
	}
	// Contains instant.
	if !noonish.Contains(mustTime(t, "2007-08-25T12:30:00Z")) {
		t.Fatal("contains")
	}
	if noonish.Contains(mustTime(t, "2007-08-25T13:00:00Z")) {
		t.Fatal("half-open end")
	}
	if !open.Contains(mustTime(t, "2030-01-01T00:00:00Z")) {
		t.Fatal("open contains future")
	}
}
