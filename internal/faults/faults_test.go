package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInactiveIsNil(t *testing.T) {
	Reset()
	if err := Eval("never/armed"); err != nil {
		t.Fatalf("unarmed failpoint returned %v", err)
	}
	if got := Hits("never/armed"); got != 0 {
		t.Fatalf("hits = %d, want 0", got)
	}
}

func TestErrorAction(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err := Eval("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("err = %v, want message included", err)
	}
	// Forever: still failing on the tenth evaluation.
	for i := 0; i < 9; i++ {
		if err := Eval("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: err = %v", i, err)
		}
	}
	if got := Hits("p"); got != 10 {
		t.Fatalf("hits = %d, want 10", got)
	}
}

func TestCountedSequence(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "2*error->off"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Eval("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: err = %v, want injected", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Eval("p"); err != nil {
			t.Fatalf("after exhaustion: err = %v, want nil", err)
		}
	}
	if got := Hits("p"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
}

func TestExhaustedSpecGoesQuiet(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "1*error"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first eval: %v", err)
	}
	if err := Eval("p"); err != nil {
		t.Fatalf("second eval: %v, want nil", err)
	}
}

func TestTornAction(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "1*torn(7)->off"); err != nil {
		t.Fatal(err)
	}
	err := Eval("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn err should wrap ErrInjected, got %v", err)
	}
	allow, ok := AsTorn(err)
	if !ok || allow != 7 {
		t.Fatalf("AsTorn = (%d, %v), want (7, true)", allow, ok)
	}
	if _, ok := AsTorn(errors.New("other")); ok {
		t.Fatal("AsTorn matched a non-torn error")
	}
}

func TestSleepAction(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "1*sleep(30ms)->off"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval("p"); err != nil {
		t.Fatalf("sleep eval: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
	start = time.Now()
	if err := Eval("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("exhausted sleep still slept %v", d)
	}
}

func TestDisableAndActive(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("b", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("a", "off"); err != nil {
		t.Fatal(err)
	}
	got := Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Active = %v", got)
	}
	Disable("b")
	if err := Eval("b"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	Disable("b") // double-disable is a no-op
	Disable("a")
	if got := Active(); len(got) != 0 {
		t.Fatalf("Active after disable = %v", got)
	}
	// With nothing armed the fast path must be restored.
	if armed.Load() != 0 {
		t.Fatalf("armed = %d, want 0", armed.Load())
	}
}

func TestEnableFromSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := EnableFromSpec("x=1*error->off; y=error(boom) ;"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("x: %v", err)
	}
	if err := Eval("y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("y: %v", err)
	}
	if err := EnableFromSpec("garbage"); err == nil {
		t.Fatal("want error for missing '='")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "explode", "-1*error", "x*error", "sleep(nope)",
		"torn(-2)", "torn(x)", "sleep(5ms", "error(unclosed",
	} {
		if _, err := parseSpec(spec); err == nil {
			t.Errorf("parseSpec(%q) accepted", spec)
		}
	}
	for _, spec := range []string{
		"off", "error", "error(m s g)", "0*error->off",
		"3*sleep(1ms)->2*torn(0)->error", " 2* error -> off ",
	} {
		if _, err := parseSpec(spec); err != nil {
			t.Errorf("parseSpec(%q): %v", spec, err)
		}
	}
}

func TestReEnableReplacesSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("p", "off"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("p"); err != nil {
		t.Fatalf("re-enabled off spec fired: %v", err)
	}
	if armed.Load() != 1 {
		t.Fatalf("armed = %d, want 1 (re-enable must not double-count)", armed.Load())
	}
}

func TestConcurrentEval(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("p", "100*error->off"); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			n := 0
			for i := 0; i < 50; i++ {
				if errors.Is(Eval("p"), ErrInjected) {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if total != 100 {
		t.Fatalf("injected %d errors, want exactly 100", total)
	}
}
