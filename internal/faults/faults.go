// Package faults is a named-failpoint framework for deterministic
// fault injection. Production code plants failpoints at the places
// that can fail in the wild (fsync, rename, network read, serializer
// write) by calling Eval with a stable name; tests — or an operator
// via the TELEIOS_FAILPOINTS environment variable — arm those points
// with a small spec language to force errors, latency, or torn writes
// on demand.
//
// The framework is compiled in unconditionally but costs a single
// atomic load per Eval when no failpoint is armed, so plants are safe
// on hot paths.
//
// # Spec language
//
// A spec is a sequence of terms separated by "->". Each term is an
// action with an optional repeat count:
//
//	[N*]action
//
// Actions:
//
//	off           do nothing (useful as a sequence terminator)
//	error         return an error wrapping ErrInjected
//	error(msg)    same, with msg in the error text
//	sleep(dur)    sleep for a Go duration (e.g. 25ms), then continue
//	torn(n)       return a *TornWriteError telling the call site to
//	              persist only the first n bytes before failing
//
// Without a count a term repeats forever; with "N*" it fires N times
// and then the next term takes over. When every term is exhausted the
// failpoint goes quiet (hits are still counted).
//
// Examples:
//
//	error                       fail every time
//	2*error->off                fail twice, then recover
//	1*torn(7)                   tear the first write at 7 bytes
//	3*sleep(50ms)->1*error      slow disk, then a hard failure
//
// The environment variable TELEIOS_FAILPOINTS arms points at process
// start: "name=spec;name2=spec2".
package faults

//go:generate go run repro/internal/lint/genregistry

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so
// tests can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("fault injected")

// TornWriteError instructs the call site to write only the first
// Allow bytes of the payload and then fail, simulating a torn write
// (power cut mid-write, short network frame). It wraps ErrInjected.
type TornWriteError struct {
	Name  string
	Allow int
}

func (e *TornWriteError) Error() string {
	return fmt.Sprintf("failpoint %s: torn write after %d bytes: %v", e.Name, e.Allow, ErrInjected)
}

func (e *TornWriteError) Unwrap() error { return ErrInjected }

// AsTorn reports whether err carries a torn-write instruction and, if
// so, how many bytes the call site should persist before failing.
func AsTorn(err error) (allow int, ok bool) {
	var t *TornWriteError
	if errors.As(err, &t) {
		return t.Allow, true
	}
	return 0, false
}

type actionKind int

const (
	actOff actionKind = iota
	actError
	actSleep
	actTorn
)

type term struct {
	count  int // remaining firings; -1 = forever
	action actionKind
	msg    string
	dur    time.Duration
	allow  int
}

type point struct {
	mu    sync.Mutex
	terms []term
	spec  string
}

var (
	// armed is the fast path: Eval returns immediately while zero.
	armed atomic.Int32

	mu     sync.RWMutex
	points = map[string]*point{}
	hits   = map[string]*atomic.Uint64{}
)

func init() {
	if s := os.Getenv("TELEIOS_FAILPOINTS"); s != "" {
		if err := EnableFromSpec(s); err != nil {
			fmt.Fprintf(os.Stderr, "faults: bad TELEIOS_FAILPOINTS: %v\n", err)
		}
	}
}

// Enable arms the named failpoint with spec, replacing any previous
// arming. An "off" spec is valid and leaves the point counting hits
// without acting.
func Enable(name, spec string) error {
	terms, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, had := points[name]; !had {
		armed.Add(1)
	}
	points[name] = &point{terms: terms, spec: spec}
	if hits[name] == nil {
		hits[name] = &atomic.Uint64{}
	}
	return nil
}

// EnableFromSpec arms multiple failpoints from a "name=spec;name=spec"
// string (the TELEIOS_FAILPOINTS format). Empty segments are ignored.
func EnableFromSpec(s string) error {
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faults: %q: want name=spec", part)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms the named failpoint. Hit counts survive.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, had := points[name]; had {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint and clears all hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	hits = map[string]*atomic.Uint64{}
}

// Hits reports how many times the named failpoint was evaluated while
// armed (including evaluations that took no action).
func Hits(name string) uint64 {
	mu.RLock()
	defer mu.RUnlock()
	if c := hits[name]; c != nil {
		return c.Load()
	}
	return 0
}

// Active returns the names of currently armed failpoints, sorted.
func Active() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Eval is the plant call. It returns nil instantly when the named
// failpoint is not armed; otherwise it performs the current term's
// action: nil for off/exhausted, a sleep (then nil), an error
// wrapping ErrInjected, or a *TornWriteError.
func Eval(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	p := points[name]
	c := hits[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	c.Add(1)
	p.mu.Lock()
	var t *term
	for len(p.terms) > 0 {
		if p.terms[0].count != 0 {
			t = &p.terms[0]
			break
		}
		p.terms = p.terms[1:]
	}
	if t == nil {
		p.mu.Unlock()
		return nil
	}
	if t.count > 0 {
		t.count--
	}
	action, msg, dur, allow := t.action, t.msg, t.dur, t.allow
	p.mu.Unlock()

	switch action {
	case actError:
		if msg != "" {
			return fmt.Errorf("failpoint %s: %s: %w", name, msg, ErrInjected)
		}
		return fmt.Errorf("failpoint %s: %w", name, ErrInjected)
	case actSleep:
		time.Sleep(dur)
	case actTorn:
		return &TornWriteError{Name: name, Allow: allow}
	}
	return nil
}

func parseSpec(spec string) ([]term, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, errors.New("empty spec")
	}
	parts := strings.Split(spec, "->")
	terms := make([]term, 0, len(parts))
	for _, raw := range parts {
		raw = strings.TrimSpace(raw)
		t := term{count: -1}
		if i := strings.Index(raw, "*"); i >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(raw[:i]))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad repeat count %q", raw)
			}
			t.count = n
			raw = strings.TrimSpace(raw[i+1:])
		}
		name, arg := raw, ""
		if i := strings.Index(raw, "("); i >= 0 {
			if !strings.HasSuffix(raw, ")") {
				return nil, fmt.Errorf("unbalanced parens in %q", raw)
			}
			name, arg = raw[:i], raw[i+1:len(raw)-1]
		}
		switch name {
		case "off":
			t.action = actOff
		case "error":
			t.action = actError
			t.msg = arg
		case "sleep":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("bad sleep duration %q", arg)
			}
			t.action = actSleep
			t.dur = d
		case "torn":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad torn byte count %q", arg)
			}
			t.action = actTorn
			t.allow = n
		default:
			return nil, fmt.Errorf("unknown action %q", name)
		}
		terms = append(terms, t)
	}
	return terms, nil
}
