package faults

import (
	"testing"

	"repro/internal/lint/failpointdoc"
)

// TestRegistryMatchesDocs pins the generated Registry to the failpoint
// matrix in docs/operations.md. If this fails, someone edited one side
// without the other: run `go generate ./internal/faults`.
func TestRegistryMatchesDocs(t *testing.T) {
	entries, err := failpointdoc.ParseMatrix("../../docs/operations.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(Registry) {
		t.Errorf("docs matrix has %d failpoints, Registry has %d; run `go generate ./internal/faults`",
			len(entries), len(Registry))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Name] {
			t.Errorf("failpoint %q documented twice in docs/operations.md", e.Name)
		}
		seen[e.Name] = true
		site, ok := Registry[e.Name]
		if !ok {
			t.Errorf("failpoint %q documented but missing from Registry; run `go generate ./internal/faults`", e.Name)
			continue
		}
		if site != e.Site {
			t.Errorf("failpoint %q: Registry site %q != documented site %q; run `go generate ./internal/faults`",
				e.Name, site, e.Site)
		}
	}
	for name := range Registry {
		if !seen[name] {
			t.Errorf("failpoint %q registered but absent from docs/operations.md's matrix", name)
		}
	}
}
