package geo

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistance(t *testing.T) {
	if d := Distance(NewPoint(0, 0), NewPoint(3, 4)); d != 5 {
		t.Fatalf("point distance = %g", d)
	}
	if d := Distance(Rect(0, 0, 1, 1), Rect(3, 0, 4, 1)); d != 2 {
		t.Fatalf("rect distance = %g", d)
	}
	if d := Distance(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)); d != 0 {
		t.Fatalf("overlapping distance = %g", d)
	}
	line := NewLineString(Point{0, 2}, Point{4, 2})
	if d := Distance(NewPoint(2, 0), line); d != 2 {
		t.Fatalf("point-line distance = %g", d)
	}
	// Distance to a point past the segment end uses the endpoint.
	if d := Distance(NewPoint(6, 2), line); d != 2 {
		t.Fatalf("endpoint distance = %g", d)
	}
	if !math.IsInf(Distance(Polygon{}, NewPoint(0, 0)), 1) {
		t.Fatal("empty distance should be +Inf")
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid(Rect(0, 0, 4, 2))
	if !almostEq(c.X, 2, 1e-9) || !almostEq(c.Y, 1, 1e-9) {
		t.Fatalf("rect centroid = %+v", c)
	}
	lc := Centroid(NewLineString(Point{0, 0}, Point{4, 0}))
	if !almostEq(lc.X, 2, 1e-9) || !almostEq(lc.Y, 0, 1e-9) {
		t.Fatalf("line centroid = %+v", lc)
	}
	mc := Centroid(MultiPoint{Points: []Point{{0, 0}, {2, 2}}})
	if !almostEq(mc.X, 1, 1e-9) {
		t.Fatalf("multipoint centroid = %+v", mc)
	}
	// Donut centroid stays at center by symmetry.
	donut := NewPolygon(
		NewRing(Point{0, 0}, Point{10, 0}, Point{10, 10}, Point{0, 10}),
		NewRing(Point{4, 4}, Point{6, 4}, Point{6, 6}, Point{4, 6}),
	)
	dc := Centroid(donut)
	if !almostEq(dc.X, 5, 1e-9) || !almostEq(dc.Y, 5, 1e-9) {
		t.Fatalf("donut centroid = %+v", dc)
	}
	// Asymmetric hole pulls the centroid away.
	lop := NewPolygon(
		NewRing(Point{0, 0}, Point{10, 0}, Point{10, 10}, Point{0, 10}),
		NewRing(Point{6, 4}, Point{9, 4}, Point{9, 6}, Point{6, 6}),
	)
	lc2 := Centroid(lop)
	if lc2.X >= 5 {
		t.Fatalf("hole on the right should pull centroid left: %+v", lc2)
	}
}

func TestAreaLength(t *testing.T) {
	if Area(Rect(0, 0, 3, 3)) != 9 {
		t.Fatal("rect area")
	}
	if Area(NewLineString(Point{0, 0}, Point{1, 1})) != 0 {
		t.Fatal("line area should be 0")
	}
	if Length(NewLineString(Point{0, 0}, Point{0, 5})) != 5 {
		t.Fatal("line length")
	}
	if Length(Rect(0, 0, 1, 1)) != 4 {
		t.Fatal("rect perimeter")
	}
	gc := GeometryCollection{Geometries: []Geometry{Rect(0, 0, 2, 2), Rect(5, 5, 6, 6)}}
	if Area(gc) != 5 {
		t.Fatal("collection area")
	}
}

func TestBufferPoint(t *testing.T) {
	b := Buffer(NewPoint(0, 0), 1, 8)
	p, ok := b.(Polygon)
	if !ok {
		t.Fatalf("buffer type %T", b)
	}
	// Area approaches pi from below.
	if p.Area() < 3.0 || p.Area() > math.Pi {
		t.Fatalf("circle area = %g", p.Area())
	}
	if !Within(NewPoint(0.5, 0.5), p) {
		t.Fatal("interior point of buffer")
	}
	if Within(NewPoint(1.2, 0), p) {
		t.Fatal("exterior point of buffer")
	}
}

func TestBufferLine(t *testing.T) {
	l := NewLineString(Point{0, 0}, Point{10, 0})
	b := Buffer(l, 1, 8)
	area := Area(b)
	// Capsule area = 2*d*len + pi*d^2 = 20 + pi.
	want := 20 + math.Pi
	if !almostEq(area, want, 0.5) {
		t.Fatalf("capsule area = %g, want ~%g", area, want)
	}
	if !Intersects(b, NewPoint(5, 0.9)) {
		t.Fatal("point inside capsule")
	}
	if Intersects(b, NewPoint(5, 1.5)) {
		t.Fatal("point outside capsule")
	}
}

func TestBufferPolygonGrows(t *testing.T) {
	p := Rect(0, 0, 4, 4)
	b := Buffer(p, 1, 4)
	if Area(b) <= p.Area() {
		t.Fatalf("buffered area %g should exceed %g", Area(b), p.Area())
	}
	if !Within(p, b) {
		t.Fatal("original should lie within its outward buffer")
	}
}

func TestBufferZeroAndEmpty(t *testing.T) {
	p := Rect(0, 0, 1, 1)
	if g := Buffer(p, 0, 8); !Equals(g, p) {
		t.Fatal("zero buffer should be identity")
	}
	if g := Buffer(Polygon{}, 1, 8); !g.IsEmpty() {
		t.Fatal("buffer of empty should be empty")
	}
	if g := Buffer(p, -1, 8); !g.IsEmpty() {
		t.Fatal("negative buffer approximated as empty")
	}
}

func TestConvexHull(t *testing.T) {
	mp := MultiPoint{Points: []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}}}
	h := ConvexHull(mp)
	p, ok := h.(Polygon)
	if !ok {
		t.Fatalf("hull type %T", h)
	}
	if p.Area() != 16 {
		t.Fatalf("hull area = %g, want 16", p.Area())
	}
	// Degenerate cases.
	if _, ok := ConvexHull(NewPoint(1, 1)).(Point); !ok {
		t.Fatal("single point hull")
	}
	if _, ok := ConvexHull(MultiPoint{Points: []Point{{0, 0}, {1, 1}}}).(LineString); !ok {
		t.Fatal("two point hull")
	}
	// Collinear points.
	col := MultiPoint{Points: []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}}
	if _, ok := ConvexHull(col).(LineString); !ok {
		t.Fatal("collinear hull should be a line")
	}
}

func TestSimplify(t *testing.T) {
	// Nearly straight line with a tiny wiggle collapses.
	l := NewLineString(Point{0, 0}, Point{1, 0.001}, Point{2, -0.001}, Point{3, 0})
	s := Simplify(l, 0.01).(LineString)
	if len(s.Coords) != 2 {
		t.Fatalf("simplified to %d points", len(s.Coords))
	}
	// A real corner survives.
	corner := NewLineString(Point{0, 0}, Point{5, 0}, Point{5, 5})
	sc := Simplify(corner, 0.01).(LineString)
	if len(sc.Coords) != 3 {
		t.Fatalf("corner dropped: %d points", len(sc.Coords))
	}
	// Polygon ring keeps closure.
	p := Rect(0, 0, 10, 10)
	sp := Simplify(p, 0.5).(Polygon)
	if err := Validate(sp); err != nil {
		t.Fatalf("simplified polygon invalid: %v", err)
	}
	if sp.Area() != 100 {
		t.Fatalf("area changed: %g", sp.Area())
	}
}

func TestTransformRoundTrip(t *testing.T) {
	p := NewPoint(23.7275, 37.9838) // Athens
	for _, to := range []SRID{SRIDWebMercator, SRIDGreekGrid} {
		g, err := Transform(p, SRIDWGS84, to)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Transform(g, to, SRIDWGS84)
		if err != nil {
			t.Fatal(err)
		}
		q := back.(Point)
		if !almostEq(q.X, p.X, 1e-6) || !almostEq(q.Y, p.Y, 1e-6) {
			t.Fatalf("SRID %d round trip %+v -> %+v", to, p, q)
		}
	}
}

func TestTransformIdentityAndErrors(t *testing.T) {
	p := NewPoint(1, 2)
	g, err := Transform(p, SRIDWGS84, SRIDWGS84)
	if err != nil || g.(Point) != p {
		t.Fatalf("identity transform: %v %v", g, err)
	}
	if _, err := Transform(p, SRID(9999), SRIDWGS84); err == nil {
		t.Fatal("unknown source SRID should error")
	}
	if _, err := Transform(p, SRIDWGS84, SRID(9999)); err == nil {
		t.Fatal("unknown target SRID should error")
	}
	// CRS84 aliases 4326.
	g, err = Transform(p, SRIDCRS84, SRIDWGS84)
	if err != nil || g.(Point) != p {
		t.Fatal("CRS84 alias")
	}
}

func TestTransformPolygonPreservesTopology(t *testing.T) {
	poly := Rect(23, 37, 24, 38)
	g, err := Transform(poly, SRIDWGS84, SRIDWebMercator)
	if err != nil {
		t.Fatal(err)
	}
	tp := g.(Polygon)
	if err := Validate(tp); err != nil {
		t.Fatal(err)
	}
	if tp.Area() <= 0 {
		t.Fatal("projected polygon should have positive area")
	}
}

func TestHaversine(t *testing.T) {
	athens := NewPoint(23.7275, 37.9838)
	thessaloniki := NewPoint(22.9444, 40.6401)
	d := HaversineMeters(athens, thessaloniki)
	// Real-world distance is ~300 km.
	if d < 280e3 || d > 320e3 {
		t.Fatalf("Athens-Thessaloniki = %g m", d)
	}
	if HaversineMeters(athens, athens) != 0 {
		t.Fatal("self distance")
	}
}

func TestGeodesicDistanceMeters(t *testing.T) {
	a := NewPoint(23.0, 38.0)
	b := NewPoint(23.0, 38.1) // 0.1 deg lat ~ 11.1 km
	d := GeodesicDistanceMeters(a, b)
	if d < 10e3 || d > 12.5e3 {
		t.Fatalf("0.1 deg lat = %g m", d)
	}
	if GeodesicDistanceMeters(Rect(22, 37, 24, 39), a) != 0 {
		t.Fatal("contained point distance should be 0")
	}
}

func TestBufferMeters(t *testing.T) {
	site := NewPoint(22.0, 37.5)
	zone := BufferMeters(site, 2000, 8) // the paper's "within 2km" radius
	if zone.IsEmpty() {
		t.Fatal("buffer empty")
	}
	near := NewPoint(22.015, 37.5) // ~1.3 km east
	far := NewPoint(22.05, 37.5)   // ~4.4 km east
	if !Intersects(zone, near) {
		t.Fatal("1.3km point should be inside 2km buffer")
	}
	if Intersects(zone, far) {
		t.Fatal("4.4km point should be outside 2km buffer")
	}
}

func TestAreaSquareMeters(t *testing.T) {
	// 0.01 x 0.01 degree box near lat 38: ~ (1.11km * cos38) * 1.11km.
	box := Rect(23.0, 38.0, 23.01, 38.01)
	a := AreaSquareMeters(box)
	want := 1.11e3 * math.Cos(38*math.Pi/180) * 1.11e3
	if a < want*0.9 || a > want*1.1 {
		t.Fatalf("area = %g, want ~%g", a, want)
	}
	if AreaSquareMeters(Polygon{}) != 0 {
		t.Fatal("empty area")
	}
}
