package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests over the geometry kernel's core invariants, using
// rectangles and triangles generated from bounded random floats (huge or
// non-finite coordinates are out of the kernel's domain).

// boundedRect maps four arbitrary floats into a well-formed rectangle
// inside [-100, 100]^2 with side lengths in (0.1, 20].
func boundedRect(a, b, c, d float64) Polygon {
	norm := func(v float64, lo, hi float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0.5
		}
		v = math.Abs(v)
		v = v - math.Floor(v) // fractional part in [0,1)
		return lo + v*(hi-lo)
	}
	x := norm(a, -100, 100)
	y := norm(b, -100, 100)
	w := norm(c, 0.1, 20)
	h := norm(d, 0.1, 20)
	return Rect(x, y, x+w, y+h)
}

func TestPropIntersectionBounded(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		p := boundedRect(a, b, c, d)
		q := boundedRect(e, g, h, i)
		inter, err := IntersectPolygons(p, q)
		if err != nil {
			return false
		}
		var area float64
		for _, r := range inter {
			area += r.Area()
		}
		return area <= math.Min(p.Area(), q.Area())+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectionDifferencePartition(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		p := boundedRect(a, b, c, d)
		q := boundedRect(e, g, h, i)
		inter, err := IntersectPolygons(p, q)
		if err != nil {
			return false
		}
		diff, err := DifferencePolygons(p, q)
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range inter {
			sum += r.Area()
		}
		for _, r := range diff {
			sum += r.Area()
		}
		return math.Abs(sum-p.Area()) < 1e-3*(p.Area()+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionInclusionExclusion(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		p := boundedRect(a, b, c, d)
		q := boundedRect(e, g, h, i)
		inter, err := IntersectPolygons(p, q)
		if err != nil {
			return false
		}
		un, err := UnionPolygons(p, q)
		if err != nil {
			return false
		}
		var iA, uA float64
		for _, r := range inter {
			iA += r.Area()
		}
		for _, r := range un {
			uA += r.Area()
		}
		want := p.Area() + q.Area() - iA
		return math.Abs(uA-want) < 1e-3*(want+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectsSymmetric(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float64) bool {
		p := boundedRect(a, b, c, d)
		q := boundedRect(e, g, h, i)
		return Intersects(p, q) == Intersects(q, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEnvelopeIntersectionConsistency(t *testing.T) {
	// Exact intersection implies envelope intersection.
	f := func(a, b, c, d, e, g, h, i float64) bool {
		p := boundedRect(a, b, c, d)
		q := boundedRect(e, g, h, i)
		if Intersects(p, q) && !p.Envelope().Intersects(q.Envelope()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropConvexHullContainsPoints(t *testing.T) {
	f := func(coords [8][2]float64) bool {
		pts := make([]Point, 0, len(coords))
		for _, c := range coords {
			x := math.Mod(math.Abs(c[0]), 100)
			y := math.Mod(math.Abs(c[1]), 100)
			if math.IsNaN(x) || math.IsNaN(y) {
				x, y = 0, 0
			}
			pts = append(pts, Point{x, y})
		}
		hull := ConvexHull(MultiPoint{Points: pts})
		for _, p := range pts {
			if !Intersects(p, hull) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropBufferContainsOriginal(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		p := boundedRect(a, b, c, d)
		buffered := Buffer(p, 1, 4)
		return Within(p, buffered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropWKTRoundTripArea(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		p := boundedRect(a, b, c, d)
		back, err := ParseWKT(p.WKT())
		if err != nil {
			return false
		}
		bp, ok := back.(Polygon)
		if !ok {
			return false
		}
		return math.Abs(bp.Area()-p.Area()) < 1e-9*(p.Area()+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSimplifyNeverGrows(t *testing.T) {
	f := func(a, b, c, d, tolRaw float64) bool {
		p := boundedRect(a, b, c, d)
		tol := math.Mod(math.Abs(tolRaw), 2)
		if math.IsNaN(tol) {
			tol = 0.1
		}
		s := Simplify(p, tol)
		return len(vertices(s)) <= len(vertices(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDistanceTriangleish(t *testing.T) {
	// Distance is symmetric and zero iff intersecting (for these shapes).
	f := func(a, b, c, d, e, g, h, i float64) bool {
		p := boundedRect(a, b, c, d)
		q := boundedRect(e, g, h, i)
		d1 := Distance(p, q)
		d2 := Distance(q, p)
		if math.Abs(d1-d2) > 1e-9 {
			return false
		}
		if Intersects(p, q) != (d1 == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
