package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// WKT serialisation -----------------------------------------------------------

// Serialisation appends into a single buffer (one allocation per
// geometry) instead of formatting every coordinate into its own interim
// string — WKT generation sits on the metadata and annotation hot paths
// of the ingestion chain.

// WKT implements Geometry for Point.
func (p Point) WKT() string {
	if p.IsEmpty() {
		return "POINT EMPTY"
	}
	buf := append(make([]byte, 0, 32), "POINT ("...)
	buf = appendCoord(buf, p)
	return string(append(buf, ')'))
}

// WKT implements Geometry for MultiPoint.
func (m MultiPoint) WKT() string {
	if m.IsEmpty() {
		return "MULTIPOINT EMPTY"
	}
	buf := append(make([]byte, 0, 16+24*len(m.Points)), "MULTIPOINT ("...)
	for i, p := range m.Points {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = append(buf, '(')
		buf = appendCoord(buf, p)
		buf = append(buf, ')')
	}
	return string(append(buf, ')'))
}

// WKT implements Geometry for LineString.
func (l LineString) WKT() string {
	if l.IsEmpty() {
		return "LINESTRING EMPTY"
	}
	buf := append(make([]byte, 0, 16+24*len(l.Coords)), "LINESTRING "...)
	return string(appendCoords(buf, l.Coords))
}

// WKT implements Geometry for MultiLineString.
func (m MultiLineString) WKT() string {
	if m.IsEmpty() {
		return "MULTILINESTRING EMPTY"
	}
	buf := append(make([]byte, 0, 64), "MULTILINESTRING ("...)
	for i, l := range m.Lines {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = appendCoords(buf, l.Coords)
	}
	return string(append(buf, ')'))
}

// WKT implements Geometry for Polygon.
func (p Polygon) WKT() string {
	if p.IsEmpty() {
		return "POLYGON EMPTY"
	}
	buf := append(make([]byte, 0, 24+24*len(p.Exterior.Coords)), "POLYGON "...)
	return string(appendPolyBody(buf, p))
}

// WKT implements Geometry for MultiPolygon.
func (m MultiPolygon) WKT() string {
	if m.IsEmpty() {
		return "MULTIPOLYGON EMPTY"
	}
	buf := append(make([]byte, 0, 64), "MULTIPOLYGON ("...)
	for i, p := range m.Polygons {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = appendPolyBody(buf, p)
	}
	return string(append(buf, ')'))
}

// WKT implements Geometry for GeometryCollection.
func (g GeometryCollection) WKT() string {
	if g.IsEmpty() {
		return "GEOMETRYCOLLECTION EMPTY"
	}
	parts := make([]string, len(g.Geometries))
	for i, m := range g.Geometries {
		parts[i] = m.WKT()
	}
	return "GEOMETRYCOLLECTION (" + strings.Join(parts, ", ") + ")"
}

// AppendWKT appends g's WKT text to buf — the allocation-free form of
// Geometry.WKT for callers that embed the text in a larger literal.
func AppendWKT(buf []byte, g Geometry) []byte {
	switch t := g.(type) {
	case Point:
		if t.IsEmpty() {
			return append(buf, "POINT EMPTY"...)
		}
		buf = append(buf, "POINT ("...)
		buf = appendCoord(buf, t)
		return append(buf, ')')
	case LineString:
		if t.IsEmpty() {
			return append(buf, "LINESTRING EMPTY"...)
		}
		buf = append(buf, "LINESTRING "...)
		return appendCoords(buf, t.Coords)
	case Polygon:
		if t.IsEmpty() {
			return append(buf, "POLYGON EMPTY"...)
		}
		buf = append(buf, "POLYGON "...)
		return appendPolyBody(buf, t)
	default:
		return append(buf, g.WKT()...)
	}
}

func appendCoord(buf []byte, p Point) []byte {
	buf = strconv.AppendFloat(buf, p.X, 'g', -1, 64)
	buf = append(buf, ' ')
	return strconv.AppendFloat(buf, p.Y, 'g', -1, 64)
}

func appendCoords(buf []byte, cs []Point) []byte {
	buf = append(buf, '(')
	for i, c := range cs {
		if i > 0 {
			buf = append(buf, ", "...)
		}
		buf = appendCoord(buf, c)
	}
	return append(buf, ')')
}

func appendPolyBody(buf []byte, p Polygon) []byte {
	buf = append(buf, '(')
	buf = appendCoords(buf, p.Exterior.Coords)
	for _, h := range p.Holes {
		buf = append(buf, ", "...)
		buf = appendCoords(buf, h.Coords)
	}
	return append(buf, ')')
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WKT parsing -----------------------------------------------------------------

// ParseWKT parses an OGC Well-Known Text geometry. It accepts the 2D subset
// of the grammar (the TELEIOS demo uses only 2D data), case-insensitive
// keywords, and EMPTY geometries.
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{src: s}
	g, err := p.parseGeometry()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("geo: trailing input at offset %d in WKT %q", p.pos, truncate(s))
	}
	return g, nil
}

// MustParseWKT parses s and panics on error; for tests and literals.
func MustParseWKT(s string) Geometry {
	g, err := ParseWKT(s)
	if err != nil {
		panic(err)
	}
	return g
}

type wktParser struct {
	src string
	pos int
}

func truncate(s string) string {
	if len(s) > 64 {
		return s[:61] + "..."
	}
	return s
}

func (p *wktParser) errf(format string, args ...any) error {
	return fmt.Errorf("geo: %s at offset %d in WKT %q", fmt.Sprintf(format, args...), p.pos, truncate(p.src))
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *wktParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.src[start:p.pos])
}

func (p *wktParser) peekWord() string {
	save := p.pos
	w := p.word()
	p.pos = save
	return w
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *wktParser) tryByte(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, p.errf("expected number")
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.src[start:p.pos])
	}
	return f, nil
}

func (p *wktParser) parseGeometry() (Geometry, error) {
	switch tag := p.word(); tag {
	case "POINT":
		if p.peekWord() == "EMPTY" {
			p.word()
			return Point{X: math.NaN(), Y: math.NaN()}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return pt, nil
	case "MULTIPOINT":
		if p.peekWord() == "EMPTY" {
			p.word()
			return MultiPoint{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var pts []Point
		for {
			// Both "MULTIPOINT ((1 2), (3 4))" and "MULTIPOINT (1 2, 3 4)"
			// are legal WKT.
			wrapped := p.tryByte('(')
			pt, err := p.coord()
			if err != nil {
				return nil, err
			}
			if wrapped {
				if err := p.expect(')'); err != nil {
					return nil, err
				}
			}
			pts = append(pts, pt)
			if !p.tryByte(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return MultiPoint{Points: pts}, nil
	case "LINESTRING":
		if p.peekWord() == "EMPTY" {
			p.word()
			return LineString{}, nil
		}
		cs, err := p.coordList()
		if err != nil {
			return nil, err
		}
		return LineString{Coords: cs}, nil
	case "MULTILINESTRING":
		if p.peekWord() == "EMPTY" {
			p.word()
			return MultiLineString{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var lines []LineString
		for {
			cs, err := p.coordList()
			if err != nil {
				return nil, err
			}
			lines = append(lines, LineString{Coords: cs})
			if !p.tryByte(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return MultiLineString{Lines: lines}, nil
	case "POLYGON":
		if p.peekWord() == "EMPTY" {
			p.word()
			return Polygon{}, nil
		}
		return p.polygonBody()
	case "MULTIPOLYGON":
		if p.peekWord() == "EMPTY" {
			p.word()
			return MultiPolygon{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var polys []Polygon
		for {
			poly, err := p.polygonBody()
			if err != nil {
				return nil, err
			}
			polys = append(polys, poly)
			if !p.tryByte(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return MultiPolygon{Polygons: polys}, nil
	case "GEOMETRYCOLLECTION":
		if p.peekWord() == "EMPTY" {
			p.word()
			return GeometryCollection{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var geoms []Geometry
		for {
			g, err := p.parseGeometry()
			if err != nil {
				return nil, err
			}
			geoms = append(geoms, g)
			if !p.tryByte(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return GeometryCollection{Geometries: geoms}, nil
	case "":
		return nil, p.errf("empty WKT input")
	default:
		return nil, p.errf("unknown geometry tag %q", tag)
	}
}

func (p *wktParser) coord() (Point, error) {
	x, err := p.number()
	if err != nil {
		return Point{}, err
	}
	y, err := p.number()
	if err != nil {
		return Point{}, err
	}
	return Point{X: x, Y: y}, nil
}

func (p *wktParser) coordList() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	// Rectangle footprints (5 coords) dominate the catalogue: start with
	// capacity for them so the common ring parses in one allocation.
	cs := make([]Point, 0, 8)
	for {
		c, err := p.coord()
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
		if !p.tryByte(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return cs, nil
}

func (p *wktParser) polygonBody() (Polygon, error) {
	if err := p.expect('('); err != nil {
		return Polygon{}, err
	}
	var exterior Ring
	var holes []Ring
	first := true
	for {
		cs, err := p.coordList()
		if err != nil {
			return Polygon{}, err
		}
		if len(cs) < 4 {
			return Polygon{}, p.errf("polygon ring needs at least 4 coordinates, got %d", len(cs))
		}
		if !cs[0].Equal(cs[len(cs)-1]) {
			return Polygon{}, p.errf("polygon ring is not closed")
		}
		if first {
			exterior = Ring{Coords: cs}
			first = false
		} else {
			holes = append(holes, Ring{Coords: cs})
		}
		if !p.tryByte(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return Polygon{}, err
	}
	return NewPolygon(exterior, holes...), nil
}
