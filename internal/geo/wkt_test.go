package geo

import (
	"strings"
	"testing"
)

func TestWKTRoundTripPoint(t *testing.T) {
	g, err := ParseWKT("POINT (23.5 37.9)")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.(Point)
	if !ok {
		t.Fatalf("type %T", g)
	}
	if p.X != 23.5 || p.Y != 37.9 {
		t.Fatalf("parsed %+v", p)
	}
	if got := p.WKT(); got != "POINT (23.5 37.9)" {
		t.Fatalf("WKT = %q", got)
	}
}

func TestWKTCaseInsensitive(t *testing.T) {
	for _, s := range []string{"point(1 2)", "Point (1 2)", "POINT(1 2)", "  POINT  ( 1   2 ) "} {
		g, err := ParseWKT(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if g.(Point) != (Point{1, 2}) {
			t.Fatalf("%q parsed to %+v", s, g)
		}
	}
}

func TestWKTLineString(t *testing.T) {
	g := MustParseWKT("LINESTRING (0 0, 1 1, 2 0)")
	l := g.(LineString)
	if len(l.Coords) != 3 {
		t.Fatalf("coords = %d", len(l.Coords))
	}
	round := MustParseWKT(l.WKT()).(LineString)
	if len(round.Coords) != 3 || round.Coords[2] != (Point{2, 0}) {
		t.Fatalf("round trip = %+v", round)
	}
}

func TestWKTPolygonWithHole(t *testing.T) {
	src := "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))"
	g := MustParseWKT(src)
	p := g.(Polygon)
	if len(p.Holes) != 1 {
		t.Fatalf("holes = %d", len(p.Holes))
	}
	if p.Area() != 96 {
		t.Fatalf("area = %g", p.Area())
	}
	// Round trip preserves topology (not necessarily vertex order).
	p2 := MustParseWKT(p.WKT()).(Polygon)
	if p2.Area() != 96 || len(p2.Holes) != 1 {
		t.Fatalf("round trip area = %g holes = %d", p2.Area(), len(p2.Holes))
	}
}

func TestWKTMultiPointBothForms(t *testing.T) {
	a := MustParseWKT("MULTIPOINT ((1 2), (3 4))").(MultiPoint)
	b := MustParseWKT("MULTIPOINT (1 2, 3 4)").(MultiPoint)
	if len(a.Points) != 2 || len(b.Points) != 2 {
		t.Fatalf("lens = %d, %d", len(a.Points), len(b.Points))
	}
	if a.Points[1] != b.Points[1] {
		t.Fatalf("forms disagree: %+v vs %+v", a.Points[1], b.Points[1])
	}
}

func TestWKTMultiLineString(t *testing.T) {
	g := MustParseWKT("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))")
	m := g.(MultiLineString)
	if len(m.Lines) != 2 || len(m.Lines[1].Coords) != 3 {
		t.Fatalf("parsed %+v", m)
	}
	if !strings.HasPrefix(m.WKT(), "MULTILINESTRING ((") {
		t.Fatalf("WKT = %q", m.WKT())
	}
}

func TestWKTMultiPolygon(t *testing.T) {
	g := MustParseWKT("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))")
	m := g.(MultiPolygon)
	if len(m.Polygons) != 2 {
		t.Fatalf("polygons = %d", len(m.Polygons))
	}
	if m.Area() != 2 {
		t.Fatalf("area = %g", m.Area())
	}
	round := MustParseWKT(m.WKT()).(MultiPolygon)
	if round.Area() != 2 {
		t.Fatalf("round trip area = %g", round.Area())
	}
}

func TestWKTGeometryCollection(t *testing.T) {
	g := MustParseWKT("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))")
	gc := g.(GeometryCollection)
	if len(gc.Geometries) != 2 {
		t.Fatalf("members = %d", len(gc.Geometries))
	}
	round := MustParseWKT(gc.WKT()).(GeometryCollection)
	if len(round.Geometries) != 2 {
		t.Fatalf("round trip members = %d", len(round.Geometries))
	}
}

func TestWKTEmpties(t *testing.T) {
	for _, s := range []string{
		"POINT EMPTY", "LINESTRING EMPTY", "POLYGON EMPTY",
		"MULTIPOINT EMPTY", "MULTILINESTRING EMPTY", "MULTIPOLYGON EMPTY",
		"GEOMETRYCOLLECTION EMPTY",
	} {
		g, err := ParseWKT(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if !g.IsEmpty() {
			t.Fatalf("%q not empty", s)
		}
		if got := g.WKT(); got != s {
			t.Fatalf("%q round trips to %q", s, got)
		}
	}
}

func TestWKTErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"CIRCLE (0 0, 1)",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) extra",
		"POLYGON ((0 0, 1 0, 1 1))",          // too few coords
		"POLYGON ((0 0, 1 0, 1 1, 2 2))",     // not closed
		"LINESTRING (0 0, x 1)",              // bad number
		"MULTIPOLYGON (((0 0, 1 0, 0 0 1)))", // malformed
	} {
		if _, err := ParseWKT(s); err == nil {
			t.Errorf("ParseWKT(%q) succeeded, want error", s)
		}
	}
}

func TestWKTScientificNotation(t *testing.T) {
	g := MustParseWKT("POINT (1.5e2 -2.5E-1)")
	p := g.(Point)
	if p.X != 150 || p.Y != -0.25 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestMustParseWKTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseWKT("NOT A GEOMETRY")
}

func TestGMLSerialisation(t *testing.T) {
	p := NewPoint(23.5, 37.9)
	gml := GML(p, SRIDWGS84)
	if !strings.Contains(gml, `srsName="EPSG:4326"`) || !strings.Contains(gml, "<gml:pos>23.5 37.9</gml:pos>") {
		t.Fatalf("GML = %q", gml)
	}
	poly := Rect(0, 0, 1, 1)
	gmlP := GML(poly, SRIDGreekGrid)
	if !strings.Contains(gmlP, "gml:Polygon") || !strings.Contains(gmlP, "gml:exterior") {
		t.Fatalf("GML = %q", gmlP)
	}
	gc := GeometryCollection{Geometries: []Geometry{p, poly}}
	gmlGC := GML(gc, SRIDWGS84)
	if !strings.Contains(gmlGC, "gml:MultiGeometry") {
		t.Fatalf("GML = %q", gmlGC)
	}
	ml := MultiLineString{Lines: []LineString{NewLineString(Point{0, 0}, Point{1, 1})}}
	if !strings.Contains(GML(ml, SRIDWGS84), "gml:MultiCurve") {
		t.Fatal("MultiCurve missing")
	}
	mp := MultiPoint{Points: []Point{{1, 2}}}
	if !strings.Contains(GML(mp, SRIDWGS84), "gml:MultiPoint") {
		t.Fatal("MultiPoint missing")
	}
	mpoly := MultiPolygon{Polygons: []Polygon{poly}}
	if !strings.Contains(GML(mpoly, SRIDWGS84), "gml:MultiSurface") {
		t.Fatal("MultiSurface missing")
	}
}

func TestWKTPropertyRoundTrip(t *testing.T) {
	// Round-trip property over a grid of generated rectangles and lines.
	for i := 0; i < 50; i++ {
		x := float64(i%7) - 3
		y := float64(i%5) - 2
		w := float64(i%3) + 1
		h := float64(i%4) + 1
		p := Rect(x, y, x+w, y+h)
		got := MustParseWKT(p.WKT()).(Polygon)
		if got.Area() != p.Area() {
			t.Fatalf("area changed: %g -> %g", p.Area(), got.Area())
		}
		l := NewLineString(Point{x, y}, Point{x + w, y + h}, Point{x - w, y})
		gl := MustParseWKT(l.WKT()).(LineString)
		if gl.Length() != l.Length() {
			t.Fatalf("length changed: %g -> %g", l.Length(), gl.Length())
		}
	}
}
