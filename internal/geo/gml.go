package geo

import (
	"fmt"
	"strings"
)

// GML serialisation. stRDF admits both WKT and GML literals (the paper's
// stRDF uses OGC WKT and GML for geospatial values); we emit the GML 3.2
// subset matching our geometry types, and parse it back.

// GML serialises g as a GML 3.2 fragment with the given SRID
// (srsName="EPSG:<srid>").
func GML(g Geometry, srid SRID) string {
	var b strings.Builder
	writeGML(&b, g, srid)
	return b.String()
}

func writeGML(b *strings.Builder, g Geometry, srid SRID) {
	srs := fmt.Sprintf(` srsName="EPSG:%d"`, int(srid))
	switch t := g.(type) {
	case Point:
		fmt.Fprintf(b, `<gml:Point%s><gml:pos>%s %s</gml:pos></gml:Point>`, srs, fmtFloat(t.X), fmtFloat(t.Y))
	case MultiPoint:
		fmt.Fprintf(b, `<gml:MultiPoint%s>`, srs)
		for _, p := range t.Points {
			b.WriteString(`<gml:pointMember>`)
			writeGML(b, p, srid)
			b.WriteString(`</gml:pointMember>`)
		}
		b.WriteString(`</gml:MultiPoint>`)
	case LineString:
		fmt.Fprintf(b, `<gml:LineString%s><gml:posList>%s</gml:posList></gml:LineString>`, srs, posList(t.Coords))
	case MultiLineString:
		fmt.Fprintf(b, `<gml:MultiCurve%s>`, srs)
		for _, l := range t.Lines {
			b.WriteString(`<gml:curveMember>`)
			writeGML(b, l, srid)
			b.WriteString(`</gml:curveMember>`)
		}
		b.WriteString(`</gml:MultiCurve>`)
	case Polygon:
		fmt.Fprintf(b, `<gml:Polygon%s>`, srs)
		fmt.Fprintf(b, `<gml:exterior><gml:LinearRing><gml:posList>%s</gml:posList></gml:LinearRing></gml:exterior>`, posList(t.Exterior.Coords))
		for _, h := range t.Holes {
			fmt.Fprintf(b, `<gml:interior><gml:LinearRing><gml:posList>%s</gml:posList></gml:LinearRing></gml:interior>`, posList(h.Coords))
		}
		b.WriteString(`</gml:Polygon>`)
	case MultiPolygon:
		fmt.Fprintf(b, `<gml:MultiSurface%s>`, srs)
		for _, p := range t.Polygons {
			b.WriteString(`<gml:surfaceMember>`)
			writeGML(b, p, srid)
			b.WriteString(`</gml:surfaceMember>`)
		}
		b.WriteString(`</gml:MultiSurface>`)
	case GeometryCollection:
		fmt.Fprintf(b, `<gml:MultiGeometry%s>`, srs)
		for _, m := range t.Geometries {
			b.WriteString(`<gml:geometryMember>`)
			writeGML(b, m, srid)
			b.WriteString(`</gml:geometryMember>`)
		}
		b.WriteString(`</gml:MultiGeometry>`)
	}
}

func posList(cs []Point) string {
	parts := make([]string, 0, 2*len(cs))
	for _, c := range cs {
		parts = append(parts, fmtFloat(c.X), fmtFloat(c.Y))
	}
	return strings.Join(parts, " ")
}
