package geo

import "math"

// Topological predicates in the style of the OGC Simple Features access
// specification. These back the stSPARQL spatial filter functions
// (strdf:intersects, strdf:contains, ...) used in the TELEIOS demo.
//
// The implementation decomposes every geometry into points, segments and
// polygons, and evaluates the predicates from primitive tests (orientation,
// segment intersection, point-in-polygon). It is exact for the simple,
// non-self-intersecting geometries the Earth Observatory produces.

// orientation classifies the turn a->b->c: +1 counter-clockwise,
// -1 clockwise, 0 collinear (within tolerance scaled to coordinate size).
func orientation(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := eps * (scale + 1)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point p lies on segment [a, b].
func onSegment(p, a, b Point) bool {
	return math.Min(a.X, b.X)-eps <= p.X && p.X <= math.Max(a.X, b.X)+eps &&
		math.Min(a.Y, b.Y)-eps <= p.Y && p.Y <= math.Max(a.Y, b.Y)+eps
}

// segmentsIntersect reports whether segments [a,b] and [c,d] share a point.
func segmentsIntersect(a, b, c, d Point) bool {
	o1 := orientation(a, b, c)
	o2 := orientation(a, b, d)
	o3 := orientation(c, d, a)
	o4 := orientation(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	if o1 == 0 && onSegment(c, a, b) {
		return true
	}
	if o2 == 0 && onSegment(d, a, b) {
		return true
	}
	if o3 == 0 && onSegment(a, c, d) {
		return true
	}
	if o4 == 0 && onSegment(b, c, d) {
		return true
	}
	return false
}

// segmentIntersection returns the proper intersection point of segments
// [a,b] and [c,d] when they cross at a single interior point; ok is false
// for parallel, collinear or non-crossing segments.
func segmentIntersection(a, b, c, d Point) (Point, bool) {
	d1 := Point{b.X - a.X, b.Y - a.Y}
	d2 := Point{d.X - c.X, d.Y - c.Y}
	denom := d1.X*d2.Y - d1.Y*d2.X
	if math.Abs(denom) <= eps*(math.Abs(d1.X)+math.Abs(d1.Y)+math.Abs(d2.X)+math.Abs(d2.Y)+1) {
		return Point{}, false
	}
	t := ((c.X-a.X)*d2.Y - (c.Y-a.Y)*d2.X) / denom
	u := ((c.X-a.X)*d1.Y - (c.Y-a.Y)*d1.X) / denom
	if t < -eps || t > 1+eps || u < -eps || u > 1+eps {
		return Point{}, false
	}
	return Point{a.X + t*d1.X, a.Y + t*d1.Y}, true
}

// segmentProperCrossing reports whether [a,b] and [c,d] cross at a single
// point interior to both segments (no endpoint touches, no collinearity).
func segmentProperCrossing(a, b, c, d Point) bool {
	o1 := orientation(a, b, c)
	o2 := orientation(a, b, d)
	o3 := orientation(c, d, a)
	o4 := orientation(c, d, b)
	return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4
}

// pointRingLocation classifies p relative to ring r: +1 inside, 0 on the
// boundary, -1 outside. Ray-casting with explicit boundary handling.
func pointRingLocation(p Point, r Ring) int {
	n := len(r.Coords)
	if n < 4 {
		return -1
	}
	for i := 0; i < n-1; i++ {
		a, b := r.Coords[i], r.Coords[i+1]
		if orientation(a, b, p) == 0 && onSegment(p, a, b) {
			return 0
		}
	}
	inside := false
	for i := 0; i < n-1; i++ {
		a, b := r.Coords[i], r.Coords[i+1]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	if inside {
		return 1
	}
	return -1
}

// pointPolygonLocation classifies p relative to polygon pg: +1 interior,
// 0 boundary, -1 exterior (hole interiors are exterior).
func pointPolygonLocation(p Point, pg Polygon) int {
	loc := pointRingLocation(p, pg.Exterior)
	if loc <= 0 {
		return loc
	}
	for _, h := range pg.Holes {
		switch pointRingLocation(p, h) {
		case 0:
			return 0
		case 1:
			return -1
		}
	}
	return 1
}

// isEnvelopeRect reports whether a polygon's region equals its envelope: a
// closed 4-edge ring, every edge axis-parallel, every vertex on the
// envelope boundary. For such (possibly degenerate) rectangles, region
// intersection coincides with envelope intersection.
func isEnvelopeRect(p Polygon) bool {
	if len(p.Holes) != 0 || len(p.Exterior.Coords) != 5 {
		return false
	}
	cs := p.Exterior.Coords
	if !cs[0].Equal(cs[4]) {
		return false
	}
	env := p.Exterior.Envelope()
	for i := 0; i < 4; i++ {
		c := cs[i]
		if !eqCoord(c.X, env.MinX) && !eqCoord(c.X, env.MaxX) {
			return false
		}
		if !eqCoord(c.Y, env.MinY) && !eqCoord(c.Y, env.MaxY) {
			return false
		}
		if !eqCoord(cs[i].X, cs[i+1].X) && !eqCoord(cs[i].Y, cs[i+1].Y) {
			return false
		}
	}
	return true
}

// polygonRing indexes a polygon's rings: 0 is the exterior, 1.. the holes.
func polygonRing(p Polygon, i int) Ring {
	if i == 0 {
		return p.Exterior
	}
	return p.Holes[i-1]
}

// polygonPairIntersects is Intersects specialised to two polygons whose
// envelopes overlap: any boundary segments cross, or a vertex of one lies
// inside (or on) the other. Allocation-free; the answer is identical to
// the generic path.
func polygonPairIntersects(a, b Polygon) bool {
	na, nb := 1+len(a.Holes), 1+len(b.Holes)
	for i := 0; i < na; i++ {
		ra := polygonRing(a, i).Coords
		for j := 0; j < nb; j++ {
			rb := polygonRing(b, j).Coords
			for s := 1; s < len(ra); s++ {
				for t := 1; t < len(rb); t++ {
					if segmentsIntersect(ra[s-1], ra[s], rb[t-1], rb[t]) {
						return true
					}
				}
			}
		}
	}
	for j := 0; j < nb; j++ {
		for _, v := range polygonRing(b, j).Coords {
			if pointPolygonLocation(v, a) >= 0 {
				return true
			}
		}
	}
	for i := 0; i < na; i++ {
		for _, v := range polygonRing(a, i).Coords {
			if pointPolygonLocation(v, b) >= 0 {
				return true
			}
		}
	}
	return false
}

// segments yields the boundary segments of a geometry.
func segments(g Geometry) [][2]Point {
	var out [][2]Point
	add := func(cs []Point) {
		for i := 1; i < len(cs); i++ {
			out = append(out, [2]Point{cs[i-1], cs[i]})
		}
	}
	switch t := g.(type) {
	case LineString:
		add(t.Coords)
	case MultiLineString:
		for _, l := range t.Lines {
			add(l.Coords)
		}
	case Polygon:
		add(t.Exterior.Coords)
		for _, h := range t.Holes {
			add(h.Coords)
		}
	case MultiPolygon:
		for _, p := range t.Polygons {
			out = append(out, segments(p)...)
		}
	case GeometryCollection:
		for _, m := range t.Geometries {
			out = append(out, segments(m)...)
		}
	}
	return out
}

// points yields the point members of a geometry (point types only).
func points(g Geometry) []Point {
	switch t := g.(type) {
	case Point:
		if t.IsEmpty() {
			return nil
		}
		return []Point{t}
	case MultiPoint:
		return t.Points
	case GeometryCollection:
		var out []Point
		for _, m := range t.Geometries {
			out = append(out, points(m)...)
		}
		return out
	}
	return nil
}

// polygons yields the polygon members of a geometry.
func polygons(g Geometry) []Polygon {
	switch t := g.(type) {
	case Polygon:
		if t.IsEmpty() {
			return nil
		}
		return []Polygon{t}
	case MultiPolygon:
		return t.Polygons
	case GeometryCollection:
		var out []Polygon
		for _, m := range t.Geometries {
			out = append(out, polygons(m)...)
		}
		return out
	}
	return nil
}

// vertices yields every coordinate of a geometry.
func vertices(g Geometry) []Point {
	switch t := g.(type) {
	case Point:
		if t.IsEmpty() {
			return nil
		}
		return []Point{t}
	case MultiPoint:
		return t.Points
	case LineString:
		return t.Coords
	case MultiLineString:
		var out []Point
		for _, l := range t.Lines {
			out = append(out, l.Coords...)
		}
		return out
	case Polygon:
		out := append([]Point(nil), t.Exterior.Coords...)
		for _, h := range t.Holes {
			out = append(out, h.Coords...)
		}
		return out
	case MultiPolygon:
		var out []Point
		for _, p := range t.Polygons {
			out = append(out, vertices(p)...)
		}
		return out
	case GeometryCollection:
		var out []Point
		for _, m := range t.Geometries {
			out = append(out, vertices(m)...)
		}
		return out
	}
	return nil
}

// Intersects reports whether a and b share at least one point.
func Intersects(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !a.Envelope().Intersects(b.Envelope()) {
		return false
	}
	// Polygon vs polygon is the hot shape in pushed-down spatial filters
	// (coverage × query window, once per candidate row); walk the rings in
	// place instead of materialising segment and vertex slices.
	if pa, ok := a.(Polygon); ok {
		if pb, ok := b.(Polygon); ok {
			// Two polygons that each coincide with their own envelope
			// (axis-aligned rectangles — every catalogue footprint and
			// query window) intersect iff their envelopes do, which was
			// just established.
			if isEnvelopeRect(pa) && isEnvelopeRect(pb) {
				return true
			}
			return polygonPairIntersects(pa, pb)
		}
	}
	// Point vs anything.
	for _, p := range points(a) {
		if pointOn(p, b) {
			return true
		}
	}
	for _, p := range points(b) {
		if pointOn(p, a) {
			return true
		}
	}
	// Segment vs segment.
	sa, sb := segments(a), segments(b)
	for _, s1 := range sa {
		for _, s2 := range sb {
			if segmentsIntersect(s1[0], s1[1], s2[0], s2[1]) {
				return true
			}
		}
	}
	// Containment without boundary crossing: any vertex of one inside a
	// polygon of the other.
	for _, pg := range polygons(a) {
		for _, v := range vertices(b) {
			if pointPolygonLocation(v, pg) >= 0 {
				return true
			}
		}
	}
	for _, pg := range polygons(b) {
		for _, v := range vertices(a) {
			if pointPolygonLocation(v, pg) >= 0 {
				return true
			}
		}
	}
	return false
}

// pointOn reports whether p lies on geometry g (interior or boundary).
func pointOn(p Point, g Geometry) bool {
	switch t := g.(type) {
	case Point:
		return p.Equal(t)
	case MultiPoint:
		for _, q := range t.Points {
			if p.Equal(q) {
				return true
			}
		}
	case LineString:
		for i := 1; i < len(t.Coords); i++ {
			a, b := t.Coords[i-1], t.Coords[i]
			if orientation(a, b, p) == 0 && onSegment(p, a, b) {
				return true
			}
		}
	case MultiLineString:
		for _, l := range t.Lines {
			if pointOn(p, l) {
				return true
			}
		}
	case Polygon:
		return pointPolygonLocation(p, t) >= 0
	case MultiPolygon:
		for _, pg := range t.Polygons {
			if pointPolygonLocation(p, pg) >= 0 {
				return true
			}
		}
	case GeometryCollection:
		for _, m := range t.Geometries {
			if pointOn(p, m) {
				return true
			}
		}
	}
	return false
}

// pointInInterior reports whether p lies strictly inside g's interior.
// For 1-dimensional geometries the interior is the curve minus endpoints;
// we approximate it as "on the curve" which suffices for the relations the
// Earth Observatory evaluates.
func pointInInterior(p Point, g Geometry) bool {
	switch t := g.(type) {
	case Polygon:
		return pointPolygonLocation(p, t) == 1
	case MultiPolygon:
		for _, pg := range t.Polygons {
			if pointPolygonLocation(p, pg) == 1 {
				return true
			}
		}
		return false
	case GeometryCollection:
		for _, m := range t.Geometries {
			if pointInInterior(p, m) {
				return true
			}
		}
		return false
	default:
		return pointOn(p, g)
	}
}

// Disjoint reports whether a and b share no point.
func Disjoint(a, b Geometry) bool { return !Intersects(a, b) }

// Within reports whether every point of a lies in b (a inside b).
func Within(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !b.Envelope().Contains(a.Envelope()) {
		return false
	}
	// Every vertex of a must be on/in b.
	for _, v := range vertices(a) {
		if !pointOn(v, b) {
			return false
		}
	}
	// No boundary of a may cross out of b: any proper crossing between a's
	// segments and b's boundary that exits b disqualifies. We check segment
	// midpoints and intersection-split midpoints.
	bPolys := polygons(b)
	if len(bPolys) > 0 {
		for _, s := range segments(a) {
			for _, mid := range sampleSegment(s[0], s[1], segments(b)) {
				if !pointOn(mid, b) {
					return false
				}
			}
		}
		// For polygon-in-polygon: also a's interior representative point.
		for _, pg := range polygons(a) {
			rp := RepresentativePoint(pg)
			if !pointOn(rp, b) {
				return false
			}
		}
	}
	return true
}

// Contains reports whether b lies within a.
func Contains(a, b Geometry) bool { return Within(b, a) }

// sampleSegment splits [a,b] at its intersections with boundary segments
// and returns the midpoint of each piece (including the whole-segment
// midpoint when no split occurs).
func sampleSegment(a, b Point, boundary [][2]Point) []Point {
	ts := []float64{0, 1}
	for _, s := range boundary {
		if p, ok := segmentIntersection(a, b, s[0], s[1]); ok {
			t := projectParam(a, b, p)
			ts = append(ts, t)
		}
	}
	sortFloats(ts)
	var mids []Point
	for i := 1; i < len(ts); i++ {
		t := (ts[i-1] + ts[i]) / 2
		mids = append(mids, Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)})
	}
	return mids
}

func projectParam(a, b, p Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	den := dx*dx + dy*dy
	if den == 0 {
		return 0
	}
	return ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / den
}

func sortFloats(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// Crosses reports whether a and b cross: they intersect, neither contains
// the other, and the intersection's dimension is lower than the maximum of
// their dimensions.
func Crosses(a, b Geometry) bool {
	if !Intersects(a, b) {
		return false
	}
	if Within(a, b) || Within(b, a) {
		return false
	}
	// Line/line: a proper crossing point exists.
	if a.Dimension() == 1 && b.Dimension() == 1 {
		for _, s1 := range segments(a) {
			for _, s2 := range segments(b) {
				if segmentProperCrossing(s1[0], s1[1], s2[0], s2[1]) {
					return true
				}
			}
		}
		return false
	}
	// Line/polygon (either order): the line has points both inside and
	// outside the polygon.
	line, poly := a, b
	if a.Dimension() == 2 && b.Dimension() == 1 {
		line, poly = b, a
	}
	if line.Dimension() == 1 && poly.Dimension() == 2 {
		var inside, outside bool
		for _, s := range segments(line) {
			for _, mid := range sampleSegment(s[0], s[1], segments(poly)) {
				if pointInInterior(mid, poly) {
					inside = true
				} else if !pointOn(mid, poly) {
					outside = true
				}
			}
		}
		return inside && outside
	}
	// Point/higher-dim handled by definition: some points in, some out.
	if a.Dimension() == 0 || b.Dimension() == 0 {
		pts, other := points(a), b
		if b.Dimension() == 0 {
			pts, other = points(b), a
		}
		var in, out bool
		for _, p := range pts {
			if pointOn(p, other) {
				in = true
			} else {
				out = true
			}
		}
		return in && out
	}
	return false
}

// Touches reports whether a and b intersect only at boundary points
// (their interiors are disjoint).
func Touches(a, b Geometry) bool {
	if !Intersects(a, b) {
		return false
	}
	// Interiors must not intersect. Sample: vertices and split midpoints of
	// a inside b's interior, and vice versa.
	if interiorsIntersect(a, b) || interiorsIntersect(b, a) {
		return false
	}
	return true
}

func interiorsIntersect(a, b Geometry) bool {
	bs := segments(b)
	check := func(p Point) bool { return pointInInterior(p, b) && pointInInterior(p, a) }
	for _, v := range vertices(a) {
		if check(v) {
			return true
		}
	}
	for _, s := range segments(a) {
		for _, mid := range sampleSegment(s[0], s[1], bs) {
			if check(mid) {
				return true
			}
		}
	}
	for _, pg := range polygons(a) {
		if check(RepresentativePoint(pg)) {
			return true
		}
		// Two polygons may overlap without either's representative point in
		// the other; sample b's vertices in a as well.
		for _, v := range vertices(b) {
			if pointPolygonLocation(v, pg) == 1 && pointInInterior(v, b) {
				return true
			}
		}
	}
	// Proper segment crossings imply interior intersection for area/area
	// and line/line cases: the boundary of one passes strictly through the
	// other, so points on either side of the crossing are interior to one
	// geometry and the crossing point interior to the other.
	for _, s1 := range segments(a) {
		for _, s2 := range bs {
			if segmentProperCrossing(s1[0], s1[1], s2[0], s2[1]) {
				if a.Dimension() == 2 || b.Dimension() == 2 {
					return true
				}
				if a.Dimension() == 1 && b.Dimension() == 1 {
					return true
				}
			}
		}
	}
	return false
}

func isVertexOf(p Point, g Geometry) bool {
	for _, v := range vertices(g) {
		if p.Equal(v) {
			return true
		}
	}
	return false
}

func isEndpointOf(p Point, g Geometry) bool {
	switch t := g.(type) {
	case LineString:
		if len(t.Coords) == 0 {
			return false
		}
		return p.Equal(t.Coords[0]) || p.Equal(t.Coords[len(t.Coords)-1])
	case MultiLineString:
		for _, l := range t.Lines {
			if isEndpointOf(p, l) {
				return true
			}
		}
	case GeometryCollection:
		for _, m := range t.Geometries {
			if isEndpointOf(p, m) {
				return true
			}
		}
	}
	return false
}

// Overlaps reports whether a and b overlap: same dimension, intersecting
// interiors, and neither contains the other.
func Overlaps(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if a.Dimension() != b.Dimension() {
		return false
	}
	if !Intersects(a, b) || Within(a, b) || Within(b, a) {
		return false
	}
	return interiorsIntersect(a, b) || interiorsIntersect(b, a)
}

// Equals reports topological equality: mutual containment.
func Equals(a, b Geometry) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.IsEmpty() && b.IsEmpty() {
		return true
	}
	return Within(a, b) && Within(b, a)
}

// RepresentativePoint returns a point guaranteed to lie in the polygon's
// interior (for convex and most concave polygons: centroid; otherwise a
// scanline fallback).
func RepresentativePoint(p Polygon) Point {
	c := Centroid(p)
	if pointPolygonLocation(c, p) == 1 {
		return c
	}
	// Scanline through the vertical middle: take the midpoint of the widest
	// interior run.
	env := p.Envelope()
	y := (env.MinY + env.MaxY) / 2
	var xs []float64
	ringsOf := append([]Ring{p.Exterior}, p.Holes...)
	for _, r := range ringsOf {
		for i := 0; i < len(r.Coords)-1; i++ {
			a, b := r.Coords[i], r.Coords[i+1]
			if (a.Y > y) != (b.Y > y) {
				xs = append(xs, a.X+(y-a.Y)/(b.Y-a.Y)*(b.X-a.X))
			}
		}
	}
	sortFloats(xs)
	best, bestW := c, -1.0
	for i := 1; i < len(xs); i += 2 {
		mid := Point{(xs[i-1] + xs[i]) / 2, y}
		if w := xs[i] - xs[i-1]; w > bestW && pointPolygonLocation(mid, p) == 1 {
			best, bestW = mid, w
		}
	}
	return best
}
