package geo

import "testing"

func TestIntersectsPolygons(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	b := Rect(2, 2, 6, 6)
	c := Rect(10, 10, 12, 12)
	if !Intersects(a, b) {
		t.Fatal("overlapping rects should intersect")
	}
	if Intersects(a, c) {
		t.Fatal("disjoint rects should not intersect")
	}
	if !Disjoint(a, c) {
		t.Fatal("Disjoint failed")
	}
	// Nested (no boundary crossing).
	inner := Rect(1, 1, 2, 2)
	if !Intersects(a, inner) {
		t.Fatal("nested rects should intersect")
	}
	// Touching at an edge.
	edge := Rect(4, 0, 8, 4)
	if !Intersects(a, edge) {
		t.Fatal("edge-touching rects should intersect")
	}
}

func TestIntersectsPointGeoms(t *testing.T) {
	poly := Rect(0, 0, 4, 4)
	if !Intersects(NewPoint(2, 2), poly) {
		t.Fatal("interior point")
	}
	if !Intersects(NewPoint(0, 0), poly) {
		t.Fatal("corner point")
	}
	if Intersects(NewPoint(5, 5), poly) {
		t.Fatal("outside point")
	}
	line := NewLineString(Point{0, 0}, Point{4, 4})
	if !Intersects(NewPoint(2, 2), line) {
		t.Fatal("point on line")
	}
	if Intersects(NewPoint(2, 3), line) {
		t.Fatal("point off line")
	}
	mp := MultiPoint{Points: []Point{{9, 9}, {2, 2}}}
	if !Intersects(mp, poly) {
		t.Fatal("multipoint with one member inside")
	}
}

func TestIntersectsLines(t *testing.T) {
	a := NewLineString(Point{0, 0}, Point{4, 4})
	b := NewLineString(Point{0, 4}, Point{4, 0})
	c := NewLineString(Point{5, 0}, Point{9, 4})
	if !Intersects(a, b) {
		t.Fatal("crossing lines")
	}
	if Intersects(a, c) {
		t.Fatal("parallel disjoint lines")
	}
	// Line through polygon without any vertex inside.
	poly := Rect(1, 1, 3, 3)
	span := NewLineString(Point{0, 2}, Point{4, 2})
	if !Intersects(span, poly) {
		t.Fatal("line crossing polygon")
	}
}

func TestWithinContains(t *testing.T) {
	outer := Rect(0, 0, 10, 10)
	inner := Rect(2, 2, 4, 4)
	if !Within(inner, outer) {
		t.Fatal("inner within outer")
	}
	if !Contains(outer, inner) {
		t.Fatal("outer contains inner")
	}
	if Within(outer, inner) {
		t.Fatal("outer not within inner")
	}
	if !Within(NewPoint(5, 5), outer) {
		t.Fatal("point within polygon")
	}
	if Within(NewPoint(11, 5), outer) {
		t.Fatal("outside point not within")
	}
	line := NewLineString(Point{1, 1}, Point{9, 9})
	if !Within(line, outer) {
		t.Fatal("line within polygon")
	}
	crossing := NewLineString(Point{5, 5}, Point{15, 5})
	if Within(crossing, outer) {
		t.Fatal("crossing line not within")
	}
}

func TestWithinWithHole(t *testing.T) {
	donut := NewPolygon(
		NewRing(Point{0, 0}, Point{10, 0}, Point{10, 10}, Point{0, 10}),
		NewRing(Point{4, 4}, Point{6, 4}, Point{6, 6}, Point{4, 6}),
	)
	if Within(NewPoint(5, 5), donut) {
		t.Fatal("point in hole should not be within")
	}
	if !Within(NewPoint(2, 2), donut) {
		t.Fatal("point in annulus should be within")
	}
	inHole := Rect(4.5, 4.5, 5.5, 5.5)
	if Within(inHole, donut) {
		t.Fatal("rect inside hole should not be within")
	}
	if !Intersects(NewPoint(4, 5), donut) {
		t.Fatal("hole boundary belongs to polygon")
	}
}

func TestTouches(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	edge := Rect(4, 0, 8, 4)
	corner := Rect(4, 4, 8, 8)
	overlap := Rect(2, 2, 6, 6)
	if !Touches(a, edge) {
		t.Fatal("edge-adjacent rects touch")
	}
	if !Touches(a, corner) {
		t.Fatal("corner-adjacent rects touch")
	}
	if Touches(a, overlap) {
		t.Fatal("overlapping rects do not touch")
	}
	if Touches(a, Rect(9, 9, 10, 10)) {
		t.Fatal("disjoint rects do not touch")
	}
	// Point on boundary touches.
	if !Touches(NewPoint(4, 2), a) {
		t.Fatal("boundary point touches polygon")
	}
	if Touches(NewPoint(2, 2), a) {
		t.Fatal("interior point does not touch")
	}
	// Line ending on boundary.
	l := NewLineString(Point{4, 2}, Point{9, 2})
	if !Touches(l, a) {
		t.Fatal("line ending on boundary touches")
	}
}

func TestCrosses(t *testing.T) {
	poly := Rect(0, 0, 4, 4)
	through := NewLineString(Point{-1, 2}, Point{5, 2})
	inside := NewLineString(Point{1, 1}, Point{3, 3})
	if !Crosses(through, poly) {
		t.Fatal("line through polygon crosses")
	}
	if Crosses(inside, poly) {
		t.Fatal("contained line does not cross")
	}
	a := NewLineString(Point{0, 0}, Point{4, 4})
	b := NewLineString(Point{0, 4}, Point{4, 0})
	if !Crosses(a, b) {
		t.Fatal("crossing lines")
	}
	mp := MultiPoint{Points: []Point{{2, 2}, {9, 9}}}
	if !Crosses(mp, poly) {
		t.Fatal("multipoint half-in crosses polygon")
	}
}

func TestOverlaps(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	b := Rect(2, 2, 6, 6)
	if !Overlaps(a, b) {
		t.Fatal("partially overlapping rects overlap")
	}
	if Overlaps(a, Rect(1, 1, 2, 2)) {
		t.Fatal("containment is not overlap")
	}
	if Overlaps(a, Rect(4, 0, 8, 4)) {
		t.Fatal("touching is not overlap")
	}
	line := NewLineString(Point{0, 2}, Point{6, 2})
	if Overlaps(a, line) {
		t.Fatal("different dimensions never overlap")
	}
}

func TestEqualsPredicate(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	// Same region, different vertex order/start.
	b := NewPolygon(NewRing(Point{4, 0}, Point{4, 4}, Point{0, 4}, Point{0, 0}))
	if !Equals(a, b) {
		t.Fatal("same rectangles should be equal")
	}
	if Equals(a, Rect(0, 0, 4, 5)) {
		t.Fatal("different rectangles not equal")
	}
	if !Equals(Polygon{}, Polygon{}) {
		t.Fatal("two empties are equal")
	}
}

func TestPointRingLocation(t *testing.T) {
	r := NewRing(Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4})
	if pointRingLocation(Point{2, 2}, r) != 1 {
		t.Fatal("interior")
	}
	if pointRingLocation(Point{0, 2}, r) != 0 {
		t.Fatal("boundary edge")
	}
	if pointRingLocation(Point{4, 4}, r) != 0 {
		t.Fatal("boundary vertex")
	}
	if pointRingLocation(Point{5, 2}, r) != -1 {
		t.Fatal("exterior")
	}
}

func TestPointInConcavePolygon(t *testing.T) {
	// U-shaped polygon.
	u := NewPolygon(NewRing(
		Point{0, 0}, Point{6, 0}, Point{6, 6}, Point{4, 6},
		Point{4, 2}, Point{2, 2}, Point{2, 6}, Point{0, 6},
	))
	if pointPolygonLocation(Point{3, 4}, u) != -1 {
		t.Fatal("notch point should be outside")
	}
	if pointPolygonLocation(Point{1, 1}, u) != 1 {
		t.Fatal("left leg inside")
	}
	if pointPolygonLocation(Point{5, 5}, u) != 1 {
		t.Fatal("right leg inside")
	}
	rp := RepresentativePoint(u)
	if pointPolygonLocation(rp, u) != 1 {
		t.Fatalf("representative point %+v not interior", rp)
	}
}

func TestRepresentativePointDonut(t *testing.T) {
	donut := NewPolygon(
		NewRing(Point{0, 0}, Point{10, 0}, Point{10, 10}, Point{0, 10}),
		NewRing(Point{3, 3}, Point{7, 3}, Point{7, 7}, Point{3, 7}),
	)
	rp := RepresentativePoint(donut)
	if pointPolygonLocation(rp, donut) != 1 {
		t.Fatalf("representative point %+v not in annulus", rp)
	}
}

func TestSegmentsIntersectEdgeCases(t *testing.T) {
	// Collinear overlapping.
	if !segmentsIntersect(Point{0, 0}, Point{4, 0}, Point{2, 0}, Point{6, 0}) {
		t.Fatal("collinear overlap")
	}
	// Collinear disjoint.
	if segmentsIntersect(Point{0, 0}, Point{1, 0}, Point{2, 0}, Point{3, 0}) {
		t.Fatal("collinear disjoint")
	}
	// T-junction.
	if !segmentsIntersect(Point{0, 0}, Point{4, 0}, Point{2, -2}, Point{2, 0}) {
		t.Fatal("T junction")
	}
	// Shared endpoint.
	if !segmentsIntersect(Point{0, 0}, Point{1, 1}, Point{1, 1}, Point{2, 0}) {
		t.Fatal("shared endpoint")
	}
}

func TestPredicatesEmptyAndNil(t *testing.T) {
	if Intersects(nil, Rect(0, 0, 1, 1)) {
		t.Fatal("nil never intersects")
	}
	if Intersects(Polygon{}, Rect(0, 0, 1, 1)) {
		t.Fatal("empty never intersects")
	}
	if Within(Polygon{}, Rect(0, 0, 1, 1)) {
		t.Fatal("empty not within")
	}
	if !Equals(nil, nil) {
		t.Fatal("nil equals nil")
	}
}

func TestIntersectsSymmetryProperty(t *testing.T) {
	geoms := []Geometry{
		Rect(0, 0, 4, 4),
		Rect(2, 2, 6, 6),
		Rect(10, 10, 11, 11),
		NewLineString(Point{-1, 2}, Point{5, 2}),
		NewPoint(2, 2),
		NewPoint(20, 20),
		MultiPoint{Points: []Point{{1, 1}, {3, 9}}},
	}
	for i, a := range geoms {
		for j, b := range geoms {
			if Intersects(a, b) != Intersects(b, a) {
				t.Errorf("Intersects not symmetric for %d,%d", i, j)
			}
			if Touches(a, b) != Touches(b, a) {
				t.Errorf("Touches not symmetric for %d,%d", i, j)
			}
		}
	}
}

func TestWithinTransitivityProperty(t *testing.T) {
	a := Rect(3, 3, 4, 4)
	b := Rect(2, 2, 5, 5)
	c := Rect(0, 0, 10, 10)
	if !Within(a, b) || !Within(b, c) {
		t.Fatal("setup")
	}
	if !Within(a, c) {
		t.Fatal("Within should be transitive")
	}
}
