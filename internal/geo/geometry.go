// Package geo implements the computational-geometry kernel used throughout
// the TELEIOS reproduction: OGC Simple Features geometry types, WKT and GML
// (de)serialisation, topological predicates in the style of DE-9IM, polygon
// clipping, metric operations and coordinate reference system support.
//
// The package is self-contained (stdlib only) and deterministic; it is the
// substrate below the stRDF spatial literals (internal/strdf), the R-tree
// (internal/rtree) and the NOA hotspot products (internal/noa).
package geo

import (
	"fmt"
	"math"
)

// GeometryType enumerates the OGC Simple Features types supported here.
type GeometryType int

// Supported geometry types.
const (
	TypePoint GeometryType = iota + 1
	TypeLineString
	TypePolygon
	TypeMultiPoint
	TypeMultiLineString
	TypeMultiPolygon
	TypeGeometryCollection
)

// String returns the canonical OGC name of the type (as used in WKT).
func (t GeometryType) String() string {
	switch t {
	case TypePoint:
		return "POINT"
	case TypeLineString:
		return "LINESTRING"
	case TypePolygon:
		return "POLYGON"
	case TypeMultiPoint:
		return "MULTIPOINT"
	case TypeMultiLineString:
		return "MULTILINESTRING"
	case TypeMultiPolygon:
		return "MULTIPOLYGON"
	case TypeGeometryCollection:
		return "GEOMETRYCOLLECTION"
	default:
		return fmt.Sprintf("GEOMETRYTYPE(%d)", int(t))
	}
}

// Geometry is the interface implemented by every geometry value.
//
// All geometries are immutable by convention: operations return new values
// and never mutate their receivers. Coordinates are planar; callers that
// hold geodetic (lon/lat) data use the CRS helpers for metric results.
type Geometry interface {
	// Type reports the geometry type tag.
	Type() GeometryType
	// Envelope reports the minimum bounding rectangle.
	Envelope() Envelope
	// IsEmpty reports whether the geometry has no coordinates.
	IsEmpty() bool
	// Dimension reports the topological dimension: 0 for points,
	// 1 for curves, 2 for surfaces; collections report the maximum.
	Dimension() int
	// WKT serialises the geometry as OGC Well-Known Text.
	WKT() string
}

// Point is a 0-dimensional geometry: a single coordinate pair.
type Point struct {
	X, Y float64
}

// NewPoint returns the point (x, y).
func NewPoint(x, y float64) Point { return Point{X: x, Y: y} }

// Type implements Geometry.
func (p Point) Type() GeometryType { return TypePoint }

// Envelope implements Geometry.
func (p Point) Envelope() Envelope { return Envelope{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y} }

// IsEmpty implements Geometry. A point constructed from NaN coordinates is
// the canonical empty point (POINT EMPTY parses to it).
func (p Point) IsEmpty() bool { return math.IsNaN(p.X) || math.IsNaN(p.Y) }

// Dimension implements Geometry.
func (p Point) Dimension() int { return 0 }

// Equal reports coordinate equality within eps.
func (p Point) Equal(q Point) bool { return eqCoord(p.X, q.X) && eqCoord(p.Y, q.Y) }

// MultiPoint is a collection of points.
type MultiPoint struct {
	Points []Point
}

// Type implements Geometry.
func (m MultiPoint) Type() GeometryType { return TypeMultiPoint }

// Envelope implements Geometry.
func (m MultiPoint) Envelope() Envelope {
	env := EmptyEnvelope()
	for _, p := range m.Points {
		env = env.ExtendPoint(p.X, p.Y)
	}
	return env
}

// IsEmpty implements Geometry.
func (m MultiPoint) IsEmpty() bool { return len(m.Points) == 0 }

// Dimension implements Geometry.
func (m MultiPoint) Dimension() int { return 0 }

// LineString is a 1-dimensional geometry: a polyline of 2+ coordinates.
type LineString struct {
	Coords []Point
}

// NewLineString returns a line string over a copy of coords.
func NewLineString(coords ...Point) LineString {
	c := make([]Point, len(coords))
	copy(c, coords)
	return LineString{Coords: c}
}

// Type implements Geometry.
func (l LineString) Type() GeometryType { return TypeLineString }

// Envelope implements Geometry.
func (l LineString) Envelope() Envelope {
	env := EmptyEnvelope()
	for _, p := range l.Coords {
		env = env.ExtendPoint(p.X, p.Y)
	}
	return env
}

// IsEmpty implements Geometry.
func (l LineString) IsEmpty() bool { return len(l.Coords) == 0 }

// Dimension implements Geometry.
func (l LineString) Dimension() int { return 1 }

// IsClosed reports whether the first and last coordinates coincide.
func (l LineString) IsClosed() bool {
	if len(l.Coords) < 3 {
		return false
	}
	return l.Coords[0].Equal(l.Coords[len(l.Coords)-1])
}

// Length reports the planar length of the polyline.
func (l LineString) Length() float64 {
	var sum float64
	for i := 1; i < len(l.Coords); i++ {
		sum += dist(l.Coords[i-1], l.Coords[i])
	}
	return sum
}

// Reverse returns the line string with coordinate order reversed.
func (l LineString) Reverse() LineString {
	c := make([]Point, len(l.Coords))
	for i, p := range l.Coords {
		c[len(l.Coords)-1-i] = p
	}
	return LineString{Coords: c}
}

// MultiLineString is a collection of line strings.
type MultiLineString struct {
	Lines []LineString
}

// Type implements Geometry.
func (m MultiLineString) Type() GeometryType { return TypeMultiLineString }

// Envelope implements Geometry.
func (m MultiLineString) Envelope() Envelope {
	env := EmptyEnvelope()
	for _, l := range m.Lines {
		env = env.Extend(l.Envelope())
	}
	return env
}

// IsEmpty implements Geometry.
func (m MultiLineString) IsEmpty() bool { return len(m.Lines) == 0 }

// Dimension implements Geometry.
func (m MultiLineString) Dimension() int { return 1 }

// Length reports the total planar length of the member lines.
func (m MultiLineString) Length() float64 {
	var sum float64
	for _, l := range m.Lines {
		sum += l.Length()
	}
	return sum
}

// Ring is a closed LineString used as a polygon boundary. The closing
// coordinate is stored explicitly (first == last), matching WKT conventions.
type Ring struct {
	Coords []Point
}

// NewRing builds a ring from coords, closing it if necessary.
func NewRing(coords ...Point) Ring {
	c := make([]Point, len(coords))
	copy(c, coords)
	if len(c) > 0 && !c[0].Equal(c[len(c)-1]) {
		c = append(c, c[0])
	}
	return Ring{Coords: c}
}

// SignedArea reports the signed area of the ring (positive when
// counter-clockwise).
func (r Ring) SignedArea() float64 {
	var sum float64
	n := len(r.Coords)
	if n < 4 {
		return 0
	}
	for i := 0; i < n-1; i++ {
		a, b := r.Coords[i], r.Coords[i+1]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum / 2
}

// Area reports the absolute area of the ring.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports whether the ring winds counter-clockwise.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Reverse returns the ring with opposite winding.
func (r Ring) Reverse() Ring {
	c := make([]Point, len(r.Coords))
	for i, p := range r.Coords {
		c[len(r.Coords)-1-i] = p
	}
	return Ring{Coords: c}
}

// Envelope reports the ring's bounding box.
func (r Ring) Envelope() Envelope {
	env := EmptyEnvelope()
	for _, p := range r.Coords {
		env = env.ExtendPoint(p.X, p.Y)
	}
	return env
}

// Polygon is a 2-dimensional geometry: an exterior ring plus zero or more
// interior rings (holes). By convention the exterior ring winds CCW and the
// holes CW; constructors normalise the winding.
type Polygon struct {
	Exterior Ring
	Holes    []Ring
}

// NewPolygon builds a polygon, normalising ring winding (exterior CCW,
// holes CW).
func NewPolygon(exterior Ring, holes ...Ring) Polygon {
	if !exterior.IsCCW() && exterior.SignedArea() != 0 {
		exterior = exterior.Reverse()
	}
	hs := make([]Ring, len(holes))
	for i, h := range holes {
		if h.IsCCW() {
			h = h.Reverse()
		}
		hs[i] = h
	}
	return Polygon{Exterior: exterior, Holes: hs}
}

// Rect returns the axis-aligned rectangle polygon for an envelope.
func Rect(minX, minY, maxX, maxY float64) Polygon {
	return NewPolygon(NewRing(
		Point{minX, minY}, Point{maxX, minY}, Point{maxX, maxY}, Point{minX, maxY},
	))
}

// Type implements Geometry.
func (p Polygon) Type() GeometryType { return TypePolygon }

// Envelope implements Geometry.
func (p Polygon) Envelope() Envelope { return p.Exterior.Envelope() }

// IsEmpty implements Geometry.
func (p Polygon) IsEmpty() bool { return len(p.Exterior.Coords) == 0 }

// Dimension implements Geometry.
func (p Polygon) Dimension() int { return 2 }

// Area reports the polygon area (exterior minus holes).
func (p Polygon) Area() float64 {
	a := p.Exterior.Area()
	for _, h := range p.Holes {
		a -= h.Area()
	}
	return a
}

// Perimeter reports the total boundary length, holes included.
func (p Polygon) Perimeter() float64 {
	sum := LineString{Coords: p.Exterior.Coords}.Length()
	for _, h := range p.Holes {
		sum += LineString{Coords: h.Coords}.Length()
	}
	return sum
}

// MultiPolygon is a collection of polygons.
type MultiPolygon struct {
	Polygons []Polygon
}

// Type implements Geometry.
func (m MultiPolygon) Type() GeometryType { return TypeMultiPolygon }

// Envelope implements Geometry.
func (m MultiPolygon) Envelope() Envelope {
	env := EmptyEnvelope()
	for _, p := range m.Polygons {
		env = env.Extend(p.Envelope())
	}
	return env
}

// IsEmpty implements Geometry.
func (m MultiPolygon) IsEmpty() bool { return len(m.Polygons) == 0 }

// Dimension implements Geometry.
func (m MultiPolygon) Dimension() int { return 2 }

// Area reports the summed area of the member polygons.
func (m MultiPolygon) Area() float64 {
	var sum float64
	for _, p := range m.Polygons {
		sum += p.Area()
	}
	return sum
}

// GeometryCollection is a heterogeneous collection of geometries.
type GeometryCollection struct {
	Geometries []Geometry
}

// Type implements Geometry.
func (g GeometryCollection) Type() GeometryType { return TypeGeometryCollection }

// Envelope implements Geometry.
func (g GeometryCollection) Envelope() Envelope {
	env := EmptyEnvelope()
	for _, m := range g.Geometries {
		env = env.Extend(m.Envelope())
	}
	return env
}

// IsEmpty implements Geometry.
func (g GeometryCollection) IsEmpty() bool { return len(g.Geometries) == 0 }

// Dimension implements Geometry.
func (g GeometryCollection) Dimension() int {
	d := 0
	for _, m := range g.Geometries {
		if md := m.Dimension(); md > d {
			d = md
		}
	}
	return d
}

// Envelope is an axis-aligned minimum bounding rectangle. The zero value is
// not meaningful; use EmptyEnvelope for an identity under Extend.
type Envelope struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyEnvelope returns the identity envelope (inverted infinities) such
// that Extend of anything yields that thing.
func EmptyEnvelope() Envelope {
	return Envelope{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether the envelope contains no points.
func (e Envelope) IsEmpty() bool { return e.MinX > e.MaxX || e.MinY > e.MaxY }

// Width reports MaxX-MinX (0 for empty envelopes).
func (e Envelope) Width() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxX - e.MinX
}

// Height reports MaxY-MinY (0 for empty envelopes).
func (e Envelope) Height() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxY - e.MinY
}

// Area reports the envelope area.
func (e Envelope) Area() float64 { return e.Width() * e.Height() }

// ExtendPoint returns the envelope grown to include (x, y).
func (e Envelope) ExtendPoint(x, y float64) Envelope {
	return Envelope{
		MinX: math.Min(e.MinX, x), MinY: math.Min(e.MinY, y),
		MaxX: math.Max(e.MaxX, x), MaxY: math.Max(e.MaxY, y),
	}
}

// Extend returns the union of two envelopes.
func (e Envelope) Extend(o Envelope) Envelope {
	if o.IsEmpty() {
		return e
	}
	if e.IsEmpty() {
		return o
	}
	return Envelope{
		MinX: math.Min(e.MinX, o.MinX), MinY: math.Min(e.MinY, o.MinY),
		MaxX: math.Max(e.MaxX, o.MaxX), MaxY: math.Max(e.MaxY, o.MaxY),
	}
}

// Intersects reports whether two envelopes share any point.
func (e Envelope) Intersects(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MaxX && o.MinX <= e.MaxX && e.MinY <= o.MaxY && o.MinY <= e.MaxY
}

// Contains reports whether o lies fully inside e (boundaries included).
func (e Envelope) Contains(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MinX && o.MaxX <= e.MaxX && e.MinY <= o.MinY && o.MaxY <= e.MaxY
}

// ContainsPoint reports whether (x, y) lies inside e (boundaries included).
func (e Envelope) ContainsPoint(x, y float64) bool {
	return !e.IsEmpty() && e.MinX <= x && x <= e.MaxX && e.MinY <= y && y <= e.MaxY
}

// Intersection returns the overlapping region of two envelopes
// (possibly empty).
func (e Envelope) Intersection(o Envelope) Envelope {
	r := Envelope{
		MinX: math.Max(e.MinX, o.MinX), MinY: math.Max(e.MinY, o.MinY),
		MaxX: math.Min(e.MaxX, o.MaxX), MaxY: math.Min(e.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return EmptyEnvelope()
	}
	return r
}

// Expand returns the envelope grown by d on every side.
func (e Envelope) Expand(d float64) Envelope {
	if e.IsEmpty() {
		return e
	}
	return Envelope{MinX: e.MinX - d, MinY: e.MinY - d, MaxX: e.MaxX + d, MaxY: e.MaxY + d}
}

// Center reports the envelope centroid.
func (e Envelope) Center() Point { return Point{(e.MinX + e.MaxX) / 2, (e.MinY + e.MaxY) / 2} }

// ToPolygon converts the envelope to a rectangle polygon.
func (e Envelope) ToPolygon() Polygon { return Rect(e.MinX, e.MinY, e.MaxX, e.MaxY) }

// eps is the coordinate comparison tolerance used across the package.
// Satellite pixel footprints in the demo are O(1e-2) degrees, so 1e-9 is
// far below any meaningful coordinate difference yet above float noise.
const eps = 1e-9

func eqCoord(a, b float64) bool { return math.Abs(a-b) <= eps }

func dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }
