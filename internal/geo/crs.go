package geo

import (
	"fmt"
	"math"
)

// Coordinate reference system support. stRDF spatial literals carry an
// EPSG SRID; the Earth Observatory works in WGS84 (EPSG:4326) and projects
// into Web Mercator (EPSG:3857) or the Greek Grid (EPSG:2100, approximated
// by a transverse-Mercator-like projection) for metric computations.

// SRID identifies a coordinate reference system by its EPSG code.
type SRID int

// Supported reference systems.
const (
	// SRIDWGS84 is geodetic longitude/latitude in degrees (EPSG:4326),
	// the default CRS of stRDF literals.
	SRIDWGS84 SRID = 4326
	// SRIDWebMercator is spherical Mercator in metres (EPSG:3857).
	SRIDWebMercator SRID = 3857
	// SRIDGreekGrid approximates the Greek Grid (EPSG:2100) in metres;
	// the NOA products of the demo are georeferenced to it.
	SRIDGreekGrid SRID = 2100
	// SRIDCRS84 is the OGC urn for WGS84 with lon/lat axis order; treated
	// as an alias of EPSG:4326 here.
	SRIDCRS84 SRID = 84
)

const (
	earthRadiusM = 6378137.0
	deg2rad      = math.Pi / 180
	rad2deg      = 180 / math.Pi
	// Greek Grid central meridian and false easting (GGRS87 / TM87).
	ggCentralMeridian = 24.0
	ggFalseEasting    = 500000.0
	ggScale           = 0.9996
)

// KnownSRID reports whether this package can transform to/from s.
func KnownSRID(s SRID) bool {
	switch s {
	case SRIDWGS84, SRIDWebMercator, SRIDGreekGrid, SRIDCRS84:
		return true
	}
	return false
}

// Transform reprojects g from one CRS to another. Unknown SRIDs yield an
// error; identical SRIDs return g unchanged.
func Transform(g Geometry, from, to SRID) (Geometry, error) {
	if from == SRIDCRS84 {
		from = SRIDWGS84
	}
	if to == SRIDCRS84 {
		to = SRIDWGS84
	}
	if from == to {
		return g, nil
	}
	if !KnownSRID(from) {
		return nil, fmt.Errorf("geo: unknown source SRID %d", from)
	}
	if !KnownSRID(to) {
		return nil, fmt.Errorf("geo: unknown target SRID %d", to)
	}
	fwd := func(p Point) Point {
		ll := toWGS84(p, from)
		return fromWGS84(ll, to)
	}
	return mapCoords(g, fwd), nil
}

func toWGS84(p Point, from SRID) Point {
	switch from {
	case SRIDWGS84:
		return p
	case SRIDWebMercator:
		lon := p.X / earthRadiusM * rad2deg
		lat := (2*math.Atan(math.Exp(p.Y/earthRadiusM)) - math.Pi/2) * rad2deg
		return Point{lon, lat}
	case SRIDGreekGrid:
		// Inverse of the simplified transverse Mercator below.
		lon := (p.X-ggFalseEasting)/(ggScale*earthRadiusM*deg2rad*kGreekLat) + ggCentralMeridian
		lat := p.Y / (ggScale * earthRadiusM * deg2rad)
		return Point{lon, lat}
	}
	return p
}

// kGreekLat is cos(38 deg): the demo's products cluster around lat 38 N, so
// a single-parallel equirectangular TM approximation keeps distances within
// ~1% over Greece — sufficient for shape-level reproduction.
var kGreekLat = math.Cos(38 * deg2rad)

func fromWGS84(p Point, to SRID) Point {
	switch to {
	case SRIDWGS84:
		return p
	case SRIDWebMercator:
		x := p.X * deg2rad * earthRadiusM
		lat := math.Max(-89.9, math.Min(89.9, p.Y))
		y := earthRadiusM * math.Log(math.Tan(math.Pi/4+lat*deg2rad/2))
		return Point{x, y}
	case SRIDGreekGrid:
		x := ggFalseEasting + ggScale*earthRadiusM*deg2rad*kGreekLat*(p.X-ggCentralMeridian)
		y := ggScale * earthRadiusM * deg2rad * p.Y
		return Point{x, y}
	}
	return p
}

// mapCoords applies f to every coordinate of g, returning a new geometry.
func mapCoords(g Geometry, f func(Point) Point) Geometry {
	mapPts := func(cs []Point) []Point {
		out := make([]Point, len(cs))
		for i, p := range cs {
			out[i] = f(p)
		}
		return out
	}
	switch t := g.(type) {
	case Point:
		if t.IsEmpty() {
			return t
		}
		return f(t)
	case MultiPoint:
		return MultiPoint{Points: mapPts(t.Points)}
	case LineString:
		return LineString{Coords: mapPts(t.Coords)}
	case MultiLineString:
		out := make([]LineString, len(t.Lines))
		for i, l := range t.Lines {
			out[i] = LineString{Coords: mapPts(l.Coords)}
		}
		return MultiLineString{Lines: out}
	case Polygon:
		out := Polygon{Exterior: Ring{Coords: mapPts(t.Exterior.Coords)}}
		for _, h := range t.Holes {
			out.Holes = append(out.Holes, Ring{Coords: mapPts(h.Coords)})
		}
		return out
	case MultiPolygon:
		out := make([]Polygon, len(t.Polygons))
		for i, p := range t.Polygons {
			out[i] = mapCoords(p, f).(Polygon)
		}
		return MultiPolygon{Polygons: out}
	case GeometryCollection:
		out := make([]Geometry, len(t.Geometries))
		for i, m := range t.Geometries {
			out[i] = mapCoords(m, f)
		}
		return GeometryCollection{Geometries: out}
	}
	return g
}

// HaversineMeters reports the great-circle distance in metres between two
// WGS84 lon/lat points.
func HaversineMeters(a, b Point) float64 {
	la1, la2 := a.Y*deg2rad, b.Y*deg2rad
	dLat := (b.Y - a.Y) * deg2rad
	dLon := (b.X - a.X) * deg2rad
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusM * math.Asin(math.Min(1, math.Sqrt(h)))
}

// GeodesicDistanceMeters reports the approximate minimum distance in metres
// between two WGS84 geometries, computed by projecting both to a local
// equirectangular plane centred between them. Exact when they intersect (0).
func GeodesicDistanceMeters(a, b Geometry) float64 {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	// Point-vs-simple-geometry is the dominant shape in stSPARQL distance
	// filters (site point × hotspot polygon, evaluated once per join row);
	// walk the coordinates directly instead of materialising segment and
	// vertex slices.
	if p, ok := a.(Point); ok {
		if d, handled := geodesicPointFast(p, b); handled {
			return d
		}
	} else if p, ok := b.(Point); ok {
		if d, handled := geodesicPointFast(p, a); handled {
			return d
		}
	}
	if Intersects(a, b) {
		return 0
	}
	center := a.Envelope().Extend(b.Envelope()).Center()
	k := math.Cos(center.Y * deg2rad)
	proj := func(p Point) Point {
		return Point{
			X: earthRadiusM * deg2rad * k * (p.X - center.X),
			Y: earthRadiusM * deg2rad * (p.Y - center.Y),
		}
	}
	return Distance(mapCoords(a, proj), mapCoords(b, proj))
}

// geodesicPointFast computes GeodesicDistanceMeters for a point against a
// Point, LineString, Polygon or MultiPolygon without allocating: the same
// envelope check, on-boundary/containment test, local projection and
// point-segment minimisation as the general path, applied to the
// coordinate slices in place.
func geodesicPointFast(p Point, g Geometry) (float64, bool) {
	switch g.(type) {
	case Point, LineString, Polygon, MultiPolygon:
	default:
		return 0, false
	}
	if p.Envelope().Intersects(g.Envelope()) && pointOn(p, g) {
		return 0, true
	}
	center := p.Envelope().Extend(g.Envelope()).Center()
	k := math.Cos(center.Y * deg2rad)
	proj := func(q Point) Point {
		return Point{
			X: earthRadiusM * deg2rad * k * (q.X - center.X),
			Y: earthRadiusM * deg2rad * (q.Y - center.Y),
		}
	}
	pp := proj(p)
	min := math.Inf(1)
	seg := func(cs []Point) {
		for i := 1; i < len(cs); i++ {
			if d := pointSegmentDistance(pp, proj(cs[i-1]), proj(cs[i])); d < min {
				min = d
			}
		}
		if len(cs) == 1 { // degenerate ring/line: vertex distance
			if d := dist(pp, proj(cs[0])); d < min {
				min = d
			}
		}
	}
	switch t := g.(type) {
	case Point:
		return dist(pp, proj(t)), true
	case LineString:
		seg(t.Coords)
	case Polygon:
		seg(t.Exterior.Coords)
		for _, h := range t.Holes {
			seg(h.Coords)
		}
	case MultiPolygon:
		for _, pg := range t.Polygons {
			seg(pg.Exterior.Coords)
			for _, h := range pg.Holes {
				seg(h.Coords)
			}
		}
	}
	return min, true
}

// BufferMeters buffers a WGS84 geometry by a distance expressed in metres,
// by projecting to a local plane, buffering, and projecting back.
func BufferMeters(g Geometry, meters float64, quadrantSegments int) Geometry {
	if g == nil || g.IsEmpty() {
		return Polygon{}
	}
	center := g.Envelope().Center()
	k := math.Cos(center.Y * deg2rad)
	if k < 1e-6 {
		k = 1e-6
	}
	proj := func(p Point) Point {
		return Point{
			X: earthRadiusM * deg2rad * k * (p.X - center.X),
			Y: earthRadiusM * deg2rad * (p.Y - center.Y),
		}
	}
	unproj := func(p Point) Point {
		return Point{
			X: center.X + p.X/(earthRadiusM*deg2rad*k),
			Y: center.Y + p.Y/(earthRadiusM*deg2rad),
		}
	}
	buffered := Buffer(mapCoords(g, proj), meters, quadrantSegments)
	return mapCoords(buffered, unproj)
}

// AreaSquareMeters reports the approximate area in square metres of a WGS84
// polygonal geometry via local equirectangular projection.
func AreaSquareMeters(g Geometry) float64 {
	if g == nil || g.IsEmpty() {
		return 0
	}
	center := g.Envelope().Center()
	k := math.Cos(center.Y * deg2rad)
	proj := func(p Point) Point {
		return Point{
			X: earthRadiusM * deg2rad * k * (p.X - center.X),
			Y: earthRadiusM * deg2rad * (p.Y - center.Y),
		}
	}
	return Area(mapCoords(g, proj))
}
