package geo

import (
	"math"
	"testing"
)

func TestIntersectRects(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	b := Rect(2, 2, 6, 6)
	got, err := IntersectPolygons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("pieces = %d", len(got))
	}
	if !almostEq(got[0].Area(), 4, 1e-9) {
		t.Fatalf("area = %g, want 4", got[0].Area())
	}
	env := got[0].Envelope()
	if !almostEq(env.MinX, 2, 1e-9) || !almostEq(env.MaxX, 4, 1e-9) {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	got, err := IntersectPolygons(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("pieces = %d, want 0", len(got))
	}
}

func TestIntersectNested(t *testing.T) {
	outer := Rect(0, 0, 10, 10)
	inner := Rect(2, 2, 4, 4)
	got, err := IntersectPolygons(outer, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !almostEq(got[0].Area(), 4, 1e-9) {
		t.Fatalf("nested intersection = %+v", got)
	}
	// Reverse argument order.
	got, err = IntersectPolygons(inner, outer)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !almostEq(got[0].Area(), 4, 1e-9) {
		t.Fatalf("nested intersection reversed = %+v", got)
	}
}

func TestUnionRects(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	b := Rect(2, 2, 6, 6)
	got, err := UnionPolygons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("pieces = %d", len(got))
	}
	// |A| + |B| - |A and B| = 16 + 16 - 4 = 28.
	if !almostEq(got[0].Area(), 28, 1e-9) {
		t.Fatalf("area = %g, want 28", got[0].Area())
	}
}

func TestUnionDisjoint(t *testing.T) {
	got, err := UnionPolygons(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("pieces = %d, want 2", len(got))
	}
}

func TestDifferenceRects(t *testing.T) {
	a := Rect(0, 0, 4, 4)
	b := Rect(2, 2, 6, 6)
	got, err := DifferencePolygons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for _, p := range got {
		area += p.Area()
	}
	if !almostEq(area, 12, 1e-9) {
		t.Fatalf("difference area = %g, want 12", area)
	}
	// The removed corner is gone.
	for _, p := range got {
		if pointPolygonLocation(Point{3, 3}, p) == 1 {
			t.Fatal("removed region still present")
		}
	}
}

func TestDifferenceNestedMakesHole(t *testing.T) {
	outer := Rect(0, 0, 10, 10)
	inner := Rect(4, 4, 6, 6)
	got, err := DifferencePolygons(outer, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("pieces = %d", len(got))
	}
	if !almostEq(got[0].Area(), 96, 1e-9) {
		t.Fatalf("area = %g, want 96", got[0].Area())
	}
	if len(got[0].Holes) != 1 {
		t.Fatalf("holes = %d, want 1", len(got[0].Holes))
	}
	if pointPolygonLocation(Point{5, 5}, got[0]) == 1 {
		t.Fatal("hole interior should be outside")
	}
}

func TestDifferenceSubjectInsideClip(t *testing.T) {
	got, err := DifferencePolygons(Rect(2, 2, 3, 3), Rect(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("pieces = %d, want 0", len(got))
	}
}

func TestDifferenceDisjoint(t *testing.T) {
	a := Rect(0, 0, 1, 1)
	got, err := DifferencePolygons(a, Rect(5, 5, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !almostEq(got[0].Area(), 1, 1e-9) {
		t.Fatalf("difference with disjoint = %+v", got)
	}
}

func TestClipGridAlignedDegenerate(t *testing.T) {
	// Shared edge between subject and clip: the degenerate case the
	// perturbation ladder must resolve (grid-aligned satellite pixels).
	a := Rect(0, 0, 4, 4)
	b := Rect(4, 0, 8, 4) // shares the x=4 edge
	inter, err := IntersectPolygons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for _, p := range inter {
		area += p.Area()
	}
	if area > 0.001 {
		t.Fatalf("edge-sharing rects intersection area = %g, want ~0", area)
	}
	// Identical rectangles.
	same, err := IntersectPolygons(a, Rect(0, 0, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	var sArea float64
	for _, p := range same {
		sArea += p.Area()
	}
	if !almostEq(sArea, 16, 0.01) {
		t.Fatalf("self intersection area = %g, want ~16", sArea)
	}
	// Vertex-on-edge.
	c := NewPolygon(NewRing(Point{4, 2}, Point{8, 0}, Point{8, 4}))
	inter2, err := IntersectPolygons(a, c)
	if err != nil {
		t.Fatal(err)
	}
	var a2 float64
	for _, p := range inter2 {
		a2 += p.Area()
	}
	if a2 > 0.01 {
		t.Fatalf("vertex-touch intersection area = %g", a2)
	}
}

func TestClipTriangles(t *testing.T) {
	a := NewPolygon(NewRing(Point{0, 0}, Point{6, 0}, Point{3, 6}))
	b := NewPolygon(NewRing(Point{0, 4}, Point{6, 4}, Point{3, -2}))
	inter, err := IntersectPolygons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for _, p := range inter {
		area += p.Area()
	}
	if area <= 0 || area >= math.Min(a.Area(), b.Area()) {
		t.Fatalf("triangle intersection area = %g", area)
	}
	// Inclusion-exclusion with union.
	un, err := UnionPolygons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var uArea float64
	for _, p := range un {
		uArea += p.Area()
	}
	if !almostEq(uArea, a.Area()+b.Area()-area, 0.01) {
		t.Fatalf("inclusion-exclusion violated: union %g vs %g", uArea, a.Area()+b.Area()-area)
	}
}

func TestClipAreaInvariants(t *testing.T) {
	// Property: for random rect pairs, |A∩B| + |A\B| == |A| (within tol).
	for i := 0; i < 40; i++ {
		x := float64(i%5) * 1.3
		y := float64(i%7) * 0.7
		a := Rect(0, 0, 5, 5)
		b := Rect(x, y, x+3.1, y+2.3)
		inter, err := IntersectPolygons(a, b)
		if err != nil {
			t.Fatalf("case %d intersect: %v", i, err)
		}
		diff, err := DifferencePolygons(a, b)
		if err != nil {
			t.Fatalf("case %d difference: %v", i, err)
		}
		var iA, dA float64
		for _, p := range inter {
			iA += p.Area()
		}
		for _, p := range diff {
			dA += p.Area()
		}
		if !almostEq(iA+dA, 25, 0.01) {
			t.Fatalf("case %d: %g + %g != 25 (b at %g,%g)", i, iA, dA, x, y)
		}
	}
}

func TestGeometryLevelOps(t *testing.T) {
	a := MultiPolygon{Polygons: []Polygon{Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)}}
	b := Rect(1, 1, 11, 11)
	inter, err := Intersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Area(inter), 2, 1e-6) {
		t.Fatalf("multi intersection area = %g, want 2", Area(inter))
	}
	diff, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Area(diff), 6, 1e-6) {
		t.Fatalf("multi difference area = %g, want 6", Area(diff))
	}
	un, err := Union(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Area(un), 2, 1e-9) {
		t.Fatalf("union area = %g", Area(un))
	}
}

func TestClipEmptyInputs(t *testing.T) {
	a := Rect(0, 0, 1, 1)
	if got, err := IntersectPolygons(a, Polygon{}); err != nil || len(got) != 0 {
		t.Fatalf("intersect with empty: %v %v", got, err)
	}
	if got, err := DifferencePolygons(a, Polygon{}); err != nil || len(got) != 1 {
		t.Fatalf("difference with empty: %v %v", got, err)
	}
	if got, err := UnionPolygons(Polygon{}, a); err != nil || len(got) != 1 {
		t.Fatalf("union with empty: %v %v", got, err)
	}
	if got, err := IntersectPolygons(Polygon{}, Polygon{}); err != nil || len(got) != 0 {
		t.Fatalf("both empty: %v %v", got, err)
	}
}
