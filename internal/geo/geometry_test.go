package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointBasics(t *testing.T) {
	p := NewPoint(23.7, 37.9)
	if p.Type() != TypePoint {
		t.Fatalf("Type = %v", p.Type())
	}
	if p.Dimension() != 0 {
		t.Fatalf("Dimension = %d", p.Dimension())
	}
	if p.IsEmpty() {
		t.Fatal("point should not be empty")
	}
	env := p.Envelope()
	if env.MinX != 23.7 || env.MaxY != 37.9 {
		t.Fatalf("Envelope = %+v", env)
	}
	if !p.Equal(NewPoint(23.7, 37.9)) {
		t.Fatal("Equal failed")
	}
	if p.Equal(NewPoint(23.7, 38.0)) {
		t.Fatal("Equal matched different points")
	}
}

func TestEmptyPoint(t *testing.T) {
	p := Point{X: math.NaN(), Y: math.NaN()}
	if !p.IsEmpty() {
		t.Fatal("NaN point should be empty")
	}
	if p.WKT() != "POINT EMPTY" {
		t.Fatalf("WKT = %q", p.WKT())
	}
}

func TestLineStringLength(t *testing.T) {
	l := NewLineString(Point{0, 0}, Point{3, 0}, Point{3, 4})
	if got := l.Length(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("Length = %g, want 7", got)
	}
	if l.IsClosed() {
		t.Fatal("open line reported closed")
	}
	closed := NewLineString(Point{0, 0}, Point{1, 0}, Point{1, 1}, Point{0, 0})
	if !closed.IsClosed() {
		t.Fatal("closed line reported open")
	}
	rev := l.Reverse()
	if rev.Coords[0] != (Point{3, 4}) {
		t.Fatalf("Reverse first = %+v", rev.Coords[0])
	}
	if l.Coords[0] != (Point{0, 0}) {
		t.Fatal("Reverse mutated receiver")
	}
}

func TestRingAreaWinding(t *testing.T) {
	ccw := NewRing(Point{0, 0}, Point{4, 0}, Point{4, 3}, Point{0, 3})
	if !ccw.IsCCW() {
		t.Fatal("ccw ring not detected")
	}
	if got := ccw.Area(); got != 12 {
		t.Fatalf("Area = %g, want 12", got)
	}
	cw := ccw.Reverse()
	if cw.IsCCW() {
		t.Fatal("cw ring reported ccw")
	}
	if got := cw.SignedArea(); got != -12 {
		t.Fatalf("SignedArea = %g, want -12", got)
	}
}

func TestNewRingCloses(t *testing.T) {
	r := NewRing(Point{0, 0}, Point{1, 0}, Point{1, 1})
	if len(r.Coords) != 4 {
		t.Fatalf("len = %d, want 4", len(r.Coords))
	}
	if !r.Coords[0].Equal(r.Coords[3]) {
		t.Fatal("ring not closed")
	}
}

func TestPolygonAreaWithHole(t *testing.T) {
	outer := NewRing(Point{0, 0}, Point{10, 0}, Point{10, 10}, Point{0, 10})
	hole := NewRing(Point{2, 2}, Point{4, 2}, Point{4, 4}, Point{2, 4})
	p := NewPolygon(outer, hole)
	if got := p.Area(); got != 96 {
		t.Fatalf("Area = %g, want 96", got)
	}
	if !p.Exterior.IsCCW() {
		t.Fatal("exterior should be CCW after normalisation")
	}
	if p.Holes[0].IsCCW() {
		t.Fatal("hole should be CW after normalisation")
	}
	if p.Dimension() != 2 {
		t.Fatalf("Dimension = %d", p.Dimension())
	}
}

func TestPolygonPerimeter(t *testing.T) {
	p := Rect(0, 0, 3, 4)
	if got := p.Perimeter(); math.Abs(got-14) > 1e-12 {
		t.Fatalf("Perimeter = %g, want 14", got)
	}
}

func TestEnvelopeOps(t *testing.T) {
	e := EmptyEnvelope()
	if !e.IsEmpty() {
		t.Fatal("EmptyEnvelope not empty")
	}
	e = e.ExtendPoint(1, 2).ExtendPoint(3, -1)
	want := Envelope{MinX: 1, MinY: -1, MaxX: 3, MaxY: 2}
	if e != want {
		t.Fatalf("Extend = %+v, want %+v", e, want)
	}
	if e.Width() != 2 || e.Height() != 3 {
		t.Fatalf("W/H = %g/%g", e.Width(), e.Height())
	}
	o := Envelope{MinX: 2, MinY: 0, MaxX: 5, MaxY: 5}
	if !e.Intersects(o) {
		t.Fatal("envelopes should intersect")
	}
	inter := e.Intersection(o)
	if inter.MinX != 2 || inter.MaxX != 3 || inter.MinY != 0 || inter.MaxY != 2 {
		t.Fatalf("Intersection = %+v", inter)
	}
	far := Envelope{MinX: 10, MinY: 10, MaxX: 11, MaxY: 11}
	if e.Intersects(far) {
		t.Fatal("disjoint envelopes reported intersecting")
	}
	if !e.Intersection(far).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
	if !o.Contains(Envelope{MinX: 3, MinY: 1, MaxX: 4, MaxY: 2}) {
		t.Fatal("Contains failed")
	}
	if !e.ContainsPoint(2, 0) {
		t.Fatal("ContainsPoint failed on boundary")
	}
	exp := e.Expand(1)
	if exp.MinX != 0 || exp.MaxY != 3 {
		t.Fatalf("Expand = %+v", exp)
	}
	if c := e.Center(); c != (Point{2, 0.5}) {
		t.Fatalf("Center = %+v", c)
	}
}

func TestEnvelopeExtendIdentity(t *testing.T) {
	e := Envelope{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if got := e.Extend(EmptyEnvelope()); got != e {
		t.Fatalf("Extend(empty) = %+v", got)
	}
	if got := EmptyEnvelope().Extend(e); got != e {
		t.Fatalf("empty.Extend = %+v", got)
	}
}

func TestEnvelopeExtendCommutative(t *testing.T) {
	f := func(a, b, c, d, e2, f2, g, h float64) bool {
		e1 := EmptyEnvelope().ExtendPoint(a, b).ExtendPoint(c, d)
		o1 := EmptyEnvelope().ExtendPoint(e2, f2).ExtendPoint(g, h)
		return e1.Extend(o1) == o1.Extend(e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeIntersectsSymmetric(t *testing.T) {
	f := func(a, b, c, d, e2, f2, g, h float64) bool {
		e1 := EmptyEnvelope().ExtendPoint(a, b).ExtendPoint(c, d)
		o1 := EmptyEnvelope().ExtendPoint(e2, f2).ExtendPoint(g, h)
		return e1.Intersects(o1) == o1.Intersects(e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiGeometryEnvelopes(t *testing.T) {
	mp := MultiPoint{Points: []Point{{0, 0}, {5, 5}}}
	if env := mp.Envelope(); env.MaxX != 5 || env.MinY != 0 {
		t.Fatalf("MultiPoint envelope = %+v", env)
	}
	ml := MultiLineString{Lines: []LineString{
		NewLineString(Point{0, 0}, Point{1, 1}),
		NewLineString(Point{-3, 2}, Point{4, -2}),
	}}
	if env := ml.Envelope(); env.MinX != -3 || env.MaxX != 4 {
		t.Fatalf("MultiLineString envelope = %+v", env)
	}
	mpoly := MultiPolygon{Polygons: []Polygon{Rect(0, 0, 1, 1), Rect(5, 5, 7, 9)}}
	if got := mpoly.Area(); got != 9 {
		t.Fatalf("MultiPolygon area = %g", got)
	}
	gc := GeometryCollection{Geometries: []Geometry{mp, ml, mpoly}}
	if gc.Dimension() != 2 {
		t.Fatalf("collection dimension = %d", gc.Dimension())
	}
	if env := gc.Envelope(); env.MaxY != 9 {
		t.Fatalf("collection envelope = %+v", env)
	}
}

func TestGeometryTypeString(t *testing.T) {
	cases := map[GeometryType]string{
		TypePoint:              "POINT",
		TypeLineString:         "LINESTRING",
		TypePolygon:            "POLYGON",
		TypeMultiPoint:         "MULTIPOINT",
		TypeMultiLineString:    "MULTILINESTRING",
		TypeMultiPolygon:       "MULTIPOLYGON",
		TypeGeometryCollection: "GEOMETRYCOLLECTION",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Rect(0, 0, 1, 1)); err != nil {
		t.Fatalf("valid rect: %v", err)
	}
	bad := Polygon{Exterior: Ring{Coords: []Point{{0, 0}, {1, 0}, {0, 0}}}}
	if err := Validate(bad); err == nil {
		t.Fatal("expected error for 3-coordinate ring")
	}
	open := Polygon{Exterior: Ring{Coords: []Point{{0, 0}, {1, 0}, {1, 1}, {2, 2}}}}
	if err := Validate(open); err == nil {
		t.Fatal("expected error for unclosed ring")
	}
	if err := Validate(LineString{Coords: []Point{{1, 1}}}); err == nil {
		t.Fatal("expected error for 1-point line")
	}
	if err := Validate(GeometryCollection{Geometries: []Geometry{Rect(0, 0, 1, 1), NewPoint(1, 2)}}); err != nil {
		t.Fatalf("valid collection: %v", err)
	}
}
