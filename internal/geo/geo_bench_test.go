package geo

import (
	"math"
	"testing"
)

func benchCoastline(n int) Polygon {
	cs := make([]Point, 0, n+1)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		r := 10 + 2*math.Sin(5*th)
		cs = append(cs, Point{r * math.Cos(th), r * math.Sin(th)})
	}
	cs = append(cs, cs[0])
	return NewPolygon(Ring{Coords: cs})
}

func BenchmarkPointInPolygon(b *testing.B) {
	poly := benchCoastline(360)
	for i := 0; i < b.N; i++ {
		if pointPolygonLocation(Point{float64(i%7) - 3, float64(i%5) - 2}, poly) == 0 {
			b.Fatal("unexpected boundary hit")
		}
	}
}

func BenchmarkIntersectsPolyPoly(b *testing.B) {
	coast := benchCoastline(360)
	probe := Rect(8, -1, 12, 1) // straddles the boundary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Intersects(coast, probe) {
			b.Fatal("should intersect")
		}
	}
}

func BenchmarkClipIntersection(b *testing.B) {
	coast := benchCoastline(360)
	probe := Rect(8, -1, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := IntersectPolygons(probe, coast)
		if err != nil || len(out) == 0 {
			b.Fatalf("clip: %v (%d pieces)", err, len(out))
		}
	}
}

func BenchmarkWKTParsePolygon(b *testing.B) {
	wkt := benchCoastline(360).WKT()
	b.SetBytes(int64(len(wkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseWKT(wkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPoint(b *testing.B) {
	p := NewPoint(23.7, 37.9)
	for i := 0; i < b.N; i++ {
		if Buffer(p, 0.02, 8).IsEmpty() {
			b.Fatal("empty buffer")
		}
	}
}

func BenchmarkGeodesicDistance(b *testing.B) {
	coast := benchCoastline(360)
	pt := NewPoint(25, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if GeodesicDistanceMeters(coast, pt) <= 0 {
			b.Fatal("distance")
		}
	}
}
