package geo

import (
	"errors"
	"math"
)

// Polygon boolean operations (intersection, union, difference) via the
// Greiner-Hormann algorithm. The TELEIOS refinement step (Scenario 2 of the
// demo) subtracts sea-mask and land-cover polygons from hotspot pixel
// footprints; these operations implement that step.
//
// The implementation handles simple polygons. Degenerate configurations
// (vertices exactly on the other polygon's boundary — common for
// grid-aligned satellite footprints) are resolved by retrying with a tiny
// deterministic perturbation of the clip polygon, which changes areas by
// O(1e-9) — far below a SEVIRI pixel.

// ErrDegenerateClip is returned when clipping cannot be resolved even after
// perturbation retries.
var ErrDegenerateClip = errors.New("geo: degenerate polygon clip")

type clipOp int

const (
	opIntersection clipOp = iota
	opUnion
	opDifference
)

// IntersectPolygons returns the intersection of two polygons as a set of
// polygons (empty when disjoint).
func IntersectPolygons(subject, clip Polygon) ([]Polygon, error) {
	return clipPolygons(subject, clip, opIntersection)
}

// UnionPolygons returns the union of two polygons. Disjoint inputs yield
// both polygons unchanged.
func UnionPolygons(subject, clip Polygon) ([]Polygon, error) {
	return clipPolygons(subject, clip, opUnion)
}

// DifferencePolygons returns subject minus clip as a set of polygons.
// Holes in the clip polygon are handled by decomposition:
// a \ (ext \ holes) = (a \ ext) ∪ (a ∩ hole_i).
func DifferencePolygons(subject, clip Polygon) ([]Polygon, error) {
	if len(clip.Holes) == 0 {
		return clipPolygons(subject, clip, opDifference)
	}
	out, err := clipPolygons(subject, Polygon{Exterior: clip.Exterior}, opDifference)
	if err != nil {
		return nil, err
	}
	for _, h := range clip.Holes {
		hp := NewPolygon(h.Reverse())
		back, err := clipPolygons(subject, hp, opIntersection)
		if err != nil {
			return nil, err
		}
		out = append(out, back...)
	}
	return out, nil
}

// Intersection computes the pairwise intersection of the polygonal parts of
// two geometries and returns the result as a Geometry (Polygon,
// MultiPolygon, or empty Polygon).
func Intersection(a, b Geometry) (Geometry, error) {
	var out []Polygon
	for _, pa := range polygons(a) {
		for _, pb := range polygons(b) {
			ps, err := IntersectPolygons(pa, pb)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
	}
	return polysToGeometry(out), nil
}

// Difference subtracts every polygonal part of b from every polygonal part
// of a.
func Difference(a, b Geometry) (Geometry, error) {
	current := polygons(a)
	for _, pb := range polygons(b) {
		var next []Polygon
		for _, pa := range current {
			ps, err := DifferencePolygons(pa, pb)
			if err != nil {
				return nil, err
			}
			next = append(next, ps...)
		}
		current = next
	}
	return polysToGeometry(current), nil
}

// Union dissolves the polygonal parts of a and b into a single geometry.
func Union(a, b Geometry) (Geometry, error) {
	all := append(polygons(a), polygons(b)...)
	cp := make([]Polygon, len(all))
	copy(cp, all)
	return dissolve(cp), nil
}

func polysToGeometry(ps []Polygon) Geometry {
	switch len(ps) {
	case 0:
		return Polygon{}
	case 1:
		return ps[0]
	default:
		return MultiPolygon{Polygons: ps}
	}
}

// clipVertex is a node in the doubly linked Greiner-Hormann vertex list.
type clipVertex struct {
	p          Point
	next, prev *clipVertex
	neighbor   *clipVertex
	intersect  bool
	entry      bool
	visited    bool
	alpha      float64
}

// buildList converts ring coordinates (closed; first==last) to a circular
// doubly linked list, dropping the duplicated closing coordinate.
func buildList(cs []Point) *clipVertex {
	n := len(cs) - 1
	if n < 3 {
		return nil
	}
	var head, tail *clipVertex
	for i := 0; i < n; i++ {
		v := &clipVertex{p: cs[i]}
		if head == nil {
			head = v
			tail = v
			continue
		}
		tail.next = v
		v.prev = tail
		tail = v
	}
	tail.next = head
	head.prev = tail
	return head
}

func listPoints(head *clipVertex) []Point {
	var out []Point
	v := head
	for {
		out = append(out, v.p)
		v = v.next
		if v == head {
			break
		}
	}
	return out
}

// clipPolygons runs Greiner-Hormann with perturbation retries.
func clipPolygons(subject, clip Polygon, op clipOp) ([]Polygon, error) {
	if subject.IsEmpty() {
		switch op {
		case opIntersection, opDifference:
			return nil, nil
		default:
			if clip.IsEmpty() {
				return nil, nil
			}
			return []Polygon{clip}, nil
		}
	}
	if clip.IsEmpty() {
		if op == opIntersection {
			return nil, nil
		}
		return []Polygon{subject}, nil
	}
	// Perturbation ladder: exact, then three increasing deterministic shifts.
	deltas := []float64{0, 3e-10, 7e-9, 1.3e-7}
	var lastErr error
	for _, d := range deltas {
		c := clip
		if d != 0 {
			c = translatePolygon(clip, d, d*0.618)
		}
		res, err := clipOnce(subject, c, op)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func translatePolygon(p Polygon, dx, dy float64) Polygon {
	tr := func(r Ring) Ring {
		cs := make([]Point, len(r.Coords))
		for i, c := range r.Coords {
			cs[i] = Point{c.X + dx, c.Y + dy}
		}
		return Ring{Coords: cs}
	}
	out := Polygon{Exterior: tr(p.Exterior)}
	for _, h := range p.Holes {
		out.Holes = append(out.Holes, tr(h))
	}
	return out
}

// clipOnce runs a single Greiner-Hormann pass on the exterior rings, then
// reconciles holes.
func clipOnce(subject, clip Polygon, op clipOp) ([]Polygon, error) {
	subjList := buildList(subject.Exterior.Coords)
	clipList := buildList(clip.Exterior.Coords)
	if subjList == nil || clipList == nil {
		return nil, ErrDegenerateClip
	}

	// Phase 1: find and insert intersections.
	nIntersections, degenerate := insertIntersections(subjList, clipList)
	if degenerate {
		return nil, ErrDegenerateClip
	}

	if nIntersections == 0 {
		return clipDisjointOrNested(subject, clip, op), nil
	}

	// Phase 2: mark entry/exit.
	markEntries(subjList, clip, op == opUnion || op == opDifference)
	markEntries(clipList, subject, op == opUnion)

	// Phase 3: trace result rings.
	rings := traceRings(subjList)
	var out []Polygon
	for _, cs := range rings {
		if len(cs) < 3 {
			continue
		}
		cs = append(cs, cs[0])
		r := Ring{Coords: cs}
		if r.Area() < eps {
			continue
		}
		out = append(out, NewPolygon(r))
	}
	out = reconcileHoles(out, subject, clip, op)
	return out, nil
}

// insertIntersections finds all pairwise edge intersections and splices
// linked intersection vertices into both lists. It reports the count and
// whether a degenerate (endpoint/collinear) configuration was seen.
func insertIntersections(subjHead, clipHead *clipVertex) (int, bool) {
	count := 0
	const tolAlpha = 1e-12
	for s := subjHead; ; {
		sNext := nextNonIntersect(s)
		for c := clipHead; ; {
			cNext := nextNonIntersect(c)
			p, tS, tC, ok, degen := segParams(s.p, sNext.p, c.p, cNext.p)
			if degen {
				return 0, true
			}
			if ok {
				if tS < tolAlpha || tS > 1-tolAlpha || tC < tolAlpha || tC > 1-tolAlpha {
					return 0, true
				}
				is := &clipVertex{p: p, intersect: true, alpha: tS}
				ic := &clipVertex{p: p, intersect: true, alpha: tC}
				is.neighbor, ic.neighbor = ic, is
				insertSorted(s, sNext, is)
				insertSorted(c, cNext, ic)
				count++
			}
			c = cNext
			if c == clipHead {
				break
			}
		}
		s = sNext
		if s == subjHead {
			break
		}
	}
	return count, false
}

// segParams computes the intersection parameters of segments [a,b], [c,d].
// degen is reported for (near-)parallel overlapping segments or endpoint
// touches, which the caller resolves by perturbation.
func segParams(a, b, c, d Point) (Point, float64, float64, bool, bool) {
	d1 := Point{b.X - a.X, b.Y - a.Y}
	d2 := Point{d.X - c.X, d.Y - c.Y}
	denom := d1.X*d2.Y - d1.Y*d2.X
	scale := math.Abs(d1.X) + math.Abs(d1.Y) + math.Abs(d2.X) + math.Abs(d2.Y) + 1
	if math.Abs(denom) <= eps*scale {
		// Parallel. Degenerate only if collinear and overlapping.
		if orientation(a, b, c) == 0 && (onSegment(c, a, b) || onSegment(d, a, b) || onSegment(a, c, d)) {
			return Point{}, 0, 0, false, true
		}
		return Point{}, 0, 0, false, false
	}
	t := ((c.X-a.X)*d2.Y - (c.Y-a.Y)*d2.X) / denom
	u := ((c.X-a.X)*d1.Y - (c.Y-a.Y)*d1.X) / denom
	if t < -eps || t > 1+eps || u < -eps || u > 1+eps {
		return Point{}, 0, 0, false, false
	}
	return Point{a.X + t*d1.X, a.Y + t*d1.Y}, t, u, true, false
}

// nextNonIntersect returns the next original (non-intersection) vertex.
func nextNonIntersect(v *clipVertex) *clipVertex {
	n := v.next
	for n.intersect {
		n = n.next
	}
	return n
}

// insertSorted splices iv between from and to ordered by alpha.
func insertSorted(from, to, iv *clipVertex) {
	cur := from
	for cur.next != to && cur.next.intersect && cur.next.alpha < iv.alpha {
		cur = cur.next
	}
	iv.next = cur.next
	iv.prev = cur
	cur.next.prev = iv
	cur.next = iv
}

// markEntries walks a list and alternates entry/exit flags on intersection
// vertices, starting from whether the list's first vertex is inside the
// other polygon, optionally inverted (for union/difference variants).
func markEntries(head *clipVertex, other Polygon, invert bool) {
	inside := pointPolygonLocation(head.p, other) == 1
	entry := !inside
	if invert {
		entry = !entry
	}
	v := head
	for {
		if v.intersect {
			v.entry = entry
			entry = !entry
		}
		v = v.next
		if v == head {
			break
		}
	}
}

// traceRings walks unvisited intersections producing result rings.
func traceRings(subjHead *clipVertex) [][]Point {
	var rings [][]Point
	for {
		start := firstUnvisited(subjHead)
		if start == nil {
			break
		}
		var ring []Point
		v := start
		for {
			v.visited = true
			if v.neighbor != nil {
				v.neighbor.visited = true
			}
			if v.entry {
				for {
					v = v.next
					ring = append(ring, v.p)
					if v.intersect {
						break
					}
				}
			} else {
				for {
					v = v.prev
					ring = append(ring, v.p)
					if v.intersect {
						break
					}
				}
			}
			v = v.neighbor
			if v == nil || v == start || v.visited && v == start.neighbor {
				break
			}
			if v.visited {
				break
			}
		}
		// Deduplicate consecutive points.
		ring = dedupPoints(ring)
		if len(ring) >= 3 {
			rings = append(rings, ring)
		}
		if len(rings) > 10000 {
			break // safety valve against pathological loops
		}
	}
	return rings
}

func dedupPoints(cs []Point) []Point {
	var out []Point
	for _, p := range cs {
		if len(out) == 0 || !out[len(out)-1].Equal(p) {
			out = append(out, p)
		}
	}
	if len(out) > 1 && out[0].Equal(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

func firstUnvisited(head *clipVertex) *clipVertex {
	v := head
	for {
		if v.intersect && !v.visited {
			return v
		}
		v = v.next
		if v == head {
			return nil
		}
	}
}

// clipDisjointOrNested handles the no-intersection cases by containment.
// With no boundary crossings, one polygon is inside the other exactly when
// its envelope is contained and a representative point lies inside.
func clipDisjointOrNested(subject, clip Polygon, op clipOp) []Polygon {
	subjInClip := clip.Envelope().Contains(subject.Envelope()) &&
		pointPolygonLocation(RepresentativePoint(subject), clip) == 1
	clipInSubj := subject.Envelope().Contains(clip.Envelope()) &&
		pointPolygonLocation(RepresentativePoint(clip), subject) == 1
	switch op {
	case opIntersection:
		if subjInClip {
			return []Polygon{subject}
		}
		if clipInSubj {
			return []Polygon{clip}
		}
		return nil
	case opUnion:
		if subjInClip {
			return []Polygon{clip}
		}
		if clipInSubj {
			return []Polygon{subject}
		}
		return []Polygon{subject, clip}
	case opDifference:
		if subjInClip {
			return nil
		}
		if clipInSubj {
			// Clip becomes a hole in subject.
			h := clip.Exterior
			if h.IsCCW() {
				h = h.Reverse()
			}
			return []Polygon{{Exterior: subject.Exterior, Holes: append(append([]Ring{}, subject.Holes...), h)}}
		}
		return []Polygon{subject}
	}
	return nil
}

// reconcileHoles re-applies the input polygons' holes to the clip results.
// Holes of the subject (and, for intersection/union, of the clip) that fall
// inside a result polygon are clipped against it and attached.
func reconcileHoles(results []Polygon, subject, clip Polygon, op clipOp) []Polygon {
	holes := append([]Ring{}, subject.Holes...)
	if op != opDifference {
		holes = append(holes, clip.Holes...)
	}
	if len(holes) == 0 {
		return results
	}
	for i := range results {
		for _, h := range holes {
			hp := NewPolygon(h.Reverse())
			if Within(hp, results[i]) {
				hr := hp.Exterior
				if hr.IsCCW() {
					hr = hr.Reverse()
				}
				results[i].Holes = append(results[i].Holes, hr)
			}
		}
	}
	return results
}
