package geo

import (
	"fmt"
	"math"
	"sort"
)

// Metric and constructive operations: distance, centroid, buffer, convex
// hull, simplification. These back stSPARQL functions such as
// strdf:distance and strdf:buffer and the rapid-mapping services.

// Distance reports the minimum planar distance between two geometries
// (0 when they intersect).
func Distance(a, b Geometry) float64 {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	if Intersects(a, b) {
		return 0
	}
	min := math.Inf(1)
	va, vb := vertices(a), vertices(b)
	sa, sb := segments(a), segments(b)
	for _, p := range va {
		for _, s := range sb {
			if d := pointSegmentDistance(p, s[0], s[1]); d < min {
				min = d
			}
		}
		if len(sb) == 0 {
			for _, q := range vb {
				if d := dist(p, q); d < min {
					min = d
				}
			}
		}
	}
	for _, p := range vb {
		for _, s := range sa {
			if d := pointSegmentDistance(p, s[0], s[1]); d < min {
				min = d
			}
		}
		if len(sa) == 0 {
			for _, q := range va {
				if d := dist(p, q); d < min {
					min = d
				}
			}
		}
	}
	return min
}

// pointSegmentDistance reports the distance from p to segment [a, b].
func pointSegmentDistance(p, a, b Point) float64 {
	t := projectParam(a, b, p)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return dist(p, Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)})
}

// Area reports the area of a geometry (0 for points and curves).
func Area(g Geometry) float64 {
	switch t := g.(type) {
	case Polygon:
		return t.Area()
	case MultiPolygon:
		return t.Area()
	case GeometryCollection:
		var sum float64
		for _, m := range t.Geometries {
			sum += Area(m)
		}
		return sum
	default:
		return 0
	}
}

// Length reports the boundary length of a geometry.
func Length(g Geometry) float64 {
	switch t := g.(type) {
	case LineString:
		return t.Length()
	case MultiLineString:
		return t.Length()
	case Polygon:
		return t.Perimeter()
	case MultiPolygon:
		var sum float64
		for _, p := range t.Polygons {
			sum += p.Perimeter()
		}
		return sum
	case GeometryCollection:
		var sum float64
		for _, m := range t.Geometries {
			sum += Length(m)
		}
		return sum
	default:
		return 0
	}
}

// Centroid reports the centroid of a geometry. For polygons the area
// centroid (holes subtracted); for lines the length-weighted midpoint; for
// point sets the mean.
func Centroid(g Geometry) Point {
	switch t := g.(type) {
	case Point:
		return t
	case MultiPoint:
		var sx, sy float64
		for _, p := range t.Points {
			sx += p.X
			sy += p.Y
		}
		n := float64(len(t.Points))
		if n == 0 {
			return Point{math.NaN(), math.NaN()}
		}
		return Point{sx / n, sy / n}
	case LineString:
		return lineCentroid(t.Coords)
	case MultiLineString:
		var sx, sy, sw float64
		for _, l := range t.Lines {
			c := lineCentroid(l.Coords)
			w := l.Length()
			sx += c.X * w
			sy += c.Y * w
			sw += w
		}
		if sw == 0 {
			return Point{math.NaN(), math.NaN()}
		}
		return Point{sx / sw, sy / sw}
	case Polygon:
		return polygonCentroid(t)
	case MultiPolygon:
		var sx, sy, sw float64
		for _, p := range t.Polygons {
			c := polygonCentroid(p)
			w := p.Area()
			sx += c.X * w
			sy += c.Y * w
			sw += w
		}
		if sw == 0 {
			return Point{math.NaN(), math.NaN()}
		}
		return Point{sx / sw, sy / sw}
	case GeometryCollection:
		// Use the highest-dimension members, matching PostGIS semantics.
		d := t.Dimension()
		var sx, sy, sw float64
		for _, m := range t.Geometries {
			if m.Dimension() != d {
				continue
			}
			c := Centroid(m)
			w := 1.0
			switch d {
			case 1:
				w = Length(m)
			case 2:
				w = Area(m)
			}
			sx += c.X * w
			sy += c.Y * w
			sw += w
		}
		if sw == 0 {
			return Point{math.NaN(), math.NaN()}
		}
		return Point{sx / sw, sy / sw}
	default:
		return Point{math.NaN(), math.NaN()}
	}
}

func lineCentroid(cs []Point) Point {
	var sx, sy, sw float64
	for i := 1; i < len(cs); i++ {
		w := dist(cs[i-1], cs[i])
		sx += (cs[i-1].X + cs[i].X) / 2 * w
		sy += (cs[i-1].Y + cs[i].Y) / 2 * w
		sw += w
	}
	if sw == 0 {
		if len(cs) > 0 {
			return cs[0]
		}
		return Point{math.NaN(), math.NaN()}
	}
	return Point{sx / sw, sy / sw}
}

func polygonCentroid(p Polygon) Point {
	cx, cy, a := ringCentroidArea(p.Exterior)
	for _, h := range p.Holes {
		hx, hy, ha := ringCentroidArea(h)
		// ringCentroidArea returns signed values; holes wind opposite to the
		// exterior, so adding signed contributions subtracts the hole.
		cx += hx
		cy += hy
		a += ha
	}
	if a == 0 {
		if len(p.Exterior.Coords) > 0 {
			return p.Exterior.Coords[0]
		}
		return Point{math.NaN(), math.NaN()}
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// ringCentroidArea returns the signed area moments used by the polygon
// centroid formula: sums of (x_i + x_{i+1}) * cross and the signed area*2.
func ringCentroidArea(r Ring) (sx, sy, area2 float64) {
	for i := 0; i < len(r.Coords)-1; i++ {
		a, b := r.Coords[i], r.Coords[i+1]
		cross := a.X*b.Y - b.X*a.Y
		sx += (a.X + b.X) * cross
		sy += (a.Y + b.Y) * cross
		area2 += cross
	}
	return sx / 2, sy / 2, area2 / 2
}

// Buffer returns a polygon approximating all points within radius d of g,
// using quadrantSegments segments per quarter circle (8 when 0 is passed).
// For d <= 0 on non-polygon inputs it returns an empty polygon.
func Buffer(g Geometry, d float64, quadrantSegments int) Geometry {
	if quadrantSegments <= 0 {
		quadrantSegments = 8
	}
	if g == nil || g.IsEmpty() {
		return Polygon{}
	}
	if d <= 0 {
		// Negative buffering is only meaningful for polygons; approximate by
		// returning the polygon itself shrunk via simplification, or empty.
		if d == 0 {
			return g
		}
		return Polygon{}
	}
	switch t := g.(type) {
	case Point:
		return circlePolygon(t, d, quadrantSegments*4)
	case MultiPoint:
		var polys []Polygon
		for _, p := range t.Points {
			polys = append(polys, circlePolygon(p, d, quadrantSegments*4))
		}
		return dissolve(polys)
	case LineString:
		return bufferLine(t.Coords, d, quadrantSegments)
	case MultiLineString:
		var polys []Polygon
		for _, l := range t.Lines {
			b := bufferLine(l.Coords, d, quadrantSegments)
			polys = append(polys, polygons(b)...)
		}
		return dissolve(polys)
	case Polygon:
		// Outward buffer of a polygon: buffer the boundary and union with
		// the polygon itself.
		b := bufferLine(t.Exterior.Coords, d, quadrantSegments)
		polys := append(polygons(b), t)
		return dissolve(polys)
	case MultiPolygon:
		var polys []Polygon
		for _, p := range t.Polygons {
			b := Buffer(p, d, quadrantSegments)
			polys = append(polys, polygons(b)...)
		}
		return dissolve(polys)
	case GeometryCollection:
		var polys []Polygon
		for _, m := range t.Geometries {
			b := Buffer(m, d, quadrantSegments)
			polys = append(polys, polygons(b)...)
		}
		return dissolve(polys)
	}
	return Polygon{}
}

func circlePolygon(c Point, r float64, n int) Polygon {
	if n < 8 {
		n = 8
	}
	cs := make([]Point, 0, n+1)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		cs = append(cs, Point{c.X + r*math.Cos(th), c.Y + r*math.Sin(th)})
	}
	cs = append(cs, cs[0])
	return NewPolygon(Ring{Coords: cs})
}

// bufferLine buffers a polyline by unioning per-segment capsules. The
// result is the convex hull when the union dissolver cannot merge them,
// which keeps the operation total at the cost of some overestimation on
// sharply concave polylines.
func bufferLine(cs []Point, d float64, q int) Geometry {
	if len(cs) == 0 {
		return Polygon{}
	}
	if len(cs) == 1 {
		return circlePolygon(cs[0], d, q*4)
	}
	var polys []Polygon
	for i := 1; i < len(cs); i++ {
		polys = append(polys, segmentCapsule(cs[i-1], cs[i], d, q))
	}
	return dissolve(polys)
}

func segmentCapsule(a, b Point, d float64, q int) Polygon {
	dx, dy := b.X-a.X, b.Y-a.Y
	l := math.Hypot(dx, dy)
	if l == 0 {
		return circlePolygon(a, d, q*4)
	}
	nx, ny := -dy/l*d, dx/l*d
	theta := math.Atan2(dy, dx)
	var cs []Point
	cs = append(cs, Point{a.X + nx, a.Y + ny})
	// Semi-circle cap around a, from theta+pi/2 to theta+3pi/2.
	for i := 1; i < 2*q; i++ {
		th := theta + math.Pi/2 + math.Pi*float64(i)/float64(2*q)
		cs = append(cs, Point{a.X + d*math.Cos(th), a.Y + d*math.Sin(th)})
	}
	cs = append(cs, Point{a.X - nx, a.Y - ny}, Point{b.X - nx, b.Y - ny})
	// Semi-circle cap around b, from theta-pi/2 to theta+pi/2.
	for i := 1; i < 2*q; i++ {
		th := theta - math.Pi/2 + math.Pi*float64(i)/float64(2*q)
		cs = append(cs, Point{b.X + d*math.Cos(th), b.Y + d*math.Sin(th)})
	}
	cs = append(cs, cs[0])
	return NewPolygon(Ring{Coords: cs})
}

// dissolve unions a set of polygons. Overlapping groups are merged via
// repeated pairwise union; disjoint groups become a MultiPolygon.
func dissolve(polys []Polygon) Geometry {
	switch len(polys) {
	case 0:
		return Polygon{}
	case 1:
		return polys[0]
	}
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(polys); i++ {
			for j := i + 1; j < len(polys); j++ {
				if !polys[i].Envelope().Intersects(polys[j].Envelope()) {
					continue
				}
				if !Intersects(polys[i], polys[j]) {
					continue
				}
				u, err := UnionPolygons(polys[i], polys[j])
				if err != nil || len(u) != 1 {
					continue
				}
				polys[i] = u[0]
				polys = append(polys[:j], polys[j+1:]...)
				merged = true
				break outer
			}
		}
	}
	if len(polys) == 1 {
		return polys[0]
	}
	return MultiPolygon{Polygons: polys}
}

// ConvexHull returns the convex hull of g's vertices as a polygon
// (or a point / line string for degenerate inputs).
func ConvexHull(g Geometry) Geometry {
	vs := vertices(g)
	if len(vs) == 0 {
		return Polygon{}
	}
	// Andrew's monotone chain.
	pts := make([]Point, len(vs))
	copy(pts, vs)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	// Dedup.
	uniq := pts[:0]
	for _, p := range pts {
		if len(uniq) == 0 || !uniq[len(uniq)-1].Equal(p) {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	switch len(pts) {
	case 1:
		return pts[0]
	case 2:
		return LineString{Coords: pts}
	}
	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var lower, upper []Point
	for _, p := range pts {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return LineString{Coords: pts}
	}
	hull = append(hull, hull[0])
	return NewPolygon(Ring{Coords: hull})
}

// Simplify applies Douglas-Peucker simplification with tolerance tol to
// line strings and polygon rings. Rings that collapse below 4 coordinates
// are dropped (for holes) or kept minimally (for exteriors).
func Simplify(g Geometry, tol float64) Geometry {
	switch t := g.(type) {
	case LineString:
		return LineString{Coords: douglasPeucker(t.Coords, tol)}
	case MultiLineString:
		out := make([]LineString, len(t.Lines))
		for i, l := range t.Lines {
			out[i] = LineString{Coords: douglasPeucker(l.Coords, tol)}
		}
		return MultiLineString{Lines: out}
	case Polygon:
		return simplifyPolygon(t, tol)
	case MultiPolygon:
		out := make([]Polygon, 0, len(t.Polygons))
		for _, p := range t.Polygons {
			sp := simplifyPolygon(p, tol)
			if !sp.IsEmpty() {
				out = append(out, sp)
			}
		}
		return MultiPolygon{Polygons: out}
	case GeometryCollection:
		out := make([]Geometry, len(t.Geometries))
		for i, m := range t.Geometries {
			out[i] = Simplify(m, tol)
		}
		return GeometryCollection{Geometries: out}
	default:
		return g
	}
}

func simplifyPolygon(p Polygon, tol float64) Polygon {
	ext := simplifyRing(p.Exterior, tol)
	if len(ext.Coords) < 4 {
		return Polygon{}
	}
	var holes []Ring
	for _, h := range p.Holes {
		sh := simplifyRing(h, tol)
		if len(sh.Coords) >= 4 {
			holes = append(holes, sh)
		}
	}
	return NewPolygon(ext, holes...)
}

func simplifyRing(r Ring, tol float64) Ring {
	if len(r.Coords) < 4 {
		return r
	}
	cs := douglasPeucker(r.Coords, tol)
	if len(cs) >= 3 && !cs[0].Equal(cs[len(cs)-1]) {
		cs = append(cs, cs[0])
	}
	return Ring{Coords: cs}
}

func douglasPeucker(cs []Point, tol float64) []Point {
	if len(cs) < 3 {
		out := make([]Point, len(cs))
		copy(out, cs)
		return out
	}
	keep := make([]bool, len(cs))
	keep[0], keep[len(cs)-1] = true, true
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		maxD, maxI := -1.0, -1
		for i := lo + 1; i < hi; i++ {
			d := pointSegmentDistance(cs[i], cs[lo], cs[hi])
			if d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > tol {
			keep[maxI] = true
			rec(lo, maxI)
			rec(maxI, hi)
		}
	}
	rec(0, len(cs)-1)
	var out []Point
	for i, k := range keep {
		if k {
			out = append(out, cs[i])
		}
	}
	return out
}

// Validate performs basic validity checks: rings closed with >= 4 points,
// line strings with >= 2 points, no NaN coordinates (except empty points).
func Validate(g Geometry) error {
	switch t := g.(type) {
	case Point:
		if t.IsEmpty() {
			return nil
		}
		if math.IsInf(t.X, 0) || math.IsInf(t.Y, 0) {
			return fmt.Errorf("geo: point has infinite coordinate")
		}
	case MultiPoint:
		for _, p := range t.Points {
			if err := Validate(p); err != nil {
				return err
			}
		}
	case LineString:
		if len(t.Coords) == 1 {
			return fmt.Errorf("geo: line string with a single coordinate")
		}
		for _, p := range t.Coords {
			if err := Validate(p); err != nil {
				return err
			}
		}
	case MultiLineString:
		for _, l := range t.Lines {
			if err := Validate(l); err != nil {
				return err
			}
		}
	case Polygon:
		if t.IsEmpty() {
			return nil
		}
		if err := validateRing(t.Exterior); err != nil {
			return err
		}
		for _, h := range t.Holes {
			if err := validateRing(h); err != nil {
				return err
			}
		}
	case MultiPolygon:
		for _, p := range t.Polygons {
			if err := Validate(p); err != nil {
				return err
			}
		}
	case GeometryCollection:
		for _, m := range t.Geometries {
			if err := Validate(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateRing(r Ring) error {
	if len(r.Coords) < 4 {
		return fmt.Errorf("geo: ring has %d coordinates, need at least 4", len(r.Coords))
	}
	if !r.Coords[0].Equal(r.Coords[len(r.Coords)-1]) {
		return fmt.Errorf("geo: ring is not closed")
	}
	for _, p := range r.Coords {
		if p.IsEmpty() {
			return fmt.Errorf("geo: ring has NaN coordinate")
		}
	}
	return nil
}
