// Package rtree implements a two-dimensional R-tree with quadratic-split
// dynamic insertion and Sort-Tile-Recursive (STR) bulk loading. It is the
// spatial index under the Strabon store (internal/strabon): spatial filters
// in stSPARQL first prune candidates by bounding box here, then verify the
// exact predicate with internal/geo.
package rtree

import (
	"math"
	"sort"

	"repro/internal/geo"
)

// DefaultMaxEntries is the node fan-out used when NewTree is given 0.
const DefaultMaxEntries = 16

// Item is an indexed entry: a bounding box plus an opaque identifier.
type Item struct {
	Box geo.Envelope
	ID  uint64
}

// Tree is a 2D R-tree. The zero value is not usable; call NewTree.
// Tree is not safe for concurrent mutation; concurrent readers are safe
// when no writer is active.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
	path       []*node // scratch: root-to-leaf path of the in-flight insert
}

type node struct {
	box      geo.Envelope
	leaf     bool
	items    []Item  // populated when leaf
	children []*node // populated when !leaf
}

// NewTree returns an empty R-tree with the given maximum node fan-out
// (DefaultMaxEntries when maxEntries < 4).
func NewTree(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = DefaultMaxEntries
	}
	return &Tree{
		root:       &node{leaf: true, box: geo.EmptyEnvelope()},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5,
	}
}

// BulkLoad builds a tree from items using the STR packing algorithm. The
// resulting tree is near-optimally packed, which is the configuration the
// A1 ablation benchmarks against dynamic insertion.
func BulkLoad(items []Item, maxEntries int) *Tree {
	t := NewTree(maxEntries)
	if len(items) == 0 {
		return t
	}
	cp := make([]Item, len(items))
	copy(cp, items)
	leaves := strPack(cp, t.maxEntries)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = strPackNodes(nodes, t.maxEntries)
	}
	t.root = nodes[0]
	t.size = len(items)
	return t
}

func strPack(items []Item, m int) []*node {
	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Center().X < items[j].Box.Center().X
	})
	nLeaves := (len(items) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * m
	var leaves []*node
	for s := 0; s < len(items); s += sliceSize {
		end := s + sliceSize
		if end > len(items) {
			end = len(items)
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Box.Center().Y < slice[j].Box.Center().Y
		})
		for o := 0; o < len(slice); o += m {
			e := o + m
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slice[o:e]...)}
			leaf.recomputeBox()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(children []*node, m int) []*node {
	sort.Slice(children, func(i, j int) bool {
		return children[i].box.Center().X < children[j].box.Center().X
	})
	nParents := (len(children) + m - 1) / m
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := nSlices * m
	var parents []*node
	for s := 0; s < len(children); s += sliceSize {
		end := s + sliceSize
		if end > len(children) {
			end = len(children)
		}
		slice := children[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].box.Center().Y < slice[j].box.Center().Y
		})
		for o := 0; o < len(slice); o += m {
			e := o + m
			if e > len(slice) {
				e = len(slice)
			}
			p := &node{children: append([]*node(nil), slice[o:e]...)}
			p.recomputeBox()
			parents = append(parents, p)
		}
	}
	return parents
}

func (n *node) recomputeBox() {
	box := geo.EmptyEnvelope()
	if n.leaf {
		for _, it := range n.items {
			box = box.Extend(it.Box)
		}
	} else {
		for _, c := range n.children {
			box = box.Extend(c.box)
		}
	}
	n.box = box
}

// Len reports the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds an item.
func (t *Tree) Insert(it Item) {
	leaf := t.chooseLeaf(t.root, it.Box)
	leaf.items = append(leaf.items, it)
	leaf.box = leaf.box.Extend(it.Box)
	t.size++
	t.adjust(leaf)
}

// chooseLeaf descends picking the child whose box needs least enlargement.
func (t *Tree) chooseLeaf(n *node, box geo.Envelope) *node {
	t.path = t.path[:0]
	for !n.leaf {
		t.path = append(t.path, n)
		best := n.children[0]
		bestDelta := enlargement(best.box, box)
		for _, c := range n.children[1:] {
			d := enlargement(c.box, box)
			if d < bestDelta || (d == bestDelta && c.box.Area() < best.box.Area()) {
				best, bestDelta = c, d
			}
		}
		n = best
	}
	return n
}

func enlargement(box, add geo.Envelope) float64 {
	return box.Extend(add).Area() - box.Area()
}

// adjust walks back up the insertion path, splitting overflowing nodes and
// refreshing bounding boxes.
func (t *Tree) adjust(leaf *node) {
	n := leaf
	for i := len(t.path); ; i-- {
		var parent *node
		if i > 0 {
			parent = t.path[i-1]
		}
		overflow := false
		if n.leaf {
			overflow = len(n.items) > t.maxEntries
		} else {
			overflow = len(n.children) > t.maxEntries
		}
		if overflow {
			a, b := t.split(n)
			if parent == nil {
				t.root = &node{children: []*node{a, b}}
				t.root.recomputeBox()
				return
			}
			// Replace n with a, add b.
			for j, c := range parent.children {
				if c == n {
					parent.children[j] = a
					break
				}
			}
			parent.children = append(parent.children, b)
		}
		if parent == nil {
			n.recomputeBox()
			return
		}
		parent.recomputeBox()
		n = parent
	}
}

// split performs a quadratic split of an overflowing node.
func (t *Tree) split(n *node) (*node, *node) {
	if n.leaf {
		g1, g2 := quadraticSplitItems(n.items, t.minEntries)
		a := &node{leaf: true, items: g1}
		b := &node{leaf: true, items: g2}
		a.recomputeBox()
		b.recomputeBox()
		return a, b
	}
	g1, g2 := quadraticSplitNodes(n.children, t.minEntries)
	a := &node{children: g1}
	b := &node{children: g2}
	a.recomputeBox()
	b.recomputeBox()
	return a, b
}

func quadraticSplitItems(items []Item, minFill int) ([]Item, []Item) {
	seed1, seed2 := pickSeeds(len(items), func(i, j int) float64 {
		return wasted(items[i].Box, items[j].Box)
	})
	g1 := []Item{items[seed1]}
	g2 := []Item{items[seed2]}
	b1, b2 := items[seed1].Box, items[seed2].Box
	for k := range items {
		if k == seed1 || k == seed2 {
			continue
		}
		it := items[k]
		remaining := len(items) - k
		if len(g1)+remaining <= minFill {
			g1 = append(g1, it)
			b1 = b1.Extend(it.Box)
			continue
		}
		if len(g2)+remaining <= minFill {
			g2 = append(g2, it)
			b2 = b2.Extend(it.Box)
			continue
		}
		d1 := enlargement(b1, it.Box)
		d2 := enlargement(b2, it.Box)
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, it)
			b1 = b1.Extend(it.Box)
		} else {
			g2 = append(g2, it)
			b2 = b2.Extend(it.Box)
		}
	}
	return g1, g2
}

func quadraticSplitNodes(children []*node, minFill int) ([]*node, []*node) {
	seed1, seed2 := pickSeeds(len(children), func(i, j int) float64 {
		return wasted(children[i].box, children[j].box)
	})
	g1 := []*node{children[seed1]}
	g2 := []*node{children[seed2]}
	b1, b2 := children[seed1].box, children[seed2].box
	for k := range children {
		if k == seed1 || k == seed2 {
			continue
		}
		c := children[k]
		remaining := len(children) - k
		if len(g1)+remaining <= minFill {
			g1 = append(g1, c)
			b1 = b1.Extend(c.box)
			continue
		}
		if len(g2)+remaining <= minFill {
			g2 = append(g2, c)
			b2 = b2.Extend(c.box)
			continue
		}
		d1 := enlargement(b1, c.box)
		d2 := enlargement(b2, c.box)
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, c)
			b1 = b1.Extend(c.box)
		} else {
			g2 = append(g2, c)
			b2 = b2.Extend(c.box)
		}
	}
	return g1, g2
}

func pickSeeds(n int, waste func(i, j int) float64) (int, int) {
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := waste(i, j); w > worst {
				s1, s2, worst = i, j, w
			}
		}
	}
	return s1, s2
}

func wasted(a, b geo.Envelope) float64 {
	return a.Extend(b).Area() - a.Area() - b.Area()
}

// Search appends to dst the IDs of all items whose boxes intersect query,
// and returns the extended slice. Order is unspecified.
func (t *Tree) Search(query geo.Envelope, dst []uint64) []uint64 {
	return searchNode(t.root, query, dst)
}

func searchNode(n *node, q geo.Envelope, dst []uint64) []uint64 {
	if !n.box.Intersects(q) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(q) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, q, dst)
	}
	return dst
}

// SearchFunc invokes fn for every item whose box intersects query; fn
// returning false stops the search early.
func (t *Tree) SearchFunc(query geo.Envelope, fn func(Item) bool) {
	searchFuncNode(t.root, query, fn)
}

func searchFuncNode(n *node, q geo.Envelope, fn func(Item) bool) bool {
	if !n.box.Intersects(q) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(q) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchFuncNode(c, q, fn) {
			return false
		}
	}
	return true
}

// Delete removes one item with the given ID whose box intersects hint.
// It reports whether an item was removed. Underfull nodes are tolerated
// (no re-insertion); Search correctness is unaffected.
func (t *Tree) Delete(hint geo.Envelope, id uint64) bool {
	if deleteNode(t.root, hint, id) {
		t.size--
		return true
	}
	return false
}

func deleteNode(n *node, hint geo.Envelope, id uint64) bool {
	if !n.box.Intersects(hint) {
		return false
	}
	if n.leaf {
		for i, it := range n.items {
			if it.ID == id {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeBox()
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if deleteNode(c, hint, id) {
			n.recomputeBox()
			return true
		}
	}
	return false
}

// NearestNeighbors appends the IDs of the k items nearest to p (by box
// distance) using best-first branch-and-bound traversal.
func (t *Tree) NearestNeighbors(p geo.Point, k int, dst []uint64) []uint64 {
	if k <= 0 || t.size == 0 {
		return dst
	}
	type cand struct {
		d    float64
		n    *node
		item *Item
	}
	// Simple priority queue via sorted slice (k and node counts are small
	// relative to the fan-out in this workload).
	var pq []cand
	push := func(c cand) {
		i := sort.Search(len(pq), func(i int) bool { return pq[i].d > c.d })
		pq = append(pq, cand{})
		copy(pq[i+1:], pq[i:])
		pq[i] = c
	}
	push(cand{d: boxDist(p, t.root.box), n: t.root})
	found := 0
	for len(pq) > 0 && found < k {
		c := pq[0]
		pq = pq[1:]
		switch {
		case c.item != nil:
			dst = append(dst, c.item.ID)
			found++
		case c.n.leaf:
			for i := range c.n.items {
				it := &c.n.items[i]
				push(cand{d: boxDist(p, it.Box), item: it})
			}
		default:
			for _, ch := range c.n.children {
				push(cand{d: boxDist(p, ch.box), n: ch})
			}
		}
	}
	return dst
}

func boxDist(p geo.Point, b geo.Envelope) float64 {
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return math.Hypot(dx, dy)
}

// Height reports the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
