package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// STR bulk load versus incremental insertion: build cost and resulting
// query performance (the bulk-loaded tree is better packed).
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		items := randomItems(n, 42)
		b.Run(fmt.Sprintf("bulk/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tr := BulkLoad(items, 16); tr.Len() != n {
					b.Fatal("size")
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := NewTree(16)
				for _, it := range items {
					tr.Insert(it)
				}
				if tr.Len() != n {
					b.Fatal("size")
				}
			}
		})
	}
}

func BenchmarkSearch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		items := randomItems(n, 43)
		bulk := BulkLoad(items, 16)
		incr := NewTree(16)
		for _, it := range items {
			incr.Insert(it)
		}
		rng := rand.New(rand.NewSource(44))
		queries := make([]geo.Envelope, 64)
		for i := range queries {
			queries[i] = box(rng.Float64()*95, rng.Float64()*95, 5, 5)
		}
		b.Run(fmt.Sprintf("bulk/n=%d", n), func(b *testing.B) {
			var buf []uint64
			for i := 0; i < b.N; i++ {
				buf = bulk.Search(queries[i%len(queries)], buf[:0])
			}
		})
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			var buf []uint64
			for i := 0; i < b.N; i++ {
				buf = incr.Search(queries[i%len(queries)], buf[:0])
			}
		})
	}
}

func BenchmarkNearestNeighbors(b *testing.B) {
	items := randomItems(10000, 45)
	tr := BulkLoad(items, 16)
	b.ResetTimer()
	var buf []uint64
	for i := 0; i < b.N; i++ {
		buf = tr.NearestNeighbors(geo.Point{X: 50, Y: 50}, 10, buf[:0])
		if len(buf) != 10 {
			b.Fatal("k")
		}
	}
}
