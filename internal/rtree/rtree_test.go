package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func box(x, y, w, h float64) geo.Envelope {
	return geo.Envelope{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// randomItems generates n deterministic pseudo-random boxes.
func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		items[i] = Item{Box: box(x, y, rng.Float64()*2, rng.Float64()*2), ID: uint64(i)}
	}
	return items
}

// bruteSearch is the oracle: linear scan.
func bruteSearch(items []Item, q geo.Envelope) []uint64 {
	var out []uint64
	for _, it := range items {
		if it.Box.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	return out
}

func sortIDs(ids []uint64) []uint64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertSearchAgainstBrute(t *testing.T) {
	items := randomItems(500, 1)
	tr := NewTree(8)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		q := box(rng.Float64()*90, rng.Float64()*90, rng.Float64()*20, rng.Float64()*20)
		got := sortIDs(tr.Search(q, nil))
		want := sortIDs(bruteSearch(items, q))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", i, len(got), len(want))
		}
	}
}

func TestBulkLoadAgainstBrute(t *testing.T) {
	items := randomItems(1000, 3)
	tr := BulkLoad(items, 16)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		q := box(rng.Float64()*90, rng.Float64()*90, rng.Float64()*15, rng.Float64()*15)
		got := sortIDs(tr.Search(q, nil))
		want := sortIDs(bruteSearch(items, q))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", i, len(got), len(want))
		}
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, 16)
	if tr.Len() != 0 {
		t.Fatal("empty bulk load")
	}
	if got := tr.Search(box(0, 0, 100, 100), nil); len(got) != 0 {
		t.Fatal("search on empty tree")
	}
}

func TestBulkLoadSingle(t *testing.T) {
	tr := BulkLoad([]Item{{Box: box(1, 1, 1, 1), ID: 42}}, 16)
	got := tr.Search(box(0, 0, 3, 3), nil)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestSearchFuncEarlyStop(t *testing.T) {
	items := randomItems(200, 5)
	tr := BulkLoad(items, 8)
	count := 0
	tr.SearchFunc(box(0, 0, 100, 100), func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop at %d", count)
	}
}

func TestDelete(t *testing.T) {
	items := randomItems(300, 6)
	tr := NewTree(8)
	for _, it := range items {
		tr.Insert(it)
	}
	// Delete half.
	for _, it := range items[:150] {
		if !tr.Delete(it.Box, it.ID) {
			t.Fatalf("delete %d failed", it.ID)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	// Deleted IDs no longer found; remaining all found.
	got := sortIDs(tr.Search(box(0, 0, 110, 110), nil))
	want := sortIDs(bruteSearch(items[150:], box(0, 0, 110, 110)))
	if !equalIDs(got, want) {
		t.Fatalf("after delete: got %d, want %d", len(got), len(want))
	}
	// Deleting a missing item returns false.
	if tr.Delete(items[0].Box, items[0].ID) {
		t.Fatal("double delete succeeded")
	}
}

func TestNearestNeighbors(t *testing.T) {
	// Grid of unit boxes.
	var items []Item
	id := uint64(0)
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			items = append(items, Item{Box: box(float64(x*10), float64(y*10), 1, 1), ID: id})
			id++
		}
	}
	tr := BulkLoad(items, 8)
	got := tr.NearestNeighbors(geo.Point{X: 0, Y: 0}, 3, nil)
	if len(got) != 3 {
		t.Fatalf("got %d neighbors", len(got))
	}
	// Nearest must be the box at origin (ID 0).
	if got[0] != 0 {
		t.Fatalf("nearest = %d, want 0", got[0])
	}
	// k larger than tree size returns all.
	all := tr.NearestNeighbors(geo.Point{X: 50, Y: 50}, 1000, nil)
	if len(all) != 100 {
		t.Fatalf("got %d, want all 100", len(all))
	}
	if out := tr.NearestNeighbors(geo.Point{}, 0, nil); len(out) != 0 {
		t.Fatal("k=0 should return nothing")
	}
}

func TestHeightGrows(t *testing.T) {
	tr := NewTree(4)
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	for _, it := range randomItems(200, 7) {
		tr.Insert(it)
	}
	if tr.Height() < 3 {
		t.Fatalf("height after 200 inserts with fanout 4 = %d", tr.Height())
	}
}

func TestDuplicateBoxes(t *testing.T) {
	tr := NewTree(4)
	b := box(5, 5, 1, 1)
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Box: b, ID: uint64(i)})
	}
	got := tr.Search(b, nil)
	if len(got) != 50 {
		t.Fatalf("got %d duplicates", len(got))
	}
}

func TestPointBoxes(t *testing.T) {
	// Degenerate zero-area boxes (points) index correctly.
	tr := NewTree(8)
	for i := 0; i < 100; i++ {
		x := float64(i % 10)
		y := float64(i / 10)
		tr.Insert(Item{Box: geo.Envelope{MinX: x, MinY: y, MaxX: x, MaxY: y}, ID: uint64(i)})
	}
	got := tr.Search(box(2, 2, 0.5, 0.5), nil)
	if len(got) != 1 || got[0] != 22 {
		t.Fatalf("got %v", got)
	}
}

func TestMixedBulkThenInsert(t *testing.T) {
	items := randomItems(400, 8)
	tr := BulkLoad(items[:200], 8)
	for _, it := range items[200:] {
		tr.Insert(it)
	}
	q := box(10, 10, 40, 40)
	got := sortIDs(tr.Search(q, nil))
	want := sortIDs(bruteSearch(items, q))
	if !equalIDs(got, want) {
		t.Fatalf("mixed: got %d, want %d", len(got), len(want))
	}
}
