package raster

import (
	"bytes"
	"testing"
)

// Truncation fuzzing: every prefix of a valid .sev file must produce a
// clean error from both the full decoder and the header decoder — never a
// panic and never a silent success.
func TestReadFrameTruncated(t *testing.T) {
	f := Generate(GenOptions{Width: 6, Height: 5, Steps: 1})[0]
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := ReadFrame(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("ReadFrame succeeded on %d/%d byte prefix", cut, len(data))
		}
		if _, err := ReadHeader(bytes.NewReader(data[:cut])); err == nil {
			// The header is a prefix of the file: prefixes at least as
			// long as the header legitimately decode.
			hdrEnd := headerLength(t, data)
			if cut < hdrEnd {
				t.Fatalf("ReadHeader succeeded on %d byte prefix (header ends at %d)", cut, hdrEnd)
			}
		}
	}
	// The full data still decodes after the fuzz loop.
	if _, err := ReadFrame(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
}

// headerLength finds where the header's fixed part ends: ReadHeader needs
// the band directory too, so compute conservatively as everything before
// the first band payload.
func headerLength(t *testing.T, data []byte) int {
	t.Helper()
	// The smallest prefix on which ReadHeader succeeds.
	for n := 0; n <= len(data); n++ {
		if _, err := ReadHeader(bytes.NewReader(data[:n])); err == nil {
			return n
		}
	}
	return len(data) + 1
}

func TestReadFrameCorruptedLengths(t *testing.T) {
	f := Generate(GenOptions{Width: 4, Height: 4, Steps: 1})[0]
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the ID length field (offset 4) to a huge value.
	bad := append([]byte(nil), data...)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("huge string length should error")
	}
	if _, err := ReadHeader(bytes.NewReader(bad)); err == nil {
		t.Fatal("huge string length should error in header decode")
	}
}

func TestReadFrameBitFlips(t *testing.T) {
	f := Generate(GenOptions{Width: 4, Height: 4, Steps: 1})[0]
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flipping bits in the payload must never panic (it may or may not
	// error; pixel bits are opaque).
	for i := 0; i < len(data); i += 13 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x55
		_, _ = ReadFrame(bytes.NewReader(bad))
		_, _ = ReadHeader(bytes.NewReader(bad))
	}
}
