package raster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/scene"
)

func TestGeoRefRoundTrip(t *testing.T) {
	gr := GeoRef{OriginX: 21, OriginY: 40, DX: 0.05, DY: 0.04, SRID: geo.SRIDWGS84}
	p := gr.PixelToLonLat(10, 20)
	row, col := gr.LonLatToPixel(p)
	if row != 10 || col != 20 {
		t.Fatalf("round trip = (%d, %d)", row, col)
	}
	fp := gr.PixelFootprint(0, 0)
	if !geo.Intersects(fp, gr.PixelToLonLat(0, 0)) {
		t.Fatal("pixel centre should lie in its footprint")
	}
	if fp.Area() <= 0 {
		t.Fatal("footprint area")
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	opts := GenOptions{Width: 32, Height: 32, Steps: 2}
	a := Generate(opts)
	b := Generate(opts)
	if len(a) != 2 {
		t.Fatalf("frames = %d", len(a))
	}
	for i := range a {
		for band, img := range a[i].Bands {
			other := b[i].Bands[band]
			for j := range img.Data {
				if img.Data[j] != other.Data[j] {
					t.Fatalf("frame %d band %s cell %d differs", i, band, j)
				}
			}
		}
	}
	// 15-minute cadence.
	if got := a[1].Time.Sub(a[0].Time); got != 15*time.Minute {
		t.Fatalf("cadence = %v", got)
	}
	if a[0].Sensor != "SEVIRI" {
		t.Fatalf("sensor = %q", a[0].Sensor)
	}
	env := a[0].Envelope()
	if !env.Intersects(scene.Region) {
		t.Fatal("frame envelope should cover the region")
	}
}

func TestGenerateFiresAreHot(t *testing.T) {
	frames := Generate(GenOptions{Width: 128, Height: 128, Steps: 6})
	last := frames[5]
	ir39, err := last.Band(BandIR39)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the PineFire location: should be far hotter than background.
	fire := scene.FireEvents()[1] // PineFire, start step 0
	row, col := last.GeoRef.LonLatToPixel(fire.Loc)
	hot := ir39.At2(row, col)
	// Background land pixel away from any fire.
	bgRow, bgCol := last.GeoRef.LonLatToPixel(geo.Point{X: 24.0, Y: 37.8})
	bg := ir39.At2(bgRow, bgCol)
	if hot < bg+20 {
		t.Fatalf("fire pixel %g not much hotter than background %g", hot, bg)
	}
	// IR 10.8 responds much less.
	ir108, _ := last.Band(BandIR108)
	if ir108.At2(row, col) > ir39.At2(row, col) {
		t.Fatal("IR_039 should exceed IR_108 over fire")
	}
	// Sea pixels are cooler than land.
	seaRow, seaCol := last.GeoRef.LonLatToPixel(geo.Point{X: 26.5, Y: 36.3})
	if ir108.At2(seaRow, seaCol) >= ir108.At2(bgRow, bgCol) {
		t.Fatal("sea should be cooler than land at noon")
	}
}

func TestGenerateSpuriousInSea(t *testing.T) {
	// The seeded spurious events must actually lie in the sea, otherwise
	// Scenario 2 cannot demonstrate the refinement.
	land := scene.Landmass()
	for _, fe := range scene.FireEvents() {
		onLand := geo.Intersects(fe.Loc, land)
		if fe.Spurious && onLand {
			t.Errorf("spurious fire %s is on land", fe.Name)
		}
		if !fe.Spurious && !onLand {
			t.Errorf("real fire %s is in the sea", fe.Name)
		}
	}
}

func TestBandMissing(t *testing.T) {
	f := Generate(GenOptions{Width: 8, Height: 8})[0]
	if _, err := f.Band(Band("IR_999")); err == nil {
		t.Fatal("missing band should error")
	}
}

func TestFrameFormatRoundTrip(t *testing.T) {
	f := Generate(GenOptions{Width: 16, Height: 12, Steps: 1})[0]
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || got.Satellite != f.Satellite || got.Sensor != f.Sensor {
		t.Fatal("metadata")
	}
	if !got.Time.Equal(f.Time) {
		t.Fatalf("time %v != %v", got.Time, f.Time)
	}
	if got.GeoRef != f.GeoRef {
		t.Fatalf("georef %+v != %+v", got.GeoRef, f.GeoRef)
	}
	if len(got.Bands) != len(f.Bands) {
		t.Fatalf("bands = %d", len(got.Bands))
	}
	for name, img := range f.Bands {
		gimg := got.Bands[name]
		if gimg == nil {
			t.Fatalf("band %s missing", name)
		}
		for i := range img.Data {
			if img.Data[i] != gimg.Data[i] {
				t.Fatalf("band %s cell %d: %g != %g", name, i, gimg.Data[i], img.Data[i])
			}
		}
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestSaveLoadFrame(t *testing.T) {
	dir := t.TempDir()
	f := Generate(GenOptions{Width: 8, Height: 8})[0]
	path, err := SaveFrame(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Ext(path) != ".sev" {
		t.Fatalf("path = %q", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrame(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID {
		t.Fatal("ID")
	}
	if _, err := LoadFrame(filepath.Join(dir, "missing.sev")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSceneConsistency(t *testing.T) {
	// Sites, towns, forests all on land.
	land := scene.Landmass()
	for _, s := range scene.ArchaeologicalSites() {
		if !geo.Intersects(s.Loc, land) {
			t.Errorf("site %s off land at %v", s.Name, s.Loc)
		}
	}
	for _, s := range scene.Towns() {
		if !geo.Intersects(s.Loc, land) {
			t.Errorf("town %s off land at %v", s.Name, s.Loc)
		}
	}
	for _, f := range scene.Forests() {
		if !geo.Within(f.Area, land) {
			t.Errorf("forest %s not within land", f.Name)
		}
	}
	// Sea and land are disjoint interiors.
	sea := scene.Sea()
	if geo.Area(sea) <= 0 {
		t.Fatal("sea has no area")
	}
	// Analytic land test agrees with the polygon on interior points.
	for _, s := range scene.ArchaeologicalSites() {
		if !scene.OnLandAnalytic(s.Loc) {
			t.Errorf("analytic land test disagrees at %s", s.Name)
		}
	}
	if scene.OnLandAnalytic(geo.Point{X: 26.8, Y: 36.2}) {
		t.Error("far corner should be sea")
	}
	if !scene.OnLand(geo.Point{X: 24, Y: 38}) {
		t.Error("centre should be land")
	}
}
