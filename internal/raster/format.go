package raster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/array"
	"repro/internal/fsx"
	"repro/internal/geo"
)

// The ".sev" binary format: the external scientific file format of the
// synthetic satellite archive. The Data Vault (internal/vault) knows how to
// enumerate and decode these files, mirroring the paper's Data Vault that
// teaches MonetDB external EO formats.
//
// Layout (little endian):
//   magic "SEV1"            4 bytes
//   idLen u32, id           product identifier
//   satLen u32, satellite
//   senLen u32, sensor
//   unixNanos i64           acquisition time
//   originX, originY f64    georeference
//   dx, dy f64
//   srid i32
//   height, width u32
//   nBands u32
//   per band: nameLen u32, name, then h*w f64 values row-major

const sevMagic = "SEV1"

// WriteFrame serialises a frame in .sev format.
func WriteFrame(w io.Writer, f *Frame) error {
	bw := bufio.NewWriter(w)
	wstr := func(s string) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	w64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	w32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	if _, err := bw.WriteString(sevMagic); err != nil {
		return err
	}
	if err := wstr(f.ID); err != nil {
		return err
	}
	if err := wstr(f.Satellite); err != nil {
		return err
	}
	if err := wstr(f.Sensor); err != nil {
		return err
	}
	if err := w64(uint64(f.Time.UnixNano())); err != nil {
		return err
	}
	for _, v := range []float64{f.GeoRef.OriginX, f.GeoRef.OriginY, f.GeoRef.DX, f.GeoRef.DY} {
		if err := w64(math.Float64bits(v)); err != nil {
			return err
		}
	}
	if err := w32(uint32(f.GeoRef.SRID)); err != nil {
		return err
	}
	// All bands must share a shape; take it from any band.
	var h, wd int
	names := make([]string, 0, len(f.Bands))
	for name, img := range f.Bands {
		h, wd = img.Height(), img.Width()
		names = append(names, string(name))
	}
	sort.Strings(names)
	if err := w32(uint32(h)); err != nil {
		return err
	}
	if err := w32(uint32(wd)); err != nil {
		return err
	}
	if err := w32(uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		img := f.Bands[Band(name)]
		if img.Height() != h || img.Width() != wd {
			return fmt.Errorf("raster: band %s shape %dx%d differs from %dx%d", name, img.Height(), img.Width(), h, wd)
		}
		if err := wstr(name); err != nil {
			return err
		}
		for _, v := range img.Data {
			if err := w64(math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFrame deserialises a .sev frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("raster: reading magic: %w", err)
	}
	if string(magic) != sevMagic {
		return nil, fmt.Errorf("raster: bad magic %q", magic)
	}
	r32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	r64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	rstr := func() (string, error) {
		n, err := r32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("raster: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	f := &Frame{Bands: map[Band]*array.Array{}}
	var err error
	if f.ID, err = rstr(); err != nil {
		return nil, err
	}
	if f.Satellite, err = rstr(); err != nil {
		return nil, err
	}
	if f.Sensor, err = rstr(); err != nil {
		return nil, err
	}
	nanos, err := r64()
	if err != nil {
		return nil, err
	}
	f.Time = time.Unix(0, int64(nanos)).UTC()
	var grVals [4]float64
	for i := range grVals {
		bits, err := r64()
		if err != nil {
			return nil, err
		}
		grVals[i] = math.Float64frombits(bits)
	}
	srid, err := r32()
	if err != nil {
		return nil, err
	}
	f.GeoRef = GeoRef{
		OriginX: grVals[0], OriginY: grVals[1],
		DX: grVals[2], DY: grVals[3],
		SRID: geo.SRID(srid),
	}
	h, err := r32()
	if err != nil {
		return nil, err
	}
	w, err := r32()
	if err != nil {
		return nil, err
	}
	nBands, err := r32()
	if err != nil {
		return nil, err
	}
	if h*w > 1<<28 || nBands > 64 {
		return nil, fmt.Errorf("raster: unreasonable frame shape %dx%dx%d", h, w, nBands)
	}
	for b := uint32(0); b < nBands; b++ {
		name, err := rstr()
		if err != nil {
			return nil, err
		}
		img := array.MustNew(name,
			array.Dim{Name: "y", Size: int(h)},
			array.Dim{Name: "x", Size: int(w)})
		for i := range img.Data {
			bits, err := r64()
			if err != nil {
				return nil, err
			}
			img.Data[i] = math.Float64frombits(bits)
		}
		f.Bands[Band(name)] = img
	}
	return f, nil
}

// Header summarises a .sev file without its pixel data: what the Data
// Vault catalogues cheaply at repository-attach time.
type Header struct {
	ID, Satellite, Sensor string
	Time                  time.Time
	GeoRef                GeoRef
	Height, Width         int
	BandNames             []string
}

// ReadHeader decodes only the .sev header, skipping band payloads.
func ReadHeader(r io.Reader) (*Header, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("raster: reading magic: %w", err)
	}
	if string(magic) != sevMagic {
		return nil, fmt.Errorf("raster: bad magic %q", magic)
	}
	r32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	r64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	rstr := func() (string, error) {
		n, err := r32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("raster: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	h := &Header{}
	var err error
	if h.ID, err = rstr(); err != nil {
		return nil, err
	}
	if h.Satellite, err = rstr(); err != nil {
		return nil, err
	}
	if h.Sensor, err = rstr(); err != nil {
		return nil, err
	}
	nanos, err := r64()
	if err != nil {
		return nil, err
	}
	h.Time = time.Unix(0, int64(nanos)).UTC()
	var grVals [4]float64
	for i := range grVals {
		bits, err := r64()
		if err != nil {
			return nil, err
		}
		grVals[i] = math.Float64frombits(bits)
	}
	srid, err := r32()
	if err != nil {
		return nil, err
	}
	h.GeoRef = GeoRef{OriginX: grVals[0], OriginY: grVals[1], DX: grVals[2], DY: grVals[3], SRID: geo.SRID(srid)}
	ht, err := r32()
	if err != nil {
		return nil, err
	}
	wd, err := r32()
	if err != nil {
		return nil, err
	}
	h.Height, h.Width = int(ht), int(wd)
	nBands, err := r32()
	if err != nil {
		return nil, err
	}
	for b := uint32(0); b < nBands; b++ {
		name, err := rstr()
		if err != nil {
			return nil, err
		}
		h.BandNames = append(h.BandNames, name)
		// Skip the payload.
		if _, err := br.Discard(int(ht) * int(wd) * 8); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Envelope reports the geographic bounding box described by the header.
func (h *Header) Envelope() geo.Envelope {
	return geo.Envelope{
		MinX: h.GeoRef.OriginX,
		MaxX: h.GeoRef.OriginX + float64(h.Width)*h.GeoRef.DX,
		MaxY: h.GeoRef.OriginY,
		MinY: h.GeoRef.OriginY - float64(h.Height)*h.GeoRef.DY,
	}
}

// SaveFrame writes a frame to <dir>/<id>.sev. The write is atomic
// (temp/fsync/rename via fsx): vault repositories are catalogued by
// scanning the directory, so a torn frame from a crashed writer would
// otherwise poison every later attach.
func SaveFrame(dir string, f *Frame) (string, error) {
	path := filepath.Join(dir, f.ID+".sev")
	if err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteFrame(w, f)
	}); err != nil {
		return "", err
	}
	return path, nil
}

// LoadFrame reads a frame from a .sev file.
func LoadFrame(path string) (*Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadFrame(file)
}
