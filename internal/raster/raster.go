// Package raster implements the synthetic MSG/SEVIRI substrate: multiband
// brightness-temperature rasters with acquisition metadata and an affine
// georeference, a deterministic scene generator seeding the demo's fire
// events, and the binary ".sev" file format the Data Vault ingests.
//
// The real SEVIRI feed is proprietary; this generator produces frames with
// the same structure (IR brightness temperatures, 15-minute repeat cycle,
// coastal mixed pixels) so the NOA chain exercises identical code paths.
package raster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/scene"
)

// Band identifies a spectral channel. The hotspot chain uses the two
// SEVIRI thermal channels.
type Band string

// SEVIRI channels used by the NOA fire product.
const (
	BandIR39  Band = "IR_039" // 3.9 um: fire-sensitive
	BandIR108 Band = "IR_108" // 10.8 um: background surface temperature
	BandVIS06 Band = "VIS006" // 0.6 um: visible (daytime context)
)

// GeoRef is an affine mapping from pixel (row, col) centres to WGS84
// (lon, lat): lon = OriginX + (col+0.5)*DX, lat = OriginY - (row+0.5)*DY.
type GeoRef struct {
	OriginX, OriginY float64 // top-left corner
	DX, DY           float64 // pixel sizes in degrees (both positive)
	SRID             geo.SRID
}

// PixelToLonLat maps a pixel centre to geographic coordinates.
func (g GeoRef) PixelToLonLat(row, col int) geo.Point {
	return geo.Point{
		X: g.OriginX + (float64(col)+0.5)*g.DX,
		Y: g.OriginY - (float64(row)+0.5)*g.DY,
	}
}

// LonLatToPixel maps geographic coordinates to the containing pixel.
func (g GeoRef) LonLatToPixel(p geo.Point) (row, col int) {
	col = int((p.X - g.OriginX) / g.DX)
	row = int((g.OriginY - p.Y) / g.DY)
	return row, col
}

// PixelFootprint returns the ground footprint polygon of pixel (row, col).
func (g GeoRef) PixelFootprint(row, col int) geo.Polygon {
	x0 := g.OriginX + float64(col)*g.DX
	y1 := g.OriginY - float64(row)*g.DY
	return geo.Rect(x0, y1-g.DY, x0+g.DX, y1)
}

// PixelEnvelope is PixelFootprint's bounding box without materialising
// the polygon (the annotation fan-out calls this per patch corner).
func (g GeoRef) PixelEnvelope(row, col int) geo.Envelope {
	x0 := g.OriginX + float64(col)*g.DX
	y1 := g.OriginY - float64(row)*g.DY
	return geo.Envelope{MinX: x0, MinY: y1 - g.DY, MaxX: x0 + g.DX, MaxY: y1}
}

// Frame is one acquisition: a set of co-registered bands plus metadata.
type Frame struct {
	// ID is the product identifier (e.g. "MSG2-20070825-1200").
	ID string
	// Satellite and Sensor describe the platform.
	Satellite, Sensor string
	// Time is the acquisition timestamp.
	Time time.Time
	// GeoRef georeferences every band.
	GeoRef GeoRef
	// Bands maps channel to image.
	Bands map[Band]*array.Array
}

// Band returns the image for channel b, or an error.
func (f *Frame) Band(b Band) (*array.Array, error) {
	img, ok := f.Bands[b]
	if !ok {
		return nil, fmt.Errorf("raster: frame %s has no band %s", f.ID, b)
	}
	return img, nil
}

// Envelope reports the geographic bounding box of the frame.
func (f *Frame) Envelope() geo.Envelope {
	for _, img := range f.Bands {
		h, w := img.Height(), img.Width()
		tl := f.GeoRef.PixelToLonLat(0, 0)
		br := f.GeoRef.PixelToLonLat(h-1, w-1)
		return geo.EmptyEnvelope().
			ExtendPoint(tl.X-f.GeoRef.DX/2, tl.Y+f.GeoRef.DY/2).
			ExtendPoint(br.X+f.GeoRef.DX/2, br.Y-f.GeoRef.DY/2)
	}
	return geo.EmptyEnvelope()
}

// GenOptions parameterise the synthetic scene generator.
type GenOptions struct {
	// Width and Height give the pixel grid (SEVIRI over the region of
	// interest; the demo uses grids from 64^2 up to ~2048^2).
	Width, Height int
	// Steps is the number of 15-minute frames to generate.
	Steps int
	// Start is the acquisition time of frame 0.
	Start time.Time
	// Fires seeds the scenario; nil uses scene.FireEvents.
	Fires []scene.FireEvent
	// Seed perturbs the deterministic noise field.
	Seed uint64
}

// DefaultStart is the demo scenario epoch: 25 August 2007, the Peloponnese
// fires referenced in the paper's flagship query.
var DefaultStart = time.Date(2007, 8, 25, 12, 0, 0, 0, time.UTC)

func (o *GenOptions) fill() {
	if o.Width == 0 {
		o.Width = 128
	}
	if o.Height == 0 {
		o.Height = 128
	}
	if o.Steps == 0 {
		o.Steps = 1
	}
	if o.Start.IsZero() {
		o.Start = DefaultStart
	}
	if o.Fires == nil {
		o.Fires = scene.FireEvents()
	}
}

// Generate produces the synthetic frame sequence.
func Generate(opts GenOptions) []*Frame {
	opts.fill()
	gr := GeoRef{
		OriginX: scene.Region.MinX,
		OriginY: scene.Region.MaxY,
		DX:      scene.Region.Width() / float64(opts.Width),
		DY:      scene.Region.Height() / float64(opts.Height),
		SRID:    geo.SRIDWGS84,
	}
	frames := make([]*Frame, 0, opts.Steps)
	for step := 0; step < opts.Steps; step++ {
		ts := opts.Start.Add(time.Duration(step) * 15 * time.Minute)
		f := &Frame{
			ID:        fmt.Sprintf("MSG2-%s", ts.Format("20060102-1504")),
			Satellite: "Meteosat-9",
			Sensor:    "SEVIRI",
			Time:      ts,
			GeoRef:    gr,
			Bands:     map[Band]*array.Array{},
		}
		ir39 := array.MustNew("IR_039", array.Dim{Name: "y", Size: opts.Height}, array.Dim{Name: "x", Size: opts.Width})
		ir108 := array.MustNew("IR_108", array.Dim{Name: "y", Size: opts.Height}, array.Dim{Name: "x", Size: opts.Width})
		vis := array.MustNew("VIS006", array.Dim{Name: "y", Size: opts.Height}, array.Dim{Name: "x", Size: opts.Width})
		for y := 0; y < opts.Height; y++ {
			for x := 0; x < opts.Width; x++ {
				p := gr.PixelToLonLat(y, x)
				onLand := scene.OnLandAnalytic(p)
				// Diurnal background: land warmer and with a larger
				// diurnal swing than sea.
				hour := float64(ts.Hour()) + float64(ts.Minute())/60
				diurnal := math.Sin((hour - 6) / 24 * 2 * math.Pi)
				var base float64
				if onLand {
					base = 300 + 8*diurnal
				} else {
					base = 290 + 1.5*diurnal
				}
				// Terrain/noise texture (deterministic).
				n := noise2(x, y, opts.Seed)
				t108 := base + 2.5*n
				t39 := t108 + 1.0 + 0.5*noise2(x+7919, y+104729, opts.Seed)
				// Seeded fires raise the 3.9um channel strongly and the
				// 10.8um weakly, as real subpixel fires do.
				for _, fe := range opts.Fires {
					if step < fe.StartStep {
						continue
					}
					age := float64(step - fe.StartStep)
					radius := (0.5 + fe.Growth*age) * gr.DX * 1.2
					d := math.Hypot(p.X-fe.Loc.X, p.Y-fe.Loc.Y)
					if d < radius*3 {
						intensity := fe.PeakDT * math.Exp(-d*d/(2*radius*radius)) * (1 - math.Exp(-(age+1)/2))
						t39 += intensity
						t108 += intensity * 0.25
					}
				}
				ir39.Set2(y, x, t39)
				ir108.Set2(y, x, t108)
				if onLand {
					vis.Set2(y, x, 0.25+0.05*n)
				} else {
					vis.Set2(y, x, 0.06+0.01*n)
				}
			}
		}
		f.Bands[BandIR39] = ir39
		f.Bands[BandIR108] = ir108
		f.Bands[BandVIS06] = vis
		frames = append(frames, f)
	}
	return frames
}

// noise2 is a deterministic value-noise stand-in: a hash of the cell
// coordinates mapped to [-1, 1].
func noise2(x, y int, seed uint64) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ (seed+1)*0x165667B19E3779F9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h%2000)/1000 - 1
}
