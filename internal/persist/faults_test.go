package persist

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/stsparql"
)

// The chaos suite: every test arms a named failpoint, drives the store
// through it, and proves the documented degraded-but-correct outcome —
// vetoed writes stay vetoed, acked writes survive recovery, and no
// fault leaks into a later test (faults.Reset on cleanup). None of
// these tests may run in parallel: failpoints are process-global.

func armFaults(t *testing.T, spec string) {
	t.Helper()
	t.Cleanup(faults.Reset)
	if err := faults.EnableFromSpec(spec); err != nil {
		t.Fatalf("EnableFromSpec(%q): %v", spec, err)
	}
}

// TestFsyncFailureVetoesWriteButRecovers: on the legacy synchronous
// path (NoGroupCommit), an fsync error on an acked-durability WAL must
// veto exactly that mutation (memory unchanged, rollback truncates the
// record) and the store must keep accepting writes afterwards — the
// degraded state is "one update refused", not "log poisoned". The
// group-commit path deliberately trades this recovery for the broken
// latch (TestGroupFsyncFailureLatchesBroken) because its mutations are
// applied before the fsync runs.
func TestFsyncFailureVetoesWriteButRecovers(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways; o.NoGroupCommit = true })
	if !st.Add(tr("a", "p", "b")) {
		t.Fatal("first add refused")
	}

	armFaults(t, "wal/fsync=1*error(disk full)->off")
	if st.Add(tr("a", "p", "vetoed")) {
		t.Fatal("add acked despite fsync failure")
	}
	if st.JournalVetoes() != 1 {
		t.Fatalf("vetoes = %d, want 1", st.JournalVetoes())
	}
	if err := st.JournalErr(); err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("JournalErr = %v, want injected", err)
	}
	if err := m.Broken(); err != nil {
		t.Fatalf("wal latched broken after a rolled-back append: %v", err)
	}

	// The failpoint is spent; the log must accept the next write.
	if !st.Add(tr("a", "p", "c")) {
		t.Fatal("add after recovery refused")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
	if recovered.Len() != 2 {
		t.Fatalf("recovered %d triples, want 2 (vetoed write must not replay)", recovered.Len())
	}
}

// TestTornAppendRollsBack: on the legacy synchronous path, a write that
// lands only a prefix of the record (power cut mid-write) is truncated
// away by rollback; the next append reuses the sequence number and
// recovery sees a clean log.
func TestTornAppendRollsBack(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways; o.NoGroupCommit = true })
	st.Add(tr("a", "p", "b"))

	armFaults(t, "wal/append-write=1*torn(7)->off")
	if st.Add(tr("a", "p", "torn")) {
		t.Fatal("add acked despite torn write")
	}
	if !st.Add(tr("a", "p", "c")) {
		t.Fatal("add after rollback refused")
	}
	seqAfter := m.Stats().LastSeq
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
	if got := m2.Stats().LastSeq; got != seqAfter {
		t.Fatalf("recovered at seq %d, want %d", got, seqAfter)
	}
}

// TestRollbackFailureLatchesBroken is the legacy-path double fault: the
// append tears AND the truncate that would clean it up fails. The
// documented degradation is read-only mode — every further write vetoed
// with errWALBroken, Manager.Broken() non-nil (the endpoint's
// degraded-mode trigger) — and a restart re-truncates the garbage and
// clears the latch with only acked data surviving.
func TestRollbackFailureLatchesBroken(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways; o.NoGroupCommit = true })
	st.Add(tr("a", "p", "b"))

	armFaults(t, "wal/append-write=1*torn(7)->off;wal/rollback=1*error(io)->off")
	if st.Add(tr("a", "p", "torn")) {
		t.Fatal("add acked despite torn write")
	}
	if m.Broken() == nil {
		t.Fatal("Broken() = nil after failed rollback")
	}
	// Degraded mode: reads fine, writes vetoed until restart.
	if st.Add(tr("a", "p", "refused")) {
		t.Fatal("broken wal acked a write")
	}
	if err := st.JournalErr(); !errors.Is(err, errWALBroken) {
		t.Fatalf("JournalErr = %v, want errWALBroken", err)
	}
	if st.Len() != 1 {
		t.Fatalf("degraded store has %d triples, want 1", st.Len())
	}
	m.Close()

	// Restart: openSegmentForAppend truncates the 7 torn bytes, the
	// latch is gone, and only the acked triple is back.
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	if err := m2.Broken(); err != nil {
		t.Fatalf("Broken() survived a restart: %v", err)
	}
	assertSameContent(t, st, recovered)
	if !recovered.Add(tr("a", "p", "c")) {
		t.Fatal("recovered wal refused a write")
	}
}

// TestGroupFsyncFailureLatchesBroken: on the group-commit path the
// batch fsync runs after its mutations were applied in memory, so a
// fsync failure cannot be a clean veto — the rollback truncates the
// batch bytes but memory is now ahead of the log. The documented
// degradation is the broken latch: writer gets a failure, every further
// write is vetoed, checkpoints refuse to persist the divergence, and a
// restart recovers exactly the acked prefix.
func TestGroupFsyncFailureLatchesBroken(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways })
	if !st.Add(tr("a", "p", "b")) {
		t.Fatal("first add refused")
	}

	armFaults(t, "wal/group-fsync=1*error(disk full)->off")
	if st.Add(tr("a", "p", "lost")) {
		t.Fatal("add acked despite batch fsync failure")
	}
	if st.JournalVetoes() != 1 {
		t.Fatalf("vetoes = %d, want 1", st.JournalVetoes())
	}
	if m.Broken() == nil {
		t.Fatal("Broken() = nil after a failed batch")
	}
	// The failed mutation was applied before its batch ran — memory is
	// deliberately ahead of the log here; that divergence is exactly why
	// the latch exists.
	if st.Len() != 2 {
		t.Fatalf("store has %d triples, want 2 (applied-but-not-durable)", st.Len())
	}
	if st.Add(tr("a", "p", "refused")) {
		t.Fatal("broken wal acked a write")
	}
	if err := m.Checkpoint(); !errors.Is(err, errWALBroken) {
		t.Fatalf("Checkpoint on a broken wal = %v, want errWALBroken (must not snapshot the divergence)", err)
	}
	m.Close()

	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	if err := m2.Broken(); err != nil {
		t.Fatalf("Broken() survived a restart: %v", err)
	}
	if recovered.Len() != 1 {
		t.Fatalf("recovered %d triples, want 1 (only the acked write)", recovered.Len())
	}
	if recovered.Add(tr("a", "p", "b")) {
		t.Fatal("acked triple missing after recovery")
	}
	if !recovered.Add(tr("a", "p", "lost")) {
		t.Fatal("unacked triple resurrected by recovery")
	}
}

// TestGroupTornBatchDoubleFaultRestartRecovers: the group-path double
// fault — the batch write tears AND the rollback truncate fails,
// leaving garbage bytes at the segment tail. The latch holds until a
// restart, whose recovery truncates the torn tail and comes back with
// exactly the acked data, writable again.
func TestGroupTornBatchDoubleFaultRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways })
	st.Add(tr("a", "p", "b"))

	armFaults(t, "wal/append-write=1*torn(7)->off;wal/rollback=1*error(io)->off")
	if st.Add(tr("a", "p", "torn")) {
		t.Fatal("add acked despite torn batch write")
	}
	if m.Broken() == nil {
		t.Fatal("Broken() = nil after torn batch + failed rollback")
	}
	if st.Add(tr("a", "p", "refused")) {
		t.Fatal("broken wal acked a write")
	}
	if err := st.JournalErr(); !errors.Is(err, errWALBroken) {
		t.Fatalf("JournalErr = %v, want errWALBroken", err)
	}
	m.Close()

	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	if err := m2.Broken(); err != nil {
		t.Fatalf("Broken() survived a restart: %v", err)
	}
	if recovered.Len() != 1 {
		t.Fatalf("recovered %d triples, want 1", recovered.Len())
	}
	if !recovered.Add(tr("a", "p", "c")) {
		t.Fatal("recovered wal refused a write")
	}
}

// TestGroupEnqueueFaultVetoesWriteMemoryUnchanged: an enqueue-time
// failure happens before anything is applied, so it keeps the classic
// clean-veto contract — memory untouched, no latch, next write fine.
func TestGroupEnqueueFaultVetoesWriteMemoryUnchanged(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways })
	st.Add(tr("a", "p", "b"))

	armFaults(t, "wal/group-enqueue=1*error(queue full)->off")
	if st.Add(tr("a", "p", "vetoed")) {
		t.Fatal("add acked despite enqueue fault")
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d triples after a synchronous veto, want 1", st.Len())
	}
	if st.JournalVetoes() != 1 {
		t.Fatalf("vetoes = %d, want 1", st.JournalVetoes())
	}
	if err := m.Broken(); err != nil {
		t.Fatalf("enqueue veto must not latch broken: %v", err)
	}
	if !st.Add(tr("a", "p", "c")) {
		t.Fatal("add after enqueue veto refused")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}

// TestSnapshotWriteFailureKeepsOldGeneration: a failed checkpoint must
// surface its error, leave the previous snapshot generation and the
// full WAL in place, and a later checkpoint must succeed.
func TestSnapshotWriteFailureKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, nil)
	st.AddAll(equivTriples(rand.New(rand.NewSource(1)), 10))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snapsBefore, _ := listSnapshots(dir)
	st.Add(tr("a", "p", "late"))

	armFaults(t, "snapshot/write=1*error(enospc)->off")
	if err := m.Checkpoint(); err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Checkpoint error = %v, want injected", err)
	}
	snapsAfter, _ := listSnapshots(dir)
	if len(snapsAfter) != len(snapsBefore) || snapsAfter[0] != snapsBefore[0] {
		t.Fatalf("failed checkpoint changed snapshots: %v -> %v", snapsBefore, snapsAfter)
	}

	// The failpoint is spent; checkpointing resumes.
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after fault: %v", err)
	}
	m.Close()
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}

// TestTornRenameLeavesTmpRecoveryIgnores models a crash between the
// temp file's fsync and its rename: the stray .tmp stays on disk,
// recovery never confuses it for a snapshot, and the next successful
// checkpoint sweeps it away.
func TestTornRenameLeavesTmpRecoveryIgnores(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, nil)
	st.AddAll(equivTriples(rand.New(rand.NewSource(2)), 10))

	armFaults(t, "fsx/rename=1*error(crash before rename)->off")
	if err := m.Checkpoint(); err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Checkpoint error = %v, want injected", err)
	}
	if n := countTmpFiles(t, dir); n != 1 {
		t.Fatalf("%d stray .tmp files, want 1", n)
	}
	m.Close()

	m2, recovered := mustOpen(t, dir, nil)
	assertSameContent(t, st, recovered)
	if err := m2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after reopen: %v", err)
	}
	if n := countTmpFiles(t, dir); n != 0 {
		t.Fatalf("%d stray .tmp files after cleanup, want 0", n)
	}
	m2.Close()
}

func countTmpFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			n++
		}
	}
	return n
}

// TestCorruptSnapshotFallsBackAGeneration: when the newest snapshot is
// unreadable at boot (colpack/open injected), recovery degrades to the
// previous generation plus the retained WAL tail — cleanup prunes the
// log against the OLDEST kept snapshot precisely so this costs nothing.
// A 400-query corpus then proves the fallback store is indistinguishable
// from the live one.
func TestCorruptSnapshotFallsBackAGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	dir := t.TempDir()
	m, st := mustOpen(t, dir, nil)
	triples := equivTriples(rng, 20)
	st.AddAll(triples[:10])
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.AddAll(triples[10:])
	for i := 0; i < 5; i++ {
		st.Remove(triples[rng.Intn(len(triples))])
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.AddAll(equivTriples(rng, 5))
	m.Close()
	if snaps, _ := listSnapshots(dir); len(snaps) < 2 {
		t.Fatalf("want 2 snapshot generations on disk, have %d", len(snaps))
	}

	// One injected open failure hits the newest generation only.
	armFaults(t, "colpack/open=1*error(bad magic)->off")
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	// Hits counts every evaluation — the injected failure on the newest
	// generation plus the quiet pass-through on the fallback.
	if faults.Hits("colpack/open") < 2 {
		t.Fatalf("colpack/open hit %d times, want >= 2 (fail newest, pass fallback)", faults.Hits("colpack/open"))
	}
	assertSameContent(t, st, recovered)

	live, replayed := stsparql.New(st), stsparql.New(recovered)
	for qi := 0; qi < 400; qi++ {
		q := equivQuery(rng)
		lres, lerr := live.Query(q)
		rres, rerr := replayed.Query(q)
		if (lerr == nil) != (rerr == nil) {
			t.Fatalf("query %d error divergence: live=%v fallback=%v\n%s", qi, lerr, rerr, q)
		}
		if lerr != nil {
			continue
		}
		l, r := canonResult(t, lres), canonResult(t, rres)
		if len(l) != len(r) {
			t.Fatalf("query %d: %d vs %d rows\n%s", qi, len(l), len(r), q)
		}
		for i := range l {
			if l[i] != r[i] {
				t.Fatalf("query %d row %d:\nlive     %s\nfallback %s\n%s", qi, i, l[i], r[i], q)
			}
		}
	}
}

// TestSlowDiskIsSlowNotWrong: latency injection on the group fsync path
// must delay the ack without corrupting anything — the "slow disk"
// failure mode degrades throughput, never correctness. A sequential
// writer gets a one-record batch per add, so each add pays one injected
// sleep before its ticket resolves.
func TestSlowDiskIsSlowNotWrong(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways })
	armFaults(t, "wal/group-fsync=3*sleep(30ms)->off")

	start := time.Now()
	for i := 0; i < 3; i++ {
		if !st.Add(tr("a", "p", fmt.Sprintf("o%d", i))) {
			t.Fatalf("slow add %d refused", i)
		}
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("3 adds took %v, want >= 90ms of injected latency", elapsed)
	}
	if faults.Hits("wal/group-fsync") != 3 {
		t.Fatalf("wal/group-fsync hit %d times, want 3", faults.Hits("wal/group-fsync"))
	}
	m.Close()
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}
