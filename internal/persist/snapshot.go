package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/colpack"
	"repro/internal/faults"
	"repro/internal/fsx"
	"repro/internal/rdf"
	"repro/internal/strabon"
)

// Snapshots come in two formats, selected by Options.SnapshotFormat
// and distinguished on read by the leading 8-byte magic (both formats
// keep the WAL sequence at byte offset 8, so tooling that sniffs
// (magic, seq) works on either):
//
//   - FormatPacked (default, "TELPACK1"): the compressed, mmap-able
//     columnar format of internal/colpack. Recovery opens it read-only
//     via mmap and the store answers queries IN PLACE — no column,
//     posting-list or dictionary materialisation — so
//     restart-to-first-query is independent of dataset size and the
//     on-disk bytes double as the working representation for
//     larger-than-RAM datasets.
//   - FormatRaw ("TELSNAP1"): the PR 4 raw columnar dump below, kept
//     as an escape hatch and for migration.
//
// Either format can be recovered regardless of the configured writer
// format; the next checkpoint then converts the directory.
//
// Raw binary columnar snapshot: layout of snap-<seq>.snap (16 hex
// digits, seq = the last WAL sequence number the snapshot covers), all
// integers little-endian:
//
//	8  bytes  magic "TELSNAP1"
//	8  bytes  seq
//	8  bytes  store version at capture
//	8  bytes  d — dictionary section length in bytes
//	d  bytes  dictionary (rdf.Dictionary.WriteTo)
//	8  bytes  n — number of triples
//	8n bytes  S column   (dictionary ids)
//	8n bytes  P column
//	8n bytes  O column
//	8  bytes  g — number of cached geometries
//	8g bytes  spatial literal ids, ascending
//	4  bytes  CRC-32 (IEEE) of every preceding byte
//
// The file is produced via write-temp/fsync/rename (fsx.WriteFileAtomic),
// so a crash during checkpointing leaves at worst a stray .tmp that
// recovery ignores. The trailing whole-file CRC lets recovery reject a
// bit-flipped or short snapshot and fall back to the previous one.

const (
	snapMagic     = "TELSNAP1"
	snapPrefix    = "snap-"
	snapSuffix    = ".snap"
	colChunkTerms = 4096 // ids buffered per column write/read
)

// Snapshot format names (Options.SnapshotFormat, -snapshot-format).
const (
	FormatPacked = "packed"
	FormatRaw    = "raw"
)

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	return parseSeqName(name, snapPrefix, snapSuffix)
}

// listSnapshots returns snapshot files in dir sorted newest (highest
// seq) first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type snap struct {
		name string
		seq  uint64
	}
	var snaps []snap
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSnapName(e.Name()); ok {
			snaps = append(snaps, snap{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = filepath.Join(dir, s.name)
	}
	return out, nil
}

// crcWriter tees everything written through it into a CRC-32.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.h.Write(p[:n])
	return n, err
}

// crcReader tees everything read through it into a CRC-32.
type crcReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	return n, err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeColumn(w io.Writer, col []uint64) error {
	buf := make([]byte, 8*colChunkTerms)
	for off := 0; off < len(col); off += colChunkTerms {
		end := off + colChunkTerms
		if end > len(col) {
			end = len(col)
		}
		b := buf[:8*(end-off)]
		for i, v := range col[off:end] {
			binary.LittleEndian.PutUint64(b[8*i:], v)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func readColumn(r io.Reader, n uint64) ([]uint64, error) {
	col := make([]uint64, n)
	buf := make([]byte, 8*colChunkTerms)
	for off := uint64(0); off < n; off += colChunkTerms {
		end := off + colChunkTerms
		if end > n {
			end = n
		}
		b := buf[:8*(end-off)]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := range col[off:end] {
			col[off+uint64(i)] = binary.LittleEndian.Uint64(b[8*i:])
		}
	}
	return col, nil
}

// writeSnapshot atomically writes sn (covering WAL records through seq)
// to dir in the requested format and returns the file path.
func writeSnapshot(dir string, sn *strabon.Snapshot, seq uint64, format string) (string, error) {
	if err := faults.Eval("snapshot/write"); err != nil {
		return "", err
	}
	if format == FormatRaw {
		return writeRawSnapshot(dir, sn, seq)
	}
	return writePackedSnapshot(dir, sn, seq)
}

// writePackedSnapshot serialises sn in the compressed, mmap-able
// colpack format.
func writePackedSnapshot(dir string, sn *strabon.Snapshot, seq uint64) (string, error) {
	path := filepath.Join(dir, snapName(seq))
	err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return colpack.Write(w, sn.PackData(seq))
	})
	if err != nil {
		return "", err
	}
	return path, nil
}

func writeRawSnapshot(dir string, sn *strabon.Snapshot, seq uint64) (string, error) {
	if sn.Mapped() {
		// Unreachable through Checkpoint (an unmutated mapped store is
		// never re-serialised, and any mutation materialises it), but
		// the raw encoder needs the heap dictionary.
		return "", fmt.Errorf("persist: cannot write a raw snapshot from a mapped view")
	}
	path := filepath.Join(dir, snapName(seq))
	err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		cw := &crcWriter{w: w, h: crc32.NewIEEE()}
		if _, err := cw.Write([]byte(snapMagic)); err != nil {
			return err
		}
		if err := writeU64(cw, seq); err != nil {
			return err
		}
		if err := writeU64(cw, sn.Version()); err != nil {
			return err
		}
		// The dictionary section is length-prefixed so the reader can
		// hand ReadDictionary an exact byte range (it buffers internally
		// and would otherwise consume bytes past its section).
		var dictBuf bytes.Buffer
		if _, err := sn.Dict().WriteTo(&dictBuf); err != nil {
			return err
		}
		if err := writeU64(cw, uint64(dictBuf.Len())); err != nil {
			return err
		}
		if _, err := cw.Write(dictBuf.Bytes()); err != nil {
			return err
		}
		if err := writeU64(cw, uint64(len(sn.S))); err != nil {
			return err
		}
		for _, col := range [][]uint64{sn.S, sn.P, sn.O} {
			if err := writeColumn(cw, col); err != nil {
				return err
			}
		}
		geomIDs := sn.GeomIDs()
		if err := writeU64(cw, uint64(len(geomIDs))); err != nil {
			return err
		}
		if err := writeColumn(cw, geomIDs); err != nil {
			return err
		}
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], cw.h.Sum32())
		_, err := w.Write(trailer[:])
		return err
	})
	if err != nil {
		return "", err
	}
	return path, nil
}

// sniffSnapshotFormat reads a snapshot file's leading magic and maps
// it to a format name.
func sniffSnapshotFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return "", fmt.Errorf("persist: snapshot %s: too short", filepath.Base(path))
	}
	switch string(magic[:]) {
	case colpack.Magic:
		return FormatPacked, nil
	case snapMagic:
		return FormatRaw, nil
	}
	return "", fmt.Errorf("persist: snapshot %s: bad magic", filepath.Base(path))
}

// readSnapshot loads and validates one snapshot file of either format
// (dispatching on the leading magic), returning the restored store and
// the WAL sequence number it covers. A packed snapshot restores as a
// mapped store: the file is verified, mmap-ed and served in place, so
// this returns in O(verify) regardless of dataset size.
func readSnapshot(path string) (*strabon.Store, uint64, error) {
	format, err := sniffSnapshotFormat(path)
	if err != nil {
		return nil, 0, err
	}
	if format == FormatPacked {
		return readPackedSnapshot(path)
	}
	return readRawSnapshot(path)
}

func readPackedSnapshot(path string) (*strabon.Store, uint64, error) {
	r, err := colpack.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(path), err)
	}
	st, err := strabon.RestorePacked(r)
	if err != nil {
		r.Close()
		return nil, 0, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(path), err)
	}
	return st, r.Seq(), nil
}

func readRawSnapshot(path string) (*strabon.Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if fi.Size() < int64(len(snapMagic))+8+8+4 {
		return nil, 0, fmt.Errorf("persist: snapshot %s: too short", filepath.Base(path))
	}
	br := bufio.NewReaderSize(f, 1<<16)
	cr := &crcReader{r: br, h: crc32.NewIEEE()}
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(cr, magic); err != nil || string(magic) != snapMagic {
		return nil, 0, fmt.Errorf("persist: snapshot %s: bad magic", filepath.Base(path))
	}
	seq, err := readU64(cr)
	if err != nil {
		return nil, 0, err
	}
	version, err := readU64(cr)
	if err != nil {
		return nil, 0, err
	}
	dictLen, err := readU64(cr)
	if err != nil {
		return nil, 0, err
	}
	if dictLen > uint64(fi.Size()) {
		return nil, 0, fmt.Errorf("persist: snapshot %s: implausible dictionary length %d", filepath.Base(path), dictLen)
	}
	dictBytes := make([]byte, dictLen)
	if _, err := io.ReadFull(cr, dictBytes); err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot %s: dictionary: %w", filepath.Base(path), err)
	}
	dict, err := rdf.ReadDictionary(bytes.NewReader(dictBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot %s: dictionary: %w", filepath.Base(path), err)
	}
	n, err := readU64(cr)
	if err != nil {
		return nil, 0, err
	}
	// Sanity-bound n against the file size before allocating 3*8n bytes.
	if n > uint64(fi.Size())/24 {
		return nil, 0, fmt.Errorf("persist: snapshot %s: implausible triple count %d", filepath.Base(path), n)
	}
	cols := make([][]uint64, 3)
	for i := range cols {
		if cols[i], err = readColumn(cr, n); err != nil {
			return nil, 0, fmt.Errorf("persist: snapshot %s: column %d: %w", filepath.Base(path), i, err)
		}
	}
	g, err := readU64(cr)
	if err != nil {
		return nil, 0, err
	}
	if g > uint64(fi.Size())/8 {
		return nil, 0, fmt.Errorf("persist: snapshot %s: implausible geometry count %d", filepath.Base(path), g)
	}
	geomIDs, err := readColumn(cr, g)
	if err != nil {
		return nil, 0, err
	}
	sum := cr.h.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot %s: missing CRC trailer", filepath.Base(path))
	}
	if binary.LittleEndian.Uint32(trailer[:]) != sum {
		return nil, 0, fmt.Errorf("persist: snapshot %s: CRC mismatch", filepath.Base(path))
	}
	st, err := strabon.RestoreColumns(dict, cols[0], cols[1], cols[2], geomIDs, version)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(path), err)
	}
	return st, seq, nil
}
