package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/fsx"
)

// Write-ahead log: an append-only sequence of length-prefixed,
// CRC-checked records split across segment files.
//
// Segment files are named wal-<firstseq>.log (16 hex digits) where
// firstseq is the sequence number of the first record the segment may
// hold; each starts with an 8-byte magic. A record is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// and the payload is
//
//	u64 seq | u8 op | op-specific body
//
// Sequence numbers are assigned 1, 2, 3, … across segment boundaries and
// never reused. Recovery replays records in order and treats the first
// invalid record in the final segment as the torn tail of an interrupted
// append: it is dropped and the file truncated at the last valid byte.
// An invalid record in any earlier segment cannot be a torn append (the
// log only ever grows at its end), so it is reported as corruption.

const (
	walMagic     = "TELWAL01"
	walSegPrefix = "wal-"
	walSegSuffix = ".log"

	opAdd     byte = 1 // body: u32 count, then that many triples
	opRemove  byte = 2 // body: one triple
	opCompact byte = 3 // body: empty

	// maxRecordBytes bounds a single record so a garbage length prefix
	// cannot drive a multi-gigabyte allocation during recovery.
	maxRecordBytes = 1 << 30
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", walSegPrefix, firstSeq, walSegSuffix)
}

// parseSeqName extracts the 16-hex-digit sequence number from a
// <prefix><seq><suffix> file name — shared by the WAL segment and
// snapshot naming schemes.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// parseSegName extracts firstseq from a segment file name.
func parseSegName(name string) (uint64, bool) {
	return parseSeqName(name, walSegPrefix, walSegSuffix)
}

// segInfo describes one on-disk segment.
type segInfo struct {
	path     string
	firstSeq uint64
	size     int64
}

// listSegments returns the WAL segments in dir sorted by firstSeq.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fs, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, e.Name()), firstSeq: fs, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// wal is the append handle. It is not internally synchronised: the
// Manager serialises access (journal hooks already run under the store's
// write lock; rotation and syncing take the Manager's mutex).
type wal struct {
	dir      string
	f        *os.File
	segStart uint64
	segBytes int64
	seq      uint64 // last assigned sequence number
	dirty    bool   // bytes written since the last fsync
	failed   bool   // a failed append could not be rolled back; see below
	scratch  []byte
}

// errWALBroken poisons the log after an append failed AND the partial
// record could not be truncated away: appending more would write a new
// record behind garbage (or reuse a sequence number already on disk),
// which recovery would misread as a torn tail and drop. Every write is
// vetoed until a restart re-truncates the segment.
var errWALBroken = fmt.Errorf("persist: wal broken by an earlier append failure; restart to recover")

// rollback removes the bytes of a failed append so the record is
// neither replayed after its mutation was vetoed nor left in front of
// the next record's bytes.
func (w *wal) rollback() {
	if ferr := faults.Eval("wal/rollback"); ferr != nil {
		w.failed = true
		return
	}
	if err := w.f.Truncate(w.segBytes); err != nil {
		w.failed = true
		return
	}
	if _, err := w.f.Seek(w.segBytes, io.SeekStart); err != nil {
		w.failed = true
	}
}

// openSegmentForAppend opens (or creates) the segment for appending,
// truncating it to validSize first — dropping a torn tail left by a
// crash mid-append.
func openSegmentForAppend(path string, validSize int64) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	size := st.Size()
	if size > validSize {
		// Drop the torn tail left by a crash mid-append.
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = validSize
	}
	if size < int64(len(walMagic)) {
		// New segment, or one whose very header was torn: (re)write it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = int64(len(walMagic))
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, size, nil
}

// append writes one record under the next sequence number and reports
// its size in bytes. sync forces an fsync after the write.
func (w *wal) append(op byte, body []byte, sync bool) (int64, error) {
	return w.appendSeq(w.seq+1, op, body, sync)
}

// appendSeq writes one record under an explicit sequence number — the
// replica path, where the primary already assigned it. seq must be
// exactly w.seq+1; the caller validates continuity against the shipped
// stream before getting here.
func (w *wal) appendSeq(seq uint64, op byte, body []byte, sync bool) (int64, error) {
	if w.failed {
		return 0, errWALBroken
	}
	if ferr := faults.Eval("wal/append"); ferr != nil {
		return 0, ferr
	}
	if seq != w.seq+1 {
		return 0, fmt.Errorf("persist: wal append out of order: record %d after %d", seq, w.seq)
	}
	// Enforce the same record bound recovery enforces: a payload the
	// scanner would reject as implausible must never be acknowledged.
	// (Bulk loaders chunk their batches well below this.)
	if len(body)+9 > maxRecordBytes {
		return 0, fmt.Errorf("persist: wal record of %d bytes exceeds the %d-byte limit; split the batch", len(body)+9, maxRecordBytes)
	}
	// record = len | crc | seq | op | body, assembled in one buffer so the
	// kernel sees a single write (a torn append is then a clean prefix).
	need := 8 + 8 + 1 + len(body)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, 0, need+need/2)
	}
	rec := w.scratch[:8]
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	rec = append(rec, seqb[:]...)
	rec = append(rec, op)
	rec = append(rec, body...)
	payload := rec[8:]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	if ferr := faults.Eval("wal/append-write"); ferr != nil {
		if allow, ok := faults.AsTorn(ferr); ok && allow < len(rec) {
			// Leave the torn prefix a power cut would, then recover the
			// same way a real short write does.
			w.f.Write(rec[:allow])
		}
		w.rollback()
		return 0, ferr
	}
	if _, err := w.f.Write(rec); err != nil {
		// The file may hold a partial record; truncate it back so the
		// next append does not write after garbage.
		w.rollback()
		return 0, err
	}
	if sync {
		if ferr := faults.Eval("wal/fsync"); ferr != nil {
			w.rollback()
			return 0, ferr
		}
		if err := w.f.Sync(); err != nil {
			// The record is fully written but its mutation is about to
			// be vetoed: it must not survive to be replayed, and the
			// next append must not reuse its sequence number behind it.
			w.rollback()
			return 0, err
		}
		w.dirty = false
	} else {
		w.dirty = true
	}
	w.seq = seq
	w.segBytes += int64(len(rec))
	w.scratch = rec[:0]
	return int64(len(rec)), nil
}

func (w *wal) syncIfDirty() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// rotate closes the current segment and starts a fresh one beginning at
// the next sequence number. The directory is fsynced so the new
// segment's entry is durable before any record relies on it — without
// that, power loss after a checkpoint pruned the old segments could
// evaporate the new file along with every record acknowledged into it.
func (w *wal) rotate() error {
	if w.f != nil {
		if err := w.syncIfDirty(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	start := w.seq + 1
	f, size, err := openSegmentForAppend(filepath.Join(w.dir, segName(start)), int64(len(walMagic)))
	if err != nil {
		return err
	}
	if err := fsx.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.segStart, w.segBytes = f, start, size
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	if err := w.syncIfDirty(); err != nil {
		w.f.Close()
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walRecord is one decoded record.
type walRecord struct {
	seq  uint64
	op   byte
	body []byte
}

// errTorn marks the benign end-of-log conditions scanSegment stops at.
var errTorn = fmt.Errorf("persist: torn wal record")

// scanSegment reads records from one segment, calling fn for each. It
// returns the offset just past the last valid record. A record that is
// truncated, fails its CRC, or carries a non-monotonic sequence number
// stops the scan with errTorn; the caller decides whether that is a
// legitimate torn tail (final segment) or corruption (earlier segment).
// fn errors abort the scan unchanged.
func scanSegment(path string, lastSeq uint64, fn func(walRecord) error) (validEnd int64, newLast uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, lastSeq, err
	}
	defer f.Close()
	br := newCountReader(f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		return 0, lastSeq, fmt.Errorf("persist: %s: bad wal magic: %w", filepath.Base(path), errTorn)
	}
	validEnd = br.count
	var hdr [8]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return validEnd, lastSeq, nil // clean end
			}
			return validEnd, lastSeq, errTorn // header cut mid-way
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 9 || n > maxRecordBytes {
			return validEnd, lastSeq, errTorn
		}
		if uint32(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return validEnd, lastSeq, errTorn
		}
		if crc32.ChecksumIEEE(body) != crc {
			return validEnd, lastSeq, errTorn
		}
		seq := binary.LittleEndian.Uint64(body[0:8])
		if seq != lastSeq+1 {
			return validEnd, lastSeq, errTorn
		}
		if err := fn(walRecord{seq: seq, op: body[8], body: body[9:]}); err != nil {
			return validEnd, lastSeq, err
		}
		lastSeq = seq
		validEnd = br.count
	}
}

// countReader is a buffered reader that tracks how many bytes have been
// consumed — scanSegment's source of valid-prefix offsets.
type countReader struct {
	r     io.Reader
	buf   []byte
	off   int
	n     int
	count int64
}

func newCountReader(r io.Reader) *countReader {
	return &countReader{r: r, buf: make([]byte, 1<<16)}
}

func (c *countReader) Read(p []byte) (int, error) {
	if c.off == c.n {
		n, err := c.r.Read(c.buf)
		if n == 0 {
			return 0, err
		}
		c.off, c.n = 0, n
	}
	n := copy(p, c.buf[c.off:c.n])
	c.off += n
	c.count += int64(n)
	return n, nil
}
