package persist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/colpack"
)

// WAL shipping: the primitives internal/replication builds primary/
// replica log streaming on. The primary side reads validated records
// back out of the segment files (ReadWAL) and wakes long-polling
// tailers on every append (WaitSeq); the replica side appends records
// the primary already assigned, verbatim, into its own WAL and applies
// them to its store (ApplyReplicated). Records travel in exactly the
// segment-file encoding — len | crc | (seq, op, body) — minus the
// per-segment magic, so both ends share one codec and one validator.

// ErrWALTrimmed reports that the requested resume point has been pruned
// from the primary's WAL (checkpointing deleted the segments that held
// it). The tailer cannot catch up incrementally and must re-bootstrap
// from a snapshot.
var ErrWALTrimmed = errors.New("persist: requested WAL records have been pruned; re-bootstrap from a snapshot")

// ErrTornRecord reports a record that ends mid-byte or fails its CRC —
// on a shipped stream, the footprint of a connection that died
// mid-record. The partial record must be discarded and the stream
// resumed from the last fully-validated sequence number.
var ErrTornRecord = errors.New("persist: torn wal record in stream")

// errStopRead aborts a ReadWAL scan once the byte budget is spent.
var errStopRead = errors.New("persist: read budget reached")

// LastSeq reports the sequence number of the newest DURABLE record in
// the WAL — under group commit, records that have been assigned a
// sequence number but whose batch has not yet hit the disk are not
// counted. Replication resume cursors and checkpoint labels both key on
// this watermark, so a replica can never observe (and a snapshot can
// never claim to cover) a record the primary might still roll back.
func (m *Manager) LastSeq() uint64 { return m.seq.Load() }

// SnapshotSeq reports the WAL sequence the newest durable snapshot
// covers (0 when none exists).
func (m *Manager) SnapshotSeq() uint64 { return m.ckptSeq.Load() }

// notifyTail wakes every WaitSeq long-poll; called after each append.
func (m *Manager) notifyTail() {
	m.tailMu.Lock()
	close(m.tailCh)
	m.tailCh = make(chan struct{})
	m.tailMu.Unlock()
}

// WaitSeq blocks until the WAL holds a record newer than after (or ctx
// expires) and returns the newest sequence number either way. It is the
// long-poll primitive behind /replication/v1/tail: a caught-up replica
// parks here instead of busy-polling.
func (m *Manager) WaitSeq(ctx context.Context, after uint64) uint64 {
	for {
		if s := m.seq.Load(); s > after {
			return s
		}
		m.tailMu.Lock()
		ch := m.tailCh
		m.tailMu.Unlock()
		// Re-check after capturing the channel: an append between the
		// first check and the capture would otherwise be slept through.
		if s := m.seq.Load(); s > after {
			return s
		}
		select {
		case <-ctx.Done():
			return m.seq.Load()
		case <-ch:
		}
	}
}

// ReadWAL streams validated records with sequence numbers in
// (fromSeq, ∞) to emit, stopping early once roughly maxBytes of record
// payload have been emitted (0 = unlimited). It returns the last
// sequence number emitted. The body slice passed to emit is reused
// between calls and must not be retained.
//
// A torn record at the live tail (an append in flight, or the remnant
// of a crash) ends the stream benignly; the records before it are
// intact and the tailer simply asks again. ErrWALTrimmed means fromSeq
// predates the oldest retained segment — the tailer missed records that
// checkpointing has since pruned and must re-bootstrap.
func (m *Manager) ReadWAL(fromSeq uint64, maxBytes int64, emit func(seq uint64, op byte, body []byte) error) (uint64, error) {
	// Capture the durable watermark once: the live segment may already
	// hold the bytes of a group-commit batch whose fsync has not returned
	// (or will fail and be rolled back). Emitting past the watermark
	// would let a replica apply a record the primary never acked.
	durable := m.seq.Load()
	if fromSeq >= durable {
		return fromSeq, nil
	}
	segs, err := listSegments(m.opts.Dir)
	if err != nil {
		return fromSeq, err
	}
	if len(segs) == 0 {
		return fromSeq, nil
	}
	if segs[0].firstSeq > fromSeq+1 {
		return fromSeq, ErrWALTrimmed
	}
	// Start at the newest segment that can contain fromSeq+1.
	start := 0
	for i, s := range segs {
		if s.firstSeq <= fromSeq+1 {
			start = i
		}
	}
	last := fromSeq
	var sent int64
	for i := start; i < len(segs); i++ {
		seg := segs[i]
		_, _, err := scanSegment(seg.path, seg.firstSeq-1, func(rec walRecord) error {
			if rec.seq <= fromSeq {
				return nil
			}
			if rec.seq > durable {
				return errStopRead
			}
			if err := emit(rec.seq, rec.op, rec.body); err != nil {
				return err
			}
			last = rec.seq
			sent += int64(len(rec.body)) + 17
			if maxBytes > 0 && sent >= maxBytes {
				return errStopRead
			}
			return nil
		})
		switch {
		case err == nil:
		case errors.Is(err, errStopRead):
			return last, nil
		case errors.Is(err, errTorn):
			if i == len(segs)-1 {
				// Live tail: a record may be mid-append right now, or a
				// crash left a torn tail recovery has not yet truncated.
				// Everything before it validated; stop cleanly.
				return last, nil
			}
			return last, fmt.Errorf("persist: wal corruption inside non-final segment %s", filepath.Base(seg.path))
		case os.IsNotExist(err):
			// A checkpoint pruned this segment between listing and
			// opening. The records it held are covered by a newer
			// snapshot; the tailer should retry (and may then get
			// ErrWALTrimmed and re-bootstrap).
			return last, ErrWALTrimmed
		default:
			return last, err
		}
	}
	return last, nil
}

// ApplyReplicated installs one record shipped from a primary: the
// mutation is applied to the store and the record appended to the local
// WAL under the exact sequence number the primary assigned, keeping the
// two logs byte-compatible and the resume cursor (LastSeq) aligned with
// the primary's numbering.
//
// Note the order — apply FIRST, then append — which is deliberately the
// reverse of the primary's write-ahead discipline. A concurrent
// checkpoint captures (seq, store) and labels the snapshot with seq; if
// the WAL could run ahead of the store, a snapshot could claim to cover
// a record whose mutation it does not contain, and recovery would skip
// that record forever. With apply-first the snapshot label only ever
// lags the state, and replaying an already-contained record is
// idempotent (Add/Remove are set operations). Losing the not-yet-
// appended record in a crash costs nothing: the replica resumes from
// its WAL position and the primary re-ships it.
//
// The caller (the replica's single tail loop) must present records in
// sequence order; a gap or a duplicate fails with an out-of-order error
// and no mutation is applied twice (the WAL append rejects it, and the
// re-applied mutation was idempotent).
func (m *Manager) ApplyReplicated(seq uint64, op byte, body []byte) error {
	if seq != m.seq.Load()+1 {
		return fmt.Errorf("persist: replicated record %d out of order (local wal at %d)", seq, m.seq.Load())
	}
	if err := m.applyRecord(m.store, walRecord{seq: seq, op: op, body: body}); err != nil {
		return err
	}
	m.store.SetAppliedSeq(seq)
	m.walMu.Lock()
	n, err := m.w.appendSeq(seq, op, body, m.opts.SyncMode == SyncAlways)
	if err == nil {
		m.seq.Store(seq)
		// Keep the group sequencer aligned in case this manager is ever
		// promoted and starts assigning its own numbers.
		m.group.mu.Lock()
		if seq > m.group.nextSeq {
			m.group.nextSeq = seq
		}
		m.group.mu.Unlock()
	}
	if m.w.failed {
		m.brokenFlag.Store(true)
	}
	m.walMu.Unlock()
	if err != nil {
		return err
	}
	m.notifyTail()
	live := m.walLive.Add(n)
	if m.opts.CheckpointBytes > 0 && live >= m.opts.CheckpointBytes && m.seq.Load() > m.ckptSeq.Load() {
		select {
		case m.ckptCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// NewestSnapshot reports the newest snapshot file on disk and the WAL
// sequence it covers; ok is false when none exists. The file may turn
// out corrupt — consumers validate after transfer (VerifySnapshot).
func (m *Manager) NewestSnapshot() (path string, seq uint64, ok bool) {
	snaps, err := listSnapshots(m.opts.Dir)
	if err != nil || len(snaps) == 0 {
		return "", 0, false
	}
	s, parsed := parseSnapName(filepath.Base(snaps[0]))
	if !parsed {
		return "", 0, false
	}
	return snaps[0], s, true
}

// Segments lists the live WAL segments (first sequence number and size)
// for diagnostics and the /replication/v1/segments endpoint.
func (m *Manager) Segments() []SegmentInfo {
	segs, err := listSegments(m.opts.Dir)
	if err != nil {
		return nil
	}
	out := make([]SegmentInfo, len(segs))
	for i, s := range segs {
		out[i] = SegmentInfo{FirstSeq: s.firstSeq, Size: s.size}
	}
	return out
}

// SegmentInfo describes one on-disk WAL segment.
type SegmentInfo struct {
	FirstSeq uint64 `json:"first_seq"`
	Size     int64  `json:"size"`
}

// HasState reports whether dir already holds persisted state (a
// snapshot or WAL segment). A replica uses it to decide between
// resuming from its own directory and bootstrapping from the primary.
func HasState(dir string) (bool, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(snaps) > 0 {
		return true, nil
	}
	segs, err := listSegments(dir)
	if err != nil {
		return false, err
	}
	return len(segs) > 0, nil
}

// SnapshotFileName returns the canonical file name for a snapshot
// covering seq — used by a replica to install a downloaded snapshot
// where recovery will find it.
func SnapshotFileName(seq uint64) string { return snapName(seq) }

// VerifySnapshot checks a snapshot file (either format, dispatched on
// the leading magic) without restoring it into a store, returning the
// WAL sequence it covers. A replica runs this over a freshly
// downloaded snapshot before trusting it. Packed snapshots get the
// full colpack verification (footer, file and section CRCs, block
// indexes); raw ones the whole-file CRC.
func VerifySnapshot(path string) (uint64, error) {
	format, err := sniffSnapshotFormat(path)
	if err != nil {
		return 0, err
	}
	if format == FormatPacked {
		return colpack.Verify(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if fi.Size() < int64(len(snapMagic))+8+4 {
		return 0, fmt.Errorf("persist: snapshot %s: too short", filepath.Base(path))
	}
	hashed := fi.Size() - 4
	h := crc32.NewIEEE()
	var head [16]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, err
	}
	if string(head[:8]) != snapMagic {
		return 0, fmt.Errorf("persist: snapshot %s: bad magic", filepath.Base(path))
	}
	seq := binary.LittleEndian.Uint64(head[8:16])
	h.Write(head[:])
	if _, err := io.CopyN(h, f, hashed-16); err != nil {
		return 0, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(trailer[:]) != h.Sum32() {
		return 0, fmt.Errorf("persist: snapshot %s: CRC mismatch", filepath.Base(path))
	}
	return seq, nil
}

// Record wire codec -----------------------------------------------------------

// AppendRecord appends the wire encoding of one WAL record to dst —
// identical to the segment-file encoding: u32 payload length, u32
// CRC-32 (IEEE) of the payload, then the payload (u64 seq, u8 op, body).
func AppendRecord(dst []byte, seq uint64, op byte, body []byte) []byte {
	payloadLen := 8 + 1 + len(body)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	start := len(dst) + 8
	dst = append(dst, hdr[:]...)
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	dst = append(dst, seqb[:]...)
	dst = append(dst, op)
	dst = append(dst, body...)
	binary.LittleEndian.PutUint32(dst[start-4:start], crc32.ChecksumIEEE(dst[start:]))
	return dst
}

// RecordScanner decodes a shipped record stream (the /tail response
// body), validating each record's CRC and sequence continuity. A stream
// that ends mid-record — the sender died — yields ErrTornRecord so the
// caller can discard the fragment and resume from the last good
// sequence number.
type RecordScanner struct {
	r    io.Reader
	last uint64
	body []byte
}

// NewRecordScanner scans records from r; the first record must carry
// sequence number after+1.
func NewRecordScanner(r io.Reader, after uint64) *RecordScanner {
	return &RecordScanner{r: r, last: after}
}

// Next returns the next validated record, io.EOF at a clean stream end,
// or ErrTornRecord for a trailing fragment. The body slice is reused by
// subsequent calls.
func (s *RecordScanner) Next() (seq uint64, op byte, body []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, ErrTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n < 9 || n > maxRecordBytes {
		return 0, 0, nil, ErrTornRecord
	}
	if uint32(cap(s.body)) < n {
		s.body = make([]byte, n)
	}
	s.body = s.body[:n]
	if _, err := io.ReadFull(s.r, s.body); err != nil {
		return 0, 0, nil, ErrTornRecord
	}
	if crc32.ChecksumIEEE(s.body) != crc {
		return 0, 0, nil, ErrTornRecord
	}
	seq = binary.LittleEndian.Uint64(s.body[0:8])
	if seq != s.last+1 {
		return 0, 0, nil, fmt.Errorf("persist: shipped record %d out of order (expected %d)", seq, s.last+1)
	}
	s.last = seq
	return seq, s.body[8], s.body[9:], nil
}
