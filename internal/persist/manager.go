// Package persist is the durability subsystem behind strabon.Store: an
// append-only write-ahead log, binary columnar snapshots, crash
// recovery, and background checkpointing.
//
// The contract is write-ahead with group commit: the Manager installs
// itself as the store's Journal, so every mutation — Add, AddAll,
// Remove, a SPARQL UPDATE through the endpoint, Compact — encodes a
// length-prefixed, CRC-checked record and enqueues it (under the
// store's write lock, strictly before the in-memory structures change)
// into the forming commit batch, receiving a strabon.Commit ticket.
// The caller applies the mutation, drops the lock, and awaits the
// ticket: a committer goroutine coalesces everything enqueued since
// the previous flush into ONE segment write and ONE fsync (see
// group.go), so no mutation is acknowledged before its record is
// durable per the sync policy, yet K concurrent writers share a single
// flush instead of paying K fsyncs in series. Checkpoints run off the
// write path: a consistent immutable view (strabon.Snapshot) is
// serialised to a temp file, fsynced, atomically renamed, and only then
// are the WAL segments it covers deleted. Recovery loads the newest
// snapshot that validates, replays the WAL tail past it, drops a torn
// final record, and reopens the log for appending.
//
// A crash — SIGKILL included — therefore loses at most the final
// unflushed batch, none of whose writers were acknowledged: everything
// acknowledged before it is either in a snapshot or replayable from
// the log.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsx"
	"repro/internal/rdf"
	"repro/internal/strabon"
)

// SyncMode selects when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an acknowledged update
	// survives power loss. This is the default.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs on a timer (Options.SyncEvery): an
	// acknowledged update survives process death (the write(2) has
	// happened) but the last interval may be lost on power failure.
	SyncInterval
	// SyncNone never fsyncs the WAL; the OS flushes at its leisure.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// Options configures Open. The zero value of each field selects the
// documented default.
type Options struct {
	// Dir is the data directory; created if absent. Required.
	Dir string
	// SyncMode is the WAL fsync policy (default SyncAlways).
	SyncMode SyncMode
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// GroupWindow is an extra accumulation delay before each group-commit
	// flush: the committer sleeps this long after waking so more writers
	// can join the batch. The default 0 relies on natural batching alone
	// (a batch accumulates for exactly as long as the previous flush
	// takes), which costs an uncontended single writer nothing beyond a
	// goroutine handoff; a window trades per-write latency for larger
	// batches under bursty load.
	GroupWindow time.Duration
	// NoGroupCommit routes journal appends through the legacy
	// synchronous path — write + fsync inline under the store lock,
	// ticket pre-resolved — instead of the group committer. It exists as
	// the before/after ablation for the write-throughput benchmarks and
	// as an escape hatch; the failure semantics are the classic ones
	// (veto with memory unchanged, broken latch only on rollback
	// failure).
	NoGroupCommit bool
	// CheckpointBytes triggers a background checkpoint when the live WAL
	// exceeds this size (default 64 MiB; negative disables).
	CheckpointBytes int64
	// CheckpointEvery triggers a background checkpoint on a timer
	// (default 0: disabled).
	CheckpointEvery time.Duration
	// KeepSnapshots is how many snapshot generations survive a
	// checkpoint (default 2: the new one plus one fallback).
	KeepSnapshots int
	// SnapshotFormat selects what checkpoints write: FormatPacked
	// (default) for the compressed, mmap-able columnar format that
	// recovery serves in place, or FormatRaw for the PR 4 raw dump.
	// Recovery reads either format regardless of this setting.
	SnapshotFormat string
	// NoCheckpointOnClose skips the final checkpoint in Close — restart
	// then replays the WAL instead (tests use this to exercise replay).
	NoCheckpointOnClose bool
	// NoJournal leaves the recovered store's journal detached: the
	// Manager still owns the WAL, snapshots and checkpointing, but store
	// mutations are NOT logged through it. This is the replica mode —
	// records arrive pre-assigned from the primary via ApplyReplicated
	// (which appends them verbatim and then applies them), and attaching
	// the journal too would double-log every replayed mutation.
	NoJournal bool
	// Logf receives recovery and background-error diagnostics
	// (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = 64 << 20
	}
	if opts.KeepSnapshots <= 0 {
		opts.KeepSnapshots = 2
	}
	if opts.SnapshotFormat == "" {
		opts.SnapshotFormat = FormatPacked
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return opts
}

// Stats is the durability telemetry surfaced at /stats.
type Stats struct {
	Dir                string
	LastSeq            uint64 // last DURABLE WAL sequence number (the ship/checkpoint watermark)
	WALBytes           int64  // bytes across live WAL segments
	WALSegments        int
	Snapshots          int
	LastCheckpointSeq  uint64
	LastCheckpointAt   time.Time // zero until the first checkpoint this process
	LastCheckpointTook time.Duration
	RecoveryTook       time.Duration
	ReplayedRecords    uint64 // WAL records applied during recovery
	JournalErr         error  // first append failure; writes are being vetoed

	// Persistence-format telemetry (the /stats persistence block).
	SnapshotFormat string // format checkpoints write (packed or raw)
	SnapshotBytes  int64  // on-disk size of the newest snapshot (0: none)
	StoreMode      string // "mapped" (serving in place) or "heap"
	ResidentBytes  int64  // estimated heap bytes of the store's primary state

	// Group-commit telemetry (see group.go). FsyncsSaved is how many
	// fsyncs batching avoided versus the one-fsync-per-record policy
	// (records - fsyncs, SyncAlways only); TicketWaitMean is the mean
	// enqueue-to-durable latency across all committed records;
	// GroupBatchHist[i] counts batches of 2^i..2^(i+1)-1 records (the
	// last bucket is open-ended).
	GroupBatches   uint64
	GroupRecords   uint64
	GroupFsyncs    uint64
	FsyncsSaved    uint64
	TicketWaitMean time.Duration
	GroupBatchHist [groupHistBuckets]uint64
	GroupWindow    time.Duration
}

// Manager owns a data directory's WAL and snapshots. It implements
// strabon.Journal and attaches itself to the recovered store.
type Manager struct {
	opts  Options
	store *strabon.Store

	// walMu guards the wal handle and all of its file I/O: batch
	// flushes, the synchronous replica/legacy appends, rotation, sync,
	// close. It is deliberately NOT taken by enqueue (group.go), so
	// writers assigning sequence numbers under the store lock never wait
	// behind an fsync.
	walMu sync.Mutex
	w     *wal

	// group is the group-commit state; brokenFlag mirrors w.failed so
	// the per-update Broken() check and the enqueue fast path read one
	// atomic instead of contending on walMu mid-fsync.
	group      groupState
	brokenFlag atomic.Bool

	seq      atomic.Uint64 // last DURABLE WAL seq (published after flush)
	walLive  atomic.Int64  // bytes across live segments
	ckptSeq  atomic.Uint64 // seq covered by the newest durable snapshot
	hasCkpt  atomic.Bool   // a snapshot exists on disk
	ckptAt   atomic.Int64  // unix ms of the last checkpoint this process
	ckptTook atomic.Int64  // ms
	ckptMu   sync.Mutex    // serialises checkpoints

	recoveryTook time.Duration
	replayed     uint64

	// tailCh is closed and replaced on every append so WAL-shipping
	// long-polls (WaitSeq) wake without polling; guarded by tailMu.
	tailMu sync.Mutex
	tailCh chan struct{}

	ckptCh    chan struct{}
	stopCh    chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	logScratch []byte
}

// Open recovers the store persisted in opts.Dir (an empty or absent
// directory yields an empty store), attaches the write-ahead journal,
// and starts the background sync/checkpoint loops. The returned store
// is ready for concurrent use; every subsequent mutation is durable per
// the configured SyncMode. Callers must Close the Manager to flush and
// (by default) checkpoint on shutdown.
func Open(o Options) (*Manager, *strabon.Store, error) {
	if o.Dir == "" {
		return nil, nil, errors.New("persist: Options.Dir is required")
	}
	opts := o.withDefaults()
	if opts.SnapshotFormat != FormatPacked && opts.SnapshotFormat != FormatRaw {
		return nil, nil, fmt.Errorf("persist: unknown snapshot format %q (want %q or %q)",
			opts.SnapshotFormat, FormatPacked, FormatRaw)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	m := &Manager{
		opts:   opts,
		ckptCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		tailCh: make(chan struct{}),
	}
	start := time.Now()

	// 1. Newest snapshot that validates; corrupt ones are skipped so a
	// half-written or bit-flipped file degrades to the previous
	// generation, not to data loss.
	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	var st *strabon.Store
	var snapSeq uint64
	for _, p := range snaps {
		s, seq, err := readSnapshot(p)
		if err != nil {
			opts.Logf("persist: skipping snapshot %s: %v", filepath.Base(p), err)
			continue
		}
		st, snapSeq = s, seq
		break
	}
	if st == nil {
		st = strabon.NewStore()
	}

	// 2. Replay the WAL tail past the snapshot. Records the snapshot
	// already covers are validated but re-applied only logically
	// (Add/Remove are set operations, so re-application of a
	// conservatively-covered suffix is a no-op).
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	if len(segs) > 0 && segs[0].firstSeq > snapSeq+1 {
		// The WAL was pruned against a snapshot we failed to load (all
		// retained generations corrupt or deleted): the records bridging
		// the snapshot to the surviving log are gone. Booting anyway
		// would silently serve — and then re-checkpoint — a store
		// missing most of its data; refuse instead and leave the
		// evidence on disk for the operator.
		return nil, nil, fmt.Errorf(
			"persist: wal starts at record %d but the newest loadable snapshot covers only %d; records %d..%d are unrecoverable (corrupt or deleted snapshots?)",
			segs[0].firstSeq, snapSeq, snapSeq+1, segs[0].firstSeq-1)
	}
	scanLast := uint64(0)
	if len(segs) > 0 {
		scanLast = segs[0].firstSeq - 1
	}
	var appendSeg segInfo
	var appendValid int64
	haveAppendSeg := false
	for i, seg := range segs {
		if i > 0 && seg.firstSeq != scanLast+1 {
			return nil, nil, fmt.Errorf("persist: wal gap: segment %s starts at %d, expected %d",
				filepath.Base(seg.path), seg.firstSeq, scanLast+1)
		}
		validEnd, newLast, err := scanSegment(seg.path, scanLast, func(rec walRecord) error {
			if rec.seq <= snapSeq {
				return nil
			}
			if err := m.applyRecord(st, rec); err != nil {
				return err
			}
			m.replayed++
			return nil
		})
		scanLast = newLast
		switch {
		case err == nil:
		case errors.Is(err, errTorn):
			if i != len(segs)-1 {
				return nil, nil, fmt.Errorf("persist: wal corruption inside non-final segment %s", filepath.Base(seg.path))
			}
			opts.Logf("persist: dropping torn wal tail of %s at offset %d", filepath.Base(seg.path), validEnd)
		default:
			return nil, nil, err
		}
		if i == len(segs)-1 {
			appendSeg, appendValid, haveAppendSeg = seg, validEnd, true
		}
	}
	lastSeq := scanLast
	if snapSeq > lastSeq {
		lastSeq = snapSeq
	}

	// 3. Reopen the log for appending. Normally that means truncating
	// the final segment's torn tail (if any) and continuing in place.
	// When the snapshot is ahead of every surviving WAL record (the log
	// was lost or manually cleared), the stale segments are removed and
	// a fresh one started so sequence numbers stay contiguous.
	m.w = &wal{dir: opts.Dir, seq: lastSeq}
	if haveAppendSeg && snapSeq <= scanLast {
		f, size, err := openSegmentForAppend(appendSeg.path, appendValid)
		if err != nil {
			return nil, nil, err
		}
		m.w.f, m.w.segStart, m.w.segBytes = f, appendSeg.firstSeq, size
	} else {
		for _, seg := range segs {
			os.Remove(seg.path)
		}
		if err := m.w.rotate(); err != nil {
			return nil, nil, err
		}
	}
	m.seq.Store(lastSeq)
	m.group.nextSeq = lastSeq
	m.refreshWALBytes()
	if len(snaps) > 0 {
		m.hasCkpt.Store(true)
		m.ckptSeq.Store(snapSeq)
	}
	m.recoveryTook = time.Since(start)

	// 4. Go live: journal future writes, run the background loops. The
	// applied-seq watermark is seeded with everything recovery installed
	// (snapshot plus replayed tail).
	m.store = st
	st.SetAppliedSeq(lastSeq)
	if !opts.NoJournal {
		st.SetJournal(m)
	}
	m.wg.Add(1)
	go m.background()
	if !opts.NoGroupCommit {
		m.wg.Add(1)
		go m.committer()
	}
	return m, st, nil
}

// applyRecord replays one WAL record into the store (journal not yet
// attached, so nothing is re-logged).
func (m *Manager) applyRecord(st *strabon.Store, rec walRecord) error {
	switch rec.op {
	case opAdd:
		if len(rec.body) < 4 {
			return fmt.Errorf("persist: wal add record %d: short body", rec.seq)
		}
		count := int(uint32(rec.body[0]) | uint32(rec.body[1])<<8 | uint32(rec.body[2])<<16 | uint32(rec.body[3])<<24)
		b := rec.body[4:]
		// A triple encodes to at least 3×(1 kind byte + 3 length
		// prefixes) = 39 bytes; a count the body cannot hold is
		// corruption, and pre-allocating from it would let a crafted
		// record OOM recovery despite a valid CRC.
		const minTripleBytes = 39
		if count < 0 || count > len(b)/minTripleBytes {
			return fmt.Errorf("persist: wal add record %d: implausible triple count %d for %d-byte body", rec.seq, count, len(b))
		}
		ts := make([]rdf.Triple, 0, count)
		for i := 0; i < count; i++ {
			var t rdf.Triple
			var err error
			if t, b, err = readTriple(b); err != nil {
				return fmt.Errorf("persist: wal add record %d: %w", rec.seq, err)
			}
			ts = append(ts, t)
		}
		st.AddAll(ts)
	case opRemove:
		t, _, err := readTriple(rec.body)
		if err != nil {
			return fmt.Errorf("persist: wal remove record %d: %w", rec.seq, err)
		}
		st.Remove(t)
	case opCompact:
		st.Compact()
	default:
		return fmt.Errorf("persist: wal record %d: unknown op %d", rec.seq, rec.op)
	}
	return nil
}

// log journals one record — through the group committer by default
// (enqueue + ticket; see group.go), or inline under walMu when
// NoGroupCommit selects the legacy synchronous path. Called from the
// strabon.Journal hooks, i.e. under the store's write lock.
func (m *Manager) log(op byte, body []byte) (strabon.Commit, error) {
	if !m.opts.NoGroupCommit {
		return m.enqueue(op, body)
	}
	seq, err := m.appendNow(op, body)
	if err != nil {
		return strabon.Commit{}, err
	}
	return strabon.Commit{Seq: seq}, nil
}

// appendNow is the legacy synchronous append: one record written (and
// under SyncAlways fsynced) inline, the classic veto-with-memory-
// unchanged failure mode. The NoGroupCommit ablation uses it for every
// journal hook; it also remains the shape of the replica apply path
// (ApplyReplicated), which ships pre-assigned records one at a time.
func (m *Manager) appendNow(op byte, body []byte) (uint64, error) {
	m.walMu.Lock()
	n, err := m.w.append(op, body, m.opts.SyncMode == SyncAlways)
	var seq uint64
	if err == nil {
		seq = m.w.seq
		m.seq.Store(seq)
		m.group.mu.Lock()
		if seq > m.group.nextSeq {
			m.group.nextSeq = seq
		}
		m.group.mu.Unlock()
		if m.opts.SyncMode == SyncAlways {
			// Count the inline fsync too, so the group/no-group benchmark
			// ablation reads fsyncs/op from the same counter.
			m.group.fsyncs.Add(1)
		}
	}
	if m.w.failed {
		m.brokenFlag.Store(true)
	}
	m.walMu.Unlock()
	if err != nil {
		return 0, err
	}
	m.notifyTail()
	live := m.walLive.Add(n)
	if m.opts.CheckpointBytes > 0 && live >= m.opts.CheckpointBytes && m.seq.Load() > m.ckptSeq.Load() {
		select {
		case m.ckptCh <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// LogAdd implements strabon.Journal.
func (m *Manager) LogAdd(triples []rdf.Triple) (strabon.Commit, error) {
	b := m.logScratch[:0]
	b = append(b, byte(len(triples)), byte(len(triples)>>8), byte(len(triples)>>16), byte(len(triples)>>24))
	for _, t := range triples {
		b = appendTriple(b, t)
	}
	// Steady-state records are a triple or two; don't let one bulk-load
	// batch pin its multi-megabyte encode buffer for the process
	// lifetime. (The group enqueue copies b into the batch buffer, so
	// reusing the scratch immediately is safe.)
	if cap(b) <= 1<<20 {
		m.logScratch = b[:0]
	} else {
		m.logScratch = nil
	}
	return m.log(opAdd, b)
}

// LogRemove implements strabon.Journal.
func (m *Manager) LogRemove(t rdf.Triple) (strabon.Commit, error) {
	b := appendTriple(m.logScratch[:0], t)
	m.logScratch = b[:0]
	return m.log(opRemove, b)
}

// LogCompact implements strabon.Journal.
func (m *Manager) LogCompact() (strabon.Commit, error) { return m.log(opCompact, nil) }

// Broken reports the WAL's latched unrecoverable state: non-nil means
// either a failed append could not be rolled back or a group-commit
// batch failed after its mutations were applied; every further write
// will be vetoed, and only a restart (whose recovery re-truncates the
// segment) clears it. The endpoint's degraded read-only mode keys on
// this — reads keep serving off the in-memory store, writes 503. The
// check is a single atomic load so per-update health checks never
// queue behind an in-flight fsync.
func (m *Manager) Broken() error {
	if m.brokenFlag.Load() {
		return errWALBroken
	}
	return nil
}

// SyncWAL forces buffered WAL bytes to stable storage (a no-op under
// SyncAlways).
func (m *Manager) SyncWAL() error {
	m.walMu.Lock()
	defer m.walMu.Unlock()
	return m.w.syncIfDirty()
}

// Checkpoint writes a snapshot of the current store state and prunes the
// WAL segments and older snapshots it supersedes. It runs off the write
// path: writers continue appending while the snapshot file is produced.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	// A broken WAL means the in-memory store may hold applied mutations
	// the log does not (a group-commit batch failed after its records
	// were applied). Snapshotting that divergence would make it durable;
	// refuse, and let the restart recover from the last good generation.
	if m.brokenFlag.Load() {
		return errWALBroken
	}
	start := time.Now()

	// Rotate so appends move to a fresh segment; the segments before it
	// become immutable and deletable once the snapshot lands.
	m.walMu.Lock()
	err := m.w.rotate()
	m.walMu.Unlock()
	if err != nil {
		return err
	}

	// Capture a consistent view plus the WAL sequence it covers. Journal
	// appends happen under the store's write lock and Snapshot() builds
	// under the read lock, so if the sequence number is identical on
	// both sides of the build, it is exact. Under sustained writes we
	// settle for the pre-build value: a safe lower bound, because
	// replaying records the snapshot already reflects is idempotent
	// (Add/Remove are set operations).
	var sn *strabon.Snapshot
	var seq uint64
	for attempt := 0; ; attempt++ {
		s1 := m.seq.Load()
		sn = m.store.Snapshot()
		seq = s1
		if m.seq.Load() == s1 || attempt == 3 {
			break
		}
	}
	// Group commit opens a second hazard the label cannot express: the
	// snapshot was built from memory, which may include mutations whose
	// batch has not reached the disk yet (applied under the store lock,
	// ticket unresolved). Publishing now could persist a write that is
	// never acked — the batch may still fail and roll back. Hold the
	// snapshot until everything it can possibly contain (every sequence
	// number assigned before the build finished) is durable; if the WAL
	// latches broken instead, abandon the checkpoint.
	if err := m.waitDurable(m.assignedSeq()); err != nil {
		return err
	}
	if m.hasCkpt.Load() && seq == m.ckptSeq.Load() {
		return nil // nothing new since the last checkpoint
	}
	if _, err := writeSnapshot(m.opts.Dir, sn, seq, m.opts.SnapshotFormat); err != nil {
		return err
	}
	m.ckptSeq.Store(seq)
	m.hasCkpt.Store(true)
	m.ckptAt.Store(time.Now().UnixMilli())
	m.ckptTook.Store(time.Since(start).Milliseconds())
	m.cleanup(seq)
	return nil
}

// cleanup removes snapshot generations beyond KeepSnapshots, the WAL
// segments no retained snapshot still needs, and stray temp files from
// interrupted checkpoints. Runs under ckptMu.
//
// WAL segments are pruned against the OLDEST retained snapshot, not the
// one just written: if the newest snapshot turns out unreadable at the
// next recovery, the fallback generation still has its full WAL tail to
// replay, so a single corrupted file never costs data.
func (m *Manager) cleanup(seq uint64) {
	pruneSeq := seq
	snaps, err := listSnapshots(m.opts.Dir)
	if err == nil {
		for i, p := range snaps {
			if i >= m.opts.KeepSnapshots {
				os.Remove(p)
				continue
			}
			if s, ok := parseSnapName(filepath.Base(p)); ok && s < pruneSeq {
				pruneSeq = s
			}
		}
	}
	segs, err := listSegments(m.opts.Dir)
	if err == nil {
		// A segment is deletable when its successor starts at or before
		// pruneSeq+1: every record it holds is then ≤ pruneSeq, i.e.
		// inside even the oldest retained snapshot. The final segment is
		// the live append target and always stays.
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].firstSeq <= pruneSeq+1 {
				os.Remove(segs[i].path)
			}
		}
	}
	if entries, err := os.ReadDir(m.opts.Dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if len(name) > 4 && name[len(name)-4:] == ".tmp" {
				if _, ok := parseSnapName(name[:len(name)-4]); ok {
					os.Remove(filepath.Join(m.opts.Dir, name))
				}
			}
		}
	}
	// Make the removals durable: a power loss must not resurrect
	// pruned segments out of order with the snapshot that covers them.
	if err := fsx.SyncDir(m.opts.Dir); err != nil {
		m.opts.Logf("persist: cleanup dir sync: %v", err)
	}
	m.refreshWALBytes()
}

func (m *Manager) refreshWALBytes() {
	segs, err := listSegments(m.opts.Dir)
	if err != nil {
		return
	}
	var total int64
	for _, s := range segs {
		total += s.size
	}
	m.walLive.Store(total)
}

// background runs the interval fsync and checkpoint triggers until Close.
func (m *Manager) background() {
	defer m.wg.Done()
	syncTick := time.NewTicker(m.opts.SyncEvery)
	defer syncTick.Stop()
	ckptEvery := m.opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 365 * 24 * time.Hour // effectively off
	}
	ckptTick := time.NewTicker(ckptEvery)
	defer ckptTick.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-syncTick.C:
			if m.opts.SyncMode == SyncInterval {
				if err := m.SyncWAL(); err != nil {
					m.opts.Logf("persist: wal sync: %v", err)
				}
			}
		case <-m.ckptCh:
			if err := m.Checkpoint(); err != nil {
				m.opts.Logf("persist: checkpoint: %v", err)
			}
		case <-ckptTick.C:
			if m.opts.CheckpointEvery > 0 && m.seq.Load() > m.ckptSeq.Load() {
				if err := m.Checkpoint(); err != nil {
					m.opts.Logf("persist: checkpoint: %v", err)
				}
			}
		}
	}
}

// Store returns the recovered store the Manager journals for.
func (m *Manager) Store() *strabon.Store { return m.store }

// Stats reports durability telemetry.
func (m *Manager) Stats() Stats {
	s := Stats{
		Dir:                m.opts.Dir,
		LastSeq:            m.seq.Load(),
		WALBytes:           m.walLive.Load(),
		LastCheckpointSeq:  m.ckptSeq.Load(),
		LastCheckpointTook: time.Duration(m.ckptTook.Load()) * time.Millisecond,
		RecoveryTook:       m.recoveryTook,
		ReplayedRecords:    m.replayed,
		JournalErr:         m.store.JournalErr(),
		SnapshotFormat:     m.opts.SnapshotFormat,
		StoreMode:          m.store.StorageMode(),
		ResidentBytes:      m.store.ResidentEstimate(),
	}
	if ms := m.ckptAt.Load(); ms != 0 {
		s.LastCheckpointAt = time.UnixMilli(ms)
	}
	if segs, err := listSegments(m.opts.Dir); err == nil {
		s.WALSegments = len(segs)
	}
	if snaps, err := listSnapshots(m.opts.Dir); err == nil {
		s.Snapshots = len(snaps)
		if len(snaps) > 0 {
			if fi, err := os.Stat(snaps[0]); err == nil {
				s.SnapshotBytes = fi.Size()
			}
		}
	}
	s.GroupBatches = m.group.batches.Load()
	s.GroupRecords = m.group.records.Load()
	s.GroupFsyncs = m.group.fsyncs.Load()
	if m.opts.SyncMode == SyncAlways && s.GroupRecords > s.GroupFsyncs {
		// Every record would have cost its own fsync on the synchronous
		// path; the batch paid one.
		s.FsyncsSaved = s.GroupRecords - s.GroupFsyncs
	}
	if s.GroupRecords > 0 {
		s.TicketWaitMean = time.Duration(m.group.waitNs.Load() / int64(s.GroupRecords))
	}
	for i := range s.GroupBatchHist {
		s.GroupBatchHist[i] = m.group.sizeHist[i].Load()
	}
	s.GroupWindow = m.opts.GroupWindow
	return s
}

// Close stops the background loops, takes a final checkpoint (unless
// NoCheckpointOnClose), flushes and closes the WAL, and detaches the
// journal. The store remains usable in-memory afterwards, but further
// mutations are no longer persisted.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		close(m.stopCh)
		m.wg.Wait()
		// Detach the journal BEFORE the final drain: SetJournal takes the
		// store's write lock, so once it returns no Journal hook — and
		// therefore no enqueue — is in flight, and the drain below is
		// guaranteed to see the last batch. (The committer also drained on
		// stop, but an enqueue could have raced its exit.)
		m.store.SetJournal(nil)
		m.flushGroup()
		var firstErr error
		if !m.opts.NoCheckpointOnClose {
			if err := m.Checkpoint(); err != nil {
				firstErr = err
			}
		}
		m.walMu.Lock()
		if err := m.w.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		m.walMu.Unlock()
		m.closeErr = firstErr
	})
	return m.closeErr
}
