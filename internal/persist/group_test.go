package persist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

// Tests for the group-commit pipeline: correctness of the ticket
// protocol under concurrency (the -race soak), the durable-watermark
// contract the replication layer depends on, and the writer-count
// ablation benchmark behind BENCH_PR10.json.

// soakTriple derives a unique triple per (writer, op).
func soakTriple(writer, i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.IRI(fmt.Sprintf("%ssoak/w%d/%d", exNS, writer, i)),
		rdf.IRI(exNS+"observed"),
		rdf.IntegerLiteral(int64(i)))
}

// TestGroupCommitSoak is the concurrency soak from the PR checklist: 8
// writers hammering acked-durable adds, a checkpoint hammer forcing
// rotation/pruning races, and a tailer asserting the replication-facing
// invariants — the durable watermark only moves forward, ReadWAL never
// emits past it, and the shipped sequence numbers are contiguous. After
// the dust settles, a restart must recover every acked write. Run it
// with -race; that is the point.
func TestGroupCommitSoak(t *testing.T) {
	const writers = 8
	opsPerWriter := 300
	if testing.Short() {
		opsPerWriter = 60
	}
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) {
		o.SyncMode = SyncAlways
		o.KeepSnapshots = 1000 // the tailer must not be pruned out from under
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Checkpoint hammer: rotation, snapshot writes and WAL pruning
	// racing the committer the whole run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Checkpoint(); err != nil {
				t.Errorf("checkpoint under load: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Tailer: the replica's view. LastSeq must be monotonic, ReadWAL
	// must hand over exactly the records below the watermark, in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cursor, lastSeen uint64
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			s := m.WaitSeq(ctx, cursor)
			cancel()
			if s < lastSeen {
				t.Errorf("durable watermark moved backwards: %d after %d", s, lastSeen)
				return
			}
			lastSeen = s
			durableAtCall := m.LastSeq()
			next := cursor
			got, err := m.ReadWAL(cursor, 1<<20, func(seq uint64, op byte, body []byte) error {
				if seq != next+1 {
					return fmt.Errorf("gap in shipped records: %d after %d", seq, next)
				}
				if seq > durableAtCall {
					return fmt.Errorf("record %d shipped past the durable watermark %d", seq, durableAtCall)
				}
				next = seq
				return nil
			})
			switch {
			case errors.Is(err, ErrWALTrimmed):
				// The checkpoint hammer pruned our resume point (possible
				// at cursor 0 before the first read): re-bootstrap the
				// cursor the way a real replica would, from a snapshot.
				cursor = m.SnapshotSeq()
			case err != nil:
				t.Errorf("tail read: %v", err)
				return
			default:
				cursor = got
			}
			select {
			case <-stop:
				if cursor >= m.LastSeq() {
					return
				}
			default:
			}
		}
	}()

	var acked atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				if !st.Add(soakTriple(w, i)) {
					t.Errorf("writer %d: add %d refused", w, i)
					return
				}
				acked.Add(1)
				// An acked write is durable NOW: the watermark must
				// already cover the sequence this store observed applied.
				if ap, ls := st.AppliedSeq(), m.LastSeq(); ap > ls {
					t.Errorf("applied seq %d above the durable watermark %d", ap, ls)
					return
				}
			}
		}(w)
	}
	// Wait for the writers, then release the hammer and tailer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if acked.Load() == int64(writers*opsPerWriter) || t.Failed() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if t.Failed() {
		m.Close()
		t.FailNow()
	}

	stats := m.Stats()
	if got := stats.GroupRecords; got != uint64(writers*opsPerWriter) {
		t.Fatalf("group committed %d records, want %d", got, writers*opsPerWriter)
	}
	if stats.GroupFsyncs > stats.GroupRecords {
		t.Fatalf("more fsyncs (%d) than records (%d)", stats.GroupFsyncs, stats.GroupRecords)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Zero acked writes lost across restart.
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
	for w := 0; w < writers; w++ {
		for i := 0; i < opsPerWriter; i++ {
			if recovered.Add(soakTriple(w, i)) {
				t.Fatalf("acked triple (writer %d, op %d) lost across restart", w, i)
			}
		}
	}
}

// TestGroupCommitSharesFsyncs proves the batching actually batches: one
// writer is parked inside a deliberately slow fsync while 7 more
// enqueue, and the whole backlog must then clear with a single further
// flush — 8 acked records, at most a handful of fsyncs.
func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncAlways })
	armFaults(t, "wal/group-fsync=2*sleep(40ms)->off")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if !st.Add(soakTriple(w, 0)) {
				t.Errorf("writer %d refused", w)
			}
		}(w)
	}
	wg.Wait()
	stats := m.Stats()
	if stats.GroupRecords != 8 {
		t.Fatalf("records = %d, want 8", stats.GroupRecords)
	}
	// First flush takes >=40ms; everyone else piles into the forming
	// batch meanwhile. Scheduling noise allows a couple of small batches
	// at the front, but nothing like one fsync per record.
	if stats.GroupFsyncs > 4 {
		t.Fatalf("%d fsyncs for 8 concurrent acked writes; batching is not happening", stats.GroupFsyncs)
	}
	if stats.FsyncsSaved != stats.GroupRecords-stats.GroupFsyncs {
		t.Fatalf("FsyncsSaved = %d, want records-fsyncs = %d", stats.FsyncsSaved, stats.GroupRecords-stats.GroupFsyncs)
	}
	var hist uint64
	for _, b := range stats.GroupBatchHist {
		hist += b
	}
	if hist != stats.GroupBatches {
		t.Fatalf("batch histogram sums to %d, want %d", hist, stats.GroupBatches)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}

// TestGroupWindowAccumulates: a configured accumulation window delays
// the flush without breaking the never-ack-before-durable contract.
func TestGroupWindowAccumulates(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) {
		o.SyncMode = SyncAlways
		o.GroupWindow = 5 * time.Millisecond
	})
	start := time.Now()
	if !st.Add(tr("a", "p", "b")) {
		t.Fatal("add refused")
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("ack after %v, before the %v group window elapsed", elapsed, 5*time.Millisecond)
	}
	if got := m.Stats().GroupWindow; got != 5*time.Millisecond {
		t.Fatalf("stats report window %v", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}

// TestGroupCommitIntervalModeAcksAfterWrite: under -wal-sync intervals
// the ticket resolves after the batched write(2) — process-death
// durability, same as the synchronous path's contract — and no fsync is
// charged to the batch.
func TestGroupCommitIntervalModeAcksAfterWrite(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) {
		o.SyncMode = SyncInterval
		o.SyncEvery = time.Hour // only explicit SyncWAL, never the timer
	})
	for i := 0; i < 10; i++ {
		if !st.Add(soakTriple(0, i)) {
			t.Fatalf("add %d refused", i)
		}
	}
	stats := m.Stats()
	if stats.GroupFsyncs != 0 {
		t.Fatalf("interval mode charged %d fsyncs to batches", stats.GroupFsyncs)
	}
	if stats.LastSeq != 10 {
		t.Fatalf("durable watermark %d, want 10 (advances on write in interval mode)", stats.LastSeq)
	}
	if err := m.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}

// TestNoGroupCommitAblationEquivalent: the -wal-sync=always legacy
// pipeline (the benchmark baseline) produces a byte-for-byte equivalent
// recovery to the group pipeline over the same workload.
func TestNoGroupCommitAblationEquivalent(t *testing.T) {
	run := func(noGroup bool) *strabon.Store {
		dir := t.TempDir()
		m, st := mustOpen(t, dir, func(o *Options) {
			o.SyncMode = SyncAlways
			o.NoGroupCommit = noGroup
		})
		for i := 0; i < 50; i++ {
			st.Add(soakTriple(0, i))
		}
		st.Remove(soakTriple(0, 7))
		st.AddAll(benchTriples(40))
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		m2, recovered := mustOpen(t, dir, nil)
		t.Cleanup(func() { m2.Close() })
		return recovered
	}
	assertSameContent(t, run(false), run(true))
}

// BenchmarkGroupCommitWriters is the PR 10 acceptance ablation: acked
// updates with 1/2/4/8 concurrent writers, -wal-sync always vs a
// 100ms interval, group pipeline vs the legacy synchronous path. The
// fsyncs/op metric shows where the ~K× sharing comes from; the ≥3×
// acked-throughput criterion compares writers=8 sync=always
// pipeline=group against pipeline=nogroup.
func BenchmarkGroupCommitWriters(b *testing.B) {
	modes := []struct {
		name  string
		tweak func(*Options)
	}{
		{"always", func(o *Options) { o.SyncMode = SyncAlways }},
		{"interval", func(o *Options) { o.SyncMode = SyncInterval; o.SyncEvery = 100 * time.Millisecond }},
	}
	for _, mode := range modes {
		for _, writers := range []int{1, 2, 4, 8} {
			for _, pipeline := range []string{"group", "nogroup"} {
				b.Run(fmt.Sprintf("sync=%s/writers=%d/pipeline=%s", mode.name, writers, pipeline), func(b *testing.B) {
					opts := Options{Dir: b.TempDir(), NoCheckpointOnClose: true}
					mode.tweak(&opts)
					opts.NoGroupCommit = pipeline == "nogroup"
					m, st, err := Open(opts)
					if err != nil {
						b.Fatal(err)
					}
					defer m.Close()
					var next atomic.Int64
					b.ResetTimer()
					var wg sync.WaitGroup
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for {
								i := next.Add(1)
								if i > int64(b.N) {
									return
								}
								if !st.Add(rdf.NewTriple(
									rdf.IRI(fmt.Sprintf("%sbench/%d", exNS, i)),
									rdf.IRI(exNS+"p"),
									rdf.IntegerLiteral(i))) {
									b.Errorf("add %d refused", i)
									return
								}
							}
						}(w)
					}
					wg.Wait()
					b.StopTimer()
					stats := m.Stats()
					b.ReportMetric(float64(stats.GroupFsyncs)/float64(b.N), "fsyncs/op")
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acked-updates/sec")
				})
			}
		}
	}
}
