package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"testing"

	"repro/internal/colpack"
)

// Packed-snapshot corruption table and format-migration coverage.
// The PR 4 table (persist_test.go) already runs against packed files —
// it is the default format — but its corruptions hit arbitrary bytes.
// These cases target the packed format's internal structures: column
// block payloads, posting containers, the TOC, the footer trailer.
// Every one of them must make colpack.Open reject the file so recovery
// falls back to the previous snapshot generation with zero loss (the
// WAL deliberately retains everything past the OLDER generation).

// packedSection locates section id inside the packed snapshot at path
// by parsing the footer the same way the reader does, returning the
// section's byte offset and length within the file.
func packedSection(t *testing.T, path string, id uint32) (off, length uint64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:8]) != colpack.Magic || string(data[len(data)-8:]) != colpack.Magic {
		t.Fatalf("%s is not a packed snapshot", path)
	}
	footerLen := int(binary.LittleEndian.Uint32(data[len(data)-16:]))
	footer := data[len(data)-16-footerLen : len(data)-16]
	nSecs := int(binary.LittleEndian.Uint32(footer))
	for i := 0; i < nSecs; i++ {
		e := footer[4+i*32:]
		if binary.LittleEndian.Uint32(e) == id {
			return binary.LittleEndian.Uint64(e[8:]), binary.LittleEndian.Uint64(e[16:])
		}
	}
	t.Fatalf("section %d not found in %s", id, path)
	return 0, 0
}

// flipByteAt XORs one byte of the file at path.
func flipByteAt(t *testing.T, path string, off uint64, mask byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= uint64(len(data)) {
		t.Fatalf("flip offset %d beyond %d-byte file", off, len(data))
	}
	data[off] ^= mask
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// newestSnap returns the highest-seq snapshot in dir, asserting it is
// packed (these corruptions only make sense against the packed layout).
func newestSnap(t *testing.T, dir string) string {
	t.Helper()
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >=2 snapshot generations, have %d (err=%v)", len(snaps), err)
	}
	format, err := sniffSnapshotFormat(snaps[0])
	if err != nil || format != FormatPacked {
		t.Fatalf("newest snapshot format=%q err=%v, want packed", format, err)
	}
	return snaps[0]
}

func TestPackedCorruptionTable(t *testing.T) {
	const secColS, secPostS, secDict = 1, 10, 13
	cases := []struct {
		name    string
		corrupt func(t *testing.T, snap string)
	}{
		{
			// Zone-map / bit-packed payload damage: the section CRC
			// catches it even though no block is ever decoded at Open.
			name: "flipped byte in a column block payload",
			corrupt: func(t *testing.T, snap string) {
				off, length := packedSection(t, snap, secColS)
				flipByteAt(t, snap, off+length/2, 0x40)
			},
		},
		{
			// The column's block index (offset/min/max/width) lives at
			// the front of the section; widening a block's bit width
			// must not survive verification.
			name: "corrupted column block descriptor",
			corrupt: func(t *testing.T, snap string) {
				off, _ := packedSection(t, snap, secColS)
				flipByteAt(t, snap, off+8, 0xff)
			},
		},
		{
			// A posting container header (key + cardinality) steers the
			// roaring decoder; garbage there must be rejected before any
			// MatchRows can consume it.
			name: "bad posting container header",
			corrupt: func(t *testing.T, snap string) {
				off, length := packedSection(t, snap, secPostS)
				if length == 0 {
					t.Skip("empty posting section")
				}
				flipByteAt(t, snap, off, 0x01)
			},
		},
		{
			name: "flipped byte in the front-coded dictionary",
			corrupt: func(t *testing.T, snap string) {
				off, length := packedSection(t, snap, secDict)
				flipByteAt(t, snap, off+length-1, 0x80)
			},
		},
		{
			// TOC damage: a section CRC entry no longer matches the
			// footer CRC, so the footer itself is rejected.
			name: "flipped section CRC in the TOC",
			corrupt: func(t *testing.T, snap string) {
				data, err := os.ReadFile(snap)
				if err != nil {
					t.Fatal(err)
				}
				footerLen := int(binary.LittleEndian.Uint32(data[len(data)-16:]))
				footerStart := len(data) - 16 - footerLen
				// First TOC entry's crc32 field (id/pad/off/len precede it).
				flipByteAt(t, snap, uint64(footerStart+4+24), 0x01)
			},
		},
		{
			name: "truncated TOC",
			corrupt: func(t *testing.T, snap string) {
				fi, err := os.Stat(snap)
				if err != nil {
					t.Fatal(err)
				}
				// Chop into the footer body: trailing magic and the
				// length/CRC trailer are gone too.
				if err := os.Truncate(snap, fi.Size()-40); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "zeroed footer length",
			corrupt: func(t *testing.T, snap string) {
				data, err := os.ReadFile(snap)
				if err != nil {
					t.Fatal(err)
				}
				binary.LittleEndian.PutUint32(data[len(data)-16:], 0)
				if err := os.WriteFile(snap, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := buildDataDir(t, dir)
			snap := newestSnap(t, dir)
			tc.corrupt(t, snap)
			// The corrupted newest generation must no longer verify...
			if _, err := VerifySnapshot(snap); err == nil {
				t.Fatalf("corrupted snapshot still verifies")
			}
			// ...and recovery must fall back to the previous generation
			// plus the retained WAL tail: nothing lost.
			m, got := mustOpen(t, dir, nil)
			defer m.Close()
			assertSameContent(t, want, got)
			// The recovered store must keep working: append + reopen.
			got.Add(tr("post-recovery", "p", "o"))
			postLen := got.Len()
			m.Close()
			m2, again := mustOpen(t, dir, nil)
			defer m2.Close()
			if again.Len() != postLen {
				t.Fatalf("post-recovery write lost: %d != %d", again.Len(), postLen)
			}
		})
	}
}

// TestSnapshotFormatMigration: a directory written under one format
// must boot under the other (the reader dispatches on the file magic,
// not the configured writer format), and the next checkpoint converts
// the directory to the configured format.
func TestSnapshotFormatMigration(t *testing.T) {
	for _, tc := range []struct{ from, to string }{
		{FormatRaw, FormatPacked},
		{FormatPacked, FormatRaw},
	} {
		t.Run(fmt.Sprintf("%s-to-%s", tc.from, tc.to), func(t *testing.T) {
			dir := t.TempDir()
			m, st := mustOpen(t, dir, func(o *Options) { o.SnapshotFormat = tc.from })
			for i := 0; i < 200; i++ {
				st.Add(tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i%7)))
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			snaps, _ := listSnapshots(dir)
			if len(snaps) == 0 {
				t.Fatal("close wrote no snapshot")
			}
			if f, _ := sniffSnapshotFormat(snaps[0]); f != tc.from {
				t.Fatalf("snapshot format %q, want %q", f, tc.from)
			}

			// Boot under the other format's configuration. (Check the
			// storage mode before comparing content: Triples() is a full
			// materialisation and would flip a mapped store to heap.)
			m2, st2 := mustOpen(t, dir, func(o *Options) { o.SnapshotFormat = tc.to })
			wantMode := "heap"
			if tc.from == FormatPacked {
				wantMode = "mapped"
			}
			if mode := st2.StorageMode(); mode != wantMode {
				t.Fatalf("recovered store mode %q, want %q", mode, wantMode)
			}
			assertSameContent(t, st, st2)
			if stats := m2.Stats(); stats.SnapshotFormat != tc.to {
				t.Fatalf("Stats().SnapshotFormat = %q, want configured %q", stats.SnapshotFormat, tc.to)
			}
			// A write plus checkpoint converts the directory.
			st2.Add(tr("migrated", "p", "o"))
			if err := m2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			snaps, _ = listSnapshots(dir)
			if f, _ := sniffSnapshotFormat(snaps[0]); f != tc.to {
				t.Fatalf("post-migration snapshot format %q, want %q", f, tc.to)
			}
			if err := m2.Close(); err != nil {
				t.Fatal(err)
			}

			// And the converted directory boots cleanly again.
			m3, st3 := mustOpen(t, dir, func(o *Options) { o.SnapshotFormat = tc.to })
			defer m3.Close()
			if st3.Len() != st2.Len() {
				t.Fatalf("converted dir recovered %d triples, want %d", st3.Len(), st2.Len())
			}
		})
	}
}

// TestUnknownSnapshotFormatRejected: Open must refuse a format name it
// does not understand rather than silently writing some default.
func TestUnknownSnapshotFormatRejected(t *testing.T) {
	_, _, err := Open(Options{Dir: t.TempDir(), SyncMode: SyncNone, SnapshotFormat: "zip"})
	if err == nil {
		t.Fatal("Open accepted SnapshotFormat=zip")
	}
}
