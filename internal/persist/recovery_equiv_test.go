package persist

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/stsparql"
)

// The recovery equivalence suite: a store is mutated through the
// journal (adds, removes, batch updates, compactions, a mid-stream
// checkpoint), the process "dies" (the Manager is abandoned without
// Close, exactly what SIGKILL leaves on disk), and recovery must yield a
// store that answers 400 randomized stSPARQL queries identically to the
// survivor.

func equivTerm(i int) rdf.Term { return rdf.IRI(fmt.Sprintf("%ss%d", exNS, i)) }

func equivTriples(rng *rand.Rand, n int) []rdf.Triple {
	classes := []string{"Hotspot", "Town", "Forest"}
	var out []rdf.Triple
	for i := 0; i < n; i++ {
		s := equivTerm(i)
		out = append(out, rdf.NewTriple(s, rdf.IRI(rdf.RDFType), rdf.IRI(exNS+classes[i%3])))
		if rng.Intn(4) != 0 {
			out = append(out, rdf.NewTriple(s, rdf.IRI(exNS+"p0"), rdf.IntegerLiteral(int64(rng.Intn(10)))))
		}
		if rng.Intn(3) != 0 {
			out = append(out, rdf.NewTriple(s, rdf.IRI(exNS+"p1"), rdf.Literal(fmt.Sprintf("name-%d", rng.Intn(6)))))
		}
		if rng.Intn(3) != 0 {
			wkt := fmt.Sprintf("POINT (%.4f %.4f)", 23.0+rng.Float64()*2, 37.0+rng.Float64()*2)
			out = append(out, rdf.NewTriple(s, rdf.IRI(exNS+"geom"), rdf.TypedLiteral(wkt, rdf.StRDFWKT)))
		}
		for k := 0; k < rng.Intn(3); k++ {
			out = append(out, rdf.NewTriple(s, rdf.IRI(exNS+"p2"), equivTerm(rng.Intn(n))))
		}
	}
	return out
}

func equivQuery(rng *rand.Rand) string {
	vars := []string{"a", "b", "c"}
	preds := []string{"a", "<" + exNS + "p0>", "<" + exNS + "p1>", "<" + exNS + "p2>", "<" + exNS + "geom>"}
	objs := []string{"<" + exNS + "Hotspot>", "<" + exNS + "Town>", "<" + exNS + "s3>", `"name-2"`, "4"}
	pat := func() string {
		s := "?" + vars[rng.Intn(len(vars))]
		if rng.Intn(3) == 0 {
			s = fmt.Sprintf("<%ss%d>", exNS, rng.Intn(20))
		}
		o := "?" + vars[rng.Intn(len(vars))]
		if rng.Intn(2) == 0 {
			o = objs[rng.Intn(len(objs))]
		}
		return fmt.Sprintf("%s %s %s .", s, preds[rng.Intn(len(preds))], o)
	}
	var body []string
	for i := 0; i < 1+rng.Intn(3); i++ {
		body = append(body, pat())
	}
	switch rng.Intn(5) {
	case 0:
		body = append(body, fmt.Sprintf("FILTER(?%s > %d)", vars[rng.Intn(2)], rng.Intn(8)))
	case 1:
		body = append(body, fmt.Sprintf(
			`FILTER(strdf:intersects(?%s, "POLYGON ((23 37, 24.5 37, 24.5 38.5, 23 38.5, 23 37))"^^strdf:WKT))`,
			vars[rng.Intn(2)]))
	}
	if rng.Intn(3) == 0 {
		body = append(body, fmt.Sprintf("OPTIONAL { %s }", pat()))
	}
	if rng.Intn(3) == 0 {
		body = append(body, fmt.Sprintf("{ %s } UNION { %s }", pat(), pat()))
	}
	return fmt.Sprintf(`PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT * WHERE { %s }`, strings.Join(body, "\n"))
}

func canonResult(t *testing.T, res *stsparql.Result) []string {
	t.Helper()
	out := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%s|", k, b[k].String())
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func TestRecoveryQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.NoCheckpointOnClose = true })

	// Sustained updates: batches, single adds, removes, a compaction,
	// and a checkpoint landing in the middle of the stream.
	triples := equivTriples(rng, 20)
	st.AddAll(triples[:len(triples)/2])
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.AddAll(triples[len(triples)/2:])
	for i := 0; i < 10; i++ {
		st.Remove(triples[rng.Intn(len(triples))])
	}
	st.Compact()
	st.AddAll(equivTriples(rng, 5))

	// SIGKILL: walk away without Close. SyncNone means the bytes are in
	// the page cache, which survives process death — the durability
	// contract under test.
	_ = m

	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)

	live := stsparql.New(st)
	replayed := stsparql.New(recovered)
	const nQueries = 400
	mismatches := 0
	for qi := 0; qi < nQueries; qi++ {
		q := equivQuery(rng)
		lres, lerr := live.Query(q)
		rres, rerr := replayed.Query(q)
		if (lerr == nil) != (rerr == nil) {
			t.Fatalf("query %d error divergence: live=%v recovered=%v\n%s", qi, lerr, rerr, q)
		}
		if lerr != nil {
			continue
		}
		l, r := canonResult(t, lres), canonResult(t, rres)
		if len(l) != len(r) {
			t.Errorf("query %d: %d vs %d rows\n%s", qi, len(l), len(r), q)
			mismatches++
			continue
		}
		for i := range l {
			if l[i] != r[i] {
				t.Errorf("query %d row %d:\nlive      %s\nrecovered %s\n%s", qi, i, l[i], r[i], q)
				mismatches++
				break
			}
		}
		if mismatches > 3 {
			t.Fatal("too many mismatches, aborting")
		}
	}
}

// TestConcurrentQueriesUpdatesCheckpoint drives reads, journalled
// writes, and checkpoints concurrently; run under -race it checks the
// locking seams between the store, the WAL, and the checkpointer.
func TestConcurrentQueriesUpdatesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.SyncMode = SyncInterval; o.SyncEvery = time.Millisecond })
	defer m.Close()
	rng := rand.New(rand.NewSource(7))
	st.AddAll(equivTriples(rng, 10))
	eng := stsparql.New(st)

	const writers, readers, rounds = 2, 3, 120
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tri := tr(fmt.Sprintf("w%d-%d", w, i), "p", "o")
				st.Add(tri)
				if i%3 == 0 {
					st.Remove(tri)
				}
				if i%17 == 0 {
					st.Compact()
				}
				if i%11 == 0 {
					st.AddAll([]rdf.Triple{
						tr(fmt.Sprintf("w%d-b%d", w, i), "p", "o1"),
						tr(fmt.Sprintf("w%d-b%d", w, i), "p", "o2"),
					})
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := eng.Query(`SELECT * WHERE { ?s <` + exNS + `p> ?o }`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := m.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := st.JournalErr(); err != nil {
		t.Fatalf("journal error: %v", err)
	}

	// Everything journalled must be recoverable.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, recovered := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, recovered)
}
