package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

// TestRecordScannerRoundtrip: AppendRecord's wire encoding must decode
// back through RecordScanner byte-for-byte, across multiple records.
func TestRecordScannerRoundtrip(t *testing.T) {
	var wire []byte
	bodies := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0xAB}, 1000)}
	for i, b := range bodies {
		wire = AppendRecord(wire, uint64(i+1), opAdd, b)
	}
	sc := NewRecordScanner(bytes.NewReader(wire), 0)
	for i, want := range bodies {
		seq, op, body, err := sc.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(i+1) || op != opAdd || !bytes.Equal(body, want) {
			t.Fatalf("record %d: got seq=%d op=%d len=%d", i, seq, op, len(body))
		}
	}
	if _, _, _, err := sc.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestRecordScannerTornStream: every strict prefix of a record — the
// shape a SIGKILLed primary leaves on the wire — must surface as
// ErrTornRecord, never as a short/garbled record or a clean EOF.
func TestRecordScannerTornStream(t *testing.T) {
	full := AppendRecord(nil, 1, opAdd, []byte("payload-payload-payload"))
	for cut := 1; cut < len(full); cut++ {
		sc := NewRecordScanner(bytes.NewReader(full[:cut]), 0)
		if _, _, _, err := sc.Next(); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut at %d/%d: want ErrTornRecord, got %v", cut, len(full), err)
		}
	}
}

// TestRecordScannerCorruptPayload: a bit flip inside the payload fails
// the CRC and must be reported as torn, not applied.
func TestRecordScannerCorruptPayload(t *testing.T) {
	wire := AppendRecord(nil, 1, opAdd, []byte("payload"))
	wire[len(wire)-1] ^= 0x01
	sc := NewRecordScanner(bytes.NewReader(wire), 0)
	if _, _, _, err := sc.Next(); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("want ErrTornRecord on CRC mismatch, got %v", err)
	}
}

// TestRecordScannerSequenceGap: a continuity break (the stream skipped
// a record) is a protocol error distinct from tearing — retrying the
// same stream would apply a gapped history.
func TestRecordScannerSequenceGap(t *testing.T) {
	var wire []byte
	wire = AppendRecord(wire, 1, opAdd, []byte("a"))
	wire = AppendRecord(wire, 3, opAdd, []byte("c")) // 2 missing
	sc := NewRecordScanner(bytes.NewReader(wire), 0)
	if _, _, _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sc.Next(); err == nil || errors.Is(err, ErrTornRecord) || errors.Is(err, io.EOF) {
		t.Fatalf("want out-of-order error, got %v", err)
	}
}

func testTriple(i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.IRI("http://ex/s"),
		rdf.IRI("http://ex/p"),
		rdf.IntegerLiteral(int64(i)),
	)
}

// TestReadWALShipsAndTrims: ReadWAL must replay exactly the records
// past the cursor, and once a checkpoint prunes the log a cursor from
// before the horizon must get ErrWALTrimmed (the re-bootstrap signal),
// not a silent gap.
func TestReadWALShipsAndTrims(t *testing.T) {
	dir := t.TempDir()
	m, st, err := Open(Options{Dir: dir, SyncMode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 10; i++ {
		st.Add(testTriple(i))
	}
	var seqs []uint64
	last, err := m.ReadWAL(4, 1<<20, func(seq uint64, op byte, body []byte) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 6 || seqs[0] != 5 || last != 10 {
		t.Fatalf("seqs=%v last=%d, want 5..10", seqs, last)
	}

	// Byte budget: a tiny cap must still make progress (at least one
	// record per call) without overshooting the full tail.
	var n int
	if _, err := m.ReadWAL(0, 1, func(uint64, byte, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n < 1 || n >= 10 {
		t.Fatalf("budgeted read shipped %d records", n)
	}

	// Checkpoint prunes sealed segments; a pre-horizon cursor must 410.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Add(testTriple(100)) // roll a fresh record past the checkpoint
	if _, err := m.ReadWAL(0, 1<<20, func(uint64, byte, []byte) error { return nil }); !errors.Is(err, ErrWALTrimmed) {
		t.Fatalf("want ErrWALTrimmed below the horizon, got %v", err)
	}
	// At or past the horizon the read still works.
	if _, err := m.ReadWAL(m.SnapshotSeq(), 1<<20, func(uint64, byte, []byte) error { return nil }); err != nil {
		t.Fatalf("read at horizon: %v", err)
	}
}

// TestApplyReplicatedLockstep: a replica manager fed via ApplyReplicated
// must mirror the primary's store AND its WAL numbering, reject gaps,
// and move the store watermark with every applied record.
func TestApplyReplicatedLockstep(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	pm, ps, err := Open(Options{Dir: pDir, SyncMode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer pm.Close()
	rm, rs, err := Open(Options{Dir: rDir, SyncMode: SyncNone, NoJournal: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ps.Add(testTriple(i))
	}
	ps.Remove(testTriple(0))

	ship := func() {
		t.Helper()
		if _, err := pm.ReadWAL(rm.LastSeq(), 1<<20, func(seq uint64, op byte, body []byte) error {
			return rm.ApplyReplicated(seq, op, body)
		}); err != nil {
			t.Fatal(err)
		}
	}
	ship()
	if rs.Len() != ps.Len() || rm.LastSeq() != pm.LastSeq() {
		t.Fatalf("replica len=%d seq=%d, primary len=%d seq=%d",
			rs.Len(), rm.LastSeq(), ps.Len(), pm.LastSeq())
	}
	if rs.AppliedSeq() != rm.LastSeq() {
		t.Fatalf("watermark %d != wal seq %d", rs.AppliedSeq(), rm.LastSeq())
	}

	// Gaps and replays are rejected up front.
	if err := rm.ApplyReplicated(rm.LastSeq()+2, opCompact, nil); err == nil {
		t.Fatal("gap accepted")
	}
	if err := rm.ApplyReplicated(rm.LastSeq(), opCompact, nil); err == nil {
		t.Fatal("replay accepted")
	}

	// The replica's own WAL must recover to the identical state: close
	// without checkpoint and reopen (the crash-resume path).
	if err := rm.Close(); err != nil {
		t.Fatal(err)
	}
	rm2, rs2, err := Open(Options{Dir: rDir, SyncMode: SyncNone, NoJournal: true, NoCheckpointOnClose: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rm2.Close()
	if rs2.Len() != ps.Len() || rm2.LastSeq() != pm.LastSeq() || rs2.AppliedSeq() != pm.LastSeq() {
		t.Fatalf("recovered replica len=%d seq=%d watermark=%d, want %d/%d/%d",
			rs2.Len(), rm2.LastSeq(), rs2.AppliedSeq(), ps.Len(), pm.LastSeq(), pm.LastSeq())
	}

	// And keep tailing: new primary writes ship onto the recovered WAL.
	ps.Add(testTriple(99))
	if _, err := pm.ReadWAL(rm2.LastSeq(), 1<<20, func(seq uint64, op byte, body []byte) error {
		return rm2.ApplyReplicated(seq, op, body)
	}); err != nil {
		t.Fatal(err)
	}
	if rm2.LastSeq() != pm.LastSeq() {
		t.Fatalf("resumed tail: replica seq %d, primary %d", rm2.LastSeq(), pm.LastSeq())
	}
}

// TestVerifySnapshotCatchesCorruption: VerifySnapshot must accept the
// checkpointer's own output and reject any single-byte corruption — the
// gate a replica applies to a downloaded bootstrap image.
func TestVerifySnapshotCatchesCorruption(t *testing.T) {
	dir := t.TempDir()
	m, st, err := Open(Options{Dir: dir, SyncMode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 8; i++ {
		st.Add(testTriple(i))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	path, seq, ok := m.NewestSnapshot()
	if !ok {
		t.Fatal("no snapshot after checkpoint")
	}
	got, err := VerifySnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != seq {
		t.Fatalf("VerifySnapshot seq=%d, want %d", got, seq)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot passed verification")
	}
}

// TestWaitSeqWakesOnAppend: WaitSeq must park while the log is at the
// cursor and wake promptly when a record lands.
func TestWaitSeqWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	m, st, err := Open(Options{Dir: dir, SyncMode: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st.Add(testTriple(1))
	done := make(chan uint64, 1)
	go func() {
		done <- m.WaitSeq(t.Context(), 1)
	}()
	st.Add(testTriple(2))
	if got := <-done; got < 2 {
		t.Fatalf("WaitSeq woke at %d, want >= 2", got)
	}
}
