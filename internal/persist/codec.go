package persist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
)

// Binary term/triple codec shared by the WAL record bodies. Terms are
// serialised structurally (kind byte + three length-prefixed strings),
// not as N-Triples text, so literals with quotes, newlines or \u escapes
// round-trip byte-exactly without an escaping layer.

func appendString(b []byte, s string) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(s)))
	b = append(b, l[:]...)
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("persist: short string header")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < uint64(n) {
		return "", nil, fmt.Errorf("persist: short string body (%d < %d)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}

func appendTerm(b []byte, t rdf.Term) []byte {
	b = append(b, byte(t.Kind))
	b = appendString(b, t.Value)
	b = appendString(b, t.Datatype)
	return appendString(b, t.Lang)
}

func readTerm(b []byte) (rdf.Term, []byte, error) {
	if len(b) < 1 {
		return rdf.Term{}, nil, fmt.Errorf("persist: short term")
	}
	t := rdf.Term{Kind: rdf.TermKind(b[0])}
	b = b[1:]
	var err error
	if t.Value, b, err = readString(b); err != nil {
		return rdf.Term{}, nil, err
	}
	if t.Datatype, b, err = readString(b); err != nil {
		return rdf.Term{}, nil, err
	}
	if t.Lang, b, err = readString(b); err != nil {
		return rdf.Term{}, nil, err
	}
	return t, b, nil
}

func appendTriple(b []byte, t rdf.Triple) []byte {
	b = appendTerm(b, t.S)
	b = appendTerm(b, t.P)
	return appendTerm(b, t.O)
}

func readTriple(b []byte) (rdf.Triple, []byte, error) {
	var t rdf.Triple
	var err error
	if t.S, b, err = readTerm(b); err != nil {
		return t, nil, err
	}
	if t.P, b, err = readTerm(b); err != nil {
		return t, nil, err
	}
	if t.O, b, err = readTerm(b); err != nil {
		return t, nil, err
	}
	return t, b, nil
}
