package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAppendRollbackOnFailure: a failed append must leave the segment
// exactly as it was (no partial record, no burned sequence number), and
// an un-rollbackable failure must poison the handle instead of letting
// a later append write behind garbage.
func TestAppendRollbackOnFailure(t *testing.T) {
	dir := t.TempDir()
	w := &wal{dir: dir}
	if err := w.rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(opCompact, nil, true); err != nil {
		t.Fatal(err)
	}
	goodSeq, goodBytes := w.seq, w.segBytes

	// Force the write to fail by closing the fd out from under the wal.
	path := filepath.Join(dir, segName(w.segStart))
	held := w.f
	held.Close()
	if _, err := w.append(opCompact, nil, true); err == nil {
		t.Fatal("append over closed fd succeeded")
	}
	// Rollback could not truncate a closed fd: the handle must be poisoned.
	if !w.failed {
		t.Fatal("wal not poisoned after un-rollbackable failure")
	}
	if _, err := w.append(opCompact, nil, false); !errors.Is(err, errWALBroken) {
		t.Fatalf("append on poisoned wal: %v, want errWALBroken", err)
	}
	if w.seq != goodSeq {
		t.Fatalf("failed appends advanced seq: %d -> %d", goodSeq, w.seq)
	}
	// The on-disk segment still holds exactly the one good record.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != goodBytes {
		t.Fatalf("segment size %d, want %d", fi.Size(), goodBytes)
	}
	_, last, err := scanSegment(path, 0, func(walRecord) error { return nil })
	if err != nil || last != goodSeq {
		t.Fatalf("scan after failure: last=%d err=%v", last, err)
	}
}

// TestAppendEnforcesRecordCap: a record the recovery scanner would
// reject as implausible must be refused at append time, not
// acknowledged and then dropped at the next boot.
func TestAppendEnforcesRecordCap(t *testing.T) {
	w := &wal{dir: t.TempDir()}
	if err := w.rotate(); err != nil {
		t.Fatal(err)
	}
	defer w.close()
	_, err := w.append(opAdd, make([]byte, maxRecordBytes), false)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized append: %v", err)
	}
	if w.seq != 0 || w.failed {
		t.Fatalf("oversized append mutated state: seq=%d failed=%v", w.seq, w.failed)
	}
	if _, err := w.append(opCompact, nil, false); err != nil {
		t.Fatalf("wal unusable after size rejection: %v", err)
	}
}
