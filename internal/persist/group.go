package persist

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/strabon"
)

// Group commit: the concurrent write pipeline behind the journal hooks.
//
// The strabon.Journal contract splits a mutation's journalling into
// sequence assignment and durability wait. The assignment half runs
// here, under the store's write lock: enqueue encodes the record into
// the forming batch (a plain byte buffer in the segment-file wire
// format), assigns it the next sequence number, and hands back a
// strabon.Commit ticket. The durability half runs at Await: the flush
// swaps the forming batch out, writes the whole batch to the live
// segment with ONE write(2) and — under SyncAlways — ONE fsync, then
// publishes the durable watermark (m.seq), wakes the WAL tailers, and
// resolves every ticket in the batch. K writers that
// enqueue while a flush is in flight share the next flush: fsyncs/op
// approaches 1/K under load without any timer, because the next batch
// simply accumulates for exactly as long as the previous fsync takes
// (natural batching). Options.GroupWindow adds a fixed accumulation
// delay on top for workloads that want bigger batches at the cost of
// latency.
//
// The flush is leader-based: there is no dedicated flusher goroutine in
// the hot path. The first ticket-holder to reach Await becomes the
// leader — it takes walMu and only THEN swaps the forming batch out, so
// every record enqueued while the previous flush was on the disk joins
// this one (late swap). Followers whose batch is already swapped just
// park on the batch's done channel. This shape matters twice over:
// a lone writer flushes its own one-record batch inline with no
// goroutine handoff (latency parity with the classic synchronous
// append), and K contending writers self-organise into cohort-sized
// batches without any timer. A slim background committer sweeps on a
// slow ticker purely as a backstop for enqueued records whose caller
// never awaited the ticket.
//
// Failure semantics differ from the synchronous append path on
// purpose. An enqueue-time failure (size cap, broken latch, the
// wal/group-enqueue failpoint) is a synchronous veto: the store has not
// applied anything and simply reports the mutation failed. But by the
// time the committer writes a batch, every mutation in it is already
// applied in memory — that is what lets the fsync run outside the
// store lock. If the batch write or fsync then fails, the partial
// batch is rolled back (truncated) and the WAL latches broken
// (errWALBroken): the applied-but-not-durable divergence cannot be
// healed online, because a client retrying its "failed" write would be
// deduplicated against the applied state and never re-journalled. Every
// later write is vetoed until a restart, whose recovery replays exactly
// what the log holds. The endpoint surfaces the latch as degraded
// read-only mode, same as the classic double-fault path.

// groupBatch is one flush unit: the wire-encoded records accumulated
// between two committer swaps, plus the shared ticket state. Every
// record enqueued into the same batch shares fate: one done channel,
// one error.
type groupBatch struct {
	buf      []byte // records in segment wire format (AppendRecord)
	count    int
	lastSeq  uint64
	sumEnqNs int64 // sum of per-record enqueue times (ticket-wait telemetry)
	leader   bool  // a ticket-holder has claimed the flush; under group.mu
	err      error // set before done is closed
	done     chan struct{}
}

// groupState is the Manager's group-commit half: the forming batch and
// its lock (never held across I/O), plus the flush telemetry.
type groupState struct {
	mu      sync.Mutex
	forming *groupBatch
	nextSeq uint64 // last ASSIGNED seq (>= the durable m.seq); under mu

	// Adaptive accumulation state: the size of the last flushed batch
	// and how long its flush took. A leader whose predecessor saw
	// concurrency (lastCount > 1) briefly holds the flush back until a
	// similar cohort has re-enqueued — see flushBatch.
	lastCount atomic.Int64
	flushNs   atomic.Int64

	batches  atomic.Uint64
	records  atomic.Uint64
	fsyncs   atomic.Uint64
	waitNs   atomic.Int64
	sizeHist [groupHistBuckets]atomic.Uint64
}

// maxAccumulate bounds the adaptive accumulation wait so a slow disk
// (whose fsync time drives the bound) cannot stretch commit latency by
// more than this on top of the flush itself.
const maxAccumulate = 2 * time.Millisecond

// groupHistBuckets is the records-per-batch histogram: bucket i counts
// batches of size in [2^i, 2^(i+1)), the last bucket is open-ended
// (>= 128).
const groupHistBuckets = 8

func histBucket(n int) int {
	b := 0
	for n > 1 && b < groupHistBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// enqueue assigns the next sequence number to one record, appends its
// wire encoding to the forming batch, and returns the commit ticket.
// Called from the Journal hooks, i.e. under the store's write lock —
// it must stay fast and must never touch the file (that is the
// committer's job, under walMu, which enqueue deliberately does not
// take). A non-nil error is a synchronous veto: the caller has not
// applied the mutation.
func (m *Manager) enqueue(op byte, body []byte) (strabon.Commit, error) {
	if ferr := faults.Eval("wal/group-enqueue"); ferr != nil {
		return strabon.Commit{}, ferr
	}
	if m.brokenFlag.Load() {
		return strabon.Commit{}, errWALBroken
	}
	if len(body)+9 > maxRecordBytes {
		return strabon.Commit{}, fmt.Errorf("persist: wal record of %d bytes exceeds the %d-byte limit; split the batch", len(body)+9, maxRecordBytes)
	}
	now := time.Now().UnixNano()
	m.group.mu.Lock()
	b := m.group.forming
	if b == nil {
		b = &groupBatch{done: make(chan struct{})}
		m.group.forming = b
	}
	m.group.nextSeq++
	seq := m.group.nextSeq
	b.buf = AppendRecord(b.buf, seq, op, body)
	b.count++
	b.lastSeq = seq
	b.sumEnqNs += now
	m.group.mu.Unlock()
	return strabon.Commit{Seq: seq, Wait: func() error {
		select {
		case <-b.done:
		default:
			// Leader election: exactly ONE ticket-holder per batch takes
			// the flush lock; everyone else parks on the done channel.
			// This is load-bearing for batching, not just tidiness — if
			// every member queued on walMu, a hot writer whose ack just
			// resolved would barge the freed lock ahead of the parked
			// members (Go mutexes admit barging until a waiter starves),
			// flush its next record as a singleton, and repeat, starving
			// the cohort into lockstep. With one leader per batch the
			// barging writer finds the leadership taken, joins the
			// forming batch, and parks.
			m.group.mu.Lock()
			elect := m.group.forming == b && !b.leader
			if elect {
				b.leader = true
			}
			m.group.mu.Unlock()
			if elect {
				m.flushBatch(b)
			}
			<-b.done
		}
		return b.err
	}}, nil
}

// committerBackstopBase is the sweep period of the background
// committer. It is deliberately slow: ticket-holders flush their own
// batches, so the sweep only matters for records whose caller never
// awaited the ticket.
const committerBackstopBase = 50 * time.Millisecond

// committer is the background backstop: a slow periodic sweep that
// flushes any forming batch nobody is awaiting. The hot path never
// waits on it — the first Await-er of a batch flushes it inline (see
// flushBatch). The period stretches with GroupWindow so the sweep does
// not cut accumulation windows short.
func (m *Manager) committer() {
	defer m.wg.Done()
	interval := committerBackstopBase
	if w := m.opts.GroupWindow; w > 0 && interval < 4*w {
		interval = 4 * w
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stopCh:
			// Final drain; Close drains again after detaching the
			// journal to catch stragglers that raced this exit.
			m.flushGroup()
			return
		case <-tick.C:
			m.flushGroup()
		}
	}
}

// flushBatch is the leader-election half of the commit: called by a
// ticket-holder of b from Commit.Wait, outside every store lock. It
// takes walMu FIRST and only then swaps the forming batch — the late
// swap is what makes batches cohort-sized, because everything enqueued
// while the previous flush was on the disk is still in b when the swap
// finally happens. If b has already been swapped by another leader (or
// the backstop), that flusher owns b's tickets and this call is a
// no-op.
func (m *Manager) flushBatch(b *groupBatch) {
	if d := m.opts.GroupWindow; d > 0 {
		// Optional fixed accumulation window, slept before contending
		// for the flush lock so late writers can still join b.
		time.Sleep(d)
	}
	m.walMu.Lock()
	m.group.mu.Lock()
	if m.group.forming != b {
		// Another flusher swapped b out; it resolves b's tickets.
		m.group.mu.Unlock()
		m.walMu.Unlock()
		return
	}
	m.group.mu.Unlock()
	// Adaptive accumulation: the writers acked by the previous flush are
	// racing back through the store lock right now, and grabbing the
	// just-freed flush lock before they re-enqueue would split the cohort
	// into one tiny batch and one big one, forever. If the previous batch
	// saw concurrency, hold the swap while the batch is still GROWING —
	// quiescence (no new record for a fraction of a flush) means the
	// cohort is aboard — bounded by the time the flush itself will take
	// (nothing is gained by waiting longer than one flush). A lone
	// writer — lastCount 1 — never waits at all, which is what keeps
	// single-writer commit latency at parity with the synchronous path.
	// forming cannot be swapped from under us here: swaps only happen
	// under walMu, which we hold.
	if m.group.lastCount.Load() > 1 {
		limit := time.Duration(m.group.flushNs.Load())
		if limit > maxAccumulate {
			limit = maxAccumulate
		}
		quiet := limit / 4
		if quiet < 20*time.Microsecond {
			quiet = 20 * time.Microsecond
		}
		deadline := time.Now().Add(limit)
		grew := time.Now()
		last := b.count
		for {
			m.group.mu.Lock()
			n := b.count
			m.group.mu.Unlock()
			now := time.Now()
			if n > last {
				last, grew = n, now
			}
			if now.Sub(grew) >= quiet || !now.Before(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	m.group.mu.Lock()
	m.group.forming = nil
	m.group.mu.Unlock()
	err := m.writeBatchLocked(b)
	m.walMu.Unlock()
	m.finishBatch(b, err)
}

// flushGroup swaps out whatever batch is forming and commits it: one
// buffered segment write, one fsync (SyncAlways), durable-watermark
// publish, tail wakeup, ticket resolution. Used by the backstop sweep
// and the Close drain; ticket-holders use flushBatch. Batch failures
// latch the WAL broken — see the package comment above — and still
// resolve every ticket, with the error.
func (m *Manager) flushGroup() {
	m.walMu.Lock()
	m.group.mu.Lock()
	b := m.group.forming
	m.group.forming = nil
	m.group.mu.Unlock()
	if b == nil {
		m.walMu.Unlock()
		return
	}
	err := m.writeBatchLocked(b)
	m.walMu.Unlock()
	m.finishBatch(b, err)
}

// finishBatch publishes a flushed batch's outcome: tail wakeup and
// checkpoint scheduling on success, the broken-latch log line on
// failure, and in both cases the shared ticket resolution. Runs after
// walMu is released so parked ticket-holders never wake into a held
// flush lock.
func (m *Manager) finishBatch(b *groupBatch, err error) {
	if err == nil {
		m.notifyTail()
		live := m.walLive.Add(int64(len(b.buf)))
		if m.opts.CheckpointBytes > 0 && live >= m.opts.CheckpointBytes && m.seq.Load() > m.ckptSeq.Load() {
			select {
			case m.ckptCh <- struct{}{}:
			default:
			}
		}
	} else {
		m.opts.Logf("persist: group commit failed, wal latched broken: %v", err)
		// Wake WaitSeq parkers too: the watermark will never advance
		// again, and waiters (checkpoint's waitDurable, replication
		// tailers) must get a chance to observe the broken latch.
		m.notifyTail()
	}
	b.err = err
	close(b.done)
}

// assignedSeq returns the last sequence number handed out to any
// record, durable or not (>= LastSeq; equal when no batch is in
// flight).
func (m *Manager) assignedSeq() uint64 {
	m.group.mu.Lock()
	s := m.group.nextSeq
	m.group.mu.Unlock()
	return s
}

// waitDurable blocks until every record assigned up to seq has reached
// the disk, or fails with errWALBroken if a batch failure latches the
// WAL first (after which the watermark can never advance).
func (m *Manager) waitDurable(seq uint64) error {
	for {
		s := m.seq.Load()
		if s >= seq {
			return nil
		}
		if m.brokenFlag.Load() {
			return errWALBroken
		}
		m.WaitSeq(context.Background(), s)
	}
}

// writeBatchLocked performs the batch's file I/O. The caller holds
// walMu (serialising against rotation, checkpoint, close and other
// flushers — but NOT against enqueue, which only takes group.mu).
// Holding walMu across the swap AND the write is what keeps the file
// in sequence order: batch N+1 cannot even be swapped out until batch
// N's flusher releases the lock. Any failure here latches the WAL
// broken: the batch's mutations are already applied in memory.
func (m *Manager) writeBatchLocked(b *groupBatch) error {
	flushStart := time.Now()
	w := m.w
	if w.failed {
		m.brokenFlag.Store(true)
		return errWALBroken
	}
	if ferr := faults.Eval("wal/append-write"); ferr != nil {
		if allow, ok := faults.AsTorn(ferr); ok && allow < len(b.buf) {
			// Persist the torn prefix a power cut would, then recover
			// the way a real short write does.
			w.f.Write(b.buf[:allow])
		}
		w.rollback()
		m.latchBroken(w)
		return ferr
	}
	if _, err := w.f.Write(b.buf); err != nil {
		w.rollback()
		m.latchBroken(w)
		return err
	}
	if m.opts.SyncMode == SyncAlways {
		if ferr := faults.Eval("wal/group-fsync"); ferr != nil {
			w.rollback()
			m.latchBroken(w)
			return ferr
		}
		if err := w.f.Sync(); err != nil {
			w.rollback()
			m.latchBroken(w)
			return err
		}
		w.dirty = false
		m.group.fsyncs.Add(1)
	} else {
		w.dirty = true
	}
	w.seq = b.lastSeq
	w.segBytes += int64(len(b.buf))
	// Publish the durable watermark: LastSeq/WaitSeq/ReadWAL and
	// checkpoint labels all key on it, so replication and snapshots only
	// ever see records that are actually on stable storage (per the
	// configured sync policy).
	m.seq.Store(b.lastSeq)
	m.group.lastCount.Store(int64(b.count))
	m.group.flushNs.Store(int64(time.Since(flushStart)))
	m.group.batches.Add(1)
	m.group.records.Add(uint64(b.count))
	m.group.waitNs.Add(time.Now().UnixNano()*int64(b.count) - b.sumEnqNs)
	m.group.sizeHist[histBucket(b.count)].Add(1)
	return nil
}

// latchBroken marks the WAL unusable after a batch failure, whether or
// not the rollback truncate succeeded: unlike the synchronous append
// path (where a clean rollback means the vetoed mutation never touched
// memory and the next write may proceed), a failed BATCH leaves applied
// state the log does not hold, so continuing would silently diverge.
// Callers hold walMu.
func (m *Manager) latchBroken(w *wal) {
	w.failed = true
	m.brokenFlag.Store(true)
}
