package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

// benchTriples builds a synthetic catalogue: n triples across n/4
// subjects with typed, plain, and spatial literals — the shape of the
// NOA hotspot product the paper's observatory persists.
func benchTriples(n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	preds := []rdf.Term{
		rdf.IRI(exNS + "hasConfidence"),
		rdf.IRI(exNS + "inSensor"),
		rdf.IRI(exNS + "hasGeometry"),
		rdf.IRI(rdf.RDFType),
	}
	for i := 0; len(out) < n; i++ {
		s := rdf.IRI(fmt.Sprintf("%shotspot/%d", exNS, i))
		out = append(out, rdf.NewTriple(s, preds[3], rdf.IRI(exNS+"Hotspot")))
		out = append(out, rdf.NewTriple(s, preds[0], rdf.DoubleLiteral(float64(i%100)/100)))
		out = append(out, rdf.NewTriple(s, preds[1], rdf.Literal(fmt.Sprintf("MSG-%d", i%3))))
		if i%10 == 0 {
			wkt := fmt.Sprintf("POINT (%.4f %.4f)", 20.0+float64(i%500)/100, 36.0+float64(i%300)/100)
			out = append(out, rdf.NewTriple(s, preds[2], rdf.TypedLiteral(wkt, rdf.StRDFWKT)))
		}
	}
	return out[:n]
}

// BenchmarkWALAppend measures the per-mutation journalling cost on the
// store's write path (no fsync: the SIGKILL-durability configuration).
func BenchmarkWALAppend(b *testing.B) {
	m, st := openBench(b, SyncNone)
	defer m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("%ss%d", exNS, i)),
			rdf.IRI(exNS+"p"),
			rdf.IntegerLiteral(int64(i))))
	}
}

// BenchmarkWALAppendBatch measures journalling a 100-triple AddAll —
// one WAL record per batch.
func BenchmarkWALAppendBatch(b *testing.B) {
	m, st := openBench(b, SyncNone)
	defer m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]rdf.Triple, 100)
		for j := range batch {
			batch[j] = rdf.NewTriple(
				rdf.IRI(fmt.Sprintf("%ss%d-%d", exNS, i, j)),
				rdf.IRI(exNS+"p"),
				rdf.IntegerLiteral(int64(j)))
		}
		st.AddAll(batch)
	}
}

// BenchmarkWALAppendSynced is BenchmarkWALAppend with an fsync per
// record — the power-loss-durable configuration.
func BenchmarkWALAppendSynced(b *testing.B) {
	m, st := openBench(b, SyncAlways)
	defer m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("%ss%d", exNS, i)),
			rdf.IRI(exNS+"p"),
			rdf.IntegerLiteral(int64(i))))
	}
}

func openBench(b *testing.B, mode SyncMode) (*Manager, *strabon.Store) {
	b.Helper()
	m, st, err := Open(Options{Dir: b.TempDir(), SyncMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	return m, st
}

func benchSizes() []int {
	if testing.Short() {
		return []int{100_000}
	}
	return []int{100_000, 1_000_000}
}

func benchFormats() []string { return []string{FormatRaw, FormatPacked} }

// BenchmarkSnapshotWrite measures producing the checkpoint payload
// (off the write path) in both on-disk formats; the reported
// bytes/op-style `disk-bytes` metric is the snapshot file size, which
// is where the packed format's compression shows up.
func BenchmarkSnapshotWrite(b *testing.B) {
	for _, n := range benchSizes() {
		for _, format := range benchFormats() {
			b.Run(fmt.Sprintf("format=%s/n=%d", format, n), func(b *testing.B) {
				dir := b.TempDir()
				st := strabon.NewStore()
				st.AddAll(benchTriples(n))
				sn := st.Snapshot()
				b.ReportAllocs()
				b.ResetTimer()
				var path string
				for i := 0; i < b.N; i++ {
					var err error
					if path, err = writeSnapshot(dir, sn, uint64(i+1), format); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if fi, err := os.Stat(path); err == nil {
					b.ReportMetric(float64(fi.Size()), "disk-bytes")
				}
			})
		}
	}
}

// BenchmarkSnapshotLoad measures the restart fast path: opening a
// snapshot and building the executor's read view — i.e. time until
// the first vectorized query can be answered. The raw format
// deserialises every column into the heap; the packed format verifies
// checksums and maps the file, deferring column decode to first
// touch. (Store-level mutation indexes are lazy on both paths; the
// first UPDATE pays for them, not the restart.)
func BenchmarkSnapshotLoad(b *testing.B) {
	for _, n := range benchSizes() {
		for _, format := range benchFormats() {
			b.Run(fmt.Sprintf("format=%s/n=%d", format, n), func(b *testing.B) {
				dir := b.TempDir()
				st := strabon.NewStore()
				st.AddAll(benchTriples(n))
				path, err := writeSnapshot(dir, st.Snapshot(), 1, format)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, _, err := readSnapshot(path)
					if err != nil {
						b.Fatal(err)
					}
					if got.Len() != st.Len() {
						b.Fatalf("loaded %d of %d", got.Len(), st.Len())
					}
					if got.Snapshot().NRows() != st.Len() {
						b.Fatal("read view incomplete")
					}
				}
			})
		}
	}
}

// BenchmarkSnapshotScanCold measures open + one full predicate-bound
// scan from a freshly opened snapshot — the "first query after
// restart" latency. For the packed format this pays the posting-list
// and column-block decodes the load benchmark deferred; the resident
// metric reports how many heap bytes the scan materialised (the
// mapped store's working set, versus the raw path's full store).
func BenchmarkSnapshotScanCold(b *testing.B) {
	for _, n := range benchSizes() {
		for _, format := range benchFormats() {
			b.Run(fmt.Sprintf("format=%s/n=%d", format, n), func(b *testing.B) {
				dir := b.TempDir()
				st := strabon.NewStore()
				st.AddAll(benchTriples(n))
				pred := rdf.IRI(exNS + "hasConfidence")
				predID, ok := st.Snapshot().Lookup(pred)
				if !ok {
					b.Fatal("bench predicate missing")
				}
				wantCard := st.Snapshot().Cardinality(strabon.TriplePattern{P: predID})
				path, err := writeSnapshot(dir, st.Snapshot(), 1, format)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var resident int64
				for i := 0; i < b.N; i++ {
					got, _, err := readSnapshot(path)
					if err != nil {
						b.Fatal(err)
					}
					sn := got.Snapshot()
					id, ok := sn.Lookup(pred)
					if !ok {
						b.Fatal("predicate missing after load")
					}
					rows := sn.MatchRows(strabon.TriplePattern{P: id}, nil)
					if len(rows) != wantCard {
						b.Fatalf("scan matched %d rows, want %d", len(rows), wantCard)
					}
					var sum uint64
					for _, r := range rows {
						sum += sn.ColID(2, r)
					}
					if sum == 0 {
						b.Fatal("scan produced no object ids")
					}
					resident = got.ResidentEstimate()
				}
				b.StopTimer()
				b.ReportMetric(float64(resident), "resident-bytes")
			})
		}
	}
}

// BenchmarkNTriplesLoad is the legacy Store.Save/Load path over the
// same data, also measured to first-query readiness — the baseline the
// snapshot fast path replaces.
func BenchmarkNTriplesLoad(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "legacy")
			st := strabon.NewStore()
			st.AddAll(benchTriples(n))
			if err := st.Save(dir); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := strabon.Load(dir)
				if err != nil {
					b.Fatal(err)
				}
				if got.Len() != st.Len() {
					b.Fatalf("loaded %d of %d", got.Len(), st.Len())
				}
				if got.Snapshot().NRows() != st.Len() {
					b.Fatal("read view incomplete")
				}
			}
		})
	}
}

// BenchmarkRecoveryReplay measures WAL-only recovery (no snapshot):
// scanning, CRC-checking and re-applying one record per triple.
func BenchmarkRecoveryReplay(b *testing.B) {
	const n = 20_000
	dir := b.TempDir()
	m, st, err := Open(Options{Dir: dir, SyncMode: SyncNone, NoCheckpointOnClose: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range benchTriples(n) {
		st.Add(t)
	}
	if err := m.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m2, got, err := Open(Options{Dir: dir, SyncMode: SyncNone, NoCheckpointOnClose: true})
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != n {
			b.Fatalf("recovered %d of %d", got.Len(), n)
		}
		m2.Close()
	}
}

// TestBenchTriplesShape keeps the generator honest (and exercises the
// snapshot roundtrip over a mid-sized store in ordinary test runs).
func TestBenchTriplesShape(t *testing.T) {
	ts := benchTriples(5000)
	if len(ts) != 5000 {
		t.Fatalf("generator returned %d triples", len(ts))
	}
	st := strabon.NewStore()
	if added := st.AddAll(ts); added != 5000 {
		t.Fatalf("generator produced %d duplicates", 5000-added)
	}
	dir := t.TempDir()
	path, err := writeSnapshot(dir, st.Snapshot(), 1, FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	got, seq, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || got.Len() != st.Len() {
		t.Fatalf("roundtrip: seq=%d len=%d want len=%d", seq, got.Len(), st.Len())
	}
	var a, bb bytes.Buffer
	_ = rdf.WriteNTriples(&a, st.Triples())
	_ = rdf.WriteNTriples(&bb, got.Triples())
	if !bytes.Equal(a.Bytes(), bb.Bytes()) {
		t.Fatal("snapshot roundtrip changed triple serialisation")
	}
	os.RemoveAll(dir)
}
