package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/strabon"
)

const exNS = "http://example.org/"

func tr(s, p, o string) rdf.Triple {
	return rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(exNS+p), rdf.IRI(exNS+o))
}

func trLit(s, p string, o rdf.Term) rdf.Triple {
	return rdf.NewTriple(rdf.IRI(exNS+s), rdf.IRI(exNS+p), o)
}

// canonTriples renders a store's live triples as sorted N-Triples-ish
// lines, a content fingerprint independent of row order.
func canonTriples(st *strabon.Store) []string {
	ts := st.Triples()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.S.String() + " " + t.P.String() + " " + t.O.String()
	}
	sort.Strings(out)
	return out
}

func assertSameContent(t *testing.T, want, got *strabon.Store) {
	t.Helper()
	w, g := canonTriples(want), canonTriples(got)
	if len(w) != len(g) {
		t.Fatalf("triple count mismatch: want %d, got %d", len(w), len(g))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("triple %d mismatch:\nwant %s\ngot  %s", i, w[i], g[i])
		}
	}
}

func mustOpen(t *testing.T, dir string, tweak func(*Options)) (*Manager, *strabon.Store) {
	t.Helper()
	opts := Options{Dir: dir, SyncMode: SyncNone, Logf: t.Logf}
	if tweak != nil {
		tweak(&opts)
	}
	m, st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return m, st
}

func TestEmptyDirYieldsEmptyStore(t *testing.T) {
	m, st := mustOpen(t, t.TempDir(), nil)
	defer m.Close()
	if st.Len() != 0 {
		t.Fatalf("fresh store has %d triples", st.Len())
	}
	if stats := m.Stats(); stats.LastSeq != 0 {
		t.Fatalf("fresh wal at seq %d", stats.LastSeq)
	}
}

func TestWALReplayWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.NoCheckpointOnClose = true })
	st.Add(tr("s1", "p", "o1"))
	st.AddAll([]rdf.Triple{tr("s2", "p", "o2"), tr("s3", "p", "o3"), tr("s2", "p", "o2")})
	st.Add(trLit("s4", "label", rdf.Literal("multi\nline \"quoted\" \\u2603 ☃")))
	st.Add(trLit("s5", "geom", rdf.TypedLiteral("POINT (23.7 37.9)", rdf.StRDFWKT)))
	st.Remove(tr("s1", "p", "o1"))
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// No snapshot must exist: this exercises pure log replay.
	if snaps, _ := listSnapshots(dir); len(snaps) != 0 {
		t.Fatalf("unexpected snapshots %v", snaps)
	}

	m2, st2 := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, st2)
	if st2.Len() != 4 {
		t.Fatalf("recovered %d triples, want 4", st2.Len())
	}
	// The spatial literal's geometry cache must be rebuilt on replay.
	id, err := st2.LookupID(rdf.TypedLiteral("POINT (23.7 37.9)", rdf.StRDFWKT))
	if err != nil {
		t.Fatalf("spatial literal missing from dictionary: %v", err)
	}
	if _, ok := st2.Geometry(id); !ok {
		t.Fatalf("geometry cache not rebuilt for id %d", id)
	}
	if m2.Stats().ReplayedRecords == 0 {
		t.Fatal("expected replayed records")
	}
}

func TestSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.NoCheckpointOnClose = true })
	for i := 0; i < 50; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint tail: adds, a remove, a compact.
	for i := 50; i < 60; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "p", "o"))
	}
	st.Remove(tr("s10", "p", "o"))
	st.Compact()
	m.Close()

	m2, st2 := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, st2)
	if got := m2.Stats().ReplayedRecords; got != 12 {
		t.Fatalf("replayed %d records, want 12 (10 adds + remove + compact)", got)
	}
}

func TestCheckpointPrunesWALAndOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.KeepSnapshots = 2 })
	for round := 0; round < 4; round++ {
		for i := 0; i < 20; i++ {
			st.Add(tr(fmt.Sprintf("r%d-s%d", round, i), "p", "o"))
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", round, err)
		}
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots, want 2", len(snaps))
	}
	segs, _ := listSegments(dir)
	// Everything before the newest checkpoint is covered by it: only the
	// live append segment (and possibly the one rotated at checkpoint
	// time) should remain.
	if len(segs) > 2 {
		t.Fatalf("kept %d wal segments after checkpoint, want <= 2", len(segs))
	}
	m.Close()

	m2, st2 := mustOpen(t, dir, nil)
	defer m2.Close()
	assertSameContent(t, st, st2)
}

func TestIdempotentCheckpointSkips(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, nil)
	defer m.Close()
	st.Add(tr("s", "p", "o"))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, _ := listSnapshots(dir)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := listSnapshots(dir)
	if len(after) != len(before) || after[0] != before[0] {
		t.Fatalf("no-op checkpoint changed snapshots: %v -> %v", before, after)
	}
}

// TestDictionaryIDsStableAcrossRecovery asserts the replayed dictionary
// assigns the same ids as the original (replay re-encodes new triples in
// original order).
func TestDictionaryIDsStableAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, func(o *Options) { o.NoCheckpointOnClose = true })
	terms := []rdf.Term{
		rdf.IRI(exNS + "alpha"),
		rdf.Literal("beta"),
		rdf.TypedLiteral("POINT (1 2)", rdf.StRDFWKT),
		rdf.LangLiteral("gamma", "en"),
	}
	for i, tm := range terms {
		st.Add(trLit(fmt.Sprintf("s%d", i), "p", tm))
	}
	ids := make(map[string]uint64)
	for _, tm := range terms {
		id, err := st.LookupID(tm)
		if err != nil {
			t.Fatal(err)
		}
		ids[tm.String()] = id
	}
	m.Close()

	m2, st2 := mustOpen(t, dir, nil)
	defer m2.Close()
	for _, tm := range terms {
		id, err := st2.LookupID(tm)
		if err != nil {
			t.Fatalf("%s missing after recovery: %v", tm, err)
		}
		if id != ids[tm.String()] {
			t.Fatalf("%s: id %d after recovery, was %d", tm, id, ids[tm.String()])
		}
	}
}

func TestJournalVetoOnClosedWAL(t *testing.T) {
	dir := t.TempDir()
	m, st := mustOpen(t, dir, nil)
	st.Add(tr("s", "p", "o"))
	// Close the manager, then force more writes through the still-alive
	// store: the journal was detached by Close, so they apply in memory
	// only — and a fresh manager must not see them.
	m.Close()
	st.Add(tr("after", "p", "o"))
	if st.Len() != 2 {
		t.Fatalf("in-memory store should accept post-close writes, len=%d", st.Len())
	}
	_, st2 := mustOpenAndClose(t, dir)
	if st2.Len() != 1 {
		t.Fatalf("recovered %d triples, want only the journalled 1", st2.Len())
	}
}

func mustOpenAndClose(t *testing.T, dir string) (*Manager, *strabon.Store) {
	t.Helper()
	m, st := mustOpen(t, dir, nil)
	m.Close()
	return m, st
}

// --- corruption table -------------------------------------------------------

// buildDataDir populates a data directory with two snapshot generations
// (covering the first 20 and first 30 triples) and a WAL tail holding 20
// more, closing without a final checkpoint. The WAL retains everything
// past the OLDER snapshot (records 21..50), so the newer snapshot is a
// single point of failure only for nothing.
func buildDataDir(t *testing.T, dir string) *strabon.Store {
	t.Helper()
	m, st := mustOpen(t, dir, func(o *Options) { o.NoCheckpointOnClose = true })
	for i := 0; i < 20; i++ {
		st.Add(tr(fmt.Sprintf("base%d", i), "p", "o"))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		st.Add(tr(fmt.Sprintf("base%d", i), "p", "o"))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st.Add(tr(fmt.Sprintf("tail%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return st
}

// lastSegment returns the path of the highest-firstseq WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1].path
}

// TestAllSnapshotsCorruptRefusesToBoot: when no snapshot generation
// loads and the WAL has already been pruned against one, the records
// bridging genesis to the surviving log are gone — recovery must fail
// loudly instead of booting (and later re-checkpointing) a store that
// silently lost its checkpointed prefix.
func TestAllSnapshotsCorruptRefusesToBoot(t *testing.T) {
	dir := t.TempDir()
	buildDataDir(t, dir)
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 2 {
		t.Fatalf("expected 2 snapshot generations, have %d", len(snaps))
	}
	for _, p := range snaps {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := Open(Options{Dir: dir, SyncMode: SyncNone, Logf: t.Logf})
	if err == nil {
		t.Fatal("Open succeeded with every snapshot corrupt and a pruned WAL")
	}
	if !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A WAL that was never pruned (no checkpoint yet) has no such gap:
	// losing a snapshot that covers nothing the log lacks must still
	// boot via full replay.
	dir2 := t.TempDir()
	m, st := mustOpen(t, dir2, func(o *Options) { o.NoCheckpointOnClose = true })
	st.Add(tr("only", "p", "o"))
	m.Close()
	m2, st2 := mustOpen(t, dir2, nil)
	defer m2.Close()
	if st2.Len() != 1 {
		t.Fatalf("full replay boot recovered %d triples", st2.Len())
	}
}

func TestRecoveryCorruptionTable(t *testing.T) {
	cases := []struct {
		name string
		// corrupt mutates the data dir after buildDataDir.
		corrupt func(t *testing.T, dir string)
		// wantLost is how many of the 50 triples may be missing after
		// recovery (tail records dropped by the corruption).
		wantLost int
	}{
		{
			name: "truncated final wal record",
			corrupt: func(t *testing.T, dir string) {
				p := lastSegment(t, dir)
				fi, err := os.Stat(p)
				if err != nil {
					t.Fatal(err)
				}
				// Chop into the middle of the final record's payload.
				if err := os.Truncate(p, fi.Size()-7); err != nil {
					t.Fatal(err)
				}
			},
			wantLost: 1,
		},
		{
			name: "bit-flipped record CRC",
			corrupt: func(t *testing.T, dir string) {
				p := lastSegment(t, dir)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				// Flip one bit in the middle of the last record's body; its
				// CRC check must reject it (and, it being the final record,
				// recovery drops exactly that one).
				data[len(data)-3] ^= 0x10
				if err := os.WriteFile(p, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantLost: 1,
		},
		{
			name: "missing newest snapshot falls back to the previous generation",
			corrupt: func(t *testing.T, dir string) {
				snaps, _ := listSnapshots(dir)
				os.Remove(snaps[0])
			},
			// The older snapshot plus the WAL tail past it (which pruning
			// deliberately retained) reconstructs everything.
			wantLost: 0,
		},
		{
			name: "bit-flipped newest snapshot falls back to the previous generation",
			corrupt: func(t *testing.T, dir string) {
				snaps, _ := listSnapshots(dir)
				data, err := os.ReadFile(snaps[0])
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xff
				if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantLost: 0,
		},
		// (Losing EVERY snapshot generation is a double fault that makes
		// the checkpointed prefix unrecoverable; Open must refuse rather
		// than boot a silently truncated store — covered separately by
		// TestAllSnapshotsCorruptRefusesToBoot.)
		{
			name: "half-renamed snapshot temp file is ignored",
			corrupt: func(t *testing.T, dir string) {
				// Simulate a crash between temp-write and rename: a *.snap.tmp
				// with plausible garbage. Recovery must not even look at it.
				tmp := filepath.Join(dir, snapName(1<<40)+".tmp")
				if err := os.WriteFile(tmp, []byte(snapMagic+"garbage"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantLost: 0,
		},
		{
			name: "garbage appended to wal",
			corrupt: func(t *testing.T, dir string) {
				p := lastSegment(t, dir)
				f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
				f.Close()
			},
			wantLost: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := buildDataDir(t, dir)
			tc.corrupt(t, dir)
			m, got := mustOpen(t, dir, nil)
			defer m.Close()
			lost := want.Len() - got.Len()
			if lost < 0 || lost > tc.wantLost {
				t.Fatalf("lost %d triples, tolerated %d (recovered %d of %d)",
					lost, tc.wantLost, got.Len(), want.Len())
			}
			// Whatever survived must be a clean prefix-consistent subset:
			// every recovered triple exists in the original.
			wantSet := map[string]bool{}
			for _, line := range canonTriples(want) {
				wantSet[line] = true
			}
			for _, line := range canonTriples(got) {
				if !wantSet[line] {
					t.Fatalf("recovered alien triple %s", line)
				}
			}
			// And the recovered store must keep working: append + reopen.
			got.Add(tr("post-recovery", "p", "o"))
			postLen := got.Len()
			m.Close()
			m2, again := mustOpen(t, dir, nil)
			defer m2.Close()
			if again.Len() != postLen {
				t.Fatalf("post-recovery write lost: %d != %d", again.Len(), postLen)
			}
		})
	}
}
