package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRangeCoversEveryIndex checks that Range touches each index exactly
// once at several worker bounds, including bounds above GOMAXPROCS.
func TestRangeCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		prev := SetParallelism(workers)
		for _, n := range []int{0, 1, 7, 1000, 1 << 15} {
			var hits sync.Map
			var count atomic.Int64
			Range(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if _, dup := hits.LoadOrStore(i, true); dup {
						t.Errorf("workers=%d n=%d: index %d visited twice", workers, n, i)
					}
					count.Add(1)
				}
			})
			if got := count.Load(); got != int64(n) {
				t.Fatalf("workers=%d n=%d: visited %d indexes", workers, n, got)
			}
		}
		SetParallelism(prev)
	}
}

// TestMorselsDeterministicDecomposition pins the morsel boundary
// contract the query executor relies on: morsel m covers
// [m*size, min(n, (m+1)*size)) at EVERY worker count.
func TestMorselsDeterministicDecomposition(t *testing.T) {
	const n, size = 1003, 64
	want := (n + size - 1) / size
	for _, workers := range []int{1, 2, 3, 8, 64} {
		bounds := make([][2]int, want)
		nm := Morsels(n, size, workers, func(m, lo, hi int) {
			bounds[m] = [2]int{lo, hi}
		})
		if nm != want {
			t.Fatalf("workers=%d: morsel count %d, want %d", workers, nm, want)
		}
		for m := 0; m < nm; m++ {
			wantLo := m * size
			wantHi := wantLo + size
			if wantHi > n {
				wantHi = n
			}
			if bounds[m] != [2]int{wantLo, wantHi} {
				t.Fatalf("workers=%d morsel %d: bounds %v, want [%d %d]",
					workers, m, bounds[m], wantLo, wantHi)
			}
		}
	}
}

// TestMorselsWorkStealing forces real concurrency (GOMAXPROCS raised
// above 1 for the duration) and checks every morsel runs exactly once
// even with pathological skew in per-morsel cost.
func TestMorselsWorkStealing(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n, size = 4096, 32
	var ran [n / size]atomic.Int32
	var spin atomic.Int64
	Morsels(n, size, 4, func(m, lo, hi int) {
		ran[m].Add(1)
		// Skew: early morsels are ~100x more expensive.
		iters := 1
		if m < 4 {
			iters = 100
		}
		for i := 0; i < iters*1000; i++ {
			spin.Add(1)
		}
	})
	for m := range ran {
		if got := ran[m].Load(); got != 1 {
			t.Fatalf("morsel %d ran %d times", m, got)
		}
	}
}

// TestPoolSharedAcrossGoroutines hammers the pool from many goroutines
// at once: saturation falls back to inline execution rather than
// deadlocking, and every caller still sees its own full range.
func TestPoolSharedAcrossGoroutines(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			total := make([]int, 1<<15)
			Range(len(total), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					total[i] = i + g
				}
			})
			for i := range total {
				if total[i] != i+g {
					t.Errorf("goroutine %d: cell %d = %d", g, i, total[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBudgetTracksGOMAXPROCS: the slot budget is re-read per acquire, so
// raising GOMAXPROCS after first use still grants slots (the historical
// channel-based pool froze its capacity at first touch).
func TestBudgetTracksGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// At GOMAXPROCS=1 the budget is zero: no slot may be acquired.
	if acquireSlot() {
		releaseSlot()
		t.Fatal("acquired a slot with GOMAXPROCS=1")
	}
	runtime.GOMAXPROCS(3)
	if !acquireSlot() {
		t.Fatal("no slot available after raising GOMAXPROCS")
	}
	releaseSlot()
}

// TestSetParallelismRestores checks the previous-bound return contract.
func TestSetParallelismRestores(t *testing.T) {
	prev := SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	if back := SetParallelism(prev); back != 3 {
		t.Fatalf("SetParallelism returned %d, want 3", back)
	}
}
