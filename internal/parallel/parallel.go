// Package parallel is the process-wide slot-budget worker pool shared by
// every parallel execution tier: the 2D array kernels (internal/array),
// the SciQL columnar executor's tile fan-out, the ingestion tier
// (internal/ingest), the NOA chain (internal/noa, internal/kdd) and the
// stSPARQL morsel-parallel query executor (internal/stsparql). One
// budget of GOMAXPROCS-1 extra goroutines bounds the whole process, so
// concurrent callers — a query fanning out morsels while an ingest job
// tiles a frame — never oversubscribe the machine.
//
// Slots are acquired with a non-blocking try: when none are free, or
// when a parallel section nests inside another, work simply runs inline
// on the caller's goroutine. Workers never wait for a slot and spawned
// workers always terminate, so nesting cannot deadlock.
//
// Two entry points cover the two decomposition shapes:
//
//   - Range splits [0, n) into one contiguous chunk per worker — the
//     right shape for kernels whose per-element cost is uniform.
//   - Morsels splits [0, n) into fixed-size batches pulled from a shared
//     cursor (work stealing): idle workers grab the next batch, so skew
//     — a query morsel whose rows join against far more candidates than
//     its neighbours' — self-balances. The decomposition depends only on
//     (n, size), never on scheduling, which is what lets the morsel-
//     parallel query executor promise bit-identical output at every
//     parallelism level.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	// inFlight counts extra goroutines currently running across ALL
	// callers; the budget is GOMAXPROCS-1 (the caller's goroutine is the
	// implicit extra worker), re-read on every acquire so tests and
	// embedders that change GOMAXPROCS mid-process are honoured.
	inFlight atomic.Int32
	// parallelism is the maximum number of concurrent workers per
	// Range/Morsels call; 0 means GOMAXPROCS.
	parallelism atomic.Int32
)

// Parallelism reports the current per-call worker bound (GOMAXPROCS when
// unset).
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism bounds the number of concurrently executing workers per
// parallel call; n <= 0 restores the default (GOMAXPROCS). It returns
// the previous bound (0 meaning default) so ablations can restore it.
func SetParallelism(n int) int {
	prev := int(parallelism.Load())
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
	return prev
}

// acquireSlot claims one extra-goroutine slot without blocking. On a
// single-CPU machine the budget is zero and everything runs inline.
func acquireSlot() bool {
	budget := int32(runtime.GOMAXPROCS(0) - 1)
	for {
		cur := inFlight.Load()
		if cur >= budget {
			return false
		}
		if inFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseSlot() { inFlight.Add(-1) }

// Range runs fn over [0, n) split into contiguous chunks, one chunk per
// worker, waiting for all chunks. fn must be safe to call concurrently
// on disjoint ranges. Small ranges (and Parallelism() == 1) run inline.
func Range(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	Morsels(n, chunk, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// Morsels partitions [0, n) into fixed-size batches and dispatches them
// to up to `workers` goroutines through a shared cursor: each worker
// loops pulling the next unclaimed morsel until none remain, so uneven
// per-morsel cost balances automatically. Morsel m always covers
// [m*size, min(n, (m+1)*size)) — the decomposition is a pure function
// of (n, size), independent of scheduling. Returns the morsel count.
//
// fn may be called concurrently (on distinct morsels) and must not
// assume any call order. Extra workers beyond the caller are gated on
// the global slot budget; when the pool is saturated the caller drains
// every morsel inline.
func Morsels(n, size, workers int, fn func(m, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if size <= 0 {
		size = 1
	}
	nm := (n + size - 1) / size
	if workers > nm {
		workers = nm
	}
	if workers <= 1 || nm == 1 {
		for m := 0; m < nm; m++ {
			hi := (m + 1) * size
			if hi > n {
				hi = n
			}
			fn(m, m*size, hi)
		}
		return nm
	}
	var cursor atomic.Int32
	drain := func() {
		for {
			m := int(cursor.Add(1)) - 1
			if m >= nm {
				return
			}
			lo := m * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(m, lo, hi)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		if !acquireSlot() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer releaseSlot()
			drain()
		}()
	}
	drain()
	wg.Wait()
	return nm
}
