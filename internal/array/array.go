// Package array implements the multidimensional array model beneath SciQL:
// dense n-dimensional arrays with named dimensions stored in row-major
// order over the columnar kernel's value vectors. SciQL (internal/sciql)
// compiles array queries to the operations here; the ingestion tier uses
// them for cropping, resampling and classification of satellite imagery,
// exactly the workload the paper assigns to SciQL.
package array

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Dim describes one array dimension: a name and its extent [0, Size).
type Dim struct {
	Name string
	Size int
}

// Array is a dense n-dimensional float64 array. Row-major layout: the last
// dimension varies fastest. The zero value is unusable; call New.
type Array struct {
	Name string
	Dims []Dim
	Data []float64
	// Null marks cells without a value (SciQL arrays admit null cells).
	// nil means all cells are valid.
	Null []bool
}

// New allocates an array of the given dimensions filled with zeros.
func New(name string, dims ...Dim) (*Array, error) {
	n := 1
	for _, d := range dims {
		if d.Size <= 0 {
			return nil, fmt.Errorf("array: dimension %q has non-positive size %d", d.Name, d.Size)
		}
		if n > (1<<40)/d.Size {
			return nil, fmt.Errorf("array: total size overflow")
		}
		n *= d.Size
	}
	ds := make([]Dim, len(dims))
	copy(ds, dims)
	return &Array{Name: name, Dims: ds, Data: make([]float64, n)}, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(name string, dims ...Dim) *Array {
	a, err := New(name, dims...)
	if err != nil {
		panic(err)
	}
	return a
}

// FromData wraps data (not copied) as an array; len(data) must equal the
// product of the dimension sizes.
func FromData(name string, data []float64, dims ...Dim) (*Array, error) {
	n := 1
	for _, d := range dims {
		n *= d.Size
	}
	if len(data) != n {
		return nil, fmt.Errorf("array: data length %d does not match dims product %d", len(data), n)
	}
	ds := make([]Dim, len(dims))
	copy(ds, dims)
	return &Array{Name: name, Dims: ds, Data: data}, nil
}

// Rank reports the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// Size reports the total cell count.
func (a *Array) Size() int { return len(a.Data) }

// DimIndex returns the index of the named dimension, or -1.
func (a *Array) DimIndex(name string) int {
	for i, d := range a.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// offset computes the flat index of idx (must have one entry per
// dimension, each in range).
func (a *Array) offset(idx []int) (int, error) {
	if len(idx) != len(a.Dims) {
		return 0, fmt.Errorf("array: %d indices for rank-%d array", len(idx), len(a.Dims))
	}
	off := 0
	for i, d := range a.Dims {
		if idx[i] < 0 || idx[i] >= d.Size {
			return 0, fmt.Errorf("array: index %d out of range [0,%d) for dimension %q", idx[i], d.Size, d.Name)
		}
		off = off*d.Size + idx[i]
	}
	return off, nil
}

// At returns the value at idx.
func (a *Array) At(idx ...int) (float64, error) {
	off, err := a.offset(idx)
	if err != nil {
		return 0, err
	}
	return a.Data[off], nil
}

// Set assigns the value at idx.
func (a *Array) Set(v float64, idx ...int) error {
	off, err := a.offset(idx)
	if err != nil {
		return err
	}
	a.Data[off] = v
	if a.Null != nil {
		a.Null[off] = false
	}
	return nil
}

// SetNull marks the cell at idx as null.
func (a *Array) SetNull(idx ...int) error {
	off, err := a.offset(idx)
	if err != nil {
		return err
	}
	if a.Null == nil {
		a.Null = make([]bool, len(a.Data))
	}
	a.Null[off] = true
	return nil
}

// IsNull reports whether the cell at flat offset off is null.
func (a *Array) IsNull(off int) bool { return a.Null != nil && a.Null[off] }

// At2 is the 2D fast path (y, x) used by the raster pipeline.
func (a *Array) At2(y, x int) float64 {
	return a.Data[y*a.Dims[1].Size+x]
}

// Set2 is the 2D fast path (y, x).
func (a *Array) Set2(y, x int, v float64) {
	a.Data[y*a.Dims[1].Size+x] = v
}

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	out := &Array{Name: a.Name, Dims: append([]Dim(nil), a.Dims...), Data: append([]float64(nil), a.Data...)}
	if a.Null != nil {
		out.Null = append([]bool(nil), a.Null...)
	}
	return out
}

// Slice extracts the rectangular subarray [lo[i], hi[i]) per dimension —
// SciQL's dimension-range selection (the demo's cropping step).
func (a *Array) Slice(lo, hi []int) (*Array, error) {
	if len(lo) != len(a.Dims) || len(hi) != len(a.Dims) {
		return nil, fmt.Errorf("array: slice bounds rank mismatch")
	}
	dims := make([]Dim, len(a.Dims))
	for i, d := range a.Dims {
		if lo[i] < 0 || hi[i] > d.Size || lo[i] >= hi[i] {
			return nil, fmt.Errorf("array: bad slice [%d,%d) for dimension %q of size %d", lo[i], hi[i], d.Name, d.Size)
		}
		dims[i] = Dim{Name: d.Name, Size: hi[i] - lo[i]}
	}
	out, err := New(a.Name, dims...)
	if err != nil {
		return nil, err
	}
	if a.Null != nil {
		out.Null = make([]bool, len(out.Data))
	}
	// Iterate over the output coordinates.
	idx := make([]int, len(dims))
	src := make([]int, len(dims))
	for flat := 0; flat < len(out.Data); flat++ {
		for i := range idx {
			src[i] = idx[i] + lo[i]
		}
		sOff, _ := a.offset(src)
		out.Data[flat] = a.Data[sOff]
		if a.Null != nil {
			out.Null[flat] = a.Null[sOff]
		}
		// Increment odometer.
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < dims[i].Size {
				break
			}
			idx[i] = 0
		}
	}
	return out, nil
}

// Map applies f to every valid cell, returning a new array. Cells are
// processed tile-parallel across the shared worker pool, so f must be
// safe for concurrent calls (pure functions always are).
func (a *Array) Map(f func(float64) float64) *Array {
	out := a.Clone()
	if len(out.Data) < minParallelCells {
		for i, v := range out.Data {
			if !out.IsNull(i) {
				out.Data[i] = f(v)
			}
		}
		return out
	}
	parallel.Range(len(out.Data), func(lo, hi int) {
		data := out.Data[lo:hi]
		if out.Null == nil {
			for i, v := range data {
				data[i] = f(v)
			}
			return
		}
		nulls := out.Null[lo:hi]
		for i, v := range data {
			if !nulls[i] {
				data[i] = f(v)
			}
		}
	})
	return out
}

// Combine applies f cell-wise across two arrays of identical shape. A cell
// that is null in either input is null in the output.
func Combine(a, b *Array, f func(x, y float64) float64) (*Array, error) {
	if len(a.Dims) != len(b.Dims) {
		return nil, fmt.Errorf("array: rank mismatch %d vs %d", len(a.Dims), len(b.Dims))
	}
	for i := range a.Dims {
		if a.Dims[i].Size != b.Dims[i].Size {
			return nil, fmt.Errorf("array: dimension %d size mismatch %d vs %d", i, a.Dims[i].Size, b.Dims[i].Size)
		}
	}
	out := a.Clone()
	if b.Null != nil && out.Null == nil {
		out.Null = make([]bool, len(out.Data))
	}
	combine := func(lo, hi int) {
		if out.Null == nil {
			for i := lo; i < hi; i++ {
				out.Data[i] = f(a.Data[i], b.Data[i])
			}
			return
		}
		for i := lo; i < hi; i++ {
			if a.IsNull(i) || b.IsNull(i) {
				out.Null[i] = true
				out.Data[i] = 0
				continue
			}
			out.Data[i] = f(a.Data[i], b.Data[i])
		}
	}
	if len(out.Data) < minParallelCells {
		combine(0, len(out.Data))
	} else {
		// f runs tile-parallel; it must be safe for concurrent calls.
		parallel.Range(len(out.Data), combine)
	}
	return out, nil
}

// Stats summarises the valid cells of an array.
type Stats struct {
	Count    int
	Sum      float64
	Min, Max float64
	Mean     float64
	StdDev   float64
}

// summarizeBlock is the fixed partial-reduction granule of Summarize.
// Partials are always accumulated per summarizeBlock-sized slice and
// merged in block order, so the result is bit-identical at every
// parallelism level (1, 2, 4, GOMAXPROCS workers all reduce the same
// block partials in the same order).
const summarizeBlock = 32 << 10

// Summarize computes aggregate statistics over the valid cells. Blocks
// of cells reduce tile-parallel on the shared worker pool.
func (a *Array) Summarize() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sumSq float64
	n := len(a.Data)
	if n <= summarizeBlock {
		if a.Null == nil {
			for _, v := range a.Data {
				s.Sum += v
				sumSq += v * v
				if v < s.Min {
					s.Min = v
				}
				if v > s.Max {
					s.Max = v
				}
			}
			s.Count = n
		} else {
			for i, v := range a.Data {
				if a.Null[i] {
					continue
				}
				s.Count++
				s.Sum += v
				sumSq += v * v
				if v < s.Min {
					s.Min = v
				}
				if v > s.Max {
					s.Max = v
				}
			}
		}
	} else {
		type partial struct {
			count    int
			sum      float64
			sumSq    float64
			min, max float64
		}
		nBlocks := (n + summarizeBlock - 1) / summarizeBlock
		parts := make([]partial, nBlocks)
		parallel.Range(nBlocks, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				p := partial{min: math.Inf(1), max: math.Inf(-1)}
				end := (b + 1) * summarizeBlock
				if end > n {
					end = n
				}
				data := a.Data[b*summarizeBlock : end]
				if a.Null == nil {
					for _, v := range data {
						p.count++
						p.sum += v
						p.sumSq += v * v
						if v < p.min {
							p.min = v
						}
						if v > p.max {
							p.max = v
						}
					}
				} else {
					nulls := a.Null[b*summarizeBlock : end]
					for i, v := range data {
						if nulls[i] {
							continue
						}
						p.count++
						p.sum += v
						p.sumSq += v * v
						if v < p.min {
							p.min = v
						}
						if v > p.max {
							p.max = v
						}
					}
				}
				parts[b] = p
			}
		})
		for _, p := range parts {
			s.Count += p.count
			s.Sum += p.sum
			sumSq += p.sumSq
			if p.min < s.Min {
				s.Min = p.min
			}
			if p.max > s.Max {
				s.Max = p.max
			}
		}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		variance := sumSq/float64(s.Count) - s.Mean*s.Mean
		if variance < 0 {
			variance = 0
		}
		s.StdDev = math.Sqrt(variance)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s
}

// MinMax reports the extremes of the valid cells without the full
// Summarize reduction — the binning pre-pass of patch extraction only
// needs the range. ok is false when no cell is valid.
func (a *Array) MinMax() (min, max float64, ok bool) {
	min, max = math.Inf(1), math.Inf(-1)
	if a.Null == nil {
		for _, v := range a.Data {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		ok = len(a.Data) > 0
	} else {
		for i, v := range a.Data {
			if a.Null[i] {
				continue
			}
			ok = true
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	return min, max, true
}

// Histogram counts valid cells into nBins equal-width bins over [lo, hi].
// Values outside the range clamp to the end bins.
func (a *Array) Histogram(lo, hi float64, nBins int) []int {
	if nBins <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, nBins)
	w := (hi - lo) / float64(nBins)
	for i, v := range a.Data {
		if a.IsNull(i) {
			continue
		}
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		bins[b]++
	}
	return bins
}
