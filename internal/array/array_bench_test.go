package array

import (
	"fmt"
	"testing"
)

func benchImage(size int) *Array {
	a := MustNew("img", Dim{Name: "y", Size: size}, Dim{Name: "x", Size: size})
	for i := range a.Data {
		a.Data[i] = float64(i%251) / 251
	}
	return a
}

func BenchmarkConvolve2D(b *testing.B) {
	for _, size := range []int{128, 512} {
		img := benchImage(size)
		kernel := [][]float64{{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := img.Convolve2D(kernel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkResampleBilinear(b *testing.B) {
	img := benchImage(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := img.Resample(256, 256, Bilinear); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTileAvg(b *testing.B) {
	img := benchImage(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := img.Tile(16, 16, "avg"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	img := benchImage(512)
	mask := img.Threshold(0.9) // ~10% of cells set, fragmented
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps, err := mask.ConnectedComponents()
		if err != nil {
			b.Fatal(err)
		}
		if len(comps) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	img := benchImage(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := img.Summarize(); s.Count == 0 {
			b.Fatal("empty")
		}
	}
}
