package array

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/parallel"
)

func benchImage(size int) *Array {
	a := MustNew("img", Dim{Name: "y", Size: size}, Dim{Name: "x", Size: size})
	for i := range a.Data {
		a.Data[i] = float64(i%251) / 251
	}
	return a
}

// The 2D kernels are benchmark-gated at 128² and 512² (the NOA chain's
// working sizes); BenchmarkAblationParallelKernels sweeps the worker
// count for the cores-scaling ablation.

func BenchmarkConvolve2D(b *testing.B) {
	kernel := [][]float64{{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}
	for _, size := range []int{128, 512} {
		img := benchImage(size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := img.Convolve2D(kernel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkResampleBilinear(b *testing.B) {
	for _, size := range []int{128, 512} {
		img := benchImage(size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := img.Resample(size/2, size/2, Bilinear); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTileAvg(b *testing.B) {
	for _, size := range []int{128, 512} {
		img := benchImage(size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := img.Tile(16, 16, "avg"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	for _, size := range []int{128, 512} {
		img := benchImage(size)
		mask := img.Threshold(0.9) // ~10% of cells set, fragmented
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comps, err := mask.ConnectedComponents()
				if err != nil {
					b.Fatal(err)
				}
				if len(comps) == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

func BenchmarkSummarize(b *testing.B) {
	for _, size := range []int{512, 1024} {
		img := benchImage(size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := img.Summarize(); s.Count == 0 {
					b.Fatal("empty")
				}
			}
		})
	}
}

// A5 — ablation: tile-parallel kernel scaling across worker counts
// (1, 2, 4 and GOMAXPROCS), at both gated image sizes.
func BenchmarkAblationParallelKernels(b *testing.B) {
	kernel := [][]float64{{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}
	workerSet := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		workerSet = append(workerSet, n)
	}
	for _, size := range []int{128, 512} {
		img := benchImage(size)
		mask := img.Threshold(0.9)
		for _, workers := range workerSet {
			b.Run(fmt.Sprintf("size=%d/workers=%d", size, workers), func(b *testing.B) {
				prev := parallel.SetParallelism(workers)
				defer parallel.SetParallelism(prev)
				for i := 0; i < b.N; i++ {
					if _, err := img.Convolve2D(kernel); err != nil {
						b.Fatal(err)
					}
					if _, err := img.Tile(16, 16, "avg"); err != nil {
						b.Fatal(err)
					}
					if _, err := mask.ConnectedComponents(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
