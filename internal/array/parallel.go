package array

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shared tile-parallel execution. The 2D kernels (Convolve2D, Resample,
// Tile, ConnectedComponents, Summarize, Map, Combine) split their row or
// cell ranges into chunks; the ingestion tier (internal/ingest) and the
// NOA chain (internal/noa, internal/kdd) fan their patch and annotation
// work over the same machinery, so one process never oversubscribes the
// machine: a global slot budget of GOMAXPROCS-1 bounds the extra
// goroutines in flight across ALL concurrent callers.
//
// Slots are acquired with a non-blocking try: when none are free — or
// when a parallel section nests inside another — the chunk simply runs
// inline on the caller's goroutine. Workers never wait for a slot and
// spawned chunks always terminate, so nesting cannot deadlock. Small
// inputs skip the machinery entirely. SetParallelism bounds the number
// of chunks per call (the cores-scaling ablation measures 1, 2, 4 and
// GOMAXPROCS).

var (
	slotsOnce  sync.Once
	extraSlots chan struct{}
	// parallelism is the maximum number of concurrent chunks per
	// ParallelRange call; 0 means GOMAXPROCS.
	parallelism atomic.Int32
)

// minParallelCells is the smallest range worth splitting: below this the
// goroutine handoff costs more than the work.
const minParallelCells = 16 << 10

// Parallelism reports the current worker bound (GOMAXPROCS when unset).
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism bounds the number of concurrently executing chunks per
// parallel kernel call; n <= 0 restores the default (GOMAXPROCS). It
// returns the previous bound (0 meaning default) so ablations can restore
// it.
func SetParallelism(n int) int {
	prev := int(parallelism.Load())
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
	return prev
}

// acquireSlot claims one extra-goroutine slot without blocking.
func acquireSlot() bool {
	slotsOnce.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 0 {
			n = 0
		}
		// Capacity 0 makes the try-send below always fail: single-CPU
		// machines run everything inline.
		extraSlots = make(chan struct{}, n)
	})
	select {
	case extraSlots <- struct{}{}:
		return true
	default:
		return false
	}
}

func releaseSlot() { <-extraSlots }

// ParallelRange runs fn over [0, n) split into contiguous chunks, one
// chunk per worker, waiting for all chunks. fn must be safe to call
// concurrently on disjoint ranges. Small ranges (and Parallelism() == 1)
// run inline.
func ParallelRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := chunk; lo < n; lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > n {
			hi = n
		}
		if acquireSlot() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer releaseSlot()
				fn(lo, hi)
			}()
		} else {
			fn(lo, hi)
		}
	}
	// The caller's goroutine always takes the first chunk.
	fn(0, chunk)
	wg.Wait()
}

// parallelRows is ParallelRange gated on total work: kernels call it with
// the row count and the cells-per-row so tiny images skip the machinery.
func parallelRows(rows, cellsPerRow int, fn func(lo, hi int)) {
	if rows*cellsPerRow < minParallelCells {
		fn(0, rows)
		return
	}
	ParallelRange(rows, fn)
}
