package array

import "repro/internal/parallel"

// The 2D kernels (Convolve2D, Resample, Tile, ConnectedComponents,
// Summarize, Map, Combine) split their row or cell ranges over the
// process-wide slot-budget pool in internal/parallel, shared with the
// ingestion tier, the NOA chain and the stSPARQL morsel executor. Small
// inputs skip the machinery entirely; parallel.SetParallelism bounds the
// chunks per call (the cores-scaling ablation measures 1, 2, 4 and
// GOMAXPROCS).

// minParallelCells is the smallest range worth splitting: below this the
// goroutine handoff costs more than the work.
const minParallelCells = 16 << 10

// parallelRows is parallel.Range gated on total work: kernels call it
// with the row count and the cells-per-row so tiny images skip the
// machinery.
func parallelRows(rows, cellsPerRow int, fn func(lo, hi int)) {
	if rows*cellsPerRow < minParallelCells {
		fn(0, rows)
		return
	}
	parallel.Range(rows, fn)
}
