package array

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// 2D image operations used by the NOA processing chain: convolution,
// resampling, threshold classification, tiling (patch aggregation) and
// connected-component labelling. All operate on rank-2 arrays laid out
// (y, x).

func (a *Array) check2D() error {
	if len(a.Dims) != 2 {
		return fmt.Errorf("array: %q is rank %d, need rank 2", a.Name, len(a.Dims))
	}
	return nil
}

// Height reports the y extent of a rank-2 array.
func (a *Array) Height() int { return a.Dims[0].Size }

// Width reports the x extent of a rank-2 array.
func (a *Array) Width() int { return a.Dims[1].Size }

// Convolve2D convolves the image with a square kernel (odd side length),
// clamping at the borders. Null cells contribute their nearest valid
// neighbour semantics are not needed in the pipeline; nulls propagate.
func (a *Array) Convolve2D(kernel [][]float64) (*Array, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	k := len(kernel)
	if k == 0 || k%2 == 0 {
		return nil, fmt.Errorf("array: kernel side must be odd, got %d", k)
	}
	for _, row := range kernel {
		if len(row) != k {
			return nil, fmt.Errorf("array: kernel is not square")
		}
	}
	h, w := a.Height(), a.Width()
	out := MustNew(a.Name, a.Dims...)
	if a.Null != nil {
		out.Null = append([]bool(nil), a.Null...)
	}
	r := k / 2
	// Border cells clamp; interior cells run a tight multiply-accumulate
	// over direct row slices. Rows are partitioned across the worker pool.
	cell := func(y, x int) float64 {
		var sum float64
		for dy := -r; dy <= r; dy++ {
			yy := clamp(y+dy, 0, h-1)
			row := a.Data[yy*w : yy*w+w]
			krow := kernel[dy+r]
			for dx := -r; dx <= r; dx++ {
				sum += krow[dx+r] * row[clamp(x+dx, 0, w-1)]
			}
		}
		return sum
	}
	parallelRows(h, w*k*k, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			rowOff := y * w
			outRow := out.Data[rowOff : rowOff+w]
			if y < r || y >= h-r || w < k {
				for x := 0; x < w; x++ {
					if a.Null != nil && a.Null[rowOff+x] {
						continue
					}
					outRow[x] = cell(y, x)
				}
				continue
			}
			for x := 0; x < r; x++ {
				if a.Null != nil && a.Null[rowOff+x] {
					continue
				}
				outRow[x] = cell(y, x)
			}
			for x := r; x < w-r; x++ {
				if a.Null != nil && a.Null[rowOff+x] {
					continue
				}
				var sum float64
				for dy := -r; dy <= r; dy++ {
					base := (y+dy)*w + x - r
					krow := kernel[dy+r]
					for dx := 0; dx < k; dx++ {
						sum += krow[dx] * a.Data[base+dx]
					}
				}
				outRow[x] = sum
			}
			for x := w - r; x < w; x++ {
				if a.Null != nil && a.Null[rowOff+x] {
					continue
				}
				outRow[x] = cell(y, x)
			}
		}
	})
	return out, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BoxBlur returns a k x k mean filter of the image.
func (a *Array) BoxBlur(k int) (*Array, error) {
	if k <= 0 || k%2 == 0 {
		return nil, fmt.Errorf("array: blur size must be odd and positive, got %d", k)
	}
	kernel := make([][]float64, k)
	w := 1 / float64(k*k)
	for i := range kernel {
		kernel[i] = make([]float64, k)
		for j := range kernel[i] {
			kernel[i][j] = w
		}
	}
	return a.Convolve2D(kernel)
}

// ResampleMode selects the interpolation used by Resample.
type ResampleMode int

// Resampling modes.
const (
	// NearestNeighbor picks the closest source cell.
	NearestNeighbor ResampleMode = iota + 1
	// Bilinear interpolates the four surrounding source cells.
	Bilinear
)

// Resample rescales a rank-2 array to (newH, newW) — the georeferencing
// step resamples the projected image onto the target grid this way.
func (a *Array) Resample(newH, newW int, mode ResampleMode) (*Array, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	if newH <= 0 || newW <= 0 {
		return nil, fmt.Errorf("array: bad resample target %dx%d", newH, newW)
	}
	h, w := a.Height(), a.Width()
	out := MustNew(a.Name, Dim{a.Dims[0].Name, newH}, Dim{a.Dims[1].Name, newW})
	sy := float64(h) / float64(newH)
	sx := float64(w) / float64(newW)
	parallelRows(newH, newW, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			outRow := out.Data[y*newW : y*newW+newW]
			fy := (float64(y) + 0.5) * sy
			for x := 0; x < newW; x++ {
				fx := (float64(x) + 0.5) * sx
				switch mode {
				case Bilinear:
					outRow[x] = a.bilinear(fy-0.5, fx-0.5)
				default:
					yy := clamp(int(fy), 0, h-1)
					xx := clamp(int(fx), 0, w-1)
					outRow[x] = a.Data[yy*w+xx]
				}
			}
		}
	})
	return out, nil
}

func (a *Array) bilinear(fy, fx float64) float64 {
	h, w := a.Height(), a.Width()
	y0 := clamp(int(math.Floor(fy)), 0, h-1)
	x0 := clamp(int(math.Floor(fx)), 0, w-1)
	y1 := clamp(y0+1, 0, h-1)
	x1 := clamp(x0+1, 0, w-1)
	ty := fy - float64(y0)
	tx := fx - float64(x0)
	if ty < 0 {
		ty = 0
	}
	if tx < 0 {
		tx = 0
	}
	v00 := a.At2(y0, x0)
	v01 := a.At2(y0, x1)
	v10 := a.At2(y1, x0)
	v11 := a.At2(y1, x1)
	return v00*(1-ty)*(1-tx) + v01*(1-ty)*tx + v10*ty*(1-tx) + v11*ty*tx
}

// Threshold returns a binary mask (1 where value >= thresh, else 0),
// preserving nulls — the classification primitive of the hotspot chain.
func (a *Array) Threshold(thresh float64) *Array {
	return a.Map(func(v float64) float64 {
		if v >= thresh {
			return 1
		}
		return 0
	})
}

// Tile partitions a rank-2 array into tileH x tileW patches and aggregates
// each patch with agg ("avg", "min", "max", "sum"), producing the reduced
// array — SciQL's structured GROUP BY over dimension tiles (the feature
// extraction "patch" step of the ingestion tier).
func (a *Array) Tile(tileH, tileW int, agg string) (*Array, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	if tileH <= 0 || tileW <= 0 {
		return nil, fmt.Errorf("array: bad tile size %dx%d", tileH, tileW)
	}
	switch agg {
	case "avg", "min", "max", "sum":
	default:
		return nil, fmt.Errorf("array: unknown tile aggregate %q", agg)
	}
	h, w := a.Height(), a.Width()
	oh := (h + tileH - 1) / tileH
	ow := (w + tileW - 1) / tileW
	out := MustNew(a.Name, Dim{a.Dims[0].Name, oh}, Dim{a.Dims[1].Name, ow})
	// One output tile row per work item: each covers tileH input rows.
	parallelRows(oh, tileH*w, func(ty0, ty1 int) {
		for ty := ty0; ty < ty1; ty++ {
			for tx := 0; tx < ow; tx++ {
				var sum, min, max float64
				min, max = math.Inf(1), math.Inf(-1)
				count := 0
				for y := ty * tileH; y < (ty+1)*tileH && y < h; y++ {
					rowOff := y * w
					x1 := (tx + 1) * tileW
					if x1 > w {
						x1 = w
					}
					for x := tx * tileW; x < x1; x++ {
						if a.Null != nil && a.Null[rowOff+x] {
							continue
						}
						v := a.Data[rowOff+x]
						sum += v
						if v < min {
							min = v
						}
						if v > max {
							max = v
						}
						count++
					}
				}
				var v float64
				switch agg {
				case "avg":
					if count > 0 {
						v = sum / float64(count)
					}
				case "min":
					if count > 0 {
						v = min
					}
				case "max":
					if count > 0 {
						v = max
					}
				case "sum":
					v = sum
				}
				out.Data[ty*ow+tx] = v
			}
		}
	})
	return out, nil
}

// Component is a connected group of non-zero cells in a binary mask.
type Component struct {
	// Label is the 1-based component id.
	Label int
	// Cells holds (y, x) coordinates of member cells.
	Cells [][2]int
	// MinY, MinX, MaxY, MaxX bound the component.
	MinY, MinX, MaxY, MaxX int
}

// Size reports the number of member cells.
func (c *Component) Size() int { return len(c.Cells) }

// ConnectedComponents labels the 4-connected components of non-zero cells
// — grouping adjacent hot pixels into hotspot regions before geometry
// generation. The sweep is a tile-parallel union-find: row strips are
// labelled concurrently on the worker pool, strip boundaries are merged,
// and components are numbered in row-major order of their first cell
// (the same labelling order the sequential scan produced). Member cells
// are listed in row-major order.
func (a *Array) ConnectedComponents() ([]Component, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	h, w := a.Height(), a.Width()
	n := h * w
	if n >= 1<<31 {
		return nil, fmt.Errorf("array: %q too large for component labelling", a.Name)
	}
	// parent[i] < 0 marks background; otherwise it is the union-find link.
	parent := make([]int32, n)

	// Phase 1: label disjoint row strips in parallel. Links never cross a
	// strip boundary, so strips touch disjoint parent ranges.
	stripRows := h
	if workers := parallel.Parallelism(); workers > 1 && n >= minParallelCells {
		stripRows = (h + workers - 1) / workers
	}
	nStrips := (h + stripRows - 1) / stripRows
	parallel.Range(nStrips, func(s0, s1 int) {
		for s := s0; s < s1; s++ {
			y0, y1 := s*stripRows, (s+1)*stripRows
			if y1 > h {
				y1 = h
			}
			for y := y0; y < y1; y++ {
				off := y * w
				for x := 0; x < w; x++ {
					i := off + x
					if a.Data[i] == 0 || (a.Null != nil && a.Null[i]) {
						parent[i] = -1
						continue
					}
					parent[i] = int32(i)
					if x > 0 && parent[i-1] >= 0 {
						ufUnion(parent, int32(i), int32(i-1))
					}
					if y > y0 && parent[i-w] >= 0 {
						ufUnion(parent, int32(i), int32(i-w))
					}
				}
			}
		}
	})

	// Phase 2: merge components across strip boundaries.
	for s := 1; s < nStrips; s++ {
		off := s * stripRows * w
		for x := 0; x < w; x++ {
			if parent[off+x] >= 0 && parent[off+x-w] >= 0 {
				ufUnion(parent, int32(off+x), int32(off+x-w))
			}
		}
	}

	// Phase 3: one row-major sweep assigns component ids in first-cell
	// order and collects cells and bounds.
	var comps []Component
	rootComp := map[int32]int32{}
	for y := 0; y < h; y++ {
		off := y * w
		for x := 0; x < w; x++ {
			i := off + x
			if parent[i] < 0 {
				continue
			}
			r := ufFind(parent, int32(i))
			id, ok := rootComp[r]
			if !ok {
				id = int32(len(comps))
				rootComp[r] = id
				comps = append(comps, Component{
					Label: len(comps) + 1,
					MinY:  y, MinX: x, MaxY: y, MaxX: x,
				})
			}
			c := &comps[id]
			c.Cells = append(c.Cells, [2]int{y, x})
			if y > c.MaxY {
				c.MaxY = y
			}
			if x < c.MinX {
				c.MinX = x
			}
			if x > c.MaxX {
				c.MaxX = x
			}
		}
	}
	return comps, nil
}

// ufFind resolves the union-find root of i with path halving.
func ufFind(parent []int32, i int32) int32 {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// ufUnion links the components of a and b, keeping the smaller root (so
// roots tend toward each component's first cell).
func ufUnion(parent []int32, a, b int32) {
	ra, rb := ufFind(parent, a), ufFind(parent, b)
	switch {
	case ra == rb:
	case ra < rb:
		parent[rb] = ra
	default:
		parent[ra] = rb
	}
}
