package array

import (
	"fmt"
	"math"
)

// 2D image operations used by the NOA processing chain: convolution,
// resampling, threshold classification, tiling (patch aggregation) and
// connected-component labelling. All operate on rank-2 arrays laid out
// (y, x).

func (a *Array) check2D() error {
	if len(a.Dims) != 2 {
		return fmt.Errorf("array: %q is rank %d, need rank 2", a.Name, len(a.Dims))
	}
	return nil
}

// Height reports the y extent of a rank-2 array.
func (a *Array) Height() int { return a.Dims[0].Size }

// Width reports the x extent of a rank-2 array.
func (a *Array) Width() int { return a.Dims[1].Size }

// Convolve2D convolves the image with a square kernel (odd side length),
// clamping at the borders. Null cells contribute their nearest valid
// neighbour semantics are not needed in the pipeline; nulls propagate.
func (a *Array) Convolve2D(kernel [][]float64) (*Array, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	k := len(kernel)
	if k == 0 || k%2 == 0 {
		return nil, fmt.Errorf("array: kernel side must be odd, got %d", k)
	}
	for _, row := range kernel {
		if len(row) != k {
			return nil, fmt.Errorf("array: kernel is not square")
		}
	}
	h, w := a.Height(), a.Width()
	out := MustNew(a.Name, a.Dims...)
	if a.Null != nil {
		out.Null = append([]bool(nil), a.Null...)
	}
	r := k / 2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if a.IsNull(y*w + x) {
				continue
			}
			var sum float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					yy := clamp(y+dy, 0, h-1)
					xx := clamp(x+dx, 0, w-1)
					sum += kernel[dy+r][dx+r] * a.At2(yy, xx)
				}
			}
			out.Set2(y, x, sum)
		}
	}
	return out, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BoxBlur returns a k x k mean filter of the image.
func (a *Array) BoxBlur(k int) (*Array, error) {
	if k <= 0 || k%2 == 0 {
		return nil, fmt.Errorf("array: blur size must be odd and positive, got %d", k)
	}
	kernel := make([][]float64, k)
	w := 1 / float64(k*k)
	for i := range kernel {
		kernel[i] = make([]float64, k)
		for j := range kernel[i] {
			kernel[i][j] = w
		}
	}
	return a.Convolve2D(kernel)
}

// ResampleMode selects the interpolation used by Resample.
type ResampleMode int

// Resampling modes.
const (
	// NearestNeighbor picks the closest source cell.
	NearestNeighbor ResampleMode = iota + 1
	// Bilinear interpolates the four surrounding source cells.
	Bilinear
)

// Resample rescales a rank-2 array to (newH, newW) — the georeferencing
// step resamples the projected image onto the target grid this way.
func (a *Array) Resample(newH, newW int, mode ResampleMode) (*Array, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	if newH <= 0 || newW <= 0 {
		return nil, fmt.Errorf("array: bad resample target %dx%d", newH, newW)
	}
	h, w := a.Height(), a.Width()
	out := MustNew(a.Name, Dim{a.Dims[0].Name, newH}, Dim{a.Dims[1].Name, newW})
	sy := float64(h) / float64(newH)
	sx := float64(w) / float64(newW)
	for y := 0; y < newH; y++ {
		for x := 0; x < newW; x++ {
			fy := (float64(y) + 0.5) * sy
			fx := (float64(x) + 0.5) * sx
			switch mode {
			case Bilinear:
				out.Set2(y, x, a.bilinear(fy-0.5, fx-0.5))
			default:
				yy := clamp(int(fy), 0, h-1)
				xx := clamp(int(fx), 0, w-1)
				out.Set2(y, x, a.At2(yy, xx))
			}
		}
	}
	return out, nil
}

func (a *Array) bilinear(fy, fx float64) float64 {
	h, w := a.Height(), a.Width()
	y0 := clamp(int(math.Floor(fy)), 0, h-1)
	x0 := clamp(int(math.Floor(fx)), 0, w-1)
	y1 := clamp(y0+1, 0, h-1)
	x1 := clamp(x0+1, 0, w-1)
	ty := fy - float64(y0)
	tx := fx - float64(x0)
	if ty < 0 {
		ty = 0
	}
	if tx < 0 {
		tx = 0
	}
	v00 := a.At2(y0, x0)
	v01 := a.At2(y0, x1)
	v10 := a.At2(y1, x0)
	v11 := a.At2(y1, x1)
	return v00*(1-ty)*(1-tx) + v01*(1-ty)*tx + v10*ty*(1-tx) + v11*ty*tx
}

// Threshold returns a binary mask (1 where value >= thresh, else 0),
// preserving nulls — the classification primitive of the hotspot chain.
func (a *Array) Threshold(thresh float64) *Array {
	return a.Map(func(v float64) float64 {
		if v >= thresh {
			return 1
		}
		return 0
	})
}

// Tile partitions a rank-2 array into tileH x tileW patches and aggregates
// each patch with agg ("avg", "min", "max", "sum"), producing the reduced
// array — SciQL's structured GROUP BY over dimension tiles (the feature
// extraction "patch" step of the ingestion tier).
func (a *Array) Tile(tileH, tileW int, agg string) (*Array, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	if tileH <= 0 || tileW <= 0 {
		return nil, fmt.Errorf("array: bad tile size %dx%d", tileH, tileW)
	}
	h, w := a.Height(), a.Width()
	oh := (h + tileH - 1) / tileH
	ow := (w + tileW - 1) / tileW
	out := MustNew(a.Name, Dim{a.Dims[0].Name, oh}, Dim{a.Dims[1].Name, ow})
	for ty := 0; ty < oh; ty++ {
		for tx := 0; tx < ow; tx++ {
			var sum, min, max float64
			min, max = math.Inf(1), math.Inf(-1)
			count := 0
			for y := ty * tileH; y < (ty+1)*tileH && y < h; y++ {
				for x := tx * tileW; x < (tx+1)*tileW && x < w; x++ {
					if a.IsNull(y*w + x) {
						continue
					}
					v := a.At2(y, x)
					sum += v
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
					count++
				}
			}
			var v float64
			switch agg {
			case "avg":
				if count > 0 {
					v = sum / float64(count)
				}
			case "min":
				if count > 0 {
					v = min
				}
			case "max":
				if count > 0 {
					v = max
				}
			case "sum":
				v = sum
			default:
				return nil, fmt.Errorf("array: unknown tile aggregate %q", agg)
			}
			out.Set2(ty, tx, v)
		}
	}
	return out, nil
}

// Component is a connected group of non-zero cells in a binary mask.
type Component struct {
	// Label is the 1-based component id.
	Label int
	// Cells holds (y, x) coordinates of member cells.
	Cells [][2]int
	// MinY, MinX, MaxY, MaxX bound the component.
	MinY, MinX, MaxY, MaxX int
}

// Size reports the number of member cells.
func (c *Component) Size() int { return len(c.Cells) }

// ConnectedComponents labels the 4-connected components of non-zero cells
// — grouping adjacent hot pixels into hotspot regions before geometry
// generation.
func (a *Array) ConnectedComponents() ([]Component, error) {
	if err := a.check2D(); err != nil {
		return nil, err
	}
	h, w := a.Height(), a.Width()
	labels := make([]int, h*w)
	var comps []Component
	var stack [][2]int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if labels[y*w+x] != 0 || a.At2(y, x) == 0 || a.IsNull(y*w+x) {
				continue
			}
			id := len(comps) + 1
			comp := Component{Label: id, MinY: y, MinX: x, MaxY: y, MaxX: x}
			stack = stack[:0]
			stack = append(stack, [2]int{y, x})
			labels[y*w+x] = id
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp.Cells = append(comp.Cells, c)
				if c[0] < comp.MinY {
					comp.MinY = c[0]
				}
				if c[0] > comp.MaxY {
					comp.MaxY = c[0]
				}
				if c[1] < comp.MinX {
					comp.MinX = c[1]
				}
				if c[1] > comp.MaxX {
					comp.MaxX = c[1]
				}
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ny, nx := c[0]+d[0], c[1]+d[1]
					if ny < 0 || ny >= h || nx < 0 || nx >= w {
						continue
					}
					if labels[ny*w+nx] == 0 && a.At2(ny, nx) != 0 && !a.IsNull(ny*w+nx) {
						labels[ny*w+nx] = id
						stack = append(stack, [2]int{ny, nx})
					}
				}
			}
			comps = append(comps, comp)
		}
	}
	return comps, nil
}
