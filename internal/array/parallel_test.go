package array

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func randImage(rng *rand.Rand, h, w int, withNulls bool) *Array {
	a := MustNew("img", Dim{Name: "y", Size: h}, Dim{Name: "x", Size: w})
	for i := range a.Data {
		a.Data[i] = rng.Float64() * 100
	}
	if withNulls {
		a.Null = make([]bool, len(a.Data))
		for i := range a.Null {
			a.Null[i] = rng.Intn(11) == 0
		}
	}
	return a
}

func sameArray(t *testing.T, label string, a, b *Array) {
	t.Helper()
	if len(a.Data) != len(b.Data) {
		t.Fatalf("%s: size %d vs %d", label, len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] || a.IsNull(i) != b.IsNull(i) {
			t.Fatalf("%s: cell %d differs: %g/%v vs %g/%v",
				label, i, a.Data[i], a.IsNull(i), b.Data[i], b.IsNull(i))
		}
	}
}

// TestParallelKernelEquivalence pins every tile-parallel kernel to
// bit-identical results at parallelism 1, 2 and the machine default —
// including the deterministic block reduction of Summarize.
func TestParallelKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	images := []*Array{
		randImage(rng, 13, 17, false),
		randImage(rng, 200, 150, true), // above the parallel threshold
		randImage(rng, 300, 120, false),
	}
	kernel := [][]float64{{0, 1, 0}, {1, -4, 1}, {0, 1, 0}}
	type outcome struct {
		conv, res, tile, thr *Array
		stats                Stats
		comps                []Component
	}
	run := func(img *Array) outcome {
		conv, err := img.Convolve2D(kernel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := img.Resample(77, 41, Bilinear)
		if err != nil {
			t.Fatal(err)
		}
		tile, err := img.Tile(7, 9, "avg")
		if err != nil {
			t.Fatal(err)
		}
		thr := img.Threshold(50)
		comps, err := thr.ConnectedComponents()
		if err != nil {
			t.Fatal(err)
		}
		return outcome{conv: conv, res: res, tile: tile, thr: thr, stats: img.Summarize(), comps: comps}
	}
	for i, img := range images {
		var ref outcome
		for _, workers := range []int{1, 2, 0} {
			prev := parallel.SetParallelism(workers)
			got := run(img)
			parallel.SetParallelism(prev)
			if workers == 1 {
				ref = got
				continue
			}
			label := fmt.Sprintf("img%d workers=%d", i, workers)
			sameArray(t, label+" convolve", ref.conv, got.conv)
			sameArray(t, label+" resample", ref.res, got.res)
			sameArray(t, label+" tile", ref.tile, got.tile)
			sameArray(t, label+" threshold", ref.thr, got.thr)
			if ref.stats != got.stats {
				t.Fatalf("%s summarize: %+v vs %+v", label, ref.stats, got.stats)
			}
			if len(ref.comps) != len(got.comps) {
				t.Fatalf("%s components: %d vs %d", label, len(ref.comps), len(got.comps))
			}
			for c := range ref.comps {
				r, g := ref.comps[c], got.comps[c]
				if r.Label != g.Label || r.MinY != g.MinY || r.MinX != g.MinX ||
					r.MaxY != g.MaxY || r.MaxX != g.MaxX || len(r.Cells) != len(g.Cells) {
					t.Fatalf("%s component %d differs: %+v vs %+v", label, c, r, g)
				}
				for k := range r.Cells {
					if r.Cells[k] != g.Cells[k] {
						t.Fatalf("%s component %d cell %d differs", label, c, k)
					}
				}
			}
		}
	}
}

// TestConnectedComponentsStripMerge stresses components that span many
// strip boundaries (vertical stripes and a full-frame spiral-ish snake).
func TestConnectedComponentsStripMerge(t *testing.T) {
	h, w := 400, 64 // tall: strips split on rows
	a := MustNew("m", Dim{Name: "y", Size: h}, Dim{Name: "x", Size: w})
	// Vertical stripes every 4 columns: each is ONE component crossing
	// every strip boundary.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x += 4 {
			a.Set2(y, x, 1)
		}
	}
	for _, workers := range []int{1, 3, 0} {
		prev := parallel.SetParallelism(workers)
		comps, err := a.ConnectedComponents()
		parallel.SetParallelism(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != w/4 {
			t.Fatalf("workers=%d: components = %d, want %d", workers, len(comps), w/4)
		}
		for i, c := range comps {
			if c.Size() != h {
				t.Fatalf("workers=%d: component %d size %d, want %d", workers, i, c.Size(), h)
			}
			if c.MinX != i*4 || c.MaxX != i*4 || c.MinY != 0 || c.MaxY != h-1 {
				t.Fatalf("workers=%d: component %d bbox %+v", workers, i, c)
			}
		}
	}
}

// The shared-pool stress test lives in internal/parallel (the pool's
// home package) since the extraction; the kernel-level equivalence
// tests above keep pinning bit-identical results per worker count.
