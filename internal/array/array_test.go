package array

import (
	"math"
	"testing"
)

func TestNewAndIndexing(t *testing.T) {
	a, err := New("img", Dim{"y", 3}, Dim{"x", 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rank() != 2 || a.Size() != 12 {
		t.Fatal("shape")
	}
	if a.DimIndex("x") != 1 || a.DimIndex("z") != -1 {
		t.Fatal("DimIndex")
	}
	if err := a.Set(7.5, 2, 3); err != nil {
		t.Fatal(err)
	}
	v, err := a.At(2, 3)
	if err != nil || v != 7.5 {
		t.Fatalf("At = %g, %v", v, err)
	}
	if a.At2(2, 3) != 7.5 {
		t.Fatal("At2 fast path")
	}
	a.Set2(0, 0, 1)
	if v, _ := a.At(0, 0); v != 1 {
		t.Fatal("Set2 fast path")
	}
	// Errors.
	if _, err := a.At(5, 0); err == nil {
		t.Fatal("out of range")
	}
	if _, err := a.At(0); err == nil {
		t.Fatal("rank mismatch")
	}
	if _, err := New("bad", Dim{"y", 0}); err == nil {
		t.Fatal("zero dimension")
	}
}

func TestFromData(t *testing.T) {
	a, err := FromData("v", []float64{1, 2, 3, 4, 5, 6}, Dim{"y", 2}, Dim{"x", 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.At2(1, 2) != 6 {
		t.Fatal("row-major layout")
	}
	if _, err := FromData("v", []float64{1}, Dim{"y", 2}); err == nil {
		t.Fatal("length mismatch")
	}
}

func TestNullCells(t *testing.T) {
	a := MustNew("n", Dim{"y", 2}, Dim{"x", 2})
	if err := a.SetNull(0, 1); err != nil {
		t.Fatal(err)
	}
	if !a.IsNull(1) || a.IsNull(0) {
		t.Fatal("null flags")
	}
	// Set clears null.
	if err := a.Set(5, 0, 1); err != nil {
		t.Fatal(err)
	}
	if a.IsNull(1) {
		t.Fatal("Set should clear null")
	}
	if err := a.SetNull(9, 9); err == nil {
		t.Fatal("out of range SetNull")
	}
}

func TestSlice(t *testing.T) {
	a := MustNew("img", Dim{"y", 4}, Dim{"x", 5})
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x++ {
			a.Set2(y, x, float64(y*10+x))
		}
	}
	s, err := a.Slice([]int{1, 2}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Height() != 2 || s.Width() != 3 {
		t.Fatalf("slice shape %dx%d", s.Height(), s.Width())
	}
	if s.At2(0, 0) != 12 || s.At2(1, 2) != 24 {
		t.Fatalf("slice values %g %g", s.At2(0, 0), s.At2(1, 2))
	}
	// Nulls survive slicing.
	a.SetNull(1, 2)
	s2, err := a.Slice([]int{1, 2}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.IsNull(0) {
		t.Fatal("null lost")
	}
	// Errors.
	if _, err := a.Slice([]int{0}, []int{1}); err == nil {
		t.Fatal("rank mismatch")
	}
	if _, err := a.Slice([]int{0, 3}, []int{4, 3}); err == nil {
		t.Fatal("empty range")
	}
	if _, err := a.Slice([]int{0, 0}, []int{9, 9}); err == nil {
		t.Fatal("out of range")
	}
}

func TestSlice3D(t *testing.T) {
	a := MustNew("cube", Dim{"b", 2}, Dim{"y", 3}, Dim{"x", 3})
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	s, err := a.Slice([]int{1, 1, 1}, []int{2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("3d slice size %d", s.Size())
	}
	// Element (b=1,y=1,x=1) has flat index 1*9+1*3+1 = 13.
	if s.Data[0] != 13 {
		t.Fatalf("3d slice first = %g", s.Data[0])
	}
}

func TestMapCombine(t *testing.T) {
	a := MustNew("a", Dim{"x", 3})
	copy(a.Data, []float64{1, 2, 3})
	doubled := a.Map(func(v float64) float64 { return v * 2 })
	if doubled.Data[2] != 6 || a.Data[2] != 3 {
		t.Fatal("Map should not mutate")
	}
	b := MustNew("b", Dim{"x", 3})
	copy(b.Data, []float64{10, 20, 30})
	sum, err := Combine(a, b, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Data[1] != 22 {
		t.Fatal("Combine")
	}
	// Null propagation.
	b.SetNull(1)
	sum2, err := Combine(a, b, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if !sum2.IsNull(1) || sum2.IsNull(0) {
		t.Fatal("null propagation")
	}
	// Shape errors.
	c := MustNew("c", Dim{"x", 4})
	if _, err := Combine(a, c, func(x, y float64) float64 { return 0 }); err == nil {
		t.Fatal("size mismatch")
	}
	d := MustNew("d", Dim{"x", 3}, Dim{"y", 1})
	if _, err := Combine(a, d, func(x, y float64) float64 { return 0 }); err == nil {
		t.Fatal("rank mismatch")
	}
}

func TestSummarize(t *testing.T) {
	a := MustNew("s", Dim{"x", 4})
	copy(a.Data, []float64{2, 4, 6, 8})
	s := a.Summarize()
	if s.Count != 4 || s.Sum != 20 || s.Min != 2 || s.Max != 8 || s.Mean != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("stddev = %g", s.StdDev)
	}
	a.SetNull(3)
	s2 := a.Summarize()
	if s2.Count != 3 || s2.Max != 6 {
		t.Fatalf("null-aware stats = %+v", s2)
	}
	empty := MustNew("e", Dim{"x", 1})
	empty.SetNull(0)
	se := empty.Summarize()
	if se.Count != 0 || se.Min != 0 || se.Max != 0 {
		t.Fatalf("empty stats = %+v", se)
	}
}

func TestHistogram(t *testing.T) {
	a := MustNew("h", Dim{"x", 6})
	copy(a.Data, []float64{0, 1, 2, 3, 4, 100})
	bins := a.Histogram(0, 5, 5)
	// 0->bin0, 1->bin1, 2->bin2, 3->bin3, 4->bin4, 100 clamps to bin4.
	want := []int{1, 1, 1, 1, 2}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v", bins)
		}
	}
	if a.Histogram(0, 0, 5) != nil || a.Histogram(0, 1, 0) != nil {
		t.Fatal("degenerate histograms should be nil")
	}
}

func TestConvolve2D(t *testing.T) {
	a := MustNew("img", Dim{"y", 3}, Dim{"x", 3})
	a.Set2(1, 1, 9)
	identity := [][]float64{{0, 0, 0}, {0, 1, 0}, {0, 0, 0}}
	out, err := a.Convolve2D(identity)
	if err != nil {
		t.Fatal(err)
	}
	if out.At2(1, 1) != 9 || out.At2(0, 0) != 0 {
		t.Fatal("identity kernel")
	}
	blur, err := a.BoxBlur(3)
	if err != nil {
		t.Fatal(err)
	}
	if blur.At2(1, 1) != 1 {
		t.Fatalf("blur center = %g", blur.At2(1, 1))
	}
	// Border clamping: corner sees the 9 once among its 9 samples? The 3x3
	// window at (0,0) clamps to rows {0,0,1} x cols {0,0,1}, including (1,1).
	if blur.At2(0, 0) != 1 {
		t.Fatalf("blur corner = %g", blur.At2(0, 0))
	}
	// Errors.
	if _, err := a.Convolve2D([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("even kernel")
	}
	if _, err := a.Convolve2D([][]float64{{1, 2, 3}, {1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("ragged kernel")
	}
	if _, err := a.BoxBlur(2); err == nil {
		t.Fatal("even blur")
	}
	one := MustNew("v", Dim{"x", 2})
	if _, err := one.Convolve2D(identity); err == nil {
		t.Fatal("rank-1 convolution")
	}
}

func TestResample(t *testing.T) {
	a := MustNew("img", Dim{"y", 4}, Dim{"x", 4})
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			a.Set2(y, x, float64(x))
		}
	}
	down, err := a.Resample(2, 2, NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	if down.Height() != 2 || down.Width() != 2 {
		t.Fatal("downsample shape")
	}
	up, err := a.Resample(8, 8, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	if up.Height() != 8 {
		t.Fatal("upsample shape")
	}
	// Bilinear preserves a constant gradient's endpoints approximately.
	if up.At2(0, 0) > 0.5 || up.At2(0, 7) < 2.5 {
		t.Fatalf("gradient ends %g %g", up.At2(0, 0), up.At2(0, 7))
	}
	if _, err := a.Resample(0, 2, Bilinear); err == nil {
		t.Fatal("bad target")
	}
}

func TestThreshold(t *testing.T) {
	a := MustNew("t", Dim{"y", 1}, Dim{"x", 4})
	copy(a.Data, []float64{300, 310, 320, 305})
	m := a.Threshold(310)
	want := []float64{0, 1, 1, 0}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("mask = %v", m.Data)
		}
	}
}

func TestTile(t *testing.T) {
	a := MustNew("img", Dim{"y", 4}, Dim{"x", 4})
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	avg, err := a.Tile(2, 2, "avg")
	if err != nil {
		t.Fatal(err)
	}
	if avg.Height() != 2 || avg.Width() != 2 {
		t.Fatal("tile shape")
	}
	// Top-left tile holds {0,1,4,5}: mean 2.5.
	if avg.At2(0, 0) != 2.5 {
		t.Fatalf("tile avg = %g", avg.At2(0, 0))
	}
	max, err := a.Tile(2, 2, "max")
	if err != nil {
		t.Fatal(err)
	}
	if max.At2(1, 1) != 15 {
		t.Fatalf("tile max = %g", max.At2(1, 1))
	}
	min, err := a.Tile(2, 2, "min")
	if err != nil {
		t.Fatal(err)
	}
	if min.At2(0, 0) != 0 {
		t.Fatal("tile min")
	}
	sum, err := a.Tile(4, 4, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if sum.At2(0, 0) != 120 {
		t.Fatalf("tile sum = %g", sum.At2(0, 0))
	}
	// Non-divisible tiling keeps the ragged edge.
	ragged, err := a.Tile(3, 3, "avg")
	if err != nil {
		t.Fatal(err)
	}
	if ragged.Height() != 2 || ragged.Width() != 2 {
		t.Fatal("ragged tile shape")
	}
	if _, err := a.Tile(2, 2, "median"); err == nil {
		t.Fatal("unknown aggregate")
	}
	if _, err := a.Tile(0, 2, "avg"); err == nil {
		t.Fatal("bad tile size")
	}
}

func TestConnectedComponents(t *testing.T) {
	a := MustNew("mask", Dim{"y", 5}, Dim{"x", 5})
	// Two components: a 2x2 block and an L shape, diagonal-separated.
	for _, c := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		a.Set2(c[0], c[1], 1)
	}
	for _, c := range [][2]int{{3, 3}, {3, 4}, {4, 3}} {
		a.Set2(c[0], c[1], 1)
	}
	// Diagonal neighbour of the first block: 4-connectivity keeps it apart.
	a.Set2(2, 2, 1)
	comps, err := a.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, c.Size())
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 8 {
		t.Fatalf("total cells = %d", total)
	}
	// Bounding boxes.
	if comps[0].MinY != 0 || comps[0].MaxX != 1 {
		t.Fatalf("first bbox = %+v", comps[0])
	}
	// Null cells are not part of any component.
	a.SetNull(0, 0)
	comps2, err := a.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	tot2 := 0
	for _, c := range comps2 {
		tot2 += c.Size()
	}
	if tot2 != 7 {
		t.Fatalf("total after null = %d", tot2)
	}
	if _, err := MustNew("v", Dim{"x", 3}).ConnectedComponents(); err == nil {
		t.Fatal("rank-1 CCL should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew("a", Dim{"x", 2})
	a.Data[0] = 1
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("clone shares data")
	}
	a.SetNull(1)
	c2 := a.Clone()
	c2.Null[1] = false
	if !a.IsNull(1) {
		t.Fatal("clone shares null bitmap")
	}
}
