package noa

import (
	"fmt"

	"repro/internal/linkeddata"
	"repro/internal/stsparql"
)

// Scenario 2 of the demo: improving the thematic accuracy of the hotspot
// products. Low-resolution SEVIRI pixels straddle the coastline, so the
// chain reports hotspots in the sea; the refinement compares hotspot
// geometries with the coastline layer (available as linked data) using
// stSPARQL UPDATE statements and (a) reclassifies hotspots that are
// entirely off-land, (b) clips partially-off-land geometries to the
// landmass.

// RefineStats summarises one refinement run.
type RefineStats struct {
	// Total hotspots examined.
	Total int
	// Rejected hotspots (entirely off the landmass).
	Rejected int
	// Clipped hotspots (geometry replaced by its landmass intersection).
	Clipped int
}

// RefinementUpdates returns the stSPARQL UPDATE statements of the
// refinement, in execution order — the statements the demo shows the user.
func RefinementUpdates() []string {
	const prefixes = `
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		PREFIX coast: <http://geo.linkedopendata.gr/coastline/>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
	`
	return []string{
		// (a) Hotspots disjoint from the landmass are sensor artefacts:
		// retype them, keeping provenance.
		prefixes + `
		DELETE { ?h a mon:Hotspot }
		INSERT { ?h a mon:RejectedHotspot }
		WHERE {
			?h a mon:Hotspot .
			?h noa:hasGeometry ?g .
			?land a coast:Landmass .
			?land noa:hasGeometry ?lg .
			FILTER(strdf:disjoint(?g, ?lg))
		}`,
		// (b) Hotspots straddling the coastline keep only their on-land
		// part and are marked refined.
		prefixes + `
		DELETE { ?h noa:hasGeometry ?g }
		INSERT { ?h noa:hasGeometry ?ng . ?h a mon:RefinedHotspot }
		WHERE {
			?h a mon:Hotspot .
			?h noa:hasGeometry ?g .
			?land a coast:Landmass .
			?land noa:hasGeometry ?lg .
			FILTER(strdf:intersects(?g, ?lg) && !strdf:within(?g, ?lg))
			BIND(strdf:intersection(?g, ?lg) AS ?ng)
			FILTER(BOUND(?ng))
		}`,
	}
}

// Refine runs the refinement updates against an engine whose store holds
// hotspot triples and the coastline layer (linkeddata.Coastline). It
// returns per-step statistics.
func Refine(eng *stsparql.Engine) (RefineStats, error) {
	var stats RefineStats
	pre, err := countHotspots(eng)
	if err != nil {
		return stats, err
	}
	stats.Total = pre
	updates := RefinementUpdates()
	resA, err := eng.Query(updates[0])
	if err != nil {
		return stats, fmt.Errorf("noa: refine step a: %w", err)
	}
	// Each rejected hotspot contributes one delete + one insert.
	stats.Rejected = resA.Affected / 2
	resB, err := eng.Query(updates[1])
	if err != nil {
		return stats, fmt.Errorf("noa: refine step b: %w", err)
	}
	// Each clipped hotspot contributes one delete + two inserts.
	stats.Clipped = resB.Affected / 3
	return stats, nil
}

func countHotspots(eng *stsparql.Engine) (int, error) {
	res, err := eng.Query(`
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		SELECT (COUNT(*) AS ?n) WHERE { ?h a mon:Hotspot }`)
	if err != nil {
		return 0, err
	}
	if len(res.Bindings) != 1 {
		return 0, fmt.Errorf("noa: unexpected count result")
	}
	var n int
	if _, err := fmt.Sscanf(res.Bindings[0]["n"].Value, "%d", &n); err != nil {
		return 0, err
	}
	return n, nil
}

// LoadAuxiliaryData inserts the coastline layer (and the rest of the
// linked open data) the refinement and fire maps need.
func LoadAuxiliaryData(eng *stsparql.Engine) int {
	return eng.Store().AddAll(linkeddata.All())
}
