package noa

import (
	"time"

	"repro/internal/geo"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/strdf"
)

// NOA product vocabulary. Hotspots are typed with the monitoring
// ontology's Hotspot class so that subsumption queries over observations
// also retrieve them.
const (
	NS             = "http://teleios.di.uoa.gr/noa#"
	ClassHotspot   = ontology.Monitoring + "Hotspot"
	ClassRefined   = ontology.Monitoring + "RefinedHotspot"
	ClassRejected  = ontology.Monitoring + "RejectedHotspot"
	PropGeometry   = NS + "hasGeometry"
	PropConfidence = NS + "hasConfidence"
	PropSensor     = NS + "inSensor"
	PropAcquired   = NS + "acquiredAt"
	PropDerived    = NS + "derivedFromProduct"
	PropPixels     = NS + "pixelCount"
	// PropValidTime carries the stRDF valid-time period of the detection:
	// the acquisition instant until the next SEVIRI repeat cycle.
	PropValidTime = NS + "validTime"
)

// HotspotIRI returns the resource IRI of a hotspot.
func HotspotIRI(h Hotspot) rdf.Term { return rdf.IRI(NS + "hotspot/" + h.ID) }

// ProductIRI returns the resource IRI of the source product.
func ProductIRI(frameID string) rdf.Term { return rdf.IRI(NS + "product/" + frameID) }

// Triples serialises a product's hotspots as stRDF.
func (p *Product) Triples() []rdf.Triple {
	var out []rdf.Triple
	for _, h := range p.Hotspots {
		out = append(out, HotspotTriples(h)...)
	}
	return out
}

// HotspotTriples serialises one hotspot.
func HotspotTriples(h Hotspot) []rdf.Triple {
	s := HotspotIRI(h)
	return []rdf.Triple{
		rdf.NewTriple(s, rdf.IRI(rdf.RDFType), rdf.IRI(ClassHotspot)),
		rdf.NewTriple(s, rdf.IRI(PropGeometry), strdf.Literal(h.Geometry, geo.SRIDWGS84)),
		rdf.NewTriple(s, rdf.IRI(PropConfidence), rdf.DoubleLiteral(h.Confidence)),
		rdf.NewTriple(s, rdf.IRI(PropSensor), rdf.Literal(h.Sensor)),
		rdf.NewTriple(s, rdf.IRI(PropAcquired),
			rdf.TypedLiteral(h.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime)),
		rdf.NewTriple(s, rdf.IRI(PropDerived), ProductIRI(h.FrameID)),
		rdf.NewTriple(s, rdf.IRI(PropPixels), rdf.IntegerLiteral(int64(h.PixelCount))),
		rdf.NewTriple(s, rdf.IRI(PropValidTime), strdf.PeriodLiteral(strdf.Period{
			Start: h.Time.UTC(),
			End:   h.Time.UTC().Add(15 * time.Minute),
		})),
	}
}
