package noa

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/raster"
	"repro/internal/scene"
	"repro/internal/sciql"
	"repro/internal/strabon"
	"repro/internal/strdf"
	"repro/internal/stsparql"
)

// demoFrames generates the standard demo scenario at test resolution.
func demoFrames(t *testing.T, steps int) []*raster.Frame {
	t.Helper()
	return raster.Generate(raster.GenOptions{Width: 128, Height: 128, Steps: steps})
}

func TestChainDetectsSeededFires(t *testing.T) {
	frames := demoFrames(t, 6)
	chain := DefaultChain(scene.Region)
	p, err := chain.Run(frames[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hotspots) == 0 {
		t.Fatal("no hotspots detected")
	}
	// Every seeded fire active by frame 5 should be covered by a hotspot.
	for _, fe := range scene.FireEvents() {
		if fe.StartStep > 5 {
			continue
		}
		found := false
		for _, h := range p.Hotspots {
			if geo.GeodesicDistanceMeters(h.Geometry, fe.Loc) < 20000 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fire %s at %v not detected", fe.Name, fe.Loc)
		}
	}
	// Confidence bounds.
	for _, h := range p.Hotspots {
		if h.Confidence < 0.5 || h.Confidence >= 1 {
			t.Errorf("hotspot %s confidence %g out of range", h.ID, h.Confidence)
		}
		if h.PixelCount < 1 {
			t.Errorf("hotspot %s has no pixels", h.ID)
		}
		if err := geo.Validate(h.Geometry); err != nil {
			t.Errorf("hotspot %s geometry invalid: %v", h.ID, err)
		}
	}
	// Stage timings recorded.
	for _, stage := range []string{"crop", "georeference", "classify", "geometry"} {
		if _, ok := p.Timings[stage]; !ok {
			t.Errorf("missing timing for stage %s", stage)
		}
	}
}

func TestChainNoFiresNoHotspots(t *testing.T) {
	frames := raster.Generate(raster.GenOptions{
		Width: 64, Height: 64, Steps: 1,
		Fires: []scene.FireEvent{},
	})
	chain := DefaultChain(scene.Region)
	p, err := chain.Run(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hotspots) != 0 {
		t.Fatalf("false positives without fires: %d", len(p.Hotspots))
	}
}

func TestChainWithResampling(t *testing.T) {
	frames := demoFrames(t, 4)
	chain := DefaultChain(scene.Region)
	chain.TargetH, chain.TargetW = 96, 96
	p, err := chain.Run(frames[3])
	if err != nil {
		t.Fatal(err)
	}
	if p.GeoRef.DX == frames[3].GeoRef.DX {
		t.Fatal("georeference should change resolution")
	}
	if len(p.Hotspots) == 0 {
		t.Fatal("resampled chain lost all hotspots")
	}
}

func TestChainCropMiss(t *testing.T) {
	frames := demoFrames(t, 1)
	chain := DefaultChain(geo.Envelope{MinX: 100, MinY: 100, MaxX: 101, MaxY: 101})
	if _, err := chain.Run(frames[0]); err == nil {
		t.Fatal("crop outside the frame should error")
	}
}

func TestChainSciQLAgreesWithNative(t *testing.T) {
	frames := demoFrames(t, 6)
	f := frames[5]
	chain := DefaultChain(scene.Region)
	native, err := chain.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	eng := sciql.NewEngine()
	maskObj, err := chain.RunSciQL(eng, f)
	if err != nil {
		t.Fatal(err)
	}
	mask := maskObj.Values["v"]
	// The SciQL mask's hot-pixel count must equal the native product's
	// total pixel count.
	hot := 0
	for _, v := range mask.Data {
		if v == 1 {
			hot++
		}
	}
	nativePixels := 0
	for _, h := range native.Hotspots {
		nativePixels += h.PixelCount
	}
	if hot != nativePixels {
		t.Fatalf("SciQL mask pixels %d != native %d", hot, nativePixels)
	}
}

func TestProductTriples(t *testing.T) {
	frames := demoFrames(t, 4)
	chain := DefaultChain(scene.Region)
	p, err := chain.Run(frames[3])
	if err != nil {
		t.Fatal(err)
	}
	triples := p.Triples()
	if len(triples) != 8*len(p.Hotspots) {
		t.Fatalf("triples = %d for %d hotspots", len(triples), len(p.Hotspots))
	}
	// Geometry and period literals decode.
	for _, tr := range triples {
		switch tr.P.Value {
		case PropGeometry:
			if _, err := strdf.ParseSpatial(tr.O); err != nil {
				t.Fatalf("bad geometry literal: %v", err)
			}
		case PropValidTime:
			period, err := strdf.ParsePeriod(tr.O)
			if err != nil {
				t.Fatalf("bad period literal: %v", err)
			}
			if !period.Contains(p.Time.Add(time.Minute)) {
				t.Fatal("valid time should cover the repeat cycle")
			}
		}
	}
}

// TestTemporalHotspotQuery exercises the stRDF valid-time dimension: only
// hotspots whose validity period overlaps the asked interval answer.
func TestTemporalHotspotQuery(t *testing.T) {
	frames := demoFrames(t, 3)
	chain := DefaultChain(scene.Region)
	eng := stsparql.New(strabon.NewStore())
	for _, f := range frames {
		p, err := chain.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		StoreProduct(eng, p)
	}
	// Frames are 12:00, 12:15, 12:30; ask for fires valid around 12:20.
	res := eng.MustQuery(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
		SELECT ?h WHERE {
			?h a mon:Hotspot .
			?h noa:validTime ?vt .
			FILTER(strdf:overlapsPeriod(?vt, "[2007-08-25T12:20:00Z, 2007-08-25T12:25:00Z)"^^strdf:period))
		}`)
	if len(res.Bindings) == 0 {
		t.Fatal("no hotspots valid at 12:20")
	}
	for _, b := range res.Bindings {
		if !strings.Contains(b["h"].Value, "1215") {
			t.Fatalf("hotspot %s should come from the 12:15 frame", b["h"].Value)
		}
	}
}

// refinedFixture runs the chain, stores products + auxiliary data, and
// returns the engine plus the pre-refinement product.
func refinedFixture(t *testing.T) (*stsparql.Engine, *Product) {
	t.Helper()
	frames := demoFrames(t, 6)
	chain := DefaultChain(scene.Region)
	p, err := chain.Run(frames[5])
	if err != nil {
		t.Fatal(err)
	}
	eng := stsparql.New(strabon.NewStore())
	StoreProduct(eng, p)
	LoadAuxiliaryData(eng)
	return eng, p
}

func TestRefinementRemovesSeaHotspots(t *testing.T) {
	eng, p := refinedFixture(t)
	stats, err := Refine(eng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != len(p.Hotspots) {
		t.Fatalf("total = %d, want %d", stats.Total, len(p.Hotspots))
	}
	if stats.Rejected == 0 {
		t.Fatal("no sea hotspots rejected; the demo's false positives were seeded in the sea")
	}
	// Post-refinement: no remaining hotspot is disjoint from the landmass.
	geoms, err := QueryHotspotGeometries(eng)
	if err != nil {
		t.Fatal(err)
	}
	land := scene.Landmass()
	for iri, g := range geoms {
		v, err := strdf.ParseSpatial(g)
		if err != nil {
			t.Fatalf("%s: %v", iri, err)
		}
		if geo.Disjoint(v.Geom, land) {
			t.Errorf("hotspot %s still entirely in the sea", iri)
		}
	}
	// Real fires survive: each non-spurious seeded fire still has a
	// nearby hotspot.
	for _, fe := range scene.FireEvents() {
		if fe.Spurious || fe.StartStep > 5 {
			continue
		}
		found := false
		for _, g := range geoms {
			v, _ := strdf.ParseSpatial(g)
			if geo.GeodesicDistanceMeters(v.Geom, fe.Loc) < 20000 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("real fire %s lost in refinement", fe.Name)
		}
	}
}

func TestRefinementIdempotent(t *testing.T) {
	eng, _ := refinedFixture(t)
	if _, err := Refine(eng); err != nil {
		t.Fatal(err)
	}
	again, err := Refine(eng)
	if err != nil {
		t.Fatal(err)
	}
	if again.Rejected != 0 {
		t.Fatalf("second refinement rejected %d more", again.Rejected)
	}
}

func TestFireMap(t *testing.T) {
	eng, _ := refinedFixture(t)
	if _, err := Refine(eng); err != nil {
		t.Fatal(err)
	}
	m, err := BuildFireMap(eng, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layer("hotspots")) == 0 {
		t.Fatal("fire map has no hotspots")
	}
	// PineFire burns inside PineForestNorth, so the forests layer must
	// appear.
	if len(m.Layer("forests")) == 0 {
		t.Fatal("fire map misses the burning forest")
	}
	// The Olympia fire is ~1.5 km from the Olympia site.
	foundOlympia := false
	for _, f := range m.Layer("sites") {
		if f.Properties["name"] == "Olympia" {
			foundOlympia = true
		}
	}
	if !foundOlympia {
		t.Fatal("fire map misses the Olympia site")
	}
	// GeoJSON output round-trips as JSON.
	var buf bytes.Buffer
	if err := m.WriteGeoJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["type"] != "FeatureCollection" {
		t.Fatal("not a FeatureCollection")
	}
	feats := doc["features"].([]any)
	if len(feats) != len(m.Features) {
		t.Fatalf("features = %d, want %d", len(feats), len(m.Features))
	}
}

func TestFireMapEmptyStore(t *testing.T) {
	eng := stsparql.New(strabon.NewStore())
	m, err := BuildFireMap(eng, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Features) != 0 {
		t.Fatal("empty store should give empty map")
	}
}

func TestShapefileRoundTrip(t *testing.T) {
	frames := demoFrames(t, 6)
	chain := DefaultChain(scene.Region)
	p, err := chain.Run(frames[5])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteShapefile(&buf, p.Hotspots); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShapefile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(p.Hotspots) {
		t.Fatalf("records = %d, want %d", len(got), len(p.Hotspots))
	}
	for i, g := range got {
		// Envelopes must match the source geometries.
		want := p.Hotspots[i].Geometry.Envelope()
		env := g.Envelope()
		if !envClose(env, want) {
			t.Errorf("record %d envelope %+v != %+v", i, env, want)
		}
	}
}

func envClose(a, b geo.Envelope) bool {
	const tol = 1e-9
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(a.MinX-b.MinX) < tol && abs(a.MinY-b.MinY) < tol &&
		abs(a.MaxX-b.MaxX) < tol && abs(a.MaxY-b.MaxY) < tol
}

func TestShapefileErrors(t *testing.T) {
	if _, err := ReadShapefile(strings.NewReader("short")); err == nil {
		t.Fatal("short input should error")
	}
	bad := make([]byte, 100)
	if _, err := ReadShapefile(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad file code should error")
	}
}

func TestRefinementUpdatesParse(t *testing.T) {
	for i, u := range RefinementUpdates() {
		if _, err := stsparql.ParseQuery(u); err != nil {
			t.Errorf("update %d does not parse: %v", i, err)
		}
	}
}
