// Package noa implements the National Observatory of Athens fire
// monitoring application of the demo: the hotspot processing chain
// (ingestion, cropping, georeferencing, classification, generation of
// hotspot geometries — Scenario 1), the stSPARQL-driven thematic
// refinement of the products (Scenario 2), and the generation of fire
// maps enriched with linked open data.
package noa

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/ingest"
	"repro/internal/kdd"
	"repro/internal/parallel"
	"repro/internal/raster"
	"repro/internal/sciql"
)

// Hotspot is one detected fire region in a product.
type Hotspot struct {
	// ID is unique within the product ("<frameID>/hs<k>").
	ID string
	// FrameID identifies the source acquisition.
	FrameID string
	// Time is the acquisition time.
	Time time.Time
	// Geometry is the WGS84 footprint of the detected region.
	Geometry geo.Geometry
	// Confidence in [0.5, 1).
	Confidence float64
	// Sensor names the instrument.
	Sensor string
	// PixelCount is the number of detected pixels.
	PixelCount int
}

// Product is the output of one chain run over one frame.
type Product struct {
	FrameID  string
	Time     time.Time
	Sensor   string
	GeoRef   raster.GeoRef
	Hotspots []Hotspot
	// Timings records per-stage wall time, keyed by stage name
	// (ingest, crop, georeference, classify, geometry).
	Timings map[string]time.Duration
}

// Chain is the NOA processing chain configuration.
type Chain struct {
	// Window is the geographic crop window (the area of interest).
	Window geo.Envelope
	// Classifier holds the hotspot detection thresholds.
	Classifier kdd.HotspotClassifier
	// TargetH and TargetW give the georeferenced product grid; zero keeps
	// the crop's native resolution.
	TargetH, TargetW int
	// MinPixels drops components smaller than this (default 1).
	MinPixels int
}

// DefaultChain returns the demo configuration: crop to the scene region
// at native resolution with the default classifier.
func DefaultChain(window geo.Envelope) Chain {
	return Chain{Window: window, Classifier: kdd.DefaultHotspotClassifier(), MinPixels: 1}
}

// Run executes the chain on a frame: crop both thermal bands,
// georeference them onto the target grid, classify, and vectorise the
// connected components into hotspot geometries.
func (c Chain) Run(f *raster.Frame) (*Product, error) {
	p := &Product{
		FrameID: f.ID,
		Time:    f.Time,
		Sensor:  f.Sensor,
		Timings: map[string]time.Duration{},
	}
	stage := func(name string) func() {
		start := time.Now()
		return func() { p.Timings[name] += time.Since(start) }
	}

	// Crop.
	done := stage("crop")
	ir39, cropRef, err := ingest.Crop(f, raster.BandIR39, c.Window)
	if err != nil {
		return nil, fmt.Errorf("noa: crop IR_039: %w", err)
	}
	ir108, _, err := ingest.Crop(f, raster.BandIR108, c.Window)
	if err != nil {
		return nil, fmt.Errorf("noa: crop IR_108: %w", err)
	}
	done()

	// Georeference.
	done = stage("georeference")
	gr := cropRef
	if c.TargetH > 0 && c.TargetW > 0 {
		dst := raster.GeoRef{
			OriginX: cropRef.OriginX,
			OriginY: cropRef.OriginY,
			DX:      float64(ir39.Width()) * cropRef.DX / float64(c.TargetW),
			DY:      float64(ir39.Height()) * cropRef.DY / float64(c.TargetH),
			SRID:    cropRef.SRID,
		}
		ir39, err = ingest.Georeference(ir39, cropRef, dst, c.TargetH, c.TargetW)
		if err != nil {
			return nil, fmt.Errorf("noa: georeference: %w", err)
		}
		ir108, err = ingest.Georeference(ir108, cropRef, dst, c.TargetH, c.TargetW)
		if err != nil {
			return nil, fmt.Errorf("noa: georeference: %w", err)
		}
		gr = dst
	}
	p.GeoRef = gr
	done()

	// Classify.
	done = stage("classify")
	mask, err := c.Classifier.Classify(ir39, ir108)
	if err != nil {
		return nil, fmt.Errorf("noa: classify: %w", err)
	}
	done()

	// Vectorise components into geometries.
	done = stage("geometry")
	hotspots, err := c.vectorize(f.ID, f.Time, f.Sensor, mask, ir39, ir108, gr)
	if err != nil {
		return nil, fmt.Errorf("noa: geometry: %w", err)
	}
	p.Hotspots = hotspots
	done()
	return p, nil
}

// vectorize groups detected pixels into components and dissolves each
// component's pixel footprints into one geometry.
func (c Chain) vectorize(frameID string, ts time.Time, sensor string,
	mask, ir39, ir108 *array.Array, gr raster.GeoRef) ([]Hotspot, error) {
	comps, err := mask.ConnectedComponents()
	if err != nil {
		return nil, err
	}
	minPix := c.MinPixels
	if minPix < 1 {
		minPix = 1
	}
	// Components dissolve independently (confidence sum + boundary
	// trace), so they fan out over the shared tile worker pool; the
	// result order is fixed by the sort below either way.
	results := make([]Hotspot, len(comps))
	keep := make([]bool, len(comps))
	parallel.Range(len(comps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			comp := comps[i]
			if comp.Size() < minPix {
				continue
			}
			var confSum float64
			for _, cell := range comp.Cells {
				confSum += c.Classifier.Confidence(ir39.At2(cell[0], cell[1]), ir108.At2(cell[0], cell[1]))
			}
			geom := geo.Geometry(traceComponent(comp, gr))
			results[i] = Hotspot{
				ID:         fmt.Sprintf("%s/hs%d", frameID, comp.Label),
				FrameID:    frameID,
				Time:       ts,
				Geometry:   geom,
				Confidence: confSum / float64(comp.Size()),
				Sensor:     sensor,
				PixelCount: comp.Size(),
			}
			keep[i] = true
		}
	})
	out := make([]Hotspot, 0, len(comps))
	for i, k := range keep {
		if k {
			out = append(out, results[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RunSciQL executes the crop+classify core of the chain as SciQL
// statements against an engine — the form the demo walks the user through
// ("how SciQL queries are used to implement the NOA processing chains").
// It registers the frame's thermal bands, evaluates the bi-spectral test
// declaratively, and returns the resulting mask array object.
func (c Chain) RunSciQL(eng *sciql.Engine, f *raster.Frame) (*sciql.ArrayObject, error) {
	if err := ingest.RegisterFrame(eng, "frame", f); err != nil {
		return nil, err
	}
	img, err := f.Band(raster.BandIR39)
	if err != nil {
		return nil, err
	}
	gr := f.GeoRef
	r0, c0 := gr.LonLatToPixel(geo.Point{X: c.Window.MinX, Y: c.Window.MaxY})
	r1, c1 := gr.LonLatToPixel(geo.Point{X: c.Window.MaxX, Y: c.Window.MinY})
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	r0, c0 = clamp(r0, img.Height()-1), clamp(c0, img.Width()-1)
	r1, c1 = clamp(r1, img.Height()-1), clamp(c1, img.Width()-1)
	// The chain as a declarative statement: dimension predicates crop,
	// the aligned array join computes the bi-spectral test, CASE
	// classifies.
	stmt := fmt.Sprintf(`CREATE ARRAY hotspot_mask AS
		SELECT a.y - %d AS y, a.x - %d AS x,
		       CASE WHEN a.v >= %g AND a.v - b.v >= %g THEN 1.0 ELSE 0.0 END AS v
		FROM frame_IR_039 a, frame_IR_108 b
		WHERE a.y = b.y AND a.x = b.x
		  AND a.y BETWEEN %d AND %d AND a.x BETWEEN %d AND %d`,
		r0, c0, c.Classifier.AbsoluteK, c.Classifier.DeltaK, r0, r1, c0, c1)
	if _, err := eng.Exec(stmt); err != nil {
		return nil, err
	}
	return eng.Array("hotspot_mask")
}
