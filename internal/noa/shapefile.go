package noa

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geo"
)

// Minimal ESRI shapefile (.shp) writer and reader for polygon products —
// the container format of the NOA chain's deliverables ("generation of
// shapefiles containing the geometries of hotspots"). Only the Polygon
// shape type (5) is supported, which is all the chain emits.

const (
	shpFileCode    = 9994
	shpVersion     = 1000
	shpTypePolygon = 5
)

// WriteShapefile writes hotspot geometries as a polygon shapefile. Each
// hotspot becomes one record; multipolygon geometries emit all their
// parts as rings of a single record.
func WriteShapefile(w io.Writer, hotspots []Hotspot) error {
	// Assemble records first to compute lengths.
	type record struct {
		rings [][]geo.Point
		box   geo.Envelope
	}
	var records []record
	total := geo.EmptyEnvelope()
	for _, h := range hotspots {
		var rings [][]geo.Point
		for _, p := range polysOf(h.Geometry) {
			// Shapefile outer rings are clockwise.
			ext := p.Exterior
			if ext.IsCCW() {
				ext = ext.Reverse()
			}
			rings = append(rings, ext.Coords)
			for _, hole := range p.Holes {
				hr := hole
				if !hr.IsCCW() {
					hr = hr.Reverse()
				}
				rings = append(rings, hr.Coords)
			}
		}
		if len(rings) == 0 {
			continue
		}
		rec := record{rings: rings, box: h.Geometry.Envelope()}
		records = append(records, rec)
		total = total.Extend(rec.box)
	}
	// Record payload sizes (in 16-bit words, per the spec).
	recSizes := make([]int, len(records))
	fileWords := 50 // 100-byte header
	for i, r := range records {
		nPoints := 0
		for _, ring := range r.rings {
			nPoints += len(ring)
		}
		// type(4) + box(32) + numParts(4) + numPoints(4) + parts + points
		bytes := 4 + 32 + 4 + 4 + 4*len(r.rings) + 16*nPoints
		recSizes[i] = bytes / 2
		fileWords += 4 + recSizes[i] // 8-byte record header
	}
	// Main header: big-endian file code and length, little-endian version.
	var hdr [100]byte
	binary.BigEndian.PutUint32(hdr[0:], shpFileCode)
	binary.BigEndian.PutUint32(hdr[24:], uint32(fileWords))
	binary.LittleEndian.PutUint32(hdr[28:], shpVersion)
	binary.LittleEndian.PutUint32(hdr[32:], shpTypePolygon)
	putF64 := func(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
	if total.IsEmpty() {
		total = geo.Envelope{}
	}
	putF64(hdr[36:], total.MinX)
	putF64(hdr[44:], total.MinY)
	putF64(hdr[52:], total.MaxX)
	putF64(hdr[60:], total.MaxY)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i, r := range records {
		var rh [8]byte
		binary.BigEndian.PutUint32(rh[0:], uint32(i+1))
		binary.BigEndian.PutUint32(rh[4:], uint32(recSizes[i]))
		if _, err := w.Write(rh[:]); err != nil {
			return err
		}
		payload := make([]byte, recSizes[i]*2)
		binary.LittleEndian.PutUint32(payload[0:], shpTypePolygon)
		putF64(payload[4:], r.box.MinX)
		putF64(payload[12:], r.box.MinY)
		putF64(payload[20:], r.box.MaxX)
		putF64(payload[28:], r.box.MaxY)
		binary.LittleEndian.PutUint32(payload[36:], uint32(len(r.rings)))
		nPoints := 0
		for _, ring := range r.rings {
			nPoints += len(ring)
		}
		binary.LittleEndian.PutUint32(payload[40:], uint32(nPoints))
		off := 44
		idx := 0
		for _, ring := range r.rings {
			binary.LittleEndian.PutUint32(payload[off:], uint32(idx))
			off += 4
			idx += len(ring)
		}
		for _, ring := range r.rings {
			for _, p := range ring {
				putF64(payload[off:], p.X)
				putF64(payload[off+8:], p.Y)
				off += 16
			}
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func polysOf(g geo.Geometry) []geo.Polygon {
	switch t := g.(type) {
	case geo.Polygon:
		if t.IsEmpty() {
			return nil
		}
		return []geo.Polygon{t}
	case geo.MultiPolygon:
		return t.Polygons
	case geo.GeometryCollection:
		var out []geo.Polygon
		for _, m := range t.Geometries {
			out = append(out, polysOf(m)...)
		}
		return out
	}
	return nil
}

// ReadShapefile decodes the polygon records of a .shp stream, returning
// one geometry per record (holes are not reconstructed; every ring
// becomes a polygon part, which suffices for round-trip verification).
func ReadShapefile(r io.Reader) ([]geo.Geometry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 100 {
		return nil, fmt.Errorf("noa: shapefile too short")
	}
	if binary.BigEndian.Uint32(data[0:]) != shpFileCode {
		return nil, fmt.Errorf("noa: bad shapefile code")
	}
	if binary.LittleEndian.Uint32(data[32:]) != shpTypePolygon {
		return nil, fmt.Errorf("noa: only polygon shapefiles are supported")
	}
	var out []geo.Geometry
	off := 100
	for off+8 <= len(data) {
		contentWords := int(binary.BigEndian.Uint32(data[off+4:]))
		off += 8
		if off+contentWords*2 > len(data) {
			return nil, fmt.Errorf("noa: truncated record at %d", off)
		}
		payload := data[off : off+contentWords*2]
		off += contentWords * 2
		if binary.LittleEndian.Uint32(payload[0:]) != shpTypePolygon {
			continue
		}
		nParts := int(binary.LittleEndian.Uint32(payload[36:]))
		nPoints := int(binary.LittleEndian.Uint32(payload[40:]))
		partIdx := make([]int, nParts+1)
		for i := 0; i < nParts; i++ {
			partIdx[i] = int(binary.LittleEndian.Uint32(payload[44+4*i:]))
		}
		partIdx[nParts] = nPoints
		ptsOff := 44 + 4*nParts
		getF := func(i int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(payload[ptsOff+8*i:]))
		}
		var polys []geo.Polygon
		for p := 0; p < nParts; p++ {
			var ring []geo.Point
			for i := partIdx[p]; i < partIdx[p+1]; i++ {
				ring = append(ring, geo.Point{X: getF(2 * i), Y: getF(2*i + 1)})
			}
			if len(ring) >= 4 {
				polys = append(polys, geo.NewPolygon(geo.Ring{Coords: ring}))
			}
		}
		switch len(polys) {
		case 0:
		case 1:
			out = append(out, polys[0])
		default:
			out = append(out, geo.MultiPolygon{Polygons: polys})
		}
	}
	return out, nil
}
