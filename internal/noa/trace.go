package noa

import (
	"sort"

	"repro/internal/array"
	"repro/internal/geo"
	"repro/internal/raster"
)

// Rectilinear boundary tracing: converts a 4-connected component of grid
// cells into its exact outline polygon (exterior ring plus hole rings) by
// following the component's boundary edges. This replaces pairwise
// polygon unions of pixel footprints — it is exact, linear in the number
// of boundary edges, and always yields a single valid polygon.

type corner struct{ x, y int } // pixel-corner coordinates (y grows downward)

type dirEdge struct {
	from, to corner
}

// traceComponent returns the outline of a component as a polygon in
// geographic coordinates. Cells are (row, col) pairs.
func traceComponent(comp array.Component, gr raster.GeoRef) geo.Polygon {
	cells := make(map[[2]int]bool, len(comp.Cells))
	for _, c := range comp.Cells {
		cells[c] = true
	}
	// Collect directed boundary edges with the component on the right in
	// pixel coordinates (clockwise loops on screen = CCW geographically).
	var edges []dirEdge
	for _, c := range comp.Cells {
		y, x := c[0], c[1]
		if !cells[[2]int{y - 1, x}] { // top
			edges = append(edges, dirEdge{corner{x, y}, corner{x + 1, y}})
		}
		if !cells[[2]int{y, x + 1}] { // right
			edges = append(edges, dirEdge{corner{x + 1, y}, corner{x + 1, y + 1}})
		}
		if !cells[[2]int{y + 1, x}] { // bottom
			edges = append(edges, dirEdge{corner{x + 1, y + 1}, corner{x, y + 1}})
		}
		if !cells[[2]int{y, x - 1}] { // left
			edges = append(edges, dirEdge{corner{x, y + 1}, corner{x, y}})
		}
	}
	// Index outgoing edges by start corner.
	out := map[corner][]int{}
	for i, e := range edges {
		out[e.from] = append(out[e.from], i)
	}
	used := make([]bool, len(edges))
	var loops [][]corner
	for i := range edges {
		if used[i] {
			continue
		}
		loop := walkLoop(edges, out, used, i)
		if len(loop) >= 4 {
			loops = append(loops, loop)
		}
	}
	// Convert loops to rings in geographic coordinates, dropping collinear
	// intermediate corners.
	rings := make([]geo.Ring, 0, len(loops))
	for _, loop := range loops {
		simplified := dropCollinear(loop)
		cs := make([]geo.Point, 0, len(simplified)+1)
		for _, c := range simplified {
			cs = append(cs, geo.Point{
				X: gr.OriginX + float64(c.x)*gr.DX,
				Y: gr.OriginY - float64(c.y)*gr.DY,
			})
		}
		cs = append(cs, cs[0])
		rings = append(rings, geo.Ring{Coords: cs})
	}
	if len(rings) == 0 {
		return geo.Polygon{}
	}
	// Largest ring is the exterior; the rest are holes.
	sort.Slice(rings, func(i, j int) bool { return rings[i].Area() > rings[j].Area() })
	return geo.NewPolygon(rings[0], rings[1:]...)
}

// walkLoop follows edges from edges[start] until the loop closes. At
// corners with two outgoing edges (diagonal cell contact) it prefers the
// sharpest right turn relative to the incoming direction, which keeps each
// loop simple (non-self-touching).
func walkLoop(edges []dirEdge, out map[corner][]int, used []bool, start int) []corner {
	var loop []corner
	cur := start
	for {
		used[cur] = true
		e := edges[cur]
		loop = append(loop, e.from)
		next := -1
		cands := out[e.to]
		switch countUnused(cands, used) {
		case 0:
			return loop // open chain: malformed input; bail out
		case 1:
			for _, c := range cands {
				if !used[c] {
					next = c
				}
			}
		default:
			// Prefer the sharpest right turn (relative to incoming dir).
			inDX, inDY := e.to.x-e.from.x, e.to.y-e.from.y
			bestScore := -3
			for _, c := range cands {
				if used[c] {
					continue
				}
				oDX, oDY := edges[c].to.x-edges[c].from.x, edges[c].to.y-edges[c].from.y
				// Cross product in screen coords: positive = right turn
				// (y grows downward).
				cross := inDX*oDY - inDY*oDX
				score := 0
				switch {
				case cross > 0:
					score = 1 // right turn
				case cross == 0:
					score = 0 // straight
				default:
					score = -1 // left turn
				}
				if score > bestScore {
					bestScore = score
					next = c
				}
			}
		}
		if next < 0 || next == start {
			return loop
		}
		cur = next
	}
}

func countUnused(cands []int, used []bool) int {
	n := 0
	for _, c := range cands {
		if !used[c] {
			n++
		}
	}
	return n
}

func dropCollinear(loop []corner) []corner {
	if len(loop) < 3 {
		return loop
	}
	var out []corner
	n := len(loop)
	for i := 0; i < n; i++ {
		prev := loop[(i-1+n)%n]
		cur := loop[i]
		next := loop[(i+1)%n]
		cross := (cur.x-prev.x)*(next.y-cur.y) - (cur.y-prev.y)*(next.x-cur.x)
		if cross != 0 {
			out = append(out, cur)
		}
	}
	if len(out) < 3 {
		return loop
	}
	return out
}
