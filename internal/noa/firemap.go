package noa

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/strdf"
	"repro/internal/stsparql"
)

// Fire map generation: the demo's final step assembles a map of the
// active hotspots enriched with relevant geo-information from the linked
// open data (towns, roads, archaeological sites, forests near the fires),
// entirely through stSPARQL queries. The map serialises as GeoJSON.

// Feature is one map feature: a geometry plus properties.
type Feature struct {
	Layer      string
	Geometry   geo.Geometry
	Properties map[string]string
}

// FireMap is a layered map document.
type FireMap struct {
	Features []Feature
}

// Layer returns the features of one layer.
func (m *FireMap) Layer(name string) []Feature {
	var out []Feature
	for _, f := range m.Features {
		if f.Layer == name {
			out = append(out, f)
		}
	}
	return out
}

// BuildFireMap assembles the fire map: all (refined) hotspots, plus the
// auxiliary features within radiusMeters of any hotspot.
func BuildFireMap(eng *stsparql.Engine, radiusMeters float64) (*FireMap, error) {
	m := &FireMap{}
	// 1. Hotspots (still typed mon:Hotspot after refinement).
	hs, err := eng.Query(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		SELECT ?h ?g ?c WHERE {
			?h a mon:Hotspot .
			?h noa:hasGeometry ?g .
			?h noa:hasConfidence ?c .
		} ORDER BY ?h`)
	if err != nil {
		return nil, fmt.Errorf("noa: firemap hotspots: %w", err)
	}
	var hotGeoms []geo.Geometry
	for _, b := range hs.Bindings {
		v, err := strdf.ParseSpatial(b["g"])
		if err != nil {
			continue
		}
		hotGeoms = append(hotGeoms, v.Geom)
		m.Features = append(m.Features, Feature{
			Layer:    "hotspots",
			Geometry: v.Geom,
			Properties: map[string]string{
				"iri":        b["h"].Value,
				"confidence": b["c"].Value,
			},
		})
	}
	if len(hotGeoms) == 0 {
		return m, nil
	}
	// 2. Auxiliary layers near the fires, one stSPARQL query per layer.
	layers := []struct {
		layer string
		class string
	}{
		{"towns", "http://sws.geonames.org/teleios/PopulatedPlace"},
		{"sites", "http://sws.geonames.org/teleios/ArchaeologicalSite"},
		{"roads", "http://linkedgeodata.org/teleios/Road"},
		{"forests", "http://teleios.di.uoa.gr/landcover#Forest"},
	}
	for _, l := range layers {
		feats, err := nearbyFeatures(eng, l.class, l.layer, hotGeoms, radiusMeters)
		if err != nil {
			return nil, err
		}
		m.Features = append(m.Features, feats...)
	}
	return m, nil
}

// nearbyFeatures queries one auxiliary class and keeps instances within
// radiusMeters of any hotspot geometry.
func nearbyFeatures(eng *stsparql.Engine, class, layer string, hot []geo.Geometry, radius float64) ([]Feature, error) {
	res, err := eng.Query(fmt.Sprintf(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?x ?g ?label WHERE {
			?x a <%s> .
			?x noa:hasGeometry ?g .
			OPTIONAL { ?x rdfs:label ?label }
		} ORDER BY ?x`, class))
	if err != nil {
		return nil, fmt.Errorf("noa: firemap layer %s: %w", layer, err)
	}
	var out []Feature
	for _, b := range res.Bindings {
		v, err := strdf.ParseSpatial(b["g"])
		if err != nil {
			continue
		}
		near := false
		for _, hg := range hot {
			if geo.GeodesicDistanceMeters(v.Geom, hg) <= radius {
				near = true
				break
			}
		}
		if !near {
			continue
		}
		props := map[string]string{"iri": b["x"].Value}
		if lbl, ok := b["label"]; ok {
			props["name"] = lbl.Value
		}
		out = append(out, Feature{Layer: layer, Geometry: v.Geom, Properties: props})
	}
	return out, nil
}

// WriteGeoJSON serialises the map as a GeoJSON FeatureCollection.
func (m *FireMap) WriteGeoJSON(w io.Writer) error {
	type gjGeom struct {
		Type        string `json:"type"`
		Coordinates any    `json:"coordinates"`
	}
	type gjFeature struct {
		Type       string            `json:"type"`
		Geometry   *gjGeom           `json:"geometry"`
		Properties map[string]string `json:"properties"`
	}
	type gjFC struct {
		Type     string      `json:"type"`
		Features []gjFeature `json:"features"`
	}
	fc := gjFC{Type: "FeatureCollection"}
	for _, f := range m.Features {
		typ, coords, err := toGeoJSON(f.Geometry)
		if err != nil {
			return err
		}
		props := map[string]string{"layer": f.Layer}
		for k, v := range f.Properties {
			props[k] = v
		}
		fc.Features = append(fc.Features, gjFeature{
			Type:       "Feature",
			Geometry:   &gjGeom{Type: typ, Coordinates: coords},
			Properties: props,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// toGeoJSON maps a geometry to its GeoJSON type tag and coordinates value.
func toGeoJSON(g geo.Geometry) (string, any, error) {
	wrap := func(t string, c any) (string, any, error) { return t, c, nil }
	pt := func(p geo.Point) []float64 { return []float64{round6(p.X), round6(p.Y)} }
	line := func(cs []geo.Point) [][]float64 {
		out := make([][]float64, len(cs))
		for i, c := range cs {
			out[i] = pt(c)
		}
		return out
	}
	poly := func(p geo.Polygon) [][][]float64 {
		out := [][][]float64{line(p.Exterior.Coords)}
		for _, h := range p.Holes {
			out = append(out, line(h.Coords))
		}
		return out
	}
	switch t := g.(type) {
	case geo.Point:
		return wrap("Point", pt(t))
	case geo.MultiPoint:
		return wrap("MultiPoint", line(t.Points))
	case geo.LineString:
		return wrap("LineString", line(t.Coords))
	case geo.MultiLineString:
		var cs [][][]float64
		for _, l := range t.Lines {
			cs = append(cs, line(l.Coords))
		}
		return wrap("MultiLineString", cs)
	case geo.Polygon:
		return wrap("Polygon", poly(t))
	case geo.MultiPolygon:
		var cs [][][][]float64
		for _, p := range t.Polygons {
			cs = append(cs, poly(p))
		}
		return wrap("MultiPolygon", cs)
	default:
		return "", nil, fmt.Errorf("noa: geometry type %T has no GeoJSON form", g)
	}
}

func round6(f float64) float64 {
	s := strconv.FormatFloat(f, 'f', 6, 64)
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// StoreProduct inserts a product's hotspot triples into the engine's
// store, returning the number of new triples.
func StoreProduct(eng *stsparql.Engine, p *Product) int {
	return eng.Store().AddAll(p.Triples())
}

// QueryHotspotGeometries returns the current geometry literal of every
// hotspot (by IRI), decoding the store state after refinement.
func QueryHotspotGeometries(eng *stsparql.Engine) (map[string]rdf.Term, error) {
	res, err := eng.Query(`
		PREFIX noa: <http://teleios.di.uoa.gr/noa#>
		PREFIX mon: <http://teleios.di.uoa.gr/monitoring#>
		SELECT ?h ?g WHERE { ?h a mon:Hotspot . ?h noa:hasGeometry ?g }`)
	if err != nil {
		return nil, err
	}
	out := map[string]rdf.Term{}
	for _, b := range res.Bindings {
		out[b["h"].Value] = b["g"]
	}
	return out, nil
}
