package strabon

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/rdf"
)

func persistTriple(i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.IRI(fmt.Sprintf("http://example.org/s%d", i)),
		rdf.IRI("http://example.org/p"),
		rdf.IntegerLiteral(int64(i)))
}

// TestSaveCrashInjectedKeepsPreviousState simulates the two crash modes
// of the old Save — death before any rename, and death between temp
// write and rename — and asserts the previously saved state stays
// loadable either way.
func TestSaveCrashInjectedKeepsPreviousState(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	for i := 0; i < 10; i++ {
		st.Add(persistTriple(i))
	}
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Crash mode 1: a later save died after writing its temp files but
	// before renaming — the directory holds *.tmp garbage alongside the
	// good files. Load must ignore it.
	for _, name := range []string{dictFile + ".tmp", triplesFile + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn half-write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load with stray temp files: %v", err)
	}
	if got.Len() != 10 {
		t.Fatalf("recovered %d triples, want 10", got.Len())
	}

	// Crash mode 2: a save dies before writing anything durable
	// (injected by planting a directory where the dictionary temp file
	// goes, so the create fails — the step the old code reached only
	// after already truncating the real files). The failed save must
	// leave the previous state untouched.
	st2 := NewStore()
	for i := 0; i < 25; i++ {
		st2.Add(persistTriple(1000 + i))
	}
	// (A later successful save simply truncates stray temp files; clear
	// them here so the next injection can plant directories instead.)
	for _, name := range []string{dictFile + ".tmp", triplesFile + ".tmp"} {
		os.Remove(filepath.Join(dir, name))
	}
	block := filepath.Join(dir, dictFile+".tmp")
	if err := os.Mkdir(block, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(dir); err == nil {
		t.Fatal("save over blocked temp path unexpectedly succeeded")
	}
	os.Remove(block)
	got, err = Load(dir)
	if err != nil {
		t.Fatalf("load after failed save: %v", err)
	}
	if got.Len() != 10 {
		t.Fatalf("failed save corrupted the store: %d triples, want 10", got.Len())
	}

	// Crash mode 3: death between the two renames — the new dictionary
	// landed, the new triples did not. Load re-encodes triples against
	// whatever dictionary it finds, so the directory must still load as
	// exactly the previous triple set.
	block = filepath.Join(dir, triplesFile+".tmp")
	if err := os.Mkdir(block, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(dir); err == nil {
		t.Fatal("save over blocked triples temp path unexpectedly succeeded")
	}
	os.Remove(block)
	got, err = Load(dir)
	if err != nil {
		t.Fatalf("load after half-renamed save: %v", err)
	}
	if got.Len() != 10 {
		t.Fatalf("half-renamed save corrupted the store: %d triples, want 10", got.Len())
	}
}

// TestSaveIsVersionConsistent runs Save concurrently with a writer
// appending t0, t1, t2, … — because Save captures the dictionary and
// triples under one lock acquisition, every saved state must be an
// exact prefix of the insertion sequence, never a torn mixture.
func TestSaveIsVersionConsistent(t *testing.T) {
	dir := t.TempDir()
	st := NewStore()
	st.Add(persistTriple(0))

	const total = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < total; i++ {
			st.Add(persistTriple(i))
		}
	}()
	for k := 0; k < 10; k++ {
		if err := st.Save(dir); err != nil {
			t.Errorf("save %d: %v", k, err)
			break
		}
	}
	wg.Wait()

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The saved store must be {t0..tk-1} for some k: sorted object
	// integers are exactly 0..len-1.
	var vals []int
	for _, tr := range got.Triples() {
		var v int
		fmt.Sscanf(tr.O.Value, "%d", &v)
		vals = append(vals, v)
	}
	sort.Ints(vals)
	for i, v := range vals {
		if v != i {
			t.Fatalf("saved state is not a prefix: position %d holds %d", i, v)
		}
	}
}

// TestSaveLoadRoundtripEscapesAndSpatial exercises the satellite's
// roundtrip matrix: literals with quotes, newlines, tabs, backslash-u
// sequences and non-ASCII, plus spatial literals — asserting dictionary
// ids, Version() semantics, and the geometry cache all survive
// Save→Load.
func TestSaveLoadRoundtripEscapesAndSpatial(t *testing.T) {
	st := NewStore()
	s := rdf.IRI("http://example.org/subject")
	p := rdf.IRI("http://example.org/label")
	gnarly := []rdf.Term{
		rdf.Literal(`plain`),
		rdf.Literal(`has "double quotes" inside`),
		rdf.Literal("line one\nline two\r\nline three"),
		rdf.Literal("tab\tseparated"),
		rdf.Literal(`backslash \ and \u sequence literal ☃`),
		rdf.Literal("actual snowman ☃ and accents éü"),
		rdf.LangLiteral("bonjour \"le\" monde\n", "fr"),
		rdf.TypedLiteral("42", rdf.XSDInteger),
	}
	spatial := []rdf.Term{
		rdf.TypedLiteral("POINT (23.7 37.9)", rdf.StRDFWKT),
		rdf.TypedLiteral("POLYGON ((23 37, 24 37, 24 38, 23 37))", rdf.StRDFWKT),
	}
	// GML literals are spatial but undecodable (strdf parses WKT only):
	// they must round-trip byte-exactly without entering the cache.
	gnarly = append(gnarly, rdf.TypedLiteral("<gml:Point><gml:pos>37.9 23.7</gml:pos></gml:Point>", rdf.StRDFGML))
	for _, o := range append(append([]rdf.Term{}, gnarly...), spatial...) {
		if !st.Add(rdf.NewTriple(s, p, o)) {
			t.Fatalf("duplicate add of %s", o)
		}
	}

	wantIDs := map[string]uint64{}
	for _, o := range append(append([]rdf.Term{}, gnarly...), spatial...) {
		id, err := st.LookupID(o)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs[o.String()] = id
	}

	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	if got.Len() != st.Len() {
		t.Fatalf("loaded %d triples, want %d", got.Len(), st.Len())
	}
	// Every literal must round-trip byte-exactly with its original id
	// (the saved dictionary pins id assignment).
	for _, o := range append(append([]rdf.Term{}, gnarly...), spatial...) {
		id, err := got.LookupID(o)
		if err != nil {
			t.Fatalf("literal lost in roundtrip: %s (%v)", o, err)
		}
		if id != wantIDs[o.String()] {
			t.Errorf("%s: id %d after load, want %d", o, id, wantIDs[o.String()])
		}
		back, ok := got.Dict().Decode(id)
		if !ok || back != o {
			t.Errorf("decode(%d) = %+v, want %+v", id, back, o)
		}
	}
	// The geometry cache must be rebuilt for every spatial literal.
	for _, o := range spatial {
		id, _ := got.LookupID(o)
		if _, ok := got.Geometry(id); !ok {
			t.Errorf("geometry cache missing for %s", o)
		}
	}
	// Version() semantics: a loaded store reports a nonzero version (it
	// was populated by mutations), version is stable across reads, and
	// moves on the next mutation.
	v := got.Version()
	if v == 0 {
		t.Fatal("loaded store reports version 0")
	}
	if got.Version() != v {
		t.Fatal("Version() not stable across reads")
	}
	got.Add(persistTriple(999))
	if got.Version() <= v {
		t.Fatalf("version did not advance on mutation: %d -> %d", v, got.Version())
	}
	// And a second Save→Load of the loaded store is byte-stable.
	dir2 := t.TempDir()
	if err := got.Save(dir2); err != nil {
		t.Fatal(err)
	}
	again, err := Load(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != got.Len() {
		t.Fatalf("second roundtrip: %d triples, want %d", again.Len(), got.Len())
	}
}

// TestRestoreColumnsValidation covers the error paths of the binary
// snapshot constructor.
func TestRestoreColumnsValidation(t *testing.T) {
	dict := rdf.NewDictionary()
	a := dict.Encode(rdf.IRI("http://example.org/a"))
	b := dict.Encode(rdf.IRI("http://example.org/b"))
	c := dict.Encode(rdf.IRI("http://example.org/c"))
	if _, err := RestoreColumns(dict, []uint64{a}, []uint64{b}, nil, nil, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RestoreColumns(dict, []uint64{a}, []uint64{b}, []uint64{99}, nil, 0); err == nil {
		t.Fatal("out-of-dictionary id accepted")
	}
	if _, err := RestoreColumns(dict, []uint64{a}, []uint64{b}, []uint64{c}, []uint64{77}, 0); err == nil {
		t.Fatal("unknown geometry id accepted")
	}
	st, err := RestoreColumns(dict, []uint64{a}, []uint64{b}, []uint64{c}, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 || st.Version() != 7 {
		t.Fatalf("restored len=%d version=%d", st.Len(), st.Version())
	}
	// The secondary indexes are deferred; both a read-path and a
	// write-path consumer must materialise them transparently.
	if got := st.MatchIDs(TriplePattern{S: a}); len(got) != 1 {
		t.Fatalf("MatchIDs over restored store: %v", got)
	}
	if st.Add(rdf.NewTriple(rdf.IRI("http://example.org/a"), rdf.IRI("http://example.org/b"), rdf.IRI("http://example.org/c"))) {
		t.Fatal("restored triple re-added: present map not rebuilt")
	}
	if !st.Remove(rdf.NewTriple(rdf.IRI("http://example.org/a"), rdf.IRI("http://example.org/b"), rdf.IRI("http://example.org/c"))) {
		t.Fatal("restored triple not removable")
	}
	if st.Len() != 0 {
		t.Fatalf("len after remove = %d", st.Len())
	}
}
