package strabon

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/colpack"
	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/rtree"
	"repro/internal/strdf"
)

// packView is the mapped-snapshot backend: a Snapshot whose pack field
// is non-nil answers MatchRows/Cardinality/DecodeAll straight off a
// packed snapshot file (colpack.Reader over an mmap), decoding blocks
// on demand instead of materialising columns, posting lists and the
// dictionary into heap memory. Every structure here is either
// immutable (the mapping) or a concurrency-safe cache — morsel workers
// hit these paths in parallel.
//
// Decoded blocks are cached forever (per snapshot): memory grows with
// the touched working set, not the dataset, and the raw mapped bytes
// stay page-cache-backed either way.
type packView struct {
	r *colpack.Reader

	// cols caches decoded S/P/O value blocks; postOff/postCnt cache
	// the posting index columns the same way.
	cols    [3]cachedCol
	postOff [3]cachedCol
	postCnt [3]cachedCol
	// postings caches fully decoded per-term posting lists
	// (id -> []int32), mirroring the shared heap posting lists.
	postings [3]sync.Map

	dictOff    cachedCol
	perm       cachedCol
	dictBlocks []atomic.Pointer[[]rdf.Term]

	geomIDsCol cachedCol
	// geomOnce builds the id->section-index map and the R-tree on
	// first spatial use, so boots that never run a spatial query pay
	// nothing (mirrors the store's lazy R-tree).
	geomOnce sync.Once
	geomIdx  map[uint64]int
	spatial  *rtree.Tree
	// geomCache holds lazily parsed WGS84 geometries.
	geomMu    sync.RWMutex
	geomCache map[uint64]strdf.SpatialValue

	stats *SnapshotStats

	// cachedBytes approximates the heap bytes pinned by decode caches —
	// the "resident" side of /stats' compression ratio.
	cachedBytes atomic.Int64
}

// cachedCol wraps a packed column with a lock-free decoded-block
// cache. Concurrent first touches may decode the same block twice;
// the loser's buffer is dropped — decoding is idempotent.
type cachedCol struct {
	col    *colpack.U64Col
	blocks []atomic.Pointer[[]uint64]
	bytes  *atomic.Int64
}

func newCachedCol(col *colpack.U64Col, bytes *atomic.Int64) cachedCol {
	return cachedCol{col: col, blocks: make([]atomic.Pointer[[]uint64], col.NumBlocks()), bytes: bytes}
}

func (c *cachedCol) block(b int) []uint64 {
	if p := c.blocks[b].Load(); p != nil {
		return *p
	}
	buf := c.col.DecodeBlock(b, nil)
	if c.blocks[b].CompareAndSwap(nil, &buf) {
		c.bytes.Add(int64(len(buf) * 8))
	} else {
		buf = *c.blocks[b].Load()
	}
	return buf
}

func (c *cachedCol) value(i int) uint64 {
	return c.block(i / colpack.BlockSize)[i%colpack.BlockSize]
}

// decodeAll decodes the whole column into a fresh slice (bypassing
// the cache — used by materialisation, which owns the result).
func (c *cachedCol) decodeAll() []uint64 {
	out := make([]uint64, 0, c.col.Len())
	var buf []uint64
	for b := 0; b < c.col.NumBlocks(); b++ {
		buf = c.col.DecodeBlock(b, buf)
		out = append(out, buf...)
	}
	return out
}

func newPackView(r *colpack.Reader) *packView {
	pv := &packView{r: r}
	for comp := 0; comp < 3; comp++ {
		pv.cols[comp] = newCachedCol(r.Col(comp), &pv.cachedBytes)
		pv.postOff[comp] = newCachedCol(r.PostOff(comp), &pv.cachedBytes)
		pv.postCnt[comp] = newCachedCol(r.PostCnt(comp), &pv.cachedBytes)
	}
	pv.dictOff = newCachedCol(r.DictOff(), &pv.cachedBytes)
	pv.perm = newCachedCol(r.Perm(), &pv.cachedBytes)
	pv.geomIDsCol = newCachedCol(r.GeomIDs(), &pv.cachedBytes)
	pv.dictBlocks = make([]atomic.Pointer[[]rdf.Term], r.NDictBlocks())
	pv.geomCache = make(map[uint64]strdf.SpatialValue)
	s := r.Stats()
	pv.stats = &SnapshotStats{
		Triples:   s.Triples,
		DistinctS: s.DistinctS,
		DistinctP: s.DistinctP,
		DistinctO: s.DistinctO,
		Geoms:     s.Geoms,
		Pred:      make(map[uint64]PredicateStats, len(s.Pred)),
	}
	for _, p := range s.Pred {
		pv.stats.Pred[p.ID] = PredicateStats{Count: p.Count, DistinctS: p.DistinctS, DistinctO: p.DistinctO}
	}
	return pv
}

// NewMappedSnapshot wraps an open packed snapshot as a read-only
// Snapshot. The snapshot keeps the reader (and its mapping) alive for
// its own lifetime.
func NewMappedSnapshot(r *colpack.Reader) *Snapshot {
	return &Snapshot{version: r.Version(), useIdx: true, pack: newPackView(r)}
}

// RestorePacked builds a store whose read view is served in place
// from a packed snapshot: no column, posting-list or dictionary
// materialisation happens at restore time, so restart-to-first-query
// is independent of dataset size. The store lazily materialises the
// heap representation on the first mutation (or legacy index-driven
// read) — the packed file is the read-optimised format, the heap is
// the write-side one.
func RestorePacked(r *colpack.Reader) (*Store, error) {
	if r.NRows() < 0 || r.NTerms() < 0 {
		return nil, fmt.Errorf("strabon: packed snapshot with negative meta")
	}
	st := NewStore()
	st.version = r.Version()
	sn := NewMappedSnapshot(r)
	st.packed = sn.pack
	st.snap = sn
	return st, nil
}

// --- term access --------------------------------------------------------

func (pv *packView) nTerms() int { return pv.r.NTerms() }
func (pv *packView) nRows() int  { return pv.r.NRows() }

// term decodes one dictionary term by id via the front-coded block
// cache.
func (pv *packView) term(id uint64) (rdf.Term, bool) {
	if id == 0 || id > uint64(pv.nTerms()) {
		return rdf.Term{}, false
	}
	b := int(id-1) / colpack.DictBlockSize
	terms := pv.dictBlock(b)
	return terms[int(id-1)%colpack.DictBlockSize], true
}

func (pv *packView) dictBlock(b int) []rdf.Term {
	if p := pv.dictBlocks[b].Load(); p != nil {
		return *p
	}
	start := pv.dictOff.value(b)
	end := pv.dictOff.value(b + 1)
	count := colpack.DictBlockSize
	if last := pv.nTerms() - b*colpack.DictBlockSize; last < count {
		count = last
	}
	terms, err := colpack.DecodeDictBlock(pv.r.DictBlockData(start, end), count, nil)
	if err != nil {
		// Unreachable on a file that passed Open's full verification;
		// reaching it means the mapping changed underneath us.
		panic(fmt.Sprintf("strabon: packed dictionary block %d corrupt after verification: %v", b, err))
	}
	if pv.dictBlocks[b].CompareAndSwap(nil, &terms) {
		bytes := int64(0)
		for _, t := range terms {
			bytes += int64(len(t.Value)+len(t.Datatype)+len(t.Lang)) + 48
		}
		pv.cachedBytes.Add(bytes)
	} else {
		terms = *pv.dictBlocks[b].Load()
	}
	return terms
}

// lookup binary-searches the sorted permutation column for t.
func (pv *packView) lookup(t rdf.Term) (uint64, bool) {
	n := pv.nTerms()
	i := sort.Search(n, func(i int) bool {
		id := pv.perm.value(i)
		term, _ := pv.term(id)
		return colpack.CompareTerms(term, t) >= 0
	})
	if i == n {
		return 0, false
	}
	id := pv.perm.value(i)
	if term, _ := pv.term(id); term == t {
		return id, true
	}
	return 0, false
}

func (pv *packView) decodeAllTerms(ids []uint64, out []rdf.Term) []rdf.Term {
	out = out[:len(ids)]
	for i, id := range ids {
		t, ok := pv.term(id)
		if !ok {
			t = rdf.Term{}
		}
		out[i] = t
	}
	return out
}

// --- row and posting access ----------------------------------------------

func (pv *packView) colID(comp int, row int32) uint64 {
	return pv.cols[comp].value(int(row))
}

func (pv *packView) row(row int32) (uint64, uint64, uint64) {
	return pv.colID(0, row), pv.colID(1, row), pv.colID(2, row)
}

// postCount returns the exact cardinality of id in component comp
// without decoding the posting list.
func (pv *packView) postCount(comp int, id uint64) int {
	if id == 0 || id > uint64(pv.nTerms()) {
		return 0
	}
	return int(pv.postCnt[comp].value(int(id - 1)))
}

// posting returns the decoded posting list of id in comp, cached per
// term. Callers must treat the slice as read-only (it is shared, like
// the heap snapshot's posting lists).
func (pv *packView) posting(comp int, id uint64) []int32 {
	if id == 0 || id > uint64(pv.nTerms()) {
		return nil
	}
	if v, ok := pv.postings[comp].Load(id); ok {
		return v.([]int32)
	}
	i := int(id - 1)
	cnt := pv.postCnt[comp].value(i)
	if cnt == 0 {
		pv.postings[comp].LoadOrStore(id, []int32(nil))
		return nil
	}
	start := pv.postOff[comp].value(i)
	end := pv.postOff[comp].value(i + 1)
	rows, err := colpack.DecodePostings(pv.r.PostingData(comp, start, end), int(cnt), nil)
	if err != nil {
		panic(fmt.Sprintf("strabon: packed posting list comp=%d id=%d corrupt after verification: %v", comp, id, err))
	}
	actual, loaded := pv.postings[comp].LoadOrStore(id, rows)
	if !loaded {
		pv.cachedBytes.Add(int64(len(rows) * 4))
	}
	return actual.([]int32)
}

// matchRows is MatchRows over the mapped representation. Same
// contract as the heap path: one bound component returns the shared
// posting list; otherwise matches go into *buf. The multi-bound
// filter consults per-block zone maps before decoding a block — a
// candidate block whose [min,max] cannot contain the wanted id is
// skipped without touching its packed words.
func (pv *packView) matchRows(pat TriplePattern, buf *[]int32) []int32 {
	var scratch []int32
	if buf == nil {
		buf = &scratch
	}
	type check struct {
		comp int
		id   uint64
	}
	var checks [3]check
	nChecks := 0
	candComp, candID, candN := -1, uint64(0), 0
	for comp, id := range [3]uint64{pat.S, pat.P, pat.O} {
		if id == 0 {
			continue
		}
		n := pv.postCount(comp, id)
		if candComp < 0 || n < candN {
			if candComp >= 0 {
				checks[nChecks] = check{candComp, candID}
				nChecks++
			}
			candComp, candID, candN = comp, id, n
		} else {
			checks[nChecks] = check{comp, id}
			nChecks++
		}
	}
	if candComp < 0 {
		// Full scan: every row matches.
		out := (*buf)[:0]
		for row := 0; row < pv.nRows(); row++ {
			out = append(out, int32(row))
		}
		*buf = out
		return out
	}
	cand := pv.posting(candComp, candID)
	if nChecks == 0 {
		return cand // shared posting list: read-only
	}
	out := (*buf)[:0]
	i := 0
	for i < len(cand) {
		blk := int(cand[i]) / colpack.BlockSize
		blkEnd := int32((blk + 1) * colpack.BlockSize)
		skip := false
		for _, c := range checks[:nChecks] {
			mn, mx, _ := pv.cols[c.comp].col.BlockRange(blk)
			if c.id < mn || c.id > mx {
				skip = true
				break
			}
		}
		if skip {
			// Zone map excludes the block: advance past all its rows
			// without decoding anything.
			for i < len(cand) && cand[i] < blkEnd {
				i++
			}
			continue
		}
		for i < len(cand) && cand[i] < blkEnd {
			row := cand[i]
			i++
			ok := true
			for _, c := range checks[:nChecks] {
				if pv.colID(c.comp, row) != c.id {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, row)
			}
		}
	}
	*buf = out
	return out
}

func (pv *packView) cardinality(pat TriplePattern) int {
	est := pv.nRows()
	for comp, id := range [3]uint64{pat.S, pat.P, pat.O} {
		if id == 0 {
			continue
		}
		if n := pv.postCount(comp, id); n < est {
			est = n
		}
	}
	return est
}

// --- spatial access -------------------------------------------------------

// ensureGeoms builds the geometry id index and the R-tree from the
// stored envelopes — no WKT parsing, just a bulk load over nGeoms
// boxes, and only on first spatial use.
func (pv *packView) ensureGeoms() {
	pv.geomOnce.Do(func() {
		n := pv.r.NGeoms()
		pv.geomIdx = make(map[uint64]int, n)
		items := make([]rtree.Item, 0, n)
		for i := 0; i < n; i++ {
			id := pv.geomIDsCol.value(i)
			pv.geomIdx[id] = i
			items = append(items, rtree.Item{Box: pv.r.GeomEnv(i), ID: id})
		}
		pv.spatial = rtree.BulkLoad(items, 0)
	})
}

// geometry parses (and caches) the WGS84 geometry for a spatial
// literal id.
func (pv *packView) geometry(id uint64) (strdf.SpatialValue, bool) {
	pv.ensureGeoms()
	if _, ok := pv.geomIdx[id]; !ok {
		return strdf.SpatialValue{}, false
	}
	pv.geomMu.RLock()
	v, ok := pv.geomCache[id]
	pv.geomMu.RUnlock()
	if ok {
		return v, true
	}
	t, ok := pv.term(id)
	if !ok {
		return strdf.SpatialValue{}, false
	}
	v, err := strdf.ParseSpatial(t)
	if err != nil {
		// The writer only lists ids whose ingest-time parse succeeded.
		return strdf.SpatialValue{}, false
	}
	if w, err := v.ToWGS84(); err == nil {
		v = w
	}
	pv.geomMu.Lock()
	pv.geomCache[id] = v
	pv.geomMu.Unlock()
	return v, true
}

func (pv *packView) spatialCandidates(box geo.Envelope) []uint64 {
	pv.ensureGeoms()
	return pv.spatial.Search(box, nil)
}

func (pv *packView) geomIDs() []uint64 {
	return pv.geomIDsCol.decodeAll()
}

// --- materialisation ------------------------------------------------------

// materializeInto decodes the packed state into st's heap
// representation: columns, dictionary (terms re-encoded in id order,
// so ids are preserved bit-for-bit) and parsed geometries. Secondary
// indexes stay deferred behind lazyIdx exactly as after
// RestoreColumns. Callers hold st's write lock.
func (pv *packView) materializeInto(st *Store) error {
	st.s = pv.cols[0].decodeAll()
	st.p = pv.cols[1].decodeAll()
	st.o = pv.cols[2].decodeAll()
	nTerms := pv.nTerms()
	for b := 0; b*colpack.DictBlockSize < nTerms; b++ {
		for _, t := range pv.dictBlock(b) {
			st.dict.Encode(t)
		}
	}
	if got := st.dict.Len(); got != nTerms {
		return fmt.Errorf("strabon: packed dictionary materialised %d terms, want %d", got, nTerms)
	}
	for _, id := range pv.geomIDs() {
		t, ok := st.dict.Decode(id)
		if !ok {
			return fmt.Errorf("strabon: packed geometry id %d not in dictionary", id)
		}
		v, err := strdf.ParseSpatial(t)
		if err != nil {
			return fmt.Errorf("strabon: packed geometry id %d: %w", id, err)
		}
		if w, err := v.ToWGS84(); err == nil {
			v = w
		}
		st.geoms[id] = v
	}
	st.deleted = 0
	st.lazyIdx = true
	st.spatialStale = len(st.geoms) > 0
	return nil
}

// cachedHeapBytes approximates heap memory pinned by this view's
// decode caches.
func (pv *packView) cachedHeapBytes() int64 { return pv.cachedBytes.Load() }

// sizeBytes is the on-disk (mapped) snapshot size.
func (pv *packView) sizeBytes() int64 { return pv.r.SizeBytes() }

// PackData assembles the packed snapshot writer's input from this
// snapshot's state; seq is the WAL sequence number the snapshot
// covers. It works in both modes — re-packing a mapped snapshot
// decodes it once — though checkpointing skips unchanged stores, so
// in practice only heap snapshots reach the writer.
func (sn *Snapshot) PackData(seq uint64) *colpack.SnapshotData {
	d := &colpack.SnapshotData{Seq: seq, Version: sn.version}
	if pv := sn.pack; pv != nil {
		d.S = pv.cols[0].decodeAll()
		d.P = pv.cols[1].decodeAll()
		d.O = pv.cols[2].decodeAll()
		d.Postings = pv.posting
		nTerms := pv.nTerms()
		d.Terms = make([]rdf.Term, 0, nTerms)
		for b := 0; b*colpack.DictBlockSize < nTerms; b++ {
			d.Terms = append(d.Terms, pv.dictBlock(b)...)
		}
		d.GeomIDs = pv.geomIDs()
		d.GeomEnvs = make([]geo.Envelope, len(d.GeomIDs))
		for i := range d.GeomEnvs {
			d.GeomEnvs[i] = pv.r.GeomEnv(i)
		}
		d.Stats = packStats(pv.stats)
		return d
	}
	d.S, d.P, d.O = sn.S, sn.P, sn.O
	d.Postings = func(comp int, id uint64) []int32 {
		switch comp {
		case 0:
			return sn.byS[id]
		case 1:
			return sn.byP[id]
		default:
			return sn.byO[id]
		}
	}
	nTerms := sn.dict.Len()
	ids := make([]uint64, nTerms)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	d.Terms = sn.dict.DecodeAll(ids, make([]rdf.Term, nTerms))
	d.GeomIDs = sn.GeomIDs()
	d.GeomEnvs = make([]geo.Envelope, len(d.GeomIDs))
	for i, id := range d.GeomIDs {
		d.GeomEnvs[i] = sn.geoms[id].Geom.Envelope()
	}
	d.Stats = packStats(sn.Stats())
	return d
}

// packStats converts planner statistics to the serialised form, with
// predicates sorted by id so the file bytes are deterministic.
func packStats(s *SnapshotStats) colpack.StatsBlock {
	out := colpack.StatsBlock{
		Triples:   s.Triples,
		DistinctS: s.DistinctS,
		DistinctP: s.DistinctP,
		DistinctO: s.DistinctO,
		Geoms:     s.Geoms,
		Pred:      make([]colpack.PredStat, 0, len(s.Pred)),
	}
	for id, ps := range s.Pred {
		out.Pred = append(out.Pred, colpack.PredStat{ID: id, Count: ps.Count, DistinctS: ps.DistinctS, DistinctO: ps.DistinctO})
	}
	sort.Slice(out.Pred, func(i, j int) bool { return out.Pred[i].ID < out.Pred[j].ID })
	return out
}
