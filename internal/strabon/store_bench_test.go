package strabon

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

func benchTriples(n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/s%d", i%1000)),
			rdf.IRI(fmt.Sprintf("http://ex/p%d", i%10)),
			rdf.IntegerLiteral(int64(i)),
		))
	}
	return out
}

func BenchmarkStoreAdd(b *testing.B) {
	triples := benchTriples(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStore()
		if got := st.AddAll(triples); got != len(triples) {
			b.Fatal("dup")
		}
	}
	b.ReportMetric(float64(len(triples)), "triples/op")
}

func BenchmarkStoreMatch(b *testing.B) {
	st := NewStore()
	st.AddAll(benchTriples(100000))
	p0, _ := st.LookupID(rdf.IRI("http://ex/p0"))
	s0, _ := st.LookupID(rdf.IRI("http://ex/s0"))
	b.Run("byPredicate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rows := st.MatchIDs(TriplePattern{P: p0}); len(rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("bySubjectPredicate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rows := st.MatchIDs(TriplePattern{S: s0, P: p0}); len(rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("fullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rows := st.MatchIDs(TriplePattern{}); len(rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

func BenchmarkStoreSpatialIngest(b *testing.B) {
	// Adding spatial literals pays WKT parsing + R-tree insertion.
	lits := make([]rdf.Triple, 1000)
	for i := range lits {
		lits[i] = rdf.NewTriple(
			rdf.IRI(fmt.Sprintf("http://ex/g%d", i)),
			rdf.IRI("http://ex/geom"),
			rdf.WKTLiteral(fmt.Sprintf("POINT (%d.5 %d.5)", i%1000, i), 4326),
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := NewStore()
		st.AddAll(lits)
		if st.Stats().SpatialLiterals != 1000 {
			b.Fatal("spatial count")
		}
	}
}
