// Package strabon implements the Strabon geospatial RDF store of the
// paper: triples dictionary-encoded into three parallel integer columns
// (the MonetDB layout under the real Strabon), secondary hash indexes on
// each component, per-predicate statistics for the stSPARQL optimizer, and
// an R-tree over the spatial literals for spatial filter pushdown.
package strabon

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/column"
	"repro/internal/fsx"
	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/rtree"
	"repro/internal/strdf"
)

// Journal receives write-ahead notifications for every mutation, invoked
// while the store's write lock is held and strictly before the in-memory
// structures change. An implementation (internal/persist) encodes a log
// record, assigns it the next WAL sequence number, and returns a Commit
// ticket; a non-nil error vetoes the mutation synchronously — nothing
// was applied, nothing was logged — and is reported to the caller as
// "nothing changed" (Add returns false, AddAll returns 0, ...) and
// recorded for JournalErr. LogAdd only ever sees triples that are
// genuinely new (duplicates are filtered first), so replaying the
// journal rebuilds the dictionary with identical id assignment.
//
// Sequence assignment is deliberately split from the durability wait:
// the Log* hooks run under the store's write lock and must only do the
// fast part (encode, assign, enqueue). The caller applies the mutation,
// releases the lock, and THEN awaits the ticket — so K concurrent
// writers can share one group fsync instead of paying K fsyncs in
// series under the lock. A ticket failure after the mutation applied
// means the journal has latched broken (see Commit); the caller records
// it as a veto and reports failure.
//
// The ticket's sequence number becomes the store's applied-seq
// watermark (AppliedSeq) once the record is durable: the watermark
// moves only AFTER both the state change is visible and the record is
// on stable storage, so a reader that observes AppliedSeq() >= N is
// guaranteed to see the effects of WAL record N.
type Journal interface {
	LogAdd(triples []rdf.Triple) (Commit, error)
	LogRemove(t rdf.Triple) (Commit, error)
	LogCompact() (Commit, error)
}

// Commit is a durability ticket for one journalled mutation: the WAL
// sequence number the record was assigned, and a Wait that blocks until
// the record reaches stable storage per the journal's sync policy (for
// group commit: until the batch containing it is written and fsynced).
// A nil Wait means the record is already durable (the legacy
// synchronous append path, and test journals).
//
// A non-nil Wait error means the record — and everything batched behind
// it — did NOT become durable even though the in-memory mutation is
// already applied. The journal latches itself broken in that case
// (every later write is vetoed until a restart re-truncates the log),
// precisely because the memory/log divergence cannot be healed online:
// a client retrying the "failed" write would be deduplicated against
// the applied state and never re-journalled, silently losing it.
type Commit struct {
	Seq  uint64
	Wait func() error
}

// Await waits for durability; nil-Wait tickets are already durable.
func (c Commit) Await() error {
	if c.Wait == nil {
		return nil
	}
	return c.Wait()
}

// Store is the triple store. Reads are safe concurrently; writes take the
// exclusive lock.
type Store struct {
	mu   sync.RWMutex
	dict *rdf.Dictionary
	// The three dictionary-encoded columns. Row i holds triple i; deleted
	// rows are tombstoned with 0 and compacted on Snapshot.
	s, p, o []uint64
	// Component indexes: term id -> row positions.
	byS, byP, byO map[uint64][]int
	// triple set for duplicate suppression: key = packed spo.
	present map[[3]uint64]int
	deleted int
	// Spatial side: geometry cache and R-tree over spatial literal ids.
	// The tree is built lazily: ingest only records geometries and marks
	// the tree stale, and the first spatial lookup STR-bulk-loads it —
	// pure ingest workloads (the Figure 1 pipeline) never pay for
	// incremental quadratic-split inserts.
	geoms        map[uint64]strdf.SpatialValue
	spatial      *rtree.Tree
	spatialStale bool
	// postArena is the slab fresh posting lists are carved from, so a
	// bulk load of mostly-new terms does not allocate per term.
	postArena []int
	// useSpatialIndex can be disabled for the A1 ablation.
	useSpatialIndex bool
	// version counts successful mutations; readers (e.g. the endpoint's
	// result cache) use it to detect staleness cheaply.
	version uint64
	// appliedSeq is the WAL sequence number of the newest durable record
	// whose mutation is visible in the store — the replication watermark.
	// It moves after the mutation applies (never before), is seeded by
	// persist recovery, and stays 0 on purely in-memory stores. Unlike
	// version it is comparable ACROSS processes: a primary and a replica
	// at the same appliedSeq hold identical logical contents.
	appliedSeq uint64
	// snap caches the immutable read view handed to the vectorized
	// executor; it is rebuilt lazily when version moves past it.
	snap *Snapshot
	// lazyIdx is set by RestoreColumns: the component posting lists and
	// the present map have not been built yet and must be materialised
	// (ensureIdx) before the first mutation or index-driven read.
	lazyIdx bool
	// packed, set by RestorePacked, means the store's state lives ONLY
	// in a mapped packed snapshot: the dictionary is empty and the
	// columns are nil. Reads are answered in place through the cached
	// mapped Snapshot (snap); the first mutation — or any path that
	// needs the heap representation — materialises via
	// materializeLocked, which decodes the file into the fields above
	// and clears packed. The mapping itself stays alive for the
	// snapshot's lifetime.
	packed *packView
	// journal, when set, is notified ahead of every mutation (see
	// Journal). journalErr latches the newest veto for diagnostics;
	// journalVetoes counts them so callers can detect that a specific
	// operation was vetoed (the error value may repeat).
	journal       Journal
	journalErr    error
	journalVetoes uint64
	// logScratch is the single-triple batch handed to LogAdd from Add so
	// the hot path does not allocate per insert.
	logScratch [1]rdf.Triple
}

// NewStore returns an empty store with the spatial index enabled.
func NewStore() *Store {
	// Index maps are presized for a small catalogue so the first few
	// thousand inserts do not spend their time rehashing.
	return &Store{
		dict:            rdf.NewDictionary(),
		byS:             make(map[uint64][]int, 256),
		byP:             make(map[uint64][]int, 32),
		byO:             make(map[uint64][]int, 256),
		present:         make(map[[3]uint64]int, 512),
		geoms:           make(map[uint64]strdf.SpatialValue, 64),
		spatial:         rtree.NewTree(0),
		useSpatialIndex: true,
	}
}

// newPosting carves a fresh single-row posting list from the shared
// arena; lists that outgrow the carved capacity migrate to ordinary
// append growth.
func (st *Store) newPosting(row int) []int {
	const chunk = 4
	if len(st.postArena)+chunk > cap(st.postArena) {
		st.postArena = make([]int, 0, 8192)
	}
	n := len(st.postArena)
	p := st.postArena[n : n : n+chunk]
	st.postArena = st.postArena[:n+chunk]
	return append(p, row)
}

// appendPosting extends a posting list, routing new lists to the arena.
func (st *Store) appendPosting(rows []int, row int) []int {
	if rows == nil {
		return st.newPosting(row)
	}
	return append(rows, row)
}

// materializeLocked decodes a packed store's mapped state into the
// heap representation (columns, dictionary, geometries) and leaves the
// secondary indexes deferred behind lazyIdx; callers hold the write
// lock. The store version does NOT move: materialisation changes the
// representation, not the logical contents, so the cached mapped
// snapshot stays valid and keeps serving readers until a real mutation
// invalidates it. A decode failure here is unreachable for a file that
// passed Open's full verification, so it panics rather than threading
// an error through every mutation path.
func (st *Store) materializeLocked() {
	if st.packed == nil {
		return
	}
	pv := st.packed
	st.packed = nil
	if err := pv.materializeInto(st); err != nil {
		panic(fmt.Sprintf("strabon: materialising packed snapshot: %v", err))
	}
}

// ensureMaterialized is materializeLocked for read paths that need the
// heap representation (lock not held): double-checked read-to-write
// upgrade, same shape as ensureIdx.
func (st *Store) ensureMaterialized() {
	st.mu.RLock()
	mapped := st.packed != nil
	st.mu.RUnlock()
	if !mapped {
		return
	}
	st.mu.Lock()
	st.materializeLocked()
	st.mu.Unlock()
}

// buildIndexesLocked materialises the deferred secondary structures of
// a RestoreColumns store; callers hold the write lock.
func (st *Store) buildIndexesLocked() {
	st.materializeLocked()
	if !st.lazyIdx {
		return
	}
	st.lazyIdx = false
	n := len(st.s)
	st.present = make(map[[3]uint64]int, n)
	st.byS = make(map[uint64][]int, n/4+16)
	st.byP = make(map[uint64][]int, 64)
	st.byO = make(map[uint64][]int, n/4+16)
	for row := 0; row < n; row++ {
		if st.s[row] == 0 {
			continue
		}
		st.present[[3]uint64{st.s[row], st.p[row], st.o[row]}] = row
		st.byS[st.s[row]] = st.appendPosting(st.byS[st.s[row]], row)
		st.byP[st.p[row]] = st.appendPosting(st.byP[st.p[row]], row)
		st.byO[st.o[row]] = st.appendPosting(st.byO[st.o[row]], row)
	}
}

// ensureIdx materialises the deferred indexes from a read path (lock
// not held): double-checked read-to-write upgrade, same shape as the
// lazy R-tree build in SpatialCandidates.
func (st *Store) ensureIdx() {
	st.mu.RLock()
	lazy := st.lazyIdx || st.packed != nil
	st.mu.RUnlock()
	if !lazy {
		return
	}
	st.mu.Lock()
	st.buildIndexesLocked()
	st.mu.Unlock()
}

// SetSpatialIndexEnabled toggles R-tree use in spatial lookups (the A1
// ablation baseline scans all spatial literals when disabled).
func (st *Store) SetSpatialIndexEnabled(on bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	// The version bump below invalidates the cached snapshot; a mapped
	// store must decode to heap first or the rebuild would see nothing.
	st.materializeLocked()
	st.useSpatialIndex = on
	// Snapshots capture the setting: drop the cached one and move the
	// version so an in-flight snapshot build cannot reinstall a view with
	// the old setting.
	st.snap = nil
	st.version++
}

// Dict exposes the term dictionary. On a packed store the dictionary
// lives front-coded in the mapped snapshot, so this materialises the
// heap representation first — query paths should go through the
// Snapshot's Lookup/DecodeTerm accessors instead, which work in place.
func (st *Store) Dict() *rdf.Dictionary {
	st.ensureMaterialized()
	return st.dict
}

// Len reports the number of live triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.packed != nil {
		return st.packed.nRows()
	}
	return len(st.s) - st.deleted
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new. With a journal attached the mutation is enqueued and
// applied under the write lock, but the durability wait happens after
// the lock is released (see Journal), so concurrent writers share group
// commits instead of serialising their fsyncs.
func (st *Store) Add(t rdf.Triple) bool {
	locked := true
	st.mu.Lock()
	defer func() {
		if locked {
			st.mu.Unlock()
		}
	}()
	st.buildIndexesLocked()
	ok, c := st.addLocked(t)
	if !ok {
		return false
	}
	locked = false
	st.mu.Unlock()
	return st.finishCommit(c)
}

// addLocked is Add's body; callers hold the write lock. Batch ingest
// (AddAll, LoadNTriples) takes the lock once per batch instead of once per
// triple. The returned Commit must be awaited (finishCommit) once the
// lock is released; a false return means nothing changed and there is
// nothing to await.
func (st *Store) addLocked(t rdf.Triple) (bool, Commit) {
	key, isNew := st.stageAdd(t)
	if !isNew {
		return false, Commit{}
	}
	var c Commit
	if st.journal != nil {
		st.logScratch[0] = t
		var err error
		if c, err = st.journal.LogAdd(st.logScratch[:]); err != nil {
			st.journalErr = err
			st.journalVetoes++
			return false, Commit{}
		}
	}
	st.applyAdd(t, key)
	return true, c
}

// finishCommit awaits a mutation's durability ticket; callers must NOT
// hold the store lock (the whole point is that the fsync wait happens
// outside it). On success the applied-seq watermark advances to the
// ticket's sequence number. On failure the mutation is already applied
// in memory but was never made durable: the journal has latched itself
// broken (no later write can succeed either), so this is recorded as a
// veto and reported as failure — the divergence ends at the next
// restart, whose recovery replays only what the log actually holds.
func (st *Store) finishCommit(c Commit) bool {
	if err := c.Await(); err != nil {
		st.mu.Lock()
		st.journalErr = err
		st.journalVetoes++
		st.mu.Unlock()
		return false
	}
	if c.Seq != 0 {
		st.SetAppliedSeq(c.Seq)
	}
	return true
}

// stageAdd encodes a triple's terms and reports whether it is new.
// Encoding may grow the dictionary even for triples that are then
// rejected as duplicates or vetoed by the journal — that is harmless:
// dictionary ids only become observable through stored triples, and
// journal replay re-encodes the same new triples in the same order.
func (st *Store) stageAdd(t rdf.Triple) (key [3]uint64, isNew bool) {
	key = [3]uint64{st.dict.Encode(t.S), st.dict.Encode(t.P), st.dict.Encode(t.O)}
	_, dup := st.present[key]
	return key, !dup
}

// applyAdd installs a staged triple; callers hold the write lock and have
// already journalled it.
func (st *Store) applyAdd(t rdf.Triple, key [3]uint64) {
	sID, pID, oID := key[0], key[1], key[2]
	st.version++
	row := len(st.s)
	st.s = append(st.s, sID)
	st.p = append(st.p, pID)
	st.o = append(st.o, oID)
	st.present[key] = row
	st.byS[sID] = st.appendPosting(st.byS[sID], row)
	st.byP[pID] = st.appendPosting(st.byP[pID], row)
	st.byO[oID] = st.appendPosting(st.byO[oID], row)
	if t.O.IsSpatial() {
		if _, cached := st.geoms[oID]; !cached {
			if v, err := strdf.ParseSpatial(t.O); err == nil {
				if w, err := v.ToWGS84(); err == nil {
					v = w
				}
				st.geoms[oID] = v
				st.spatialStale = true
			}
		}
	}
}

// rebuildSpatialLocked STR-bulk-loads the R-tree from the geometry
// cache; callers hold the write lock.
func (st *Store) rebuildSpatialLocked() {
	items := make([]rtree.Item, 0, len(st.geoms))
	for id, v := range st.geoms {
		items = append(items, rtree.Item{Box: v.Geom.Envelope(), ID: id})
	}
	st.spatial = rtree.BulkLoad(items, 0)
	st.spatialStale = false
}

// AddAll inserts a batch of triples under one write lock and reports how
// many were new. With a journal attached the whole batch becomes one WAL
// record: the new triples are staged and deduplicated first, logged
// together, and only then applied, so a crash can never leave a batch
// half-durable.
func (st *Store) AddAll(triples []rdf.Triple) int {
	locked := true
	st.mu.Lock()
	defer func() {
		if locked {
			st.mu.Unlock()
		}
	}()
	st.buildIndexesLocked()
	if st.journal == nil {
		n := 0
		for _, t := range triples {
			if ok, _ := st.addLocked(t); ok {
				n++
			}
		}
		return n
	}
	fresh := make([]rdf.Triple, 0, len(triples))
	keys := make([][3]uint64, 0, len(triples))
	staged := make(map[[3]uint64]struct{}, len(triples))
	for _, t := range triples {
		key, isNew := st.stageAdd(t)
		if !isNew {
			continue
		}
		if _, dup := staged[key]; dup {
			continue
		}
		staged[key] = struct{}{}
		fresh = append(fresh, t)
		keys = append(keys, key)
	}
	if len(fresh) == 0 {
		return 0
	}
	c, err := st.journal.LogAdd(fresh)
	if err != nil {
		st.journalErr = err
		st.journalVetoes++
		return 0
	}
	for i, t := range fresh {
		st.applyAdd(t, keys[i])
	}
	locked = false
	st.mu.Unlock()
	if !st.finishCommit(c) {
		return 0
	}
	return len(fresh)
}

// SetJournal attaches (or with nil detaches) the write-ahead journal.
// Attach before the store is shared: the hook fires on every subsequent
// mutation, under the write lock.
func (st *Store) SetJournal(j Journal) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.journal = j
	st.journalErr = nil
}

// JournalErr reports the first journal veto since the journal was
// attached (nil when every mutation was logged successfully). A non-nil
// value means writes are being rejected to preserve the WAL-before-state
// invariant; operators surface it via /stats.
func (st *Store) JournalErr() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.journalErr
}

// JournalVetoes counts journal-vetoed mutations since the journal was
// attached. Comparing the counter across an operation detects whether
// that specific operation was vetoed, which the error value alone
// cannot (it may repeat).
func (st *Store) JournalVetoes() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.journalVetoes
}

// Remove deletes a triple; it reports whether it was present.
func (st *Store) Remove(t rdf.Triple) bool {
	st.ensureMaterialized() // the lookups below need the heap dictionary
	sID, ok := st.dict.Lookup(t.S)
	if !ok {
		return false
	}
	pID, ok := st.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oID, ok := st.dict.Lookup(t.O)
	if !ok {
		return false
	}
	locked := true
	st.mu.Lock()
	defer func() {
		if locked {
			st.mu.Unlock()
		}
	}()
	st.buildIndexesLocked()
	key := [3]uint64{sID, pID, oID}
	row, ok := st.present[key]
	if !ok {
		return false
	}
	var c Commit
	if st.journal != nil {
		var err error
		if c, err = st.journal.LogRemove(t); err != nil {
			st.journalErr = err
			st.journalVetoes++
			return false
		}
	}
	delete(st.present, key)
	st.version++
	st.s[row], st.p[row], st.o[row] = 0, 0, 0
	st.byS[sID] = removePos(st.byS[sID], row)
	st.byP[pID] = removePos(st.byP[pID], row)
	st.byO[oID] = removePos(st.byO[oID], row)
	st.deleted++
	locked = false
	st.mu.Unlock()
	return st.finishCommit(c)
}

// removePos deletes row from a posting list. Posting lists are always
// sorted ascending (rows are appended in insertion order and Compact
// renumbers ascending), so the position is found by binary search.
func removePos(rows []int, row int) []int {
	i := sort.SearchInts(rows, row)
	if i >= len(rows) || rows[i] != row {
		return rows
	}
	return append(rows[:i], rows[i+1:]...)
}

// TriplePattern matches triples; zero IDs are wildcards.
type TriplePattern struct {
	S, P, O uint64
}

// MatchIDs returns the row positions matching the pattern, using the most
// selective available component index.
func (st *Store) MatchIDs(pat TriplePattern) []int {
	st.ensureIdx()
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.matchLocked(pat)
}

func (st *Store) matchLocked(pat TriplePattern) []int {
	// Pick the smallest index among the bound components.
	var candidate []int
	candSet := false
	consider := func(idx map[uint64][]int, id uint64) {
		if id == 0 {
			return
		}
		rows := idx[id]
		if !candSet || len(rows) < len(candidate) {
			candidate = rows
			candSet = true
		}
	}
	consider(st.byS, pat.S)
	consider(st.byP, pat.P)
	consider(st.byO, pat.O)
	if !candSet {
		// Full scan.
		out := make([]int, 0, len(st.s)-st.deleted)
		for row := range st.s {
			if st.s[row] != 0 {
				out = append(out, row)
			}
		}
		return out
	}
	var out []int
	for _, row := range candidate {
		if pat.S != 0 && st.s[row] != pat.S {
			continue
		}
		if pat.P != 0 && st.p[row] != pat.P {
			continue
		}
		if pat.O != 0 && st.o[row] != pat.O {
			continue
		}
		out = append(out, row)
	}
	return out
}

// Row returns the (s, p, o) ids of row.
func (st *Store) Row(row int) (uint64, uint64, uint64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.packed != nil {
		return st.packed.row(int32(row))
	}
	return st.s[row], st.p[row], st.o[row]
}

// Cardinality estimates the number of matches for a pattern without
// materialising them — the optimizer's selectivity source.
func (st *Store) Cardinality(pat TriplePattern) int {
	st.mu.RLock()
	if st.packed != nil {
		defer st.mu.RUnlock()
		return st.packed.cardinality(pat)
	}
	st.mu.RUnlock()
	st.ensureIdx()
	st.mu.RLock()
	defer st.mu.RUnlock()
	est := len(st.s) - st.deleted
	if pat.S != 0 {
		if n := len(st.byS[pat.S]); n < est {
			est = n
		}
	}
	if pat.P != 0 {
		if n := len(st.byP[pat.P]); n < est {
			est = n
		}
	}
	if pat.O != 0 {
		if n := len(st.byO[pat.O]); n < est {
			est = n
		}
	}
	return est
}

// Version reports a counter that increases on every successful mutation
// (Add, Remove, Compact, index toggles). Two equal Version observations bracket an interval in
// which the store's logical contents did not change, which is what the
// stSPARQL endpoint's result cache keys on.
func (st *Store) Version() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version
}

// AppliedSeq reports the WAL sequence number of the newest record whose
// mutation is visible in the store — the replication watermark. It is 0
// on stores without durability. Because it moves only after a mutation
// is installed, AppliedSeq() >= N guarantees the effects of record N are
// readable; and because the counter is the PRIMARY's sequence numbering,
// it is directly comparable between a primary and its replicas (unlike
// Version, whose increments depend on local history — e.g. a replayed
// Compact that is a no-op on an already-compacted snapshot restore).
func (st *Store) AppliedSeq() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.appliedSeq
}

// SetAppliedSeq advances the applied-seq watermark; persist recovery and
// replica replay call it after installing state up to seq. Regressions
// are ignored so the watermark stays monotone.
func (st *Store) SetAppliedSeq(seq uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq > st.appliedSeq {
		st.appliedSeq = seq
	}
}

// Geometry returns the cached WGS84 geometry for a spatial literal id.
func (st *Store) Geometry(id uint64) (strdf.SpatialValue, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.packed != nil {
		return st.packed.geometry(id)
	}
	v, ok := st.geoms[id]
	return v, ok
}

// SpatialCandidates returns the ids of spatial literals whose envelope
// intersects the query box — via the R-tree when enabled, else by scanning
// every cached geometry (the ablation baseline).
func (st *Store) SpatialCandidates(box geo.Envelope) []uint64 {
	st.mu.RLock()
	if st.packed != nil {
		defer st.mu.RUnlock()
		return st.packed.spatialCandidates(box)
	}
	if st.useSpatialIndex && st.spatialStale {
		// Upgrade to the write lock and build the tree; double-check
		// staleness, another reader may have won the race.
		st.mu.RUnlock()
		st.mu.Lock()
		if st.spatialStale {
			st.rebuildSpatialLocked()
		}
		st.mu.Unlock()
		st.mu.RLock()
	}
	defer st.mu.RUnlock()
	if st.useSpatialIndex {
		return st.spatial.Search(box, nil)
	}
	var out []uint64
	for id, v := range st.geoms {
		if v.Geom.Envelope().Intersects(box) {
			out = append(out, id)
		}
	}
	return out
}

// Triples materialises all live triples (decoded), in row order.
func (st *Store) Triples() []rdf.Triple {
	st.ensureMaterialized()
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.triplesLocked()
}

func (st *Store) triplesLocked() []rdf.Triple {
	out := make([]rdf.Triple, 0, len(st.s)-st.deleted)
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		s, _ := st.dict.Decode(st.s[row])
		p, _ := st.dict.Decode(st.p[row])
		o, _ := st.dict.Decode(st.o[row])
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	return out
}

// Stats summarises the store for diagnostics and the optimizer.
type Stats struct {
	Triples         int
	Terms           int
	SpatialLiterals int
	Predicates      int
}

// Stats returns a snapshot of store statistics. It deliberately does
// not materialise a restored store's deferred indexes: the predicate
// count is derived from a linear scan instead, so the startup banner
// and /stats polls don't defeat the lazy-restore fast boot.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.packed != nil {
		s := st.packed.stats
		return Stats{
			Triples:         s.Triples,
			Terms:           st.packed.nTerms(),
			SpatialLiterals: s.Geoms,
			Predicates:      s.DistinctP,
		}
	}
	nPreds := 0
	if st.lazyIdx {
		seen := make(map[uint64]struct{}, 64)
		for _, id := range st.p {
			if id != 0 {
				seen[id] = struct{}{}
			}
		}
		nPreds = len(seen)
	} else {
		for _, rows := range st.byP {
			if len(rows) > 0 {
				nPreds++
			}
		}
	}
	return Stats{
		Triples:         len(st.s) - st.deleted,
		Terms:           st.dict.Len(),
		SpatialLiterals: len(st.geoms),
		Predicates:      nPreds,
	}
}

// AsTable materialises the live triples as a three-column relational
// table of dictionary ids — the MonetDB layout the paper's Strabon sits
// on, usable directly by the SciQL engine for mixed relational/RDF work.
func (st *Store) AsTable() *column.Table {
	st.ensureMaterialized()
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := len(st.s) - st.deleted
	s := make([]int64, 0, n)
	p := make([]int64, 0, n)
	o := make([]int64, 0, n)
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		s = append(s, int64(st.s[row]))
		p = append(p, int64(st.p[row]))
		o = append(o, int64(st.o[row]))
	}
	t := column.NewTable("triples",
		column.Field{Name: "s", Typ: column.Int64},
		column.Field{Name: "p", Typ: column.Int64},
		column.Field{Name: "o", Typ: column.Int64})
	t.Cols[0] = column.NewInt64(s)
	t.Cols[1] = column.NewInt64(p)
	t.Cols[2] = column.NewInt64(o)
	return t
}

// Compact rewrites the triple columns without tombstones and rebuilds the
// component indexes. Long-running stores call this after heavy DELETE
// workloads (the refinement rewrites every coastal hotspot's geometry).
// It reports the number of tombstones reclaimed.
func (st *Store) Compact() int {
	locked := true
	st.mu.Lock()
	defer func() {
		if locked {
			st.mu.Unlock()
		}
	}()
	if st.deleted == 0 {
		return 0
	}
	var c Commit
	if st.journal != nil {
		var err error
		if c, err = st.journal.LogCompact(); err != nil {
			st.journalErr = err
			st.journalVetoes++
			return 0
		}
	}
	// Row numbering and the spatial side change; cached snapshots must not
	// outlive them, and in-flight snapshot builds must not reinstall a
	// pre-compaction view. (A no-op compaction above changes nothing, so
	// it leaves the cache and version alone.)
	st.snap = nil
	st.version++
	reclaimed := st.deleted
	n := len(st.s) - st.deleted
	s := make([]uint64, 0, n)
	p := make([]uint64, 0, n)
	o := make([]uint64, 0, n)
	byS := make(map[uint64][]int, len(st.byS))
	byP := make(map[uint64][]int, len(st.byP))
	byO := make(map[uint64][]int, len(st.byO))
	present := make(map[[3]uint64]int, n)
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		newRow := len(s)
		s = append(s, st.s[row])
		p = append(p, st.p[row])
		o = append(o, st.o[row])
		byS[st.s[row]] = append(byS[st.s[row]], newRow)
		byP[st.p[row]] = append(byP[st.p[row]], newRow)
		byO[st.o[row]] = append(byO[st.o[row]], newRow)
		present[[3]uint64{st.s[row], st.p[row], st.o[row]}] = newRow
	}
	st.s, st.p, st.o = s, p, o
	st.byS, st.byP, st.byO = byS, byP, byO
	st.present = present
	st.deleted = 0
	st.pruneSpatialLocked()
	locked = false
	st.mu.Unlock()
	if !st.finishCommit(c) {
		return 0
	}
	return reclaimed
}

// pruneSpatialLocked drops geometries whose literal id no longer appears in
// any live triple's object position and rebuilds the R-tree over the
// survivors. Remove tombstones rows but leaves geoms/R-tree entries behind;
// Compact is where they are reclaimed.
func (st *Store) pruneSpatialLocked() {
	stale := false
	for id := range st.geoms {
		if len(st.byO[id]) == 0 {
			delete(st.geoms, id)
			stale = true
		}
	}
	if !stale {
		return
	}
	st.rebuildSpatialLocked()
}

// Persistence ----------------------------------------------------------------

const (
	dictFile    = "dictionary.bin"
	triplesFile = "triples.nt"
)

// Save writes the store to a directory: the dictionary snapshot plus the
// triples in N-Triples (robust, diffable, and the dictionary re-encodes on
// load, matching ids by insertion order).
//
// Save is crash-safe and version-consistent. The dictionary and the
// triple set are captured under one read-lock acquisition, so a save
// racing an UPDATE can never pair a dictionary from one version with
// triples from another. Each file is then written via the
// write-temp/fsync/rename sequence (fsx.WriteFileAtomic), so a crash
// mid-save leaves the previous on-disk store intact and loadable — never
// a truncated file. The dictionary is renamed into place first: if the
// process dies between the two renames, the directory holds the new
// dictionary (a superset, ids unchanged) with the old triples, which
// loads as exactly the pre-save state.
func (st *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st.ensureMaterialized()
	// Capture both halves under a single lock acquisition. Serialisation
	// to memory is cheap relative to disk I/O and keeps the lock hold
	// time independent of storage latency.
	st.mu.RLock()
	var dictBuf bytes.Buffer
	_, err := st.dict.WriteTo(&dictBuf)
	var triples []rdf.Triple
	if err == nil {
		triples = st.triplesLocked()
	}
	st.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := fsx.WriteFileAtomic(filepath.Join(dir, dictFile), func(w io.Writer) error {
		_, err := w.Write(dictBuf.Bytes())
		return err
	}); err != nil {
		return err
	}
	return fsx.WriteFileAtomic(filepath.Join(dir, triplesFile), func(w io.Writer) error {
		return rdf.WriteNTriples(w, triples)
	})
}

// Load reads a store saved by Save.
func Load(dir string) (*Store, error) {
	st := NewStore()
	df, err := os.Open(filepath.Join(dir, dictFile))
	if err != nil {
		return nil, err
	}
	dict, err := rdf.ReadDictionary(df)
	df.Close()
	if err != nil {
		return nil, err
	}
	st.dict = dict
	tf, err := os.Open(filepath.Join(dir, triplesFile))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	triples, err := rdf.ParseNTriples(tf)
	if err != nil {
		return nil, err
	}
	st.AddAll(triples)
	return st, nil
}

// LoadNTriples bulk-loads an N-Triples stream into the store.
func (st *Store) LoadNTriples(r io.Reader) (int, error) {
	triples, err := rdf.ParseNTriples(r)
	if err != nil {
		return 0, err
	}
	// Chunked AddAll so that a journalled bulk load produces bounded WAL
	// records (the log enforces a per-record size cap) instead of one
	// giant record per file. A journal veto aborts the load with the
	// underlying error rather than silently dropping the rest.
	const chunk = 65536
	n := 0
	for off := 0; off < len(triples); off += chunk {
		end := off + chunk
		if end > len(triples) {
			end = len(triples)
		}
		vetoes := st.JournalVetoes()
		n += st.AddAll(triples[off:end])
		if st.JournalVetoes() != vetoes {
			return n, fmt.Errorf("strabon: bulk load aborted: %w", st.JournalErr())
		}
	}
	return n, nil
}

// ErrNotFound is returned by lookups of unknown terms.
var ErrNotFound = fmt.Errorf("strabon: term not found")

// LookupID returns the dictionary id for a term.
func (st *Store) LookupID(t rdf.Term) (uint64, error) {
	st.mu.RLock()
	if st.packed != nil {
		defer st.mu.RUnlock()
		if id, ok := st.packed.lookup(t); ok {
			return id, nil
		}
		return 0, ErrNotFound
	}
	st.mu.RUnlock()
	id, ok := st.dict.Lookup(t)
	if !ok {
		return 0, ErrNotFound
	}
	return id, nil
}

// StorageMode reports where the store's state currently lives:
// "mapped" while reads are answered in place from a packed snapshot
// file, "heap" once materialised (or for stores built by ingest).
func (st *Store) StorageMode() string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.packed != nil {
		return "mapped"
	}
	return "heap"
}

// ResidentEstimate approximates the heap bytes the store's primary
// state pins: for a mapped store, just the decode caches populated so
// far (the columns, postings and dictionary stay on the mapping); for
// a heap store, the columns plus dictionary estimate. Secondary
// indexes and posting lists are excluded in heap mode — the figure is
// a like-for-like comparison of primary state, not total RSS.
func (st *Store) ResidentEstimate() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.packed != nil {
		return st.packed.cachedHeapBytes()
	}
	return int64(len(st.s))*24 + st.dict.EstimateBytes()
}

// RestoreColumns rebuilds a store directly from a binary snapshot's
// already-encoded state: the dictionary, the three compacted id columns,
// and the ids of the spatial literals that had cached geometries. It is
// the fast deserialisation path used by internal/persist — no N-Triples
// parsing, no re-encoding; only the secondary indexes are rebuilt and
// the listed geometries re-parsed from their dictionary terms. version
// seeds the store's mutation counter so it stays monotone across a
// recovery.
func RestoreColumns(dict *rdf.Dictionary, s, p, o []uint64, geomIDs []uint64, version uint64) (*Store, error) {
	if len(s) != len(p) || len(s) != len(o) {
		return nil, fmt.Errorf("strabon: column length mismatch: s=%d p=%d o=%d", len(s), len(p), len(o))
	}
	st := NewStore()
	st.dict = dict
	st.version = version
	n := len(s)
	maxID := uint64(dict.Len())
	st.s, st.p, st.o = s, p, o
	// Validate the columns up front (cheap linear scan), but defer the
	// expensive secondary structures — the component posting lists and
	// the duplicate-suppression map — until something actually needs
	// them (lazyIdx). A restart that only serves vectorized read
	// queries goes straight from snapshot bytes to answering: the
	// executor's read view (Snapshot) builds its own indexes, so the
	// store-level ones matter only to mutations and the legacy
	// evaluator. This mirrors the store's lazily built R-tree and is
	// what makes the binary restart path so much faster than the
	// N-Triples one.
	for row := 0; row < n; row++ {
		if s[row] == 0 || s[row] > maxID || p[row] == 0 || p[row] > maxID || o[row] == 0 || o[row] > maxID {
			return nil, fmt.Errorf("strabon: row %d references id outside dictionary (max %d)", row, maxID)
		}
	}
	st.lazyIdx = true
	for _, id := range geomIDs {
		t, ok := dict.Decode(id)
		if !ok {
			return nil, fmt.Errorf("strabon: geometry id %d not in dictionary", id)
		}
		v, err := strdf.ParseSpatial(t)
		if err != nil {
			// The snapshot only lists ids whose ingest-time parse
			// succeeded; a failure here means the snapshot and dictionary
			// disagree.
			return nil, fmt.Errorf("strabon: geometry id %d: %w", id, err)
		}
		if w, err := v.ToWGS84(); err == nil {
			v = w
		}
		st.geoms[id] = v
	}
	st.spatialStale = len(st.geoms) > 0
	return st, nil
}
