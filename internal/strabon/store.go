// Package strabon implements the Strabon geospatial RDF store of the
// paper: triples dictionary-encoded into three parallel integer columns
// (the MonetDB layout under the real Strabon), secondary hash indexes on
// each component, per-predicate statistics for the stSPARQL optimizer, and
// an R-tree over the spatial literals for spatial filter pushdown.
package strabon

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/column"
	"repro/internal/geo"
	"repro/internal/rdf"
	"repro/internal/rtree"
	"repro/internal/strdf"
)

// Store is the triple store. Reads are safe concurrently; writes take the
// exclusive lock.
type Store struct {
	mu   sync.RWMutex
	dict *rdf.Dictionary
	// The three dictionary-encoded columns. Row i holds triple i; deleted
	// rows are tombstoned with 0 and compacted on Snapshot.
	s, p, o []uint64
	// Component indexes: term id -> row positions.
	byS, byP, byO map[uint64][]int
	// triple set for duplicate suppression: key = packed spo.
	present map[[3]uint64]int
	deleted int
	// Spatial side: geometry cache and R-tree over spatial literal ids.
	// The tree is built lazily: ingest only records geometries and marks
	// the tree stale, and the first spatial lookup STR-bulk-loads it —
	// pure ingest workloads (the Figure 1 pipeline) never pay for
	// incremental quadratic-split inserts.
	geoms        map[uint64]strdf.SpatialValue
	spatial      *rtree.Tree
	spatialStale bool
	// postArena is the slab fresh posting lists are carved from, so a
	// bulk load of mostly-new terms does not allocate per term.
	postArena []int
	// useSpatialIndex can be disabled for the A1 ablation.
	useSpatialIndex bool
	// version counts successful mutations; readers (e.g. the endpoint's
	// result cache) use it to detect staleness cheaply.
	version uint64
	// snap caches the immutable read view handed to the vectorized
	// executor; it is rebuilt lazily when version moves past it.
	snap *Snapshot
}

// NewStore returns an empty store with the spatial index enabled.
func NewStore() *Store {
	// Index maps are presized for a small catalogue so the first few
	// thousand inserts do not spend their time rehashing.
	return &Store{
		dict:            rdf.NewDictionary(),
		byS:             make(map[uint64][]int, 256),
		byP:             make(map[uint64][]int, 32),
		byO:             make(map[uint64][]int, 256),
		present:         make(map[[3]uint64]int, 512),
		geoms:           make(map[uint64]strdf.SpatialValue, 64),
		spatial:         rtree.NewTree(0),
		useSpatialIndex: true,
	}
}

// newPosting carves a fresh single-row posting list from the shared
// arena; lists that outgrow the carved capacity migrate to ordinary
// append growth.
func (st *Store) newPosting(row int) []int {
	const chunk = 4
	if len(st.postArena)+chunk > cap(st.postArena) {
		st.postArena = make([]int, 0, 8192)
	}
	n := len(st.postArena)
	p := st.postArena[n : n : n+chunk]
	st.postArena = st.postArena[:n+chunk]
	return append(p, row)
}

// appendPosting extends a posting list, routing new lists to the arena.
func (st *Store) appendPosting(rows []int, row int) []int {
	if rows == nil {
		return st.newPosting(row)
	}
	return append(rows, row)
}

// SetSpatialIndexEnabled toggles R-tree use in spatial lookups (the A1
// ablation baseline scans all spatial literals when disabled).
func (st *Store) SetSpatialIndexEnabled(on bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.useSpatialIndex = on
	// Snapshots capture the setting: drop the cached one and move the
	// version so an in-flight snapshot build cannot reinstall a view with
	// the old setting.
	st.snap = nil
	st.version++
}

// Dict exposes the term dictionary.
func (st *Store) Dict() *rdf.Dictionary { return st.dict }

// Len reports the number of live triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.s) - st.deleted
}

// Add inserts a triple; duplicates are ignored. It reports whether the
// triple was new.
func (st *Store) Add(t rdf.Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addLocked(t)
}

// addLocked is Add's body; callers hold the write lock. Batch ingest
// (AddAll, LoadNTriples) takes the lock once per batch instead of once per
// triple.
func (st *Store) addLocked(t rdf.Triple) bool {
	sID := st.dict.Encode(t.S)
	pID := st.dict.Encode(t.P)
	oID := st.dict.Encode(t.O)
	key := [3]uint64{sID, pID, oID}
	if _, ok := st.present[key]; ok {
		return false
	}
	st.version++
	row := len(st.s)
	st.s = append(st.s, sID)
	st.p = append(st.p, pID)
	st.o = append(st.o, oID)
	st.present[key] = row
	st.byS[sID] = st.appendPosting(st.byS[sID], row)
	st.byP[pID] = st.appendPosting(st.byP[pID], row)
	st.byO[oID] = st.appendPosting(st.byO[oID], row)
	if t.O.IsSpatial() {
		if _, cached := st.geoms[oID]; !cached {
			if v, err := strdf.ParseSpatial(t.O); err == nil {
				if w, err := v.ToWGS84(); err == nil {
					v = w
				}
				st.geoms[oID] = v
				st.spatialStale = true
			}
		}
	}
	return true
}

// rebuildSpatialLocked STR-bulk-loads the R-tree from the geometry
// cache; callers hold the write lock.
func (st *Store) rebuildSpatialLocked() {
	items := make([]rtree.Item, 0, len(st.geoms))
	for id, v := range st.geoms {
		items = append(items, rtree.Item{Box: v.Geom.Envelope(), ID: id})
	}
	st.spatial = rtree.BulkLoad(items, 0)
	st.spatialStale = false
}

// AddAll inserts a batch of triples under one write lock and reports how
// many were new.
func (st *Store) AddAll(triples []rdf.Triple) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, t := range triples {
		if st.addLocked(t) {
			n++
		}
	}
	return n
}

// Remove deletes a triple; it reports whether it was present.
func (st *Store) Remove(t rdf.Triple) bool {
	sID, ok := st.dict.Lookup(t.S)
	if !ok {
		return false
	}
	pID, ok := st.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oID, ok := st.dict.Lookup(t.O)
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := [3]uint64{sID, pID, oID}
	row, ok := st.present[key]
	if !ok {
		return false
	}
	delete(st.present, key)
	st.version++
	st.s[row], st.p[row], st.o[row] = 0, 0, 0
	st.byS[sID] = removePos(st.byS[sID], row)
	st.byP[pID] = removePos(st.byP[pID], row)
	st.byO[oID] = removePos(st.byO[oID], row)
	st.deleted++
	return true
}

// removePos deletes row from a posting list. Posting lists are always
// sorted ascending (rows are appended in insertion order and Compact
// renumbers ascending), so the position is found by binary search.
func removePos(rows []int, row int) []int {
	i := sort.SearchInts(rows, row)
	if i >= len(rows) || rows[i] != row {
		return rows
	}
	return append(rows[:i], rows[i+1:]...)
}

// TriplePattern matches triples; zero IDs are wildcards.
type TriplePattern struct {
	S, P, O uint64
}

// MatchIDs returns the row positions matching the pattern, using the most
// selective available component index.
func (st *Store) MatchIDs(pat TriplePattern) []int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.matchLocked(pat)
}

func (st *Store) matchLocked(pat TriplePattern) []int {
	// Pick the smallest index among the bound components.
	var candidate []int
	candSet := false
	consider := func(idx map[uint64][]int, id uint64) {
		if id == 0 {
			return
		}
		rows := idx[id]
		if !candSet || len(rows) < len(candidate) {
			candidate = rows
			candSet = true
		}
	}
	consider(st.byS, pat.S)
	consider(st.byP, pat.P)
	consider(st.byO, pat.O)
	if !candSet {
		// Full scan.
		out := make([]int, 0, len(st.s)-st.deleted)
		for row := range st.s {
			if st.s[row] != 0 {
				out = append(out, row)
			}
		}
		return out
	}
	var out []int
	for _, row := range candidate {
		if pat.S != 0 && st.s[row] != pat.S {
			continue
		}
		if pat.P != 0 && st.p[row] != pat.P {
			continue
		}
		if pat.O != 0 && st.o[row] != pat.O {
			continue
		}
		out = append(out, row)
	}
	return out
}

// Row returns the (s, p, o) ids of row.
func (st *Store) Row(row int) (uint64, uint64, uint64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.s[row], st.p[row], st.o[row]
}

// Cardinality estimates the number of matches for a pattern without
// materialising them — the optimizer's selectivity source.
func (st *Store) Cardinality(pat TriplePattern) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	est := len(st.s) - st.deleted
	if pat.S != 0 {
		if n := len(st.byS[pat.S]); n < est {
			est = n
		}
	}
	if pat.P != 0 {
		if n := len(st.byP[pat.P]); n < est {
			est = n
		}
	}
	if pat.O != 0 {
		if n := len(st.byO[pat.O]); n < est {
			est = n
		}
	}
	return est
}

// Version reports a counter that increases on every successful mutation
// (Add, Remove, Compact, index toggles). Two equal Version observations bracket an interval in
// which the store's logical contents did not change, which is what the
// stSPARQL endpoint's result cache keys on.
func (st *Store) Version() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version
}

// Geometry returns the cached WGS84 geometry for a spatial literal id.
func (st *Store) Geometry(id uint64) (strdf.SpatialValue, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.geoms[id]
	return v, ok
}

// SpatialCandidates returns the ids of spatial literals whose envelope
// intersects the query box — via the R-tree when enabled, else by scanning
// every cached geometry (the ablation baseline).
func (st *Store) SpatialCandidates(box geo.Envelope) []uint64 {
	st.mu.RLock()
	if st.useSpatialIndex && st.spatialStale {
		// Upgrade to the write lock and build the tree; double-check
		// staleness, another reader may have won the race.
		st.mu.RUnlock()
		st.mu.Lock()
		if st.spatialStale {
			st.rebuildSpatialLocked()
		}
		st.mu.Unlock()
		st.mu.RLock()
	}
	defer st.mu.RUnlock()
	if st.useSpatialIndex {
		return st.spatial.Search(box, nil)
	}
	var out []uint64
	for id, v := range st.geoms {
		if v.Geom.Envelope().Intersects(box) {
			out = append(out, id)
		}
	}
	return out
}

// Triples materialises all live triples (decoded), in row order.
func (st *Store) Triples() []rdf.Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]rdf.Triple, 0, len(st.s)-st.deleted)
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		s, _ := st.dict.Decode(st.s[row])
		p, _ := st.dict.Decode(st.p[row])
		o, _ := st.dict.Decode(st.o[row])
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	return out
}

// Stats summarises the store for diagnostics and the optimizer.
type Stats struct {
	Triples         int
	Terms           int
	SpatialLiterals int
	Predicates      int
}

// Stats returns a snapshot of store statistics.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	nPreds := 0
	for _, rows := range st.byP {
		if len(rows) > 0 {
			nPreds++
		}
	}
	return Stats{
		Triples:         len(st.s) - st.deleted,
		Terms:           st.dict.Len(),
		SpatialLiterals: len(st.geoms),
		Predicates:      nPreds,
	}
}

// AsTable materialises the live triples as a three-column relational
// table of dictionary ids — the MonetDB layout the paper's Strabon sits
// on, usable directly by the SciQL engine for mixed relational/RDF work.
func (st *Store) AsTable() *column.Table {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := len(st.s) - st.deleted
	s := make([]int64, 0, n)
	p := make([]int64, 0, n)
	o := make([]int64, 0, n)
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		s = append(s, int64(st.s[row]))
		p = append(p, int64(st.p[row]))
		o = append(o, int64(st.o[row]))
	}
	t := column.NewTable("triples",
		column.Field{Name: "s", Typ: column.Int64},
		column.Field{Name: "p", Typ: column.Int64},
		column.Field{Name: "o", Typ: column.Int64})
	t.Cols[0] = column.NewInt64(s)
	t.Cols[1] = column.NewInt64(p)
	t.Cols[2] = column.NewInt64(o)
	return t
}

// Compact rewrites the triple columns without tombstones and rebuilds the
// component indexes. Long-running stores call this after heavy DELETE
// workloads (the refinement rewrites every coastal hotspot's geometry).
// It reports the number of tombstones reclaimed.
func (st *Store) Compact() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.deleted == 0 {
		return 0
	}
	// Row numbering and the spatial side change; cached snapshots must not
	// outlive them, and in-flight snapshot builds must not reinstall a
	// pre-compaction view. (A no-op compaction above changes nothing, so
	// it leaves the cache and version alone.)
	st.snap = nil
	st.version++
	reclaimed := st.deleted
	n := len(st.s) - st.deleted
	s := make([]uint64, 0, n)
	p := make([]uint64, 0, n)
	o := make([]uint64, 0, n)
	byS := make(map[uint64][]int, len(st.byS))
	byP := make(map[uint64][]int, len(st.byP))
	byO := make(map[uint64][]int, len(st.byO))
	present := make(map[[3]uint64]int, n)
	for row := range st.s {
		if st.s[row] == 0 {
			continue
		}
		newRow := len(s)
		s = append(s, st.s[row])
		p = append(p, st.p[row])
		o = append(o, st.o[row])
		byS[st.s[row]] = append(byS[st.s[row]], newRow)
		byP[st.p[row]] = append(byP[st.p[row]], newRow)
		byO[st.o[row]] = append(byO[st.o[row]], newRow)
		present[[3]uint64{st.s[row], st.p[row], st.o[row]}] = newRow
	}
	st.s, st.p, st.o = s, p, o
	st.byS, st.byP, st.byO = byS, byP, byO
	st.present = present
	st.deleted = 0
	st.pruneSpatialLocked()
	return reclaimed
}

// pruneSpatialLocked drops geometries whose literal id no longer appears in
// any live triple's object position and rebuilds the R-tree over the
// survivors. Remove tombstones rows but leaves geoms/R-tree entries behind;
// Compact is where they are reclaimed.
func (st *Store) pruneSpatialLocked() {
	stale := false
	for id := range st.geoms {
		if len(st.byO[id]) == 0 {
			delete(st.geoms, id)
			stale = true
		}
	}
	if !stale {
		return
	}
	st.rebuildSpatialLocked()
}

// Persistence ----------------------------------------------------------------

const (
	dictFile    = "dictionary.bin"
	triplesFile = "triples.nt"
)

// Save writes the store to a directory: the dictionary snapshot plus the
// triples in N-Triples (robust, diffable, and the dictionary re-encodes on
// load, matching ids by insertion order).
func (st *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	df, err := os.Create(filepath.Join(dir, dictFile))
	if err != nil {
		return err
	}
	if _, err := st.dict.WriteTo(df); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, triplesFile))
	if err != nil {
		return err
	}
	if err := rdf.WriteNTriples(tf, st.Triples()); err != nil {
		tf.Close()
		return err
	}
	return tf.Close()
}

// Load reads a store saved by Save.
func Load(dir string) (*Store, error) {
	st := NewStore()
	df, err := os.Open(filepath.Join(dir, dictFile))
	if err != nil {
		return nil, err
	}
	dict, err := rdf.ReadDictionary(df)
	df.Close()
	if err != nil {
		return nil, err
	}
	st.dict = dict
	tf, err := os.Open(filepath.Join(dir, triplesFile))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	triples, err := rdf.ParseNTriples(tf)
	if err != nil {
		return nil, err
	}
	st.AddAll(triples)
	return st, nil
}

// LoadNTriples bulk-loads an N-Triples stream into the store.
func (st *Store) LoadNTriples(r io.Reader) (int, error) {
	triples, err := rdf.ParseNTriples(r)
	if err != nil {
		return 0, err
	}
	return st.AddAll(triples), nil
}

// ErrNotFound is returned by lookups of unknown terms.
var ErrNotFound = fmt.Errorf("strabon: term not found")

// LookupID returns the dictionary id for a term.
func (st *Store) LookupID(t rdf.Term) (uint64, error) {
	id, ok := st.dict.Lookup(t)
	if !ok {
		return 0, ErrNotFound
	}
	return id, nil
}
