package strabon

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/rdf"
)

func tr(s, p, o string) rdf.Triple {
	return rdf.NewTriple(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o))
}

func TestAddRemoveLen(t *testing.T) {
	st := NewStore()
	if !st.Add(tr("s1", "p1", "o1")) {
		t.Fatal("first add")
	}
	if st.Add(tr("s1", "p1", "o1")) {
		t.Fatal("duplicate add")
	}
	st.Add(tr("s1", "p2", "o2"))
	if st.Len() != 2 {
		t.Fatalf("len = %d", st.Len())
	}
	if !st.Remove(tr("s1", "p1", "o1")) {
		t.Fatal("remove")
	}
	if st.Remove(tr("s1", "p1", "o1")) {
		t.Fatal("double remove")
	}
	if st.Remove(tr("ghost", "p", "o")) {
		t.Fatal("remove unknown")
	}
	if st.Len() != 1 {
		t.Fatalf("len after remove = %d", st.Len())
	}
}

func TestMatchPatterns(t *testing.T) {
	st := NewStore()
	st.Add(tr("a", "type", "Hotspot"))
	st.Add(tr("b", "type", "Hotspot"))
	st.Add(tr("c", "type", "Town"))
	st.Add(tr("a", "conf", "high"))

	id := func(s string) uint64 {
		v, err := st.LookupID(rdf.IRI(s))
		if err != nil {
			t.Fatalf("lookup %s: %v", s, err)
		}
		return v
	}
	// P+O bound.
	rows := st.MatchIDs(TriplePattern{P: id("type"), O: id("Hotspot")})
	if len(rows) != 2 {
		t.Fatalf("type=Hotspot rows = %d", len(rows))
	}
	// S bound.
	rows = st.MatchIDs(TriplePattern{S: id("a")})
	if len(rows) != 2 {
		t.Fatalf("S=a rows = %d", len(rows))
	}
	// All wild.
	rows = st.MatchIDs(TriplePattern{})
	if len(rows) != 4 {
		t.Fatalf("full scan rows = %d", len(rows))
	}
	// Fully bound.
	rows = st.MatchIDs(TriplePattern{S: id("c"), P: id("type"), O: id("Town")})
	if len(rows) != 1 {
		t.Fatalf("fully bound rows = %d", len(rows))
	}
	// No match.
	rows = st.MatchIDs(TriplePattern{S: id("c"), P: id("conf")})
	if len(rows) != 0 {
		t.Fatalf("no-match rows = %d", len(rows))
	}
	// Row decoding.
	s, p, o := st.Row(rows0(t, st, TriplePattern{S: id("a"), P: id("conf")}))
	if s != id("a") || p != id("conf") || o == 0 {
		t.Fatal("Row")
	}
}

func rows0(t *testing.T, st *Store, pat TriplePattern) int {
	t.Helper()
	rows := st.MatchIDs(pat)
	if len(rows) == 0 {
		t.Fatal("expected at least one row")
	}
	return rows[0]
}

func TestMatchAfterRemove(t *testing.T) {
	st := NewStore()
	st.Add(tr("a", "p", "x"))
	st.Add(tr("b", "p", "x"))
	st.Remove(tr("a", "p", "x"))
	pID, _ := st.LookupID(rdf.IRI("p"))
	rows := st.MatchIDs(TriplePattern{P: pID})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Full scan skips tombstones too.
	if got := st.MatchIDs(TriplePattern{}); len(got) != 1 {
		t.Fatalf("scan rows = %d", len(got))
	}
}

func TestCardinality(t *testing.T) {
	st := NewStore()
	for i := 0; i < 10; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i), "common", "x"))
	}
	st.Add(tr("s0", "rare", "y"))
	common, _ := st.LookupID(rdf.IRI("common"))
	rare, _ := st.LookupID(rdf.IRI("rare"))
	if st.Cardinality(TriplePattern{P: common}) != 10 {
		t.Fatal("common cardinality")
	}
	if st.Cardinality(TriplePattern{P: rare}) != 1 {
		t.Fatal("rare cardinality")
	}
	if st.Cardinality(TriplePattern{}) != 11 {
		t.Fatal("full cardinality")
	}
	s0, _ := st.LookupID(rdf.IRI("s0"))
	// min(byS, byP) bound.
	if got := st.Cardinality(TriplePattern{S: s0, P: common}); got > 2 {
		t.Fatalf("bound cardinality = %d", got)
	}
}

func TestSpatialIndexing(t *testing.T) {
	st := NewStore()
	subj := rdf.IRI("http://ex/hotspot1")
	hasGeom := rdf.IRI("http://ex/hasGeometry")
	st.Add(rdf.NewTriple(subj, hasGeom, rdf.WKTLiteral("POINT (23.5 37.9)", 4326)))
	st.Add(rdf.NewTriple(rdf.IRI("http://ex/zone"), hasGeom,
		rdf.WKTLiteral("POLYGON ((24 38, 25 38, 25 39, 24 39, 24 38))", 4326)))
	// Non-spatial triple for contrast.
	st.Add(rdf.NewTriple(subj, rdf.IRI("http://ex/conf"), rdf.DoubleLiteral(0.9)))

	if st.Stats().SpatialLiterals != 2 {
		t.Fatalf("spatial literals = %d", st.Stats().SpatialLiterals)
	}
	// Box around the point finds only it.
	ids := st.SpatialCandidates(geo.Envelope{MinX: 23, MinY: 37, MaxX: 23.9, MaxY: 37.95})
	if len(ids) != 1 {
		t.Fatalf("candidates = %d", len(ids))
	}
	v, ok := st.Geometry(ids[0])
	if !ok {
		t.Fatal("geometry cache")
	}
	if v.Geom.(geo.Point).X != 23.5 {
		t.Fatalf("geom = %v", v.Geom)
	}
	// Disabled index gives the same answer via scan.
	st.SetSpatialIndexEnabled(false)
	scan := st.SpatialCandidates(geo.Envelope{MinX: 23, MinY: 37, MaxX: 23.9, MaxY: 37.95})
	if len(scan) != 1 || scan[0] != ids[0] {
		t.Fatalf("scan candidates = %v", scan)
	}
}

func TestSpatialReprojection(t *testing.T) {
	st := NewStore()
	// A Web Mercator literal is indexed in WGS84.
	merc, err := geo.Transform(geo.NewPoint(23.5, 37.9), geo.SRIDWGS84, geo.SRIDWebMercator)
	if err != nil {
		t.Fatal(err)
	}
	lit := rdf.WKTLiteral(merc.WKT(), int(geo.SRIDWebMercator))
	st.Add(rdf.NewTriple(rdf.IRI("x"), rdf.IRI("geom"), lit))
	ids := st.SpatialCandidates(geo.Envelope{MinX: 23, MinY: 37, MaxX: 23.9, MaxY: 37.95})
	if len(ids) != 1 {
		t.Fatalf("reprojected candidates = %d", len(ids))
	}
}

func TestTriplesDecode(t *testing.T) {
	st := NewStore()
	in := []rdf.Triple{
		tr("a", "p", "b"),
		rdf.NewTriple(rdf.IRI("a"), rdf.IRI("label"), rdf.LangLiteral("άλφα", "el")),
	}
	st.AddAll(in)
	out := st.Triples()
	if len(out) != 2 {
		t.Fatalf("triples = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("triple %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestPersistence(t *testing.T) {
	st := NewStore()
	st.Add(tr("a", "type", "Hotspot"))
	st.Add(rdf.NewTriple(rdf.IRI("a"), rdf.IRI("geom"), rdf.WKTLiteral("POINT (23 38)", 4326)))
	st.Add(rdf.NewTriple(rdf.IRI("a"), rdf.IRI("conf"), rdf.DoubleLiteral(0.8)))
	st.Remove(tr("a", "type", "Hotspot"))

	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	// Spatial index rebuilt.
	if got.Stats().SpatialLiterals != 1 {
		t.Fatal("spatial literal lost")
	}
	ids := got.SpatialCandidates(geo.Envelope{MinX: 22, MinY: 37, MaxX: 24, MaxY: 39})
	if len(ids) != 1 {
		t.Fatal("spatial search after load")
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("loading empty dir should error")
	}
}

func TestLoadNTriples(t *testing.T) {
	st := NewStore()
	src := `<http://ex/a> <http://ex/p> "v" .
<http://ex/b> <http://ex/p> "w" .
`
	n, err := st.LoadNTriples(strings.NewReader(src))
	if err != nil || n != 2 {
		t.Fatalf("loaded %d, %v", n, err)
	}
	if _, err := st.LoadNTriples(strings.NewReader("garbage")); err == nil {
		t.Fatal("bad input should error")
	}
}

func TestStats(t *testing.T) {
	st := NewStore()
	st.Add(tr("a", "p1", "x"))
	st.Add(tr("a", "p2", "y"))
	st.Add(rdf.NewTriple(rdf.IRI("a"), rdf.IRI("geom"), rdf.WKTLiteral("POINT (1 2)", 4326)))
	s := st.Stats()
	if s.Triples != 3 || s.Predicates != 3 || s.SpatialLiterals != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Terms < 6 {
		t.Fatalf("terms = %d", s.Terms)
	}
}

func TestLookupIDUnknown(t *testing.T) {
	st := NewStore()
	if _, err := st.LookupID(rdf.IRI("nope")); err != ErrNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestMatchIDsStableUnderConcurrentReads(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		st.Add(tr(fmt.Sprintf("s%d", i%10), "p", fmt.Sprintf("o%d", i)))
	}
	pID, _ := st.LookupID(rdf.IRI("p"))
	done := make(chan []int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			rows := st.MatchIDs(TriplePattern{P: pID})
			sort.Ints(rows)
			done <- rows
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		got := <-done
		if len(got) != len(first) {
			t.Fatal("concurrent reads disagree")
		}
	}
}
